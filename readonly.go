package prometheus

import (
	"unsafe"

	"repro/internal/core"
)

// Hasher lets checked mode detect writes through read-only wrappers: if the
// wrapped type implements Hasher, ReadOnly.Call fingerprints the object
// before and after the callback and panics on change.
type Hasher interface {
	Hash() uint64
}

// ReadOnly wraps an object in the read-only domain (paper's read_only<T>):
// during isolation epochs it may be freely read by any operation, in any
// context, and must not be written. During aggregation epochs any use is
// permitted through Mut.
type ReadOnly[T any] struct {
	rt       *Runtime
	obj      T
	instance uint64
	// tramp is the wrapper type's static delegation trampoline, bound once
	// at construction so Delegate builds no closure per call.
	tramp core.Trampoline
	// lastSet remembers the most recent Delegate target so Err can consult
	// the runtime's fault records for it.
	lastSet uint64
	hasSet  bool
}

// readOnlyTramp is the ReadOnly delegation trampoline: p1 is the wrapper,
// p2 the user callback's funcval pointer.
func readOnlyTramp[T any](ctx int, p1, p2 unsafe.Pointer) {
	r := (*ReadOnly[T])(p1)
	fn := ptrFunc[func(*Ctx, *T)](p2)
	fn(&r.rt.ctxs[ctx], &r.obj)
}

// NewReadOnly wraps obj as read-only shared data.
func NewReadOnly[T any](rt *Runtime, obj T) *ReadOnly[T] {
	return &ReadOnly[T]{rt: rt, obj: obj, instance: rt.nextInstance(), tramp: readOnlyTramp[T]}
}

// Delegate assigns a read-only operation on the shared object to the given
// serialization set — the read-side counterpart of Writable.DelegateTo, for
// scans over shared data that feed reducibles from delegate contexts. The
// callback must not mutate the object; checked mode's Hasher fingerprinting
// does not extend to delegated reads (the object is concurrently visible to
// every context, so there is no quiescent point to fingerprint at).
func (r *ReadOnly[T]) Delegate(set uint64, fn func(c *Ctx, obj *T)) {
	if !r.rt.core.InIsolation() {
		raise(ErrAPIMisuse, "Delegate outside an isolation epoch")
	}
	r.lastSet, r.hasSet = set, true
	r.rt.core.DelegateCall(set, r.tramp, unsafe.Pointer(r), funcPtr(fn))
}

// Err reports the contained panics recorded against the serialization set
// this wrapper most recently delegated through (see Runtime.Err for the
// containment semantics). Nil when the wrapper never delegated or the set
// never faulted; wrappers delegating through many sets should query
// Runtime.SetErr per set. Program context.
func (r *ReadOnly[T]) Err() error {
	if !r.hasSet {
		return nil
	}
	return r.rt.SetErr(r.lastSet)
}

// Get returns the shared read view. The pointer may be captured by delegated
// closures; they must not write through it.
func (r *ReadOnly[T]) Get() *T { return &r.obj }

// Call invokes fn with the read view. In checked mode, if T implements
// Hasher, a fingerprint mismatch after fn panics with a partition violation
// (the Go stand-in for C++ const enforcement).
func (r *ReadOnly[T]) Call(fn func(obj *T)) {
	if r.rt.checked && r.rt.core.InIsolation() {
		if h, ok := any(&r.obj).(Hasher); ok {
			before := h.Hash()
			fn(&r.obj)
			if h.Hash() != before {
				raise(ErrPartitionViolation, "write through read-only wrapper #%d detected", r.instance)
			}
			return
		}
	}
	fn(&r.obj)
}

// Mut returns a mutable pointer to the object. It is an error during an
// isolation epoch: read-only data may only be modified in aggregation
// epochs (e.g. between iterations that alternate the data partition,
// paper §2.2 technique 1).
func (r *ReadOnly[T]) Mut() *T {
	if r.rt.core.InIsolation() {
		raise(ErrPartitionViolation, "Mut on read-only wrapper #%d during isolation epoch", r.instance)
	}
	return &r.obj
}

// CallR invokes fn with the read view and returns its result.
func CallR[T, R any](r *ReadOnly[T], fn func(obj *T) R) R {
	return fn(r.Get())
}
