package prometheus

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Resize determinism stress (the elastic-runtime acceptance suite): a
// skewed workload resized UP and DOWN mid-run must produce per-set
// operation logs byte-identical to the same workload on a fixed-size pool
// and to the Sequential() debug run. Placement may differ — that is the
// point of resizing — but per-set program order is the model's invariant
// and survives every epoch-boundary reconfiguration. Both engines run the
// stress; the scale-down legs exercise the evacuation path (asserted via
// Stats.ResizeEvacuatedSets) and the skew keeps the rebalancer firing
// (asserted via Stats.Steals). CI repeats this file under -race -count=3.

// resizeSchedule maps an epoch-break ordinal to the pool size requested at
// that break (applied by the BeginIsolation that follows it).
type resizeSchedule map[int]int

// runElasticBankWorkload replays the deterministic skewed-deposit log of
// steal_determinism_test.go with a resize schedule layered on the epoch
// breaks. A nil schedule is the fixed-size control run.
func runElasticBankWorkload(sched resizeSchedule, opts ...Option) ([]byte, Stats) {
	rt := Init(opts...)
	defer rt.Terminate()

	type account struct {
		balance int64
		oplog   []uint32
	}
	const nAccounts = 16
	const nHot = 4
	accounts := make([]*Writable[account], nAccounts)
	for i := range accounts {
		accounts[i] = NewWritable(rt, account{balance: 1000})
	}

	r := rand.New(rand.NewSource(41))
	breaks := 0
	rt.BeginIsolation()
	for op := 0; op < 6000; op++ {
		opID := uint32(op)
		switch {
		case op%53 == 0 && op > 0:
			rt.EndIsolation()
			if n, ok := sched[breaks]; ok {
				if err := rt.Resize(n); err != nil {
					panic(err)
				}
			}
			breaks++
			rt.BeginIsolation()
		default:
			idx := r.Intn(nHot) // hot accounts: 90% of deposits
			if r.Intn(10) == 9 {
				idx = nHot + r.Intn(nAccounts-nHot)
			}
			amount := int64(r.Intn(100))
			accounts[idx].Delegate(func(c *Ctx, a *account) {
				a.balance += amount
				a.oplog = append(a.oplog, opID)
			})
		}
	}
	rt.EndIsolation()

	var buf bytes.Buffer
	for i, w := range accounts {
		w.Call(func(a *account) {
			fmt.Fprintf(&buf, "account %d balance %d oplog %v\n", i, a.balance, a.oplog)
		})
	}
	return buf.Bytes(), rt.Stats()
}

// elasticSchedule scales 2 -> 6 early, holds, then back down to 2 and up
// again to 4 — both directions exercised twice across ~113 epoch breaks.
func elasticSchedule() resizeSchedule {
	return resizeSchedule{10: 6, 40: 2, 70: 4, 95: 2}
}

func elasticOpts(extra ...Option) []Option {
	return append([]Option{
		WithDelegates(2),
		WithMaxDelegates(6),
		WithPolicy(LeastLoaded),
		WithStealing(),
		WithStealThreshold(2),
		Checked(),
	}, extra...)
}

func TestResizeDeterminismFlat(t *testing.T) {
	want, _ := runElasticBankWorkload(nil, Sequential())
	fixed, _ := runElasticBankWorkload(nil, elasticOpts()...)
	if !bytes.Equal(fixed, want) {
		t.Fatalf("fixed-size control diverged from sequential:\n got: %s\nwant: %s",
			firstDiffLine(fixed, want), firstDiffLine(want, fixed))
	}
	var steals, evacs, resizes uint64
	const runs = 4
	for i := 0; i < runs; i++ {
		got, st := runElasticBankWorkload(elasticSchedule(), elasticOpts()...)
		if !bytes.Equal(got, fixed) {
			t.Fatalf("resized run %d diverged from fixed-size run:\n got: %s\nwant: %s",
				i, firstDiffLine(got, fixed), firstDiffLine(fixed, got))
		}
		if st.Resizes != 4 {
			t.Fatalf("run %d applied %d resizes, want 4", i, st.Resizes)
		}
		steals += st.Steals
		evacs += st.ResizeEvacuatedSets
		resizes += st.Resizes
	}
	if steals == 0 {
		t.Fatal("skewed elastic workload fired no steals")
	}
	if evacs == 0 {
		t.Fatal("scale-downs evacuated no sets")
	}
	t.Logf("flat: %d runs byte-identical (%d resizes, %d steals, %d sets evacuated)",
		runs, resizes, steals, evacs)
}

func TestResizeDeterminismRecursive(t *testing.T) {
	recOpts := func() []Option {
		return elasticOpts(Recursive())
	}
	want, _ := runElasticBankWorkload(nil, Sequential())
	fixed, _ := runElasticBankWorkload(nil, recOpts()...)
	if !bytes.Equal(fixed, want) {
		t.Fatalf("recursive fixed-size control diverged from sequential:\n got: %s\nwant: %s",
			firstDiffLine(fixed, want), firstDiffLine(want, fixed))
	}
	var steals, evacs uint64
	const runs = 4
	for i := 0; i < runs; i++ {
		got, st := runElasticBankWorkload(elasticSchedule(), recOpts()...)
		if !bytes.Equal(got, fixed) {
			t.Fatalf("recursive resized run %d diverged from fixed-size run:\n got: %s\nwant: %s",
				i, firstDiffLine(got, fixed), firstDiffLine(fixed, got))
		}
		if st.Resizes != 4 {
			t.Fatalf("run %d applied %d resizes, want 4", i, st.Resizes)
		}
		steals += st.Steals
		evacs += st.ResizeEvacuatedSets
	}
	if steals == 0 {
		t.Fatal("recursive elastic workload fired no steals")
	}
	if evacs == 0 {
		t.Fatal("recursive scale-downs evacuated no sets")
	}
	t.Logf("recursive: %d runs byte-identical (%d steals, %d sets evacuated)", runs, steals, evacs)
}

// TestResizeDeterminismNested drives the recursive engine through resizes
// while every group op issues NESTED delegations — the lane-matrix case a
// scale-down must evacuate without reordering: child-set logs record
// (group op, child op) pairs and must match the fixed-size run exactly.
func TestResizeDeterminismNested(t *testing.T) {
	const nGroups = 6
	const nChildren = 2
	const rounds = 900

	run := func(sched resizeSchedule, opts ...Option) ([]byte, Stats) {
		rt := Init(opts...)
		defer rt.Terminate()
		groups := make([]*Writable[[]uint32], nGroups)
		for g := range groups {
			groups[g] = NewWritable(rt, []uint32{})
		}
		childLogs := make([][]uint32, nGroups*nChildren)
		breaks := 0
		rt.BeginIsolation()
		for op := 0; op < rounds; op++ {
			if op%71 == 70 {
				rt.EndIsolation()
				if n, ok := sched[breaks]; ok {
					if err := rt.Resize(n); err != nil {
						panic(err)
					}
				}
				breaks++
				rt.BeginIsolation()
			}
			g := op % nGroups
			if op%3 == 0 {
				g = op % 2 // skew: two groups take every third op
			}
			opID := uint32(op)
			groups[g].Delegate(func(c *Ctx, log *[]uint32) {
				*log = append(*log, opID)
				for k := 0; k < nChildren; k++ {
					child := g*nChildren + k
					c.Delegate(uint64(1000+child), func(*Ctx) {
						childLogs[child] = append(childLogs[child], opID)
					})
				}
			})
		}
		rt.EndIsolation()
		var buf bytes.Buffer
		for g, w := range groups {
			w.Call(func(log *[]uint32) { fmt.Fprintf(&buf, "group %d: %v\n", g, *log) })
		}
		for c, log := range childLogs {
			fmt.Fprintf(&buf, "child %d: %v\n", c, log)
		}
		return buf.Bytes(), rt.Stats()
	}

	recOpts := []Option{
		WithDelegates(2), WithMaxDelegates(5), Recursive(),
		WithPolicy(LeastLoaded), WithStealing(), WithStealThreshold(1), Checked(),
	}
	fixed, _ := run(nil, recOpts...)
	sched := resizeSchedule{2: 5, 6: 2, 9: 4}
	var evacs uint64
	for i := 0; i < 3; i++ {
		got, st := run(sched, recOpts...)
		if !bytes.Equal(got, fixed) {
			t.Fatalf("nested resized run %d diverged from fixed-size run:\n got: %s\nwant: %s",
				i, firstDiffLine(got, fixed), firstDiffLine(fixed, got))
		}
		if st.Resizes != 3 {
			t.Fatalf("run %d applied %d resizes, want 3", i, st.Resizes)
		}
		evacs += st.ResizeEvacuatedSets
	}
	if evacs == 0 {
		t.Fatal("nested scale-downs evacuated no sets")
	}
}
