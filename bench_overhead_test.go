package prometheus_test

// BenchmarkDelegateOverhead isolates the per-operation cost of the
// delegation hot path through the public wrapper API — the number behind
// the paper's overhead argument (§5): delegation must stay cheap enough
// that serialization sets beat lock-based pipelines. Run with -benchmem;
// the unchecked, untraced paths are required to report 0 allocs/op (see
// alloc_test.go for the hard regression gate).

import (
	"testing"

	prometheus "repro"
)

func BenchmarkDelegateOverhead(b *testing.B) {
	b.Run("writable", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("writable-nobatch", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.WithDelegateBatch(1))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("writable-spread-4", func(b *testing.B) {
		// Round-robins four wrappers, so consecutive delegations hit
		// different delegates and the batch buffer sees constant target
		// switches — the worst case for batching.
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		ws := make([]*prometheus.Writable[int], 4)
		for i := range ws {
			ws[i] = prometheus.NewWritable(rt, 0)
		}
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ws[i%4].Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("reducible", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		r := prometheus.NewReducible(rt,
			func() int { return 0 },
			func(dst, src *int) { *dst += *src })
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Delegate(1, func(v *int) { *v++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("readonly", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		r := prometheus.NewReadOnly(rt, 42)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Delegate(1, func(c *prometheus.Ctx, p *int) { _ = *p })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("sequential-inline", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.Sequential())
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
}
