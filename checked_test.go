package prometheus

import "testing"

// Tests for the dynamic error detection of paper §3.3 (failure injection).

func TestCheckedSerializerViolation(t *testing.T) {
	// An "improper serializer" maps the same object to different sets in
	// one isolation epoch; checked mode must detect the discrepancy.
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritableSer(rt, 0, NullSerializer[int]())
	rt.BeginIsolation()
	defer rt.EndIsolation()
	w.DelegateTo(1, func(c *Ctx, p *int) {})
	defer expectError(t, ErrSerializerViolation)
	w.DelegateTo(2, func(c *Ctx, p *int) {})
}

func TestCheckedSerializerConsistentAcrossEpochs(t *testing.T) {
	// Different sets in *different* epochs are legal (the partition may
	// change between isolation epochs, Figure 1).
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritableSer(rt, 0, NullSerializer[int]())
	rt.BeginIsolation()
	w.DelegateTo(1, func(c *Ctx, p *int) {})
	rt.EndIsolation()
	rt.BeginIsolation()
	w.DelegateTo(2, func(c *Ctx, p *int) {}) // must not panic
	rt.EndIsolation()
}

func TestCheckedReadOnlyThenDelegatePanics(t *testing.T) {
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	w.CallRO(func(p *int) {})
	defer expectError(t, ErrPartitionViolation)
	w.Delegate(func(c *Ctx, p *int) {})
}

func TestCheckedDelegateThenCallROPanics(t *testing.T) {
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	w.Delegate(func(c *Ctx, p *int) {})
	defer expectError(t, ErrPartitionViolation)
	w.CallRO(func(p *int) {})
}

func TestCheckedReadOnlyThenCallPanics(t *testing.T) {
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	w.CallRO(func(p *int) {})
	defer expectError(t, ErrPartitionViolation)
	w.Call(func(p *int) {})
}

func TestCheckedROThenPrivateNextEpochOK(t *testing.T) {
	// The state machine resets at epoch boundaries: read-only in epoch 1,
	// privately-writable in epoch 2 is the alternating-partition idiom.
	rt := newRT(t, WithDelegates(2), Checked())
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.CallRO(func(p *int) {})
	rt.EndIsolation()
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, p *int) { *p = 1 }) // must not panic
	rt.EndIsolation()
	if got := Call(w, func(p *int) int { return *p }); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}

func TestCheckedROViewForDelegatedReads(t *testing.T) {
	// RO() marks the wrapper read-only; a delegated read of another
	// writable may then capture the view safely.
	rt := newRT(t, WithDelegates(2), Checked())
	src := NewWritable(rt, 7)
	dst := NewWritable(rt, 0)
	rt.BeginIsolation()
	view := src.RO()
	dst.Delegate(func(c *Ctx, p *int) { *p = *view * 2 })
	rt.EndIsolation()
	if got := Call(dst, func(p *int) int { return *p }); got != 14 {
		t.Fatalf("dst = %d, want 14", got)
	}
	// And delegating on src in the same epoch would have been an error:
	rt.BeginIsolation()
	_ = src.RO()
	func() {
		defer expectError(t, ErrPartitionViolation)
		src.Delegate(func(c *Ctx, p *int) {})
	}()
	rt.EndIsolation()
}

func TestUncheckedSkipsDetection(t *testing.T) {
	// With checks disabled (as in the paper's performance runs), the same
	// misuse is not detected; this documents the contract.
	rt := newRT(t, WithDelegates(2))
	w := NewWritableSer(rt, 0, NullSerializer[int]())
	rt.BeginIsolation()
	w.DelegateTo(1, func(c *Ctx, p *int) {})
	w.DelegateTo(2, func(c *Ctx, p *int) {}) // no panic
	rt.EndIsolation()
}

func TestSequentialModeStillChecks(t *testing.T) {
	// Debug mode (§3.3): sequential execution with checks active detects
	// the same serializer errors the parallel version would.
	rt := newRT(t, Sequential(), Checked())
	w := NewWritableSer(rt, 0, NullSerializer[int]())
	rt.BeginIsolation()
	defer rt.EndIsolation()
	w.DelegateTo(1, func(c *Ctx, p *int) {})
	defer expectError(t, ErrSerializerViolation)
	w.DelegateTo(2, func(c *Ctx, p *int) {})
}
