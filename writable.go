package prometheus

import (
	"unsafe"

	"repro/internal/core"
)

// wstate is the per-epoch state of a Writable wrapper (paper §3.1: "The
// writable wrapper maintains a state machine that signals an error if the
// object is treated as read-only and privately-writable in the same
// isolation epoch").
type wstate uint8

const (
	stateUnused   wstate = iota // not yet touched this epoch
	stateReadOnly               // used as read-only this epoch
	statePrivate                // used as privately-writable this epoch
)

// Writable wraps an object in the privately-writable domain (paper's
// writable<T, S>). The object is constructed inside the wrapper and all
// access is mediated: Delegate assigns independent operations to the
// delegate context, Call performs a dependent operation in the program
// context (reclaiming ownership first if needed), and CallRO reads the
// object in its read-only role.
//
// A Writable may be used as read-only or privately-writable, but not both,
// within one isolation epoch; with Checked enabled the runtime detects
// violations and panics with *Error.
//
// All methods must be called from the program context. To operate on a
// Writable from inside a delegated closure, capture the *T the closure
// receives — never the wrapper.
type Writable[T any] struct {
	rt       *Runtime
	obj      T
	instance uint64
	ser      Serializer[T]
	// tramp is the wrapper type's static delegation trampoline, bound once
	// at construction so Delegate/DelegateTo build no closure per call.
	tramp core.Trampoline

	// Per-epoch state, versioned lazily by epoch tag.
	epoch       uint64
	state       wstate
	set         uint64 // serializer-consistency tag (first set this epoch)
	hasSet      bool
	ownerCtx    int
	outstanding bool // delegations not yet synchronized
}

// writableTramp is the Writable delegation trampoline: one instantiation
// per wrapped type, shared by every wrapper and every call. p1 is the
// wrapper, p2 the user callback's funcval pointer.
func writableTramp[T any](ctx int, p1, p2 unsafe.Pointer) {
	w := (*Writable[T])(p1)
	fn := ptrFunc[func(*Ctx, *T)](p2)
	fn(&w.rt.ctxs[ctx], &w.obj)
}

// NewWritable wraps obj with the sequence serializer (the common case: each
// wrapper is its own serialization set).
func NewWritable[T any](rt *Runtime, obj T) *Writable[T] {
	return NewWritableSer(rt, obj, SequenceSerializer[T]())
}

// NewWritableSer wraps obj with an explicit serializer (Object, Internal,
// Null, or any custom function).
func NewWritableSer[T any](rt *Runtime, obj T, ser Serializer[T]) *Writable[T] {
	return &Writable[T]{
		rt: rt, obj: obj, instance: rt.nextInstance(), ser: ser,
		tramp: writableTramp[T],
	}
}

// Instance returns the wrapper's instance number (the sequence serializer's
// identity).
func (w *Writable[T]) Instance() uint64 { return w.instance }

// ensureEpoch lazily resets the per-epoch state machine. EndIsolation is a
// barrier, so when the epoch tag is stale no delegated work can still be
// outstanding.
func (w *Writable[T]) ensureEpoch() {
	if e := w.rt.core.Epoch(); e != w.epoch {
		w.epoch = e
		w.state = stateUnused
		w.hasSet = false
		w.outstanding = false
		w.ownerCtx = 0
	}
}

// Delegate assigns a potentially independent operation on the object to the
// delegate context, in the serialization set computed by the wrapper's
// serializer (paper Table 1). It is an error outside an isolation epoch, on
// a wrapper in the read-only state, or on a wrapper with a Null serializer.
func (w *Writable[T]) Delegate(fn func(c *Ctx, obj *T)) {
	if w.ser == nil {
		raise(ErrAPIMisuse, "Delegate on a Null-serializer wrapper; use DelegateTo")
	}
	w.DelegateTo(w.ser(w.instance, &w.obj), fn)
}

// DelegateTo assigns the operation to an explicitly provided serialization
// set (the paper's external-serializer delegate overload).
func (w *Writable[T]) DelegateTo(set uint64, fn func(c *Ctx, obj *T)) {
	rt := w.rt
	if !rt.core.InIsolation() {
		raise(ErrAPIMisuse, "Delegate outside an isolation epoch")
	}
	w.ensureEpoch()
	if rt.checked {
		if w.state == stateReadOnly {
			raise(ErrPartitionViolation, "Delegate on writable #%d used as read-only this epoch", w.instance)
		}
		if w.hasSet && w.set != set {
			raise(ErrSerializerViolation,
				"writable #%d mapped to set %d, previously set %d, in one epoch", w.instance, set, w.set)
		}
	}
	w.state = statePrivate
	w.set = set
	w.hasSet = true
	w.outstanding = true
	w.ownerCtx = rt.core.DelegateCall(set, w.tramp, unsafe.Pointer(w), funcPtr(fn))
}

// Call performs a dependent operation on the object in the program context
// (paper Table 1: writable call). During an isolation epoch it first
// reclaims ownership, waiting for outstanding delegated operations on the
// object to complete; the object then remains program-owned until the next
// Delegate.
func (w *Writable[T]) Call(fn func(obj *T)) {
	w.reclaim()
	fn(&w.obj)
}

// reclaim synchronizes with the owning delegate if the object has
// outstanding delegated operations, and marks the object privately-writable
// by the program context.
func (w *Writable[T]) reclaim() {
	rt := w.rt
	w.ensureEpoch()
	if rt.core.InIsolation() {
		if rt.checked && w.state == stateReadOnly {
			raise(ErrPartitionViolation, "Call on writable #%d used as read-only this epoch", w.instance)
		}
		w.state = statePrivate
	}
	if w.outstanding {
		rt.core.SyncContext(w.ownerCtx)
		w.outstanding = false
	}
}

// CallRO reads the object in its read-only role (paper: calls to const
// methods while the object is in the read-only state). It is an error in
// checked mode if the object is privately-writable this epoch. The callback
// must not mutate the object.
func (w *Writable[T]) CallRO(fn func(obj *T)) {
	rt := w.rt
	w.ensureEpoch()
	if rt.core.InIsolation() {
		if rt.checked && w.state == statePrivate {
			raise(ErrPartitionViolation, "CallRO on writable #%d used as privately-writable this epoch", w.instance)
		}
		w.state = stateReadOnly
	}
	fn(&w.obj)
}

// RO returns a read-only view of the object for passing (by pointer) to
// delegated operations during an epoch where this wrapper is in the
// read-only domain. It applies the same state-machine transition as CallRO.
func (w *Writable[T]) RO() *T {
	rt := w.rt
	w.ensureEpoch()
	if rt.core.InIsolation() {
		if rt.checked && w.state == statePrivate {
			raise(ErrPartitionViolation, "RO on writable #%d used as privately-writable this epoch", w.instance)
		}
		w.state = stateReadOnly
	}
	return &w.obj
}

// Sync waits for all outstanding delegated operations on this object and
// returns ownership to the program context, without performing a call.
func (w *Writable[T]) Sync() { w.reclaim() }

// Err reports the contained panics recorded against this wrapper's
// serialization set — delegated operations that faulted. When an operation
// panics, the runtime keeps the process alive, poisons the set for the
// rest of the epoch (later delegations are dropped), and surfaces the
// fault here: the set executed exactly its prefix up to the faulting
// operation. Nil when nothing faulted. The set consulted is the one this
// wrapper last delegated through (its per-epoch serializer tag, which
// survives past EndIsolation until the wrapper's next use), falling back
// to the serializer's current mapping; wrappers that only ever delegated
// through DelegateTo with varying sets should query Runtime.SetErr
// directly. Program context.
func (w *Writable[T]) Err() error {
	set := w.set
	if !w.hasSet {
		if w.ser == nil {
			return nil
		}
		set = w.ser(w.instance, &w.obj)
	}
	return w.rt.SetErr(set)
}

// Call invokes fn on the wrapped object in the program context and returns
// its result; the free-function form exists because Go methods cannot add
// type parameters (paper: call returning R).
func Call[T, R any](w *Writable[T], fn func(obj *T) R) R {
	w.reclaim()
	return fn(&w.obj)
}

// DoAll delegates fn on every wrapper in objs (paper Table 1: doall), the
// embarrassing-parallelism idiom of Figure 2.
func DoAll[T any](objs []*Writable[T], fn func(c *Ctx, obj *T)) {
	for _, w := range objs {
		w.Delegate(fn)
	}
}
