// Package prometheus implements the serialization-sets parallel execution
// model of Allen, Sridharan & Sohi, "Serialization Sets: A Dynamic
// Dependence-Based Parallel Execution Model" (PPoPP 2009), as a Go library.
//
// # Model
//
// A program using serialization sets is written as an ordinary sequential
// program. Execution is divided into aggregation epochs (plain sequential
// execution, the default) and isolation epochs (opened with
// Runtime.BeginIsolation, closed with Runtime.EndIsolation). During an
// isolation epoch the program partitions its data into disjoint domains:
//
//   - read-only data (ReadOnly[T]) may be read by any operation;
//   - privately-writable data (Writable[T]) may be read and written only by
//     its current owner;
//   - reducible data (Reducible[T]) accumulates into per-context views that
//     are folded together on first use in the following aggregation epoch.
//
// Potentially independent operations on writable data are delegated
// (Writable.Delegate). A serializer — a small piece of code run at the
// delegation point — maps each operation to a serialization set.
// Operations in the same set execute in program order on a single delegate
// context; operations in different sets may execute concurrently. Because
// every operation has a place in a single logical order, parallel execution
// is deterministic: there are no data races, and deadlock, livelock and
// priority inversion cannot occur.
//
// # Correspondence with the paper's C++ API (Table 1)
//
//	initialize()                 -> Init(opts...)
//	terminate()                  -> Runtime.Terminate()
//	sleep()                      -> Runtime.Sleep()
//	begin_isolation()            -> Runtime.BeginIsolation()
//	end_isolation()              -> Runtime.EndIsolation()
//	read_only<T>::call           -> ReadOnly[T].Call / Get
//	reducible<T>::call           -> Reducible[T].Update / View / Result
//	writable<T,S>::call          -> Writable[T].Call (private) / CallRO (read-only)
//	writable<T,S>::delegate      -> Writable[T].Delegate (serializer S)
//	writable<T,S>::delegate(ss)  -> Writable[T].DelegateTo(set, ...) (external serializer)
//	writable<T,S>::doall         -> DoAll(rt, objs, fn)
//
// The paper's predefined serializers map to Sequence (instance number),
// Object (address-like scrambled identity) and Null (external serializer
// supplied at the delegation site); internal serializers are arbitrary
// functions of the wrapped object (UseSerializer / NewWritableSer).
//
// Delegated methods must not return values (restructure to store results in
// the object and read them after synchronization), mirroring the paper's
// void-return restriction. In Go the delegated operation is a closure
// receiving (*Ctx, *T); the Ctx identifies the executing context and is how
// reducible views are addressed.
//
// # Debugging
//
// Sequential() builds a runtime in the paper's debug mode: every delegation
// runs inline in the program goroutine, in program order, while serializers
// and all dynamic checks still execute. Checked() enables the dynamic error
// detection of §3.3: serializer-consistency tagging and the
// read-only/private state machine, which panic with *Error on violation.
//
// # Performance
//
// The whole bet of the model is that delegation overhead is small enough
// for fine-grained operations to win (paper §4–5), so the hot path — a
// steady-state Delegate with Checked and Trace off — performs zero heap
// allocations and O(1) work:
//
//   - Invocation records travel by value through bounded SPSC rings of
//     sequence-stamped slots (internal/spsc, after FastForward, Giacomoni
//     et al. PPoPP 2008): no per-operation allocation, no GC pressure, and
//     producer and consumer never touch each other's cursor in steady
//     state.
//
//   - Wrappers dispatch through a static per-type trampoline plus two
//     payload words (the wrapper pointer and the callback's funcval
//     pointer) instead of constructing closures; the callback you pass to
//     Delegate is invoked on the executing context without any per-call
//     closure allocation. Alloc-regression tests (alloc_test.go) pin this
//     at exactly 0 allocs/op.
//
//   - Scheduling queries are O(1): each ring publishes padded monotonic
//     pushed/popped counters, so the LeastLoaded policy's queue-depth scan
//     costs one load per delegate rather than a walk over every slot.
//
//   - The program context batches runs of consecutive delegations bound
//     for the same busy delegate (WithDelegateBatch, default 8) and
//     delivers them with a single consumer wake-up. Operations are never
//     buffered while the target delegate has no backlog, and the buffer is
//     flushed when the delegate drains, on every target switch, when the
//     batch fills, and at every synchronization point — a buffered
//     operation waits at most until the program context's next delegation
//     or runtime call.
//
//   - Delegates consume in batches too: each wake pops a run of ring slots
//     (up to 64) and executes them back to back, publishing consumer
//     progress and the producer wake-up once per run rather than once per
//     operation. A backlogged delegate therefore drains at memcpy-plus-call
//     speed, which also keeps the producer out of its queue-full slow path.
//
// # Load balancing
//
// The LeastLoaded policy assigns a serialization set to the delegate with
// the shortest queue at the set's first delegation of the epoch, and the
// set then stays sticky to that delegate — per-set program order depends on
// it. When dependence chains have very uneven lengths, that one-shot choice
// can strand most of an epoch's work on one delegate while the others idle.
// WithStealing adds an occupancy-aware rebalancer: when a set's owner has
// WithStealThreshold or more outstanding operations and the set itself is
// quiescent (every operation previously delegated to it has finished
// executing — a safe handoff boundary), the next delegation hands the whole
// set to the least-occupied delegate, provided that delegate is idle or at
// most a quarter as loaded as the victim.
//
// Whole sets — never individual invocations — are the steal unit. Moving a
// single queued invocation would let two contexts interleave one set's
// operations and break the model's ordering guarantee; moving a whole set
// at a quiescent boundary preserves it by construction: everything
// delegated to the set before the handoff has completed on the old owner
// before anything after it is enqueued on the new one. Determinism is
// unchanged — only placement (which delegate runs a set), never order
// (which operations run and in what sequence per set), responds to load.
// The safety check is O(1), riding the same published counters as the
// scheduler: each delegate exposes an executed count, the program context
// tracks per-delegate sent counts, and a set is quiescent exactly when its
// newest operation's position is at or below its owner's executed count.
//
// # Recursive delegation
//
// Recursive() enables the extension the paper names as future work (§4):
// delegated operations may delegate further operations via Ctx.Delegate,
// which is how divide-and-conquer programs (quicksort, FPM, Barnes-Hut)
// are expressed without fork/join scaffolding. The recursive engine is
// built to the same performance standard as the flat path:
//
//   - Every delegate owns one inbound lane per producer context (program
//     plus every delegate). A lane is a bounded lap-stamped value ring —
//     the same slot machinery as the flat path's SPSC queue — backed by an
//     unbounded spill list that engages only on overflow. Steady state, a
//     recursive delegation writes its invocation record by value into ring
//     memory: zero allocations, no lane nodes, no closure. The spill tier
//     is what makes the bounded ring safe: a delegate may delegate to a
//     set it itself owns (or around a delegation cycle), so a delegate
//     producer never blocks — it spills — while the program context, which
//     no delegate can be waiting on, blocks on a full ring and gets
//     bounded-queue backpressure instead.
//
//   - The trampoline fast path extends end to end: Ctx.Delegate and the
//     root wrappers (Writable, ReadOnly, Reducible) all route through
//     static trampolines into the lanes (core.DelegateFromCall), so
//     recursive mode no longer pays a per-call closure.
//
//   - Each delegate keeps a pending-lane bitmask instead of polling all
//     lanes round-robin: a producer publishes work with one conditional
//     atomic OR plus a wake check, and an idle delegate inspects O(1)
//     words. Claimed lanes drain in batched runs (the consumer mirror of
//     the flat path's PopBatch drain), publishing the executed counter
//     once per run.
//
//   - Quiescence bookkeeping is contention-free: each producer context
//     counts what it enqueued in a padded single-writer counter and each
//     delegate counts what it executed; only the EndIsolation barrier
//     aggregates the two sides, repeating sync rounds until the sums agree
//     across a quiet round (executing an operation may enqueue more work,
//     so one drain round is never proof of completion).
//
// Per-set program order is preserved per producer — FIFO through ring and
// spill alike — and determinism requires each set to have one producer
// context per isolation epoch, which Checked() enforces with a sharded
// producer table. Stats reports RecursiveOps and Spills alongside the
// drain counters. Spill nodes are recycled through a per-lane freelist
// backed by a pool shared across a runtime's lanes, so sustained spilling
// (delegation cycles, self-delegation) settles at zero steady-state
// allocations too.
//
// # Recursive whole-set stealing: the multi-producer quiescent handoff
//
// Combining Recursive with WithPolicy(LeastLoaded)+WithStealing enables
// rebalancing in recursive mode, where the flat protocol's safety
// argument no longer suffices: a flat set has one producer (the program
// context), so "newest position <= owner's executed count" is one
// comparison — but a recursive set's operations arrive from many producer
// contexts, each through its own SPSC lane, and an executed counter that
// ignored one producer's lane could declare a set quiescent while that
// lane still carries its operations. Quiescence must therefore cover
// EVERY producer's sent counter: each producer counts the messages it
// pushes into each delegate's lane, the owner table records, per
// producer, the lane position of the set's newest operation, and each
// delegate publishes per-lane executed counters at its drain-run
// boundaries. A set may move only when every recorded position is covered
// by the owner's matching per-lane executed counter.
//
// The handoff itself takes no lock and needs no victim-side
// acknowledgment handshake: the victim's per-lane executed publishes at
// drain-run boundaries ARE the acknowledgment — lanes are FIFO, so an
// executed count at or past a position proves that operation and its
// whole lane prefix have finished — and the per-set epoch stamp (bumped
// once per handoff, after the new owner is published) counts migrations
// for tests and debugging; no protocol step depends on reading it.
// Since only the set's single producer routes
// operations to it, the migration is a single-writer update observed
// through those atomics. Recorded positions are relative to ONE owner's
// counters, so the migration rebases them: former producers' entries are
// zeroed (the quiescence proof at the handoff boundary makes them moot —
// left stale they would be compared against the new owner's unrelated
// counters) and the acting producer's entry is fenced at the thief's
// current lane depth before the new owner is published.
//
// Migrating a set also moves the PRODUCER ROLE of its operations: nested
// sets they delegate to start receiving through the thief's lanes, which
// is only safe once everything the set already fed them through the
// victim's lanes has executed. PR 4 enforced that with a global veto —
// every lane the victim feeds as a producer fully drained, any set's
// traffic — which was safe but conservative enough to leave a liveness
// hole. The condition is now precise, carried by a per-set outbound
// ledger: while one of a set's operations executes, the drain loop stamps
// that set as the delegate's producing set, and every nested delegation
// the operation issues records its lane position into the set's entry
// (outPos[target] = the newest position of the set's own traffic in the
// target's lane). A set may migrate exactly when its OWN recorded
// positions are covered by the targets' per-lane executed counters; other
// sets' in-flight lanes no longer block it. The ledger rides the existing
// machinery: one plain producing-set stamp per executed operation, one
// atomic store per nested delegation (against a one-slot entry cache, so
// runs of one set's operations resolve the entry once), zero allocations
// — the ledger is not built at all unless stealing is enabled, so the
// static recursive hot path is untouched. Cost budget: the stealing-off
// paths stay exactly at PR 3's 0 allocs/op gates, and the stealing-on
// delegation adds two atomic stores and a three-field cache check
// (alloc_test.go and cmd/benchgate hold both).
//
// Two placement rules keep the engine from manufacturing hazards the
// program didn't write: a set is never handed to its own producer's
// context (that would silently turn its operations into self-delegations
// the producer may be blocked waiting on), and when a producer handover
// nevertheless lands a set on its own producer's delegate — the producing
// set migrated onto the delegate where the nested set lives — the set is
// force-evacuated to the least-occupied peer under the same quiescence +
// outbound-coverage conditions an ordinary steal needs. The precision of
// the ledger is what makes the evacuation live: under the global veto an
// unrelated in-flight stream could veto it forever while the set's
// operations self-enqueued, and a program blocking mid-operation on its
// own nested delegations would livelock (the regression stress proves the
// hang under the legacy veto, which survives as an internal
// negative-control knob). When only the set's own coverage is missing,
// the producer waits for it on the spot — event-driven off the ledger,
// bounded, never on traffic only the victim itself could drain — because
// for a program about to block, that delegation is the engine's last
// scheduling decision. recRoute verifies the handover property per nested
// set; Checked mode turns a violation into a panic, and re-asserts ledger
// coverage immediately before every owner publish as a cross-check. The
// producer discipline sharpens accordingly: under stealing, a set must
// receive its delegations from the operations of a single producing set
// (or from the program context) per epoch — one producing SET, not merely
// one context — so that a migration of the producing set moves all of the
// nested set's delegations together.
//
// On top of the handoff protocol sit two placement heuristics: hot-set
// seeded placement — BeginIsolation ranks the closing epoch's sets by
// delegated-op count (near-free from the owner table) and pre-places the
// top few round-robin across delegates, instead of letting first-touch
// assignment pile them onto whichever delegate looked emptiest at the
// epoch's first instant — and an in-epoch adaptive steal policy, an EWMA
// of the max/min delegate-occupancy ratio sampled at drain-run boundaries
// (with a final sample as each delegate parks, so a spun-down pool's
// stale extremes do not freeze the signal) that pulls the
// capacity-derived threshold toward its clamp floor and relaxes the
// thief-eligibility ratio (4x at balance, clamped [2,8]) in skewed
// epochs, and keeps ownership sticky in balanced ones. Both reset to
// their configured base at every BeginIsolation — the adaptation is
// in-epoch by contract — and an explicit WithStealThreshold pins both.
// Stats reports Steals, Handoffs, ForcedEvacs, OutboundVetoes,
// OutboundTracked, ThresholdAdjusts, and HotSetsPlaced for all of it.
//
// BenchmarkDelegateOverhead, BenchmarkRecursiveOverhead, BenchmarkSPSC,
// BenchmarkLane, BenchmarkCoreDelegateSkewed and BenchmarkRecursiveSkewed
// measure these paths; Runtime.Stats reports delegation, batching,
// stealing, handoff, drain, recursive, spill, and per-phase time
// counters.
//
// # Fault containment
//
// A panic in a delegated operation does not kill the process and does not
// wedge a barrier. Both engines run invocations inside recover()-protected
// execution spans; a recovered panic is recorded (value plus the stack of
// the original failure site) and the faulted operation is counted as
// executed, so every ledger the scheduling protocols rest on — flat
// occupancy, recursive per-lane coverage, barrier quiescence sums, the
// whole-set handoff proofs of the two stealing sections above — keeps
// advancing and the delegate goroutine stays alive.
//
// Determinism is preserved by set poisoning. The faulting operation's
// serialization set is poisoned for the remainder of the isolation epoch:
// every subsequent delegation to it is dropped-but-counted, so the set
// executes exactly its program-order prefix up to the faulting operation
// and nothing after — the same prefix on every run, because per-set
// program order is the model's invariant. Poisoned sets are never stolen,
// force-evacuated, or hot-seeded into the next epoch; the poison is
// written before the faulted operation's counters are published, so any
// context that proves the set quiescent has already observed it. Dropped
// operations never run at all — a fault mid-set also deterministically
// truncates the nested delegations its dropped successors would have
// issued. Poisoning clears at the next BeginIsolation; fault records
// persist for the runtime's lifetime.
//
// Faults surface as values, not crashes: Runtime.Err aggregates every
// contained panic into one error (ErrPanic-kind *Error values wrapping
// *PanicError, which carries the set, context, epoch, recovered value,
// and original stack), Runtime.SetErr and the wrappers' Err methods
// scope the report to one set, and Runtime.Poisoned answers for the
// current epoch. Checked mode fails fast instead: a delegation to a
// poisoned set panics at the delegation site with the original stack.
// Stats reports Panics, PoisonedSets, and DroppedOps; tracing emits a
// TracePanic event per contained fault.
//
// One discipline falls on user code: an operation that spin-waits on the
// side effects of operations in OTHER sets can hang if those operations
// are dropped by poisoning — synchronize through the runtime (epoch
// barriers, SyncSet), which containment guarantees still close, rather
// than through ad-hoc waits on delegated effects. The barrier watchdog
// (Config.Watchdog; on by default under Checked) turns any such hang —
// or an engine liveness bug — into a panic with a dump of per-delegate
// queue depths and ledger positions after a configurable no-progress
// bound. The chaos-injection harness (internal/chaos) drives all of this
// under test: deterministic and seeded-probabilistic panics injected
// across every engine mode, asserting survival, byte-identical poisoning
// points, and untouched sibling sets.
//
// The fault-free cost is one nil pointer load on the delegation path and
// one per drain run — all poison state is allocated lazily on the first
// contained panic, and the alloc gates pin the armed hot path at 0
// allocs/op.
//
// Fault records are retained in a bounded ring (WithFaultRecordBound,
// default 1024): a runtime that serves for weeks must not let every
// contained panic pin its captured stack forever. Evicted records are
// counted in Stats.DroppedFaults; the Panics counter and the poisoning
// discipline are unaffected, and Err/SetErr describe the most recent
// faults. SetErr is indexed per set — O(faults on that set) — because the
// serving tier calls it on every failed request.
//
// # Serving tier
//
// internal/serve and cmd/ssserve put the model in front of real traffic:
// serialization sets as a session-affinity request router. Each request's
// key (user id, session, tenant) hashes to a serialization set via
// StringSet, and the request's handler is delegated to that set — so
// requests for one key execute in arrival order on one delegate at a time
// (per-key causal order, no per-session locks), requests for different
// keys run concurrently across the pool, and the whole-set stealer
// rebalances hot keys under skew. One bad request maps to one failed
// session: a panicking handler poisons only its key's set for the epoch
// (those requests fail fast, 500 with the fault attached via SetErr)
// while every other key keeps serving.
//
// The architecture honors the model's central discipline — the program
// context is the sole caller of Runtime methods — by making the router
// goroutine the program context: HTTP handler goroutines pass jobs over
// one bounded channel and park on per-job done channels; the router
// delegates each job to its key's set and rotates isolation epochs on a
// timer. Rotation is the serving repair loop: the barrier proves the pool
// quiescent, jobs whose delegations were dropped on a poison seam are
// swept to definitive 500s (after the barrier the sweep is exact, not
// heuristic), the Stats snapshot republishes for the metrics scrape, and
// BeginIsolation clears the poison so faulted keys heal. Admission
// control (inflight budget, bounded queue) and per-key token buckets
// repel overload on the handler goroutines before the router is touched;
// graceful drain stops admission, serves everything accepted, and reports
// stragglers with Runtime.SchedDump. Histogram (fixed-bucket, atomic,
// allocation-free Observe) carries the per-set latency and queue-depth
// metrics; Runtime.QueueDepths exposes per-delegate backlogs to the
// scrape. The serving stress tests assert per-key ordering under skewed
// concurrent load, drain completeness (no accepted request unanswered),
// and poisoned-session isolation at the HTTP surface.
//
// Between the router and the work it runs sits the robustness layer. A
// pluggable Backend abstraction executes requests — in-process handlers,
// HTTP upstream proxies, or a rotation Pool of either in which every
// member is health-gated by its own circuit breaker (consecutive
// failures open it, a cooldown later exactly one half-open probe decides
// reclose-or-reopen). Per-request deadlines are fixed once at admission
// and enforced at every seam where the tier holds the request: on
// delivery at the router, at the queue front when slower epoch-mates
// consumed the budget, inside the backend via context deadline, and at
// the epoch-rotation sweep — so an expired request always resolves to a
// definitive 504 and never parks a connection, with the sweep as the
// backstop that makes the guarantee unconditional. Idempotent requests
// that hit a backend failure retry with capped, deterministically
// jittered exponential backoff, re-entering the router so attempts stay
// serialized with the key's other requests; and a slow-key watchdog
// degrades a persistently slow key to 503 sheds for the remainder of the
// epoch (healed at rotation, the same discipline as poison). The
// adversarial load harness (internal/loadgen, cmd/ssload) closes the
// loop by driving a live server with skewed deterministic traffic
// against chaos-injected backends (internal/chaos latency spikes,
// seeded errors, flap windows) and asserting the contract from the
// client side: per-key order across the fleet, bounded healthy p99, an
// error budget, breaker open-and-recover observed on /metrics, zero
// hung requests, and drain with nothing accepted left unanswered.
//
// # Durable sessions
//
// The serving tier's persistence layer (internal/durable, wired in
// internal/serve) leans on the same barrier that powers fault repair:
// EndIsolation proves the delegate pool quiescent, which makes the
// rotation instant a consistent cut of all session state — no request is
// half-applied anywhere, and per-key causal order means the cut contains
// every effect of each acknowledged request or none of its successors.
// So the router captures dirty sessions at the barrier and hands them to
// a write-behind snapshot writer (checksummed records, write-temp-sync-
// rename commit, generational GC), swapping in the next epoch's journal
// at the same instant so the closing journal is provably a subset of the
// snapshot being written. Between rotations each executed request
// appends its session's post-state to the journal before its response is
// released; the fsync policy (per-request, per-rotation, or never)
// buys the operator an explicit acked-loss bound under kill -9. Boot
// recovery walks back to the newest valid snapshot, replays journal
// generations on top (monotonic by sequence, so overlap is harmless),
// truncates a torn tail at the first bad frame, and commits a fresh boot
// snapshot before admission. Failures degrade rather than wedge: a
// failed commit or append is counted and serving continues on the
// previous recovery point. The crash-restart drill (ssload -recovery)
// proves the bounds against real processes: SIGKILL mid-traffic,
// restart on the same state dir, and per-key assertions that no
// acknowledged sequence regressed past the policy's floor.
//
// # Elastic runtime
//
// The delegate pool can be resized while the runtime is live. The design
// follows directly from the epoch discipline: an isolation-epoch boundary
// is the only point in this model where resizing is safe, because it is
// the only point where anything global is known. Between boundaries,
// operations for a set may be in flight in a delegate's queue, a steal
// handshake may be mid-transfer, and the recursive engine's per-producer
// lanes may hold unacknowledged sends — moving a set or retiring a
// delegate in that state would either reorder a set's operations
// (breaking the one invariant the model promises) or strand them. At the
// boundary, the barrier has proven every queue drained and every
// delegation ledger balanced, so set-to-delegate placement is pure data:
// it can be rewritten wholesale, exactly as the epoch machinery already
// rewrites it for adaptive thresholds and hot-set seeding.
//
// Mechanically, [Runtime.Resize] and [Runtime.Reconfigure] only record a
// desired [RuntimeConfig]; the next BeginIsolation applies it. Capacity
// and occupancy are split: every delegate structure (queues, lane
// matrices, counters) is pre-allocated for WithMaxDelegates at New, and
// resizing only moves the active prefix — so context numbering, reducible
// views, and trace buffers stay valid across any resize, and the hot path
// pays nothing (the steal threshold and active count are single atomic
// loads that exist anyway). Scale-up spawns goroutines for the new
// prefix, rebuilds the placement tables, and re-seeds hot sets. Scale-down
// must also evacuate: every set owned by a closing delegate is reassigned
// into the surviving prefix before the delegate parks, because a set left
// on a retired delegate would silently stop executing — its operations
// would queue forever on a goroutine that exited. The evacuation argument
// is the same quiescence argument as the steal handshake's, but simpler:
// at the boundary the closing delegate's queue is provably empty and its
// lanes balanced, so reassignment is a table write with no in-flight
// operations to race. Checked mode asserts exactly this — a parked
// delegate with a non-empty queue or an unbalanced lane ledger panics
// ("traffic survived a retired delegate"). Parked delegates keep their
// structures (counters frozen, so all-capacity ledger sums still
// balance) and are respawned on the next scale-up, seeding their
// execution counters from the frozen values.
//
// The serving tier turns this into autoscaling: the router samples queue
// occupancy just before each rotation's barrier (the closing epoch's
// backlog is the demand signal), folds it into an EWMA, and steps the
// pool by one delegate when occupancy leaves the [0.5, 2.0]
// ops-per-delegate band, clamped to [MinDelegates, MaxDelegates] with a
// cooldown in rotations so one burst cannot slam the pool to a rail.
// POST /admin/resize records a manual target that wins over the
// autoscaler's next decision; both apply at the rotation, so a resize is
// invisible to request ordering by construction. The resize determinism
// tests pin the strongest form of that claim: a run whose pool is resized
// up and down mid-stream produces byte-identical per-set operation logs
// to a fixed-size run.
package prometheus
