// Package prometheus implements the serialization-sets parallel execution
// model of Allen, Sridharan & Sohi, "Serialization Sets: A Dynamic
// Dependence-Based Parallel Execution Model" (PPoPP 2009), as a Go library.
//
// # Model
//
// A program using serialization sets is written as an ordinary sequential
// program. Execution is divided into aggregation epochs (plain sequential
// execution, the default) and isolation epochs (opened with
// Runtime.BeginIsolation, closed with Runtime.EndIsolation). During an
// isolation epoch the program partitions its data into disjoint domains:
//
//   - read-only data (ReadOnly[T]) may be read by any operation;
//   - privately-writable data (Writable[T]) may be read and written only by
//     its current owner;
//   - reducible data (Reducible[T]) accumulates into per-context views that
//     are folded together on first use in the following aggregation epoch.
//
// Potentially independent operations on writable data are delegated
// (Writable.Delegate). A serializer — a small piece of code run at the
// delegation point — maps each operation to a serialization set.
// Operations in the same set execute in program order on a single delegate
// context; operations in different sets may execute concurrently. Because
// every operation has a place in a single logical order, parallel execution
// is deterministic: there are no data races, and deadlock, livelock and
// priority inversion cannot occur.
//
// # Correspondence with the paper's C++ API (Table 1)
//
//	initialize()                 -> Init(opts...)
//	terminate()                  -> Runtime.Terminate()
//	sleep()                      -> Runtime.Sleep()
//	begin_isolation()            -> Runtime.BeginIsolation()
//	end_isolation()              -> Runtime.EndIsolation()
//	read_only<T>::call           -> ReadOnly[T].Call / Get
//	reducible<T>::call           -> Reducible[T].Update / View / Result
//	writable<T,S>::call          -> Writable[T].Call (private) / CallRO (read-only)
//	writable<T,S>::delegate      -> Writable[T].Delegate (serializer S)
//	writable<T,S>::delegate(ss)  -> Writable[T].DelegateTo(set, ...) (external serializer)
//	writable<T,S>::doall         -> DoAll(rt, objs, fn)
//
// The paper's predefined serializers map to Sequence (instance number),
// Object (address-like scrambled identity) and Null (external serializer
// supplied at the delegation site); internal serializers are arbitrary
// functions of the wrapped object (UseSerializer / NewWritableSer).
//
// Delegated methods must not return values (restructure to store results in
// the object and read them after synchronization), mirroring the paper's
// void-return restriction. In Go the delegated operation is a closure
// receiving (*Ctx, *T); the Ctx identifies the executing context and is how
// reducible views are addressed.
//
// # Debugging
//
// Sequential() builds a runtime in the paper's debug mode: every delegation
// runs inline in the program goroutine, in program order, while serializers
// and all dynamic checks still execute. Checked() enables the dynamic error
// detection of §3.3: serializer-consistency tagging and the
// read-only/private state machine, which panic with *Error on violation.
package prometheus
