package prometheus

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// This file is the determinism stress suite pinning the paper's central
// invariant — operations in one serialization set execute in program order,
// so parallel runs are bit-identical — under the two features most likely to
// perturb ordering: the program-side delegation batch buffer and the
// occupancy-aware set stealing. The workloads mirror examples/bank and
// examples/reverse_index, skewed so that a few sets carry most of the work
// (the uneven-chain scenario stealing exists for). Every delegated operation
// records itself in per-set logs; the logs from repeated parallel runs must
// be byte-identical to each other and to the Sequential() debug-mode run.
//
// Which delegate executes a set is allowed to vary run to run (stealing is a
// placement decision); the per-set operation ORDER is not.

// stealStressOpts is the runtime shape under test: stealing plus delegation
// batching, with an eager threshold so handoffs actually fire.
func stealStressOpts() []Option {
	return []Option{
		WithDelegates(4),
		WithPolicy(LeastLoaded),
		WithStealing(),
		WithStealThreshold(2),
		WithDelegateBatch(8),
	}
}

// runBankWorkload replays a deterministic transaction log against per-account
// serialization sets (the examples/bank shape) and returns the byte-encoded
// per-set operation order: each deposit appends its global op number to its
// account's log, and transfers are dependent operations that reclaim
// ownership through Call. 90% of the deposits hit 4 "hot" accounts, so under
// stealing the hot sets migrate off whichever delegate they pile up on.
func runBankWorkload(opts ...Option) ([]byte, Stats) {
	rt := Init(opts...)
	defer rt.Terminate()

	type account struct {
		balance int64
		oplog   []uint32
	}
	const nAccounts = 16
	const nHot = 4
	accounts := make([]*Writable[account], nAccounts)
	for i := range accounts {
		accounts[i] = NewWritable(rt, account{balance: 1000})
	}

	r := rand.New(rand.NewSource(41))
	rt.BeginIsolation()
	for op := 0; op < 6000; op++ {
		opID := uint32(op)
		switch {
		case op%97 == 0:
			// Transfer: reclaim both accounts in the program context.
			from, to := r.Intn(nAccounts), r.Intn(nAccounts)
			if from == to {
				continue
			}
			amount := int64(r.Intn(40))
			ok := Call(accounts[from], func(a *account) bool {
				if a.balance < amount {
					return false
				}
				a.balance -= amount
				return true
			})
			if ok {
				accounts[to].Call(func(a *account) { a.balance += amount })
			}
		case op%53 == 0:
			// Epoch break: new partition, owner table rebuilt from scratch.
			rt.EndIsolation()
			rt.BeginIsolation()
		default:
			idx := r.Intn(nHot) // hot accounts: 90% of deposits
			if r.Intn(10) == 9 {
				idx = nHot + r.Intn(nAccounts-nHot)
			}
			amount := int64(r.Intn(100))
			accounts[idx].Delegate(func(c *Ctx, a *account) {
				a.balance += amount
				a.oplog = append(a.oplog, opID)
			})
		}
	}
	rt.EndIsolation()

	var buf bytes.Buffer
	for i, w := range accounts {
		w.Call(func(a *account) {
			fmt.Fprintf(&buf, "account %d balance %d oplog %v\n", i, a.balance, a.oplog)
		})
	}
	return buf.Bytes(), rt.Stats()
}

// runReverseIndexWorkload builds a word->documents index sharded by word
// hash (the examples/reverse_index shape): each posting is DelegateTo'd to
// its word's shard set, so a shard's posting list is that set's operation
// order. The vocabulary is Zipf-flavored — a few words dominate — which
// concentrates load on a few shards.
func runReverseIndexWorkload(opts ...Option) ([]byte, Stats) {
	rt := Init(opts...)
	defer rt.Terminate()

	type posting struct {
		doc  uint32
		word string
	}
	const nShards = 12
	shards := make([]*Writable[[]posting], nShards)
	for i := range shards {
		shards[i] = NewWritableSer(rt, []posting{}, NullSerializer[[]posting]())
	}
	shardOf := func(word string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(word))
		return h.Sum64() % nShards
	}

	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	r := rand.New(rand.NewSource(97))
	rt.BeginIsolation()
	for doc := 0; doc < 800; doc++ {
		docID := uint32(doc)
		words := 4 + r.Intn(8)
		for k := 0; k < words; k++ {
			// Zipf-ish choice: half of all postings use the first 3 words.
			var w string
			if r.Intn(2) == 0 {
				w = vocab[r.Intn(3)]
			} else {
				w = vocab[r.Intn(len(vocab))]
			}
			p := posting{doc: docID, word: w}
			shards[shardOf(w)].DelegateTo(shardOf(w), func(c *Ctx, s *[]posting) {
				*s = append(*s, p)
			})
		}
		if doc%200 == 199 {
			rt.EndIsolation()
			rt.BeginIsolation()
		}
	}
	rt.EndIsolation()

	var buf bytes.Buffer
	for i, sh := range shards {
		sh.Call(func(s *[]posting) {
			fmt.Fprintf(&buf, "shard %d: %v\n", i, *s)
		})
	}
	return buf.Bytes(), rt.Stats()
}

func assertByteIdenticalRuns(t *testing.T, name string,
	run func(opts ...Option) ([]byte, Stats)) {
	t.Helper()
	want, _ := run(Sequential())
	var steals, drained uint64
	const runs = 6
	for i := 0; i < runs; i++ {
		got, st := run(stealStressOpts()...)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s run %d: per-set operation order diverged from sequential\n got: %s\nwant: %s",
				name, i, firstDiffLine(got, want), firstDiffLine(want, got))
		}
		steals += st.Steals
		drained += st.DrainedOps
	}
	t.Logf("%s: %d runs byte-identical (%d steals, %d batch-drained ops total)",
		name, runs, steals, drained)
}

// firstDiffLine trims a mismatching encoding to its first differing line so
// failures are readable.
func firstDiffLine(got, want []byte) []byte {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := range g {
		if i >= len(w) || !bytes.Equal(g[i], w[i]) {
			return g[i]
		}
	}
	return []byte("(prefix of the other)")
}

func TestBankDeterministicUnderStealing(t *testing.T) {
	assertByteIdenticalRuns(t, "bank", runBankWorkload)
}

func TestReverseIndexDeterministicUnderStealing(t *testing.T) {
	assertByteIdenticalRuns(t, "reverse_index", runReverseIndexWorkload)
}

// TestDeterminismMatrixUnderStealing reuses the random-program generator of
// determinism_test.go with stealing-enabled shapes layered on top: final
// states and observed reads must match the sequential run for arbitrary
// op/epoch interleavings, not just the two curated workloads.
func TestDeterminismMatrixUnderStealing(t *testing.T) {
	shapes := [][]Option{
		{WithDelegates(2), WithPolicy(LeastLoaded), WithStealing(), WithStealThreshold(1)},
		{WithDelegates(4), WithPolicy(LeastLoaded), WithStealing()},
		{WithDelegates(4), WithPolicy(LeastLoaded), WithStealing(), WithDelegateBatch(16)},
		{WithDelegates(8), WithPolicy(LeastLoaded), WithStealing(), WithStealThreshold(2), WithQueueCapacity(4)},
	}
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 6; trial++ {
		nObjs := 1 + r.Intn(10)
		ops := genProgram(r, nObjs, 400)
		wantFinal, wantObs := runProgram(ops, nObjs, Sequential())
		for si, shape := range shapes {
			gotFinal, gotObs := runProgram(ops, nObjs, shape...)
			if fmt.Sprint(gotFinal) != fmt.Sprint(wantFinal) {
				t.Fatalf("trial %d shape %d: final state diverged\n got %v\nwant %v", trial, si, gotFinal, wantFinal)
			}
			if fmt.Sprint(gotObs) != fmt.Sprint(wantObs) {
				t.Fatalf("trial %d shape %d: observed reads diverged\n got %v\nwant %v", trial, si, gotObs, wantObs)
			}
		}
	}
}
