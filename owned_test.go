package prometheus

import (
	"sync/atomic"
	"testing"
)

func TestOwnedSingleOwnerOK(t *testing.T) {
	rt := newRT(t, WithDelegates(2), WithVirtualDelegates(2))
	shared := NewOwned(rt, []int{1, 2, 3})
	w := NewWritable(rt, 0)
	var sum atomic.Int64
	rt.BeginIsolation()
	for i := 0; i < 100; i++ {
		w.Delegate(func(c *Ctx, _ *int) {
			for _, v := range *shared.Use(c) {
				sum.Add(int64(v))
			}
		})
	}
	rt.EndIsolation()
	if got := sum.Load(); got != 600 {
		t.Fatalf("sum = %d, want 600", got)
	}
}

func TestOwnedCrossOwnerDetected(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	shared := NewOwned(rt, 7)
	rt.BeginIsolation()
	_ = shared.Use(rt.ProgramCtx()) // program context claims
	if got := shared.Owner(); got != 0 {
		t.Fatalf("Owner = %d, want 0", got)
	}
	// A delegated access from a different context must be detected. The
	// panic fires inside the delegate goroutine; surface it via a channel.
	caught := make(chan any, 1)
	w := NewWritable(rt, 0)
	w.Delegate(func(c *Ctx, _ *int) {
		defer func() { caught <- recover() }()
		shared.Use(c)
	})
	rt.EndIsolation()
	r := <-caught
	e, ok := r.(*Error)
	if !ok || e.Kind != ErrPartitionViolation {
		t.Fatalf("expected partition violation, got %v", r)
	}
}

func TestOwnedReleasedAtEpochEnd(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	shared := NewOwned(rt, 1)
	rt.BeginIsolation()
	_ = shared.Use(rt.ProgramCtx())
	rt.EndIsolation()
	if shared.Owner() != -1 {
		t.Fatal("ownership should lapse outside isolation")
	}
	// A different context may claim in the next epoch.
	w := NewWritable(rt, 0)
	ok := make(chan bool, 1)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, _ *int) {
		defer func() { ok <- recover() == nil }()
		shared.Use(c)
	})
	rt.EndIsolation()
	if !<-ok {
		t.Fatal("fresh epoch claim should succeed")
	}
}

func TestOwnedAggregationUnrestricted(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	shared := NewOwned(rt, 5)
	*shared.Use(rt.ProgramCtx()) = 6
	if *shared.Use(rt.ProgramCtx()) != 6 {
		t.Fatal("aggregation access failed")
	}
	if shared.Owner() != -1 {
		t.Fatal("no ownership outside isolation")
	}
}
