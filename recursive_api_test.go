package prometheus

import (
	"sync/atomic"
	"testing"
)

// Public-API tests for the recursive-delegation extension.

func TestPublicRecursiveDelegation(t *testing.T) {
	rt := newRT(t, WithDelegates(4), Recursive())
	var leaves atomic.Int64
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, p *int) {
		for i := 0; i < 8; i++ {
			i := i
			c.Delegate(uint64(1000+i), func(c2 *Ctx) {
				for j := 0; j < 8; j++ {
					c2.Delegate(uint64(2000+i*8+j), func(*Ctx) { leaves.Add(1) })
				}
			})
		}
	})
	rt.EndIsolation()
	if got := leaves.Load(); got != 64 {
		t.Fatalf("leaves = %d, want 64", got)
	}
}

func TestRecursiveWithReducible(t *testing.T) {
	rt := newRT(t, WithDelegates(4), Recursive())
	sum := NewReducible(rt, func() int64 { return 0 }, func(dst, src *int64) { *dst += *src })
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, p *int) {
		for i := 1; i <= 20; i++ {
			v := int64(i)
			c.Delegate(uint64(i), func(c2 *Ctx) {
				sum.Update(c2, func(s *int64) { *s += v })
			})
		}
	})
	rt.EndIsolation()
	if got := *sum.Result(); got != 210 {
		t.Fatalf("sum = %d, want 210", got)
	}
}

func TestRecursiveIncompatibleOptionsPanic(t *testing.T) {
	for _, opts := range [][]Option{
		{Recursive(), WithProgramShare(1)},
		{Recursive(), WithPolicy(LeastLoaded)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("incompatible option combination should panic")
				}
			}()
			Init(opts...).Terminate()
		}()
	}
}

func TestCtxDelegateWithoutRecursivePanics(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	caught := make(chan any, 1)
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, p *int) {
		defer func() { caught <- recover() }()
		c.Delegate(1, func(*Ctx) {})
	})
	rt.EndIsolation()
	if <-caught == nil {
		t.Fatal("Ctx.Delegate without Recursive should panic in the delegate")
	}
}

func TestRecursiveDeterministicRepeats(t *testing.T) {
	run := func() []int {
		rt := Init(WithDelegates(4), Recursive())
		defer rt.Terminate()
		out := make([]int, 16)
		w := NewWritable(rt, 0)
		rt.BeginIsolation()
		w.Delegate(func(c *Ctx, p *int) {
			for i := 0; i < 16; i++ {
				i := i
				c.Delegate(uint64(100+i), func(*Ctx) { out[i] = i * i })
			}
		})
		rt.EndIsolation()
		return out
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("length changed")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d diverged at %d", trial, i)
				}
			}
		}
	}
}

func TestReducibleClear(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	r := NewReducible(rt, func() int { return 0 }, func(dst, src *int) { *dst += *src })
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, _ *int) { r.Update(c, func(v *int) { *v = 5 }) })
	rt.EndIsolation()
	if got := *r.Result(); got != 5 {
		t.Fatalf("result = %d, want 5", got)
	}
	r.Clear()
	if got := *r.Result(); got != 0 {
		t.Fatalf("after Clear, result = %d, want 0", got)
	}
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer expectError(t, ErrAPIMisuse)
	r.Clear()
}

func TestWritableSyncMethod(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	for i := 0; i < 50; i++ {
		w.Delegate(func(c *Ctx, p *int) { *p++ })
	}
	w.Sync() // explicit reclaim without a call
	rt.EndIsolation()
	if got := Call(w, func(p *int) int { return *p }); got != 50 {
		t.Fatalf("after Sync, n = %d, want 50", got)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	rt := newRT(t, WithDelegates(2), WithTrace())
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	for i := 0; i < 10; i++ {
		w.Delegate(func(c *Ctx, p *int) { *p++ })
	}
	rt.EndIsolation()
	events := rt.TraceEvents()
	execs := 0
	for _, e := range events {
		if e.Kind == TraceExec {
			execs++
		}
	}
	if execs != 10 {
		t.Fatalf("trace recorded %d execs, want 10", execs)
	}
}
