package prometheus

import (
	"errors"
	"sort"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
)

// Stats re-exports the runtime counters and the per-phase time breakdown
// (used to regenerate the paper's Figure 5a).
type Stats = core.Stats

// Phase identifies an epoch type in Stats.
type Phase = core.Phase

// Phases, re-exported from the engine.
const (
	PhaseAggregation = core.PhaseAggregation
	PhaseIsolation   = core.PhaseIsolation
	PhaseReduction   = core.PhaseReduction
)

// SchedPolicy selects the delegate-assignment policy.
type SchedPolicy = core.SchedPolicy

// Assignment policies: StaticMod is the paper's (§4); LeastLoaded is the
// dynamic-scheduling extension the paper names as future work.
const (
	StaticMod   = core.StaticMod
	LeastLoaded = core.LeastLoaded
)

// Ctx identifies the execution context running a delegated operation. The
// program context has ID 0; delegate contexts are numbered from 1. Reducible
// views are addressed by Ctx. A Ctx must not be retained beyond the
// delegated call it was passed to.
type Ctx struct {
	rt *Runtime
	id int
}

// ID returns the context number in [0, Runtime.NumContexts()).
func (c *Ctx) ID() int { return c.id }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// ctxTramp is the Ctx.Delegate trampoline: one static function shared by
// every recursive delegation, so issuing one builds no per-call closure.
// p1 is the Runtime, p2 the user callback's funcval pointer.
func ctxTramp(ctx int, p1, p2 unsafe.Pointer) {
	rt := (*Runtime)(p1)
	fn := ptrFunc[func(*Ctx)](p2)
	fn(&rt.ctxs[ctx])
}

// Delegate assigns fn to the given serialization set from inside a
// delegated operation (recursive delegation; requires the Recursive
// option). Per-set ordering follows the delegating context's program
// order; a set must not receive delegations from two different contexts in
// one isolation epoch. Steady state this is the same zero-allocation
// trampoline fast path the root wrappers use: the invocation record is
// written by value into the producer's ring lane on the set's owner.
func (c *Ctx) Delegate(set uint64, fn func(c *Ctx)) {
	rt := c.rt
	rt.core.DelegateFromCall(c.id, set, ctxTramp, unsafe.Pointer(rt), funcPtr(fn))
}

// Option configures Init.
type Option func(*core.Config)

// WithDelegates sets the number of delegate contexts (paper: delegate
// threads; default GOMAXPROCS-1).
func WithDelegates(n int) Option { return func(c *core.Config) { c.Delegates = n } }

// WithMaxDelegates sets the pool capacity ceiling for Resize/Reconfigure
// (default: the initial delegate count, i.e. a fixed pool). All pool
// structures are pre-allocated to this capacity at Init so a live resize
// never reallocates anything a running delegate indexes into; in recursive
// mode the lane matrix costs O(MaxDelegates²) rings, so size the ceiling
// to plausible load, not to the machine.
func WithMaxDelegates(n int) Option { return func(c *core.Config) { c.MaxDelegates = n } }

// WithVirtualDelegates sets the size of the static assignment table (§4).
func WithVirtualDelegates(n int) Option { return func(c *core.Config) { c.VirtualDelegates = n } }

// WithProgramShare assigns n virtual delegates to the program context itself
// (the paper's assignment ratio); their operations execute inline.
func WithProgramShare(n int) Option { return func(c *core.Config) { c.ProgramShare = n } }

// WithQueueCapacity sets the per-delegate communication queue capacity; in
// recursive mode it sizes each producer lane's bounded ring (overflow
// spills to an unbounded list, so small rings stay deadlock-free).
func WithQueueCapacity(n int) Option { return func(c *core.Config) { c.QueueCapacity = n } }

// WithDelegateBatch bounds the program context's delegation buffer: runs of
// up to n consecutive delegations bound for the same busy delegate are
// written to its queue as one batch with a single wake-up signal. n = 1
// disables batching. Operations are never buffered while the target
// delegate has no backlog, the buffer flushes as soon as the delegate is
// observed drained, and every synchronization point (sync, barrier, epoch
// transition, termination) flushes first — so a buffered operation waits at
// most until the program context's next delegation or runtime call.
func WithDelegateBatch(n int) Option { return func(c *core.Config) { c.DelegateBatch = n } }

// WithPolicy selects the delegate-assignment policy.
func WithPolicy(p SchedPolicy) Option { return func(c *core.Config) { c.Policy = p } }

// WithStealing enables the occupancy-aware work-stealing extension to the
// LeastLoaded policy. When a set's sticky owner has at least StealThreshold
// outstanding operations and every operation previously delegated to that
// set has finished executing (the set is quiescent — a safe handoff
// boundary), the next delegation hands the whole set to the delegate with
// the smallest occupancy, provided it is idle or at most a quarter as loaded
// as the victim. Sets — never individual invocations — are the steal unit,
// so operations within a set still execute in program order and the model's
// determinism guarantee is unchanged; only the placement of whole sets
// responds to load. Requires WithPolicy(LeastLoaded).
//
// In recursive mode (Recursive + WithPolicy(LeastLoaded)) the same
// contract holds across many producer contexts: a set migrates only when
// every producer's newest operation on it has executed on the owner AND
// every nested delegation the set's own operations issued has drained —
// tracked precisely per set by an outbound ledger, so other sets'
// in-flight traffic never blocks a migration (the multi-producer
// quiescent handoff; see doc.go). Placement seeds from the static
// assignment table, the previous epoch's hottest sets are pre-placed
// round-robin at BeginIsolation, and the steal threshold and
// thief-eligibility ratio adapt within each epoch to the observed
// delegate-occupancy imbalance unless pinned with WithStealThreshold.
func WithStealing() Option { return func(c *core.Config) { c.Stealing = true } }

// WithStealThreshold pins the victim backlog (outstanding operations) at
// which stealing engages. When unset the threshold starts from the queue
// capacity (QueueCapacity/4, clamped to [core.MinStealThreshold,
// core.MaxStealThreshold]) and then adapts within each epoch: delegates
// feed the max/min occupancy ratio they observe at drain-run boundaries
// into an EWMA, and a skewed epoch pulls the effective threshold toward
// the clamp floor — and relaxes the thief-eligibility ratio (4x at
// balance, clamped [2,8]) — while a balanced one keeps ownership sticky;
// both reset to their base at every BeginIsolation. An explicit threshold
// pins the threshold AND the ratio for the run. Lower explicit values
// rebalance skew sooner; higher ones keep ownership stickier under
// transient pipelining. Ignored without WithStealing.
func WithStealThreshold(n int) Option { return func(c *core.Config) { c.StealThreshold = n } }

// WithFaultRecordBound caps how many contained-panic records the runtime
// retains for Err/SetErr (default core.DefaultFaultRecordBound). Once the
// bound is reached the oldest record is evicted and Stats.DroppedFaults
// counts it; the Panics counter and set poisoning are unaffected. A
// long-lived serving runtime needs the bound — without it every contained
// panic pins its captured stack forever.
func WithFaultRecordBound(n int) Option { return func(c *core.Config) { c.FaultRecordBound = n } }

// Sequential builds the runtime in the paper's debug mode (§3.3): all
// delegations execute inline, in program order, with checks still active.
func Sequential() Option { return func(c *core.Config) { c.Sequential = true } }

// Checked enables dynamic error detection (§3.3). The paper disables these
// checks for performance measurements; so do the benchmarks here.
func Checked() Option { return func(c *core.Config) { c.Checked = true } }

// WithTrace enables execution tracing; retrieve events with
// Runtime.TraceEvents and analyze them with the trace package.
func WithTrace() Option { return func(c *core.Config) { c.Trace = true } }

// Recursive enables recursive delegation, the extension the paper names as
// future work (§4): delegated operations may delegate further operations
// via Ctx.Delegate. A serialization set must receive delegations from only
// one context per isolation epoch for the execution to stay deterministic
// (under stealing, the engine may hand that producer role over at
// quiescent points — the guarantee is unchanged). Incompatible with
// WithProgramShare. Placement uses the paper's static policy by default;
// combine with WithPolicy(LeastLoaded) and WithStealing for the
// occupancy-aware whole-set rebalancer.
func Recursive() Option { return func(c *core.Config) { c.Recursive = true } }

// Runtime is the serialization-sets runtime. Create one with Init; the
// creating goroutine is the program context and is the only goroutine that
// may call Runtime methods. Delegated closures receive a *Ctx instead.
type Runtime struct {
	core     *core.Runtime
	ctxs     []Ctx // one per context id; handed to delegated closures
	instance atomic.Uint64
	checked  bool
}

// Init starts a runtime (paper: initialize()).
func Init(opts ...Option) *Runtime {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	rt := &Runtime{checked: cfg.Checked}
	rt.core = core.New(cfg)
	rt.ctxs = make([]Ctx, rt.core.NumContexts())
	for i := range rt.ctxs {
		rt.ctxs[i] = Ctx{rt: rt, id: i}
	}
	return rt
}

// Terminate shuts down the runtime (paper: terminate()), draining
// outstanding delegated work first.
func (rt *Runtime) Terminate() { rt.core.Terminate() }

// Sleep quiesces delegate contexts during a long aggregation epoch
// (paper: sleep()).
func (rt *Runtime) Sleep() { rt.core.Sleep() }

// BeginIsolation opens an isolation epoch (paper: begin_isolation()).
func (rt *Runtime) BeginIsolation() { rt.core.BeginIsolation() }

// EndIsolation closes the isolation epoch, synchronizing with all delegate
// contexts (paper: end_isolation()).
func (rt *Runtime) EndIsolation() { rt.core.EndIsolation() }

// InIsolation reports whether an isolation epoch is open.
func (rt *Runtime) InIsolation() bool { return rt.core.InIsolation() }

// NumContexts returns the number of execution contexts (1 program +
// MaxDelegates). It is the pool CAPACITY plus one — immutable for the
// runtime's lifetime, so per-context state (reducible views, trace
// buffers) sized from it stays valid across resizes; use ActiveDelegates
// for the live pool size.
func (rt *Runtime) NumContexts() int { return rt.core.NumContexts() }

// NumDelegates returns the delegate pool CAPACITY (MaxDelegates); see
// ActiveDelegates for the current live count.
func (rt *Runtime) NumDelegates() int { return rt.core.NumContexts() - 1 }

// ActiveDelegates returns the number of delegates currently serving the
// pool. Safe from any goroutine.
func (rt *Runtime) ActiveDelegates() int { return rt.core.ActiveDelegates() }

// RuntimeConfig re-exports the runtime-mutable configuration accepted by
// Reconfigure. Zero fields keep their current setting.
type RuntimeConfig = core.RuntimeConfig

// Resize requests the delegate pool be resized to n at the next epoch
// boundary — BeginIsolation is the engine's quiescent point, where owner
// tables rebuild and hot sets re-place, so a resize there preserves per-set
// program order exactly (see doc.go, "Elastic runtime"). Validated
// immediately; safe from any goroutine; last request before the boundary
// wins.
func (rt *Runtime) Resize(n int) error { return rt.core.Resize(n) }

// Reconfigure records a runtime-mutable configuration change (pool size,
// steal-threshold base) to apply at the next epoch boundary. Safe from any
// goroutine.
func (rt *Runtime) Reconfigure(rc RuntimeConfig) error { return rt.core.Reconfigure(rc) }

// CurrentConfig returns the effective runtime-mutable configuration (a
// pending Reconfigure shows up only after the epoch boundary applies it).
// Safe from any goroutine.
func (rt *Runtime) CurrentConfig() RuntimeConfig { return rt.core.RuntimeConfig() }

// ProgramCtx returns the program context handle, for use with reducibles
// from the program context.
func (rt *Runtime) ProgramCtx() *Ctx { return &rt.ctxs[core.ProgramContext] }

// Stats returns a snapshot of runtime counters and phase times.
func (rt *Runtime) Stats() Stats { return rt.core.Stats() }

// TraceEvent re-exports the trace record type.
type TraceEvent = core.TraceEvent

// Trace-event kinds, re-exported.
const (
	TraceExec   = core.TraceExec
	TraceSync   = core.TraceSync
	TraceEpoch  = core.TraceEpoch
	TraceSteal  = core.TraceSteal
	TracePanic  = core.TracePanic
	TraceResize = core.TraceResize
)

// TraceEvents returns the merged trace (nil unless WithTrace was given).
// Program context, aggregation epoch only.
func (rt *Runtime) TraceEvents() []TraceEvent { return rt.core.TraceEvents() }

// Checked reports whether dynamic error detection is enabled.
func (rt *Runtime) Checked() bool { return rt.checked }

// NoSet is the serialization-set id reported in a PanicError when the
// faulted operation belonged to no set (a RunParallel pool task). It is
// reserved: user delegations may not use it.
const NoSet = core.NoSet

// Err reports every panic the runtime has contained so far, aggregated
// into one error (errors.Join of ErrPanic-kind *Error values, each
// wrapping a *PanicError with the recovered value and original stack), in
// (epoch, set) order. Nil when no delegated operation has faulted. A
// contained panic poisons the faulting operation's serialization set for
// the rest of its isolation epoch — the set executed exactly its prefix up
// to the fault, everything after was deterministically dropped — so Err is
// how a program that survived an epoch finds out it did not finish it. Only
// the most recent WithFaultRecordBound faults are retained; Stats.DroppedFaults
// counts evictions. Safe from any goroutine.
func (rt *Runtime) Err() error { return joinFaults(rt.core.Faults()) }

// SetErr reports the contained panics recorded against one serialization
// set, aggregated like Err. Nil when the set never faulted. O(faults on
// that set), and safe from any goroutine — the serving tier calls it from
// handler goroutines to attach fault detail to 500 responses.
func (rt *Runtime) SetErr(set uint64) error { return joinFaults(rt.core.SetFaults(set)) }

// Poisoned reports whether the set is poisoned in the current isolation
// epoch (delegations to it are being dropped). Poisoning clears at the
// next BeginIsolation; fault records — and therefore Err/SetErr — do not.
// Lock-free and safe from any goroutine.
func (rt *Runtime) Poisoned(set uint64) bool { return rt.core.Poisoned(set) }

// PoisonedCount reports how many sets are poisoned in the current
// isolation epoch — the live degradation gauge (Stats.PoisonedSets is the
// cumulative ever-poisoned counter). The serving tier reports it on
// /healthz so orchestrators can tell "draining" from "degraded". Lock-free
// and safe from any goroutine.
func (rt *Runtime) PoisonedCount() int { return rt.core.PoisonedCount() }

// QueueDepths appends each delegate context's current backlog (operations
// routed to it that have not finished executing) to dst and returns the
// extended slice, one entry per delegate. Safe from any goroutine and
// allocation-free when dst has capacity — the serving tier samples it on
// every metrics scrape to feed its queue-depth histograms.
func (rt *Runtime) QueueDepths(dst []uint64) []uint64 { return rt.core.QueueDepths(dst) }

// SchedDump renders the engine's scheduler ledgers — per-delegate queue
// depths and executed counters — as a human-readable report, the same dump
// the barrier watchdog attaches to a wedge panic. A draining server logs it
// when its drain deadline expires to identify stragglers. Program context.
func (rt *Runtime) SchedDump() string { return rt.core.DumpSchedState() }

// joinFaults renders engine fault records as the public error surface.
// The records arrive in containment order, which concurrent faults on
// different delegates make nondeterministic; sorting by (epoch, set) gives
// the report a stable shape.
func joinFaults(faults []core.PanicFault) error {
	if len(faults) == 0 {
		return nil
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Epoch != faults[j].Epoch {
			return faults[i].Epoch < faults[j].Epoch
		}
		return faults[i].Set < faults[j].Set
	})
	errs := make([]error, len(faults))
	for i, f := range faults {
		pe := &PanicError{Set: f.Set, Ctx: f.Ctx, Epoch: f.Epoch, Value: f.Value, Stack: f.Stack}
		errs[i] = &Error{Kind: ErrPanic, Msg: pe.Error(), Err: pe}
	}
	return errors.Join(errs...)
}

// Histogram is a fixed-bucket histogram over int64 samples with lock-free
// atomic counters — the serving tier's latency and queue-depth metric
// primitive. Observe is safe from any goroutine, zero-allocation, and O(
// buckets) with no locks or compare-and-swap loops, so it sits on the
// request hot path; readers (Quantile, Buckets, Count) take a per-bucket
// snapshot that may be slightly torn against concurrent writers — fine for
// monitoring, which is the only intended reader. The sample unit is the
// caller's choice (the serving tier records microseconds); bucket bounds
// are fixed at construction, which is what keeps the write path free of
// resizing coordination.
type Histogram struct {
	bounds []int64         // ascending upper bounds, one per counted bucket
	counts []atomic.Uint64 // len(bounds)+1: bounds buckets plus overflow
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given strictly-ascending bucket
// upper bounds (a sample v lands in the first bucket with v <= bound, or in
// the implicit overflow bucket). Panics on unsorted or empty bounds — the
// construction-time check that keeps Observe check-free.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("prometheus: NewHistogram: no bucket bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("prometheus: NewHistogram: bucket bounds must be strictly ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Zero allocations, no locks; safe from any
// goroutine. The linear bucket scan beats binary search at monitoring
// bucket counts (~10–20): latencies cluster in the low buckets, so the
// scan usually ends within a cache line.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds. Read-only: the slice is the
// histogram's own, shared to keep the metrics exposition path
// allocation-free.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Buckets appends the per-bucket sample counts (len(Bounds())+1 entries,
// the last being the overflow bucket) to dst and returns the extended
// slice. Allocation-free when dst has capacity.
func (h *Histogram) Buckets(dst []uint64) []uint64 {
	for i := range h.counts {
		dst = append(dst, h.counts[i].Load())
	}
	return dst
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank, the standard fixed-bucket
// estimate. Samples in the overflow bucket are attributed to the highest
// bound — the estimate saturates there rather than extrapolating. Returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Snapshot once so total and the walk agree with each other even while
	// writers race the read.
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(counts)-1 {
			if i >= len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1])
			}
			lo := 0.0
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// nextInstance issues wrapper instance numbers (the sequence serializer's
// identity source).
func (rt *Runtime) nextInstance() uint64 { return rt.instance.Add(1) - 1 }
