package prometheus_test

// Alloc-regression tests for the delegation hot path. With Checked and
// Trace off, a steady-state delegation is required to perform zero heap
// allocations: invocation records travel by value through the SPSC rings
// (internal/spsc), and wrappers dispatch through a static per-type
// trampoline plus two payload words (core.Trampoline, tramp.go) instead of
// constructing closures. If one of these tests starts failing, something
// reintroduced a per-operation allocation — typically a closure capture, a
// parameter escaping to the heap, or a pointer-carrying queue.
//
// Warmup loops run first so one-time costs (queue fill, goroutine park/wake
// machinery, LeastLoaded-free default map state) are paid before measuring.

import (
	"runtime"
	"sync/atomic"
	"testing"

	prometheus "repro"
	"repro/internal/core"
)

const allocWarmup = 5000

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(500, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestWritableDelegateZeroAlloc(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2))
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "Writable.Delegate", func() {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestWritableDelegateToZeroAlloc(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2))
	defer rt.Terminate()
	w := prometheus.NewWritableSer(rt, 0, prometheus.NullSerializer[int]())
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		w.DelegateTo(3, func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "Writable.DelegateTo", func() {
		w.DelegateTo(3, func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestDoAllZeroAlloc(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2))
	defer rt.Terminate()
	objs := make([]*prometheus.Writable[int], 16)
	for i := range objs {
		objs[i] = prometheus.NewWritable(rt, 0)
	}
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup/16; i++ {
		prometheus.DoAll(objs, func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "DoAll", func() {
		prometheus.DoAll(objs, func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestReducibleDelegateZeroAlloc(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2))
	defer rt.Terminate()
	r := prometheus.NewReducible(rt,
		func() int { return 0 },
		func(dst, src *int) { *dst += *src })
	rt.BeginIsolation()
	for i := 0; i < allocWarmup; i++ {
		r.Delegate(uint64(i%4), func(v *int) { *v++ })
	}
	requireZeroAllocs(t, "Reducible.Delegate", func() {
		r.Delegate(2, func(v *int) { *v++ })
	})
	rt.EndIsolation()
	if got := *r.Result(); got != allocWarmup+501 {
		// 500 measured runs + 1 AllocsPerRun warmup run.
		t.Fatalf("reduced total = %d, want %d (updates lost)", got, allocWarmup+501)
	}
}

func TestReadOnlyDelegateZeroAlloc(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2))
	defer rt.Terminate()
	r := prometheus.NewReadOnly(rt, 42)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		r.Delegate(uint64(i%4), func(c *prometheus.Ctx, p *int) { _ = *p })
	}
	requireZeroAllocs(t, "ReadOnly.Delegate", func() {
		r.Delegate(1, func(c *prometheus.Ctx, p *int) { _ = *p })
	})
}

func TestStealingDelegateZeroAlloc(t *testing.T) {
	// The stealing-enabled LeastLoaded hot path — owner-table read, occupancy
	// check against the executed counter, position bump through the entry
	// pointer, ring write — must stay allocation-free. AllocsPerRun reads the
	// process-wide malloc counters, so this also pins the delegate-side
	// batched drain loop (running concurrently on the consumer) at zero
	// steady-state allocations.
	rt := prometheus.Init(prometheus.WithDelegates(2),
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(), prometheus.WithStealThreshold(1))
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "Stealing Writable.Delegate", func() {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestStealRebalanceZeroAlloc(t *testing.T) {
	// Same gate with enough sets and backpressure that handoffs actually
	// fire during the measured window: a steal is a pointer-field update on
	// an existing owner-table entry, never a map insert or heap allocation.
	rt := prometheus.Init(prometheus.WithDelegates(2),
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(), prometheus.WithStealThreshold(2))
	defer rt.Terminate()
	objs := make([]*prometheus.Writable[int], 8)
	for i := range objs {
		objs[i] = prometheus.NewWritable(rt, 0)
	}
	rt.BeginIsolation()
	defer rt.EndIsolation()
	spin := func(c *prometheus.Ctx, p *int) {
		for j := 0; j < 64; j++ {
			*p++
		}
	}
	for i := 0; i < allocWarmup/8; i++ {
		prometheus.DoAll(objs, spin)
	}
	requireZeroAllocs(t, "stealing rebalance DoAll", func() {
		prometheus.DoAll(objs, spin)
	})
}

func TestRecursiveRootDelegateZeroAlloc(t *testing.T) {
	// In recursive mode the root wrappers route through DelegateCall into
	// the program context's ring lane on the set's owner: a value write
	// plus single-writer counters, no closure, no lane node. The program
	// producer uses the blocking push, so a full ring parks rather than
	// spills and the steady state stays allocation-free.
	rt := prometheus.Init(prometheus.WithDelegates(2), prometheus.Recursive())
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "Recursive Writable.Delegate", func() {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestRecursiveNestedDelegateZeroAlloc(t *testing.T) {
	// The recursive engine's defining path: DelegateFromCall issued from
	// inside a delegated operation, plus the delegate-side batched lane
	// drain executing the burst. Each measured run waits (via a marker
	// counter) until the whole burst has drained, so AllocsPerRun — which
	// reads process-wide malloc counters — pins the producer push, the
	// pending-bitmask publish, and the consumer drain loop together at
	// zero. The burst targets set 1001 (owner: delegate 2), not the
	// delegate running the burst, so the wait cannot deadlock and the
	// in-ring path (not the allocating spill) is what executes.
	rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive())
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	var done atomic.Int64
	leaf := func(c *prometheus.Ctx) { done.Add(1) }
	const burstLen = 32
	burst := func(c *prometheus.Ctx, p *int) {
		for k := 0; k < burstLen; k++ {
			c.Delegate(1001, leaf)
		}
	}
	fire := func() {
		start := done.Load()
		w.Delegate(burst)
		for done.Load() < start+burstLen {
			runtime.Gosched()
		}
	}
	for i := 0; i < allocWarmup/burstLen; i++ {
		fire()
	}
	requireZeroAllocs(t, "Recursive Ctx.Delegate burst + drain", fire)
}

func TestRecursiveStealingDelegateZeroAlloc(t *testing.T) {
	// The recursive-stealing hot path adds an owner-table lookup (the
	// uint64-specialized table — a sync.Map would box every set id above
	// 255), the O(producers) occupancy/quiescence counter reads, and the
	// lane-position stores. All of it must stay allocation-free; the set
	// ids are >= 256 on purpose so any interface boxing would show up.
	rt := prometheus.Init(prometheus.WithDelegates(2), prometheus.Recursive(),
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(), prometheus.WithStealThreshold(1))
	defer rt.Terminate()
	ws := make([]*prometheus.Writable[int], 4)
	for i := range ws {
		ws[i] = prometheus.NewWritable(rt, 0)
	}
	rt.BeginIsolation()
	defer rt.EndIsolation()
	for i := 0; i < allocWarmup; i++ {
		ws[i%4].DelegateTo(1000+uint64(i%4), func(c *prometheus.Ctx, p *int) { *p++ })
	}
	requireZeroAllocs(t, "Recursive stealing Writable.DelegateTo", func() {
		ws[2].DelegateTo(1002, func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestSequentialInlineZeroAlloc(t *testing.T) {
	// Debug mode runs the same trampoline inline; it must be free too.
	rt := prometheus.Init(prometheus.Sequential())
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	requireZeroAllocs(t, "Sequential Writable.Delegate", func() {
		w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
	})
}

func TestFaultContainmentZeroAlloc(t *testing.T) {
	// Fault containment is compiled in unconditionally, so the fault-free
	// delegation path must stay allocation-free with it armed: the producer
	// pays one atomic nil-load of the fault state, the drain loops one per
	// execution span, and the recover() frame lives on the goroutine stack.
	// A never-firing injector is installed so the injection seam itself is
	// on the measured path too — this is the gate that keeps containment
	// free until a fault actually happens (poison state is lazily
	// allocated).
	neverFire := func(c *core.Config) {
		c.FaultInjector = func(ctx int, set uint64) {}
	}
	t.Run("flat", func(t *testing.T) {
		rt := prometheus.Init(prometheus.WithDelegates(2), prometheus.Option(neverFire))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		defer rt.EndIsolation()
		for i := 0; i < allocWarmup; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		requireZeroAllocs(t, "Writable.Delegate with injector armed", func() {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		})
	})
	t.Run("recursive", func(t *testing.T) {
		rt := prometheus.Init(prometheus.WithDelegates(2), prometheus.Recursive(),
			prometheus.Option(neverFire))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		defer rt.EndIsolation()
		for i := 0; i < allocWarmup; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		requireZeroAllocs(t, "Recursive Writable.Delegate with injector armed", func() {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		})
	})
}
