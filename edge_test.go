package prometheus

import (
	"testing"
	"testing/quick"
)

// Edge-case and property tests for the public API surface.

func TestMix64Bijective(t *testing.T) {
	// SplitMix64 finalizer is a bijection; distinct inputs never collide.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSetDeterministic(t *testing.T) {
	f := func(s string) bool { return StringSet(s) == StringSet(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if StringSet("") == StringSet("a") {
		t.Fatal("trivial collision")
	}
}

func TestDoAllEmpty(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	rt.BeginIsolation()
	DoAll[int](nil, func(c *Ctx, p *int) { t.Fatal("should not run") })
	rt.EndIsolation()
}

func TestCallROAllowsReadDuringAggregation(t *testing.T) {
	rt := newRT(t, WithDelegates(1), Checked())
	w := NewWritable(rt, 42)
	var got int
	w.CallRO(func(p *int) { got = *p }) // aggregation: any use fine
	if got != 42 {
		t.Fatal("CallRO read failed")
	}
	w.Call(func(p *int) { *p = 43 }) // also fine in aggregation
}

func TestWritableInstanceNumbersUnique(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		w := NewWritable(rt, i)
		if seen[w.Instance()] {
			t.Fatalf("duplicate instance %d", w.Instance())
		}
		seen[w.Instance()] = true
	}
}

func TestManyEpochsStress(t *testing.T) {
	rt := newRT(t, WithDelegates(3))
	w := NewWritable(rt, 0)
	for e := 0; e < 200; e++ {
		rt.BeginIsolation()
		for i := 0; i < 10; i++ {
			w.Delegate(func(c *Ctx, p *int) { *p++ })
		}
		rt.EndIsolation()
	}
	if got := Call(w, func(p *int) int { return *p }); got != 2000 {
		t.Fatalf("n = %d, want 2000", got)
	}
	if rt.Stats().Epochs != 200 {
		t.Fatalf("epochs = %d", rt.Stats().Epochs)
	}
}

func TestManyWritablesAcrossDelegates(t *testing.T) {
	rt := newRT(t, WithDelegates(7))
	const objs = 500
	ws := make([]*Writable[int], objs)
	for i := range ws {
		ws[i] = NewWritable(rt, 0)
	}
	rt.BeginIsolation()
	for round := 0; round < 20; round++ {
		for _, w := range ws {
			w.Delegate(func(c *Ctx, p *int) { *p++ })
		}
	}
	rt.EndIsolation()
	for i, w := range ws {
		if got := Call(w, func(p *int) int { return *p }); got != 20 {
			t.Fatalf("obj %d = %d, want 20", i, got)
		}
	}
}

func TestSequentialWithProgramShare(t *testing.T) {
	// Sequential mode must tolerate any option combination it subsumes.
	rt := newRT(t, Sequential(), WithProgramShare(3))
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *Ctx, p *int) { *p = 9 })
	rt.EndIsolation()
	if got := Call(w, func(p *int) int { return *p }); got != 9 {
		t.Fatalf("n = %d, want 9", got)
	}
}

func TestReadOnlyCallRNoCopy(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	type big struct{ data [1024]int }
	r := NewReadOnly(rt, big{})
	p1 := r.Get()
	p2 := r.Get()
	if p1 != p2 {
		t.Fatal("Get should return a stable pointer")
	}
	if got := CallR(r, func(b *big) int { return len(b.data) }); got != 1024 {
		t.Fatal("CallR wrong")
	}
}

func TestZeroDelegatesClampsToOne(t *testing.T) {
	rt := newRT(t, WithDelegates(0))
	if rt.NumDelegates() < 1 {
		t.Fatalf("delegates = %d, want >= 1", rt.NumDelegates())
	}
}
