package prometheus

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
)

// The chaos suite drives injected panics through every engine mode and
// asserts the three containment guarantees end to end: the process
// survives and every barrier closes, the poisoning point is deterministic
// across repeated runs, and sets that did not fault execute exactly what
// they execute in a fault-free run.

// chaosModes is the flat/recursive × stealing on/off matrix.
var chaosModes = []struct {
	name string
	opts []Option
}{
	{"flat-nosteal", []Option{WithDelegates(4), WithPolicy(LeastLoaded)}},
	{"flat-steal", []Option{WithDelegates(4), WithPolicy(LeastLoaded), WithStealing(), WithStealThreshold(2)}},
	{"rec-nosteal", []Option{WithDelegates(4), Recursive()}},
	{"rec-steal", []Option{WithDelegates(4), Recursive(), WithPolicy(LeastLoaded), WithStealing(), WithStealThreshold(2)}},
}

// withInjector installs a chaos hook through the internal Config knob.
func withInjector(in *chaos.Injector) Option {
	hook := in.Hook()
	return func(c *core.Config) { c.FaultInjector = hook }
}

const (
	chaosSets     = 8   // leaf sets 100..107
	chaosOps      = 40  // delegations per set per epoch
	chaosHotSet   = 100 // the set the deterministic fault targets
	chaosFaultPos = 13  // 1-based op position that faults
)

// runSkewed runs the skewed-leaves shape — chaosSets independent sets,
// each receiving chaosOps delegations that append their index to the
// set's log — and returns the per-set logs.
func runSkewed(t *testing.T, opts []Option) map[uint64][]uint64 {
	t.Helper()
	rt := Init(opts...)
	defer rt.Terminate()

	logs := make([]*Writable[[]uint64], chaosSets)
	for s := range logs {
		logs[s] = NewWritable(rt, []uint64{})
	}
	rt.BeginIsolation()
	for i := 0; i < chaosOps; i++ {
		i := uint64(i)
		for s := 0; s < chaosSets; s++ {
			logs[s].DelegateTo(uint64(chaosHotSet+s), func(_ *Ctx, log *[]uint64) {
				*log = append(*log, i)
			})
		}
	}
	rt.EndIsolation()

	out := make(map[uint64][]uint64, chaosSets)
	for s, w := range logs {
		set := uint64(chaosHotSet + s)
		w.Call(func(log *[]uint64) { out[set] = append([]uint64(nil), *log...) })
	}
	return out
}

func logsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosDeterministicPoisoning: in every mode, a deterministic injected
// fault at op chaosFaultPos of one set leaves that set's log byte-identical
// across 6 runs (exactly the prefix before the fault) and every other
// set's log identical to the fault-free run.
func TestChaosDeterministicPoisoning(t *testing.T) {
	for _, mode := range chaosModes {
		t.Run(mode.name, func(t *testing.T) {
			baseline := runSkewed(t, mode.opts)
			if n := len(baseline[chaosHotSet]); n != chaosOps {
				t.Fatalf("fault-free run logged %d ops on the hot set, want %d", n, chaosOps)
			}
			var first map[uint64][]uint64
			for run := 0; run < 6; run++ {
				in := chaos.PanicAt(chaosHotSet, chaosFaultPos)
				got := runSkewed(t, append(append([]Option{}, mode.opts...), withInjector(in)))
				if in.Fired() != 1 {
					t.Fatalf("run %d: injector fired %d times, want 1", run, in.Fired())
				}
				// (b) the poisoning point is deterministic: the faulted set
				// executed exactly ops 1..chaosFaultPos-1, every run.
				if want := baseline[chaosHotSet][:chaosFaultPos-1]; !logsEqual(got[chaosHotSet], want) {
					t.Fatalf("run %d: poisoned set log = %v, want prefix %v", run, got[chaosHotSet], want)
				}
				// (c) non-poisoned sets are untouched by the fault.
				for set, log := range got {
					if set == chaosHotSet {
						continue
					}
					if !logsEqual(log, baseline[set]) {
						t.Fatalf("run %d: healthy set %d diverged from the fault-free run", run, set)
					}
				}
				if first == nil {
					first = got
					continue
				}
				for set, log := range got {
					if !logsEqual(log, first[set]) {
						t.Fatalf("run %d: set %d diverged across faulty runs", run, set)
					}
				}
			}
		})
	}
}

// TestChaosErrorSurface: the contained fault is reported through Err,
// SetErr, and the wrappers, wrapping the injected value with its original
// stack, and the fault counters surface through Stats.
func TestChaosErrorSurface(t *testing.T) {
	for _, mode := range chaosModes {
		t.Run(mode.name, func(t *testing.T) {
			in := chaos.PanicAt(chaosHotSet, chaosFaultPos)
			rt := Init(append(append([]Option{}, mode.opts...), withInjector(in))...)
			defer rt.Terminate()

			w := NewWritable(rt, 0)
			healthy := NewWritable(rt, 0)
			rt.BeginIsolation()
			for i := 0; i < chaosOps; i++ {
				w.DelegateTo(chaosHotSet, func(_ *Ctx, n *int) { *n++ })
				healthy.DelegateTo(chaosHotSet+1, func(_ *Ctx, n *int) { *n++ })
			}
			rt.EndIsolation()

			err := rt.Err()
			if err == nil {
				t.Fatal("Err() = nil after an injected fault")
			}
			if !errors.Is(err, chaos.Fault{Set: chaosHotSet, N: chaosFaultPos}) {
				t.Errorf("Err() chain does not reach the injected chaos.Fault: %v", err)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("Err() chain has no *PanicError: %v", err)
			}
			if pe.Set != chaosHotSet || pe.Ctx < 1 || pe.Epoch != 1 {
				t.Errorf("PanicError = {Set:%d Ctx:%d Epoch:%d}, want set %d on a delegate in epoch 1",
					pe.Set, pe.Ctx, pe.Epoch, chaosHotSet)
			}
			if !strings.Contains(string(pe.Stack), "chaos") {
				t.Error("PanicError.Stack does not reach the original failure site")
			}
			var e *Error
			if !errors.As(err, &e) || e.Kind != ErrPanic {
				t.Errorf("Err() chain has no ErrPanic-kind *Error: %v", err)
			}
			if rt.SetErr(chaosHotSet) == nil {
				t.Error("SetErr(faulted set) = nil")
			}
			if rt.SetErr(chaosHotSet+1) != nil {
				t.Error("SetErr(healthy set) != nil")
			}
			if w.Err() == nil {
				t.Error("faulted wrapper Err() = nil")
			}
			if healthy.Err() != nil {
				t.Error("healthy wrapper Err() != nil")
			}
			if !rt.Poisoned(chaosHotSet) {
				t.Error("faulted set not reported poisoned after the epoch")
			}
			st := rt.Stats()
			wantDropped := uint64(chaosOps - chaosFaultPos)
			if st.Panics != 1 || st.PoisonedSets != 1 || st.DroppedOps != wantDropped {
				t.Errorf("stats = {Panics:%d PoisonedSets:%d DroppedOps:%d}, want {1 1 %d}",
					st.Panics, st.PoisonedSets, st.DroppedOps, wantDropped)
			}
			w.Call(func(n *int) {
				if *n != chaosFaultPos-1 {
					t.Errorf("faulted set executed %d ops, want %d", *n, chaosFaultPos-1)
				}
			})
			healthy.Call(func(n *int) {
				if *n != chaosOps {
					t.Errorf("healthy set executed %d ops, want %d", *n, chaosOps)
				}
			})
		})
	}
}

// runTree runs the recursive fan-out shape: set 1 is delegated from the
// program context and every node set s recursively delegates to its
// children 2s and 2s+1 below maxNode, each node bumping its slot in a
// shared per-node tally (one writer per slot: the node's own operation).
func runTree(t *testing.T, opts []Option, maxNode uint64) []uint64 {
	t.Helper()
	rt := Init(opts...)
	defer rt.Terminate()

	tally := make([]uint64, maxNode+1)
	root := NewWritable(rt, struct{}{})
	var visit func(c *Ctx, s uint64)
	visit = func(c *Ctx, s uint64) {
		tally[s]++
		for _, child := range []uint64{2 * s, 2*s + 1} {
			if child <= maxNode {
				child := child
				c.Delegate(child, func(c *Ctx) { visit(c, child) })
			}
		}
	}
	rt.BeginIsolation()
	root.DelegateTo(1, func(c *Ctx, _ *struct{}) { visit(c, 1) })
	rt.EndIsolation()
	return tally
}

// TestChaosRecursiveTree: a fault injected at a leaf of a recursive
// delegation tree truncates exactly that leaf, deterministically, in both
// recursive modes — the divide-and-conquer (quicksort/FPM) delegation
// shape under chaos.
func TestChaosRecursiveTree(t *testing.T) {
	const maxNode = 31
	const leaf = 27 // a leaf set: 2*27 > maxNode
	for _, mode := range chaosModes {
		if !strings.HasPrefix(mode.name, "rec") {
			continue // Ctx.Delegate requires Recursive
		}
		t.Run(mode.name, func(t *testing.T) {
			baseline := runTree(t, mode.opts, maxNode)
			for s := uint64(1); s <= maxNode; s++ {
				if baseline[s] != 1 {
					t.Fatalf("fault-free tree visited node %d %d times, want 1", s, baseline[s])
				}
			}
			for run := 0; run < 6; run++ {
				in := chaos.PanicAt(leaf, 1)
				got := runTree(t, append(append([]Option{}, mode.opts...), withInjector(in)), maxNode)
				if in.Fired() != 1 {
					t.Fatalf("run %d: injector fired %d times, want 1", run, in.Fired())
				}
				for s := uint64(1); s <= maxNode; s++ {
					want := uint64(1)
					if s == leaf {
						want = 0 // the faulted leaf's op never ran
					}
					if got[s] != want {
						t.Fatalf("run %d: node %d visited %d times, want %d", run, s, got[s], want)
					}
				}
			}
		})
	}
}

// TestChaosSeededSurvival: under scattered probabilistic faults across
// several epochs, every mode survives, every barrier closes, the fault
// accounting matches the injector, and the outcome is reproducible (the
// injector is deterministic per (set, position), so two identical runs
// must produce identical logs).
func TestChaosSeededSurvival(t *testing.T) {
	const epochs = 3
	run := func(opts []Option, in *chaos.Injector) (map[uint64][]uint64, Stats, error) {
		rt := Init(append(append([]Option{}, opts...), withInjector(in))...)
		defer rt.Terminate()
		logs := make([]*Writable[[]uint64], chaosSets)
		for s := range logs {
			logs[s] = NewWritable(rt, []uint64{})
		}
		for e := 0; e < epochs; e++ {
			rt.BeginIsolation()
			for i := 0; i < chaosOps; i++ {
				v := uint64(e*chaosOps + i)
				for s := 0; s < chaosSets; s++ {
					logs[s].DelegateTo(uint64(chaosHotSet+s), func(_ *Ctx, log *[]uint64) {
						*log = append(*log, v)
					})
				}
			}
			rt.EndIsolation()
		}
		out := make(map[uint64][]uint64, chaosSets)
		for s, w := range logs {
			set := uint64(chaosHotSet + s)
			w.Call(func(log *[]uint64) { out[set] = append([]uint64(nil), *log...) })
		}
		return out, rt.Stats(), rt.Err()
	}
	for _, mode := range chaosModes {
		t.Run(mode.name, func(t *testing.T) {
			inA := chaos.Seeded(7, 0.02)
			a, stA, errA := run(mode.opts, inA)
			if stA.Panics != inA.Fired() {
				t.Errorf("Stats.Panics = %d, injector fired %d", stA.Panics, inA.Fired())
			}
			if (errA != nil) != (inA.Fired() > 0) {
				t.Errorf("Err() = %v with %d faults fired", errA, inA.Fired())
			}
			inB := chaos.Seeded(7, 0.02)
			b, stB, _ := run(mode.opts, inB)
			if inA.Fired() != inB.Fired() {
				t.Fatalf("identical seeded runs fired %d vs %d faults", inA.Fired(), inB.Fired())
			}
			if stA.Panics != stB.Panics || stA.PoisonedSets != stB.PoisonedSets || stA.DroppedOps != stB.DroppedOps {
				t.Fatalf("identical seeded runs diverged: %+v vs %+v faults", stA.Panics, stB.Panics)
			}
			for set := uint64(chaosHotSet); set < chaosHotSet+chaosSets; set++ {
				if !logsEqual(a[set], b[set]) {
					t.Fatalf("set %d diverged between identical seeded runs:\n%v\n%v", set, a[set], b[set])
				}
			}
		})
	}
}
