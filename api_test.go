package prometheus

import (
	"testing"
	"time"
)

func newRT(t *testing.T, opts ...Option) *Runtime {
	t.Helper()
	rt := Init(opts...)
	t.Cleanup(rt.Terminate)
	return rt
}

func TestLifecycle(t *testing.T) {
	rt := Init(WithDelegates(2))
	if rt.NumDelegates() != 2 || rt.NumContexts() != 3 {
		t.Fatalf("contexts = %d/%d, want 2 delegates, 3 contexts", rt.NumDelegates(), rt.NumContexts())
	}
	rt.BeginIsolation()
	if !rt.InIsolation() {
		t.Fatal("InIsolation should be true")
	}
	rt.EndIsolation()
	rt.Sleep()
	rt.Terminate()
	rt.Terminate() // idempotent
}

func TestWritableDelegateAndCall(t *testing.T) {
	rt := newRT(t, WithDelegates(4))
	type counter struct{ n int }
	w := NewWritable(rt, counter{})

	rt.BeginIsolation()
	for i := 0; i < 1000; i++ {
		w.Delegate(func(c *Ctx, obj *counter) { obj.n++ })
	}
	// Call reclaims ownership: all 1000 increments must be visible.
	var got int
	w.Call(func(obj *counter) { got = obj.n })
	if got != 1000 {
		t.Fatalf("after Call, n = %d, want 1000", got)
	}
	// Delegate again after reclaim (Figure 1, second epoch pattern).
	w.Delegate(func(c *Ctx, obj *counter) { obj.n++ })
	rt.EndIsolation()
	if n := Call(w, func(obj *counter) int { return obj.n }); n != 1001 {
		t.Fatalf("final n = %d, want 1001", n)
	}
}

func TestCallGenericReturn(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	w := NewWritable(rt, 41)
	got := Call(w, func(p *int) int { return *p + 1 })
	if got != 42 {
		t.Fatalf("Call = %d, want 42", got)
	}
}

func TestPerObjectOrderingAcrossObjects(t *testing.T) {
	rt := newRT(t, WithDelegates(4))
	const objs = 32
	const ops = 500
	ws := make([]*Writable[[]int], objs)
	for i := range ws {
		ws[i] = NewWritable(rt, []int{})
	}
	rt.BeginIsolation()
	for op := 0; op < ops; op++ {
		for _, w := range ws {
			op := op
			w.Delegate(func(c *Ctx, s *[]int) { *s = append(*s, op) })
		}
	}
	rt.EndIsolation()
	for i, w := range ws {
		w.Call(func(s *[]int) {
			if len(*s) != ops {
				t.Fatalf("obj %d: %d ops, want %d", i, len(*s), ops)
			}
			for j, v := range *s {
				if v != j {
					t.Fatalf("obj %d: op %d out of order: %d", i, j, v)
				}
			}
		})
	}
}

func TestDelegateOutsideIsolationPanics(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	w := NewWritable(rt, 0)
	defer expectError(t, ErrAPIMisuse)
	w.Delegate(func(c *Ctx, p *int) {})
}

func TestNullSerializerDelegatePanics(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	w := NewWritableSer(rt, 0, NullSerializer[int]())
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer expectError(t, ErrAPIMisuse)
	w.Delegate(func(c *Ctx, p *int) {})
}

func TestDelegateToExternalSerializer(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	w := NewWritableSer(rt, map[int]int{}, NullSerializer[map[int]int]())
	rt.BeginIsolation()
	for i := 0; i < 100; i++ {
		i := i
		w.DelegateTo(7, func(c *Ctx, m *map[int]int) { (*m)[i] = i * i })
	}
	rt.EndIsolation()
	w.Call(func(m *map[int]int) {
		if len(*m) != 100 || (*m)[9] != 81 {
			t.Fatalf("map = %d entries, want 100", len(*m))
		}
	})
}

func TestSerializers(t *testing.T) {
	seq := SequenceSerializer[int]()
	if seq(5, nil) != 5 {
		t.Error("sequence serializer should return the instance number")
	}
	obj := ObjectSerializer[int]()
	if obj(5, nil) == 5 || obj(5, nil) != obj(5, nil) {
		t.Error("object serializer should be a stable scramble")
	}
	type keyed struct{ k uint64 }
	if Mix64(1) == Mix64(2) {
		t.Error("Mix64 collision on small inputs")
	}
	if StringSet("alpha") == StringSet("beta") {
		t.Error("StringSet collision")
	}
	_ = keyed{}
}

type selfID struct{ id uint64 }

func (s selfID) SerialID() uint64 { return s.id }

func TestInternalSerializer(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	ser := InternalSerializer[selfID]()
	w := NewWritableSer(rt, selfID{id: 99}, ser)
	if got := ser(0, &w.obj); got != 99 {
		t.Fatalf("internal serializer = %d, want 99", got)
	}
}

func TestReadOnlyGetAndMut(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	r := NewReadOnly(rt, []int{1, 2, 3})
	if got := CallR(r, func(s *[]int) int { return (*s)[1] }); got != 2 {
		t.Fatalf("CallR = %d, want 2", got)
	}
	(*r.Mut())[1] = 20 // aggregation epoch: mutation allowed
	rt.BeginIsolation()
	func() {
		defer expectError(t, ErrPartitionViolation)
		r.Mut()
	}()
	rt.EndIsolation()
	if (*r.Get())[1] != 20 {
		t.Fatal("mutation lost")
	}
}

type hashable struct{ v uint64 }

func (h *hashable) Hash() uint64 { return Mix64(h.v) }

func TestReadOnlyCheckedDetectsWrite(t *testing.T) {
	rt := newRT(t, WithDelegates(1), Checked())
	r := NewReadOnly(rt, hashable{v: 1})
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer expectError(t, ErrPartitionViolation)
	r.Call(func(h *hashable) { h.v = 2 }) // illegal write through read-only
}

func TestReadOnlyCheckedAllowsReads(t *testing.T) {
	rt := newRT(t, WithDelegates(1), Checked())
	r := NewReadOnly(rt, hashable{v: 1})
	rt.BeginIsolation()
	var got uint64
	r.Call(func(h *hashable) { got = h.v })
	rt.EndIsolation()
	if got != 1 {
		t.Fatalf("read = %d, want 1", got)
	}
}

func TestSequentialModeSameAnswers(t *testing.T) {
	run := func(opts ...Option) int {
		rt := Init(opts...)
		defer rt.Terminate()
		w := NewWritable(rt, 0)
		rt.BeginIsolation()
		for i := 0; i < 100; i++ {
			w.Delegate(func(c *Ctx, p *int) { *p += 3 })
		}
		rt.EndIsolation()
		return Call(w, func(p *int) int { return *p })
	}
	if par, seq := run(WithDelegates(4)), run(Sequential()); par != seq {
		t.Fatalf("parallel = %d, sequential = %d", par, seq)
	}
}

func TestProgramCtxView(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	c := rt.ProgramCtx()
	if c.ID() != 0 || c.Runtime() != rt {
		t.Fatal("ProgramCtx should be context 0 of this runtime")
	}
}

func TestStatsSnapshot(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	rt.BeginIsolation()
	w := NewWritable(rt, 0)
	w.Delegate(func(c *Ctx, p *int) { time.Sleep(time.Millisecond) })
	rt.EndIsolation()
	st := rt.Stats()
	if st.Delegations != 1 || st.Epochs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Isolation <= 0 {
		t.Fatal("isolation time not recorded")
	}
}

// expectError asserts that the surrounding function panics with *Error of
// the given kind.
func expectError(t *testing.T, kind ErrorKind) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected %v panic, got none", kind)
	}
	e, ok := r.(*Error)
	if !ok {
		t.Fatalf("panic value %v is not *Error", r)
	}
	if e.Kind != kind {
		t.Fatalf("panic kind = %v, want %v (%s)", e.Kind, kind, e.Msg)
	}
}
