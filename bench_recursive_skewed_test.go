package prometheus_test

// BenchmarkRecursiveSkewed is the recursive engine's imbalance scenario —
// the workload shape PR 4's whole-set stealing exists for. A delegate-
// context producer streams a 90/10-skewed stream: 90% of operations land
// on four hot sets that all seed on delegate 1 under the static
// assignment, the rest on cold sets spread across the other delegates.
// Operations block briefly (a stand-in for I/O-bound delegate work), so
// rebalancing shows up in wall clock even on a single-CPU host: without
// stealing, delegate 1 serializes ~90% of the sleeps while its peers
// idle; with stealing, the hot sets migrate to idle delegates at their
// first quiescent boundary (the wave markers provide them) and the
// blocked time overlaps.
//
// The production is wave-throttled — a delegate producer never blocks, so
// an unthrottled stream would just grow the lanes without bounding
// occupancy — which is also the natural shape of a real recursive
// producer that needs back-pressure.
//
// The "steal" variant runs the full subsystem as configured by default:
// the in-epoch adaptive threshold has to pull the capacity-derived
// threshold (64) down to where the wave occupancy triggers handoffs
// before any steal can fire, so the EWMA machinery is on the measured
// path. cmd/benchgate gates these variants against BENCH_PR4.json,
// normalized by the nosteal variant: the numbers are dominated by sleeps
// whose effective duration varies by host, but the steal/nosteal ratio —
// the win itself — does not.

import (
	"testing"
	"time"

	prometheus "repro"
	"repro/internal/workload"
)

func BenchmarkRecursiveSkewed(b *testing.B) {
	// 4 delegates, VirtualDelegates 16: set s < 16 seeds on delegate
	// s%4+1. Root set 1 -> delegate 2 (the producer); hot sets -> delegate
	// 1; cold sets -> delegates 3 and 4. 10 waves of 36 operations (runs
	// of 8 per hot set + 4 cold, 90/10 skew): see workload.SkewedRecursive
	// for why the run structure is what opens the rebalancer's window.
	shape := workload.SkewedRecursive{
		Hot:    []uint64{0, 4, 8, 12},
		Cold:   []uint64{2, 6, 3, 7},
		Waves:  10,
		RunLen: 8,
	}
	blockingOp := func(*prometheus.Ctx) { time.Sleep(20 * time.Microsecond) }
	sharedOp := func(uint64, int32) func(*prometheus.Ctx) { return blockingOp }
	run := func(b *testing.B, opts ...prometheus.Option) {
		var steals, adjusts uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			all := append([]prometheus.Option{prometheus.WithDelegates(4), prometheus.Recursive()}, opts...)
			rt := prometheus.Init(all...)
			w := prometheus.NewWritable(rt, 0)
			b.StartTimer()
			rt.BeginIsolation()
			w.DelegateTo(1, func(c *prometheus.Ctx, _ *int) { shape.Run(c, sharedOp) })
			rt.EndIsolation() // barrier: include completing the backlog
			b.StopTimer()
			st := rt.Stats()
			steals += st.Steals
			adjusts += st.ThresholdAdjusts
			rt.Terminate()
		}
		b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
		b.ReportMetric(float64(adjusts)/float64(b.N), "thradjusts/op")
	}
	b.Run("nosteal", func(b *testing.B) { run(b) })
	b.Run("steal", func(b *testing.B) {
		run(b, prometheus.WithPolicy(prometheus.LeastLoaded), prometheus.WithStealing())
	})
	// Explicit eager threshold: isolates the handoff protocol's benefit
	// from the adaptive threshold's convergence time.
	b.Run("steal-thr4", func(b *testing.B) {
		run(b, prometheus.WithPolicy(prometheus.LeastLoaded), prometheus.WithStealing(),
			prometheus.WithStealThreshold(4))
	})
}
