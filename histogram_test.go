package prometheus

import "testing"

// TestHistogramQuantileEdges pins the fixed-bucket estimator's edge
// behavior: empty histograms, single-bucket mass, overflow saturation,
// and out-of-range q values must all return well-defined answers — the
// serving tier's latency quantiles and the load harness's assertions
// both sit on these.
func TestHistogramQuantileEdges(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []int64
		samples []int64
		q       float64
		want    float64
	}{
		{"empty returns zero", []int64{10, 100}, nil, 0.99, 0},
		{"empty at q=0", []int64{10, 100}, nil, 0, 0},

		// All mass in one interior bucket: interpolation stays inside
		// that bucket's [lo, hi) span.
		{"single bucket q=0", []int64{10, 100}, []int64{50, 50, 50}, 0, 10},
		{"single bucket q=1", []int64{10, 100}, []int64{50, 50, 50}, 1, 100},
		{"single bucket median", []int64{10, 100}, []int64{50, 50}, 0.5, 55},

		// First bucket interpolates down to 0, not to a negative value.
		{"first bucket lower edge", []int64{10, 100}, []int64{5}, 0.1, 1},

		// All mass past the last bound: the estimate saturates at the
		// highest bound instead of extrapolating into the unknown.
		{"all-mass overflow p50", []int64{10, 100}, []int64{1000, 2000, 3000}, 0.5, 100},
		{"all-mass overflow p99", []int64{10, 100}, []int64{1000}, 0.99, 100},

		// Mixed mass: the overflow tail pulls high quantiles to the cap
		// while low quantiles still interpolate normally.
		{"mixed overflow p99", []int64{10, 100}, []int64{5, 5, 5, 5, 5, 5, 5, 5, 5, 1000}, 0.99, 100},

		// q outside [0,1] clamps instead of panicking or extrapolating.
		{"q below zero clamps", []int64{10, 100}, []int64{50}, -3, 10},
		{"q above one clamps", []int64{10, 100}, []int64{50}, 7, 100},

		// One bound only: every in-range sample interpolates in [0, bound],
		// overflow saturates at it.
		{"single bound in range", []int64{100}, []int64{30, 30}, 0.5, 50},
		{"single bound overflow", []int64{100}, []int64{500}, 0.5, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(c.bounds...)
			for _, s := range c.samples {
				h.Observe(s)
			}
			if got := h.Quantile(c.q); got != c.want {
				t.Fatalf("Quantile(%v) = %v, want %v (samples %v, bounds %v)",
					c.q, got, c.want, c.samples, c.bounds)
			}
		})
	}
}

// TestHistogramConstructionPanics: the construction-time bound checks
// are what keep Observe check-free, so they must actually fire.
func TestHistogramConstructionPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		bounds []int64
	}{
		{"empty bounds", nil},
		{"unsorted bounds", []int64{10, 5}},
		{"duplicate bounds", []int64{10, 10}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			NewHistogram(c.bounds...)
		})
	}
}
