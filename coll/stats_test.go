package coll

import (
	"math/rand"
	"sort"
	"testing"

	prometheus "repro"
)

func TestMinMax(t *testing.T) {
	rt := newRT(t)
	mm := NewMinMax[int64](rt)
	vals := make([]int, 500)
	for i := range vals {
		vals[i] = (i*37)%997 - 300
	}
	scatter(rt, vals, func(c *prometheus.Ctx, v int) { mm.Observe(c, int64(v)) })
	min, max, ok := mm.Result()
	if !ok {
		t.Fatal("nothing observed")
	}
	wantMin, wantMax := int64(1<<62), int64(-1<<62)
	for _, v := range vals {
		if int64(v) < wantMin {
			wantMin = int64(v)
		}
		if int64(v) > wantMax {
			wantMax = int64(v)
		}
	}
	if min != wantMin || max != wantMax {
		t.Fatalf("minmax = %d/%d, want %d/%d", min, max, wantMin, wantMax)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	rt := newRT(t)
	mm := NewMinMax[float64](rt)
	if _, _, ok := mm.Result(); ok {
		t.Fatal("empty minmax should report !ok")
	}
}

func TestTopKExactSelection(t *testing.T) {
	rt := newRT(t)
	const k = 5
	tk := NewTopK[int](rt, k)
	r := rand.New(rand.NewSource(3))
	n := 2000
	scores := make(map[int]int64, n)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
		scores[i] = int64(r.Intn(100000))
	}
	scatter(rt, keys, func(c *prometheus.Ctx, key int) { tk.Offer(c, key, scores[key]) })
	got := tk.Result(func(a, b int) bool { return a < b })
	if len(got) != k {
		t.Fatalf("got %d items, want %d", len(got), k)
	}
	// Oracle: sort all scores.
	type pair struct {
		key   int
		score int64
	}
	all := make([]pair, 0, n)
	for key, s := range scores {
		all = append(all, pair{key, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].key < all[j].key
	})
	for i := 0; i < k; i++ {
		if got[i].Key != all[i].key || got[i].Score != all[i].score {
			t.Fatalf("rank %d = %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestTopKRepeatedOffersKeepBest(t *testing.T) {
	rt := newRT(t)
	tk := NewTopK[string](rt, 2)
	c := rt.ProgramCtx()
	tk.Offer(c, "a", 5)
	tk.Offer(c, "a", 3) // worse: ignored
	tk.Offer(c, "b", 4)
	tk.Offer(c, "c", 1)
	got := tk.Result(func(a, b string) bool { return a < b })
	if len(got) != 2 || got[0].Key != "a" || got[0].Score != 5 || got[1].Key != "b" {
		t.Fatalf("top2 = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	rt := newRT(t)
	h := NewHistogram(rt, 0, 10, 10)
	vals := []float64{-1, 0, 0.5, 1.5, 9.99, 10, 42}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	scatter(rt, idx, func(c *prometheus.Ctx, i int) { h.Observe(c, vals[i]) })
	bins, under, over := h.Result()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", under, over)
	}
	if bins[0] != 2 || bins[1] != 1 || bins[9] != 1 {
		t.Fatalf("bins = %v", bins)
	}
	var total int64
	for _, b := range bins {
		total += b
	}
	if total+under+over != int64(len(vals)) {
		t.Fatal("histogram lost observations")
	}
}

func TestHistogramDegenerateBins(t *testing.T) {
	rt := newRT(t)
	h := NewHistogram(rt, 0, 1, 0) // bins clamped to 1
	h.Observe(rt.ProgramCtx(), 0.5)
	bins, _, _ := h.Result()
	if len(bins) != 1 || bins[0] != 1 {
		t.Fatalf("bins = %v", bins)
	}
}
