package coll

// Statistical reducibles — part of the "richer set of shared data
// structures" the paper names as future work (§7). All follow the standard
// discipline: per-context views during isolation, deterministic fold on
// first aggregation-epoch access.

import (
	"sort"

	prometheus "repro"
)

// MinMax tracks the minimum and maximum of a stream of values.
type MinMax[N int64 | float64 | int | uint64] struct {
	r *prometheus.Reducible[minmaxView[N]]
}

type minmaxView[N int64 | float64 | int | uint64] struct {
	min, max N
	seen     bool
}

// NewMinMax creates a reducible min/max tracker.
func NewMinMax[N int64 | float64 | int | uint64](rt *prometheus.Runtime) *MinMax[N] {
	return &MinMax[N]{
		r: prometheus.NewReducible(rt,
			func() minmaxView[N] { return minmaxView[N]{} },
			func(dst, src *minmaxView[N]) {
				if !src.seen {
					return
				}
				if !dst.seen {
					*dst = *src
					return
				}
				if src.min < dst.min {
					dst.min = src.min
				}
				if src.max > dst.max {
					dst.max = src.max
				}
			}),
	}
}

// Observe folds v into the executing context's view.
func (m *MinMax[N]) Observe(c *prometheus.Ctx, v N) {
	view := m.r.View(c)
	if !view.seen {
		view.min, view.max, view.seen = v, v, true
		return
	}
	if v < view.min {
		view.min = v
	}
	if v > view.max {
		view.max = v
	}
}

// Result returns (min, max, ok); ok is false if nothing was observed.
func (m *MinMax[N]) Result() (N, N, bool) {
	v := m.r.Result()
	return v.min, v.max, v.seen
}

// TopK keeps the k largest-scored items. Per-context views hold at most k
// candidates, so memory stays bounded during isolation; the reduction
// re-selects the global top k deterministically (score descending, then
// key ascending).
type TopK[K comparable] struct {
	k int
	r *prometheus.Reducible[map[K]int64]
}

// NewTopK creates a reducible top-k selector.
func NewTopK[K comparable](rt *prometheus.Runtime, k int) *TopK[K] {
	if k < 1 {
		k = 1
	}
	t := &TopK[K]{k: k}
	t.r = prometheus.NewReducible(rt,
		func() map[K]int64 { return make(map[K]int64, k+1) },
		func(dst, src *map[K]int64) {
			for key, score := range *src {
				if old, ok := (*dst)[key]; !ok || score > old {
					(*dst)[key] = score
				}
			}
			trimTopK(*dst, t.k)
		})
	return t
}

// Offer proposes an item with a score; higher scores win. Re-offering a
// key keeps its best score.
func (t *TopK[K]) Offer(c *prometheus.Ctx, key K, score int64) {
	view := t.r.View(c)
	if old, ok := (*view)[key]; !ok || score > old {
		(*view)[key] = score
	}
	if len(*view) > 4*t.k {
		trimTopK(*view, t.k)
	}
}

// trimTopK drops every entry scoring strictly below the k-th best score.
// Ties at the boundary are kept — a view may briefly hold more than k
// entries — and Result performs the exact deterministic selection.
func trimTopK[K comparable](m map[K]int64, k int) {
	if len(m) <= k {
		return
	}
	scores := make([]int64, 0, len(m))
	for _, s := range m {
		scores = append(scores, s)
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i] > scores[j] })
	cut := scores[k-1]
	for key, s := range m {
		if s < cut {
			delete(m, key)
		}
	}
}

// Item is one TopK result entry.
type Item[K comparable] struct {
	Key   K
	Score int64
}

// Result returns the global top k, score descending. Ties are broken by
// the order function, which must be a total order on keys.
func (t *TopK[K]) Result(less func(a, b K) bool) []Item[K] {
	m := *t.r.Result()
	items := make([]Item[K], 0, len(m))
	for k, s := range m {
		items = append(items, Item[K]{k, s})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score > items[j].Score
		}
		return less(items[i].Key, items[j].Key)
	})
	if len(items) > t.k {
		items = items[:t.k]
	}
	return items
}

// Histogram is a reducible fixed-bin histogram over [lo, hi).
type Histogram struct {
	lo, hi float64
	bins   int
	r      *prometheus.Reducible[[]int64]
}

// NewHistogram creates a reducible histogram with the given bin count.
func NewHistogram(rt *prometheus.Runtime, lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{
		lo: lo, hi: hi, bins: bins,
		r: prometheus.NewReducible(rt,
			func() []int64 { return make([]int64, bins+2) }, // +under/overflow
			func(dst, src *[]int64) {
				for i, v := range *src {
					(*dst)[i] += v
				}
			}),
	}
}

// Observe adds v to the executing context's view. Out-of-range values land
// in the underflow/overflow buckets.
func (h *Histogram) Observe(c *prometheus.Ctx, v float64) {
	view := h.r.View(c)
	switch {
	case v < h.lo:
		(*view)[h.bins]++
	case v >= h.hi:
		(*view)[h.bins+1]++
	default:
		idx := int(float64(h.bins) * (v - h.lo) / (h.hi - h.lo))
		if idx >= h.bins {
			idx = h.bins - 1
		}
		(*view)[idx]++
	}
}

// Result returns (bins, underflow, overflow).
func (h *Histogram) Result() ([]int64, int64, int64) {
	v := *h.r.Result()
	return v[:h.bins], v[h.bins], v[h.bins+1]
}
