// Package coll provides the shared data structures of the Prometheus
// library (paper §3.1/§3.2): reducible maps, sets, counters, slices and
// scalar accumulators built on the serialization-sets reducible framework.
//
// All containers follow the same discipline: during isolation epochs each
// execution context updates a private view (addressed by the *prometheus.Ctx
// handed to delegated closures); the first program-context access in the
// following aggregation epoch folds the views into the final value with a
// deterministic parallel tree reduction.
package coll

import (
	prometheus "repro"
)

// Map is a reducible map from K to V (the paper's reducible_map). When the
// same key is inserted in multiple views, the merge function combines the
// values during reduction; within one view, a later Insert for a key merges
// into the earlier value immediately, so per-view semantics match the
// reduced semantics.
type Map[K comparable, V any] struct {
	r     *prometheus.Reducible[map[K]V]
	merge func(into V, add V) V
}

// NewMap creates a reducible map; merge combines two values mapped to the
// same key (it must be associative and commutative up to the equivalence the
// program cares about).
func NewMap[K comparable, V any](rt *prometheus.Runtime, merge func(into, add V) V) *Map[K, V] {
	return &Map[K, V]{
		r: prometheus.NewReducible(rt,
			func() map[K]V { return make(map[K]V) },
			func(dst, src *map[K]V) {
				for k, v := range *src {
					if old, ok := (*dst)[k]; ok {
						(*dst)[k] = merge(old, v)
					} else {
						(*dst)[k] = v
					}
				}
			}),
		merge: merge,
	}
}

// Insert merges v into the entry for k in the executing context's view.
func (m *Map[K, V]) Insert(c *prometheus.Ctx, k K, v V) {
	view := m.r.View(c)
	if old, ok := (*view)[k]; ok {
		(*view)[k] = m.merge(old, v)
	} else {
		(*view)[k] = v
	}
}

// Set replaces the entry for k in the executing context's view.
func (m *Map[K, V]) Set(c *prometheus.Ctx, k K, v V) { (*m.r.View(c))[k] = v }

// Get looks up k in the executing context's view. From the program context
// in an aggregation epoch, this is the reduced map.
func (m *Map[K, V]) Get(c *prometheus.Ctx, k K) (V, bool) {
	v, ok := (*m.r.View(c))[k]
	return v, ok
}

// Update applies fn to the entry for k in the executing context's view,
// inserting the result of fn on the zero value when k is absent.
func (m *Map[K, V]) Update(c *prometheus.Ctx, k K, fn func(V) V) {
	view := m.r.View(c)
	(*view)[k] = fn((*view)[k])
}

// Result reduces (if needed) and returns the final map. Program context,
// aggregation epoch only.
func (m *Map[K, V]) Result() map[K]V { return *m.r.Result() }

// Len returns the size of the reduced map.
func (m *Map[K, V]) Len() int { return len(m.Result()) }

// Set is a reducible set of E (the paper's reducible_set).
type Set[E comparable] struct {
	r *prometheus.Reducible[map[E]struct{}]
}

// NewSet creates a reducible set.
func NewSet[E comparable](rt *prometheus.Runtime) *Set[E] {
	return &Set[E]{
		r: prometheus.NewReducible(rt,
			func() map[E]struct{} { return make(map[E]struct{}) },
			func(dst, src *map[E]struct{}) {
				for e := range *src {
					(*dst)[e] = struct{}{}
				}
			}),
	}
}

// Insert adds e to the executing context's view.
func (s *Set[E]) Insert(c *prometheus.Ctx, e E) { (*s.r.View(c))[e] = struct{}{} }

// Contains reports membership in the executing context's view (the reduced
// set when called from the program context in aggregation).
func (s *Set[E]) Contains(c *prometheus.Ctx, e E) bool {
	_, ok := (*s.r.View(c))[e]
	return ok
}

// Result reduces (if needed) and returns the final membership map.
func (s *Set[E]) Result() map[E]struct{} { return *s.r.Result() }

// Len returns the size of the reduced set.
func (s *Set[E]) Len() int { return len(s.Result()) }

// Counter is a reducible multiset: a map from K to int64 counts.
type Counter[K comparable] struct {
	r *prometheus.Reducible[map[K]int64]
}

// NewCounter creates a reducible counter.
func NewCounter[K comparable](rt *prometheus.Runtime) *Counter[K] {
	return &Counter[K]{
		r: prometheus.NewReducible(rt,
			func() map[K]int64 { return make(map[K]int64) },
			func(dst, src *map[K]int64) {
				for k, n := range *src {
					(*dst)[k] += n
				}
			}),
	}
}

// Add increments the count for k by n in the executing context's view.
func (c *Counter[K]) Add(ctx *prometheus.Ctx, k K, n int64) { (*c.r.View(ctx))[k] += n }

// View exposes the executing context's raw count map for bulk updates
// (the paper's point that reducible-map insertions are direct map
// operations, with no synchronization).
func (c *Counter[K]) View(ctx *prometheus.Ctx) map[K]int64 { return *c.r.View(ctx) }

// Result reduces (if needed) and returns the final counts.
func (c *Counter[K]) Result() map[K]int64 { return *c.r.Result() }

// Slice is a reducible append-only slice. Reduction concatenates views in
// context order, so element order is deterministic but reflects the set-to-
// context assignment, not global program order; use it for order-insensitive
// collection.
type Slice[E any] struct {
	r *prometheus.Reducible[[]E]
}

// NewSlice creates a reducible slice.
func NewSlice[E any](rt *prometheus.Runtime) *Slice[E] {
	return &Slice[E]{
		r: prometheus.NewReducible(rt,
			func() []E { return nil },
			func(dst, src *[]E) { *dst = append(*dst, *src...) }),
	}
}

// Append adds elements to the executing context's view.
func (s *Slice[E]) Append(c *prometheus.Ctx, es ...E) {
	view := s.r.View(c)
	*view = append(*view, es...)
}

// Result reduces (if needed) and returns the final slice.
func (s *Slice[E]) Result() []E { return *s.r.Result() }

// Sum is a reducible scalar accumulator for any numeric type.
type Sum[N int64 | float64 | int | uint64] struct {
	r *prometheus.Reducible[N]
}

// NewSum creates a reducible sum starting at zero.
func NewSum[N int64 | float64 | int | uint64](rt *prometheus.Runtime) *Sum[N] {
	return &Sum[N]{
		r: prometheus.NewReducible(rt, func() N { return 0 }, func(dst, src *N) { *dst += *src }),
	}
}

// Add accumulates v into the executing context's view.
func (s *Sum[N]) Add(c *prometheus.Ctx, v N) { *s.r.View(c) += v }

// Result reduces (if needed) and returns the total.
func (s *Sum[N]) Result() N { return *s.r.Result() }
