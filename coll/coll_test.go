package coll

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	prometheus "repro"
)

func newRT(t *testing.T) *prometheus.Runtime {
	t.Helper()
	rt := prometheus.Init(prometheus.WithDelegates(4))
	t.Cleanup(rt.Terminate)
	return rt
}

// scatter delegates one op per item across many serialization sets.
func scatter[E any](rt *prometheus.Runtime, items []E, fn func(c *prometheus.Ctx, e E)) {
	ws := make([]*prometheus.Writable[E], len(items))
	for i, e := range items {
		ws[i] = prometheus.NewWritable(rt, e)
	}
	rt.BeginIsolation()
	prometheus.DoAll(ws, func(c *prometheus.Ctx, p *E) { fn(c, *p) })
	rt.EndIsolation()
}

func TestMapInsertMerge(t *testing.T) {
	rt := newRT(t)
	m := NewMap[string, int](rt, func(a, b int) int { return a + b })
	scatter(rt, []string{"x", "y", "x", "z", "x", "y"}, func(c *prometheus.Ctx, w string) {
		m.Insert(c, w, 1)
	})
	got := m.Result()
	if got["x"] != 3 || got["y"] != 2 || got["z"] != 1 || m.Len() != 3 {
		t.Fatalf("map = %v", got)
	}
}

func TestMapUpdateAndGet(t *testing.T) {
	rt := newRT(t)
	m := NewMap[int, int](rt, func(a, b int) int { return a + b })
	c := rt.ProgramCtx()
	m.Update(c, 1, func(v int) int { return v + 10 })
	m.Update(c, 1, func(v int) int { return v + 10 })
	m.Set(c, 2, 5)
	if v, ok := m.Get(c, 1); !ok || v != 20 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if v, ok := m.Get(c, 2); !ok || v != 5 {
		t.Fatalf("Get(2) = %d,%v", v, ok)
	}
}

func TestSetDedup(t *testing.T) {
	rt := newRT(t)
	s := NewSet[int](rt)
	vals := make([]int, 500)
	for i := range vals {
		vals[i] = i % 50
	}
	scatter(rt, vals, func(c *prometheus.Ctx, v int) { s.Insert(c, v) })
	if s.Len() != 50 {
		t.Fatalf("set size = %d, want 50", s.Len())
	}
	if !s.Contains(rt.ProgramCtx(), 49) || s.Contains(rt.ProgramCtx(), 50) {
		t.Fatal("membership wrong")
	}
}

func TestCounter(t *testing.T) {
	rt := newRT(t)
	c := NewCounter[string](rt)
	words := []string{"a", "b", "a", "a", "c", "b"}
	scatter(rt, words, func(ctx *prometheus.Ctx, w string) { c.Add(ctx, w, 1) })
	got := c.Result()
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestSliceCollectsAll(t *testing.T) {
	rt := newRT(t)
	s := NewSlice[int](rt)
	vals := make([]int, 300)
	for i := range vals {
		vals[i] = i
	}
	scatter(rt, vals, func(c *prometheus.Ctx, v int) { s.Append(c, v) })
	got := s.Result()
	if len(got) != 300 {
		t.Fatalf("len = %d, want 300", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing element %d (got %d)", i, v)
		}
	}
}

func TestSumIntAndFloat(t *testing.T) {
	rt := newRT(t)
	si := NewSum[int64](rt)
	sf := NewSum[float64](rt)
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i + 1
	}
	scatter(rt, vals, func(c *prometheus.Ctx, v int) {
		si.Add(c, int64(v))
		sf.Add(c, 0.5)
	})
	if si.Result() != 5050 {
		t.Fatalf("int sum = %d, want 5050", si.Result())
	}
	if sf.Result() != 50.0 {
		t.Fatalf("float sum = %f, want 50", sf.Result())
	}
}

func TestMultipleEpochsAccumulate(t *testing.T) {
	rt := newRT(t)
	cnt := NewCounter[int](rt)
	w := prometheus.NewWritable(rt, 0)
	for e := 0; e < 4; e++ {
		rt.BeginIsolation()
		w.Delegate(func(c *prometheus.Ctx, _ *int) { cnt.Add(c, 7, 1) })
		rt.EndIsolation()
	}
	if got := cnt.Result()[7]; got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

// TestQuickCounterMatchesSequential: parallel counting over random word
// streams equals a plain map count.
func TestQuickCounterMatchesSequential(t *testing.T) {
	rt := newRT(t)
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]string, int(n%512))
		for i := range words {
			words[i] = string(rune('a' + r.Intn(8)))
		}
		want := map[string]int64{}
		for _, w := range words {
			want[w]++
		}
		c := NewCounter[string](rt)
		scatter(rt, words, func(ctx *prometheus.Ctx, w string) { c.Add(ctx, w, 1) })
		got := c.Result()
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
