package prometheus

import "fmt"

// ErrorKind classifies the dynamic errors the runtime detects (paper §3.3).
type ErrorKind int

const (
	// ErrSerializerViolation: an improper serializer mapped operations on
	// the same object to different serialization sets within one isolation
	// epoch.
	ErrSerializerViolation ErrorKind = iota
	// ErrPartitionViolation: an operation violated the data partition, e.g.
	// a write through a read-only wrapper, or a writable object used as
	// both read-only and privately-writable in the same isolation epoch.
	ErrPartitionViolation
	// ErrAPIMisuse: a structural misuse of the API, e.g. Delegate outside
	// an isolation epoch or a nil serializer with no external set.
	ErrAPIMisuse
)

func (k ErrorKind) String() string {
	switch k {
	case ErrSerializerViolation:
		return "serializer violation"
	case ErrPartitionViolation:
		return "partition violation"
	case ErrAPIMisuse:
		return "api misuse"
	default:
		return "unknown"
	}
}

// Error is the panic value raised on detected model violations. The paper's
// Prometheus "generates an error" on these conditions; in Go they are
// programming errors, so the library panics with a value callers can inspect
// in tests via recover.
type Error struct {
	Kind ErrorKind
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("prometheus: %s: %s", e.Kind, e.Msg) }

func raise(kind ErrorKind, format string, args ...any) {
	panic(&Error{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}
