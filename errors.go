package prometheus

import "fmt"

// ErrorKind classifies the dynamic errors the runtime detects (paper §3.3).
type ErrorKind int

const (
	// ErrSerializerViolation: an improper serializer mapped operations on
	// the same object to different serialization sets within one isolation
	// epoch.
	ErrSerializerViolation ErrorKind = iota
	// ErrPartitionViolation: an operation violated the data partition, e.g.
	// a write through a read-only wrapper, or a writable object used as
	// both read-only and privately-writable in the same isolation epoch.
	ErrPartitionViolation
	// ErrAPIMisuse: a structural misuse of the API, e.g. Delegate outside
	// an isolation epoch or a nil serializer with no external set.
	ErrAPIMisuse
	// ErrPanic: a delegated operation panicked and was contained by the
	// runtime (its serialization set was poisoned for the rest of the
	// epoch). Unlike the kinds above, this one is not raised as a panic —
	// it is returned from Runtime.Err / the wrappers' Err methods, wrapping
	// a *PanicError that carries the recovered value and original stack.
	ErrPanic
)

func (k ErrorKind) String() string {
	switch k {
	case ErrSerializerViolation:
		return "serializer violation"
	case ErrPartitionViolation:
		return "partition violation"
	case ErrAPIMisuse:
		return "api misuse"
	case ErrPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// Error is the panic value raised on detected model violations. The paper's
// Prometheus "generates an error" on these conditions; in Go they are
// programming errors, so the library panics with a value callers can inspect
// in tests via recover. ErrPanic-kind values are the exception: they are
// returned (from Err/SetErr), not raised, and carry the underlying
// *PanicError in Err.
type Error struct {
	Kind ErrorKind
	Msg  string
	// Err is the wrapped cause, non-nil only for ErrPanic-kind errors,
	// where it holds the *PanicError describing the contained fault.
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("prometheus: %s: %s", e.Kind, e.Msg) }

// Unwrap exposes the wrapped cause to errors.Is / errors.As chains.
func (e *Error) Unwrap() error { return e.Err }

func raise(kind ErrorKind, format string, args ...any) {
	panic(&Error{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// PanicError describes one contained panic in a delegated operation: which
// serialization set faulted (NoSet for RunParallel pool tasks), on which
// context, in which isolation epoch, the recovered value, and the stack
// captured during unwinding — it includes the panicking frames, so the
// original failure site survives into the error report.
type PanicError struct {
	Set   uint64
	Ctx   int
	Epoch uint64
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Set == NoSet {
		return fmt.Sprintf("pool task panicked on context %d in epoch %d: %v", e.Ctx, e.Epoch, e.Value)
	}
	return fmt.Sprintf("operation of set %d panicked on context %d in epoch %d: %v", e.Set, e.Ctx, e.Epoch, e.Value)
}

// Unwrap returns the recovered panic value when it was itself an error
// (the common case for injected faults and panic(err) code), so
// errors.Is/errors.As reach through to the original cause.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
