package prometheus_test

// Determinism stress for the recursive-delegation engine, in the shapes
// the paper names as recursive delegation's motivating workloads (§4):
// quicksort (divide-and-conquer over a mutable slice) and FPM-style
// streaming (a root operation fanning item streams into per-group sets,
// which delegate a second level of work). The engine's contract is that
// per-set operation order equals the producing context's program order —
// independent of scheduling, lane occupancy, and the ring/spill boundary —
// so every run must produce byte-identical per-set logs. Each shape runs
// >= 6 times, in the default-ring configuration and in a tiny-ring
// configuration that forces the lane-overflow spill path (asserted via
// Stats.Spills where overflow is structurally guaranteed), with Checked
// mode enforcing the one-producer-per-set discipline throughout. The CI
// recursive-stress job repeats this file under -race.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	prometheus "repro"
	"repro/internal/workload"
)

// spinSink defeats dead-code elimination of the skewed stress's busy work.
var spinSink atomic.Int32

// qsNode recursively sorts data[lo:hi], recording one structure line per
// tree node into the reducible map keyed by the node's deterministic id
// (root 1, children 2*id and 2*id+1 — the recursion tree is a function of
// the input alone, so ids are stable across runs). Child ranges are
// delegated to serialization sets named by the child ids: each set's sole
// producer is the parent node's executing context.
func qsNode(c *prometheus.Ctx, rec *prometheus.Reducible[map[uint64]string],
	data []int32, id uint64, lo, hi int) {
	const cutoff = 64
	slice := data[lo:hi]
	if hi-lo < cutoff || id > 1<<55 {
		sort.Slice(slice, func(i, j int) bool { return slice[i] < slice[j] })
		rec.Update(c, func(m *map[uint64]string) {
			(*m)[id] = fmt.Sprintf("leaf %d:%d", lo, hi)
		})
		return
	}
	pivot := slice[len(slice)/2]
	i, j := 0, len(slice)-1
	for i <= j {
		for slice[i] < pivot {
			i++
		}
		for slice[j] > pivot {
			j--
		}
		if i <= j {
			slice[i], slice[j] = slice[j], slice[i]
			i++
			j--
		}
	}
	mid := lo + i
	rec.Update(c, func(m *map[uint64]string) {
		(*m)[id] = fmt.Sprintf("node %d:%d pivot %d split %d", lo, hi, pivot, mid)
	})
	left, right := 2*id, 2*id+1
	c.Delegate(left, func(c2 *prometheus.Ctx) { qsNode(c2, rec, data, left, lo, lo+j+1) })
	c.Delegate(right, func(c2 *prometheus.Ctx) { qsNode(c2, rec, data, right, mid, hi) })
}

// stealingOpts forces the recursive whole-set rebalancer on with an eager
// threshold, the shape the stealing stress variants run under.
func stealingOpts() []prometheus.Option {
	return []prometheus.Option{
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(),
		prometheus.WithStealThreshold(1),
	}
}

// quicksortRun executes one full recursive quicksort and returns a
// canonical string of the recursion structure plus the sorted output.
func quicksortRun(t *testing.T, queueCap int, extra ...prometheus.Option) string {
	t.Helper()
	opts := append([]prometheus.Option{prometheus.WithDelegates(4), prometheus.Recursive(),
		prometheus.Checked(), prometheus.WithQueueCapacity(queueCap)}, extra...)
	rt := prometheus.Init(opts...)
	defer rt.Terminate()
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(rng.Intn(1 << 20))
	}
	rec := prometheus.NewReducible(rt,
		func() map[uint64]string { return map[uint64]string{} },
		func(dst, src *map[uint64]string) {
			for k, v := range *src {
				(*dst)[k] = v
			}
		})
	w := prometheus.NewWritable(rt, data)
	rt.BeginIsolation()
	w.Delegate(func(c *prometheus.Ctx, d *[]int32) { qsNode(c, rec, *d, 1, 0, len(*d)) })
	rt.EndIsolation()
	m := *rec.Result()
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ""
	for _, id := range ids {
		out += fmt.Sprintf("%d=%s\n", id, m[id])
	}
	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		t.Fatal("quicksort output not sorted")
	}
	return out + fmt.Sprint(data)
}

func TestRecursiveQuicksortDeterminism(t *testing.T) {
	// queueCap 0 is the default 256-slot ring; 8 keeps lanes tiny so bursts
	// of sibling delegations overflow into the spill path mid-recursion.
	for _, queueCap := range []int{0, 8} {
		first := quicksortRun(t, queueCap)
		for run := 1; run < 6; run++ {
			if got := quicksortRun(t, queueCap); got != first {
				t.Fatalf("queueCap=%d: run %d diverged from run 0:\n--- run0\n%.400s\n--- run%d\n%.400s",
					queueCap, run, first, run, got)
			}
		}
	}
}

// fpmRun executes one FPM-shaped epoch: a root operation streams items
// round-robin into per-group serialization sets (first level), and each
// group operation periodically delegates a second-level operation to its
// group's conditional set. Per-set logs must replay the producer's program
// order exactly. Returns the canonical log string and the run's Stats.
func fpmRun(t *testing.T, queueCap int, extra ...prometheus.Option) (string, prometheus.Stats) {
	t.Helper()
	opts := append([]prometheus.Option{prometheus.WithDelegates(3), prometheus.Recursive(),
		prometheus.Checked(), prometheus.WithQueueCapacity(queueCap)}, extra...)
	rt := prometheus.Init(opts...)
	defer rt.Terminate()
	const (
		groups = 8
		items  = 2000
	)
	logs := make([][]int32, groups)  // first-level per-set logs
	logs2 := make([][]int32, groups) // second-level per-set logs
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *prometheus.Ctx, _ *int) {
		for i := 0; i < items; i++ {
			i := i
			g := i % groups
			c.Delegate(uint64(100+g), func(c2 *prometheus.Ctx) {
				logs[g] = append(logs[g], int32(i))
				if i%7 == 0 {
					c2.Delegate(uint64(200+g), func(*prometheus.Ctx) {
						logs2[g] = append(logs2[g], int32(i))
					})
				}
			})
		}
	})
	rt.EndIsolation()
	return fmt.Sprint(logs, logs2), rt.Stats()
}

// TestRecursiveStealingQuicksortDeterminism: the quicksort shape with the
// whole-set rebalancer forced on (eager threshold, default and tiny
// lanes). Placement may now change run to run AND mid-epoch; the recursion
// structure and per-set op order must not.
func TestRecursiveStealingQuicksortDeterminism(t *testing.T) {
	for _, queueCap := range []int{0, 8} {
		first := quicksortRun(t, queueCap, stealingOpts()...)
		if want := quicksortRun(t, queueCap); want != first {
			t.Fatalf("queueCap=%d: stealing run diverged from non-stealing run", queueCap)
		}
		for run := 1; run < 6; run++ {
			if got := quicksortRun(t, queueCap, stealingOpts()...); got != first {
				t.Fatalf("queueCap=%d: stealing run %d diverged from run 0:\n--- run0\n%.400s\n--- run%d\n%.400s",
					queueCap, run, first, run, got)
			}
		}
	}
}

// TestRecursiveStealingFPMDeterminism: the FPM shape under stealing with
// tiny lanes (forced spills) — per-set logs must still replay program
// order exactly whatever the rebalancer does. On this shape the victims
// are themselves producers (group ops delegate second-level work), so the
// outbound-drain condition usually vetoes migration — few or zero
// handoffs here is the protocol being correctly conservative; the skewed
// stress below is the shape that asserts handoffs fire.
func TestRecursiveStealingFPMDeterminism(t *testing.T) {
	var want string
	{
		logs := make([][]int32, 8)
		logs2 := make([][]int32, 8)
		for i := 0; i < 2000; i++ {
			g := i % 8
			logs[g] = append(logs[g], int32(i))
			if i%7 == 0 {
				logs2[g] = append(logs2[g], int32(i))
			}
		}
		want = fmt.Sprint(logs, logs2)
	}
	var steals uint64
	for _, queueCap := range []int{0, 4} {
		for run := 0; run < 6; run++ {
			got, st := fpmRun(t, queueCap, stealingOpts()...)
			if got != want {
				t.Fatalf("queueCap=%d run %d: per-set op order diverged from program order under stealing", queueCap, run)
			}
			steals += st.Steals
			if st.Steals != st.Handoffs {
				t.Fatalf("recursive Steals (%d) != Handoffs (%d)", st.Steals, st.Handoffs)
			}
		}
	}
	t.Logf("fpm stealing runs performed %d whole-set handoffs total", steals)
}

// TestRecursiveStealingSkewedDeterminism is the shape the rebalancer
// exists for — a delegate-context producer streams a 90/10-skewed workload
// (workload.SkewedRecursive) whose hot sets all seed on one delegate — and
// the test that proves steals actually fire while per-set op order stays
// byte-identical across runs. Wave throttling (marker waits between waves)
// creates the quiescent boundaries the protocol migrates at; the spin in
// each operation keeps the victim observably occupied when the next
// delegation routes.
func TestRecursiveStealingSkewedDeterminism(t *testing.T) {
	// Delegates=4, VirtualDelegates=16: set s<16 seeds on delegate s%4+1.
	// Root set 1 -> delegate 2 (the producer); hot sets {0,4,8} all seed on
	// delegate 1; cold sets {2,6} on delegate 3.
	shape := workload.SkewedRecursive{
		Hot:    []uint64{0, 4, 8},
		Cold:   []uint64{2, 6},
		Waves:  20,
		RunLen: 3,
	}
	run := func() (string, prometheus.Stats) {
		opts := append([]prometheus.Option{prometheus.WithDelegates(4), prometheus.Recursive(),
			prometheus.Checked(), prometheus.WithQueueCapacity(64)}, stealingOpts()...)
		rt := prometheus.Init(opts...)
		defer rt.Terminate()
		// Indexed by set id: concurrent operations of different sets touch
		// disjoint slots (a shared map header would race).
		var logs [9][]int32
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		w.DelegateTo(1, func(c *prometheus.Ctx, _ *int) {
			shape.Run(c, func(set uint64, seq int32) func(*prometheus.Ctx) {
				return func(*prometheus.Ctx) {
					logs[set] = append(logs[set], seq)
					spin := int32(0)
					for i := int32(0); i < 50000; i++ {
						spin += i
					}
					spinSink.Add(spin)
				}
			})
		})
		rt.EndIsolation()
		return fmt.Sprint(logs[0], logs[4], logs[8], logs[2], logs[6]), rt.Stats()
	}

	first, st0 := run()
	if st0.Steals == 0 {
		t.Fatal("skewed stealing run performed no whole-set handoffs")
	}
	t.Logf("run 0: %d handoffs, %d threshold adjusts, %d hot sets pre-placed",
		st0.Handoffs, st0.ThresholdAdjusts, st0.HotSetsPlaced)
	for run2 := 1; run2 < 6; run2++ {
		got, st := run()
		if got != first {
			t.Fatalf("run %d: per-set op order diverged under stealing\n got: %.300s\nwant: %.300s", run2, got, first)
		}
		if st.Steals == 0 {
			t.Fatalf("run %d performed no whole-set handoffs", run2)
		}
	}
}

func TestRecursiveFPMStreamDeterminism(t *testing.T) {
	// Expected logs are pure program order: group g sees g, g+8, g+16, ...
	// and its conditional set the i%7==0 subsequence of that.
	var want string
	{
		logs := make([][]int32, 8)
		logs2 := make([][]int32, 8)
		for i := 0; i < 2000; i++ {
			g := i % 8
			logs[g] = append(logs[g], int32(i))
			if i%7 == 0 {
				logs2[g] = append(logs2[g], int32(i))
			}
		}
		want = fmt.Sprint(logs, logs2)
	}
	for _, queueCap := range []int{0, 4} {
		for run := 0; run < 6; run++ {
			got, st := fpmRun(t, queueCap)
			if got != want {
				t.Fatalf("queueCap=%d run %d: per-set op order diverged from program order", queueCap, run)
			}
			// With 3 delegates the root operation's context owns groups 2
			// and 5, so ~500 first-level delegations are self-delegations
			// that cannot drain until the root returns: with 4-slot rings
			// the spill path is structurally guaranteed to engage.
			if queueCap == 4 && st.Spills == 0 {
				t.Fatalf("run %d: tiny lanes never spilled — spill path not exercised", run)
			}
			if queueCap == 0 && run == 0 && st.Spills > 0 {
				t.Logf("default rings spilled %d (allowed, informational)", st.Spills)
			}
		}
	}
}
