package prometheus_test

// Determinism stress for the recursive-delegation engine, in the shapes
// the paper names as recursive delegation's motivating workloads (§4):
// quicksort (divide-and-conquer over a mutable slice) and FPM-style
// streaming (a root operation fanning item streams into per-group sets,
// which delegate a second level of work). The engine's contract is that
// per-set operation order equals the producing context's program order —
// independent of scheduling, lane occupancy, and the ring/spill boundary —
// so every run must produce byte-identical per-set logs. Each shape runs
// >= 6 times, in the default-ring configuration and in a tiny-ring
// configuration that forces the lane-overflow spill path (asserted via
// Stats.Spills where overflow is structurally guaranteed), with Checked
// mode enforcing the one-producer-per-set discipline throughout. The CI
// recursive-stress job repeats this file under -race.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	prometheus "repro"
)

// qsNode recursively sorts data[lo:hi], recording one structure line per
// tree node into the reducible map keyed by the node's deterministic id
// (root 1, children 2*id and 2*id+1 — the recursion tree is a function of
// the input alone, so ids are stable across runs). Child ranges are
// delegated to serialization sets named by the child ids: each set's sole
// producer is the parent node's executing context.
func qsNode(c *prometheus.Ctx, rec *prometheus.Reducible[map[uint64]string],
	data []int32, id uint64, lo, hi int) {
	const cutoff = 64
	slice := data[lo:hi]
	if hi-lo < cutoff || id > 1<<55 {
		sort.Slice(slice, func(i, j int) bool { return slice[i] < slice[j] })
		rec.Update(c, func(m *map[uint64]string) {
			(*m)[id] = fmt.Sprintf("leaf %d:%d", lo, hi)
		})
		return
	}
	pivot := slice[len(slice)/2]
	i, j := 0, len(slice)-1
	for i <= j {
		for slice[i] < pivot {
			i++
		}
		for slice[j] > pivot {
			j--
		}
		if i <= j {
			slice[i], slice[j] = slice[j], slice[i]
			i++
			j--
		}
	}
	mid := lo + i
	rec.Update(c, func(m *map[uint64]string) {
		(*m)[id] = fmt.Sprintf("node %d:%d pivot %d split %d", lo, hi, pivot, mid)
	})
	left, right := 2*id, 2*id+1
	c.Delegate(left, func(c2 *prometheus.Ctx) { qsNode(c2, rec, data, left, lo, lo+j+1) })
	c.Delegate(right, func(c2 *prometheus.Ctx) { qsNode(c2, rec, data, right, mid, hi) })
}

// quicksortRun executes one full recursive quicksort and returns a
// canonical string of the recursion structure plus the sorted output.
func quicksortRun(t *testing.T, queueCap int) string {
	t.Helper()
	rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive(),
		prometheus.Checked(), prometheus.WithQueueCapacity(queueCap))
	defer rt.Terminate()
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(rng.Intn(1 << 20))
	}
	rec := prometheus.NewReducible(rt,
		func() map[uint64]string { return map[uint64]string{} },
		func(dst, src *map[uint64]string) {
			for k, v := range *src {
				(*dst)[k] = v
			}
		})
	w := prometheus.NewWritable(rt, data)
	rt.BeginIsolation()
	w.Delegate(func(c *prometheus.Ctx, d *[]int32) { qsNode(c, rec, *d, 1, 0, len(*d)) })
	rt.EndIsolation()
	m := *rec.Result()
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ""
	for _, id := range ids {
		out += fmt.Sprintf("%d=%s\n", id, m[id])
	}
	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		t.Fatal("quicksort output not sorted")
	}
	return out + fmt.Sprint(data)
}

func TestRecursiveQuicksortDeterminism(t *testing.T) {
	// queueCap 0 is the default 256-slot ring; 8 keeps lanes tiny so bursts
	// of sibling delegations overflow into the spill path mid-recursion.
	for _, queueCap := range []int{0, 8} {
		first := quicksortRun(t, queueCap)
		for run := 1; run < 6; run++ {
			if got := quicksortRun(t, queueCap); got != first {
				t.Fatalf("queueCap=%d: run %d diverged from run 0:\n--- run0\n%.400s\n--- run%d\n%.400s",
					queueCap, run, first, run, got)
			}
		}
	}
}

// fpmRun executes one FPM-shaped epoch: a root operation streams items
// round-robin into per-group serialization sets (first level), and each
// group operation periodically delegates a second-level operation to its
// group's conditional set. Per-set logs must replay the producer's program
// order exactly. Returns the canonical log string and the spill count.
func fpmRun(t *testing.T, queueCap int) (string, uint64) {
	t.Helper()
	rt := prometheus.Init(prometheus.WithDelegates(3), prometheus.Recursive(),
		prometheus.Checked(), prometheus.WithQueueCapacity(queueCap))
	defer rt.Terminate()
	const (
		groups = 8
		items  = 2000
	)
	logs := make([][]int32, groups)  // first-level per-set logs
	logs2 := make([][]int32, groups) // second-level per-set logs
	w := prometheus.NewWritable(rt, 0)
	rt.BeginIsolation()
	w.Delegate(func(c *prometheus.Ctx, _ *int) {
		for i := 0; i < items; i++ {
			i := i
			g := i % groups
			c.Delegate(uint64(100+g), func(c2 *prometheus.Ctx) {
				logs[g] = append(logs[g], int32(i))
				if i%7 == 0 {
					c2.Delegate(uint64(200+g), func(*prometheus.Ctx) {
						logs2[g] = append(logs2[g], int32(i))
					})
				}
			})
		}
	})
	rt.EndIsolation()
	spills := rt.Stats().Spills
	return fmt.Sprint(logs, logs2), spills
}

func TestRecursiveFPMStreamDeterminism(t *testing.T) {
	// Expected logs are pure program order: group g sees g, g+8, g+16, ...
	// and its conditional set the i%7==0 subsequence of that.
	var want string
	{
		logs := make([][]int32, 8)
		logs2 := make([][]int32, 8)
		for i := 0; i < 2000; i++ {
			g := i % 8
			logs[g] = append(logs[g], int32(i))
			if i%7 == 0 {
				logs2[g] = append(logs2[g], int32(i))
			}
		}
		want = fmt.Sprint(logs, logs2)
	}
	for _, queueCap := range []int{0, 4} {
		for run := 0; run < 6; run++ {
			got, spills := fpmRun(t, queueCap)
			if got != want {
				t.Fatalf("queueCap=%d run %d: per-set op order diverged from program order", queueCap, run)
			}
			// With 3 delegates the root operation's context owns groups 2
			// and 5, so ~500 first-level delegations are self-delegations
			// that cannot drain until the root returns: with 4-slot rings
			// the spill path is structurally guaranteed to engage.
			if queueCap == 4 && spills == 0 {
				t.Fatalf("run %d: tiny lanes never spilled — spill path not exercised", run)
			}
			if queueCap == 0 && run == 0 && spills > 0 {
				t.Logf("default rings spilled %d (allowed, informational)", spills)
			}
		}
	}
}
