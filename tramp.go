package prometheus

import "unsafe"

// Trampoline plumbing for the zero-allocation delegation fast path.
//
// A Go func value is a single pointer word referring to an immutable funcval
// (the code pointer plus any captured variables, allocated by the caller —
// or static for non-capturing functions). That lets a wrapper pass the user
// callback through the runtime as a raw pointer payload and rebuild the
// callable on the executing context without constructing a closure per
// delegation: the wrapper type's static trampoline knows the concrete func
// type to reinterpret the word as. The pointer is carried in an
// unsafe.Pointer slot of the invocation record, so the GC keeps the funcval
// (and anything it captures) alive while the operation is in flight.

// funcPtr extracts the funcval pointer from a func value.
func funcPtr[F any](f F) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&f))
}

// ptrFunc rebuilds a func value of type F from a funcval pointer previously
// produced by funcPtr on the same type.
func ptrFunc[F any](p unsafe.Pointer) F {
	var f F
	*(*unsafe.Pointer)(unsafe.Pointer(&f)) = p
	return f
}
