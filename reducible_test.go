package prometheus

import (
	"testing"
	"testing/quick"
)

func TestReducibleSum(t *testing.T) {
	rt := newRT(t, WithDelegates(4))
	sum := NewReducible(rt, func() int64 { return 0 }, func(dst, src *int64) { *dst += *src })
	objs := make([]*Writable[int], 64)
	for i := range objs {
		objs[i] = NewWritable(rt, i)
	}
	rt.BeginIsolation()
	DoAll(objs, func(c *Ctx, p *int) {
		v := int64(*p)
		sum.Update(c, func(s *int64) { *s += v })
	})
	rt.EndIsolation()
	if got := *sum.Result(); got != 64*63/2 {
		t.Fatalf("sum = %d, want %d", got, 64*63/2)
	}
}

func TestReducibleMapMerge(t *testing.T) {
	rt := newRT(t, WithDelegates(4))
	m := NewReducible(rt,
		func() map[string]int { return map[string]int{} },
		func(dst, src *map[string]int) {
			for k, v := range *src {
				(*dst)[k] += v
			}
		})
	words := []string{"a", "b", "a", "c", "b", "a"}
	objs := make([]*Writable[string], len(words))
	for i, w := range words {
		objs[i] = NewWritable(rt, w)
	}
	rt.BeginIsolation()
	DoAll(objs, func(c *Ctx, s *string) {
		word := *s
		m.Update(c, func(view *map[string]int) { (*view)[word]++ })
	})
	rt.EndIsolation()
	got := *m.Result()
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestReducibleReducesOnFirstAggregationAccess(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	r := NewReducible(rt, func() int { return 0 }, func(dst, src *int) { *dst += *src })
	w := NewWritable(rt, 0)
	rt.BeginIsolation()
	for i := 0; i < 10; i++ {
		w.Delegate(func(c *Ctx, _ *int) { r.Update(c, func(v *int) { *v++ }) })
	}
	rt.EndIsolation()
	if r.Reduced() {
		t.Fatal("reduction should be pending after isolation with updates")
	}
	// First program-context access in the aggregation epoch reduces.
	if got := *r.View(rt.ProgramCtx()); got != 10 {
		t.Fatalf("view = %d, want 10", got)
	}
	if !r.Reduced() {
		t.Fatal("reduction should have executed")
	}
}

func TestReducibleAccumulatesAcrossEpochsUntilRead(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	r := NewReducible(rt, func() int { return 0 }, func(dst, src *int) { *dst += *src })
	w := NewWritable(rt, 0)
	for e := 0; e < 3; e++ {
		rt.BeginIsolation()
		w.Delegate(func(c *Ctx, _ *int) { r.Update(c, func(v *int) { *v += 5 }) })
		rt.EndIsolation()
	}
	if got := *r.Result(); got != 15 {
		t.Fatalf("accumulated = %d, want 15", got)
	}
}

func TestReducibleResultDuringIsolationPanics(t *testing.T) {
	rt := newRT(t, WithDelegates(1))
	r := NewReducible(rt, func() int { return 0 }, func(dst, src *int) { *dst += *src })
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer expectError(t, ErrAPIMisuse)
	r.Result()
}

func TestReducibleProgramContextUpdates(t *testing.T) {
	rt := newRT(t, WithDelegates(2))
	r := NewReducible(rt, func() int { return 0 }, func(dst, src *int) { *dst += *src })
	rt.BeginIsolation()
	r.Update(rt.ProgramCtx(), func(v *int) { *v = 9 }) // program view counts too
	rt.EndIsolation()
	if got := *r.Result(); got != 9 {
		t.Fatalf("result = %d, want 9", got)
	}
}

func TestReducibleTreeOrderDeterministic(t *testing.T) {
	// combine is string concatenation — NOT commutative — so this test
	// pins down the fixed index order of the tree reduction.
	build := func(delegates int) string {
		rt := Init(WithDelegates(delegates))
		defer rt.Terminate()
		r := NewReducible(rt, func() string { return "" }, func(dst, src *string) { *dst += *src })
		// Deterministically seed every context view.
		for i := 0; i < rt.NumContexts(); i++ {
			*r.views[i] = string(rune('a' + i))
		}
		r.dirty.Store(true)
		return *r.Result()
	}
	if got := build(3); got != "abcd" {
		t.Fatalf("reduction order = %q, want abcd", got)
	}
	if got := build(7); got != "abcdefgh" {
		t.Fatalf("reduction order = %q, want abcdefgh", got)
	}
}

// TestQuickReducibleEqualsSequentialFold is the reduction correctness
// property: for commutative+associative ops, the parallel reduction equals
// the sequential fold regardless of which contexts received which updates.
func TestQuickReducibleEqualsSequentialFold(t *testing.T) {
	rt := newRT(t, WithDelegates(6))
	f := func(vals []int32) bool {
		r := NewReducible(rt, func() int64 { return 0 }, func(dst, src *int64) { *dst += *src })
		ws := make([]*Writable[int32], len(vals))
		for i, v := range vals {
			ws[i] = NewWritable(rt, v)
		}
		rt.BeginIsolation()
		DoAll(ws, func(c *Ctx, p *int32) {
			v := int64(*p)
			r.Update(c, func(s *int64) { *s += v })
		})
		rt.EndIsolation()
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		return *r.Result() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
