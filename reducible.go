package prometheus

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
)

// Reducible wraps data whose updates are associative and commutative
// (paper §2.2, technique 2). Each execution context accumulates into a
// private view during isolation epochs; the first access from the program
// context in the following aggregation epoch folds the views into the final
// value with a parallel tree reduction (N/2 combine operations per step,
// executed on the delegate pool).
//
// Reduction combines views in fixed index order, so the reduced value is
// deterministic given the per-view contents.
type Reducible[T any] struct {
	rt      *Runtime
	factory func() T
	combine func(dst, src *T)
	// tramp is the wrapper type's static delegation trampoline, bound once
	// at construction so Delegate builds no closure per call.
	tramp core.Trampoline
	// views are separately heap-allocated so per-context accumulators do
	// not share cache lines.
	views []*T
	dirty atomic.Bool
	// lastSet remembers the most recent Delegate target so Err can consult
	// the runtime's fault records for it.
	lastSet uint64
	hasSet  bool
}

// reducibleTramp is the Reducible delegation trampoline: p1 is the wrapper,
// p2 the user callback's funcval pointer; the callback runs against the
// executing context's private view.
func reducibleTramp[T any](ctx int, p1, p2 unsafe.Pointer) {
	r := (*Reducible[T])(p1)
	fn := ptrFunc[func(*T)](p2)
	fn(r.views[ctx])
}

// NewReducible creates a reducible. factory produces an identity view;
// combine folds src into dst and may destroy src.
func NewReducible[T any](rt *Runtime, factory func() T, combine func(dst, src *T)) *Reducible[T] {
	r := &Reducible[T]{rt: rt, factory: factory, combine: combine, tramp: reducibleTramp[T]}
	r.views = make([]*T, rt.NumContexts())
	for i := range r.views {
		v := factory()
		r.views[i] = &v
	}
	return r
}

// View returns the executing context's private view. Delegated closures use
// the *Ctx they were handed; the program context uses rt.ProgramCtx().
// Accessing the view from the program context during an aggregation epoch
// triggers the pending reduction first (paper: "the first call in an
// aggregation epoch causes the reduce method to execute").
func (r *Reducible[T]) View(c *Ctx) *T {
	if c.id == 0 && !r.rt.core.InIsolation() {
		r.maybeReduce()
	} else {
		// Any view access during isolation may mutate; mark the reduction
		// pending. The flag write is ordered before the program context's
		// read by the EndIsolation barrier.
		r.dirty.Store(true)
	}
	return r.views[c.id]
}

// Update applies fn to the executing context's view.
func (r *Reducible[T]) Update(c *Ctx, fn func(view *T)) {
	fn(r.View(c))
}

// Delegate assigns an update to the given serialization set; the callback
// runs against the owning context's private view. Because reducible updates
// are associative and commutative, any set is sound — pick one that spreads
// updates across the delegate pool (or ride along with the set of the
// writable the update is derived from, so it shares that set's context and
// cache state). Marks the reduction pending.
func (r *Reducible[T]) Delegate(set uint64, fn func(view *T)) {
	if !r.rt.core.InIsolation() {
		raise(ErrAPIMisuse, "Reducible.Delegate outside an isolation epoch")
	}
	r.dirty.Store(true)
	r.lastSet, r.hasSet = set, true
	r.rt.core.DelegateCall(set, r.tramp, unsafe.Pointer(r), funcPtr(fn))
}

// Err reports the contained panics recorded against the serialization set
// this reducible most recently delegated through (see Runtime.Err for the
// containment semantics). A faulted update poisons that set like any
// other: later delegated updates through it are dropped, so the reduced
// result reflects exactly the updates that ran before the fault. Nil when
// the reducible never delegated or the set never faulted. Program context.
func (r *Reducible[T]) Err() error {
	if !r.hasSet {
		return nil
	}
	return r.rt.SetErr(r.lastSet)
}

// Result reduces (if needed) and returns the final view. It must be called
// from the program context during an aggregation epoch.
func (r *Reducible[T]) Result() *T {
	if r.rt.core.InIsolation() {
		raise(ErrAPIMisuse, "Reducible.Result during an isolation epoch")
	}
	r.maybeReduce()
	return r.views[0]
}

// maybeReduce folds all views into views[0] if any updates are pending.
// Views other than 0 are re-initialized from the factory.
func (r *Reducible[T]) maybeReduce() {
	if !r.dirty.Swap(false) {
		return
	}
	rt := r.rt
	rt.core.EnterReduction()
	n := len(r.views)
	// Pairwise tree: at each step, combine view[i+stride] into view[i] for
	// every i that is a multiple of 2*stride. Steps are barriers; combines
	// within a step touch disjoint view pairs and run on the delegate pool.
	for stride := 1; stride < n; stride *= 2 {
		var tasks []func(int)
		for i := 0; i+stride < n; i += 2 * stride {
			dst, src := r.views[i], r.views[i+stride]
			tasks = append(tasks, func(int) { r.combine(dst, src) })
		}
		rt.core.RunParallel(tasks)
	}
	for i := 1; i < n; i++ {
		v := r.factory()
		r.views[i] = &v
	}
	rt.core.ExitReduction()
}

// Reduced reports whether there is no pending reduction (for tests).
func (r *Reducible[T]) Reduced() bool { return !r.dirty.Load() }

// Clear re-initializes every view from the factory, discarding accumulated
// state. Useful for iterative algorithms that reuse one reducible across
// epochs (allocating a fresh reducible per iteration wastes the views).
// Program context, aggregation epoch only.
func (r *Reducible[T]) Clear() {
	if r.rt.core.InIsolation() {
		raise(ErrAPIMisuse, "Reducible.Clear during an isolation epoch")
	}
	for i := range r.views {
		v := r.factory()
		r.views[i] = &v
	}
	r.dirty.Store(false)
}
