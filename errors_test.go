package prometheus

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestErrorKindString(t *testing.T) {
	for _, tc := range []struct {
		kind ErrorKind
		want string
	}{
		{ErrSerializerViolation, "serializer violation"},
		{ErrPartitionViolation, "partition violation"},
		{ErrAPIMisuse, "api misuse"},
		{ErrPanic, "panic"},
		{ErrorKind(99), "unknown"},
		{ErrorKind(-1), "unknown"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("ErrorKind(%d).String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestErrorFormatting(t *testing.T) {
	for _, tc := range []struct {
		err  *Error
		want string
	}{
		{&Error{Kind: ErrAPIMisuse, Msg: "Delegate outside an isolation epoch"},
			"prometheus: api misuse: Delegate outside an isolation epoch"},
		{&Error{Kind: ErrSerializerViolation, Msg: "writable #3 mapped to set 2, previously set 1, in one epoch"},
			"prometheus: serializer violation: writable #3 mapped to set 2, previously set 1, in one epoch"},
		{&Error{Kind: ErrPanic, Msg: "operation of set 7 panicked"},
			"prometheus: panic: operation of set 7 panicked"},
	} {
		if got := tc.err.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
}

func TestRaisePanicsWithError(t *testing.T) {
	defer func() {
		v := recover()
		e, ok := v.(*Error)
		if !ok {
			t.Fatalf("raise panicked with %T, want *Error", v)
		}
		if e.Kind != ErrPartitionViolation {
			t.Errorf("Kind = %v, want ErrPartitionViolation", e.Kind)
		}
		if e.Msg != "object #42 misused" {
			t.Errorf("Msg = %q, want formatted message", e.Msg)
		}
		if e.Err != nil {
			t.Errorf("raise produced a wrapped cause %v, want nil", e.Err)
		}
	}()
	raise(ErrPartitionViolation, "object #%d misused", 42)
}

func TestPanicErrorFormatting(t *testing.T) {
	pe := &PanicError{Set: 9, Ctx: 2, Epoch: 4, Value: "boom"}
	want := "operation of set 9 panicked on context 2 in epoch 4: boom"
	if got := pe.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	pool := &PanicError{Set: NoSet, Ctx: 1, Epoch: 2, Value: "boom"}
	if got := pool.Error(); !strings.HasPrefix(got, "pool task panicked") {
		t.Errorf("pool-task Error() = %q, want pool-task form", got)
	}
}

func TestPanicErrorUnwrapping(t *testing.T) {
	// Panic value that is an error: the chain reaches the original cause.
	cause := chaos.Fault{Set: 5, N: 3}
	pe := &PanicError{Set: 5, Ctx: 1, Epoch: 1, Value: cause}
	wrapped := &Error{Kind: ErrPanic, Msg: pe.Error(), Err: pe}

	if !errors.Is(wrapped, chaos.Fault{Set: 5, N: 3}) {
		t.Error("errors.Is did not reach the injected Fault through Error -> PanicError")
	}
	var gotPE *PanicError
	if !errors.As(wrapped, &gotPE) || gotPE.Set != 5 {
		t.Error("errors.As did not extract the *PanicError")
	}
	var gotErr *Error
	if !errors.As(wrapped, &gotErr) || gotErr.Kind != ErrPanic {
		t.Error("errors.As did not extract the *Error")
	}
	var gotFault chaos.Fault
	if !errors.As(wrapped, &gotFault) || gotFault.N != 3 {
		t.Error("errors.As did not extract the chaos.Fault cause")
	}

	// Panic value that is not an error: the chain ends at the PanicError.
	if (&PanicError{Value: "just a string"}).Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value should be nil")
	}

	// A joined multi-error keeps every member reachable.
	other := &PanicError{Set: 6, Ctx: 1, Epoch: 1, Value: fmt.Errorf("other")}
	joined := errors.Join(wrapped, &Error{Kind: ErrPanic, Msg: other.Error(), Err: other})
	if !errors.Is(joined, cause) {
		t.Error("joined error lost the first fault's cause")
	}
	if !strings.Contains(joined.Error(), "set 6") {
		t.Error("joined error lost the second fault's message")
	}
}
