package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Circuit-breaker states. The zero value is closed — a fresh backend is in
// rotation.
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses; next request becomes the probe)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed   (back in rotation)
//	half-open ──(probe fails)────▶ open      (cooldown restarts)
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName renders a breaker state for /metrics labels and reports.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-backend circuit breaker with consecutive-failure
// tracking and half-open probing. Delegate contexts call allow/onSuccess/
// onFailure concurrently (different sets execute on different delegates),
// so the state machine runs under one mutex; the serving path pays that
// lock only when a pool actually routes to the backend, never on the
// admission fast path.
//
// The half-open state admits exactly ONE request — the probe. Everything
// else is denied until the probe resolves: a success closes the breaker
// (the backend returns to rotation at full traffic), a failure reopens it
// and restarts the cooldown. Admitting a single probe instead of a
// fraction keeps a still-sick backend from absorbing a thundering herd at
// every cooldown boundary.
type breaker struct {
	mu       sync.Mutex
	state    int32
	consec   int       // consecutive failures observed in the closed state
	openedAt time.Time // when the breaker last opened (cooldown anchor)
	probing  bool      // half-open: the single probe slot is taken

	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before a half-open probe

	opens  atomic.Uint64 // times the breaker transitioned closed/half-open -> open
	denied atomic.Uint64 // requests short-circuited while open or probing
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the gated backend. In the
// open state the first call after the cooldown transitions to half-open
// and claims the probe slot; the caller MUST report the outcome via
// onSuccess or onFailure, or the breaker stays probing forever.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.denied.Add(1)
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.denied.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a successful call: it resets the consecutive-failure
// count and, from half-open, closes the breaker — the backend is healthy
// again and returns to rotation.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.consec = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
	b.mu.Unlock()
}

// onFailure records a failed call: in the closed state it counts toward
// the threshold and opens the breaker when reached; from half-open the
// failed probe reopens immediately and the cooldown restarts.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	switch b.state {
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Add(1)
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens.Add(1)
	default: // already open: a straggling in-flight call resolved late
	}
	b.mu.Unlock()
}

// snapshot returns the state and consecutive-failure count for metrics and
// health reporting.
func (b *breaker) snapshot() (state int32, consec int) {
	b.mu.Lock()
	state, consec = b.state, b.consec
	b.mu.Unlock()
	return state, consec
}
