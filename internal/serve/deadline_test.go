package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	prometheus "repro"
	"repro/internal/chaos"
)

// newReq builds a keyed request without routing it anywhere.
func newReq(method, path, key string, hdr map[string]string) *http.Request {
	r := httptest.NewRequest(method, path, nil)
	r.Header.Set("X-Session-Key", key)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	return r
}

// blockingBackend parks until the request's deadline fires, then reports
// the context error — a well-behaved upstream that honors cancellation.
type blockingBackend struct{}

func (blockingBackend) Name() string { return "blocking" }
func (blockingBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	<-ctx.Done()
	return 0, "", ctx.Err()
}

// TestDeadlineBackendTimeout covers the in-backend enforcement point: a
// backend that honors its context deadline fails the attempt, the router
// sees the budget is gone, and the client gets a definitive 504 — not a
// retry, not a parked done channel.
func TestDeadlineBackendTimeout(t *testing.T) {
	s := newTestServer(t, Config{
		Backend:        blockingBackend{},
		RequestTimeout: 30 * time.Millisecond,
		RetryMax:       3, // must NOT be consulted: the budget is spent
	})
	defer s.Drain()
	h := s.Handler()

	start := time.Now()
	code, body := get(t, h, "/", "k1", nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %q, want 504", code, body)
	}
	if !strings.Contains(body, "exceeded its") {
		t.Fatalf("504 body %q lacks the budget explanation", body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("expired request took %v to resolve", elapsed)
	}
}

// TestDeadlineQueueFrontShed covers the queue-front enforcement point: a
// request whose budget was consumed by a slow epoch-mate ahead of it in
// the same serialization set resolves 504 without running its backend.
func TestDeadlineQueueFrontShed(t *testing.T) {
	ran := make(map[string]bool)
	var mu sync.Mutex
	s := newTestServer(t, Config{
		Handler: func(sess *Session, r *http.Request) (int, string) {
			mu.Lock()
			ran[r.URL.Path] = true
			mu.Unlock()
			if r.Header.Get("X-Slow") == "1" {
				time.Sleep(120 * time.Millisecond) // uncancellable: ignores the deadline
			}
			return http.StatusOK, "ok"
		},
		RequestTimeout: 40 * time.Millisecond,
		EpochInterval:  time.Second, // no rotation mid-test; the queue front must shed on its own
	})
	defer s.Drain()
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(2)
	codes := make([]int, 2)
	go func() {
		defer wg.Done()
		codes[0], _ = get(t, h, "/first", "hot", map[string]string{"X-Slow": "1"})
	}()
	time.Sleep(10 * time.Millisecond) // let the slow one claim the set
	go func() {
		defer wg.Done()
		codes[1], _ = get(t, h, "/second", "hot", nil)
	}()
	wg.Wait()

	// The slow request ignores its deadline and completes late: a late
	// success is still a success. The one queued behind it must expire.
	if codes[0] != http.StatusOK {
		t.Fatalf("slow request status %d, want 200", codes[0])
	}
	if codes[1] != http.StatusGatewayTimeout {
		t.Fatalf("queued request status %d, want 504", codes[1])
	}
	mu.Lock()
	defer mu.Unlock()
	if ran["/second"] {
		t.Fatal("expired request's backend ran anyway: queue-front shed failed")
	}
}

// TestRetryRecoversInjectedFailure: a deterministic chaos error on the
// key's first backend attempt is healed by one retry — the client sees a
// plain 200 and the retry counter moves.
func TestRetryRecoversInjectedFailure(t *testing.T) {
	const key = "retry-key"
	set := prometheus.StringSet(key)
	s := newTestServer(t, Config{
		Backend: &ChaosBackend{
			Inner:  NewHandlerBackend("inner", testHandler),
			Errors: chaos.ErrorAt(set, 1),
		},
		RetryMax:  2,
		RetryBase: time.Millisecond,
	})
	h := s.Handler()

	code, body := get(t, h, "/", key, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d body %q, want 200 after retry", code, body)
	}
	if s.metrics.retries.Load() == 0 {
		t.Fatal("no retry recorded")
	}
	if s.metrics.backendFailures.Load() == 0 {
		t.Fatal("injected failure not counted")
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRetryNotForNonIdempotent: the same injected failure on a POST
// without an Idempotency-Key renders a 502 instead of retrying.
func TestRetryNotForNonIdempotent(t *testing.T) {
	const key = "post-key"
	set := prometheus.StringSet(key)
	s := newTestServer(t, Config{
		Backend: &ChaosBackend{
			Inner:  NewHandlerBackend("inner", testHandler),
			Errors: chaos.ErrorAt(set, 1),
		},
		RetryMax:  2,
		RetryBase: time.Millisecond,
	})
	defer s.Drain()
	h := s.Handler()

	r := newReq("POST", "/", key, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	code, body := w.Code, w.Body.String()
	if code != http.StatusBadGateway {
		t.Fatalf("non-idempotent POST: status %d body %q, want 502", code, body)
	}
	if !strings.Contains(body, "after 1 attempt(s)") {
		t.Fatalf("502 body %q does not show a single attempt", body)
	}
	if s.metrics.retries.Load() != 0 {
		t.Fatal("non-idempotent request was retried")
	}

	// The second per-set op has no injected error; an Idempotency-Key on a
	// later failing op would opt the POST back into retries — covered by
	// defaultIdempotent unit checks below.
	if !defaultIdempotent(newReq("POST", "/", key, map[string]string{"Idempotency-Key": "tx-9"})) {
		t.Fatal("Idempotency-Key header did not mark the POST retryable")
	}
	if defaultIdempotent(newReq("POST", "/", key, nil)) {
		t.Fatal("bare POST marked retryable")
	}
	if !defaultIdempotent(newReq("GET", "/", key, nil)) {
		t.Fatal("GET not marked retryable")
	}
}

// TestRetryPreservesPerKeyOrder: a key whose every odd backend attempt
// fails (and is retried) still yields unique, gap-free session sequence
// numbers across concurrent clients — retries re-enter through the same
// serialization set, so no two attempts for the key ever overlap.
func TestRetryPreservesPerKeyOrder(t *testing.T) {
	const key = "flaky-key"
	s := newTestServer(t, Config{
		Backend: &ChaosBackend{
			Inner: NewHandlerBackend("inner", testHandler),
			// Seeded 30% failure rate on this set's ops: many requests need
			// one or more retries, deterministically placed.
			Errors: chaos.SeededErrors(42, 0.3),
		},
		RetryMax:  8,
		RetryBase: time.Millisecond,
	})
	h := s.Handler()

	const clients, perClient = 4, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	seqs := map[string]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, body := get(t, h, "/", key, nil)
				if code != http.StatusOK {
					t.Errorf("status %d body %q", code, body)
					return
				}
				mu.Lock()
				seqs[body]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range seqs {
		if n != 1 {
			t.Fatalf("sequence %s returned %d times: attempts for one key overlapped", seq, n)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSlowKeyWatchdog: consecutive slow services degrade the key to 503
// sheds; the next epoch rotation heals it.
func TestSlowKeyWatchdog(t *testing.T) {
	s := newTestServer(t, Config{
		Handler: func(sess *Session, r *http.Request) (int, string) {
			if r.Header.Get("X-Slow") == "1" {
				time.Sleep(15 * time.Millisecond)
			}
			return http.StatusOK, "ok"
		},
		SlowThreshold: 5 * time.Millisecond,
		SlowTrips:     2,
		EpochInterval: 400 * time.Millisecond,
	})
	defer s.Drain()
	h := s.Handler()

	slow := map[string]string{"X-Slow": "1"}
	for i := 0; i < 2; i++ {
		if code, _ := get(t, h, "/", "laggard", slow); code != http.StatusOK {
			t.Fatalf("slow request %d not served", i)
		}
	}
	// Two consecutive slow services tripped the watchdog: even a fast
	// request for the key is now shed.
	code, body := get(t, h, "/", "laggard", nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded key: status %d body %q, want 503 shed", code, body)
	}
	// Other keys are unaffected.
	if code, _ := get(t, h, "/", "bystander", nil); code != http.StatusOK {
		t.Fatal("watchdog degradation leaked to an unrelated key")
	}
	if s.slow.degradedCount() != 1 {
		t.Fatalf("degradedCount = %d, want 1", s.slow.degradedCount())
	}

	// Rotation heals: the key serves again (and its consecutive-slow
	// count restarts from zero).
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = get(t, h, "/", "laggard", nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("degraded key never healed across rotations")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestExpiredAtDeliveryAfterBackoff: a retry whose backoff would land
// past the deadline is not armed — the budget bounds total attempts, so
// the client sees the rendered failure, not a late retry.
func TestBackoffBoundedByDeadline(t *testing.T) {
	const key = "bounded"
	set := prometheus.StringSet(key)
	s := newTestServer(t, Config{
		Backend: &ChaosBackend{
			Inner:  NewHandlerBackend("inner", testHandler),
			Errors: chaos.ErrorAt(set, 1),
		},
		RequestTimeout: 50 * time.Millisecond,
		RetryMax:       3,
		RetryBase:      time.Hour, // backoff can never fit the budget
	})
	defer s.Drain()
	h := s.Handler()

	start := time.Now()
	code, body := get(t, h, "/", key, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("status %d body %q, want immediate 502", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request waited %v: the hour-long backoff was armed", elapsed)
	}
	if s.metrics.retries.Load() != 0 {
		t.Fatal("retry armed past the deadline")
	}
}

// backoffFor must stay within [0.5x, 1.5x] of the capped exponential
// schedule and never overflow.
func TestBackoffSchedule(t *testing.T) {
	s := newTestServer(t, Config{
		Handler:   testHandler,
		RetryBase: 2 * time.Millisecond,
		RetryCap:  250 * time.Millisecond,
	})
	defer s.Drain()
	for attempt := 0; attempt < 70; attempt++ { // far past the shift-overflow point
		j := &job{set: 7, attempt: attempt}
		d := s.backoffFor(j)
		ideal := 2 * time.Millisecond << uint(attempt)
		if ideal <= 0 || ideal > 250*time.Millisecond {
			ideal = 250 * time.Millisecond
		}
		lo, hi := ideal/2, ideal+ideal/2
		if d < lo || d > hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
		// Same (set, attempt) must jitter identically: determinism.
		if d2 := s.backoffFor(j); d2 != d {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d, d2)
		}
	}
}
