package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	prometheus "repro"
)

// latencyBounds are the request-latency bucket upper bounds in
// microseconds: sub-millisecond resolution where a delegated handler
// normally lands, decade coverage up to 1s for rotation-barrier and
// overload tails.
var latencyBounds = []int64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1000000,
}

// depthBounds bucket the jobs-channel occupancy observed at admission —
// the serving tier's queue-depth distribution, the early-warning signal
// that the router (or a rotation barrier) is falling behind.
var depthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// metrics is the serving tier's metric set. Hot-path updates (observe,
// the counters) are single atomic operations on pre-allocated
// histograms — zero allocations per request. Latency is sharded by
// serialization set (set mod shards), bounding exposition cardinality
// under unbounded request keys while keeping skew visible: a hot key
// concentrates in one shard's histogram.
type metrics struct {
	latency []*prometheus.Histogram // per set-shard, microseconds
	depth   *prometheus.Histogram   // jobs-channel occupancy at admission

	served           atomic.Uint64 // requests answered by their backend
	droppedJobs      atomic.Uint64 // jobs resolved dropped (poison fast path or epoch sweep)
	admissionRejects atomic.Uint64 // 503s: inflight budget, queue full, draining
	rateRejects      atomic.Uint64 // 429s: per-set token bucket
	poisonRejects    atomic.Uint64 // fast-path 500s: key already poisoned at admission
	faultResponses   atomic.Uint64 // 500s after delegation: faulted or dropped
	expired          atomic.Uint64 // 504s: request budget exhausted (delivery, queue front, backend, sweep)
	shedDegraded     atomic.Uint64 // 503s: slow-key watchdog shed at delivery
	retries          atomic.Uint64 // retry attempts armed after backend failures
	backendFailures  atomic.Uint64 // backend error returns (pre-retry; includes all-gated)
	degradedKeys     atomic.Uint64 // keys degraded by the watchdog (cumulative trips)
	bucketsEvicted   atomic.Uint64 // idle rate-limit buckets evicted at rotations

	// Durability (zero unless Config.StateFS is set — see durability.go).
	snapshots        atomic.Uint64 // snapshot generations committed
	snapshotFailures atomic.Uint64 // commits that failed (previous generation retained)
	snapshotSkipped  atomic.Uint64 // captures dropped because the writer was busy
	snapLastBytes    atomic.Uint64 // size of the last committed snapshot
	snapLastRecords  atomic.Uint64 // sessions in the last committed snapshot
	snapLastMicros   atomic.Uint64 // commit duration of the last snapshot
	journalRecords   atomic.Uint64 // session records journaled
	journalFailures  atomic.Uint64 // journal appends/swaps that failed
	journalSyncs     atomic.Uint64 // explicit journal fsyncs (per append or per rotation)
}

func newMetrics(shards int) *metrics {
	m := &metrics{
		latency: make([]*prometheus.Histogram, shards),
		depth:   prometheus.NewHistogram(depthBounds...),
	}
	for i := range m.latency {
		m.latency[i] = prometheus.NewHistogram(latencyBounds...)
	}
	return m
}

// observe records one answered request's latency under its set's shard.
func (m *metrics) observe(set uint64, lat time.Duration) {
	m.latency[set%uint64(len(m.latency))].Observe(lat.Microseconds())
}

// handleMetrics renders the Prometheus text exposition format by hand
// (text/plain; version 0.0.4) — counters, per-shard latency histograms
// with quantile estimates, the queue-depth histogram, per-delegate
// backlog gauges, and the engine counters from the last epoch-rotation
// snapshot. Scrape-path cost is irrelevant; only Observe is hot.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("ss_requests_served_total", "Requests answered by their handler.", m.served.Load())
	counter("ss_requests_dropped_total", "Requests resolved dropped on a poisoned set.", m.droppedJobs.Load())
	counter("ss_admission_rejects_total", "Requests rejected 503 at admission (budget, queue, draining).", m.admissionRejects.Load())
	counter("ss_ratelimit_rejects_total", "Requests rejected 429 by the per-set token bucket.", m.rateRejects.Load())
	counter("ss_poisoned_rejects_total", "Requests rejected 500 at admission on an already-poisoned key.", m.poisonRejects.Load())
	counter("ss_fault_responses_total", "Requests answered 500 after delegation (faulted or dropped).", m.faultResponses.Load())
	counter("ss_requests_expired_total", "Requests answered 504: budget exhausted before a backend answer.", m.expired.Load())
	counter("ss_requests_shed_total", "Requests answered 503 by the slow-key watchdog.", m.shedDegraded.Load())
	counter("ss_retries_total", "Retry attempts armed after backend failures.", m.retries.Load())
	counter("ss_backend_failures_total", "Backend error returns (before retry resolution).", m.backendFailures.Load())
	counter("ss_degraded_keys_total", "Keys degraded by the slow-key watchdog.", m.degradedKeys.Load())
	counter("ss_ratelimit_evicted_total", "Idle rate-limit buckets evicted at epoch rotations.", m.bucketsEvicted.Load())

	if s.store != nil {
		counter("ss_snapshots_total", "Session snapshot generations committed.", m.snapshots.Load())
		counter("ss_snapshot_failures_total", "Snapshot commits that failed (previous generation retained).", m.snapshotFailures.Load())
		counter("ss_snapshot_skipped_total", "Epoch captures dropped because the snapshot writer was busy.", m.snapshotSkipped.Load())
		counter("ss_journal_records_total", "Session records appended to the intra-epoch journal.", m.journalRecords.Load())
		counter("ss_journal_failures_total", "Journal appends or generation swaps that failed.", m.journalFailures.Load())
		counter("ss_journal_syncs_total", "Explicit journal fsyncs (per append under always, per rotation under rotation).", m.journalSyncs.Load())
		gauge := func(name, help string, v uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("ss_snapshot_last_bytes", "Size of the last committed snapshot.", m.snapLastBytes.Load())
		gauge("ss_snapshot_last_records", "Sessions in the last committed snapshot.", m.snapLastRecords.Load())
		gauge("ss_snapshot_last_duration_microseconds", "Commit duration of the last snapshot.", m.snapLastMicros.Load())
		gauge("ss_recovered_sessions", "Sessions rebuilt from storage at the last startup.", uint64(s.recovered.sessions))
		gauge("ss_recovered_journal_records", "Journal records replayed on top of the recovered snapshot.", uint64(s.recovered.journalReplayed))
		gauge("ss_journal_truncated_records", "Torn or corrupt journal frames truncated at the last recovery.", uint64(s.recovered.truncatedRecords))
		gauge("ss_recovery_snapshots_skipped", "Invalid snapshot generations skipped at the last recovery.", uint64(s.recovered.snapshotsSkipped))
	}

	histogram := func(name, help, labels string, h *prometheus.Histogram) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		brace := func(extra string) string {
			switch {
			case labels == "" && extra == "":
				return ""
			case labels == "":
				return "{" + extra + "}"
			case extra == "":
				return "{" + labels + "}"
			default:
				return "{" + labels + "," + extra + "}"
			}
		}
		bounds := h.Bounds()
		counts := h.Buckets(make([]uint64, 0, len(bounds)+1))
		var cum uint64
		for i, bound := range bounds {
			cum += counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, brace(fmt.Sprintf("le=%q", fmt.Sprint(bound))), cum)
		}
		cum += counts[len(bounds)]
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), cum)
		fmt.Fprintf(&b, "%s_sum%s %d\n", name, brace(""), h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", name, brace(""), cum)
		for _, q := range [...]float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s_quantile%s %.1f\n", name, brace(fmt.Sprintf("q=\"%g\"", q)), h.Quantile(q))
		}
	}
	for i, h := range m.latency {
		histogram("ss_request_latency_microseconds",
			"Request latency from admission to response decision, by set shard.",
			fmt.Sprintf("shard=\"%d\"", i), h)
	}
	histogram("ss_jobs_queue_depth", "Router jobs-channel occupancy observed at admission.", "", m.depth)

	fmt.Fprintf(&b, "# HELP ss_delegate_backlog Outstanding operations per delegate context.\n# TYPE ss_delegate_backlog gauge\n")
	for i, d := range s.rt.QueueDepths(make([]uint64, 0, 16)) {
		fmt.Fprintf(&b, "ss_delegate_backlog{delegate=\"%d\"} %d\n", i+1, d)
	}
	fmt.Fprintf(&b, "# HELP ss_delegates Delegates currently active in the pool.\n# TYPE ss_delegates gauge\nss_delegates %d\n",
		s.rt.ActiveDelegates())

	// Per-backend health, when the backend exposes it (a Pool does):
	// breaker state as an enum gauge plus failure/open/denial counters, so
	// a dashboard (and ssload's assertions) can watch a backend leave and
	// re-enter rotation.
	if sp, ok := s.cfg.Backend.(statesProvider); ok {
		states := sp.States()
		fmt.Fprintf(&b, "# HELP ss_backend_state Circuit-breaker state per backend (0=closed, 1=open, 2=half-open).\n# TYPE ss_backend_state gauge\n")
		for _, bs := range states {
			v := 0
			switch bs.State {
			case "open":
				v = 1
			case "half-open":
				v = 2
			}
			fmt.Fprintf(&b, "ss_backend_state{backend=%q} %d\n", bs.Name, v)
		}
		fmt.Fprintf(&b, "# HELP ss_backend_consecutive_failures Consecutive failures while closed, per backend.\n# TYPE ss_backend_consecutive_failures gauge\n")
		for _, bs := range states {
			fmt.Fprintf(&b, "ss_backend_consecutive_failures{backend=%q} %d\n", bs.Name, bs.ConsecFails)
		}
		fmt.Fprintf(&b, "# HELP ss_breaker_opens_total Times each backend's circuit breaker opened.\n# TYPE ss_breaker_opens_total counter\n")
		for _, bs := range states {
			fmt.Fprintf(&b, "ss_breaker_opens_total{backend=%q} %d\n", bs.Name, bs.Opens)
		}
		fmt.Fprintf(&b, "# HELP ss_breaker_denied_total Requests short-circuited by each backend's gate.\n# TYPE ss_breaker_denied_total counter\n")
		for _, bs := range states {
			fmt.Fprintf(&b, "ss_breaker_denied_total{backend=%q} %d\n", bs.Name, bs.Denied)
		}
		fmt.Fprintf(&b, "# HELP ss_backend_latency_ewma_ms Smoothed service time per backend, milliseconds.\n# TYPE ss_backend_latency_ewma_ms gauge\n")
		for _, bs := range states {
			fmt.Fprintf(&b, "ss_backend_latency_ewma_ms{backend=%q} %.3f\n", bs.Name, bs.LatencyEWMA)
		}
	}

	fmt.Fprintf(&b, "# HELP ss_poisoned_keys Serialization sets poisoned in the current epoch.\n# TYPE ss_poisoned_keys gauge\nss_poisoned_keys %d\n", s.rt.PoisonedCount())
	if s.slow != nil {
		fmt.Fprintf(&b, "# HELP ss_degraded_keys Keys currently shed by the slow-key watchdog.\n# TYPE ss_degraded_keys gauge\nss_degraded_keys %d\n", s.slow.degradedCount())
	}
	if s.limiter != nil {
		fmt.Fprintf(&b, "# HELP ss_ratelimit_buckets Live per-key token buckets.\n# TYPE ss_ratelimit_buckets gauge\nss_ratelimit_buckets %d\n", s.limiter.size())
	}

	st := s.Stats()
	counter("ss_runtime_panics_total", "Delegated-operation panics contained by the engine.", st.Panics)
	counter("ss_runtime_poisoned_sets_total", "Serialization sets ever poisoned by a contained panic.", st.PoisonedSets)
	counter("ss_runtime_dropped_ops_total", "Delegations dropped on poisoned sets by the engine.", st.DroppedOps)
	counter("ss_runtime_dropped_faults_total", "Fault records evicted by the bounded retention ring.", st.DroppedFaults)
	counter("ss_runtime_steals_total", "Whole-set handoffs by the occupancy-aware rebalancer.", st.Steals)
	counter("ss_runtime_epochs_total", "Isolation epochs begun (the rotation cadence).", st.Epochs)
	counter("ss_runtime_delegations_total", "Operations delegated to the pool.", st.Delegations)
	counter("ss_resize_total", "Delegate-pool resizes applied at epoch boundaries.", st.Resizes)
	counter("ss_resize_evacuated_sets", "Sets evacuated off retiring delegates by scale-downs.", st.ResizeEvacuatedSets)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
