package serve

import (
	"sync"
	"testing"
	"time"
)

// TestLimiterSweepBoundsChurn is the unbounded-cardinality regression
// test: 100k distinct keys touch the limiter once each (session-id
// churn), and the idle sweep at the next epoch rotation must evict
// essentially all of them — a long-lived server's bucket map is bounded
// by the working set, not by every key ever seen.
func TestLimiterSweepBoundsChurn(t *testing.T) {
	l := newLimiter(1, 10) // refills to burst only after 10s of idleness
	const churn = 100_000
	for set := uint64(0); set < churn; set++ {
		if !l.allow(set) {
			t.Fatalf("fresh key %d rejected", set)
		}
	}
	if got := l.size(); got != churn {
		t.Fatalf("size after churn = %d, want %d", got, churn)
	}

	// A sweep before any bucket could refill evicts nothing: eviction is
	// only for buckets indistinguishable from fresh ones.
	if n := l.sweep(time.Now()); n != 0 {
		t.Fatalf("premature sweep evicted %d buckets", n)
	}

	// From 20s in the future every bucket has refilled to capacity
	// ((now-last)*rate >= burst), so the sweep clears the map.
	if n := l.sweep(time.Now().Add(20 * time.Second)); n != churn {
		t.Fatalf("idle sweep evicted %d buckets, want %d", n, churn)
	}
	if got := l.size(); got != 0 {
		t.Fatalf("size after sweep = %d, want 0", got)
	}

	// An evicted key readmits exactly like a fresh one.
	if !l.allow(42) {
		t.Fatal("key rejected after eviction")
	}
}

// TestLimiterSweepSparesActiveBuckets: a bucket that recently spent
// tokens has NOT refilled to capacity and must survive the sweep —
// evicting it would hand the key a fresh full bucket, defeating the
// limit.
func TestLimiterSweepSparesActiveBuckets(t *testing.T) {
	l := newLimiter(1, 10) // 1 token/s: refilling 10 spent tokens takes 10s
	for i := 0; i < 10; i++ {
		if !l.allow(7) {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if l.allow(7) {
		t.Fatal("request past the burst admitted")
	}
	if n := l.sweep(time.Now().Add(2 * time.Second)); n != 0 {
		t.Fatalf("sweep evicted a drained bucket %d", n)
	}
	// 2s later the bucket has ~2 tokens: still rate-limited, which only
	// holds because the sweep kept it.
	if got := l.size(); got != 1 {
		t.Fatalf("drained bucket evicted (size %d)", got)
	}
}

// TestLimiterBurstOne: the tightest admission boundary. burst=1 admits
// exactly one request, then rejects until a full token has refilled —
// at rate 20/s, not before 50ms.
func TestLimiterBurstOne(t *testing.T) {
	l := newLimiter(20, 1)
	if !l.allow(1) {
		t.Fatal("first request rejected")
	}
	if l.allow(1) {
		t.Fatal("second immediate request admitted with burst=1")
	}
	// Sub-token refill: 10ms at 20/s is 0.2 tokens — still rejected.
	time.Sleep(10 * time.Millisecond)
	if l.allow(1) {
		t.Fatal("admitted on a fractional token")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !l.allow(1) {
		if time.Now().After(deadline) {
			t.Fatal("token never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLimiterRacingGoroutines: two goroutines fighting over one
// refilling token stream must never over-admit — across 500ms at
// 100/s with burst 1, admissions are bounded by refill + the initial
// token, regardless of interleaving. Run with -race this also proves
// the shard-lock discipline.
func TestLimiterRacingGoroutines(t *testing.T) {
	l := newLimiter(100, 1)
	const dur = 500 * time.Millisecond
	var wg sync.WaitGroup
	admitted := make([]int, 2)
	start := time.Now()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Since(start) < dur {
				if l.allow(99) {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := admitted[0] + admitted[1]
	// Refill budget: 100/s * 0.5s = 50, plus the initial burst token,
	// plus slack for scheduler overrun past dur.
	if total < 10 || total > 75 {
		t.Fatalf("2 racing goroutines admitted %d requests (want ~51)", total)
	}
	if admitted[0] == total || admitted[1] == total {
		t.Logf("note: one goroutine won every token (%d/%d) — legal, just unusual", admitted[0], admitted[1])
	}
}
