package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// Backend executes the work behind one request, on a delegate context,
// serialized with every other request for the same key by the key's
// serialization set. ctx carries the request's deadline (see
// Config.RequestTimeout); a backend that does I/O must honor it so a slow
// downstream resolves as a timeout error instead of wedging its key's set
// for the epoch.
//
// The error return is the backend-health seam: a nil error means the
// backend produced a definitive answer (any status — an upstream 404 is a
// healthy backend answering), a non-nil error means the backend itself
// failed (connect error, 5xx, timeout, injected chaos). Errors feed the
// pool's circuit breaker and the router's retry ladder; panics remain the
// handler-bug seam and are contained by the engine as before.
type Backend interface {
	// Name identifies the backend in metrics and health reports.
	Name() string
	// Serve executes one request against its key's session. Implementations
	// must not retain s or r beyond the call.
	Serve(ctx context.Context, s *Session, r *http.Request) (status int, body string, err error)
}

// ErrNoBackend is returned by a Pool when every backend is gated by its
// circuit breaker (or denied the half-open probe slot). It is retryable:
// a later attempt may land after a cooldown opened a probe slot.
var ErrNoBackend = errors.New("serve: no backend available: all gated by circuit breakers")

// BackendError wraps a backend failure with the backend's name, so
// responses and logs identify which upstream failed. Unwrap exposes the
// cause for errors.Is (the chaos tests match injected errors through it).
type BackendError struct {
	Backend string
	Err     error
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("backend %q: %v", e.Backend, e.Err)
}

func (e *BackendError) Unwrap() error { return e.Err }

// HandlerBackend adapts a Handler to the Backend interface: the in-process
// backend. The request's deadline context is attached to the *http.Request
// (r.Context().Deadline()), so a cooperative handler can bound its own
// work; a handler that ignores it runs to completion and the deadline is
// instead enforced on the requests queued behind it (queue-front shedding)
// and by the slow-key watchdog.
type HandlerBackend struct {
	name string
	h    Handler
}

// NewHandlerBackend wraps h as a named in-process backend.
func NewHandlerBackend(name string, h Handler) *HandlerBackend {
	return &HandlerBackend{name: name, h: h}
}

func (hb *HandlerBackend) Name() string { return hb.name }

func (hb *HandlerBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	status, body := hb.h(s, r.WithContext(ctx))
	return status, body, nil
}

// HTTPBackend proxies requests to an upstream HTTP server — the serving
// tier as a session-affinity router in front of a real fleet. The upstream
// sees the original method, path, and query, the request body (capped at
// maxProxyBody — the same bound the response side carries), the original
// Content-Type, and the session key in X-Session-Key; the request deadline
// propagates as the outgoing request's context, so a slow upstream
// resolves as a timeout error at the budget boundary. Transport errors and
// upstream 5xx count as backend failures (breaker + retry); every other
// status is a definitive answer relayed to the client.
//
// The body is read once and cached on the request (r.GetBody), so a
// retried attempt — the router re-delegates idempotent requests through
// the same job — replays the same bytes instead of finding a drained
// reader. A body over the cap is a definitive 413, not a backend failure:
// retrying would re-send the same oversized payload.
type HTTPBackend struct {
	name   string
	base   *url.URL
	client *http.Client
}

// maxProxyBody bounds how much of an upstream response body is relayed,
// so one misbehaving upstream cannot balloon router memory.
const maxProxyBody = 1 << 20

// NewHTTPBackend builds an upstream proxy backend. client may be nil for
// http.DefaultClient semantics with no client-side timeout (the request
// context carries the deadline).
func NewHTTPBackend(name, baseURL string, client *http.Client) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: backend %q: %w", name, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("serve: backend %q: base URL %q needs scheme and host", name, baseURL)
	}
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPBackend{name: name, base: u, client: client}, nil
}

func (hb *HTTPBackend) Name() string { return hb.name }

func (hb *HTTPBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	payload, status, errBody := proxyBody(r)
	if status != 0 {
		return status, "request body exceeds the proxy cap\n", nil
	}
	if errBody != nil {
		return 0, "", errBody
	}
	u := *hb.base
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	var bodyReader io.Reader
	if payload != nil {
		bodyReader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), bodyReader)
	if err != nil {
		return 0, "", err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("X-Session-Key", s.Key)
	resp, err := hb.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode >= 500 {
		return 0, "", fmt.Errorf("upstream status %d", resp.StatusCode)
	}
	return resp.StatusCode, string(body), nil
}

// proxyBody reads the inbound request body once (bounded by maxProxyBody)
// and caches it on the request via r.GetBody, so a retried attempt
// replays the same bytes instead of finding a reader the first attempt
// drained. Returns (payload, 0, nil) on success — payload nil when the
// request carries no body — (nil, 413, nil) when the body exceeds the
// cap (definitive: a retry would re-send the same oversized payload),
// and a non-nil error when the client stream broke mid-read (a backend
// failure from the caller's perspective, though retrying it will fail
// the same way until the request is shed).
func proxyBody(r *http.Request) ([]byte, int, error) {
	rc := r.Body
	if r.GetBody != nil {
		// A prior attempt (or the client) cached the body; re-open it.
		var err error
		if rc, err = r.GetBody(); err != nil {
			return nil, 0, err
		}
	}
	if rc == nil || rc == http.NoBody {
		return nil, 0, nil
	}
	b, err := io.ReadAll(io.LimitReader(rc, maxProxyBody+1))
	if err != nil {
		return nil, 0, err
	}
	if len(b) > maxProxyBody {
		return nil, http.StatusRequestEntityTooLarge, nil
	}
	if len(b) == 0 {
		return nil, 0, nil
	}
	if r.GetBody == nil {
		r.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(b)), nil
		}
	}
	return b, 0, nil
}

// ChaosBackend wraps a backend with the deterministic degraded-downstream
// injectors from internal/chaos: latency spikes (slept under the request's
// deadline context, so a spike longer than the remaining budget resolves
// as a timeout error, never a wedge), transient errors, and a flap window
// (a contiguous outage over this backend's own call sequence — the
// circuit-breaker exercise). Any injector may be nil.
type ChaosBackend struct {
	Inner   Backend
	Latency *chaos.Latency
	Errors  *chaos.Errors
	Flap    *chaos.Flap
}

func (cb *ChaosBackend) Name() string { return cb.Inner.Name() }

func (cb *ChaosBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	if cb.Latency != nil {
		if d := cb.Latency.Delay(s.Set); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return 0, "", err
			}
		}
	}
	if cb.Flap != nil && cb.Flap.Down() {
		return 0, "", fmt.Errorf("chaos: backend %q flapped down", cb.Inner.Name())
	}
	if cb.Errors != nil {
		if err := cb.Errors.Err(s.Set); err != nil {
			return 0, "", err
		}
	}
	return cb.Inner.Serve(ctx, s, r)
}

// sleepCtx sleeps for d or until ctx's deadline, whichever comes first,
// returning ctx.Err() when the deadline cut the sleep short.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BackendState is one backend's health snapshot, for /metrics gauges and
// the /healthz readiness body.
type BackendState struct {
	Name        string
	State       string // "closed", "open", "half-open"
	Gated       bool   // state != closed: out of (full) rotation
	ConsecFails int    // consecutive failures observed while closed
	Opens       uint64 // times the breaker opened
	Denied      uint64 // requests short-circuited by the gate
	// LatencyEWMA is the backend's smoothed service time in milliseconds
	// (zero until its first completed call) — the observability half of
	// latency-aware routing; routing itself still rotates round-robin.
	LatencyEWMA float64
}

// statesProvider is how the server discovers per-backend health without
// caring whether Config.Backend is a Pool: any backend exposing States is
// reported on /metrics and /healthz.
type statesProvider interface {
	States() []BackendState
}

// Pool routes each call to one healthy backend, in the style of an
// upstream keypool: round-robin rotation across backends whose circuit
// breaker admits traffic. One call tries ONE backend — on failure the
// breaker records it and the error returns to the router, whose retry
// ladder re-delegates the request through the key's serialization set, so
// failover between backends never reorders a key's requests. When every
// backend is gated the call fails fast with ErrNoBackend (also retryable:
// cooldowns expire and half-open probes re-admit traffic).
type Pool struct {
	entries []*poolEntry
	next    atomic.Uint64
}

type poolEntry struct {
	b  Backend
	br *breaker
	// latEWMA is the backend's service-time EWMA in microseconds,
	// fixed-point so concurrent Serve returns fold in with plain atomics
	// (α = 1/8; first sample seeds the average). Failures are sampled
	// too: a backend that takes 2s to fail is slow, and the EWMA is a
	// service-time signal, not a success meter.
	latEWMA atomic.Int64
}

// noteLatency folds one observed service time into the entry's EWMA.
func (e *poolEntry) noteLatency(d time.Duration) {
	us := d.Microseconds()
	for {
		old := e.latEWMA.Load()
		next := old + (us-old)/8
		if old == 0 {
			next = us
		}
		if e.latEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// NewPool gates each backend behind its own circuit breaker (threshold
// consecutive failures to open, cooldown before the half-open probe).
// Panics on an empty backend list — a pool with nothing to route to is a
// construction bug.
func NewPool(threshold int, cooldown time.Duration, backends ...Backend) *Pool {
	if len(backends) == 0 {
		panic("serve: NewPool: no backends")
	}
	p := &Pool{entries: make([]*poolEntry, len(backends))}
	for i, b := range backends {
		p.entries[i] = &poolEntry{b: b, br: newBreaker(threshold, cooldown)}
	}
	return p
}

func (p *Pool) Name() string { return "pool" }

// Serve picks the next healthy backend in rotation and runs the request on
// it, reporting the outcome to that backend's breaker.
func (p *Pool) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	now := time.Now()
	n := uint64(len(p.entries))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		e := p.entries[(start+i)%n]
		if !e.br.allow(now) {
			continue
		}
		callStart := time.Now()
		status, body, err := e.b.Serve(ctx, s, r)
		e.noteLatency(time.Since(callStart))
		if err != nil {
			e.br.onFailure(time.Now())
			return 0, "", &BackendError{Backend: e.b.Name(), Err: err}
		}
		e.br.onSuccess()
		return status, body, nil
	}
	return 0, "", ErrNoBackend
}

// States snapshots every backend's breaker for metrics and health
// reporting.
func (p *Pool) States() []BackendState {
	out := make([]BackendState, len(p.entries))
	for i, e := range p.entries {
		st, consec := e.br.snapshot()
		out[i] = BackendState{
			Name:        e.b.Name(),
			State:       breakerStateName(st),
			Gated:       st != breakerClosed,
			ConsecFails: consec,
			Opens:       e.br.opens.Load(),
			Denied:      e.br.denied.Load(),
			LatencyEWMA: float64(e.latEWMA.Load()) / 1000.0,
		}
	}
	return out
}

// GatedCount reports how many backends are currently out of full rotation
// (breaker open or half-open) — the /healthz "degraded" signal.
func (p *Pool) GatedCount() int {
	n := 0
	for _, e := range p.entries {
		if st, _ := e.br.snapshot(); st != breakerClosed {
			n++
		}
	}
	return n
}
