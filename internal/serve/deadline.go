package serve

import (
	"net/http"
	"sync"
	"time"
)

// This file is the time side of the serving tier: per-request deadlines,
// the retry/backoff ladder, and the slow-key watchdog.
//
// # Deadlines
//
// A request's budget is fixed at admission: deadline = arrival +
// Config.RequestTimeout. The deadline is enforced at every point where the
// serving tier — not user code — holds the request:
//
//   - at delivery (the router dequeued it after the budget expired:
//     resolve 504 without delegating),
//   - at the queue front (the delegate reached it after its set's earlier
//     work — a latency spike upstream, a slow epoch-mate — consumed the
//     budget: resolve 504 without running the backend),
//   - inside the backend (ctx carries the deadline; an I/O-bound backend
//     returns a timeout error, which resolves 504 when the budget is gone
//     instead of feeding the retry ladder),
//   - at the epoch sweep (the delegation was dropped on a poison seam and
//     the budget has expired: the post-barrier sweep resolves 504, the
//     "definitive answer, never a parked done-channel" guarantee).
//
// What the deadline cannot do is preempt a non-cooperative in-process
// handler mid-run — Go has no goroutine cancellation — so a handler that
// ignores r.Context() runs to completion and its own request is answered
// late. The requests behind it are protected by queue-front shedding, and
// the key itself is taken out of service by the watchdog below.
//
// # Retries
//
// A backend failure (error return, not a panic) on an idempotent request
// is retried with capped exponential backoff plus deterministic jitter —
// but never inline on the delegate, which would hold the set hostage for
// the backoff duration. Instead the delegate arms a timer and the job
// re-enters the router's jobs channel when it fires: the retry is
// re-delegated through the key's serialization set like a fresh arrival,
// so per-key order is preserved across attempts by the same mechanism
// that ordered the first attempt. The budget bounds the ladder: a retry
// whose backoff would land past the deadline is not armed.
//
// # Slow-key watchdog
//
// Deadlines protect requests; the watchdog protects sets. A key whose
// requests are persistently slow (Config.SlowThreshold exceeded on
// Config.SlowTrips consecutive services) is degraded: subsequent requests
// shed with 503 at delivery instead of queueing behind work that will
// blow their budgets anyway. Degradation is epoch-scoped like poisoning —
// the rotation that heals poisoned keys also gives degraded keys a fresh
// chance — and the shed is counted and exposed so a persistently-degraded
// key is visible to operators.

// retryable reports whether a failed attempt should re-enter the router:
// the request must be idempotent, the attempt budget must remain, and the
// backoff must land inside the request's deadline (otherwise the retry
// would only burn a delegation to discover the 504).
func (s *Server) retryable(j *job, backoff time.Duration) bool {
	if j.attempt >= s.cfg.RetryMax {
		return false
	}
	if !s.cfg.IdempotentFunc(j.r) {
		return false
	}
	if !j.deadline.IsZero() && time.Now().Add(backoff).After(j.deadline) {
		return false
	}
	return true
}

// defaultIdempotent is the default Config.IdempotentFunc: bodyless-safe
// methods are retryable, everything else only when the client marked the
// request idempotent explicitly.
func defaultIdempotent(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return true
	}
	return r.Header.Get("Idempotency-Key") != ""
}

// backoffFor computes the capped exponential backoff for the job's NEXT
// attempt, with deterministic jitter in [0.5x, 1.5x) mixed from the
// request's (set, seq, attempt) coordinate — no global RNG, so a replayed
// chaos profile replays its retry schedule too.
func (s *Server) backoffFor(j *job) time.Duration {
	d := s.cfg.RetryBase << uint(j.attempt)
	if d > s.cfg.RetryCap || d <= 0 { // d <= 0: shift overflow
		d = s.cfg.RetryCap
	}
	h := jitterMix(j.set, uint64(j.attempt)+1)
	// Map the top 10 bits onto [0.5, 1.5).
	frac := 0.5 + float64(h>>54)/1024.0
	return time.Duration(float64(d) * frac)
}

// jitterMix is splitmix64-style avalanching, the same shape the chaos
// injectors use, over the (set, attempt) coordinate.
func jitterMix(set, attempt uint64) uint64 {
	x := set*0x9e3779b97f4a7c15 ^ attempt*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// slowTable tracks per-set service times for the watchdog. Delegates feed
// it after every backend call (observe); the router consults it at
// delivery (degraded) and clears it at every rotation (heal) — the same
// epoch-scoped repair discipline as poisoning. Lock-sharded like the rate
// limiter: delegates for different sets collide only on a shard mutex.
type slowTable struct {
	threshold time.Duration // a service slower than this is one strike
	trips     int           // consecutive strikes that degrade the key
	shards    [slowShards]slowShard
}

const slowShards = 16

type slowShard struct {
	mu sync.Mutex
	m  map[uint64]*slowEntry
}

type slowEntry struct {
	consec   int  // consecutive over-threshold services
	degraded bool // shedding until the next heal
}

func newSlowTable(threshold time.Duration, trips int) *slowTable {
	if trips < 1 {
		trips = 1
	}
	t := &slowTable{threshold: threshold, trips: trips}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*slowEntry)
	}
	return t
}

// observe records one service time for set; called from delegate contexts.
// Returns true when this observation degraded the key.
func (t *slowTable) observe(set uint64, d time.Duration) bool {
	sh := &t.shards[set%slowShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.m[set]
	if d < t.threshold {
		if e != nil {
			e.consec = 0
		}
		return false
	}
	if e == nil {
		e = &slowEntry{}
		sh.m[set] = e
	}
	e.consec++
	if !e.degraded && e.consec >= t.trips {
		e.degraded = true
		return true
	}
	return false
}

// degraded reports whether set is currently shed; called by the router at
// delivery.
func (t *slowTable) degraded(set uint64) bool {
	sh := &t.shards[set%slowShards]
	sh.mu.Lock()
	e := sh.m[set]
	d := e != nil && e.degraded
	sh.mu.Unlock()
	return d
}

// heal clears the table at an epoch rotation: degraded keys get a fresh
// chance (a still-slow key re-trips within the new epoch), and dropping
// the entries outright bounds the table under unbounded key cardinality —
// the same reasoning as the rate limiter's idle-bucket sweep.
func (t *slowTable) heal() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
}

// degradedCount reports how many keys are currently shed, for /healthz and
// the metrics gauge.
func (t *slowTable) degradedCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			if e.degraded {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
