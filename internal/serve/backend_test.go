package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)

	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.onFailure(now)
	}
	if st, consec := b.snapshot(); st != breakerClosed || consec != 2 {
		t.Fatalf("state %s consec %d, want closed/2", breakerStateName(st), consec)
	}
	// A success resets the consecutive count: 2 more failures must not open.
	b.onSuccess()
	b.onFailure(now)
	b.onFailure(now)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("2 failures after a success opened a threshold-3 breaker")
	}
	// The third consecutive failure opens.
	b.onFailure(now)
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("threshold reached but state %s", breakerStateName(st))
	}
	if b.opens.Load() != 1 {
		t.Fatalf("opens = %d, want 1", b.opens.Load())
	}

	// Open: denied until the cooldown elapses.
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted inside the cooldown")
	}
	if b.denied.Load() == 0 {
		t.Fatal("denial not counted")
	}

	// Cooldown over: exactly one probe is admitted.
	later := now.Add(2 * time.Second)
	if !b.allow(later) {
		t.Fatal("half-open transition denied the probe")
	}
	if st, _ := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state %s, want half-open", breakerStateName(st))
	}
	if b.allow(later) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Failed probe: reopen, cooldown restarts.
	b.onFailure(later)
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("failed probe left state %s", breakerStateName(st))
	}
	if b.allow(later.Add(500 * time.Millisecond)) {
		t.Fatal("reopened breaker admitted inside the restarted cooldown")
	}

	// Successful probe: closed, back in rotation.
	evenLater := later.Add(2 * time.Second)
	if !b.allow(evenLater) {
		t.Fatal("second probe denied")
	}
	b.onSuccess()
	if st, consec := b.snapshot(); st != breakerClosed || consec != 0 {
		t.Fatalf("recovered breaker: state %s consec %d, want closed/0", breakerStateName(st), consec)
	}
	if !b.allow(evenLater) || !b.allow(evenLater) {
		t.Fatal("closed breaker limited traffic")
	}
}

// failingBackend fails every call until healed.
type failingBackend struct {
	name   string
	broken bool
	calls  int
}

func (f *failingBackend) Name() string { return f.name }
func (f *failingBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	f.calls++
	if f.broken {
		return 0, "", errors.New("down")
	}
	return http.StatusOK, f.name, nil
}

func TestPoolGatesFailingBackendAndRecovers(t *testing.T) {
	good := &failingBackend{name: "good"}
	bad := &failingBackend{name: "bad", broken: true}
	p := NewPool(3, 50*time.Millisecond, good, bad)

	sess := &Session{Key: "k", Set: 1}
	r := httptest.NewRequest("GET", "/", nil)

	// Drive calls until bad's breaker opens. Each failed call returns a
	// BackendError naming the culprit; successes name good.
	var failures int
	for i := 0; i < 40 && failures < 3; i++ {
		_, body, err := p.Serve(context.Background(), sess, r)
		if err != nil {
			var be *BackendError
			if !errors.As(err, &be) || be.Backend != "bad" {
				t.Fatalf("unexpected error %v", err)
			}
			failures++
		} else if body != "good" {
			t.Fatalf("success from %q", body)
		}
	}
	if failures != 3 {
		t.Fatalf("rotation produced %d failures, want 3", failures)
	}
	states := p.States()
	var badState BackendState
	for _, bs := range states {
		if bs.Name == "bad" {
			badState = bs
		}
	}
	if badState.State != "open" || !badState.Gated {
		t.Fatalf("bad backend state %+v, want open/gated", badState)
	}
	if p.GatedCount() != 1 {
		t.Fatalf("GatedCount = %d, want 1", p.GatedCount())
	}

	// While gated, every call lands on good: no more errors.
	for i := 0; i < 10; i++ {
		if _, _, err := p.Serve(context.Background(), sess, r); err != nil {
			t.Fatalf("call %d failed while bad was gated: %v", i, err)
		}
	}

	// Heal the backend and wait out the cooldown: the half-open probe
	// succeeds and bad returns to rotation.
	bad.broken = false
	time.Sleep(60 * time.Millisecond)
	before := bad.calls
	for i := 0; i < 10; i++ {
		if _, _, err := p.Serve(context.Background(), sess, r); err != nil {
			t.Fatalf("post-heal call failed: %v", err)
		}
	}
	if bad.calls == before {
		t.Fatal("healed backend got no traffic after the cooldown")
	}
	if p.GatedCount() != 0 {
		t.Fatalf("GatedCount = %d after recovery, want 0", p.GatedCount())
	}
}

func TestPoolAllGated(t *testing.T) {
	bad := &failingBackend{name: "only", broken: true}
	p := NewPool(1, time.Hour, bad)
	sess := &Session{Key: "k", Set: 1}
	r := httptest.NewRequest("GET", "/", nil)

	if _, _, err := p.Serve(context.Background(), sess, r); err == nil {
		t.Fatal("first call to a broken backend succeeded")
	}
	_, _, err := p.Serve(context.Background(), sess, r)
	if !errors.Is(err, ErrNoBackend) {
		t.Fatalf("all-gated pool returned %v, want ErrNoBackend", err)
	}
}

func TestChaosBackendInjectors(t *testing.T) {
	inner := NewHandlerBackend("inner", func(s *Session, r *http.Request) (int, string) {
		return http.StatusOK, "ok"
	})
	sess := &Session{Key: "k", Set: 7}
	r := httptest.NewRequest("GET", "/", nil)

	// Error injection surfaces the chaos.Injected value through errors.Is.
	cb := &ChaosBackend{Inner: inner, Errors: chaos.ErrorAt(7, 2)}
	if _, _, err := cb.Serve(context.Background(), sess, r); err != nil {
		t.Fatalf("op 1 failed: %v", err)
	}
	_, _, err := cb.Serve(context.Background(), sess, r)
	if !errors.Is(err, chaos.Injected{Set: 7, N: 2}) {
		t.Fatalf("op 2: %v, want Injected{7,2}", err)
	}

	// A latency spike longer than the remaining budget resolves as the
	// context error, not a full sleep: the deadline cuts it short.
	cb = &ChaosBackend{Inner: inner, Latency: chaos.SpikeEvery(1, time.Hour)}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = cb.Serve(ctx, sess, r)
	if err == nil {
		t.Fatal("deadline-cut spike returned no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("spike slept %v past the deadline", elapsed)
	}

	// Flap window: down for ops [1,3), up after.
	cb = &ChaosBackend{Inner: inner, Flap: chaos.FlapBetween(1, 3)}
	for i := 1; i <= 4; i++ {
		_, _, err := cb.Serve(context.Background(), sess, r)
		if down := i < 3; (err != nil) != down {
			t.Fatalf("flap op %d: err=%v, want down=%v", i, err, down)
		}
	}
}

func TestHTTPBackendProxiesAndClassifies(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/boom":
			w.WriteHeader(http.StatusInternalServerError)
		case "/missing":
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, "nope")
		default:
			fmt.Fprintf(w, "key=%s path=%s q=%s", r.Header.Get("X-Session-Key"), r.URL.Path, r.URL.RawQuery)
		}
	}))
	defer upstream.Close()

	hb, err := NewHTTPBackend("up", upstream.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &Session{Key: "alice", Set: 1}
	r := httptest.NewRequest("GET", "/echo?a=1", nil)

	status, body, err := hb.Serve(context.Background(), sess, r)
	if err != nil || status != http.StatusOK {
		t.Fatalf("proxy: %d %q %v", status, body, err)
	}
	if body != "key=alice path=/echo q=a=1" {
		t.Fatalf("proxied body %q", body)
	}

	// Upstream 4xx is a definitive answer (healthy backend), relayed as-is.
	r4 := httptest.NewRequest("GET", "/missing", nil)
	status, body, err = hb.Serve(context.Background(), sess, r4)
	if err != nil || status != http.StatusNotFound || body != "nope" {
		t.Fatalf("4xx relay: %d %q %v", status, body, err)
	}

	// Upstream 5xx is a backend failure (feeds breaker + retry).
	r5 := httptest.NewRequest("GET", "/boom", nil)
	if _, _, err = hb.Serve(context.Background(), sess, r5); err == nil {
		t.Fatal("5xx not classified as backend failure")
	}

	// Construction-time validation.
	if _, err := NewHTTPBackend("x", "not a url\x7f", nil); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := NewHTTPBackend("x", "/relative", nil); err == nil {
		t.Fatal("schemeless URL accepted")
	}
}

// TestHTTPBackendForwardsBody: the proxy must carry the request body and
// Content-Type upstream, and the body must survive a retry — the second
// Serve call on the same request (how the router re-delegates after a
// backend failure) replays the cached bytes, not a drained reader.
func TestHTTPBackendForwardsBody(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "method=%s ct=%s body=%s", r.Method, r.Header.Get("Content-Type"), b)
	}))
	defer upstream.Close()

	hb, err := NewHTTPBackend("up", upstream.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &Session{Key: "alice", Set: 1}
	r := httptest.NewRequest("POST", "/submit", strings.NewReader(`{"n":1}`))
	r.Header.Set("Content-Type", "application/json")

	want := `method=POST ct=application/json body={"n":1}`
	for attempt := 1; attempt <= 2; attempt++ {
		status, body, err := hb.Serve(context.Background(), sess, r)
		if err != nil || status != http.StatusOK {
			t.Fatalf("attempt %d: %d %q %v", attempt, status, body, err)
		}
		if body != want {
			t.Fatalf("attempt %d echoed %q, want %q", attempt, body, want)
		}
	}

	// A bodyless GET still forwards none.
	g := httptest.NewRequest("GET", "/submit", nil)
	status, body, err := hb.Serve(context.Background(), sess, g)
	if err != nil || status != http.StatusOK || !strings.Contains(body, "body=") {
		t.Fatalf("GET: %d %q %v", status, body, err)
	}
	if !strings.HasSuffix(body, "body=") {
		t.Fatalf("bodyless GET forwarded a body: %q", body)
	}
}

// TestHTTPBackendBodyCapEnforced: a body over maxProxyBody is refused with
// a definitive 413 (nil error — no breaker feed, no retry) and the
// upstream is never contacted.
func TestHTTPBackendBodyCapEnforced(t *testing.T) {
	var hits atomic.Int64
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer upstream.Close()

	hb, err := NewHTTPBackend("up", upstream.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &Session{Key: "k", Set: 1}
	big := strings.NewReader(strings.Repeat("x", maxProxyBody+1))
	r := httptest.NewRequest("POST", "/submit", big)

	status, _, err := hb.Serve(context.Background(), sess, r)
	if err != nil {
		t.Fatalf("over-cap body classified as backend failure: %v", err)
	}
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", status)
	}
	if hits.Load() != 0 {
		t.Fatalf("upstream contacted %d times for an over-cap body", hits.Load())
	}

	// Exactly at the cap is fine.
	ok := httptest.NewRequest("POST", "/submit", strings.NewReader(strings.Repeat("x", maxProxyBody)))
	status, _, err = hb.Serve(context.Background(), sess, ok)
	if err != nil || status != http.StatusOK {
		t.Fatalf("at-cap body: %d %v", status, err)
	}
}

// signalingFailBackend fails every call and signals each attempt, so a
// test can synchronize with the retry ladder.
type signalingFailBackend struct {
	attempts chan struct{}
}

func (f *signalingFailBackend) Name() string { return "always-down" }
func (f *signalingFailBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	select {
	case f.attempts <- struct{}{}:
	default:
	}
	return 0, "", errors.New("down")
}

// TestDrainWithArmedRetry: a retry armed via time.AfterFunc owns its job
// while the timer runs — not finished, not in flight. Drain must keep the
// router consuming until the timer re-delivers and the ladder exhausts:
// the request resolves (502), Drain returns nil, and the late timer send
// lands in a channel that is still open (the jobs channel is never
// closed). A drain that raced the timer would either panic on a closed
// channel or report an unanswered request; this pins that neither happens.
func TestDrainWithArmedRetry(t *testing.T) {
	fb := &signalingFailBackend{attempts: make(chan struct{}, 16)}
	s := newTestServer(t, Config{
		Backend:       fb,
		RetryMax:      3,
		RetryBase:     40 * time.Millisecond,
		EpochInterval: 20 * time.Millisecond,
	})
	h := s.Handler()

	type resp struct {
		code int
		body string
	}
	done := make(chan resp, 1)
	go func() {
		r := httptest.NewRequest("GET", "/", nil)
		r.Header.Set("X-Session-Key", "k")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		done <- resp{w.Code, w.Body.String()}
	}()

	// First attempt has failed; the retry timer is armed (or about to be)
	// while we start the drain.
	<-fb.attempts
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain with an armed retry: %v", err)
	}
	r := <-done
	if r.code != http.StatusBadGateway {
		t.Fatalf("retried request resolved %d %q, want 502", r.code, r.body)
	}
	if !strings.Contains(r.body, "4 attempt(s)") {
		t.Fatalf("body %q: the full retry ladder did not run across the drain", r.body)
	}
}

// countingBackend answers 200 and counts calls atomically.
type countingBackend struct {
	name  string
	calls atomic.Int64
}

func (c *countingBackend) Name() string { return c.name }
func (c *countingBackend) Serve(ctx context.Context, s *Session, r *http.Request) (int, string, error) {
	c.calls.Add(1)
	return http.StatusOK, c.name, nil
}

// TestPoolRoundRobinFairness: with every breaker closed, rotation is
// driven by an atomic counter, so N concurrent calls across 3 backends
// split exactly N/3 each — no backend is hot-spotted by racing clients.
func TestPoolRoundRobinFairness(t *testing.T) {
	bs := []*countingBackend{{name: "b0"}, {name: "b1"}, {name: "b2"}}
	p := NewPool(3, time.Second, bs[0], bs[1], bs[2])
	sess := &Session{Key: "k", Set: 1}
	r := httptest.NewRequest("GET", "/", nil)

	const total = 300
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := p.Serve(context.Background(), sess, r); err != nil {
				t.Errorf("Serve: %v", err)
			}
		}()
	}
	wg.Wait()
	for _, b := range bs {
		if n := b.calls.Load(); n != total/3 {
			t.Errorf("backend %s served %d, want %d", b.name, n, total/3)
		}
	}
}

// TestBreakerHalfOpenSingleProbe: when the cooldown expires, concurrent
// callers race for the half-open probe slot and exactly one may win —
// two winners would double-probe a backend that earned a gentle restart.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second)
	if !b.allow(now) {
		t.Fatal("closed breaker denied")
	}
	b.onFailure(now) // threshold 1: open

	later := now.Add(2 * time.Second)
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.allow(later) {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d callers won the half-open probe slot, want exactly 1", wins.Load())
	}
}

// TestHealthzDegradationReport: the /healthz body must expose the three
// degradation gauges an orchestrator keys off — poisoned keys, gated
// backends, watchdog-degraded keys — on both the 200 and the 503.
func TestHealthzDegradationReport(t *testing.T) {
	bad := &failingBackend{name: "bad", broken: true}
	good := NewHandlerBackend("good", testHandler)
	s := newTestServer(t, Config{
		Backend:       NewPool(1, time.Hour, good, bad),
		EpochInterval: time.Hour, // no rotation: poison and gating persist for the test
	})
	defer s.Drain()
	h := s.Handler()

	code, body := get(t, h, "/healthz", "k", nil)
	if code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("healthy healthz: %d %q", code, body)
	}
	if !strings.Contains(body, "poisoned_keys 0") || !strings.Contains(body, "gated_backends 0") {
		t.Fatalf("healthz body %q missing zeroed gauges", body)
	}

	// Gate the bad backend (threshold 1: one failure opens it). Requests
	// keep succeeding via the good backend.
	for i := 0; i < 4; i++ {
		get(t, h, "/", "k", nil)
	}
	_, body = get(t, h, "/healthz", "k", nil)
	if !strings.Contains(body, "gated_backends 1") {
		t.Fatalf("healthz body %q does not report the gated backend", body)
	}

	// Poison a key: a panicking handler poisons its set for the epoch.
	if code, _ := get(t, h, "/", "victim", map[string]string{"X-Boom": "1"}); code != http.StatusInternalServerError {
		t.Fatalf("panic request status %d, want 500", code)
	}
	_, body = get(t, h, "/healthz", "k", nil)
	if !strings.Contains(body, "poisoned_keys 1") {
		t.Fatalf("healthz body %q does not report the poisoned key", body)
	}
}
