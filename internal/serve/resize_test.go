package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Elastic serving-tier tests: the manual /admin/resize endpoint, the
// rotation-driven autoscaler scaling up under a burst and back down when
// it passes, and the acceptance invariant — zero failed or reordered
// requests while the pool moves under live traffic.

// waitActive polls the runtime's active-delegate count until it reaches
// want or the deadline passes.
func waitActive(t *testing.T, s *Server, want int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if s.rt.ActiveDelegates() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("ActiveDelegates = %d, want %d within %v", s.rt.ActiveDelegates(), want, deadline)
}

func postResize(h http.Handler, target string) (int, string) {
	r := httptest.NewRequest("POST", "/admin/resize?n="+target, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.String()
}

func TestManualResizeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{
		EpochInterval: 5 * time.Millisecond,
		Delegates:     2,
		MaxDelegates:  4,
	})
	defer s.Drain()
	h := s.Handler()

	if code, _ := postResize(h, "4"); code != http.StatusAccepted {
		t.Fatalf("resize to 4: status %d, want 202", code)
	}
	waitActive(t, s, 4, 2*time.Second)

	// Traffic must keep its per-key order across the shrink back down.
	if code, _ := postResize(h, "1"); code != http.StatusAccepted {
		t.Fatalf("resize to 1: status %d, want 202", code)
	}
	last := 0
	for i := 0; i < 50; i++ {
		code, body := get(t, h, "/bump", "resize-key", nil)
		if code != http.StatusOK {
			t.Fatalf("request %d during shrink: status %d body %q", i, code, body)
		}
		seq := 0
		fmt.Sscanf(body, "%d", &seq)
		if seq != last+1 {
			t.Fatalf("request %d: sequence went %d -> %d across resize", i, last, seq)
		}
		last = seq
		time.Sleep(time.Millisecond)
	}
	waitActive(t, s, 1, 2*time.Second)

	// The exposition must track the pool and count the resizes.
	_, body := get(t, h, "/metrics", "m", nil)
	if !strings.Contains(body, "ss_delegates 1") {
		t.Error("metrics missing ss_delegates 1 after shrink")
	}
	if !strings.Contains(body, "ss_resize_total 2") {
		t.Error("metrics missing ss_resize_total 2 after two manual resizes")
	}
}

func TestResizeEndpointValidation(t *testing.T) {
	s := newTestServer(t, Config{
		EpochInterval: 50 * time.Millisecond,
		Delegates:     2,
		MaxDelegates:  4,
	})
	defer s.Drain()
	h := s.Handler()

	r := httptest.NewRequest("GET", "/admin/resize?n=3", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET resize: status %d, want 405", w.Code)
	}
	if code, _ := postResize(h, "0"); code != http.StatusUnprocessableEntity {
		t.Errorf("resize to 0: status %d, want 422", code)
	}
	if code, _ := postResize(h, "9"); code != http.StatusUnprocessableEntity {
		t.Errorf("resize beyond capacity: status %d, want 422", code)
	}
	if code, _ := postResize(h, "x"); code != http.StatusBadRequest {
		t.Errorf("non-integer target: status %d, want 400", code)
	}
}

func TestResizeEndpointFixedPool(t *testing.T) {
	s := newTestServer(t, Config{EpochInterval: 50 * time.Millisecond, Delegates: 2})
	defer s.Drain()
	if code, body := postResize(s.Handler(), "3"); code != http.StatusConflict {
		t.Errorf("fixed-pool resize: status %d body %q, want 409", code, body)
	}
}

// TestAutoscaleUpAndDown is the acceptance drill: phase-shifted load
// (burst, then quiet) against an autoscaled pool. The burst's backlog must
// scale the pool up; the quiet phase must scale it back to the floor; and
// every request across both phases must succeed with per-key sequences
// intact.
func TestAutoscaleUpAndDown(t *testing.T) {
	s := newTestServer(t, Config{
		EpochInterval:     5 * time.Millisecond,
		Delegates:         1,
		MinDelegates:      1,
		MaxDelegates:      4,
		Autoscale:         true,
		AutoscaleCooldown: 1,
		Handler: func(sess *Session, r *http.Request) (int, string) {
			time.Sleep(2 * time.Millisecond) // slow enough to queue under the burst
			return http.StatusOK, fmt.Sprintf("%d", sess.Seq)
		},
	})
	defer s.Drain()
	h := s.Handler()

	// Burst phase: many concurrent keys pile more backlog than one
	// delegate drains between rotations.
	const clients = 12
	const perClient = 60
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := fmt.Sprintf("burst-%d", c)
			last := 0
			for i := 0; i < perClient; i++ {
				code, body := get(t, h, "/work", key, nil)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("key %s: status %d body %q", key, code, body)
					return
				}
				seq := 0
				fmt.Sscanf(body, "%d", &seq)
				if seq != last+1 {
					errs <- fmt.Sprintf("key %s: sequence %d -> %d", key, last, seq)
					return
				}
				last = seq
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	scaledTo := s.rt.ActiveDelegates()
	st := s.Stats()
	if st.Resizes == 0 {
		t.Fatalf("burst phase applied no resizes (active %d)", scaledTo)
	}
	if scaledTo < 2 {
		// The burst has ended, so the pool may already be shrinking; the
		// resize counter above proves scaling happened. Log for context.
		t.Logf("pool already shrinking at burst end (active %d, %d resizes)", scaledTo, st.Resizes)
	}

	// Quiet phase: the occupancy EWMA decays to zero and the pool must
	// walk back down to the floor.
	waitActive(t, s, 1, 3*time.Second)
	if down := s.Stats(); down.Resizes <= st.Resizes && scaledTo > 1 {
		t.Errorf("quiet phase applied no further resizes (total %d)", down.Resizes)
	}
}
