package serve

import (
	"sync"
	"time"
)

// limiter is the per-set token-bucket rate limiter: each serialization
// set (request key) owns an independent bucket, so one hot key exhausts
// its own budget without starving siblings — the rate-limit analogue of
// the router's per-key serialization. Buckets refill lazily on access
// (no background goroutine) and live in a lock-sharded map: the request
// path takes exactly one shard mutex, and keys only collide on a shard
// lock, never on a bucket.
//
// Bucket lifetime is bounded by the idle sweep: a long-lived server sees
// unbounded key cardinality (session ids churn forever), and a map that
// only grows is a slow memory leak. The router calls sweep at every epoch
// rotation; a bucket idle long enough to have refilled to capacity is
// indistinguishable from a fresh one — a new key starts with a full
// bucket — so evicting exactly those buckets is semantically free: no
// request is admitted or rejected differently than if the bucket had been
// kept.
type limiter struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	shards [limiterShards]limiterShard
}

const limiterShards = 16

type limiterShard struct {
	mu      sync.Mutex
	buckets map[uint64]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	if burst < 1 {
		burst = 1
	}
	l := &limiter{rate: rate, burst: burst}
	for i := range l.shards {
		l.shards[i].buckets = make(map[uint64]*bucket)
	}
	return l
}

// allow consumes one token from set's bucket, reporting whether the
// request may proceed. A new key starts with a full bucket.
func (l *limiter) allow(set uint64) bool {
	sh := &l.shards[set%limiterShards]
	now := time.Now()
	sh.mu.Lock()
	b := sh.buckets[set]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		sh.buckets[set] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	sh.mu.Unlock()
	return ok
}

// sweep evicts every bucket that has been idle long enough to refill to
// capacity — (now - last) * rate >= burst — and returns the eviction
// count. Recreating such a bucket on the key's next request yields the
// exact same admission decisions as having kept it, so the sweep changes
// no rate-limiting behavior; it only bounds the map under unbounded key
// cardinality. Called by the router at epoch rotations: O(live buckets),
// off the request path, one shard locked at a time.
func (l *limiter) sweep(now time.Time) int {
	evicted := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for set, b := range sh.buckets {
			if now.Sub(b.last).Seconds()*l.rate >= l.burst {
				delete(sh.buckets, set)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// size reports the live bucket count across all shards (the /metrics
// gauge proving the sweep bounds the map).
func (l *limiter) size() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}
