package serve

import (
	"sync"
	"time"
)

// limiter is the per-set token-bucket rate limiter: each serialization
// set (request key) owns an independent bucket, so one hot key exhausts
// its own budget without starving siblings — the rate-limit analogue of
// the router's per-key serialization. Buckets refill lazily on access
// (no background goroutine) and live in a lock-sharded map: the request
// path takes exactly one shard mutex, and keys only collide on a shard
// lock, never on a bucket.
type limiter struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	shards [limiterShards]limiterShard
}

const limiterShards = 16

type limiterShard struct {
	mu      sync.Mutex
	buckets map[uint64]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	if burst < 1 {
		burst = 1
	}
	l := &limiter{rate: rate, burst: burst}
	for i := range l.shards {
		l.shards[i].buckets = make(map[uint64]*bucket)
	}
	return l
}

// allow consumes one token from set's bucket, reporting whether the
// request may proceed. A new key starts with a full bucket.
func (l *limiter) allow(set uint64) bool {
	sh := &l.shards[set%limiterShards]
	now := time.Now()
	sh.mu.Lock()
	b := sh.buckets[set]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		sh.buckets[set] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	sh.mu.Unlock()
	return ok
}
