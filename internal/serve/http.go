package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	prometheus "repro"
)

// Handler returns the server's HTTP surface: every path serves requests
// through the session-affinity router except /metrics (Prometheus text
// exposition), /healthz (503 while draining, 200 otherwise), and
// /admin/resize (manual pool resize).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/resize", s.handleResize)
	mux.Handle("/", s)
	return mux
}

// handleResize accepts POST /admin/resize?n=<target>: the target is
// validated against the pool capacity, recorded for the router, and
// applied at the next epoch rotation — 202, not 200, because the resize is
// deferred to the runtime's quiescent point by design. A manual target
// wins over the autoscaler's next decision and resets its cooldown;
// repeated posts before a rotation follow last-write-wins, matching the
// engine's own Reconfigure semantics.
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.MaxDelegates <= 0 {
		http.Error(w, "pool is fixed-size: start with Config.MaxDelegates to enable resizing",
			http.StatusConflict)
		return
	}
	n, err := strconv.Atoi(r.FormValue("n"))
	if err != nil {
		http.Error(w, "query parameter n must be an integer", http.StatusBadRequest)
		return
	}
	if n < 1 || n > s.cfg.MaxDelegates {
		http.Error(w, fmt.Sprintf("target %d outside pool bounds [1, %d]", n, s.cfg.MaxDelegates),
			http.StatusUnprocessableEntity)
		return
	}
	s.resizeTarget.Store(int64(n))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "resize to %d delegates accepted; applies at the next epoch rotation (active %d)\n",
		n, s.rt.ActiveDelegates())
}

// handleHealthz reports readiness plus the degradation detail an
// orchestrator needs to distinguish "draining" (remove from rotation,
// instance is going away) from "degraded" (keep routing, but some keys or
// backends are impaired): the currently-poisoned key count, the
// gated-backend count, and the watchdog-degraded key count, all in the
// body of both the 200 and the 503.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	gated := 0
	if sp, ok := s.cfg.Backend.(statesProvider); ok {
		for _, bs := range sp.States() {
			if bs.Gated {
				gated++
			}
		}
	}
	degraded := 0
	if s.slow != nil {
		degraded = s.slow.degradedCount()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s\npoisoned_keys %d\ngated_backends %d\ndegraded_keys %d\n",
		state, s.rt.PoisonedCount(), gated, degraded)
	if s.store != nil {
		// Durability detail: what the last startup rebuilt (and had to
		// discard), so an operator — or the crash-restart harness — can
		// tell a clean recovery from a truncated one without scraping.
		fmt.Fprintf(w, "recovered_sessions %d\njournal_truncated_records %d\n",
			s.recovered.sessions, s.recovered.truncatedRecords)
	}
}

// ServeHTTP is the request path: admission gates on the handler
// goroutine (cheap rejects that never touch the router), then one bounded
// channel send and one channel wait. The gates run in rejection-cost
// order — inflight budget, token bucket, poison check — so overload is
// repelled before per-key state is consulted.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Admission handshake: raise inflight BEFORE loading the draining
	// flag, mirroring drainRouter's store-then-wait (see its comment for
	// the ordering argument). Every exit path decrements.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.inflight.Load() > int64(s.cfg.MaxInflight) {
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "over capacity", http.StatusServiceUnavailable)
		return
	}

	key := s.cfg.KeyFunc(r)
	set := prometheus.StringSet(key)

	if s.limiter != nil && !s.limiter.allow(set) {
		s.metrics.rateRejects.Add(1)
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}

	if s.rt.Poisoned(set) {
		// Fast path: the key faulted earlier this epoch. Fail with the
		// fault attached, without a round trip through the router.
		s.metrics.poisonRejects.Add(1)
		s.failPoisoned(w, key, set)
		return
	}

	j := &job{key: key, set: set, r: r, done: make(chan struct{}), start: time.Now()}
	if s.cfg.RequestTimeout > 0 {
		// The request's budget is fixed here, at admission: every queue it
		// waits in, every backend attempt, and every retry backoff spends
		// from this one allowance.
		j.deadline = j.start.Add(s.cfg.RequestTimeout)
	}
	s.metrics.depth.Observe(int64(len(s.jobs)))
	select {
	case s.jobs <- j:
	default:
		// Backpressure: the router is behind (or parked on a rotation
		// barrier). Reject rather than buffer without bound.
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	<-j.done

	lat := time.Since(j.start)
	s.metrics.observe(set, lat)
	switch j.outcome.Load() {
	case outcomeServed:
		s.metrics.served.Add(1)
		w.WriteHeader(j.status)
		fmt.Fprint(w, j.body)
	case outcomeFaulted:
		// This request's own operation panicked. The engine records the
		// fault just after our deferred finish ran, so give the record a
		// moment to land before attaching it.
		s.metrics.faultResponses.Add(1)
		s.failFaulted(w, key, set)
	case outcomeExpired:
		// The request's budget ran out before a backend could answer — at
		// delivery, at the queue front behind slower epoch-mates, inside a
		// deadline-honoring backend, or at the epoch sweep. Definitive by
		// construction: the winner of the outcome CAS proved no backend
		// answer is coming.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusGatewayTimeout)
		fmt.Fprintf(w, "request for key %q exceeded its %v budget\n", key, s.cfg.RequestTimeout)
	case outcomeShed:
		// The slow-key watchdog degraded this key: shedding beats queueing
		// a request behind work that would blow its budget anyway.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "key %q degraded: persistently slow; shed until the next epoch rotation\n", key)
	default: // outcomeDropped
		// The key was poisoned before this request's operation could run;
		// the operation was deterministically dropped (router fast path or
		// engine seam + epoch sweep).
		s.metrics.faultResponses.Add(1)
		s.failPoisoned(w, key, set)
	}
}

// failPoisoned writes the 500 for a request rejected or dropped because
// its key's set is poisoned, attaching the fault that poisoned it.
func (s *Server) failPoisoned(w http.ResponseWriter, key string, set uint64) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "key %q is poisoned for the current epoch; request dropped\n", key)
	if err := s.rt.SetErr(set); err != nil {
		fmt.Fprintf(w, "fault: %v\n", err)
	}
}

// failFaulted writes the 500 for the request whose own operation
// panicked. The fault record is written by the engine's containment
// handler, which runs AFTER the job's deferred finish woke this
// goroutine — a bounded wait bridges that gap so the response carries the
// fault detail instead of racing it.
func (s *Server) failFaulted(w http.ResponseWriter, key string, set uint64) {
	var err error
	for i := 0; i < 100; i++ {
		if err = s.rt.SetErr(set); err != nil {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "request for key %q panicked; key poisoned for the current epoch\n", key)
	if err != nil {
		fmt.Fprintf(w, "fault: %v\n", err)
	}
}
