package serve

import (
	"fmt"
	"net/http"
	"time"

	prometheus "repro"
)

// Handler returns the server's HTTP surface: every path serves requests
// through the session-affinity router except /metrics (Prometheus text
// exposition) and /healthz (503 while draining, 200 otherwise).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/", s)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ServeHTTP is the request path: admission gates on the handler
// goroutine (cheap rejects that never touch the router), then one bounded
// channel send and one channel wait. The gates run in rejection-cost
// order — inflight budget, token bucket, poison check — so overload is
// repelled before per-key state is consulted.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Admission handshake: raise inflight BEFORE loading the draining
	// flag, mirroring drainRouter's store-then-wait (see its comment for
	// the ordering argument). Every exit path decrements.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.inflight.Load() > int64(s.cfg.MaxInflight) {
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "over capacity", http.StatusServiceUnavailable)
		return
	}

	key := s.cfg.KeyFunc(r)
	set := prometheus.StringSet(key)

	if s.limiter != nil && !s.limiter.allow(set) {
		s.metrics.rateRejects.Add(1)
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}

	if s.rt.Poisoned(set) {
		// Fast path: the key faulted earlier this epoch. Fail with the
		// fault attached, without a round trip through the router.
		s.metrics.poisonRejects.Add(1)
		s.failPoisoned(w, key, set)
		return
	}

	j := &job{key: key, set: set, r: r, done: make(chan struct{}), start: time.Now()}
	s.metrics.depth.Observe(int64(len(s.jobs)))
	select {
	case s.jobs <- j:
	default:
		// Backpressure: the router is behind (or parked on a rotation
		// barrier). Reject rather than buffer without bound.
		s.metrics.admissionRejects.Add(1)
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	<-j.done

	lat := time.Since(j.start)
	s.metrics.observe(set, lat)
	switch j.outcome.Load() {
	case outcomeServed:
		s.metrics.served.Add(1)
		w.WriteHeader(j.status)
		fmt.Fprint(w, j.body)
	case outcomeFaulted:
		// This request's own operation panicked. The engine records the
		// fault just after our deferred finish ran, so give the record a
		// moment to land before attaching it.
		s.metrics.faultResponses.Add(1)
		s.failFaulted(w, key, set)
	default: // outcomeDropped
		// The key was poisoned before this request's operation could run;
		// the operation was deterministically dropped (router fast path or
		// engine seam + epoch sweep).
		s.metrics.faultResponses.Add(1)
		s.failPoisoned(w, key, set)
	}
}

// failPoisoned writes the 500 for a request rejected or dropped because
// its key's set is poisoned, attaching the fault that poisoned it.
func (s *Server) failPoisoned(w http.ResponseWriter, key string, set uint64) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "key %q is poisoned for the current epoch; request dropped\n", key)
	if err := s.rt.SetErr(set); err != nil {
		fmt.Fprintf(w, "fault: %v\n", err)
	}
}

// failFaulted writes the 500 for the request whose own operation
// panicked. The fault record is written by the engine's containment
// handler, which runs AFTER the job's deferred finish woke this
// goroutine — a bounded wait bridges that gap so the response carries the
// fault detail instead of racing it.
func (s *Server) failFaulted(w http.ResponseWriter, key string, set uint64) {
	var err error
	for i := 0; i < 100; i++ {
		if err = s.rt.SetErr(set); err != nil {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "request for key %q panicked; key poisoned for the current epoch\n", key)
	if err != nil {
		fmt.Fprintf(w, "fault: %v\n", err)
	}
}
