package serve

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/durable"
)

// durableCfg is the common durable-session test shape: in-memory storage
// so "process death" is dropping the Server, a long epoch so rotations
// happen only when a test asks for them.
func durableCfg(fs durable.FS, fsync durable.FsyncPolicy) Config {
	return Config{
		StateFS:       fs,
		Fsync:         fsync,
		EpochInterval: time.Hour,
	}
}

// bump drives the seq-returning test handler once and parses nothing: the
// body IS the post-increment sequence number.
func bump(t *testing.T, h http.Handler, key string) string {
	t.Helper()
	code, body := get(t, h, "/bump", key, nil)
	if code != http.StatusOK {
		t.Fatalf("key %s: status %d body %q", key, code, body)
	}
	return body
}

func TestDurableRecoveryAfterDrain(t *testing.T) {
	fs := durable.NewMemFS()

	s1 := newTestServer(t, durableCfg(fs, durable.FsyncOff))
	h1 := s1.Handler()
	for i := 0; i < 5; i++ {
		bump(t, h1, "alice")
	}
	for i := 0; i < 3; i++ {
		bump(t, h1, "bob")
	}
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}

	// A clean drain is lossless under EVERY fsync policy (final synchronous
	// snapshot), including off.
	s2 := newTestServer(t, durableCfg(fs, durable.FsyncOff))
	defer s2.Drain()
	h2 := s2.Handler()
	if got := bump(t, h2, "alice"); got != "6" {
		t.Fatalf("alice after restart: seq %s, want 6", got)
	}
	if got := bump(t, h2, "bob"); got != "4" {
		t.Fatalf("bob after restart: seq %s, want 4", got)
	}
	if s2.recovered.sessions != 2 {
		t.Fatalf("recovered %d sessions, want 2", s2.recovered.sessions)
	}

	// The recovery surface: /healthz carries the rebuilt counts.
	code, body := get(t, h2, "/healthz", "x", nil)
	if code != http.StatusOK || !strings.Contains(body, "recovered_sessions 2") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if !strings.Contains(body, "journal_truncated_records 0") {
		t.Fatalf("healthz = %q", body)
	}
}

func TestDurableRecoveryRestoresSessionData(t *testing.T) {
	fs := durable.NewMemFS()
	kv := func(s *Session, r *http.Request) (int, string) {
		if v := r.URL.Query().Get("set"); v != "" {
			s.Data["v"] = v
		}
		return http.StatusOK, s.Data["v"]
	}

	s1 := newTestServer(t, Config{StateFS: fs, Fsync: durable.FsyncAlways, EpochInterval: time.Hour, Handler: kv})
	if _, body := get(t, s1.Handler(), "/kv?set=hello", "k", nil); body != "hello" {
		t.Fatalf("put: %q", body)
	}
	s1.kill() // journaled under always: durable without drain or rotation

	s2 := newTestServer(t, Config{StateFS: fs, Fsync: durable.FsyncAlways, EpochInterval: time.Hour, Handler: kv})
	defer s2.Drain()
	if _, body := get(t, s2.Handler(), "/kv", "k", nil); body != "hello" {
		t.Fatalf("KV state lost across kill: got %q, want %q", body, "hello")
	}
}

func TestFsyncAlwaysSurvivesKill(t *testing.T) {
	fs := durable.NewMemFS()
	s1 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	h1 := s1.Handler()
	for i := 0; i < 7; i++ {
		bump(t, h1, "alice")
	}
	s1.kill() // no drain, no rotation ever ran: only the journal has the state

	s2 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	defer s2.Drain()
	if got := bump(t, s2.Handler(), "alice"); got != "8" {
		t.Fatalf("acked loss under fsync=always: next seq %s, want 8", got)
	}
}

func TestFsyncOffLosesBufferedRecordsOnKill(t *testing.T) {
	fs := durable.NewMemFS()
	s1 := newTestServer(t, durableCfg(fs, durable.FsyncOff))
	h1 := s1.Handler()
	for i := 0; i < 7; i++ {
		bump(t, h1, "alice")
	}
	s1.kill() // the 7 records sit in the journal's user-space buffer: gone

	s2 := newTestServer(t, durableCfg(fs, durable.FsyncOff))
	defer s2.Drain()
	if got := bump(t, s2.Handler(), "alice"); got != "1" {
		t.Fatalf("fsync=off after kill: next seq %s, want 1 (buffered records are the documented loss)", got)
	}
}

func TestFsyncRotationBoundsLossToOneEpoch(t *testing.T) {
	fs := durable.NewMemFS()
	cfg := durableCfg(fs, durable.FsyncRotation)
	cfg.EpochInterval = 20 * time.Millisecond
	s1 := newTestServer(t, cfg)
	h1 := s1.Handler()
	for i := 0; i < 5; i++ {
		bump(t, h1, "alice")
	}
	// Let at least one rotation capture + sync the journal, then a final
	// burst that may or may not survive the kill.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		bump(t, h1, "alice")
	}
	s1.kill()

	s2 := newTestServer(t, durableCfg(fs, durable.FsyncRotation))
	defer s2.Drain()
	got := bump(t, s2.Handler(), "alice")
	// The bound: everything synced at the last rotation (seq >= 5) is
	// recovered; the post-rotation burst is at-most-one-epoch loss.
	if got != "6" && got != "7" && got != "8" && got != "9" {
		t.Fatalf("fsync=rotation after kill: next seq %s, want >= 6 (pre-rotation records are durable)", got)
	}
}

func TestSnapshotFailureDegradesGracefully(t *testing.T) {
	inner := durable.NewMemFS()
	// The boot snapshot is one write (op 1); everything after fails —
	// storage went bad while serving.
	ffs := chaos.WrapFS(inner, chaos.ErrorsAfter(1))

	cfg := Config{
		StateFS:       ffs,
		NoJournal:     true, // snapshot-only: every FS write is a commit
		EpochInterval: 15 * time.Millisecond,
	}
	s := newTestServer(t, cfg)
	h := s.Handler()

	bootGen := s.snapGen
	for i := 1; i <= 20; i++ {
		if got := bump(t, h, "alice"); got != strconv.Itoa(i) {
			t.Fatalf("request %d: seq %s — serving degraded by snapshot failures", i, got)
		}
		time.Sleep(5 * time.Millisecond) // spans several rotations
	}

	// The failures were counted and surfaced.
	_, metrics := get(t, h, "/metrics", "x", nil)
	if !strings.Contains(metrics, "ss_snapshot_failures_total") {
		t.Fatalf("metrics missing snapshot failure counter:\n%.400s", metrics)
	}
	if s.metrics.snapshotFailures.Load() == 0 {
		t.Fatal("no snapshot failures counted despite a failing store")
	}

	// The degradation contract: the boot generation is still the valid
	// recovery point — a failed commit never regressed it.
	rec, err := durable.NewStore(inner).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fresh || rec.SnapshotGen != bootGen {
		t.Fatalf("recovery point regressed: %+v (boot gen %d)", rec, bootGen)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestTornJournalTailTruncatedAtBoot(t *testing.T) {
	fs := durable.NewMemFS()
	s1 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	h1 := s1.Handler()
	for i := 0; i < 4; i++ {
		bump(t, h1, "alice")
	}
	gen := s1.snapGen
	s1.kill()

	// Corrupt the journal's LAST record in place — the on-disk shape of a
	// crash mid-append.
	walLen := fs.Len(durable.JournalName(gen))
	fs.Corrupt(durable.JournalName(gen), walLen-1)

	s2 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	defer s2.Drain()
	if s2.recovered.truncatedRecords != 1 {
		t.Fatalf("truncated %d records, want 1", s2.recovered.truncatedRecords)
	}
	// Bounded loss, not a crash loop: the valid prefix (seqs 1..3) is the
	// recovered state, so the next sequence is 4.
	if got := bump(t, s2.Handler(), "alice"); got != "4" {
		t.Fatalf("after torn-tail truncation: next seq %s, want 4", got)
	}
	_, body := get(t, s2.Handler(), "/healthz", "x", nil)
	if !strings.Contains(body, "journal_truncated_records 1") {
		t.Fatalf("healthz = %q", body)
	}
}

func TestDurableIdleWritesNothing(t *testing.T) {
	fs := durable.NewMemFS()
	cfg := durableCfg(fs, durable.FsyncRotation)
	cfg.EpochInterval = 10 * time.Millisecond
	s := newTestServer(t, cfg)
	time.Sleep(80 * time.Millisecond) // many rotations, zero requests
	if n := s.metrics.snapshots.Load(); n != 0 {
		t.Fatalf("idle server committed %d snapshots (dirty tracking broken)", n)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestBootJournalSkipsTornPredecessor pins the boot-generation rule: the
// boot journal opens strictly ABOVE every generation on disk, journals
// included. A crash between a rotation's journal swap and its snapshot
// commit leaves wal-(SnapshotGen+1) behind — possibly torn mid-frame —
// and a boot that reused that generation would append new acked records
// behind the tear, where replay can never reach them.
func TestBootJournalSkipsTornPredecessor(t *testing.T) {
	fs := durable.NewMemFS()
	st := durable.NewStore(fs)
	// Pre-crash disk: snapshot 1 committed; wal-2 swapped in by a rotation
	// that died before snapshot 2 — its only content is a torn frame.
	if _, err := st.CommitSnapshot(1, nil); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Append(durable.JournalName(2))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Close()

	s1 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	if s1.snapGen != 3 {
		t.Fatalf("boot generation %d, want 3 (above the orphaned wal-2)", s1.snapGen)
	}
	h1 := s1.Handler()
	bump(t, h1, "alice") // acked under fsync=always: must survive the kill
	s1.kill()

	s2 := newTestServer(t, durableCfg(fs, durable.FsyncAlways))
	defer s2.Drain()
	if got := bump(t, s2.Handler(), "alice"); got != "2" {
		t.Fatalf("acked record stranded behind a torn predecessor journal: next seq %s, want 2", got)
	}
}

// blockNewFS refuses to open NEW writable files while blocked — the
// "storage stops taking new files" fault — while writes to already-open
// handles keep working. Distinct from chaos.FaultyFS, which faults the
// writes themselves.
type blockNewFS struct {
	durable.FS
	block atomic.Bool
}

func (f *blockNewFS) Create(name string) (durable.File, error) {
	if f.block.Load() {
		return nil, errors.New("inject: create refused")
	}
	return f.FS.Create(name)
}

func (f *blockNewFS) Append(name string) (durable.File, error) {
	if f.block.Load() {
		return nil, errors.New("inject: append refused")
	}
	return f.FS.Append(name)
}

// TestRotationSwapFailureStillSyncsOldJournal pins the fsync=rotation
// bound when the generation swap itself fails: if OpenJournal errors at a
// rotation, the old journal must still get that epoch's flush+sync in
// place — otherwise buffered acked records silently outlive the promised
// one-epoch loss window for as long as the storage refuses new files.
func TestRotationSwapFailureStillSyncsOldJournal(t *testing.T) {
	inner := durable.NewMemFS()
	bfs := &blockNewFS{FS: inner}
	cfg := durableCfg(bfs, durable.FsyncRotation)
	cfg.EpochInterval = 15 * time.Millisecond
	s1 := newTestServer(t, cfg)
	bfs.block.Store(true) // storage goes bad right after boot
	h1 := s1.Handler()
	for i := 0; i < 3; i++ {
		bump(t, h1, "alice") // buffered in wal-(boot gen), nothing synced yet
	}

	// Wait for a post-traffic rotation: the swap to the next generation
	// fails, and the rotation-policy sync must land on the old journal.
	// Poll recovery-visible state on the inner (unblocked) FS: the drill
	// passes only once all three records are replayable from disk.
	st := durable.NewStore(inner)
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, err := st.Recover()
		if err == nil && len(rec.JournalRecords) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never synced after failed swap: recovery sees %+v", rec)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s1.metrics.journalSyncs.Load() == 0 {
		t.Fatal("rotation-policy sync not counted")
	}
	if s1.metrics.journalFailures.Load() == 0 {
		t.Fatal("failed journal swap not counted")
	}
	s1.kill()

	bfs.block.Store(false)
	s2 := newTestServer(t, durableCfg(bfs, durable.FsyncRotation))
	defer s2.Drain()
	if got := bump(t, s2.Handler(), "alice"); got != "4" {
		t.Fatalf("epoch records lost when the journal swap failed: next seq %s, want 4", got)
	}
}

