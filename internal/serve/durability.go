package serve

// Durable sessions. When Config.StateFS is set, the serving tier persists
// its session table (key → sequence counter + per-key KV) and rebuilds it
// at startup, so a crash or restart loses at most a bounded window of
// session history instead of every session on the instance.
//
// The design rides the machinery the tier already has:
//
//   - The EndIsolation barrier at every epoch rotation proves the delegate
//     pool quiescent — no handler is mutating any Session — so the window
//     between EndIsolation and BeginIsolation is a consistent cut across
//     every key at once. Session capture happens there, on the router, at
//     the same point the stats snapshot republishes. The router only
//     ENCODES (cost proportional to live state); committing the snapshot
//     to storage happens write-behind on a dedicated writer goroutine with
//     a latest-wins pending slot, so a slow disk delays durability, never
//     requests.
//
//   - Between rotations, every executed request appends its session's
//     post-state to an intra-epoch journal (durable.Journal). The append
//     runs on the delegate, after the backend returned and before the
//     request is acknowledged, so under Config.Fsync == FsyncAlways an
//     acknowledged response is durable by the time the client sees it.
//
//   - The journal SWAPS generations at capture time, on the router, inside
//     the same quiescent window (the pool is parked, so no append can race
//     the swap). That ordering is what makes recovery's replay rule sound:
//     wal-(N-1) closes before any post-capture-N request executes, so
//     every record in it is folded into snapshot N, and a record is never
//     stranded in a journal too old for recovery to replay.
//
// Failure is a degradation, not an outage: a failed snapshot commit keeps
// the previous generation valid (counted in ss_snapshot_failures_total),
// a failed journal append loses that record's durability (counted), and
// serving continues on whatever the last good generation holds. Recovery
// is the same shape — a torn journal tail or corrupt snapshot is
// truncated or skipped, reported on /healthz and /metrics, and the server
// boots with what validated instead of crash-looping.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/durable"
)

// snapCapture is one epoch-consistent capture handed to the write-behind
// writer: the generation the router assigned and every session encoded.
type snapCapture struct {
	gen     uint64
	records [][]byte
}

// recoveryInfo is what startup recovery rebuilt, frozen before the router
// starts and exposed on /healthz and /metrics.
type recoveryInfo struct {
	sessions         int // sessions in the rebuilt table
	snapshotGen      uint64
	snapshotsSkipped int // committed generations that failed validation
	journalReplayed  int // journal records applied on top of the snapshot
	truncatedRecords int // torn/corrupt journal frames dropped at tails
	decodeFailures   int // records whose payload failed to decode
}

// initDurability runs recovery and opens the first generation. Called
// from New before the router starts — the session table must be complete
// before admission opens, and a storage dir that cannot take a boot
// snapshot is a refused start, not a silent in-memory fallback.
func (s *Server) initDurability() error {
	s.store = durable.NewStore(s.cfg.StateFS)
	rec, err := s.store.Recover()
	if err != nil {
		return fmt.Errorf("serve: recover session state: %w", err)
	}
	for _, payload := range rec.SnapshotRecords {
		if !applySessionRecord(s.sessions, payload) {
			s.recovered.decodeFailures++
		}
	}
	for _, payload := range rec.JournalRecords {
		if applySessionRecord(s.sessions, payload) {
			s.recovered.journalReplayed++
		} else {
			s.recovered.decodeFailures++
		}
	}
	s.recovered.sessions = len(s.sessions)
	s.recovered.snapshotGen = rec.SnapshotGen
	s.recovered.snapshotsSkipped = rec.SnapshotsSkipped
	s.recovered.truncatedRecords = rec.TruncatedRecords

	// Boot commit: fold the recovered table (journal replay included) into
	// a fresh generation synchronously, so the journals that fed recovery
	// are no longer load-bearing and this boot's journal starts empty.
	// The generation comes from MaxGen — the highest ANY on-disk file
	// names, journals included — not SnapshotGen: a crash between a
	// rotation's journal swap and its snapshot commit leaves wal-(G+1) on
	// disk ahead of snapshot G, possibly torn mid-frame. Booting at G+1
	// would re-open that file and strand every new acked record behind the
	// tear (replay stops at the first bad frame), so the boot journal must
	// start strictly above every existing name.
	s.snapGen = rec.MaxGen + 1
	if _, err := s.store.CommitSnapshot(s.snapGen, encodeSessions(s.sessions)); err != nil {
		return fmt.Errorf("serve: boot snapshot: %w", err)
	}
	if !s.cfg.NoJournal {
		j, err := s.store.OpenJournal(s.snapGen, s.cfg.Fsync)
		if err != nil {
			return fmt.Errorf("serve: boot journal: %w", err)
		}
		s.journal.Store(j)
	}
	s.snapCh = make(chan snapCapture, 1)
	s.writerDone = make(chan struct{})
	go s.snapshotWriter()
	return nil
}

// Recovered reports what startup recovery rebuilt: the session count and
// how many torn or corrupt journal records were truncated to get there.
// Zero values without Config.StateFS. Safe from any goroutine (the info
// freezes before the router starts).
func (s *Server) Recovered() (sessions, truncated int) {
	return s.recovered.sessions, s.recovered.truncatedRecords
}

// snapshotWriter is the write-behind committer: it drains the pending
// slot and commits captures in order. A failed commit is counted and
// logged; the previous generation stays the recovery point and serving
// never notices.
func (s *Server) snapshotWriter() {
	defer close(s.writerDone)
	for cap := range s.snapCh {
		start := time.Now()
		info, err := s.store.CommitSnapshot(cap.gen, cap.records)
		if err != nil {
			s.metrics.snapshotFailures.Add(1)
			s.cfg.Logf("serve: snapshot generation %d failed: %v", cap.gen, err)
			continue
		}
		s.metrics.snapshots.Add(1)
		s.metrics.snapLastBytes.Store(uint64(info.Bytes))
		s.metrics.snapLastRecords.Store(uint64(info.Records))
		s.metrics.snapLastMicros.Store(uint64(time.Since(start).Microseconds()))
	}
}

// rotateDurable is the rotation hook: called on the router between
// EndIsolation and BeginIsolation (the consistent cut). No-op unless a
// request executed since the last capture — an idle server writes
// nothing. Program context only.
func (s *Server) rotateDurable() {
	if s.store == nil || !s.dirty.Swap(false) {
		return
	}
	s.snapGen++
	records := encodeSessions(s.sessions)
	if !s.cfg.NoJournal {
		// Swap generations while the pool is provably parked: wal-(gen-1)
		// closes — flushing its buffer, and under FsyncRotation this close
		// IS the per-epoch fsync — before any post-capture request can
		// append. On an open failure the old journal stays in place; its
		// records are still covered by the next successful capture.
		nj, err := s.store.OpenJournal(s.snapGen, s.cfg.Fsync)
		if err != nil {
			s.metrics.journalFailures.Add(1)
			s.cfg.Logf("serve: journal generation %d: %v", s.snapGen, err)
			// The generation cannot swap, but the policy's per-epoch fsync
			// must still happen: sync the old journal in place so this
			// epoch's acked records meet the <=1-epoch loss bound even
			// while new-file creation is failing.
			if s.cfg.Fsync == durable.FsyncRotation {
				if old := s.journal.Load(); old != nil {
					if serr := old.Sync(); serr != nil {
						s.metrics.journalFailures.Add(1)
					} else {
						s.metrics.journalSyncs.Add(1)
					}
				}
			}
		} else {
			if old := s.journal.Swap(nj); old != nil {
				if err := old.Close(); err != nil {
					s.metrics.journalFailures.Add(1)
				} else if s.cfg.Fsync != durable.FsyncOff {
					s.metrics.journalSyncs.Add(1)
				}
			}
		}
	}
	select {
	case s.snapCh <- snapCapture{gen: s.snapGen, records: records}:
	default:
		// The writer is still committing an earlier capture. Latest-wins
		// would be ideal but dropping is equivalent here: the NEXT rotation
		// recaptures strictly newer state (the dirty bit re-arms on the
		// first post-capture request), so a skip delays durability by
		// epochs, never loses it.
		s.metrics.snapshotSkipped.Add(1)
	}
}

// journalSession appends sess's post-request state to the current
// journal. Runs on the delegate that executed the request, BEFORE the
// request resolves — under FsyncAlways the record is on stable storage
// when the acknowledgment goes out. Append failures degrade (counted,
// logged by policy of the layer: snapshots still cover the state) rather
// than failing the request — durability is best-effort below the fsync
// contract, the request's answer is not.
func (s *Server) journalSession(sess *Session) {
	j := s.journal.Load()
	if j == nil {
		return
	}
	if err := j.Append(encodeSession(sess)); err != nil {
		s.metrics.journalFailures.Add(1)
		return
	}
	s.metrics.journalRecords.Add(1)
	if s.cfg.Fsync == durable.FsyncAlways {
		s.metrics.journalSyncs.Add(1)
	}
}

// drainDurable is the shutdown path: stop the writer, then commit a final
// synchronous snapshot of the drained (quiescent, post-barrier) table and
// close the journal. A clean drain is therefore lossless under every
// fsync policy. Program context only.
func (s *Server) drainDurable() {
	if s.store == nil {
		return
	}
	close(s.snapCh)
	<-s.writerDone
	s.snapGen++
	if _, err := s.store.CommitSnapshot(s.snapGen, encodeSessions(s.sessions)); err != nil {
		s.metrics.snapshotFailures.Add(1)
		s.cfg.Logf("serve: final snapshot generation %d failed: %v", s.snapGen, err)
	} else {
		s.metrics.snapshots.Add(1)
	}
	if j := s.journal.Swap(nil); j != nil {
		j.Close()
	}
}

// --- session record codec ---
//
// One record is one session's full state:
//
//	set u64 | seq u64 | key (u32 len + bytes) | npairs u32 | (k, v)*
//
// little-endian throughout. Records are self-contained and replayed
// monotonically: a record applies iff its Seq is >= the table's current
// Seq for that set, which makes the journal/snapshot overlap harmless —
// replaying a record the snapshot already folded in is a no-op shaped
// like an idempotent write.

func appendLenBytes(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func encodeSession(sess *Session) []byte {
	n := 8 + 8 + 4 + len(sess.Key) + 4
	for k, v := range sess.Data {
		n += 8 + len(k) + len(v)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, sess.Set)
	buf = binary.LittleEndian.AppendUint64(buf, sess.Seq)
	buf = appendLenBytes(buf, sess.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sess.Data)))
	for k, v := range sess.Data {
		buf = appendLenBytes(buf, k)
		buf = appendLenBytes(buf, v)
	}
	return buf
}

// encodeSessions encodes the whole table, one record per session.
// Program context only (reads router-private state).
func encodeSessions(sessions map[uint64]*Session) [][]byte {
	records := make([][]byte, 0, len(sessions))
	for _, sess := range sessions {
		records = append(records, encodeSession(sess))
	}
	return records
}

func decodeSession(payload []byte) (*Session, bool) {
	takeU64 := func() (uint64, bool) {
		if len(payload) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
		return v, true
	}
	takeStr := func() (string, bool) {
		if len(payload) < 4 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if n < 0 || len(payload) < n {
			return "", false
		}
		v := string(payload[:n])
		payload = payload[n:]
		return v, true
	}
	set, ok := takeU64()
	if !ok {
		return nil, false
	}
	seq, ok := takeU64()
	if !ok {
		return nil, false
	}
	key, ok := takeStr()
	if !ok {
		return nil, false
	}
	if len(payload) < 4 {
		return nil, false
	}
	npairs := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	sess := &Session{Key: key, Set: set, Seq: seq, Data: make(map[string]string, npairs)}
	for i := 0; i < npairs; i++ {
		k, ok := takeStr()
		if !ok {
			return nil, false
		}
		v, ok := takeStr()
		if !ok {
			return nil, false
		}
		sess.Data[k] = v
	}
	if len(payload) != 0 {
		return nil, false // trailing garbage: framed length disagreed with content
	}
	return sess, true
}

// applySessionRecord decodes payload and applies it to the table
// monotonically. Reports false only on a decode failure (a stale record
// is applied-as-no-op, which is success).
func applySessionRecord(sessions map[uint64]*Session, payload []byte) bool {
	sess, ok := decodeSession(payload)
	if !ok {
		return false
	}
	if cur := sessions[sess.Set]; cur != nil && sess.Seq < cur.Seq {
		return true
	}
	sessions[sess.Set] = sess
	return true
}
