// Package serve is the serving tier: serialization sets as a
// session-affinity request router. Every request carries a key (user id,
// session, tenant); the key hashes to a serialization set; the handler for
// the request is delegated to that set. The model then gives the serving
// property for free: requests for one key execute in arrival order on one
// delegate at a time — per-key causal order with no per-session locks —
// while requests for different keys run concurrently across the delegate
// pool, rebalanced by the occupancy-aware whole-set stealer when the key
// distribution skews. A request that panics is contained by the engine:
// its key's set is poisoned for the rest of the isolation epoch (those
// requests fail fast with the fault attached) and every other key keeps
// serving.
//
// The router goroutine owns the runtime — it is the program context, the
// only goroutine that calls Runtime methods other than the any-goroutine
// query surface (Poisoned, SetErr, QueueDepths, Stats snapshots). HTTP
// handler goroutines talk to it through one bounded jobs channel and wait
// on a per-job done channel:
//
//	handler goroutine             router (program ctx)          delegate
//	  admission / rate gates
//	  jobs <- job ───────────────▶ DelegateTo(set, run) ───────▶ handler fn
//	  <-job.done ◀──────────────────────────────────────────────  finish
//
// Request lifecycle around faults. The delegated closure finishes the job
// from a deferred call, so a panicking handler still completes its own
// request (defers run during unwinding, before the engine's containment
// recover). A delegation raced by a poison landing between the router's
// check and the drain seam is dropped-but-counted by the engine and its
// done channel would never close; the router sweeps those at the next
// epoch rotation — after the EndIsolation barrier, every job the epoch
// delegated has either finished or was deterministically dropped, so the
// sweep is exact, not heuristic.
//
// Epochs rotate on a timer. Rotation is the serving tier's repair loop:
// the barrier proves the pool quiescent, dropped and expired jobs are
// swept to definitive answers, the stats snapshot is republished,
// BeginIsolation clears the poison table so a faulted key starts serving
// again (its fault records remain queryable), the slow-key watchdog
// heals, and the rate limiter evicts idle buckets. The rotation barrier
// briefly parks the router, so admission backpressure (bounded jobs
// channel, inflight budget) is what bounds the latency blip: everything
// accepted before the barrier is already in delegate queues, which the
// barrier itself drains.
//
// Between the router and the work it runs sits the robustness layer
// (backend.go, breaker.go, deadline.go): a pluggable Backend interface
// (in-process handlers, HTTP upstream proxies, chaos wrappers) optionally
// gated per backend by a circuit breaker behind a rotation Pool;
// per-request deadlines fixed at admission and enforced wherever the tier
// holds the request (delivery, queue front, backend context, epoch
// sweep — an expired request resolves to a definitive 504, never a parked
// done-channel); retry with capped jittered backoff for idempotent
// requests, re-delegated through the router so per-key order holds across
// attempts; and a slow-key watchdog that degrades a persistently-slow key
// to 503 sheds instead of letting it starve its set's epoch-mates.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	prometheus "repro"
	"repro/internal/durable"
)

// Session is the per-key state a handler mutates. All access happens
// inside delegated operations of the key's serialization set, so handlers
// never lock it: per-set program order is the mutual exclusion, and the
// delegation queues carry the happens-before edges between requests.
type Session struct {
	Key string // the request key this session serves
	Set uint64 // the serialization set the key hashed to
	Seq uint64 // requests executed on this session (incremented before the handler runs)

	// Data is scratch state for handlers (a tiny per-key KV).
	Data map[string]string
}

// Handler executes one request against its key's session, on a delegate
// context. It must not retain s or r beyond the call, must not call
// Runtime methods, and may panic: a panic is contained by the engine,
// fails this request with the fault attached, and poisons the key for the
// rest of the epoch while every other key keeps serving. When
// Config.RequestTimeout is set, r.Context() carries the request's
// deadline; a cooperative handler bounds its own work with it (an
// uncooperative one is handled by queue-front shedding and the slow-key
// watchdog instead — see deadline.go).
type Handler func(s *Session, r *http.Request) (status int, body string)

// Config parameterizes a Server.
type Config struct {
	// Delegates sets the runtime's INITIAL delegate-context pool size
	// (default GOMAXPROCS-1, the runtime's own default).
	Delegates int
	// MaxDelegates sets the pool capacity ceiling for live resizes
	// (runtime structures are pre-allocated to it). 0 fixes the pool at
	// Delegates: no autoscaling, /admin/resize rejected.
	MaxDelegates int
	// MinDelegates floors the autoscaler's scale-down (default 1). Manual
	// /admin/resize may go below it — the floor bounds the feedback loop,
	// not the operator.
	MinDelegates int
	// Autoscale enables the rotation-driven autoscaler: at each epoch
	// rotation the router folds mean delegate occupancy into an EWMA and
	// steps the pool ±1 delegate when it leaves the target band, clamped
	// to [MinDelegates, MaxDelegates], with AutoscaleCooldown rotations
	// between steps. Requires MaxDelegates.
	Autoscale bool
	// AutoscaleCooldown is the number of epoch rotations between resize
	// decisions (default 3) — resizes re-place owner state, so the band
	// check must see post-resize occupancy settle before stepping again.
	AutoscaleCooldown int
	// Shards sets the latency-metric shard count: a key's set is metered
	// under shard set%Shards, bounding metric cardinality under unbounded
	// keys. Default 8.
	Shards int
	// MaxInflight is the admission budget: requests admitted past the
	// gates and not yet answered. Above it requests are rejected with 503
	// before touching the runtime. Default 1024.
	MaxInflight int
	// QueueDepth bounds the handler→router jobs channel; a full channel
	// rejects with 503 (backpressure, never unbounded buffering).
	// Default MaxInflight.
	QueueDepth int
	// Rate and Burst configure the per-set token bucket, in
	// requests/second and requests. Rate 0 disables rate limiting.
	Rate  float64
	Burst float64
	// EpochInterval is the rotation period — the poison-repair and
	// dropped-job-sweep cadence. Default 100ms.
	EpochInterval time.Duration
	// DrainTimeout bounds Drain: how long to wait for inflight requests
	// before logging a straggler report (with the scheduler dump) and
	// terminating anyway. Default 5s.
	DrainTimeout time.Duration
	// RequestTimeout is the per-request budget, fixed at admission. A
	// request whose budget expires before its backend can run resolves to a
	// definitive 504 (at delivery, at the queue front, or at the epoch
	// sweep — see deadline.go); a backend running when it expires sees the
	// deadline on its context. 0 disables deadlines.
	RequestTimeout time.Duration
	// RetryMax caps retry attempts for idempotent requests after backend
	// failures (0 = no retries). Retries re-enter the router and are
	// re-delegated through the key's serialization set, preserving per-key
	// order across attempts.
	RetryMax int
	// RetryBase and RetryCap shape the capped exponential backoff between
	// attempts (base doubles per attempt, jittered ±50%, capped). Defaults
	// 2ms and 250ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// IdempotentFunc reports whether a request is safe to retry. Default:
	// GET/HEAD/OPTIONS, or any method carrying an Idempotency-Key header.
	IdempotentFunc func(r *http.Request) bool
	// SlowThreshold arms the slow-key watchdog: a key whose backend
	// services exceed it on SlowTrips consecutive requests is degraded —
	// shed with 503 at delivery — until an epoch rotation heals it. 0
	// disables the watchdog.
	SlowThreshold time.Duration
	// SlowTrips is the consecutive-slow-service count that degrades a key.
	// Default 3.
	SlowTrips int
	// Backend executes requests. Exactly one of Backend and Handler must
	// be set (Handler is shorthand for an in-process HandlerBackend); use
	// NewPool to gate several backends behind per-backend circuit
	// breakers.
	Backend Backend
	// Handler executes requests in-process; shorthand for
	// Backend: NewHandlerBackend("inprocess", Handler).
	Handler Handler
	// StateFS, when set, enables durable sessions: the session table is
	// snapshotted at every epoch rotation (write-behind, riding the
	// quiescent window the EndIsolation barrier proves), journaled between
	// rotations, and rebuilt from storage at the next New before admission
	// opens. Use durable.NewDirFS for a real state directory,
	// durable.NewMemFS in tests, chaos.WrapFS for fault drills. Nil
	// disables durability (sessions die with the process).
	StateFS durable.FS
	// Fsync is the journal's durability policy (see durable.FsyncPolicy):
	// FsyncOff buffers, FsyncRotation syncs once per epoch rotation
	// (bounding acked loss at one epoch), FsyncAlways syncs every append
	// (an acknowledged request is durable). Ignored without StateFS.
	Fsync durable.FsyncPolicy
	// NoJournal disables the intra-epoch journal: durability comes from
	// rotation snapshots alone, bounding loss at one epoch plus commit
	// latency regardless of Fsync. Ignored without StateFS.
	NoJournal bool
	// KeyFunc extracts the request key. Default: header "X-Session-Key",
	// else query parameter "key", else the client address.
	KeyFunc func(r *http.Request) string
	// Logf receives drain and straggler reports. Default: discard.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.Handler == nil && c.Backend == nil {
		return fmt.Errorf("serve: one of Config.Handler and Config.Backend is required")
	}
	if c.Handler != nil && c.Backend != nil {
		return fmt.Errorf("serve: Config.Handler and Config.Backend are mutually exclusive")
	}
	if c.Backend == nil {
		c.Backend = NewHandlerBackend("inprocess", c.Handler)
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 250 * time.Millisecond
	}
	if c.IdempotentFunc == nil {
		c.IdempotentFunc = defaultIdempotent
	}
	if c.SlowTrips <= 0 {
		c.SlowTrips = 3
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.MaxInflight
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.KeyFunc == nil {
		c.KeyFunc = defaultKey
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Autoscale && c.MaxDelegates <= 0 {
		return fmt.Errorf("serve: Config.Autoscale requires Config.MaxDelegates")
	}
	if c.MinDelegates <= 0 {
		c.MinDelegates = 1
	}
	if c.MaxDelegates > 0 && c.MinDelegates > c.MaxDelegates {
		return fmt.Errorf("serve: Config.MinDelegates %d exceeds Config.MaxDelegates %d",
			c.MinDelegates, c.MaxDelegates)
	}
	if c.AutoscaleCooldown <= 0 {
		c.AutoscaleCooldown = 3
	}
	return nil
}

func defaultKey(r *http.Request) string {
	if k := r.Header.Get("X-Session-Key"); k != "" {
		return k
	}
	if k := r.URL.Query().Get("key"); k != "" {
		return k
	}
	return r.RemoteAddr
}

// Job outcomes, CAS-guarded: exactly one of the delegated operation, the
// router's fast-path finishes (poisoned, degraded, expired at delivery),
// and the epoch sweep wins, and the winner closes done.
const (
	outcomePending uint32 = iota
	outcomeServed         // backend produced a definitive answer (status/body are valid, including 502 on a non-retryable backend failure)
	outcomeFaulted        // handler panicked; fault contained, set poisoned
	outcomeDropped        // delegation dropped on a poisoned set (router fast path or engine seam + sweep)
	outcomeExpired        // request budget expired before the backend could answer (504)
	outcomeShed           // slow-key watchdog degraded the key (503)
)

type job struct {
	key      string
	set      uint64
	r        *http.Request
	status   int
	body     string
	outcome  atomic.Uint32
	done     chan struct{}
	start    time.Time
	deadline time.Time // zero = no budget (Config.RequestTimeout off)

	// attempt counts backend attempts already made. Written by the
	// delegate arming a retry, read by the router at redelivery; the retry
	// timer's channel send carries the happens-before edge.
	attempt int
	// retryArmed marks a job owned by its retry timer: not finished, not
	// in flight, waiting to re-enter the jobs channel. The epoch sweep
	// skips armed jobs (their delegation completed — the barrier proved
	// it — and the timer will re-deliver them); delivery clears the flag.
	retryArmed atomic.Bool
}

// finish resolves the job to outcome o exactly once; the winning caller
// closes done and wakes the handler goroutine.
func (j *job) finish(o uint32) bool {
	if j.outcome.CompareAndSwap(outcomePending, o) {
		close(j.done)
		return true
	}
	return false
}

// Server is the serving tier instance. Create with New, expose Handler()
// on an http.Server, stop with Drain.
type Server struct {
	cfg     Config
	metrics *metrics
	limiter *limiter
	slow    *slowTable // nil unless Config.SlowThreshold set

	jobs     chan *job
	inflight atomic.Int64
	draining atomic.Bool

	// Router-private state (program context only).
	rt        *prometheus.Runtime
	w         *prometheus.Writable[routerState]
	sessions  map[uint64]*Session
	epochJobs []*job

	// statsSnap republishes the router's Stats() snapshot at each
	// rotation so the any-goroutine metrics scrape never calls Stats
	// itself (Stats reads program-private counters).
	statsSnap atomic.Pointer[prometheus.Stats]

	// Autoscaler state. occEWMA and cooldown are router-private;
	// resizeTarget carries a manual /admin/resize target (0 = none) from
	// the handler to the router, which applies it at the next rotation —
	// engine reconfiguration stays on the program context's schedule even
	// when the request arrives on an arbitrary goroutine.
	occEWMA      float64
	cooldown     int
	resizeTarget atomic.Int64
	depthBuf     []uint64 // router-private QueueDepths scratch

	// Durability (see durability.go; all nil/zero without Config.StateFS).
	store      *durable.Store
	journal    atomic.Pointer[durable.Journal] // swapped by the router at capture
	snapGen    uint64                          // generation counter (router, then drain)
	dirty      atomic.Bool                     // a request executed since the last capture
	snapCh     chan snapCapture                // router → write-behind committer, capacity 1
	writerDone chan struct{}
	recovered  recoveryInfo // frozen before the router starts

	drainCh  chan chan struct{}
	routerWG chan struct{}
	killCh   chan struct{} // test hook: abrupt router death, no drain, no flush
}

// routerState is the Writable payload. Per-key state lives in Session
// objects the router threads through delegated closures; the wrapper
// exists to address the delegation API, so its object is empty.
type routerState struct{}

// New validates cfg, starts the router goroutine (which owns the runtime:
// the goroutine that calls Init is the program context), and returns once
// the first isolation epoch is open and the server is accepting work.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(cfg.Shards),
		jobs:     make(chan *job, cfg.QueueDepth),
		sessions: make(map[uint64]*Session),
		drainCh:  make(chan chan struct{}),
		routerWG: make(chan struct{}),
		killCh:   make(chan struct{}),
	}
	if cfg.Rate > 0 {
		s.limiter = newLimiter(cfg.Rate, cfg.Burst)
	}
	if cfg.SlowThreshold > 0 {
		s.slow = newSlowTable(cfg.SlowThreshold, cfg.SlowTrips)
	}
	if cfg.StateFS != nil {
		// Recovery runs here, before the router exists: the session table
		// must be rebuilt before the first request can be admitted, and a
		// state store that cannot take a boot snapshot refuses to start.
		if err := s.initDurability(); err != nil {
			return nil, err
		}
	}
	ready := make(chan struct{})
	go s.router(ready)
	<-ready
	return s, nil
}

// router is the program context: it creates the runtime, keeps an
// isolation epoch open, delegates jobs, rotates epochs on a timer, and
// performs the final drain. It is the only goroutine that calls Runtime
// methods outside the documented any-goroutine query surface.
func (s *Server) router(ready chan struct{}) {
	defer close(s.routerWG)
	opts := []prometheus.Option{
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(),
		// Delegation batching is off: the batch buffer flushes on the
		// program context's NEXT runtime call, and this router parks in a
		// select between deliveries — a buffered tail would strand its
		// requests (handlers waiting on done channels) until the next
		// rotation. The jobs channel already amortizes the handoff.
		prometheus.WithDelegateBatch(1),
	}
	if s.cfg.Delegates > 0 {
		opts = append(opts, prometheus.WithDelegates(s.cfg.Delegates))
	}
	if s.cfg.MaxDelegates > 0 {
		opts = append(opts, prometheus.WithMaxDelegates(s.cfg.MaxDelegates))
	}
	s.rt = prometheus.Init(opts...)
	s.w = prometheus.NewWritableSer(s.rt, routerState{}, prometheus.NullSerializer[routerState]())
	s.rt.BeginIsolation()
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
	close(ready)

	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for {
		select {
		case j := <-s.jobs:
			s.deliver(j)
		case <-tick.C:
			s.rotate()
		case ack := <-s.drainCh:
			s.drainRouter()
			close(ack)
			return
		case <-s.killCh:
			// Test hook: die the way a SIGKILL would — no drain, no final
			// snapshot, no journal flush, runtime abandoned. What the
			// durability layer already pushed to its FS is all a successor
			// recovers; the journal's user-space buffer dies with us.
			return
		}
	}
}

// kill abruptly stops the router for crash-recovery tests. Unlike Drain it
// resolves nothing: inflight requests park forever, buffered journal bytes
// are lost, the runtime leaks. Call only from tests, at a quiescent point.
func (s *Server) kill() {
	close(s.killCh)
	<-s.routerWG
}

// deliver routes one job: deadline and degradation fast paths, poisoned
// fast path, session lookup, delegation. Handles both fresh arrivals and
// retry re-entries (retryArmed is cleared here — from this point the job
// is in flight again). Program context only.
func (s *Server) deliver(j *job) {
	j.retryArmed.Store(false)
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		// The budget expired while the job sat in the channel (or while a
		// retry backoff ran): resolve the 504 without paying a delegation.
		if j.finish(outcomeExpired) {
			s.metrics.expired.Add(1)
		}
		return
	}
	if s.rt.Poisoned(j.set) {
		// The epoch's poison landed before this job was delegated: fail it
		// now instead of paying the delegation just to drop it at a seam.
		if j.finish(outcomeDropped) {
			s.metrics.droppedJobs.Add(1)
		}
		return
	}
	if s.slow != nil && s.slow.degraded(j.set) {
		// The watchdog degraded this key: shed instead of queueing behind
		// work that would blow the budget anyway.
		if j.finish(outcomeShed) {
			s.metrics.shedDegraded.Add(1)
		}
		return
	}
	sess := s.sessions[j.set]
	if sess == nil {
		sess = &Session{Key: j.key, Set: j.set, Data: make(map[string]string)}
		s.sessions[j.set] = sess
	}
	s.epochJobs = append(s.epochJobs, j)
	s.w.DelegateTo(j.set, func(_ *prometheus.Ctx, _ *routerState) {
		s.execute(j, sess)
	})
}

// execute runs one job's backend attempt on a delegate context. It owns
// the job's resolution for this attempt: served (any definitive status,
// including a 502/503 rendered from a non-retryable backend failure),
// expired (queue-front shed or budget exhausted mid-backend), faulted
// (handler panic — the deferred check fires during unwinding, before the
// engine's containment recover, so the request completes AND the panic
// still poisons the set), or none of these because a retry timer was
// armed and the job will re-enter the router.
func (s *Server) execute(j *job, sess *Session) {
	start := time.Now()
	if !j.deadline.IsZero() && start.After(j.deadline) {
		// Queue-front shed: the set's earlier work (a latency spike, a slow
		// epoch-mate) consumed this request's budget before its turn came.
		// Resolving 504 here — without running the backend — is what keeps
		// one slow request from cascading into a wedged key.
		if j.finish(outcomeExpired) {
			s.metrics.expired.Add(1)
		}
		return
	}
	resolved := false
	defer func() {
		if !resolved {
			j.finish(outcomeFaulted)
		}
	}()
	ctx := context.Background()
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	sess.Seq++
	status, body, err := s.cfg.Backend.Serve(ctx, sess, j.r)
	elapsed := time.Since(start)
	if s.slow != nil && s.slow.observe(j.set, elapsed) {
		s.metrics.degradedKeys.Add(1)
	}
	if s.store != nil {
		// Journal the session's post-state before the request can resolve:
		// under FsyncAlways the record is durable before the ack goes out.
		// A panicking handler unwinds past this point, journaling nothing —
		// a faulted operation contributes no durable state, matching the
		// engine's "no partial side effects" containment contract.
		s.journalSession(sess)
		s.dirty.Store(true)
	}
	if err == nil {
		j.status, j.body = status, body
		resolved = true
		j.finish(outcomeServed)
		return
	}
	s.metrics.backendFailures.Add(1)
	resolved = true // the failure paths below all resolve or arm a retry; only a panic above leaves !resolved
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		// The budget died inside the backend (deadline-context timeout or a
		// failure that arrived at the boundary): this is a 504, not a 502,
		// and retrying is pointless.
		if j.finish(outcomeExpired) {
			s.metrics.expired.Add(1)
		}
		return
	}
	backoff := s.backoffFor(j)
	if s.retryable(j, backoff) {
		// Arm the retry OFF the delegate: backing off inline would hold the
		// set hostage. The timer re-enters the jobs channel, the router
		// re-delegates through the same set, and per-key order holds across
		// attempts by construction. retryArmed must be set before the timer
		// exists so the epoch sweep (which runs after the barrier proved
		// this operation finished) observes it.
		j.attempt++
		j.retryArmed.Store(true)
		s.metrics.retries.Add(1)
		time.AfterFunc(backoff, func() { s.jobs <- j })
		return
	}
	// Out of budget, attempts, or idempotency: render the failure.
	if errors.Is(err, ErrNoBackend) {
		j.status = http.StatusServiceUnavailable
		j.body = "no backend available\n"
	} else {
		j.status = http.StatusBadGateway
		j.body = fmt.Sprintf("backend failure after %d attempt(s): %v\n", j.attempt+1, err)
	}
	j.finish(outcomeServed)
}

// rotate closes the epoch and opens the next: the barrier proves the pool
// quiescent, the sweep resolves jobs whose delegations were dropped on a
// poison seam (their done channels would otherwise never close), the
// stats snapshot republishes, and BeginIsolation clears the poison table
// so faulted keys resume serving. Rotation is also the tier's maintenance
// cadence: the slow-key watchdog heals, and the rate limiter evicts idle
// buckets. Program context only.
func (s *Server) rotate() {
	// Occupancy is sampled BEFORE the barrier: the closing epoch's backlog
	// is the load signal, and the barrier is about to drain it to zero.
	occ := s.sampleOccupancy()
	s.rt.EndIsolation()
	s.sweepEpochJobs()
	s.epochJobs = s.epochJobs[:0]
	if s.slow != nil {
		s.slow.heal()
	}
	if s.limiter != nil {
		s.metrics.bucketsEvicted.Add(uint64(s.limiter.sweep(time.Now())))
	}
	// The barrier just proved the pool quiescent: no delegate is mutating
	// any Session, so this window is a consistent cut across every key —
	// where the durable-session capture rides (see durability.go).
	s.rotateDurable()
	// Record any resize intent now; the BeginIsolation below is the epoch
	// boundary that applies it, so `ss_delegates` moves on this rotation.
	s.maybeResize(occ)
	s.rt.BeginIsolation()
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
}

// Autoscaler band: mean outstanding operations per active delegate. Above
// the high mark the pool is queueing (scale up); below the low mark with
// more than the floor active, delegates are idling (scale down). The gap
// between the marks is the hysteresis that keeps a steady load from
// oscillating the pool.
const (
	autoscaleHighOcc = 2.0
	autoscaleLowOcc  = 0.5
	// autoscaleAlpha is the occupancy EWMA's smoothing weight per
	// rotation: heavy enough that a one-rotation burst does not resize the
	// pool, light enough that a sustained phase shift crosses the band
	// within a few rotations.
	autoscaleAlpha = 0.5
)

// sampleOccupancy returns the closing epoch's mean per-delegate load:
// outstanding delegated operations plus jobs still waiting in the channel,
// over the active pool. Program context, pre-barrier.
func (s *Server) sampleOccupancy() float64 {
	n := s.rt.ActiveDelegates()
	if n == 0 {
		return 0
	}
	s.depthBuf = s.rt.QueueDepths(s.depthBuf[:0])
	var sum uint64
	for _, d := range s.depthBuf {
		sum += d
	}
	return (float64(sum) + float64(len(s.jobs))) / float64(n)
}

// maybeResize is the rotation-driven scaling decision: a manual
// /admin/resize target always wins and resets the cooldown; otherwise,
// with Autoscale on, the occupancy EWMA is stepped and compared against
// the band. Resizes are single steps with a cooldown measured in
// rotations — the engine applies them at epoch boundaries, so each step's
// effect is observable before the next decision. Program context only.
func (s *Server) maybeResize(occ float64) {
	if tgt := s.resizeTarget.Swap(0); tgt > 0 {
		if err := s.rt.Resize(int(tgt)); err != nil {
			s.cfg.Logf("serve: manual resize to %d rejected: %v", tgt, err)
		} else {
			s.cooldown = s.cfg.AutoscaleCooldown
		}
		return
	}
	if !s.cfg.Autoscale {
		return
	}
	s.occEWMA += autoscaleAlpha * (occ - s.occEWMA)
	if s.cooldown > 0 {
		s.cooldown--
		return
	}
	active := s.rt.ActiveDelegates()
	target := active
	switch {
	case s.occEWMA > autoscaleHighOcc && active < s.cfg.MaxDelegates:
		target = active + 1
	case s.occEWMA < autoscaleLowOcc && active > s.cfg.MinDelegates:
		target = active - 1
	}
	if target == active {
		return
	}
	if err := s.rt.Resize(target); err != nil {
		s.cfg.Logf("serve: autoscale to %d rejected: %v", target, err)
		return
	}
	s.cooldown = s.cfg.AutoscaleCooldown
}

// sweepEpochJobs resolves every job the closed epoch left pending. Runs
// after the EndIsolation barrier, which proves each delegated operation
// either executed or was deterministically dropped on a poison seam — so
// a still-pending job here is either (a) dropped (500), or (b) armed for
// retry (skipped: its operation DID execute, the arming is why it has no
// outcome, and its timer owns re-delivery). A dropped job whose budget
// has also expired resolves 504, not 500: the deadline is the promise the
// tier made first, and "definitive 504 at the epoch sweep, never a parked
// done-channel" is the deadline contract's backstop. Program context only.
func (s *Server) sweepEpochJobs() {
	now := time.Now()
	for _, j := range s.epochJobs {
		if j.retryArmed.Load() {
			continue
		}
		if !j.deadline.IsZero() && now.After(j.deadline) {
			if j.finish(outcomeExpired) {
				s.metrics.expired.Add(1)
			}
			continue
		}
		if j.finish(outcomeDropped) {
			s.metrics.droppedJobs.Add(1)
		}
	}
}

// drainRouter is the router's shutdown path: keep serving until every
// admitted request is answered (admission is already closed, so inflight
// only shrinks), then barrier, sweep, and terminate. The admission
// handshake makes the inflight wait sound: a handler that passed the
// draining check raised the inflight counter BEFORE loading the flag
// (sequentially-consistent order: its Add precedes its false Load, which
// precedes Drain's Store, which precedes every Load below), so no request
// can slip in behind an observed zero. If stragglers outlast
// Config.DrainTimeout their count and the scheduler-ledger dump are
// logged — the dump reads program-private counters, which is why this
// wait runs on the router and not in Drain — and the wait then CONTINUES:
// abandoning it would drop accepted requests, the one thing drain exists
// to prevent. A handler operation that never returns therefore wedges the
// drain (as it would wedge the shutdown barrier); the straggler report is
// the diagnosis, and the Watchdog option turns the wedge itself into one.
func (s *Server) drainRouter() {
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	warned := false
	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		if !warned && time.Now().After(deadline) {
			warned = true
			s.cfg.Logf("serve: drain timeout: %d requests still inflight\n%s",
				s.inflight.Load(), s.rt.SchedDump())
		}
		select {
		case j := <-s.jobs:
			s.deliver(j)
		case <-tick.C:
			// Keep rotating while waiting: the epoch sweep is what resolves
			// jobs whose delegations were dropped on a poison seam, and a
			// handler parked on one of those counts as inflight.
			s.rotate()
		case <-time.After(time.Millisecond):
		}
	}
	for {
		select {
		case j := <-s.jobs:
			s.deliver(j)
			continue
		default:
		}
		break
	}
	s.rt.EndIsolation()
	s.sweepEpochJobs()
	s.epochJobs = nil
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
	// Final barrier passed: the table is quiescent forever. Persist it
	// synchronously — a clean drain is lossless under every fsync policy.
	s.drainDurable()
	s.rt.Terminate()
}

// Drain gracefully stops the server: admission closes (new requests get
// 503), every admitted request is served to completion, the router runs
// its final barrier — sweeping any poison-dropped jobs — and terminates
// the runtime. Call after the HTTP listener has stopped accepting new
// connections; call once.
func (s *Server) Drain() error {
	s.draining.Store(true)
	ack := make(chan struct{})
	s.drainCh <- ack
	<-ack
	<-s.routerWG
	if n := s.inflight.Load(); n > 0 {
		return fmt.Errorf("serve: drained with %d requests unanswered", n)
	}
	return nil
}

// Stats returns the most recent epoch-rotation snapshot of the runtime
// counters. Safe from any goroutine.
func (s *Server) Stats() prometheus.Stats { return *s.statsSnap.Load() }

// ActiveDelegates reports the live delegate-pool size. Safe from any
// goroutine; moves only at epoch rotations.
func (s *Server) ActiveDelegates() int { return s.rt.ActiveDelegates() }
