// Package serve is the serving tier: serialization sets as a
// session-affinity request router. Every request carries a key (user id,
// session, tenant); the key hashes to a serialization set; the handler for
// the request is delegated to that set. The model then gives the serving
// property for free: requests for one key execute in arrival order on one
// delegate at a time — per-key causal order with no per-session locks —
// while requests for different keys run concurrently across the delegate
// pool, rebalanced by the occupancy-aware whole-set stealer when the key
// distribution skews. A request that panics is contained by the engine:
// its key's set is poisoned for the rest of the isolation epoch (those
// requests fail fast with the fault attached) and every other key keeps
// serving.
//
// The router goroutine owns the runtime — it is the program context, the
// only goroutine that calls Runtime methods other than the any-goroutine
// query surface (Poisoned, SetErr, QueueDepths, Stats snapshots). HTTP
// handler goroutines talk to it through one bounded jobs channel and wait
// on a per-job done channel:
//
//	handler goroutine             router (program ctx)          delegate
//	  admission / rate gates
//	  jobs <- job ───────────────▶ DelegateTo(set, run) ───────▶ handler fn
//	  <-job.done ◀──────────────────────────────────────────────  finish
//
// Request lifecycle around faults. The delegated closure finishes the job
// from a deferred call, so a panicking handler still completes its own
// request (defers run during unwinding, before the engine's containment
// recover). A delegation raced by a poison landing between the router's
// check and the drain seam is dropped-but-counted by the engine and its
// done channel would never close; the router sweeps those at the next
// epoch rotation — after the EndIsolation barrier, every job the epoch
// delegated has either finished or was deterministically dropped, so the
// sweep is exact, not heuristic.
//
// Epochs rotate on a timer. Rotation is the serving tier's repair loop:
// the barrier proves the pool quiescent, dropped jobs are swept, the
// stats snapshot is republished, and BeginIsolation clears the poison
// table so a faulted key starts serving again (its fault records remain
// queryable). The rotation barrier briefly parks the router, so admission
// backpressure (bounded jobs channel, inflight budget) is what bounds the
// latency blip: everything accepted before the barrier is already in
// delegate queues, which the barrier itself drains.
package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	prometheus "repro"
)

// Session is the per-key state a handler mutates. All access happens
// inside delegated operations of the key's serialization set, so handlers
// never lock it: per-set program order is the mutual exclusion, and the
// delegation queues carry the happens-before edges between requests.
type Session struct {
	Key string // the request key this session serves
	Set uint64 // the serialization set the key hashed to
	Seq uint64 // requests executed on this session (incremented before the handler runs)

	// Data is scratch state for handlers (a tiny per-key KV).
	Data map[string]string
}

// Handler executes one request against its key's session, on a delegate
// context. It must not retain s or r beyond the call, must not call
// Runtime methods, and may panic: a panic is contained by the engine,
// fails this request with the fault attached, and poisons the key for the
// rest of the epoch while every other key keeps serving.
type Handler func(s *Session, r *http.Request) (status int, body string)

// Config parameterizes a Server.
type Config struct {
	// Delegates sets the runtime's delegate-context pool size
	// (default GOMAXPROCS-1, the runtime's own default).
	Delegates int
	// Shards sets the latency-metric shard count: a key's set is metered
	// under shard set%Shards, bounding metric cardinality under unbounded
	// keys. Default 8.
	Shards int
	// MaxInflight is the admission budget: requests admitted past the
	// gates and not yet answered. Above it requests are rejected with 503
	// before touching the runtime. Default 1024.
	MaxInflight int
	// QueueDepth bounds the handler→router jobs channel; a full channel
	// rejects with 503 (backpressure, never unbounded buffering).
	// Default MaxInflight.
	QueueDepth int
	// Rate and Burst configure the per-set token bucket, in
	// requests/second and requests. Rate 0 disables rate limiting.
	Rate  float64
	Burst float64
	// EpochInterval is the rotation period — the poison-repair and
	// dropped-job-sweep cadence. Default 100ms.
	EpochInterval time.Duration
	// DrainTimeout bounds Drain: how long to wait for inflight requests
	// before logging a straggler report (with the scheduler dump) and
	// terminating anyway. Default 5s.
	DrainTimeout time.Duration
	// Handler executes requests; required.
	Handler Handler
	// KeyFunc extracts the request key. Default: header "X-Session-Key",
	// else query parameter "key", else the client address.
	KeyFunc func(r *http.Request) string
	// Logf receives drain and straggler reports. Default: discard.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.Handler == nil {
		return fmt.Errorf("serve: Config.Handler is required")
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.MaxInflight
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.KeyFunc == nil {
		c.KeyFunc = defaultKey
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

func defaultKey(r *http.Request) string {
	if k := r.Header.Get("X-Session-Key"); k != "" {
		return k
	}
	if k := r.URL.Query().Get("key"); k != "" {
		return k
	}
	return r.RemoteAddr
}

// Job outcomes, CAS-guarded: exactly one of the delegated closure's
// deferred finish, the router's poisoned-fast-path finish, and the epoch
// sweep wins, and the winner closes done.
const (
	outcomePending uint32 = iota
	outcomeServed         // handler ran (status/body are valid)
	outcomeFaulted        // handler panicked; fault contained, set poisoned
	outcomeDropped        // delegation dropped on a poisoned set (router fast path or engine seam + sweep)
)

type job struct {
	key     string
	set     uint64
	r       *http.Request
	status  int
	body    string
	outcome atomic.Uint32
	done    chan struct{}
	start   time.Time
}

// finish resolves the job to outcome o exactly once; the winning caller
// closes done and wakes the handler goroutine.
func (j *job) finish(o uint32) bool {
	if j.outcome.CompareAndSwap(outcomePending, o) {
		close(j.done)
		return true
	}
	return false
}

// Server is the serving tier instance. Create with New, expose Handler()
// on an http.Server, stop with Drain.
type Server struct {
	cfg     Config
	metrics *metrics
	limiter *limiter

	jobs     chan *job
	inflight atomic.Int64
	draining atomic.Bool

	// Router-private state (program context only).
	rt        *prometheus.Runtime
	w         *prometheus.Writable[routerState]
	sessions  map[uint64]*Session
	epochJobs []*job

	// statsSnap republishes the router's Stats() snapshot at each
	// rotation so the any-goroutine metrics scrape never calls Stats
	// itself (Stats reads program-private counters).
	statsSnap atomic.Pointer[prometheus.Stats]

	drainCh  chan chan struct{}
	routerWG chan struct{}
}

// routerState is the Writable payload. Per-key state lives in Session
// objects the router threads through delegated closures; the wrapper
// exists to address the delegation API, so its object is empty.
type routerState struct{}

// New validates cfg, starts the router goroutine (which owns the runtime:
// the goroutine that calls Init is the program context), and returns once
// the first isolation epoch is open and the server is accepting work.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(cfg.Shards),
		jobs:     make(chan *job, cfg.QueueDepth),
		sessions: make(map[uint64]*Session),
		drainCh:  make(chan chan struct{}),
		routerWG: make(chan struct{}),
	}
	if cfg.Rate > 0 {
		s.limiter = newLimiter(cfg.Rate, cfg.Burst)
	}
	ready := make(chan struct{})
	go s.router(ready)
	<-ready
	return s, nil
}

// router is the program context: it creates the runtime, keeps an
// isolation epoch open, delegates jobs, rotates epochs on a timer, and
// performs the final drain. It is the only goroutine that calls Runtime
// methods outside the documented any-goroutine query surface.
func (s *Server) router(ready chan struct{}) {
	defer close(s.routerWG)
	opts := []prometheus.Option{
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(),
		// Delegation batching is off: the batch buffer flushes on the
		// program context's NEXT runtime call, and this router parks in a
		// select between deliveries — a buffered tail would strand its
		// requests (handlers waiting on done channels) until the next
		// rotation. The jobs channel already amortizes the handoff.
		prometheus.WithDelegateBatch(1),
	}
	if s.cfg.Delegates > 0 {
		opts = append(opts, prometheus.WithDelegates(s.cfg.Delegates))
	}
	s.rt = prometheus.Init(opts...)
	s.w = prometheus.NewWritableSer(s.rt, routerState{}, prometheus.NullSerializer[routerState]())
	s.rt.BeginIsolation()
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
	close(ready)

	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for {
		select {
		case j := <-s.jobs:
			s.deliver(j)
		case <-tick.C:
			s.rotate()
		case ack := <-s.drainCh:
			s.drainRouter()
			close(ack)
			return
		}
	}
}

// deliver routes one job: poisoned fast path, session lookup, delegation.
// Program context only.
func (s *Server) deliver(j *job) {
	if s.rt.Poisoned(j.set) {
		// The epoch's poison landed before this job was delegated: fail it
		// now instead of paying the delegation just to drop it at a seam.
		if j.finish(outcomeDropped) {
			s.metrics.droppedJobs.Add(1)
		}
		return
	}
	sess := s.sessions[j.set]
	if sess == nil {
		sess = &Session{Key: j.key, Set: j.set, Data: make(map[string]string)}
		s.sessions[j.set] = sess
	}
	s.epochJobs = append(s.epochJobs, j)
	handler := s.cfg.Handler
	s.w.DelegateTo(j.set, func(_ *prometheus.Ctx, _ *routerState) {
		served := false
		// The deferred finish runs during panic unwinding BEFORE the
		// engine's containment recover, so a faulting request still
		// completes (as outcomeFaulted) and the panic still reaches the
		// engine to be recorded and to poison the set.
		defer func() {
			if served {
				j.finish(outcomeServed)
			} else {
				j.finish(outcomeFaulted)
			}
		}()
		sess.Seq++
		j.status, j.body = handler(sess, j.r)
		served = true
	})
}

// rotate closes the epoch and opens the next: the barrier proves the pool
// quiescent, the sweep resolves jobs whose delegations were dropped on a
// poison seam (their done channels would otherwise never close), the
// stats snapshot republishes, and BeginIsolation clears the poison table
// so faulted keys resume serving. Program context only.
func (s *Server) rotate() {
	s.rt.EndIsolation()
	for _, j := range s.epochJobs {
		if j.finish(outcomeDropped) {
			s.metrics.droppedJobs.Add(1)
		}
	}
	s.epochJobs = s.epochJobs[:0]
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
	s.rt.BeginIsolation()
}

// drainRouter is the router's shutdown path: keep serving until every
// admitted request is answered (admission is already closed, so inflight
// only shrinks), then barrier, sweep, and terminate. The admission
// handshake makes the inflight wait sound: a handler that passed the
// draining check raised the inflight counter BEFORE loading the flag
// (sequentially-consistent order: its Add precedes its false Load, which
// precedes Drain's Store, which precedes every Load below), so no request
// can slip in behind an observed zero. If stragglers outlast
// Config.DrainTimeout their count and the scheduler-ledger dump are
// logged — the dump reads program-private counters, which is why this
// wait runs on the router and not in Drain — and the wait then CONTINUES:
// abandoning it would drop accepted requests, the one thing drain exists
// to prevent. A handler operation that never returns therefore wedges the
// drain (as it would wedge the shutdown barrier); the straggler report is
// the diagnosis, and the Watchdog option turns the wedge itself into one.
func (s *Server) drainRouter() {
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	warned := false
	tick := time.NewTicker(s.cfg.EpochInterval)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		if !warned && time.Now().After(deadline) {
			warned = true
			s.cfg.Logf("serve: drain timeout: %d requests still inflight\n%s",
				s.inflight.Load(), s.rt.SchedDump())
		}
		select {
		case j := <-s.jobs:
			s.deliver(j)
		case <-tick.C:
			// Keep rotating while waiting: the epoch sweep is what resolves
			// jobs whose delegations were dropped on a poison seam, and a
			// handler parked on one of those counts as inflight.
			s.rotate()
		case <-time.After(time.Millisecond):
		}
	}
	for {
		select {
		case j := <-s.jobs:
			s.deliver(j)
			continue
		default:
		}
		break
	}
	s.rt.EndIsolation()
	for _, j := range s.epochJobs {
		if j.finish(outcomeDropped) {
			s.metrics.droppedJobs.Add(1)
		}
	}
	s.epochJobs = nil
	st := s.rt.Stats()
	s.statsSnap.Store(&st)
	s.rt.Terminate()
}

// Drain gracefully stops the server: admission closes (new requests get
// 503), every admitted request is served to completion, the router runs
// its final barrier — sweeping any poison-dropped jobs — and terminates
// the runtime. Call after the HTTP listener has stopped accepting new
// connections; call once.
func (s *Server) Drain() error {
	s.draining.Store(true)
	ack := make(chan struct{})
	s.drainCh <- ack
	<-ack
	<-s.routerWG
	if n := s.inflight.Load(); n > 0 {
		return fmt.Errorf("serve: drained with %d requests unanswered", n)
	}
	return nil
}

// Stats returns the most recent epoch-rotation snapshot of the runtime
// counters. Safe from any goroutine.
func (s *Server) Stats() prometheus.Stats { return *s.statsSnap.Load() }
