package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testHandler is the ordering probe: it returns the session's sequence
// number, which only per-key serialization keeps consistent — two
// requests for one key racing on a mutable Session would corrupt or
// duplicate it immediately under -race.
func testHandler(s *Session, r *http.Request) (int, string) {
	if r.Header.Get("X-Boom") == "1" {
		panic(fmt.Sprintf("chaos for key %q", s.Key))
	}
	s.Data["last"] = s.Key
	return http.StatusOK, fmt.Sprintf("%d", s.Seq)
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Handler == nil && cfg.Backend == nil {
		cfg.Handler = testHandler
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get issues one request through the server's public handler surface.
func get(t *testing.T, h http.Handler, path, key string, hdr map[string]string) (int, string) {
	t.Helper()
	r := httptest.NewRequest("GET", path, nil)
	r.Header.Set("X-Session-Key", key)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.String()
}

// TestPerKeyOrdering is the serving-tier correctness core: concurrent
// clients on a skewed key distribution (a few hot keys taking most of the
// traffic, exercising the whole-set stealer) must observe per-key causal
// order — a client that received sequence N and then sends another
// request for the same key must receive a sequence greater than N, and
// across all clients each key's sequences must be exactly 1..count with
// no duplicates (each request executed exactly once, serialized).
func TestPerKeyOrdering(t *testing.T) {
	s := newTestServer(t, Config{EpochInterval: 5 * time.Millisecond})
	h := s.Handler()

	const (
		hotClients  = 6 // share 2 hot keys — cross-client contention
		coldClients = 8 // one key each
		perClient   = 150
	)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = map[string][]int{} // key -> all sequence numbers returned
	)
	client := func(key string) {
		defer wg.Done()
		last := -1
		for i := 0; i < perClient; i++ {
			code, body := get(t, h, "/bump", key, nil)
			if code != http.StatusOK {
				t.Errorf("key %s: status %d body %q", key, code, body)
				return
			}
			seq := 0
			fmt.Sscanf(body, "%d", &seq)
			if seq <= last {
				t.Errorf("key %s: sequence went %d -> %d; per-key order violated", key, last, seq)
				return
			}
			last = seq
			mu.Lock()
			seen[key] = append(seen[key], seq)
			mu.Unlock()
		}
	}
	for i := 0; i < hotClients; i++ {
		wg.Add(1)
		go client(fmt.Sprintf("hot-%d", i%2))
	}
	for i := 0; i < coldClients; i++ {
		wg.Add(1)
		go client(fmt.Sprintf("cold-%d", i))
	}
	wg.Wait()

	for key, seqs := range seen {
		got := map[int]bool{}
		for _, q := range seqs {
			if got[q] {
				t.Errorf("key %s: sequence %d returned twice (double execution)", key, q)
			}
			got[q] = true
		}
		for want := 1; want <= len(seqs); want++ {
			if !got[want] {
				t.Errorf("key %s: sequence %d missing from 1..%d", key, want, len(seqs))
				break
			}
		}
	}
	if err := s.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestGracefulDrainCompleteness checks the drain contract: every request
// admitted before (or racing) Drain gets a definitive response — no
// accepted request is dropped without an answer, no handler goroutine
// hangs — and requests arriving after the flag see a clean 503.
func TestGracefulDrainCompleteness(t *testing.T) {
	s := newTestServer(t, Config{
		EpochInterval: 5 * time.Millisecond,
		Handler: func(sess *Session, r *http.Request) (int, string) {
			time.Sleep(200 * time.Microsecond) // widen the drain race window
			return http.StatusOK, fmt.Sprintf("%d", sess.Seq)
		},
	})
	h := s.Handler()

	const clients, perClient = 16, 50
	var (
		wg       sync.WaitGroup
		answered atomic.Uint64
		rejected atomic.Uint64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				code, body := get(t, h, "/bump", fmt.Sprintf("key-%d", i%5), nil)
				switch code {
				case http.StatusOK:
					answered.Add(1)
				case http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					t.Errorf("unexpected status %d body %q", code, body)
				}
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let load build, then drain mid-flight
	if err := s.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("clients still blocked after drain: an accepted request never got a response")
	}
	if total := answered.Load() + rejected.Load(); total != clients*perClient {
		t.Errorf("answered %d + rejected %d = %d, want %d (a request vanished)",
			answered.Load(), rejected.Load(), answered.Load()+rejected.Load(), clients*perClient)
	}
	if answered.Load() == 0 {
		t.Error("no request was answered before the drain")
	}
}

// TestPoisonedSessionIsolation checks fault containment end to end at the
// HTTP surface: a chaos request 500s with the fault attached, follow-up
// requests for the poisoned key fail fast with the same detail while
// sibling keys keep serving, and the key heals after an epoch rotation.
func TestPoisonedSessionIsolation(t *testing.T) {
	s := newTestServer(t, Config{EpochInterval: time.Hour}) // rotation only when forced below
	h := s.Handler()

	// Warm the victim and a sibling.
	if code, _ := get(t, h, "/bump", "victim", nil); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}
	// The chaos request: its own response must be a 500 carrying the fault.
	code, body := get(t, h, "/bump", "victim", map[string]string{"X-Boom": "1"})
	if code != http.StatusInternalServerError {
		t.Fatalf("chaos request: status %d body %q, want 500", code, body)
	}
	if !strings.Contains(body, "chaos for key") {
		t.Errorf("chaos 500 body lacks fault detail: %q", body)
	}

	// Follow-ups on the poisoned key fail fast, with detail; siblings and
	// concurrent traffic are untouched.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				code, body := get(t, h, "/bump", fmt.Sprintf("sibling-%d", i), nil)
				if code != http.StatusOK {
					t.Errorf("sibling-%d: status %d body %q while victim poisoned", i, code, body)
					return
				}
			}
		}(i)
	}
	for j := 0; j < 5; j++ {
		code, body := get(t, h, "/bump", "victim", nil)
		if code != http.StatusInternalServerError {
			t.Errorf("poisoned key: status %d, want 500", code)
		}
		if !strings.Contains(body, "poisoned") || !strings.Contains(body, "chaos for key") {
			t.Errorf("poisoned 500 body lacks detail: %q", body)
		}
	}
	wg.Wait()

	// Metrics must show the contained panic.
	if st := s.Stats(); st.Panics == 0 && s.metrics.poisonRejects.Load() == 0 {
		// Stats snapshot refreshes at rotation; the reject counter is live.
		t.Error("no trace of the contained panic in metrics")
	}

	// Drain performs the final rotation; before it the victim stays
	// poisoned. A fresh server epoch clears poison — exercise via a short
	// rotation server.
	if err := s.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}

	s2 := newTestServer(t, Config{EpochInterval: 5 * time.Millisecond})
	h2 := s2.Handler()
	if code, _ := get(t, h2, "/bump", "victim", map[string]string{"X-Boom": "1"}); code != http.StatusInternalServerError {
		t.Fatalf("chaos request on s2: status %d, want 500", code)
	}
	healed := false
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		if code, _ := get(t, h2, "/bump", "victim", nil); code == http.StatusOK {
			healed = true
			break
		}
	}
	if !healed {
		t.Error("poisoned key never healed across epoch rotations")
	}
	if err := s2.Drain(); err != nil {
		t.Errorf("drain s2: %v", err)
	}
}

// TestAdmissionAndRateLimiting checks the reject gates: the token bucket
// 429s a hammered key without touching its siblings, and queue-full
// backpressure 503s instead of buffering without bound.
func TestAdmissionAndRateLimiting(t *testing.T) {
	s := newTestServer(t, Config{
		EpochInterval: 5 * time.Millisecond,
		Rate:          1, // one request/sec per key
		Burst:         2,
	})
	h := s.Handler()

	var ok, limited int
	for i := 0; i < 10; i++ {
		code, _ := get(t, h, "/bump", "hammered", nil)
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Errorf("status %d", code)
		}
	}
	if ok == 0 || limited == 0 {
		t.Errorf("burst=2 rate=1: served %d limited %d, want both nonzero", ok, limited)
	}
	if code, _ := get(t, h, "/bump", "innocent", nil); code != http.StatusOK {
		t.Errorf("sibling key rate-limited alongside the hammered one")
	}
	if s.metrics.rateRejects.Load() == 0 {
		t.Error("rate rejects not counted")
	}
	if err := s.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}

	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a config with no handler")
	}
}

// TestMetricsExposition smoke-tests the hand-written Prometheus text
// format: drive traffic (including a fault), scrape, and check the
// per-shard latency histograms, queue-depth histogram, and counters all
// render.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{EpochInterval: 5 * time.Millisecond, Shards: 4})
	h := s.Handler()
	for i := 0; i < 40; i++ {
		get(t, h, "/bump", fmt.Sprintf("key-%d", i%7), nil)
	}
	get(t, h, "/bump", "chaos", map[string]string{"X-Boom": "1"})
	for i := 0; i < 200 && s.Stats().Panics == 0; i++ {
		time.Sleep(5 * time.Millisecond) // wait for a rotation to republish stats
	}

	code, body := get(t, h, "/metrics", "scraper", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"ss_requests_served_total",
		"ss_request_latency_microseconds_bucket{shard=\"0\",le=\"50\"}",
		"ss_request_latency_microseconds_quantile{shard=\"3\",q=\"0.99\"}",
		"ss_jobs_queue_depth_bucket{le=\"+Inf\"}",
		"ss_delegate_backlog{delegate=\"1\"}",
		"ss_runtime_panics_total 1",
		"ss_runtime_epochs_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get(t, h, "/healthz", "probe", nil); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if err := s.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}
	if code, _ := get(t, h, "/healthz", "probe", nil); code != http.StatusServiceUnavailable {
		t.Error("healthz not 503 after drain")
	}
}
