// Package nbody implements the Barnes–Hut N-body kernel (octree
// construction, multipole-approximate force evaluation, leapfrog
// integration) used by the barnes-hut benchmark. The structure follows the
// Lonestar benchmark the paper ports: per step, a sequential tree build
// followed by a parallel force/update phase over the bodies, with the tree
// read-only during the parallel phase.
package nbody

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Body is a point mass with state.
type Body struct {
	Pos, Vel, Acc Vec3
	Mass          float64
}

// Simulation parameters, matching typical Barnes-Hut settings.
const (
	Theta   = 0.5  // opening angle
	Dt      = 0.05 // time step
	Soften2 = 0.05 // softening epsilon^2, avoids singular close encounters
	G       = 1.0  // gravitational constant (natural units)
)

// leafEntry is a leaf occupant: a snapshot of the body's position and mass
// taken at build time, plus the body's identity for self-exclusion. Storing
// copies makes the finished tree fully immutable, so force evaluation can
// overlap with integration of other bodies without reading updated state.
type leafEntry struct {
	Pos  Vec3
	Mass float64
	Ref  *Body
}

// Node is an octree cell: either a leaf holding one body (or several
// coincident ones) or an internal node with up to eight children, carrying
// total mass and center of mass.
type Node struct {
	Center   Vec3    // geometric center of the cell
	Half     float64 // half the cell edge length
	Mass     float64
	COM      Vec3        // center of mass (valid after finalize)
	Entries  []leafEntry // leaf occupants; len > 1 only for coincident positions
	Children [8]*Node
	leaf     bool
}

// BuildTree constructs the octree over the bodies. The tree is immutable
// after construction (read-only in parallel phases).
func BuildTree(bodies []*Body) *Node {
	if len(bodies) == 0 {
		return nil
	}
	// Bounding cube.
	min, max := bodies[0].Pos, bodies[0].Pos
	for _, b := range bodies[1:] {
		min.X = math.Min(min.X, b.Pos.X)
		min.Y = math.Min(min.Y, b.Pos.Y)
		min.Z = math.Min(min.Z, b.Pos.Z)
		max.X = math.Max(max.X, b.Pos.X)
		max.Y = math.Max(max.Y, b.Pos.Y)
		max.Z = math.Max(max.Z, b.Pos.Z)
	}
	center := min.Add(max).Scale(0.5)
	half := math.Max(max.X-min.X, math.Max(max.Y-min.Y, max.Z-min.Z))/2 + 1e-9
	root := &Node{Center: center, Half: half, leaf: true}
	for _, b := range bodies {
		root.insert(leafEntry{Pos: b.Pos, Mass: b.Mass, Ref: b})
	}
	root.finalize()
	return root
}

// octant returns the child index for a position within the cell.
func (n *Node) octant(p Vec3) int {
	i := 0
	if p.X >= n.Center.X {
		i |= 1
	}
	if p.Y >= n.Center.Y {
		i |= 2
	}
	if p.Z >= n.Center.Z {
		i |= 4
	}
	return i
}

func (n *Node) childCell(i int) *Node {
	h := n.Half / 2
	c := n.Center
	if i&1 != 0 {
		c.X += h
	} else {
		c.X -= h
	}
	if i&2 != 0 {
		c.Y += h
	} else {
		c.Y -= h
	}
	if i&4 != 0 {
		c.Z += h
	} else {
		c.Z -= h
	}
	return &Node{Center: c, Half: h, leaf: true}
}

func (n *Node) insert(e leafEntry) {
	if n.leaf {
		if len(n.Entries) == 0 {
			n.Entries = append(n.Entries, e)
			return
		}
		// Coincident positions (or a vanishing cell) would split forever;
		// keep them together in the leaf.
		if n.Entries[0].Pos == e.Pos || n.Half < 1e-12 {
			n.Entries = append(n.Entries, e)
			return
		}
		// Split: push the resident entries down, then fall through to
		// insert e.
		old := n.Entries
		n.Entries = nil
		n.leaf = false
		for _, oe := range old {
			oi := n.octant(oe.Pos)
			if n.Children[oi] == nil {
				n.Children[oi] = n.childCell(oi)
			}
			n.Children[oi].insert(oe)
		}
	}
	i := n.octant(e.Pos)
	if n.Children[i] == nil {
		n.Children[i] = n.childCell(i)
	}
	n.Children[i].insert(e)
}

// finalize computes mass and center of mass bottom-up.
func (n *Node) finalize() {
	if n.leaf {
		for _, e := range n.Entries {
			n.Mass += e.Mass
		}
		if len(n.Entries) > 0 {
			n.COM = n.Entries[0].Pos
		}
		return
	}
	var com Vec3
	for _, c := range n.Children {
		if c == nil {
			continue
		}
		c.finalize()
		n.Mass += c.Mass
		com = com.Add(c.COM.Scale(c.Mass))
	}
	if n.Mass > 0 {
		n.COM = com.Scale(1 / n.Mass)
	}
}

// Force computes the Barnes-Hut approximate gravitational acceleration on a
// body. The tree is only read; Force on different bodies may run
// concurrently.
func (n *Node) Force(b *Body) Vec3 {
	if n == nil || n.Mass == 0 {
		return Vec3{}
	}
	if n.leaf {
		var sum Vec3
		for _, e := range n.Entries {
			if e.Ref != b {
				sum = sum.Add(accel(b.Pos, e.Pos, e.Mass))
			}
		}
		return sum
	}
	d := n.COM.Sub(b.Pos)
	dist2 := d.Norm2() + Soften2
	size := 2 * n.Half
	if size*size < Theta*Theta*dist2 {
		return accel(b.Pos, n.COM, n.Mass) // cell is far: use its multipole
	}
	var sum Vec3
	for _, c := range n.Children {
		if c != nil {
			sum = sum.Add(c.Force(b))
		}
	}
	return sum
}

func accel(at, from Vec3, mass float64) Vec3 {
	d := from.Sub(at)
	dist2 := d.Norm2() + Soften2
	inv := 1 / math.Sqrt(dist2)
	return d.Scale(G * mass * inv * inv * inv)
}

// Integrate advances a body one leapfrog step with the given acceleration.
func Integrate(b *Body, acc Vec3) {
	b.Acc = acc
	b.Vel = b.Vel.Add(acc.Scale(Dt))
	b.Pos = b.Pos.Add(b.Vel.Scale(Dt))
}

// BruteForce computes the exact O(N^2) acceleration on body i — the test
// oracle for the approximate tree force.
func BruteForce(bodies []*Body, i int) Vec3 {
	var sum Vec3
	for j, o := range bodies {
		if j == i {
			continue
		}
		sum = sum.Add(accel(bodies[i].Pos, o.Pos, o.Mass))
	}
	return sum
}

// Count returns the number of bodies in the subtree (test helper).
func (n *Node) Count() int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return len(n.Entries)
	}
	total := 0
	for _, c := range n.Children {
		total += c.Count()
	}
	return total
}
