package nbody

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func makeBodies(seed int64, n int) []*Body {
	gen := workload.GenerateBodies(workload.NBodyConfig{Seed: seed, Bodies: n})
	bodies := make([]*Body, n)
	for i, g := range gen {
		bodies[i] = &Body{
			Pos:  Vec3{g.PX, g.PY, g.PZ},
			Vel:  Vec3{g.VX, g.VY, g.VZ},
			Mass: g.Mass,
		}
	}
	return bodies
}

func TestVecOps(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("Add/Sub wrong")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) || a.Norm2() != 14 {
		t.Fatal("Scale/Norm2 wrong")
	}
}

func TestTreeHoldsAllBodies(t *testing.T) {
	bodies := makeBodies(1, 2000)
	root := BuildTree(bodies)
	if got := root.Count(); got != 2000 {
		t.Fatalf("tree holds %d bodies, want 2000", got)
	}
}

func TestTreeMassConservation(t *testing.T) {
	bodies := makeBodies(2, 1000)
	root := BuildTree(bodies)
	var want float64
	for _, b := range bodies {
		want += b.Mass
	}
	if math.Abs(root.Mass-want) > 1e-6*want {
		t.Fatalf("tree mass %f, want %f", root.Mass, want)
	}
	// COM matches direct computation.
	var com Vec3
	for _, b := range bodies {
		com = com.Add(b.Pos.Scale(b.Mass))
	}
	com = com.Scale(1 / want)
	if d := com.Sub(root.COM).Norm2(); d > 1e-9 {
		t.Fatalf("COM off by %e", d)
	}
}

func TestCoincidentBodies(t *testing.T) {
	p := Vec3{1, 1, 1}
	bodies := []*Body{
		{Pos: p, Mass: 2},
		{Pos: p, Mass: 3},
		{Pos: Vec3{5, 5, 5}, Mass: 1},
	}
	root := BuildTree(bodies)
	if root.Count() != 3 {
		t.Fatalf("count = %d, want 3", root.Count())
	}
	if math.Abs(root.Mass-6) > 1e-12 {
		t.Fatalf("mass = %f, want 6", root.Mass)
	}
	// Force on the far body must see the combined mass; force between
	// coincident bodies must exclude self.
	f := root.Force(bodies[2])
	if f.Norm2() == 0 {
		t.Fatal("no force on far body")
	}
}

func TestForceApproximatesBruteForce(t *testing.T) {
	bodies := makeBodies(3, 800)
	root := BuildTree(bodies)
	r := rand.New(rand.NewSource(4))
	var relErrSum float64
	samples := 50
	for s := 0; s < samples; s++ {
		i := r.Intn(len(bodies))
		approx := root.Force(bodies[i])
		exact := BruteForce(bodies, i)
		diff := approx.Sub(exact)
		relErr := math.Sqrt(diff.Norm2() / (exact.Norm2() + 1e-12))
		relErrSum += relErr
	}
	if mean := relErrSum / float64(samples); mean > 0.05 {
		t.Fatalf("mean relative force error %.3f > 5%%", mean)
	}
}

func TestIntegrateMovesBody(t *testing.T) {
	b := &Body{Pos: Vec3{0, 0, 0}, Vel: Vec3{1, 0, 0}, Mass: 1}
	Integrate(b, Vec3{0, 1, 0})
	if b.Pos.X <= 0 || b.Pos.Y <= 0 {
		t.Fatalf("body did not move: %+v", b.Pos)
	}
	if b.Acc != (Vec3{0, 1, 0}) {
		t.Fatal("acceleration not recorded")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if BuildTree(nil) != nil {
		t.Fatal("empty tree should be nil")
	}
	one := []*Body{{Pos: Vec3{1, 2, 3}, Mass: 5}}
	root := BuildTree(one)
	if root.Count() != 1 || root.Mass != 5 {
		t.Fatal("single-body tree wrong")
	}
	if f := root.Force(one[0]); f.Norm2() != 0 {
		t.Fatal("self-force must be zero")
	}
}

func TestEnergyBounded(t *testing.T) {
	// A few leapfrog steps should not blow the system up (soften2 > 0).
	bodies := makeBodies(5, 300)
	for step := 0; step < 5; step++ {
		root := BuildTree(bodies)
		accs := make([]Vec3, len(bodies))
		for i, b := range bodies {
			accs[i] = root.Force(b)
		}
		for i, b := range bodies {
			Integrate(b, accs[i])
		}
	}
	for i, b := range bodies {
		if math.IsNaN(b.Pos.X) || math.IsInf(b.Pos.X, 0) {
			t.Fatalf("body %d diverged: %+v", i, b.Pos)
		}
	}
}
