// Package vfs provides the in-memory file system used by reverse_index.
// The paper's benchmark reads a 100 MB–1 GB directory tree of HTML files
// from disk; a hermetic in-memory tree exercises the same program structure
// (recursive directory traversal interleaved with per-file work) without
// I/O noise or external data, and makes the benchmark deterministic.
package vfs

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// File is a leaf node.
type File struct {
	Path    string
	Content []byte
}

// Dir is an internal node. Children are kept sorted so traversal order is
// deterministic.
type Dir struct {
	Path  string
	Dirs  []*Dir
	Files []*File
}

// FS is a rooted in-memory tree.
type FS struct {
	Root     *Dir
	NumFiles int
}

// FromHTMLTree builds an FS from a generated HTML corpus.
func FromHTMLTree(t *workload.HTMLTree) *FS {
	dirs := map[string]*Dir{}
	var build func(path string) *Dir
	build = func(path string) *Dir {
		d := &Dir{Path: path}
		dirs[path] = d
		children := append([]string(nil), t.DirChildren[path]...)
		sort.Strings(children)
		for _, c := range children {
			d.Dirs = append(d.Dirs, build(c))
		}
		files := append([]*workload.HTMLDoc(nil), t.DirFiles[path]...)
		sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
		for _, f := range files {
			d.Files = append(d.Files, &File{Path: f.Path, Content: f.Content})
		}
		return d
	}
	fs := &FS{Root: build("/")}
	fs.NumFiles = len(t.Docs)
	return fs
}

// statCost emulates the metadata work (readdir + stat + open) a real file
// system charges per directory entry. The paper's reverse_index walks a
// disk-resident tree, and it is precisely this walk cost that the
// serialization-sets version overlaps with delegated link extraction
// (§3.2); an in-memory tree with a free walk would erase the effect being
// reproduced. The cost is a deterministic hash over the path, sized to a
// few microseconds — the page-cache-hit cost of stat+open on Linux.
func statCost(path string) uint64 {
	const rounds = 48
	h := uint64(14695981039346656037)
	for r := 0; r < rounds; r++ {
		for i := 0; i < len(path); i++ {
			h ^= uint64(path[i])
			h *= 1099511628211
		}
	}
	return h
}

// statSink defeats dead-code elimination of statCost.
var statSink uint64

// Walk visits every file in deterministic depth-first order, charging the
// simulated metadata cost per directory and file entry.
func (fs *FS) Walk(visit func(*File)) {
	var rec func(d *Dir)
	rec = func(d *Dir) {
		statSink += statCost(d.Path)
		for _, f := range d.Files {
			statSink += statCost(f.Path)
			visit(f)
		}
		for _, sub := range d.Dirs {
			rec(sub)
		}
	}
	rec(fs.Root)
}

// Lookup finds a directory by path; nil if absent.
func (fs *FS) Lookup(path string) *Dir {
	var found *Dir
	var rec func(d *Dir)
	rec = func(d *Dir) {
		if d.Path == path {
			found = d
			return
		}
		for _, sub := range d.Dirs {
			if found == nil {
				rec(sub)
			}
		}
	}
	rec(fs.Root)
	return found
}

// Stats returns a short human-readable summary.
func (fs *FS) Stats() string {
	files, bytes, dirs := 0, 0, 0
	var rec func(d *Dir)
	rec = func(d *Dir) {
		dirs++
		for _, f := range d.Files {
			files++
			bytes += len(f.Content)
		}
		for _, sub := range d.Dirs {
			rec(sub)
		}
	}
	rec(fs.Root)
	return fmt.Sprintf("%d dirs, %d files, %d bytes", dirs, files, bytes)
}
