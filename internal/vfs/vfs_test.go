package vfs

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestWalkVisitsAllFilesOnce(t *testing.T) {
	tree := workload.GenerateHTMLTree(workload.HTMLSize(workload.Small))
	fs := FromHTMLTree(tree)
	if fs.NumFiles != len(tree.Docs) {
		t.Fatalf("NumFiles = %d, want %d", fs.NumFiles, len(tree.Docs))
	}
	seen := map[string]int{}
	fs.Walk(func(f *File) { seen[f.Path]++ })
	if len(seen) != len(tree.Docs) {
		t.Fatalf("walk saw %d files, want %d", len(seen), len(tree.Docs))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("file %s visited %d times", p, n)
		}
	}
}

func TestWalkOrderDeterministic(t *testing.T) {
	tree := workload.GenerateHTMLTree(workload.HTMLSize(workload.Small))
	order := func() []string {
		fs := FromHTMLTree(tree)
		var paths []string
		fs.Walk(func(f *File) { paths = append(paths, f.Path) })
		return paths
	}
	a, b := order(), order()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Files within one directory must be sorted.
	byDir := map[string][]string{}
	for _, p := range a {
		dir := p[:strings.LastIndex(p, "/")]
		byDir[dir] = append(byDir[dir], p)
	}
	for dir, files := range byDir {
		if !sort.StringsAreSorted(files) {
			t.Fatalf("files in %s not sorted: %v", dir, files)
		}
	}
}

func TestLookup(t *testing.T) {
	tree := workload.GenerateHTMLTree(workload.HTMLSize(workload.Small))
	fs := FromHTMLTree(tree)
	if fs.Lookup("/") != fs.Root {
		t.Fatal("Lookup(/) should return root")
	}
	if fs.Lookup("/definitely/not/there") != nil {
		t.Fatal("Lookup of missing path should return nil")
	}
	if len(fs.Root.Dirs) > 0 {
		sub := fs.Root.Dirs[0]
		if fs.Lookup(sub.Path) != sub {
			t.Fatalf("Lookup(%s) failed", sub.Path)
		}
	}
}

func TestStats(t *testing.T) {
	tree := workload.GenerateHTMLTree(workload.HTMLSize(workload.Small))
	fs := FromHTMLTree(tree)
	s := fs.Stats()
	if !strings.Contains(s, "files") || !strings.Contains(s, "dirs") {
		t.Fatalf("Stats = %q", s)
	}
}
