package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	return data
}

func TestSplitReassembles(t *testing.T) {
	data := randomData(1, 1<<20)
	chunks := Split(data)
	var joined []byte
	for i, c := range chunks {
		if c.Seq != i {
			t.Fatalf("chunk %d has Seq %d", i, c.Seq)
		}
		joined = append(joined, c.Data...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("chunks do not reassemble to input")
	}
}

func TestChunkBounds(t *testing.T) {
	data := randomData(2, 1<<20)
	chunks := Split(data)
	if len(chunks) < 2 {
		t.Fatalf("only %d chunks for 1 MB", len(chunks))
	}
	for i, c := range chunks {
		if len(c.Data) > MaxChunk {
			t.Fatalf("chunk %d exceeds max: %d", i, len(c.Data))
		}
		if i < len(chunks)-1 && len(c.Data) < MinChunk {
			t.Fatalf("non-final chunk %d below min: %d", i, len(c.Data))
		}
	}
}

func TestMeanChunkSizeReasonable(t *testing.T) {
	data := randomData(3, 4<<20)
	chunks := Split(data)
	mean := len(data) / len(chunks)
	// Target mean is ~4 KB (divisor 1<<12) clipped by min/max; accept a
	// generous band.
	if mean < 2<<10 || mean > 16<<10 {
		t.Fatalf("mean chunk = %d bytes, want ~4KB", mean)
	}
}

// TestShiftInvariance is the content-defined property: inserting a prefix
// shifts chunk boundaries locally, and chunking realigns — most chunks of
// the shifted stream also appear in the original.
func TestShiftInvariance(t *testing.T) {
	data := randomData(4, 1<<20)
	orig := map[uint64]bool{}
	for _, c := range Split(data) {
		orig[Fingerprint64(c.Data)] = true
	}
	shifted := append(randomData(5, 100), data...)
	matched, total := 0, 0
	for _, c := range Split(shifted) {
		total++
		if orig[Fingerprint64(c.Data)] {
			matched++
		}
	}
	if matched < total*7/10 {
		t.Fatalf("only %d/%d chunks realigned after shift", matched, total)
	}
}

func TestDeterministic(t *testing.T) {
	data := randomData(6, 1<<19)
	a, b := Split(data), Split(data)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestSmallInputs(t *testing.T) {
	for _, n := range []int{0, 1, MinChunk - 1, MinChunk, MinChunk + 1} {
		data := randomData(7, n)
		chunks := Split(data)
		var joined []byte
		for _, c := range chunks {
			joined = append(joined, c.Data...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("n=%d: reassembly failed", n)
		}
		if n == 0 && len(chunks) != 0 {
			t.Fatal("empty input should produce no chunks")
		}
	}
}

func TestQuickReassembly(t *testing.T) {
	f := func(data []byte) bool {
		var joined []byte
		for _, c := range Split(data) {
			joined = append(joined, c.Data...)
		}
		return bytes.Equal(joined, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	if Fingerprint64([]byte("abc")) == Fingerprint64([]byte("abd")) {
		t.Fatal("fingerprint collision on near inputs")
	}
	if Fingerprint64(nil) != Fingerprint64([]byte{}) {
		t.Fatal("nil and empty should hash equal")
	}
}
