// Package chunker implements content-defined chunking for the dedup
// benchmark, in the style of the PARSEC dedup kernel: a rolling hash over a
// fixed window declares a chunk boundary whenever the hash matches a magic
// value modulo a divisor, so boundaries depend only on content (insertions
// shift boundaries locally instead of re-aligning the whole stream).
//
// The rolling hash is a buzhash (cyclic polynomial): per-byte update is two
// rotates and two table lookups, and the window contribution of the oldest
// byte cancels exactly.
package chunker

// Parameters of the chunker. With divisor 1<<12 the mean chunk is ~4 KB,
// bracketed by the min/max bounds like PARSEC's dedup.
const (
	WindowSize = 48
	MinChunk   = 1 << 10 // 1 KB
	MaxChunk   = 1 << 15 // 32 KB
	divisor    = 1 << 12
	magic      = divisor - 1
)

// table is the buzhash byte-randomization table, filled deterministically
// from a SplitMix64 stream at package init.
var table [256]uint64

func init() {
	x := uint64(0x243F6A8885A308D3) // pi digits; any fixed seed works
	for i := range table {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		table[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Chunk is one content-defined piece of the input stream.
type Chunk struct {
	Seq  int // position in the stream, 0-based
	Data []byte
}

// Split cuts data into content-defined chunks. Every byte of data appears in
// exactly one chunk, in order. Chunks are slices into data (no copy).
func Split(data []byte) []Chunk {
	var chunks []Chunk
	start := 0
	for start < len(data) {
		end := boundary(data[start:])
		chunks = append(chunks, Chunk{Seq: len(chunks), Data: data[start : start+end]})
		start += end
	}
	return chunks
}

// boundary returns the length of the next chunk beginning at data[0].
func boundary(data []byte) int {
	n := len(data)
	if n <= MinChunk {
		return n
	}
	limit := n
	if limit > MaxChunk {
		limit = MaxChunk
	}
	var h uint64
	// Prime the window over the bytes leading up to the minimum boundary.
	begin := MinChunk - WindowSize
	for i := begin; i < MinChunk; i++ {
		h = rotl(h, 1) ^ table[data[i]]
	}
	for i := MinChunk; i < limit; i++ {
		if h&(divisor-1) == magic {
			return i
		}
		// Slide: remove data[i-WindowSize], add data[i].
		h = rotl(h, 1) ^ rotl(table[data[i-WindowSize]], WindowSize) ^ table[data[i]]
	}
	return limit
}

// Fingerprint64 is an FNV-1a hash used for quick chunk identity in tests and
// load metrics (the dedup app itself uses SHA-1 for collision resistance).
func Fingerprint64(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
