package harness

import "testing"

// The A7 workload must survive every injection rate — a wedged barrier
// would hang these. (A6's recursiveSkewed would NOT pass the faulty rows:
// its wave throttle spin-waits on marker operations that poisoning drops;
// see the A7 comment in experiments.go.)
func TestChaosWorkloadSurvives(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
	}{
		{"control", 0},
		{"low", 0.005},
		{"high", 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := chaosSkewed(chaosOpt(tc.p))
			if tc.p == 0 && st.Panics != 0 {
				t.Errorf("control row contained %d panics, want 0", st.Panics)
			}
			if tc.p > 0 && st.Panics == 0 {
				t.Errorf("p=%g row contained no panics", tc.p)
			}
		})
	}
}
