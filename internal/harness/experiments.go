package harness

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	prometheus "repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	Size workload.SizeClass
	Reps int // timing repetitions, best-of
	Apps []string
	// StealThreshold overrides the victim backlog at which the stealing
	// ablations engage (0 = the runtime's adaptive default). Plumbed from
	// ssbench's -steal-threshold flag so the A5/A6 tables can sweep it.
	StealThreshold int
}

// stealOpts returns the stealing option set the ablations run under.
func (o Options) stealOpts() []prometheus.Option {
	opts := []prometheus.Option{prometheus.WithPolicy(prometheus.LeastLoaded), prometheus.WithStealing()}
	if o.StealThreshold > 0 {
		opts = append(opts, prometheus.WithStealThreshold(o.StealThreshold))
	}
	return opts
}

// Table2 prints the benchmark inventory (paper Table 2), instantiating each
// input so the printed parameters are the real generated ones.
func Table2(w io.Writer, opts Options) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: benchmarks (size class %s)\n", opts.Size)
	fmt.Fprintf(w, "%-14s %-13s %-20s %s\n", "Program", "Source", "Description", "Input")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		fmt.Fprintf(w, "%-14s %-13s %-20s %s\n", app.Name, app.Source, app.Desc, inst.Desc)
	}
	return nil
}

// Table3 prints the emulated machine configurations.
func Table3(w io.Writer) {
	fmt.Fprintf(w, "Table 3: machine configurations (emulated as context counts on this host, GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-14s %-9s %s\n", "Config", "Contexts", "Paper hardware")
	for _, m := range Machines {
		fmt.Fprintf(w, "%-14s %-9d %s\n", m.Name, m.Contexts, m.Paper)
	}
}

// Fig4 reproduces Figure 4: speedup of the conventional-parallel (CP) and
// serialization-sets (SS) implementations over the sequential program, for
// every benchmark on every machine configuration, with harmonic means.
func Fig4(w io.Writer, opts Options) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: speedup over sequential (size %s, best of %d)\n", opts.Size, opts.Reps)
	Table3(w)
	fmt.Fprintf(w, "\n%-18s", "config")
	for _, app := range apps {
		fmt.Fprintf(w, "%14s", app.Name)
	}
	fmt.Fprintf(w, "%10s\n", "H_MEAN")

	type row struct {
		label    string
		speedups []float64
	}
	var rows []row
	for _, m := range Machines {
		rows = append(rows,
			row{label: m.Name + " CP"},
			row{label: m.Name + " SS"},
		)
	}
	for _, app := range apps {
		inst := app.Load(opts.Size)
		seq := TimeBest(opts.Reps, inst.Seq)
		for mi, m := range Machines {
			workers, delegates := m.Contexts, m.Contexts-1
			cp := TimeBest(opts.Reps, func() { inst.CP(workers) })
			ss := TimeBest(opts.Reps, func() { inst.SS(delegates) })
			rows[2*mi].speedups = append(rows[2*mi].speedups, Speedup(seq, cp))
			rows[2*mi+1].speedups = append(rows[2*mi+1].speedups, Speedup(seq, ss))
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s", r.label)
		for _, s := range r.speedups {
			fmt.Fprintf(w, "%14.1f", s)
		}
		fmt.Fprintf(w, "%10.1f\n", HarmonicMean(r.speedups))
	}
	return nil
}

// Fig5a reproduces Figure 5a: the fraction of execution time each SS
// benchmark spends in aggregation, isolation, and reduction epochs, on the
// 16-context configuration.
func Fig5a(w io.Writer, opts Options) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	const contexts = 16
	fmt.Fprintf(w, "Figure 5a: execution time breakdown (size %s, %d contexts)\n", opts.Size, contexts)
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "program", "aggregation", "isolation", "reduction")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		st := inst.SS(contexts - 1)
		total := st.Total()
		if total <= 0 {
			total = 1
		}
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
		fmt.Fprintf(w, "%-14s %11.1f%% %11.1f%% %11.1f%%\n",
			app.Name, pct(st.Aggregation), pct(st.Isolation), pct(st.Reduction))
	}
	return nil
}

// Fig5b reproduces Figure 5b: SS speedup across input size classes on the
// 16-context configuration.
func Fig5b(w io.Writer, opts Options) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	const contexts = 16
	fmt.Fprintf(w, "Figure 5b: input scaling, SS speedup (%d contexts, best of %d)\n", contexts, opts.Reps)
	fmt.Fprintf(w, "%-14s %8s %8s %8s\n", "program", "small", "medium", "large")
	means := map[workload.SizeClass][]float64{}
	for _, app := range apps {
		fmt.Fprintf(w, "%-14s", app.Name)
		for _, size := range workload.SizeClasses {
			inst := app.Load(size)
			seq := TimeBest(opts.Reps, inst.Seq)
			ss := TimeBest(opts.Reps, func() { inst.SS(contexts - 1) })
			s := Speedup(seq, ss)
			means[size] = append(means[size], s)
			fmt.Fprintf(w, "%8.1f", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "H_MEAN")
	for _, size := range workload.SizeClasses {
		fmt.Fprintf(w, "%8.1f", HarmonicMean(means[size]))
	}
	fmt.Fprintln(w)
	return nil
}

// Fig6 reproduces Figure 6: SS speedup as the number of delegate threads
// grows from 1 to maxDelegates.
func Fig6(w io.Writer, opts Options, maxDelegates int) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	if maxDelegates < 1 {
		maxDelegates = 15
	}
	fmt.Fprintf(w, "Figure 6: SS scaling with delegate threads (size %s, best of %d)\n", opts.Size, opts.Reps)
	fmt.Fprintf(w, "%-14s", "program")
	for d := 1; d <= maxDelegates; d++ {
		fmt.Fprintf(w, "%7d", d)
	}
	fmt.Fprintln(w)
	for _, app := range apps {
		inst := app.Load(opts.Size)
		seq := TimeBest(opts.Reps, inst.Seq)
		fmt.Fprintf(w, "%-14s", app.Name)
		for d := 1; d <= maxDelegates; d++ {
			ss := TimeBest(opts.Reps, func() { inst.SS(d) })
			fmt.Fprintf(w, "%7.1f", Speedup(seq, ss))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Ablation runs the design-choice studies DESIGN.md calls out:
//
//   - scheduling policy: static modulus (paper) vs least-loaded (the
//     paper's dynamic-scheduling future work) on a skew-prone benchmark;
//   - assignment ratio: program share 0 vs 1 vs 2;
//   - queue capacity: tiny vs default vs large communication queues;
//   - kmeans formulation: reduction (proposed fix) vs naive (measured in
//     the paper);
//   - occupancy-aware stealing: least-loaded with and without whole-set
//     work stealing, with the runtime's delegation/batching/stealing
//     counters surfaced (Steals, BatchFlushes, BatchedOps, DrainedOps).
func Ablation(w io.Writer, opts Options) error {
	apps, err := FilterApps(opts.Apps)
	if err != nil {
		return err
	}
	const delegates = 15
	fmt.Fprintf(w, "Ablations (size %s, %d delegates, best of %d)\n\n", opts.Size, delegates, opts.Reps)

	fmt.Fprintf(w, "A1. delegate assignment policy (speedup over sequential)\n")
	fmt.Fprintf(w, "%-14s %12s %12s\n", "program", "static-mod", "least-loaded")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		if inst.SSOpt == nil {
			continue
		}
		seq := TimeBest(opts.Reps, inst.Seq)
		st := TimeBest(opts.Reps, func() { inst.SSOpt(delegates, prometheus.WithPolicy(prometheus.StaticMod)) })
		ll := TimeBest(opts.Reps, func() { inst.SSOpt(delegates, prometheus.WithPolicy(prometheus.LeastLoaded)) })
		fmt.Fprintf(w, "%-14s %12.1f %12.1f\n", app.Name, Speedup(seq, st), Speedup(seq, ll))
	}

	fmt.Fprintf(w, "\nA2. assignment ratio: virtual delegates on the program context\n")
	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "program", "share=0", "share=1", "share=2")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		if inst.SSOpt == nil {
			continue
		}
		seq := TimeBest(opts.Reps, inst.Seq)
		fmt.Fprintf(w, "%-14s", app.Name)
		for _, share := range []int{0, 1, 2} {
			share := share
			d := TimeBest(opts.Reps, func() { inst.SSOpt(delegates, prometheus.WithProgramShare(share)) })
			fmt.Fprintf(w, "%10.1f", Speedup(seq, d))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nA3. communication queue capacity\n")
	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "program", "cap=8", "cap=1024", "cap=16384")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		if inst.SSOpt == nil {
			continue
		}
		seq := TimeBest(opts.Reps, inst.Seq)
		fmt.Fprintf(w, "%-14s", app.Name)
		for _, cap := range []int{8, 1024, 16384} {
			cap := cap
			d := TimeBest(opts.Reps, func() { inst.SSOpt(delegates, prometheus.WithQueueCapacity(cap)) })
			fmt.Fprintf(w, "%10.1f", Speedup(seq, d))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nA4. kmeans formulation (paper §5.1): reduction fix vs naive two-pass\n")
	if app, ok := AppByName("kmeans"); ok {
		inst := app.Load(opts.Size)
		seq := TimeBest(opts.Reps, inst.Seq)
		red := TimeBest(opts.Reps, func() { inst.SS(delegates) })
		naive := TimeBest(opts.Reps, func() { inst.Variants["naive"](delegates) })
		fmt.Fprintf(w, "%-14s %12s %12s\n", "", "reduction", "naive")
		fmt.Fprintf(w, "%-14s %12.1f %12.1f\n", "kmeans", Speedup(seq, red), Speedup(seq, naive))
	}

	fmt.Fprintf(w, "\nA5. occupancy-aware work stealing (least-loaded, whole-set handoff)\n")
	fmt.Fprintf(w, "%-14s %9s %9s %8s %8s %10s %8s %10s %10s %10s\n",
		"program", "ll", "ll+steal", "steals", "thradj", "hotplaced", "flushes", "batched", "drains", "drained")
	for _, app := range apps {
		inst := app.Load(opts.Size)
		if inst.SSOpt == nil {
			continue
		}
		seq := TimeBest(opts.Reps, inst.Seq)
		ll := TimeBest(opts.Reps, func() { inst.SSOpt(delegates, prometheus.WithPolicy(prometheus.LeastLoaded)) })
		var st prometheus.Stats
		steal := TimeBest(opts.Reps, func() {
			st = inst.SSOpt(delegates, opts.stealOpts()...)
		})
		fmt.Fprintf(w, "%-14s %9.1f %9.1f %8d %8d %10d %8d %10d %10d %10d\n",
			app.Name, Speedup(seq, ll), Speedup(seq, steal),
			st.Steals, st.ThresholdAdjusts, st.HotSetsPlaced,
			st.BatchFlushes, st.BatchedOps, st.DrainBatches, st.DrainedOps)
	}

	fmt.Fprintf(w, "\nA6. recursive whole-set stealing (quiescent multi-producer handoff)\n")
	// handoffs splits into occupancy-driven steals (handoffs - forcedevac)
	// and forced evacuations off a set's own producer's delegate; outveto
	// counts migration attempts blocked by the per-set outbound ledger and
	// outstamp its write volume — together they attribute the skewed win
	// between the two migration kinds and price the ledger.
	fmt.Fprintf(w, "%-14s %10s %10s %9s %9s %9s %8s %9s %8s %10s %8s\n",
		"workload", "static ms", "steal ms", "delta", "handoffs", "forcedev", "outveto", "outstamp", "thradj", "hotplaced", "spills")
	{
		static := TimeBest(opts.Reps, func() { recursiveSkewed() })
		var st prometheus.Stats
		steal := TimeBest(opts.Reps, func() {
			st = recursiveSkewed(opts.stealOpts()...)
		})
		delta := 100 * (steal.Seconds() - static.Seconds()) / static.Seconds()
		fmt.Fprintf(w, "%-14s %10.2f %10.2f %8.1f%% %9d %9d %8d %9d %8d %10d %8d\n",
			"rec-skewed", 1e3*static.Seconds(), 1e3*steal.Seconds(), delta,
			st.Handoffs, st.ForcedEvacs, st.OutboundVetoes, st.OutboundTracked,
			st.ThresholdAdjusts, st.HotSetsPlaced, st.Spills)
	}

	fmt.Fprintf(w, "\nA7. fault containment under chaos injection (internal/chaos, seeded)\n")
	// Each row runs the chaosSkewed workload with a seeded probabilistic
	// injector panicking in a fraction p of operations. The runtime must
	// survive every row (a wedged barrier would hang the table); the fault
	// counters price what containment did: panics contained, sets poisoned,
	// and delegations dropped on poisoned sets. p=0 is the control — it
	// runs with the injection seam armed but never firing, so its time vs
	// the other rows is the price of the faults, not of the seam.
	//
	// A6's recursiveSkewed is deliberately NOT reused here: its wave
	// throttle spin-waits inside the root operation for marker operations
	// delegated to the hot sets, and a marker dropped on a poisoned set
	// would spin that wait forever. That is the documented containment
	// hazard for user-level waits (doc.go "Fault containment") — chaos
	// workloads must throttle through engine barriers, which containment
	// guarantees still close.
	fmt.Fprintf(w, "%-14s %10s %8s %9s %9s %9s\n",
		"workload", "ms", "panics", "poisoned", "dropped", "survived")
	for _, p := range []float64{0, 0.005, 0.05} {
		p := p
		var st prometheus.Stats
		elapsed := TimeBest(opts.Reps, func() {
			st = chaosSkewed(chaosOpt(p))
		})
		fmt.Fprintf(w, "%-14s %10.2f %8d %9d %9d %9v\n",
			fmt.Sprintf("rec-skew p=%g", p), 1e3*elapsed.Seconds(),
			st.Panics, st.PoisonedSets, st.DroppedOps, true)
	}

	fmt.Fprintf(w, "\nA8. serving tier (session-affinity router, skewed keys)\n")
	// Concurrent clients drive the internal/serve router with a 90/10
	// hot/cold key distribution — the adversarial shape for the stealing
	// machinery, since the hot keys' sets all hash wherever they hash.
	// The chaos row poisons one hot key mid-run: its requests must fail
	// fast (500s with the fault attached) while every other key keeps
	// serving, and the epoch rotation must heal it. A wedged drain would
	// hang the table, so completing at all is part of the assertion.
	fmt.Fprintf(w, "%-14s %10s %8s %8s %8s %8s %8s\n",
		"workload", "ms", "served", "faulted", "rejects", "steals", "panics")
	for _, chaosKeys := range []bool{false, true} {
		name := "serve-skewed"
		if chaosKeys {
			name = "serve-chaos"
		}
		var res servingResult
		elapsed := TimeBest(opts.Reps, func() { res = servingSkewed(chaosKeys) })
		fmt.Fprintf(w, "%-14s %10.2f %8d %8d %8d %8d %8d\n",
			name, 1e3*elapsed.Seconds(), res.served, res.faulted, res.rejects,
			res.stats.Steals, res.stats.Panics)
	}

	fmt.Fprintf(w, "\nA9. elastic serving (phase-shifted load: quiet -> burst -> quiet)\n")
	// The elasticity ablation: the same phase-shifted workload against a
	// fixed pool provisioned for the burst versus an autoscaled pool that
	// must discover it. del-sec integrates active delegates over the run
	// (the capacity bill); p99 is the client-side latency tail. The claim
	// under test is that the autoscaled row pays materially fewer
	// delegate-seconds for a comparable p99, and resizes > 0 proves the
	// pool actually moved (up for the burst, back down for the cooldown)
	// with zero failed or reordered requests — orderOK folds the per-key
	// sequence check over every phase.
	fmt.Fprintf(w, "%-14s %10s %8s %8s %8s %9s %9s %8s\n",
		"workload", "ms", "served", "resizes", "maxdel", "del-sec", "p99 ms", "orderOK")
	for _, auto := range []bool{false, true} {
		name := "serve-fixed"
		if auto {
			name = "serve-elastic"
		}
		res := servingPhased(auto)
		fmt.Fprintf(w, "%-14s %10.2f %8d %8d %8d %9.3f %9.2f %8v\n",
			name, 1e3*res.elapsed.Seconds(), res.served, res.stats.Resizes,
			res.maxActive, res.delegateSec, 1e3*res.p99.Seconds(), res.orderOK)
	}
	return nil
}

type servingResult struct {
	served, faulted, rejects uint64
	stats                    prometheus.Stats
}

// servingSkewed drives the serving tier end to end: 8 concurrent clients,
// 200 requests each, 90% on 4 hot session keys and 10% spread across 32
// cold ones. With chaos on, one request poisons a hot key partway in.
func servingSkewed(chaosKeys bool) servingResult {
	srv, err := serve.New(serve.Config{
		Delegates:     4,
		EpochInterval: 5 * time.Millisecond,
		Handler: func(s *serve.Session, r *http.Request) (int, string) {
			if r.Header.Get("X-Chaos-Panic") == "1" {
				panic("chaos: injected serving fault")
			}
			return http.StatusOK, fmt.Sprintf("%d", s.Seq)
		},
	})
	if err != nil {
		panic(err)
	}
	h := srv.Handler()
	var res servingResult
	var served, faulted, rejects atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("hot-%d", i%4)
				if i%10 == 9 {
					key = fmt.Sprintf("cold-%d-%d", c, i%32)
				}
				r := httptest.NewRequest("GET", "/bump", nil)
				r.Header.Set("X-Session-Key", key)
				if chaosKeys && c == 0 && i == 50 {
					r.Header.Set("X-Chaos-Panic", "1")
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, r)
				switch rec.Code {
				case http.StatusOK:
					served.Add(1)
				case http.StatusInternalServerError:
					faulted.Add(1)
				default:
					rejects.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	res.served, res.faulted, res.rejects = served.Load(), faulted.Load(), rejects.Load()
	res.stats = srv.Stats()
	return res
}

type phasedResult struct {
	served      uint64
	maxActive   int
	delegateSec float64
	p99         time.Duration
	orderOK     bool
	elapsed     time.Duration
	stats       prometheus.Stats
}

// servingPhased is the A9 workload: phase-shifted load (quiet -> burst ->
// quiet -> idle cooldown) against either a fixed pool provisioned for the
// burst (4 delegates the whole run) or an autoscaled pool (1..4) that
// must discover the burst and give the capacity back. A sampler
// integrates the active-delegate count over the run into delegate-seconds
// — the capacity bill the elastic pool is supposed to shrink — while
// every client checks its keys' sequences stay exactly 1..n across all
// phases, so a resize that failed or reordered even one request flips
// orderOK.
func servingPhased(autoscale bool) phasedResult {
	cfg := serve.Config{
		Delegates:     4,
		EpochInterval: 5 * time.Millisecond,
		Handler: func(s *serve.Session, r *http.Request) (int, string) {
			time.Sleep(500 * time.Microsecond)
			return http.StatusOK, fmt.Sprintf("%d", s.Seq)
		},
	}
	if autoscale {
		cfg.Delegates = 1
		cfg.MinDelegates = 1
		cfg.MaxDelegates = 4
		cfg.Autoscale = true
		cfg.AutoscaleCooldown = 1
	}
	srv, err := serve.New(cfg)
	if err != nil {
		panic(err)
	}
	h := srv.Handler()

	var res phasedResult
	var served, orderBad atomic.Uint64
	var mu sync.Mutex
	var lats []time.Duration
	lastSeq := make([]int, 8)

	// One worker slot = one session key, persistent across phases, so the
	// order check spans every resize the run performs.
	client := func(c, n int, gap time.Duration) {
		key := fmt.Sprintf("phased-%d", c)
		for i := 0; i < n; i++ {
			r := httptest.NewRequest("GET", "/bump", nil)
			r.Header.Set("X-Session-Key", key)
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, r)
			lat := time.Since(t0)
			seq := 0
			fmt.Sscanf(rec.Body.String(), "%d", &seq)
			if rec.Code != http.StatusOK || seq != lastSeq[c]+1 {
				orderBad.Add(1)
				return
			}
			lastSeq[c] = seq
			served.Add(1)
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
			if gap > 0 {
				time.Sleep(gap)
			}
		}
	}
	runPhase := func(workers, n int, gap time.Duration) {
		var wg sync.WaitGroup
		for c := 0; c < workers; c++ {
			wg.Add(1)
			go func(c int) { defer wg.Done(); client(c, n, gap) }(c)
		}
		wg.Wait()
	}

	stop := make(chan struct{})
	var sampWG sync.WaitGroup
	sampWG.Add(1)
	go func() {
		defer sampWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		prev := time.Now()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				a := srv.ActiveDelegates()
				res.delegateSec += float64(a) * now.Sub(prev).Seconds()
				if a > res.maxActive {
					res.maxActive = a
				}
				prev = now
			}
		}
	}()

	start := time.Now()
	runPhase(2, 40, time.Millisecond)  // quiet: trickle, well under one delegate
	runPhase(8, 150, 0)                // burst: backlog the autoscaler must see
	runPhase(2, 40, time.Millisecond)  // quiet again: the EWMA decays
	time.Sleep(100 * time.Millisecond) // idle cooldown: the pool walks to the floor
	res.elapsed = time.Since(start)
	close(stop)
	sampWG.Wait()
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	res.served = served.Load()
	res.orderOK = orderBad.Load() == 0
	res.stats = srv.Stats()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.p99 = lats[len(lats)*99/100]
	}
	return res
}

// chaosOpt arms the runtime's fault-injection seam with a fresh seeded
// injector panicking in a fraction p of delegated operations.
func chaosOpt(p float64) prometheus.Option {
	hook := chaos.Seeded(11, p).Hook()
	return func(c *core.Config) { c.FaultInjector = hook }
}

// chaosSkewed is the A7 workload: the same 90/10 hot/cold recursive shape
// as A6 but fault-tolerant by construction — the program context streams
// the hot runs (bounded by lane backpressure), each hot operation issues
// one fire-and-forget nested delegation to a cold set, and the only waits
// are the epoch barriers, which fault containment guarantees close no
// matter which operations were dropped. Two epochs, so poisoning-clears-
// at-epoch-boundary is on the measured path too.
func chaosSkewed(extra ...prometheus.Option) prometheus.Stats {
	all := append([]prometheus.Option{prometheus.WithDelegates(4), prometheus.Recursive()}, extra...)
	rt := prometheus.Init(all...)
	defer rt.Terminate()
	hot := []uint64{0, 4, 8, 12} // delegate 1 under StaticMod's vmap
	cold := []uint64{2, 6, 3, 7} // spread; produced only by the hot ops' delegate
	w := prometheus.NewWritable(rt, 0)
	for epoch := 0; epoch < 2; epoch++ {
		rt.BeginIsolation()
		for i := 0; i < 400; i++ {
			h := hot[i%len(hot)]
			c := cold[i%len(cold)]
			w.DelegateTo(h, func(cx *prometheus.Ctx, _ *int) {
				time.Sleep(5 * time.Microsecond)
				cx.Delegate(c, func(*prometheus.Ctx) {})
			})
		}
		rt.EndIsolation()
	}
	return rt.Stats()
}

// recursiveSkewed is the A6 workload: the shared 90/10 skewed recursive
// shape (workload.SkewedRecursive — the BenchmarkRecursiveSkewed driver,
// sized for the ablation table) with briefly blocking operations. Fixed
// at 4 delegates: the hot/cold set ids are chosen against that static
// map. Two isolation epochs, so hot-set seeded placement is on the
// measured path.
func recursiveSkewed(extra ...prometheus.Option) prometheus.Stats {
	all := append([]prometheus.Option{prometheus.WithDelegates(4), prometheus.Recursive()}, extra...)
	rt := prometheus.Init(all...)
	defer rt.Terminate()
	shape := workload.SkewedRecursive{
		Hot:    []uint64{0, 4, 8, 12}, // delegate 1 under StaticMod's vmap
		Cold:   []uint64{2, 6, 3, 7},
		Waves:  6,
		RunLen: 8,
	}
	blocking := func(*prometheus.Ctx) { time.Sleep(20 * time.Microsecond) }
	sharedOp := func(uint64, int32) func(*prometheus.Ctx) { return blocking }
	w := prometheus.NewWritable(rt, 0)
	for epoch := 0; epoch < 2; epoch++ {
		rt.BeginIsolation()
		w.DelegateTo(1, func(c *prometheus.Ctx, _ *int) { shape.Run(c, sharedOp) })
		rt.EndIsolation()
	}
	return rt.Stats()
}
