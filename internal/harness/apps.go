package harness

import (
	"fmt"

	prometheus "repro"
	"repro/internal/apps/barneshut"
	"repro/internal/apps/blackscholes"
	"repro/internal/apps/dedup"
	"repro/internal/apps/freqmine"
	"repro/internal/apps/histogram"
	"repro/internal/apps/kmeans"
	"repro/internal/apps/reverseindex"
	"repro/internal/apps/wordcount"
	"repro/internal/workload"
)

// attachSSHooks fills Instance.SS, SSOpt and SSTraced from a single
// run-on-runtime closure, the shape every app exposes as RunSSOn.
func attachSSHooks(inst *Instance, runOn func(rt *prometheus.Runtime) prometheus.Stats) {
	inst.SS = func(delegates int) prometheus.Stats {
		rt := prometheus.Init(prometheus.WithDelegates(delegates))
		defer rt.Terminate()
		return runOn(rt)
	}
	inst.SSOpt = func(delegates int, opts ...prometheus.Option) prometheus.Stats {
		all := append([]prometheus.Option{prometheus.WithDelegates(delegates)}, opts...)
		rt := prometheus.Init(all...)
		defer rt.Terminate()
		return runOn(rt)
	}
	inst.SSTraced = func(delegates int) ([]prometheus.TraceEvent, prometheus.Stats) {
		rt := prometheus.Init(prometheus.WithDelegates(delegates), prometheus.WithTrace())
		defer rt.Terminate()
		st := runOn(rt)
		return rt.TraceEvents(), st
	}
}

// Apps is the benchmark registry, mirroring the rows of the paper's
// Table 2.
var Apps = []App{
	{
		Name: "barneshut", Source: "Lonestar", Desc: "N-body simulation",
		Load: func(size workload.SizeClass) *Instance {
			in := barneshut.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d bodies, %d steps", len(in.Bodies), in.Steps),
				Seq:  func() { barneshut.RunSeq(in) },
				CP:   func(w int) { barneshut.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := barneshut.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "blackscholes", Source: "PARSEC", Desc: "Financial analysis",
		Load: func(size workload.SizeClass) *Instance {
			in := blackscholes.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d options", len(in.Options)),
				Seq:  func() { blackscholes.RunSeq(in) },
				CP:   func(w int) { blackscholes.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := blackscholes.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "dedup", Source: "PARSEC", Desc: "Enterprise storage",
		Load: func(size workload.SizeClass) *Instance {
			in := dedup.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d MB stream", len(in.Data)>>20),
				Seq:  func() { dedup.RunSeq(in) },
				CP:   func(w int) { dedup.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := dedup.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "freqmine", Source: "PARSEC", Desc: "Data mining",
		Load: func(size workload.SizeClass) *Instance {
			in := freqmine.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d transactions", len(in.Txns)),
				Seq:  func() { freqmine.RunSeq(in) },
				CP:   func(w int) { freqmine.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := freqmine.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "histogram", Source: "Phoenix", Desc: "Image analysis",
		Load: func(size workload.SizeClass) *Instance {
			in := histogram.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d MB bitmap", len(in.Pixels)>>20),
				Seq:  func() { histogram.RunSeq(in) },
				CP:   func(w int) { histogram.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := histogram.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "kmeans", Source: "NU-MineBench", Desc: "Data mining",
		Load: func(size workload.SizeClass) *Instance {
			in := kmeans.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d points, %d clusters", len(in.Points), in.Clusters),
				Seq:  func() { kmeans.RunSeq(in) },
				CP:   func(w int) { kmeans.RunCP(in, w) },
				Variants: map[string]func(int) prometheus.Stats{
					"naive": func(d int) prometheus.Stats {
						_, st := kmeans.RunSSNaive(in, d)
						return st
					},
				},
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := kmeans.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "reverse_index", Source: "Phoenix", Desc: "HTML analysis",
		Load: func(size workload.SizeClass) *Instance {
			in := reverseindex.Load(size)
			inst := &Instance{
				Desc: in.FS.Stats(),
				Seq:  func() { reverseindex.RunSeq(in) },
				CP:   func(w int) { reverseindex.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := reverseindex.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
	{
		Name: "word_count", Source: "Phoenix", Desc: "Text processing",
		Load: func(size workload.SizeClass) *Instance {
			in := wordcount.Load(size)
			inst := &Instance{
				Desc: fmt.Sprintf("%d MB text", len(in.Text)>>20),
				Seq:  func() { wordcount.RunSeq(in) },
				CP:   func(w int) { wordcount.RunCP(in, w) },
			}
			attachSSHooks(inst, func(rt *prometheus.Runtime) prometheus.Stats {
				_, st := wordcount.RunSSOn(rt, in)
				return st
			})
			return inst
		},
	},
}
