package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// Smoke tests: each experiment runs end-to-end on one small benchmark and
// produces a plausibly shaped table. These are integration tests of the
// registry + runner + formatter path that ssbench and bench_test.go share.

func smallOpts(apps ...string) Options {
	return Options{Size: workload.Small, Reps: 1, Apps: apps}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	var sb strings.Builder
	if err := Fig4(&sb, smallOpts("histogram")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"barcelona-4 CP", "barcelona-16 SS", "niagara-32 CP", "H_MEAN", "histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	var sb strings.Builder
	if err := Fig5a(&sb, smallOpts("histogram")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "aggregation") || !strings.Contains(out, "%") {
		t.Fatalf("fig5a output:\n%s", out)
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	var sb strings.Builder
	if err := Fig6(&sb, smallOpts("histogram"), 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "histogram") || !strings.Contains(out, "2") {
		t.Fatalf("fig6 output:\n%s", out)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	var sb strings.Builder
	if err := Ablation(&sb, smallOpts("histogram")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// A7 is the fault-containment table: the chaos rows must run to
	// completion (a wedged barrier would hang this test) and surface the
	// fault counters.
	for _, want := range []string{
		"A5. occupancy-aware work stealing",
		"A6. recursive whole-set stealing",
		"A7. fault containment under chaos injection",
		"panics", "poisoned", "dropped",
		"rec-skew p=0", "rec-skew p=0.05",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsRejectUnknownApp(t *testing.T) {
	var sb strings.Builder
	for name, run := range map[string]func() error{
		"table2": func() error { return Table2(&sb, smallOpts("nope")) },
		"fig4":   func() error { return Fig4(&sb, smallOpts("nope")) },
		"fig5a":  func() error { return Fig5a(&sb, smallOpts("nope")) },
		"fig5b":  func() error { return Fig5b(&sb, smallOpts("nope")) },
		"fig6":   func() error { return Fig6(&sb, smallOpts("nope"), 2) },
	} {
		if err := run(); err == nil {
			t.Errorf("%s accepted unknown app", name)
		}
	}
}
