// Package harness runs the paper's evaluation: it owns the benchmark
// registry, the machine-configuration table, timing and speedup math, and a
// formatter per table/figure (Table 2/3, Figures 4, 5a, 5b, 6, plus the
// ablation suite). The cmd/ssbench binary and the repository-root
// bench_test.go are thin wrappers over this package.
package harness

import (
	"fmt"
	"sort"
	"time"

	prometheus "repro"
	"repro/internal/workload"
)

// Instance is one loaded benchmark input with runners for each
// implementation. Load once, run many times.
type Instance struct {
	// Desc is the input description printed in Table 2.
	Desc string
	// Seq runs the sequential reference implementation.
	Seq func()
	// CP runs the conventional-parallel implementation with the given
	// number of worker threads.
	CP func(workers int)
	// SS runs the serialization-sets implementation with the given number
	// of delegate contexts and returns the runtime stats.
	SS func(delegates int) prometheus.Stats
	// Variants holds named alternative SS formulations used by the
	// ablation experiments (e.g. kmeans "naive").
	Variants map[string]func(delegates int) prometheus.Stats
	// SSOpt runs SS with extra runtime options (scheduling-policy and
	// queue-capacity ablations). Nil when the app has no such hook.
	SSOpt func(delegates int, opts ...prometheus.Option) prometheus.Stats
	// SSTraced runs SS with execution tracing and returns the trace
	// (cmd/sstrace). Nil when the app has no such hook.
	SSTraced func(delegates int) ([]prometheus.TraceEvent, prometheus.Stats)
}

// App is a registered benchmark.
type App struct {
	Name   string
	Source string // suite of the original benchmark (Table 2)
	Desc   string // domain description (Table 2)
	Load   func(size workload.SizeClass) *Instance
}

// MachineConfig emulates one machine of the paper's Table 3 as a
// total-execution-context count: the CP version gets Contexts workers, the
// SS version Contexts-1 delegates plus the program context.
type MachineConfig struct {
	Name     string
	Contexts int
	// Paper describes the hardware; kept for the Table 3 printout.
	Paper string
}

// Machines mirrors Table 3.
var Machines = []MachineConfig{
	{Name: "barcelona-4", Contexts: 4, Paper: "AMD Phenom 9850, 1x4 cores, 2.5 GHz"},
	{Name: "ultrasparc-8", Contexts: 8, Paper: "Sun Fire V880, 8x1 cores, 900 MHz"},
	{Name: "barcelona-16", Contexts: 16, Paper: "AMD Opteron 8350, 4x4 cores, 2.0 GHz"},
	{Name: "niagara-32", Contexts: 32, Paper: "Sun Fire T2000, 8 cores x 4 threads, 1.0 GHz"},
}

// MachineByName finds a configuration.
func MachineByName(name string) (MachineConfig, bool) {
	for _, m := range Machines {
		if m.Name == name {
			return m, true
		}
	}
	return MachineConfig{}, false
}

// Time measures one execution of f.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TimeBest measures f reps times and returns the minimum — the standard
// way to suppress scheduling noise for throughput benchmarks.
func TimeBest(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := Time(f); d < best {
			best = d
		}
	}
	return best
}

// Speedup is sequential time over parallel time.
func Speedup(seq, par time.Duration) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// HarmonicMean computes the harmonic mean of speedups, the aggregate the
// paper reports in Figure 4's final column.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// AppNames lists the registered benchmark names in registry order.
func AppNames() []string {
	names := make([]string, len(Apps))
	for i, a := range Apps {
		names[i] = a.Name
	}
	return names
}

// AppByName finds a registered benchmark.
func AppByName(name string) (App, bool) {
	for _, a := range Apps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// FilterApps returns the registry subset with the given names (all apps for
// an empty filter). Unknown names are reported as an error.
func FilterApps(names []string) ([]App, error) {
	if len(names) == 0 {
		return Apps, nil
	}
	var out []App
	for _, n := range names {
		a, ok := AppByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (have %v)", n, AppNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// SortedKeys returns map keys in sorted order (deterministic printouts).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
