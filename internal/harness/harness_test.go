package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestSpeedupAndHarmonicMean(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("Speedup = %f, want 5", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup by zero = %f, want 0", got)
	}
	got := HarmonicMean([]float64{2, 4})
	if math.Abs(got-8.0/3.0) > 1e-12 {
		t.Errorf("HarmonicMean(2,4) = %f, want 8/3", got)
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HarmonicMean degenerate cases wrong")
	}
}

func TestTimeBest(t *testing.T) {
	n := 0
	TimeBest(3, func() { n++ })
	if n != 3 {
		t.Errorf("TimeBest ran %d times, want 3", n)
	}
	TimeBest(0, func() { n++ })
	if n != 4 {
		t.Errorf("TimeBest(0) should run once")
	}
}

func TestRegistryComplete(t *testing.T) {
	// All eight Table 2 benchmarks must be registered.
	want := []string{"barneshut", "blackscholes", "dedup", "freqmine",
		"histogram", "kmeans", "reverse_index", "word_count"}
	names := AppNames()
	if len(names) != len(want) {
		t.Fatalf("registry has %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("registry[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestFilterApps(t *testing.T) {
	all, err := FilterApps(nil)
	if err != nil || len(all) != len(Apps) {
		t.Fatalf("empty filter should return all apps")
	}
	two, err := FilterApps([]string{"dedup", "kmeans"})
	if err != nil || len(two) != 2 || two[0].Name != "dedup" {
		t.Fatalf("filter = %v, %v", two, err)
	}
	if _, err := FilterApps([]string{"nope"}); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestMachinesMirrorTable3(t *testing.T) {
	wantContexts := map[string]int{
		"barcelona-4": 4, "ultrasparc-8": 8, "barcelona-16": 16, "niagara-32": 32,
	}
	for name, contexts := range wantContexts {
		m, ok := MachineByName(name)
		if !ok || m.Contexts != contexts {
			t.Errorf("machine %s = %+v, %v", name, m, ok)
		}
	}
	if _, ok := MachineByName("cray-1"); ok {
		t.Error("unknown machine should not resolve")
	}
}

func TestTable2Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Table2(&sb, Options{Size: workload.Small, Apps: []string{"histogram"}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "histogram") || !strings.Contains(out, "Phoenix") {
		t.Fatalf("Table2 output:\n%s", out)
	}
}

func TestTable3Smoke(t *testing.T) {
	var sb strings.Builder
	Table3(&sb)
	for _, m := range Machines {
		if !strings.Contains(sb.String(), m.Name) {
			t.Errorf("Table3 missing %s", m.Name)
		}
	}
}

// TestInstanceRunnersWork loads the fastest app at size S and exercises all
// runner hooks once — an integration smoke of the registry plumbing.
func TestInstanceRunnersWork(t *testing.T) {
	app, ok := AppByName("histogram")
	if !ok {
		t.Fatal("histogram not registered")
	}
	inst := app.Load(workload.Small)
	inst.Seq()
	inst.CP(2)
	if st := inst.SS(2); st.Epochs == 0 {
		t.Error("SS run recorded no epochs")
	}
	if inst.SSOpt == nil {
		t.Fatal("histogram has no SSOpt hook")
	}
	if st := inst.SSOpt(2, nil...); st.Epochs == 0 {
		t.Error("SSOpt run recorded no epochs")
	}
}

func TestKmeansVariantRegistered(t *testing.T) {
	app, _ := AppByName("kmeans")
	inst := app.Load(workload.Small)
	naive, ok := inst.Variants["naive"]
	if !ok {
		t.Fatal("kmeans naive variant missing")
	}
	if st := naive(2); st.Epochs == 0 {
		t.Error("naive variant recorded no epochs")
	}
}
