package workload

import (
	"fmt"
	"strings"
)

// HTMLConfig parameterizes the reverse_index input (Table 2: 100 MB / 500 MB
// / 1 GB HTML directory trees, scaled down). The generated corpus is a
// directory tree of HTML files whose anchor tags draw URLs from a shared
// pool, so links recur across files and the reverse index is non-trivial.
type HTMLConfig struct {
	Seed         int64
	Files        int
	Dirs         int // internal directories in the tree
	URLPool      int // distinct link targets
	LinksPerFile int // mean links per file
	FillerWords  int // mean filler words between links
}

// HTMLSize returns the reverse_index input configuration for a size class.
func HTMLSize(size SizeClass) HTMLConfig {
	return HTMLConfig{
		Seed:         1337,
		Files:        pick(size, 600, 2500, 5000),
		Dirs:         pick(size, 30, 80, 150),
		URLPool:      pick(size, 500, 2000, 4000),
		LinksPerFile: 30,
		FillerWords:  2000,
	}
}

// HTMLDoc is one generated page.
type HTMLDoc struct {
	Path    string
	Content []byte
}

// HTMLTree is the generated corpus: a rooted directory tree plus the pages.
type HTMLTree struct {
	// DirChildren maps a directory path to its immediate subdirectories.
	DirChildren map[string][]string
	// DirFiles maps a directory path to the files directly inside it.
	DirFiles map[string][]*HTMLDoc
	Docs     []*HTMLDoc
	URLs     []string
}

// GenerateHTMLTree builds the corpus. Directory shape, file placement,
// link selection and filler text are all drawn from the seed.
func GenerateHTMLTree(cfg HTMLConfig) *HTMLTree {
	r := newRand(cfg.Seed)
	urls := make([]string, cfg.URLPool)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site%d.example.com/%s", i%97, randomWord(r))
	}
	zipf := NewVocabulary(cfg.Seed+1, 4000) // filler text vocabulary

	t := &HTMLTree{
		DirChildren: map[string][]string{"/": nil},
		DirFiles:    map[string][]*HTMLDoc{},
		URLs:        urls,
	}
	// Grow a random tree of directories under "/".
	dirs := []string{"/"}
	for i := 0; i < cfg.Dirs; i++ {
		parent := dirs[r.Intn(len(dirs))]
		name := fmt.Sprintf("d%02d_%s", i, randomWord(r))
		path := strings.TrimSuffix(parent, "/") + "/" + name
		t.DirChildren[parent] = append(t.DirChildren[parent], path)
		t.DirChildren[path] = nil
		dirs = append(dirs, path)
	}
	// Place files, each with Zipf filler and links drawn from the pool.
	for i := 0; i < cfg.Files; i++ {
		dir := dirs[r.Intn(len(dirs))]
		var b strings.Builder
		b.WriteString("<html><head><title>")
		b.WriteString(randomWord(r))
		b.WriteString("</title></head><body>\n")
		links := 1 + r.Intn(2*cfg.LinksPerFile)
		for l := 0; l < links; l++ {
			words := r.Intn(2 * cfg.FillerWords / cfg.LinksPerFile)
			for w := 0; w < words; w++ {
				b.WriteString(zipf.Next())
				b.WriteByte(' ')
			}
			url := urls[r.Intn(len(urls))]
			fmt.Fprintf(&b, "<a href=\"%s\">%s</a>\n", url, randomWord(r))
		}
		b.WriteString("</body></html>\n")
		doc := &HTMLDoc{
			Path:    strings.TrimSuffix(dir, "/") + "/" + fmt.Sprintf("f%04d.html", i),
			Content: []byte(b.String()),
		}
		t.DirFiles[dir] = append(t.DirFiles[dir], doc)
		t.Docs = append(t.Docs, doc)
	}
	return t
}

// TotalBytes returns the corpus size.
func (t *HTMLTree) TotalBytes() int {
	n := 0
	for _, d := range t.Docs {
		n += len(d.Content)
	}
	return n
}
