package workload

import (
	"math/rand"
	"strings"
)

// Vocabulary is the word pool for text generation. Words are synthetic but
// have natural-language-like length distribution; frequency follows a
// Zipf(1.1) law so word_count sees the realistic heavy-tailed histogram of
// the Phoenix text inputs.
type Vocabulary struct {
	Words []string
	zipf  *rand.Zipf
	r     *rand.Rand
}

// NewVocabulary builds a vocabulary of n distinct words from the seed.
func NewVocabulary(seed int64, n int) *Vocabulary {
	r := newRand(seed)
	words := make([]string, n)
	seen := make(map[string]bool, n)
	for i := range words {
		for {
			w := randomWord(r)
			if !seen[w] {
				seen[w] = true
				words[i] = w
				break
			}
		}
	}
	return &Vocabulary{
		Words: words,
		zipf:  rand.NewZipf(r, 1.1, 1.0, uint64(n-1)),
		r:     r,
	}
}

// randomWord emits a 2-12 letter lowercase word.
func randomWord(r *rand.Rand) string {
	n := 2 + r.Intn(11)
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(26)))
	}
	return b.String()
}

// Next draws a Zipf-distributed word.
func (v *Vocabulary) Next() string { return v.Words[v.zipf.Uint64()] }

// TextConfig parameterizes the word_count input (Table 2: 10/50/100 MB
// text files, scaled down).
type TextConfig struct {
	Seed      int64
	Bytes     int // approximate output size
	VocabSize int
}

// TextSize returns the word_count input configuration for a size class.
func TextSize(size SizeClass) TextConfig {
	return TextConfig{
		Seed:      42,
		Bytes:     pick(size, 4<<20, 16<<20, 40<<20), // 4/16/40 MB (paper 10/50/100)
		VocabSize: 5000,
	}
}

// GenerateText produces about cfg.Bytes of space-separated Zipfian words
// with line breaks, resembling a natural-language corpus.
func GenerateText(cfg TextConfig) []byte {
	v := NewVocabulary(cfg.Seed, cfg.VocabSize)
	var b strings.Builder
	b.Grow(cfg.Bytes + 64)
	col := 0
	for b.Len() < cfg.Bytes {
		w := v.Next()
		b.WriteString(w)
		col += len(w) + 1
		if col > 70 {
			b.WriteByte('\n')
			col = 0
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String())
}

// SplitChunks cuts data into n nearly equal chunks, never splitting inside a
// word (chunk boundaries land after whitespace). Used by the parallel
// word-count and histogram drivers.
func SplitChunks(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	var chunks [][]byte
	start := 0
	for i := 1; i <= n && start < len(data); i++ {
		end := len(data) * i / n
		if end < start {
			end = start
		}
		// advance past the next whitespace so words stay intact and the
		// separator stays with the left chunk
		for end < len(data) && data[end] != ' ' && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++ // include the separator
		}
		if i == n {
			end = len(data)
		}
		if end > start {
			chunks = append(chunks, data[start:end])
		}
		start = end
	}
	return chunks
}
