package workload

// Stream generator for dedup: a byte stream assembled from a pool of
// "segments", many of which recur. The redundancy ratio controls how often
// a segment is a repeat of an earlier one — the property that, per the
// paper's Figure 5b discussion, drives dedup's speedup more than input size
// does. To reproduce that anomaly, the Medium class is generated with a
// substantially higher redundancy ratio than Small and Large.

// DedupConfig parameterizes the dedup input (Table 2: 31 MB / 185 MB /
// 673 MB archives, scaled down ~20x).
type DedupConfig struct {
	Seed       int64
	Bytes      int     // total stream size
	SegmentLen int     // mean segment length
	Redundancy float64 // probability a segment repeats an earlier one
}

// DedupSize returns the dedup input configuration for a size class. The
// Medium class deliberately carries much lower redundancy than Small and
// Large: the paper observes that dedup's speedup tracks "how much
// compression is needed for a particular file, rather than the size of the
// file", with the medium input the outlier (its unique chunks leave the
// most parallel compression work). This reproduces the Figure 5b anomaly.
func DedupSize(size SizeClass) DedupConfig {
	return DedupConfig{
		Seed:       91,
		Bytes:      pick(size, 2<<20, 9<<20, 32<<20),
		SegmentLen: 4096,
		Redundancy: pick(size, 0.80, 0.30, 0.80),
	}
}

// GenerateDedupStream builds the stream.
func GenerateDedupStream(cfg DedupConfig) []byte {
	r := newRand(cfg.Seed)
	out := make([]byte, 0, cfg.Bytes+cfg.SegmentLen)
	var pool [][]byte
	for len(out) < cfg.Bytes {
		if len(pool) > 0 && r.Float64() < cfg.Redundancy {
			out = append(out, pool[r.Intn(len(pool))]...)
			continue
		}
		n := cfg.SegmentLen/2 + r.Intn(cfg.SegmentLen)
		seg := make([]byte, n)
		// Compressible content: runs of small-alphabet bytes.
		for i := 0; i < n; {
			b := byte('a' + r.Intn(16))
			run := 1 + r.Intn(8)
			for j := 0; j < run && i < n; j++ {
				seg[i] = b
				i++
			}
		}
		pool = append(pool, seg)
		out = append(out, seg...)
	}
	return out[:cfg.Bytes]
}
