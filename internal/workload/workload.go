// Package workload generates the synthetic inputs for the eight benchmarks
// of the paper's Table 2. The original suites (PARSEC, Phoenix, Lonestar,
// NU-MineBench) ship multi-hundred-megabyte proprietary inputs; these
// generators produce inputs with the same structural properties (size
// classes, skew, redundancy) from fixed seeds, so every run — and every
// equivalence test against the sequential implementation — is deterministic.
package workload

import "math/rand"

// SizeClass selects the input scale, mirroring Table 2's S/M/L columns.
// Paper inputs are scaled down uniformly so the full evaluation runs on one
// machine in minutes; the S:M:L ratios follow the paper where practical.
type SizeClass int

const (
	Small SizeClass = iota
	Medium
	Large
)

func (s SizeClass) String() string {
	switch s {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	default:
		return "?"
	}
}

// SizeClasses lists all classes in ascending order.
var SizeClasses = []SizeClass{Small, Medium, Large}

// ParseSize converts "S"/"M"/"L" to a SizeClass.
func ParseSize(s string) (SizeClass, bool) {
	switch s {
	case "S", "s", "small":
		return Small, true
	case "M", "m", "medium":
		return Medium, true
	case "L", "l", "large":
		return Large, true
	}
	return Small, false
}

// newRand returns the deterministic source all generators draw from.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// pick returns S/M/L-specific values.
func pick[T any](size SizeClass, s, m, l T) T {
	switch size {
	case Small:
		return s
	case Medium:
		return m
	default:
		return l
	}
}
