package workload

import (
	"runtime"
	"sync/atomic"

	prometheus "repro"
)

// SkewedRecursive is the wave-throttled 90/10-skewed recursive producer
// shared by BenchmarkRecursiveSkewed, the recursive-stealing determinism
// stress, and the ssbench A6 ablation — the imbalance shape the recursive
// whole-set rebalancer exists for. Operations arrive as runs of RunLen
// consecutive delegations per hot set with one cold delegation after each
// run (dependence chains of uneven length), so a hot set's first
// delegation of a wave routes while the victim still carries the previous
// run — the quiescent window the rebalancer migrates in. Each wave ends
// with one marker per hot set and a spin-wait until all markers have
// executed: a delegate-context producer never blocks on a full lane, so
// an unthrottled stream would grow the lanes without bounding occupancy,
// and the wait is also what creates the quiescent boundaries.
//
// The mechanics here are load-bearing for every user: the marker
// accounting, the done-counter reset, and the choice of hot/cold set ids
// against the static assignment table (hot sets must pile onto one
// delegate; neither list may include the producer's own set) decide
// whether handoffs can fire at all and whether the wait can deadlock.
type SkewedRecursive struct {
	Hot    []uint64 // hot sets (90% of operations), statically co-homed
	Cold   []uint64 // cold sets, statically spread
	Waves  int
	RunLen int // consecutive operations per hot set; one cold op follows each run
}

// OpsPerWave returns how many non-marker operations one wave delegates.
func (s SkewedRecursive) OpsPerWave() int { return len(s.Hot) * (s.RunLen + 1) }

// Run streams the shape from inside producer context c. makeOp returns
// the operation to delegate for each (set, seq) — return a shared func
// value to keep the driver allocation-free per operation, or a fresh
// closure to record per-operation data. seq increments across the whole
// run in delegation order, the order per-set logs must replay.
func (s SkewedRecursive) Run(c *prometheus.Ctx, makeOp func(set uint64, seq int32) func(*prometheus.Ctx)) {
	var done atomic.Int64
	seq := int32(0)
	opsPerWave := s.OpsPerWave()
	for wave := 0; wave < s.Waves; wave++ {
		markers := int64(0)
		for k := 0; k < opsPerWave; k++ {
			run := k / (s.RunLen + 1)
			set := s.Hot[run%len(s.Hot)]
			if k%(s.RunLen+1) == s.RunLen {
				set = s.Cold[run%len(s.Cold)]
			}
			c.Delegate(set, makeOp(set, seq))
			seq++
		}
		for _, h := range s.Hot {
			c.Delegate(h, func(*prometheus.Ctx) { done.Add(1) })
			markers++
		}
		for done.Load() < markers {
			runtime.Gosched()
		}
		done.Store(0)
	}
}
