package workload

// Generators for the numeric benchmarks: blackscholes options, histogram
// bitmaps, kmeans point clouds, and barnes-hut body distributions.

// Option is one Black-Scholes pricing problem (PARSEC blackscholes input
// row: spot, strike, rate, volatility, time, type).
type Option struct {
	Spot, Strike, Rate, Vol, Time float64
	Call                          bool
}

// OptionsSize returns the blackscholes input scale (Table 2: 16,384 /
// 65,536 / 10,000,000 options; the L class is scaled to keep runtimes
// laptop-friendly while preserving the S:M step).
func OptionsSize(size SizeClass) int {
	return pick(size, 16384, 65536, 1000000)
}

// GenerateOptions draws n options with PARSEC-like parameter ranges.
func GenerateOptions(seed int64, n int) []Option {
	r := newRand(seed)
	opts := make([]Option, n)
	for i := range opts {
		opts[i] = Option{
			Spot:   50 + 100*r.Float64(),
			Strike: 50 + 100*r.Float64(),
			Rate:   0.01 + 0.09*r.Float64(),
			Vol:    0.05 + 0.60*r.Float64(),
			Time:   0.1 + 2.0*r.Float64(),
			Call:   r.Intn(2) == 0,
		}
	}
	return opts
}

// BitmapSize returns the histogram input size in pixels (Table 2: 100 MB /
// 400 MB / 1.4 GB bitmaps at 3 bytes per pixel, scaled down ~40x).
func BitmapSize(size SizeClass) int {
	return pick(size, 1<<20, 4<<20, 12<<20) // pixels
}

// GenerateBitmap produces 3*pixels bytes of RGB data with per-channel
// non-uniform distributions (real images are not white noise; a skewed
// distribution keeps the histogram bins unevenly filled).
func GenerateBitmap(seed int64, pixels int) []byte {
	r := newRand(seed)
	data := make([]byte, 3*pixels)
	for i := 0; i < len(data); i += 3 {
		// Sum of two uniforms gives a triangular distribution.
		data[i] = byte((r.Intn(128) + r.Intn(128)))
		data[i+1] = byte((r.Intn(256) + r.Intn(256)) / 2)
		data[i+2] = byte(r.Intn(256))
	}
	return data
}

// Point is an n-dimensional kmeans data point.
type Point []float64

// KMeansConfig mirrors Table 2's kmeans rows: points, clusters.
type KMeansConfig struct {
	Seed     int64
	Points   int
	Clusters int
	Dims     int
	Iters    int
}

// KMeansSize returns the kmeans configuration (Table 2: 5,000/50 —
// 10,000/100 — 50,000/100 points/clusters).
func KMeansSize(size SizeClass) KMeansConfig {
	return KMeansConfig{
		Seed:     7,
		Points:   pick(size, 5000, 10000, 50000),
		Clusters: pick(size, 50, 100, 100),
		Dims:     16,
		Iters:    10,
	}
}

// GeneratePoints draws cfg.Points points in cfg.Dims dimensions, clustered
// around cfg.Clusters Gaussian centers so the clustering is meaningful.
func GeneratePoints(cfg KMeansConfig) []Point {
	r := newRand(cfg.Seed)
	centers := make([]Point, cfg.Clusters)
	for i := range centers {
		c := make(Point, cfg.Dims)
		for d := range c {
			c[d] = 100 * r.Float64()
		}
		centers[i] = c
	}
	pts := make([]Point, cfg.Points)
	for i := range pts {
		c := centers[r.Intn(len(centers))]
		p := make(Point, cfg.Dims)
		for d := range p {
			p[d] = c[d] + 5*r.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// NBodyConfig mirrors Table 2's barnes-hut rows: bodies, steps.
type NBodyConfig struct {
	Seed   int64
	Bodies int
	Steps  int
}

// NBodySize returns the barnes-hut configuration (Table 2: 1,000/25 —
// 10,000/50 — 100,000/75 bodies/steps; steps scaled down to keep the
// benchmark minutes-scale).
func NBodySize(size SizeClass) NBodyConfig {
	return NBodyConfig{
		Seed:   11,
		Bodies: pick(size, 1000, 10000, 50000),
		Steps:  pick(size, 4, 6, 8),
	}
}

// Body3 is the generator's body record: position, velocity, mass.
type Body3 struct {
	PX, PY, PZ float64
	VX, VY, VZ float64
	Mass       float64
}

// GenerateBodies draws bodies from a uniform-in-sphere distribution with
// small random velocities (a crude Plummer-like model).
func GenerateBodies(cfg NBodyConfig) []Body3 {
	r := newRand(cfg.Seed)
	bodies := make([]Body3, cfg.Bodies)
	for i := range bodies {
		// Rejection-sample the unit ball, then scale.
		var x, y, z float64
		for {
			x, y, z = 2*r.Float64()-1, 2*r.Float64()-1, 2*r.Float64()-1
			if x*x+y*y+z*z <= 1 {
				break
			}
		}
		bodies[i] = Body3{
			PX: 100 * x, PY: 100 * y, PZ: 100 * z,
			VX: r.NormFloat64(), VY: r.NormFloat64(), VZ: r.NormFloat64(),
			Mass: 1 + 9*r.Float64(),
		}
	}
	return bodies
}
