package workload

// Transaction generator for freqmine, in the style of the IBM Quest
// synthetic data generator used by the original FIMI benchmarks: maximal
// potentially-frequent itemsets ("patterns") are drawn first, then each
// transaction is assembled from a few patterns plus noise items, so the
// database contains genuinely frequent itemsets for FP-growth to find.

// Transaction is a list of item ids (deduplicated, unordered).
type Transaction []int

// TxnConfig parameterizes the freqmine input (Table 2: 250,000 / 500,000 /
// 990,000 transactions, scaled down 10x).
type TxnConfig struct {
	Seed       int64
	Count      int     // number of transactions
	Items      int     // universe of item ids
	Patterns   int     // number of embedded frequent patterns
	PatternLen int     // mean pattern length
	TxnLen     int     // mean transaction length
	MinSupport float64 // fraction of Count used as the mining threshold
}

// TxnSize returns the freqmine configuration for a size class.
func TxnSize(size SizeClass) TxnConfig {
	return TxnConfig{
		Seed:       23,
		Count:      pick(size, 25000, 50000, 99000),
		Items:      1000,
		Patterns:   60,
		PatternLen: 6,
		TxnLen:     14,
		MinSupport: 0.003,
	}
}

// GenerateTransactions builds the database.
func GenerateTransactions(cfg TxnConfig) []Transaction {
	r := newRand(cfg.Seed)
	patterns := make([][]int, cfg.Patterns)
	for i := range patterns {
		n := 2 + r.Intn(2*cfg.PatternLen-2)
		p := make([]int, 0, n)
		seen := map[int]bool{}
		for len(p) < n {
			it := r.Intn(cfg.Items)
			if !seen[it] {
				seen[it] = true
				p = append(p, it)
			}
		}
		patterns[i] = p
	}
	txns := make([]Transaction, cfg.Count)
	for i := range txns {
		seen := map[int]bool{}
		var t Transaction
		// 1-2 embedded patterns; Zipf-ish pattern choice (low ids frequent).
		nPat := 1 + r.Intn(2)
		for p := 0; p < nPat; p++ {
			idx := r.Intn(cfg.Patterns)
			idx = (idx * r.Intn(cfg.Patterns)) / cfg.Patterns // skew toward 0
			for _, it := range patterns[idx] {
				if !seen[it] {
					seen[it] = true
					t = append(t, it)
				}
			}
		}
		// Noise items to reach the target length.
		for len(t) < cfg.TxnLen/2+r.Intn(cfg.TxnLen) {
			it := r.Intn(cfg.Items)
			if !seen[it] {
				seen[it] = true
				t = append(t, it)
			}
		}
		txns[i] = t
	}
	return txns
}
