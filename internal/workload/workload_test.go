package workload

import (
	"bytes"
	"testing"
)

func TestSizeClassParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SizeClass
		ok   bool
	}{
		{"S", Small, true}, {"m", Medium, true}, {"large", Large, true}, {"x", Small, false},
	} {
		got, ok := ParseSize(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseSize(%q) = %v,%v", tc.in, got, ok)
		}
	}
	if Small.String() != "S" || Medium.String() != "M" || Large.String() != "L" {
		t.Error("SizeClass.String wrong")
	}
}

func TestTextDeterministicAndSized(t *testing.T) {
	cfg := TextConfig{Seed: 1, Bytes: 100000, VocabSize: 500}
	a := GenerateText(cfg)
	b := GenerateText(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("text generation not deterministic")
	}
	if len(a) < cfg.Bytes || len(a) > cfg.Bytes+64 {
		t.Fatalf("size = %d, want ~%d", len(a), cfg.Bytes)
	}
}

func TestTextZipfSkew(t *testing.T) {
	data := GenerateText(TextConfig{Seed: 2, Bytes: 200000, VocabSize: 1000})
	counts := map[string]int{}
	for _, w := range bytes.Fields(data) {
		counts[string(w)]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	// Zipf(1.1): the most common word should dominate well beyond uniform.
	if max < 10*total/len(counts) {
		t.Errorf("distribution looks uniform: max=%d mean=%d", max, total/len(counts))
	}
}

func TestSplitChunksPreservesWords(t *testing.T) {
	data := []byte("alpha beta gamma delta epsilon zeta eta theta iota kappa")
	for n := 1; n <= 8; n++ {
		chunks := SplitChunks(data, n)
		var rejoined []byte
		for _, c := range chunks {
			rejoined = append(rejoined, c...)
		}
		if !bytes.Equal(rejoined, data) {
			t.Fatalf("n=%d: chunks do not reassemble", n)
		}
		for i, c := range chunks[:len(chunks)-1] {
			last := c[len(c)-1]
			if last != ' ' && last != '\n' {
				t.Fatalf("n=%d chunk %d ends mid-word (%q)", n, i, last)
			}
		}
	}
}

func TestSplitChunksDegenerate(t *testing.T) {
	if got := SplitChunks(nil, 4); len(got) != 0 {
		t.Errorf("SplitChunks(nil) = %v", got)
	}
	one := SplitChunks([]byte("abc"), 0)
	if len(one) != 1 || string(one[0]) != "abc" {
		t.Errorf("SplitChunks(n=0) = %v", one)
	}
}

func TestHTMLTreeShape(t *testing.T) {
	cfg := HTMLSize(Small)
	tr := GenerateHTMLTree(cfg)
	if len(tr.Docs) != cfg.Files {
		t.Fatalf("files = %d, want %d", len(tr.Docs), cfg.Files)
	}
	if len(tr.DirChildren) != cfg.Dirs+1 {
		t.Fatalf("dirs = %d, want %d", len(tr.DirChildren), cfg.Dirs+1)
	}
	// All files reachable from the root through DirFiles.
	reach := 0
	var walk func(dir string)
	walk = func(dir string) {
		reach += len(tr.DirFiles[dir])
		for _, sub := range tr.DirChildren[dir] {
			walk(sub)
		}
	}
	walk("/")
	if reach != cfg.Files {
		t.Fatalf("reachable files = %d, want %d", reach, cfg.Files)
	}
	// Content contains anchors drawn from the pool.
	if !bytes.Contains(tr.Docs[0].Content, []byte("<a href=")) {
		t.Fatal("no links generated")
	}
	if tr.TotalBytes() <= 0 {
		t.Fatal("empty corpus")
	}
}

func TestHTMLDeterministic(t *testing.T) {
	a := GenerateHTMLTree(HTMLSize(Small))
	b := GenerateHTMLTree(HTMLSize(Small))
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("nondeterministic file count")
	}
	for i := range a.Docs {
		if a.Docs[i].Path != b.Docs[i].Path || !bytes.Equal(a.Docs[i].Content, b.Docs[i].Content) {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestOptionsRanges(t *testing.T) {
	opts := GenerateOptions(3, 1000)
	if len(opts) != 1000 {
		t.Fatal("wrong count")
	}
	calls := 0
	for _, o := range opts {
		if o.Spot < 50 || o.Spot > 150 || o.Vol <= 0 || o.Time <= 0 {
			t.Fatalf("option out of range: %+v", o)
		}
		if o.Call {
			calls++
		}
	}
	if calls == 0 || calls == 1000 {
		t.Error("option types not mixed")
	}
}

func TestBitmapSizeAndSkew(t *testing.T) {
	data := GenerateBitmap(5, 10000)
	if len(data) != 30000 {
		t.Fatalf("len = %d, want 30000", len(data))
	}
	// Red channel is triangular: mid-range values more common than extremes.
	var hist [256]int
	for i := 0; i < len(data); i += 3 {
		hist[data[i]]++
	}
	if hist[127] <= hist[1] {
		t.Error("red channel not triangular")
	}
}

func TestPointsClustered(t *testing.T) {
	cfg := KMeansConfig{Seed: 9, Points: 2000, Clusters: 5, Dims: 4, Iters: 1}
	pts := GeneratePoints(cfg)
	if len(pts) != 2000 || len(pts[0]) != 4 {
		t.Fatal("wrong shape")
	}
}

func TestBodiesInSphere(t *testing.T) {
	cfg := NBodyConfig{Seed: 1, Bodies: 500, Steps: 1}
	bodies := GenerateBodies(cfg)
	if len(bodies) != 500 {
		t.Fatal("wrong count")
	}
	for _, b := range bodies {
		r2 := b.PX*b.PX + b.PY*b.PY + b.PZ*b.PZ
		if r2 > 100*100+1e-6 {
			t.Fatalf("body outside sphere: r2=%f", r2)
		}
		if b.Mass < 1 || b.Mass > 10 {
			t.Fatalf("mass out of range: %f", b.Mass)
		}
	}
}

func TestTransactionsHaveFrequentPatterns(t *testing.T) {
	cfg := TxnConfig{Seed: 2, Count: 5000, Items: 200, Patterns: 10, PatternLen: 4, TxnLen: 8, MinSupport: 0.02}
	txns := GenerateTransactions(cfg)
	if len(txns) != 5000 {
		t.Fatal("wrong count")
	}
	counts := map[int]int{}
	for _, txn := range txns {
		seen := map[int]bool{}
		for _, it := range txn {
			if it < 0 || it >= cfg.Items {
				t.Fatalf("item %d out of universe", it)
			}
			if seen[it] {
				t.Fatal("duplicate item within transaction")
			}
			seen[it] = true
			counts[it]++
		}
	}
	// At least some items should clear the support threshold.
	freq := 0
	for _, c := range counts {
		if float64(c) >= cfg.MinSupport*float64(cfg.Count) {
			freq++
		}
	}
	if freq < 5 {
		t.Errorf("only %d frequent items; generator too noisy", freq)
	}
}

func TestDedupStreamRedundancy(t *testing.T) {
	lo := GenerateDedupStream(DedupConfig{Seed: 1, Bytes: 1 << 20, SegmentLen: 2048, Redundancy: 0.1})
	hi := GenerateDedupStream(DedupConfig{Seed: 1, Bytes: 1 << 20, SegmentLen: 2048, Redundancy: 0.9})
	if len(lo) != 1<<20 || len(hi) != 1<<20 {
		t.Fatal("wrong sizes")
	}
	// Proxy for dedupability: count distinct 64-byte shingles sampled every
	// 16 bytes. Repeated segments repeat their shingles at any alignment.
	distinct := func(data []byte) int {
		set := map[string]bool{}
		for i := 0; i+64 <= len(data); i += 16 {
			set[string(data[i:i+64])] = true
		}
		return len(set)
	}
	if d1, d2 := distinct(lo), distinct(hi); d2 >= d1 {
		t.Errorf("high redundancy stream has %d distinct blocks, low has %d", d2, d1)
	}
}

func TestDedupMediumAnomaly(t *testing.T) {
	// The Medium class must carry lower redundancy than Small and Large —
	// more unique chunks, more parallel compression work — reproducing the
	// paper's Figure 5b dedup anomaly (medium speedup out of line with
	// input size).
	s, m, l := DedupSize(Small), DedupSize(Medium), DedupSize(Large)
	if m.Redundancy >= s.Redundancy || m.Redundancy >= l.Redundancy {
		t.Fatalf("medium redundancy %f not lower than S %f / L %f", m.Redundancy, s.Redundancy, l.Redundancy)
	}
}

func TestSizeMonotonicity(t *testing.T) {
	if !(OptionsSize(Small) < OptionsSize(Medium) && OptionsSize(Medium) < OptionsSize(Large)) {
		t.Error("options sizes not increasing")
	}
	if !(BitmapSize(Small) < BitmapSize(Medium) && BitmapSize(Medium) < BitmapSize(Large)) {
		t.Error("bitmap sizes not increasing")
	}
	if !(TxnSize(Small).Count < TxnSize(Medium).Count && TxnSize(Medium).Count < TxnSize(Large).Count) {
		t.Error("txn sizes not increasing")
	}
	if !(KMeansSize(Small).Points < KMeansSize(Medium).Points) {
		t.Error("kmeans sizes not increasing")
	}
	if !(NBodySize(Small).Bodies < NBodySize(Medium).Bodies) {
		t.Error("nbody sizes not increasing")
	}
	if !(HTMLSize(Small).Files < HTMLSize(Medium).Files) {
		t.Error("html sizes not increasing")
	}
	if !(DedupSize(Small).Bytes < DedupSize(Medium).Bytes && DedupSize(Medium).Bytes < DedupSize(Large).Bytes) {
		t.Error("dedup sizes not increasing")
	}
	if !(TextSize(Small).Bytes < TextSize(Medium).Bytes) {
		t.Error("text sizes not increasing")
	}
}
