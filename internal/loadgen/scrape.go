package loadgen

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Metrics is one scrape of a Prometheus text exposition, keyed by the
// full series name including its label block ("ss_backend_state" or
// `ss_backend_state{backend="flaky"}`). Just enough parser for the
// harness's assertions — it reads the `name value` and
// `name{labels} value` line shapes ssserve emits and skips comments;
// it is not a general OpenMetrics parser.
type Metrics map[string]float64

// Scrape fetches and parses url (normally http://host/metrics).
func Scrape(url string) (Metrics, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: status %d", url, resp.StatusCode)
	}
	m := Metrics{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split on the LAST space: label values may contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		m[strings.TrimSpace(line[:i])] = v
	}
	return m, sc.Err()
}

// Value returns the exact series, e.g. `ss_requests_total`.
func (m Metrics) Value(series string) (float64, bool) {
	v, ok := m[series]
	return v, ok
}

// Sum adds every series whose name (before any label block) equals
// name — the way to total a labeled family like ss_breaker_opens_total
// across backends.
func (m Metrics) Sum(name string) float64 {
	var total float64
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}
