package loadgen

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildServer compiles the real ssserve binary once per test binary —
// the recovery drill is about surviving SIGKILL, which only a separate
// process can demonstrate (an in-process "kill" cannot lose user-space
// buffers the way a dead process does).
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ssserve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/ssserve")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/ssserve: %v\n%s", err, out)
	}
	return bin
}

func runDrill(t *testing.T, bin, fsync string) *RecoveryResult {
	t.Helper()
	res, err := RunRecovery(RecoveryProfile{
		ServerBin:     bin,
		StateDir:      filepath.Join(t.TempDir(), "state"),
		Fsync:         fsync,
		EpochInterval: 20 * time.Millisecond,
		KillAfter:     600 * time.Millisecond,
		Phase1:        Profile{Workers: 6, HotKeys: 2, ColdKeys: 16},
		Phase2:        Profile{Workers: 6, Requests: 800, HotKeys: 2, ColdKeys: 16, Seed: 7},
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("fsync=%s drill: %v", fsync, err)
	}
	for _, v := range res.Violations {
		t.Errorf("fsync=%s: VIOLATION: %s", fsync, v)
	}
	if res.ProbedKeys == 0 {
		t.Fatalf("fsync=%s: no boundary probes ran", fsync)
	}
	return res
}

// TestCrashRecoveryFsyncAlways is the strongest contract: SIGKILL
// mid-traffic, restart on the same state dir, and NO acknowledged
// response may be lost — every boundary probe must return a sequence
// strictly above its key's max acked sequence.
func TestCrashRecoveryFsyncAlways(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	bin := buildServer(t)
	res := runDrill(t, bin, "always")
	if res.RecoveredSessions == 0 {
		t.Fatal("restart recovered no sessions")
	}
}

// TestCrashRecoveryFsyncRotation allows at most one epoch of acked tail
// loss: probes are checked against the floor of acks older than two
// epochs before the kill.
func TestCrashRecoveryFsyncRotation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	bin := buildServer(t)
	res := runDrill(t, bin, "rotation")
	if res.RecoveredSessions == 0 {
		t.Fatal("restart recovered no sessions")
	}
}
