package loadgen

// Crash-restart recovery harness: boots a REAL ssserve process over TCP,
// drives live traffic at it, SIGKILLs it mid-stream, restarts it against
// the same state directory, and asserts the durability contract from the
// only vantage point that matters — the client's:
//
//   - Per-key sequences stay monotonic across the restart boundary
//     relative to the durable floor: a restarted server never re-issues a
//     sequence at or below what the fsync policy promised to keep.
//   - The loss bound holds: fsync=always means every acknowledged
//     response survives the kill; fsync=rotation means everything
//     acknowledged more than a rotation margin before the kill survives
//     (at most ~one epoch of acked tail may be lost); fsync=off promises
//     nothing for a kill (and the harness asserts nothing).
//   - The restarted server reports its recovery on /healthz and then
//     sustains a full second load phase with the ordinary Check bounds,
//     finishing with a clean SIGTERM drain (exit status 0).
//
// SIGKILL — not SIGTERM — is the point: the process gets no chance to
// flush, drain, or snapshot. What survives is exactly what the journal's
// fsync policy already pushed through the user-space boundary.

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// RecoveryProfile parameterizes one crash-restart drill.
type RecoveryProfile struct {
	ServerBin string // path to the ssserve binary (required)
	StateDir  string // state directory shared across the restart (required)

	Fsync         string        // journal fsync policy: off, rotation, always (default rotation)
	EpochInterval time.Duration // ssserve -epoch-interval; also sets the rotation loss margin (default 25ms)
	KillAfter     time.Duration // how long phase 1 traffic runs before SIGKILL (default 1s)

	// Phase1 and Phase2 shape the before/after load. BaseURL and TrackAcks
	// are managed by the harness; zero-value profiles take Run's defaults.
	Phase1, Phase2 Profile

	ServerArgs []string // extra ssserve flags for both boots

	Logf func(format string, args ...any) // progress narration (default discard)
}

// RecoveryResult is what the drill observed.
type RecoveryResult struct {
	Phase1, Phase2    *Result
	RecoveredSessions int // from the restarted server's /healthz
	TruncatedRecords  int // torn journal frames the restart truncated
	ProbedKeys        int // keys floor-checked across the boundary
	Violations        []string
}

func (p *RecoveryProfile) withDefaults() error {
	if p.ServerBin == "" || p.StateDir == "" {
		return fmt.Errorf("loadgen: RecoveryProfile.ServerBin and StateDir are required")
	}
	switch p.Fsync {
	case "":
		p.Fsync = "rotation"
	case "off", "rotation", "always":
	default:
		return fmt.Errorf("loadgen: RecoveryProfile.Fsync %q: want off, rotation, or always", p.Fsync)
	}
	if p.EpochInterval <= 0 {
		p.EpochInterval = 25 * time.Millisecond
	}
	if p.KillAfter <= 0 {
		p.KillAfter = time.Second
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
	return nil
}

// RunRecovery executes the drill. The error return covers harness
// failures (binary missing, server never became ready); contract
// violations land in RecoveryResult.Violations.
func RunRecovery(p RecoveryProfile) (*RecoveryResult, error) {
	if err := p.withDefaults(); err != nil {
		return nil, err
	}
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr
	res := &RecoveryResult{}

	// --- boot 1 ---
	p.Logf("recovery: boot 1 on %s (fsync=%s)", addr, p.Fsync)
	srv1, err := p.startServer(addr)
	if err != nil {
		return nil, err
	}
	if err := waitReady(base, 10*time.Second); err != nil {
		srv1.kill()
		return nil, fmt.Errorf("boot 1: %w\n%s", err, srv1.output())
	}

	// --- phase 1: load, then SIGKILL mid-traffic ---
	phase1 := p.Phase1
	phase1.BaseURL = base
	phase1.TrackAcks = true
	if phase1.Requests <= 0 {
		phase1.Requests = 1 << 20 // effectively unbounded; the kill ends the phase
	}
	if phase1.Timeout <= 0 {
		phase1.Timeout = 2 * time.Second
	}
	stop := make(chan struct{})
	phase1.Stop = stop
	phase1Done := make(chan struct{})
	go func() {
		defer close(phase1Done)
		res.Phase1, _ = Run(phase1)
	}()
	time.Sleep(p.KillAfter)
	killTime := time.Now()
	p.Logf("recovery: SIGKILL after %v of traffic", p.KillAfter)
	srv1.kill()
	close(stop)
	<-phase1Done
	if res.Phase1 == nil || res.Phase1.Healthy == 0 {
		return nil, fmt.Errorf("phase 1 produced no healthy responses before the kill\n%s", srv1.output())
	}
	p.Logf("recovery: phase 1 acked %d responses across %d keys",
		res.Phase1.Healthy, len(res.Phase1.Acks))

	// --- boot 2: same state dir ---
	srv2, err := p.startServer(addr)
	if err != nil {
		return nil, err
	}
	defer srv2.kill() // no-op after a clean stop
	if err := waitReady(base, 10*time.Second); err != nil {
		return nil, fmt.Errorf("boot 2 (recovery): %w\n%s", err, srv2.output())
	}
	res.RecoveredSessions, res.TruncatedRecords, err = scrapeRecovery(base)
	if err != nil {
		return nil, fmt.Errorf("boot 2 healthz: %w", err)
	}
	p.Logf("recovery: boot 2 recovered %d sessions, truncated %d journal records",
		res.RecoveredSessions, res.TruncatedRecords)
	if res.RecoveredSessions == 0 && p.Fsync != "off" {
		res.Violations = append(res.Violations,
			fmt.Sprintf("restart recovered 0 sessions despite %d acked responses under fsync=%s",
				res.Phase1.Healthy, p.Fsync))
	}

	// --- boundary probes: one request per key, checked against the floor ---
	//
	// The durable floor per key is the highest sequence the fsync policy
	// promised to keep: every ack for always; acks older than two epochs
	// before the kill for rotation (one epoch is the sync cadence, the
	// second absorbs the kill racing an in-progress rotation); nothing for
	// off. The probe's sequence must come back strictly above the floor —
	// at or below it would mean the server re-issued an acknowledged,
	// durable sequence number.
	var cutoff time.Time
	switch p.Fsync {
	case "rotation":
		cutoff = killTime.Add(-2 * p.EpochInterval)
	case "off":
		cutoff = time.Time{} // floor stays 0: no probe can violate it
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for key := range res.Phase1.Acks {
		var floor uint64
		if p.Fsync == "always" {
			floor = res.Phase1.MaxAckedBefore(key, time.Time{})
		} else if p.Fsync == "rotation" {
			floor = res.Phase1.MaxAckedBefore(key, cutoff)
		}
		status, body, err := doGet(client, base+"/bump", key)
		if err != nil || status != http.StatusOK {
			res.Violations = append(res.Violations,
				fmt.Sprintf("boundary probe for key %s failed: status %d err %v", key, status, err))
			continue
		}
		res.ProbedKeys++
		seq, ok := parseSeq(body)
		if !ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("boundary probe for key %s: unparseable body %q", key, body))
			continue
		}
		if seq <= floor {
			res.Violations = append(res.Violations,
				fmt.Sprintf("key %s: post-restart seq %d <= durable floor %d (fsync=%s lost acknowledged state)",
					key, seq, floor, p.Fsync))
		}
	}
	p.Logf("recovery: %d boundary probes checked", res.ProbedKeys)

	// --- phase 2: the restarted server must serve a full run cleanly ---
	phase2 := p.Phase2
	phase2.BaseURL = base
	res.Phase2, err = Run(phase2)
	if err != nil {
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	res.Violations = append(res.Violations, prefixAll("phase 2: ", res.Phase2.Check(phase2))...)

	// --- clean drain: SIGTERM, expect exit 0 ---
	if err := srv2.stop(15 * time.Second); err != nil {
		res.Violations = append(res.Violations,
			fmt.Sprintf("post-recovery drain: %v\n%s", err, srv2.output()))
	} else {
		p.Logf("recovery: drained cleanly")
	}
	return res, nil
}

func prefixAll(prefix string, vs []string) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = prefix + v
	}
	return out
}

// serverProc is one ssserve process under harness control.
type serverProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func (p *RecoveryProfile) startServer(addr string) (*serverProc, error) {
	args := []string{
		"-addr", addr,
		"-state-dir", p.StateDir,
		"-fsync", p.Fsync,
		"-epoch-interval", p.EpochInterval.String(),
	}
	args = append(args, p.ServerArgs...)
	var out bytes.Buffer
	cmd := exec.Command(p.ServerBin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("loadgen: start %s: %w", p.ServerBin, err)
	}
	return &serverProc{cmd: cmd, out: &out}, nil
}

// kill SIGKILLs the process and reaps it. Safe to call repeatedly.
func (s *serverProc) kill() {
	if s.cmd.Process != nil {
		s.cmd.Process.Kill()
	}
	s.cmd.Wait()
}

// stop SIGTERMs the process and requires a clean exit within timeout —
// the graceful-drain contract.
func (s *serverProc) stop(timeout time.Duration) error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("exit status: %w", err)
		}
		return nil
	case <-time.After(timeout):
		s.cmd.Process.Kill()
		<-done
		return fmt.Errorf("did not drain within %v", timeout)
	}
}

// output returns what the process wrote, for failure diagnostics. Call
// only after the process has been reaped (kill or stop).
func (s *serverProc) output() string { return s.out.String() }

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

// waitReady polls /healthz until the server answers 200.
func waitReady(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: server not ready within %v (last: %v)", timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// scrapeRecovery reads recovered_sessions and journal_truncated_records
// off /healthz — the lines the durable serving tier adds when a state
// store is configured.
func scrapeRecovery(base string) (sessions, truncated int, err error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		return 0, 0, err
	}
	found := false
	for _, line := range strings.Split(body.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		n, perr := strconv.Atoi(fields[1])
		if perr != nil {
			continue
		}
		switch fields[0] {
		case "recovered_sessions":
			sessions, found = n, true
		case "journal_truncated_records":
			truncated = n
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("healthz carries no recovered_sessions line (durability not enabled?):\n%s", body.String())
	}
	return sessions, truncated, nil
}
