package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// counterHandler mirrors ssserve's /bump response shape, which the
// order checker parses.
func counterHandler(s *serve.Session, r *http.Request) (int, string) {
	return http.StatusOK, fmt.Sprintf("key=%s seq=%d\n", s.Key, s.Seq)
}

// TestChaosProfileAgainstLiveServer is the acceptance harness the issue
// specifies, run in-process under the race detector against a real TCP
// socket: a two-backend pool where one backend carries the full chaos
// profile — seeded 5%% errors, periodic latency spikes, and one flap
// window long enough to open its breaker — under 90/10 key skew. The
// assertions are the serving tier's robustness contract: every request
// resolves (zero hung), per-key order holds across retries and
// failovers, healthy p99 stays bounded, the flapping backend's breaker
// opens AND recovers, and drain completes with nothing unanswered.
func TestChaosProfileAgainstLiveServer(t *testing.T) {
	good := serve.NewHandlerBackend("steady", counterHandler)
	flaky := &serve.ChaosBackend{
		Inner:   serve.NewHandlerBackend("flaky", counterHandler),
		Errors:  chaos.SeededErrors(0xC0FFEE, 0.05),
		Latency: chaos.SpikeEvery(40, 50*time.Millisecond),
		Flap:    chaos.FlapBetween(60, 80),
	}
	pool := serve.NewPool(3, 25*time.Millisecond, good, flaky)

	srv, err := serve.New(serve.Config{
		Backend:        pool,
		RequestTimeout: 2 * time.Second,
		RetryMax:       3,
		RetryBase:      2 * time.Millisecond,
		EpochInterval:  50 * time.Millisecond,
		MaxInflight:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := Profile{
		BaseURL:      ts.URL,
		Workers:      8,
		Requests:     1500,
		HotKeys:      2,
		ColdKeys:     64,
		HotFraction:  0.9,
		Seed:         7,
		Timeout:      10 * time.Second, // hang detector, not a latency bound
		MaxP99:       2 * time.Second,  // generous: race-instrumented run
		MaxErrorRate: 0.05,             // injected errors must mostly heal via retry/failover
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	for _, v := range res.Check(p) {
		t.Errorf("violation: %s", v)
	}
	if res.Healthy == 0 {
		t.Fatal("no healthy responses at all")
	}

	// The flap window must have opened the flaky backend's breaker at
	// least once, and once the window passed a half-open probe must have
	// closed it again. Recovery can need a few extra requests (probes
	// only run when traffic arrives), so poll with a deadline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := Scrape(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		opens := m.Sum("ss_breaker_opens_total")
		state, ok := m.Value(`ss_backend_state{backend="flaky"}`)
		if opens >= 1 && ok && state == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never cycled: opens=%v state=%v (ok=%v)", opens, state, ok)
		}
		// Nudge traffic so half-open probes happen.
		if _, _, err := doGet(http.DefaultClient, ts.URL+"/bump", "probe"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Drain with zero accepted-but-unanswered requests.
	ts.Close()
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDeterministicKeyStream: same seed, same request mix — the
// property that makes a chaos run replayable.
func TestDeterministicKeyStream(t *testing.T) {
	p := Profile{BaseURL: "http://unused"}
	if err := p.withDefaults(); err != nil {
		t.Fatal(err)
	}
	stream := func(seed uint64) []string {
		w := &worker{rng: seed ^ 0x9e3779b97f4a7c15, last: map[string]uint64{}}
		keys := make([]string, 200)
		for i := range keys {
			keys[i] = pickKey(w, &p)
		}
		return keys
	}
	a, b := stream(7), stream(7)
	hot := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %s vs %s", i, a[i], b[i])
		}
		if strings.HasPrefix(a[i], "hot-") {
			hot++
		}
	}
	// 90% hot ± sampling noise.
	if hot < 150 || hot > 200 {
		t.Fatalf("hot fraction off: %d/200 hot keys", hot)
	}
	if c := stream(8); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] && a[3] == c[3] {
		t.Fatal("different seeds produced the same key prefix")
	}
}

func TestScrapeParsesExposition(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `# HELP ss_requests_total Requests served.
# TYPE ss_requests_total counter
ss_requests_total 42
ss_breaker_opens_total{backend="flaky"} 2
ss_breaker_opens_total{backend="steady"} 0
ss_backend_state{backend="flaky"} 1

malformed line without value
`)
	}))
	defer ts.Close()

	m, err := Scrape(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("ss_requests_total"); !ok || v != 42 {
		t.Fatalf("ss_requests_total = %v (ok=%v)", v, ok)
	}
	if got := m.Sum("ss_breaker_opens_total"); got != 2 {
		t.Fatalf("Sum(opens) = %v, want 2", got)
	}
	if v, ok := m.Value(`ss_backend_state{backend="flaky"}`); !ok || v != 1 {
		t.Fatalf("labeled gauge = %v (ok=%v)", v, ok)
	}
	if _, ok := m.Value("ss_backend_state"); ok {
		t.Fatal("bare name matched a labeled series")
	}
}

func TestCheckFlagsViolations(t *testing.T) {
	p := Profile{BaseURL: "http://unused", MaxP99: 100 * time.Millisecond, MaxErrorRate: 0.01}
	r := &Result{
		Requests: 100,
		ByStatus: map[int]int{200: 90, 502: 5, 504: 5},
		Hung:     1,
		DupSeqs:  2,
		P99:      200 * time.Millisecond,
	}
	v := r.Check(p)
	want := []string{"hung", "duplicate", "p99", "error rate"}
	for _, w := range want {
		found := false
		for _, msg := range v {
			if strings.Contains(msg, w) {
				found = true
			}
		}
		if !found {
			t.Fatalf("violations %q missing %q", v, w)
		}
	}

	// A clean run with only shed 5xx (503/504) passes the error budget.
	clean := &Result{Requests: 100, ByStatus: map[int]int{200: 80, 503: 10, 504: 10}, P99: 50 * time.Millisecond}
	if v := clean.Check(p); len(v) != 0 {
		t.Fatalf("clean run flagged: %q", v)
	}
}

func TestParseSeq(t *testing.T) {
	cases := []struct {
		body string
		n    uint64
		ok   bool
	}{
		{"key=hot-1 seq=17\n", 17, true},
		{"key=x seq=3", 3, true},
		{"not a counter body", 0, false},
		{"seq=abc\n", 0, false},
	}
	for _, c := range cases {
		n, ok := parseSeq(c.body)
		if n != c.n || ok != c.ok {
			t.Fatalf("parseSeq(%q) = %d,%v want %d,%v", c.body, n, ok, c.n, c.ok)
		}
	}
}
