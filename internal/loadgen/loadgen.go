// Package loadgen is the adversarial load-generator harness for the
// serving tier: a deterministic, skewed, chaos-tolerant HTTP client
// fleet that drives a live ssserve endpoint and then ASSERTS on what
// came back — latency quantiles, error budgets, per-key causal order,
// and the one property no dashboard shows: that every request got an
// answer (an expired request must resolve to a definitive 504, never a
// parked connection).
//
// The engine is a library first (the serve stress suite runs it in-proc
// against an httptest socket under -race) and a CLI second (cmd/ssload
// wraps it for the CI smoke job against a real ssserve process). Both
// share the same Profile/Result/Check surface, so a bound that holds in
// the race-instrumented stress test is the same bound CI enforces on
// the real binary.
//
// Key-order checking leans on the ssserve counter handler's response
// shape ("key=K seq=N"): per-key sequence numbers are the serving
// tier's observable serialization order. Two invariants are checked:
// a worker that issues requests for one key back-to-back must see
// strictly increasing sequences (per-key causal order, client view),
// and across ALL workers no sequence for a key may repeat (each request
// executed exactly once, never overlapped — duplicates are the first
// symptom of a key served by two delegates at once).
package loadgen

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	prometheus "repro"
)

// Profile parameterizes one load run. Zero values take the documented
// defaults; assertion bounds at zero are simply not enforced by Check.
type Profile struct {
	BaseURL string // target, e.g. http://127.0.0.1:8080 (required)

	Workers  int // concurrent client goroutines (default 8)
	Requests int // total requests across all workers (default 1000)

	// Key skew: with probability HotFraction a request targets one of
	// HotKeys hot keys, otherwise one of ColdKeys cold keys — the 90/10
	// shape that exercises the router's whole-set stealer.
	HotKeys     int     // default 2
	ColdKeys    int     // default 64
	HotFraction float64 // default 0.9

	// Seed makes the key/choice stream deterministic: same seed, same
	// request sequence per worker.
	Seed uint64

	// Timeout is the per-request client budget and the hang detector: a
	// request the server never answers shows up as Result.Hung, which
	// Check always treats as a violation. Default 5s.
	Timeout time.Duration

	// Assertion bounds, enforced by Check when non-zero.
	MaxP99       time.Duration // p99 over healthy (2xx) responses
	MaxErrorRate float64       // max fraction of 5xx responses other than expected 504/503 sheds

	// TrackAcks records every acknowledged (key, seq) with its client
	// receive time in Result.Acks — the evidence base the crash-recovery
	// harness computes durable floors from (see recovery.go).
	TrackAcks bool

	// Stop, when non-nil, ends the run early: workers check it between
	// requests and return without issuing more. The recovery harness
	// closes it right after SIGKILLing the server, so phase-1 "requests"
	// are real traffic, not a tail of connection-refused spins.
	Stop <-chan struct{}
}

// AckPoint is one acknowledged response: the sequence the server returned
// and when the client finished reading it. An AckPoint is the client-side
// definition of "acked" that the fsync loss bounds are stated over.
type AckPoint struct {
	Seq uint64
	At  time.Time
}

func (p *Profile) withDefaults() error {
	if p.BaseURL == "" {
		return fmt.Errorf("loadgen: Profile.BaseURL is required")
	}
	if _, err := url.Parse(p.BaseURL); err != nil {
		return fmt.Errorf("loadgen: bad BaseURL: %w", err)
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	if p.Requests <= 0 {
		p.Requests = 1000
	}
	if p.HotKeys <= 0 {
		p.HotKeys = 2
	}
	if p.ColdKeys <= 0 {
		p.ColdKeys = 64
	}
	if p.HotFraction <= 0 || p.HotFraction > 1 {
		p.HotFraction = 0.9
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Second
	}
	return nil
}

// Result is what one Run observed. Latency quantiles cover healthy
// (2xx) responses only: an injected-error 502 or a shed 503 answers
// fast by design and would flatter the histogram.
type Result struct {
	Requests int         // requests issued
	ByStatus map[int]int // responses by HTTP status
	Hung     int         // client-timeout expirations: requests never answered
	Errors   int         // transport failures (refused, reset, ...)

	DupSeqs         int      // (key, seq) pairs seen more than once across the fleet
	OrderViolations []string // first few per-worker monotonicity breaks, human-readable

	P50, P99, Max time.Duration // over healthy responses
	Healthy       int           // 2xx count feeding the quantiles

	// Acks collects acknowledged sequences per key, in receive order per
	// worker (interleaved across workers). Nil unless Profile.TrackAcks.
	Acks map[string][]AckPoint
}

// MaxAckedBefore returns the highest sequence acknowledged for key at or
// before cutoff (zero cutoff = no bound, consider every ack). This is the
// durable floor: under fsync=always the floor uses no cutoff; under
// fsync=rotation the caller passes killTime minus a rotation margin.
func (r *Result) MaxAckedBefore(key string, cutoff time.Time) uint64 {
	var max uint64
	for _, a := range r.Acks[key] {
		if !cutoff.IsZero() && a.At.After(cutoff) {
			continue
		}
		if a.Seq > max {
			max = a.Seq
		}
	}
	return max
}

// run-internal per-worker state: splitmix64 stream + last-seen seq per key.
type worker struct {
	rng  uint64
	last map[string]uint64
}

func (w *worker) next() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// latency buckets, microseconds: 100µs .. 10s.
var latencyBounds = []int64{
	100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000,
	100000, 200000, 500000, 1000000, 2000000, 5000000, 10000000,
}

// Run executes the profile against the live server and returns what it
// observed. The error return covers harness misuse (bad profile), not
// server misbehavior — that lands in the Result for Check to judge.
func Run(p Profile) (*Result, error) {
	if err := p.withDefaults(); err != nil {
		return nil, err
	}
	base := strings.TrimRight(p.BaseURL, "/")

	client := &http.Client{
		Timeout: p.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        p.Workers * 2,
			MaxIdleConnsPerHost: p.Workers * 2,
		},
	}
	defer client.CloseIdleConnections()

	hist := prometheus.NewHistogram(latencyBounds...)
	res := &Result{ByStatus: map[int]int{}}
	if p.TrackAcks {
		res.Acks = map[string][]AckPoint{}
	}
	var (
		mu   sync.Mutex // guards res and seen
		seen = map[string]map[uint64]bool{}
		wg   sync.WaitGroup
	)

	perWorker := p.Requests / p.Workers
	extra := p.Requests % p.Workers
	for wi := 0; wi < p.Workers; wi++ {
		n := perWorker
		if wi < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(wi, n int) {
			defer wg.Done()
			w := &worker{rng: p.Seed ^ (uint64(wi)+1)*0x9e3779b97f4a7c15, last: map[string]uint64{}}
			for i := 0; i < n; i++ {
				select {
				case <-p.Stop: // nil channel never fires
					return
				default:
				}
				key := pickKey(w, &p)
				start := time.Now()
				status, body, err := doGet(client, base+"/bump", key)
				lat := time.Since(start)

				mu.Lock()
				res.Requests++
				if err != nil {
					if isTimeout(err) {
						res.Hung++
					} else {
						res.Errors++
					}
					mu.Unlock()
					continue
				}
				res.ByStatus[status]++
				if status >= 200 && status < 300 {
					res.Healthy++
					hist.Observe(lat.Microseconds())
					if seq, ok := parseSeq(body); ok {
						if prev, dup := w.last[key]; dup && seq <= prev {
							if len(res.OrderViolations) < 8 {
								res.OrderViolations = append(res.OrderViolations,
									fmt.Sprintf("worker %d key %s: seq %d after %d", wi, key, seq, prev))
							}
						}
						w.last[key] = seq
						ks := seen[key]
						if ks == nil {
							ks = map[uint64]bool{}
							seen[key] = ks
						}
						if ks[seq] {
							res.DupSeqs++
						}
						ks[seq] = true
						if p.TrackAcks {
							res.Acks[key] = append(res.Acks[key], AckPoint{Seq: seq, At: start.Add(lat)})
						}
					}
				}
				mu.Unlock()
			}
		}(wi, n)
	}
	wg.Wait()

	res.P50 = time.Duration(hist.Quantile(0.50)) * time.Microsecond
	res.P99 = time.Duration(hist.Quantile(0.99)) * time.Microsecond
	res.Max = time.Duration(hist.Quantile(1.0)) * time.Microsecond
	return res, nil
}

func pickKey(w *worker, p *Profile) string {
	r := w.next()
	// Top 53 bits as a [0,1) fraction — enough resolution for a skew knob.
	if float64(r>>11)/float64(1<<53) < p.HotFraction {
		return fmt.Sprintf("hot-%d", w.next()%uint64(p.HotKeys))
	}
	return fmt.Sprintf("cold-%d", w.next()%uint64(p.ColdKeys))
}

func doGet(c *http.Client, u, key string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("X-Session-Key", key)
	resp, err := c.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}

func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return false
}

// parseSeq extracts N from a "key=K seq=N" counter-handler body.
func parseSeq(body string) (uint64, bool) {
	i := strings.Index(body, "seq=")
	if i < 0 {
		return 0, false
	}
	s := strings.TrimSpace(body[i+4:])
	if j := strings.IndexByte(s, '\n'); j >= 0 {
		s = s[:j]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

// Check evaluates the profile's assertions against the result and
// returns the violations (empty = the run passed). Hung requests and
// order violations are unconditional failures; latency and error-rate
// bounds apply only when the profile sets them.
func (r *Result) Check(p Profile) []string {
	_ = p.withDefaults()
	var v []string
	if r.Hung > 0 {
		v = append(v, fmt.Sprintf("%d requests hung past the %v client budget (every request must resolve)", r.Hung, p.Timeout))
	}
	if r.Errors > 0 {
		v = append(v, fmt.Sprintf("%d transport errors", r.Errors))
	}
	if r.DupSeqs > 0 {
		v = append(v, fmt.Sprintf("%d duplicate (key, seq) pairs: per-key execution overlapped", r.DupSeqs))
	}
	for _, o := range r.OrderViolations {
		v = append(v, "per-key order violation: "+o)
	}
	if p.MaxP99 > 0 && r.P99 > p.MaxP99 {
		v = append(v, fmt.Sprintf("healthy p99 %v exceeds bound %v", r.P99, p.MaxP99))
	}
	if p.MaxErrorRate > 0 && r.Requests > 0 {
		// 504 (expired budget) and 503 (sheds, backpressure) are the tier
		// answering honestly under chaos; 500/502 and anything else 5xx
		// count against the budget.
		bad := 0
		for status, n := range r.ByStatus {
			if status >= 500 && status != 503 && status != 504 {
				bad += n
			}
		}
		if rate := float64(bad) / float64(r.Requests); rate > p.MaxErrorRate {
			v = append(v, fmt.Sprintf("error rate %.3f (%d/%d non-shed 5xx) exceeds budget %.3f",
				rate, bad, r.Requests, p.MaxErrorRate))
		}
	}
	return v
}

// String renders the run report the way cmd/ssload prints it.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d  healthy %d  hung %d  transport-errors %d\n",
		r.Requests, r.Healthy, r.Hung, r.Errors)
	statuses := make([]int, 0, len(r.ByStatus))
	for s := range r.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "  status %d: %d\n", s, r.ByStatus[s])
	}
	fmt.Fprintf(&b, "healthy latency: p50 %v  p99 %v  max %v\n", r.P50, r.P99, r.Max)
	if r.DupSeqs > 0 || len(r.OrderViolations) > 0 {
		fmt.Fprintf(&b, "ORDER: %d duplicate seqs, %d monotonicity breaks\n", r.DupSeqs, len(r.OrderViolations))
	}
	return b.String()
}
