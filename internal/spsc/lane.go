package spsc

import (
	"runtime"
	"sync/atomic"
)

// Lane is the SPSC queue variant behind recursive delegation: a bounded
// lap-stamped value ring (same slot machinery as Queue) backed by an
// unbounded linked-list spill that absorbs overflow, so the producer-side
// Push NEVER blocks. Recursive mode needs that property for deadlock
// freedom: a delegate may delegate to a set it itself owns — or to a peer
// that is simultaneously delegating back — and a bounded queue's blocking
// push could then wait on a lane only the blocked context (or a blocked
// cycle of contexts) could drain. In steady state the ring absorbs all
// traffic and a push writes the invocation record by value with zero heap
// allocations; only overflow pays one node allocation per value.
//
// FIFO across the two tiers is preserved by a sticky spill mode: once a
// value spills, every later push spills too, until the producer observes
// (via the published spillPopped counter) that the consumer has drained
// the entire spill list — only then may the ring be used again. The
// consumer always drains ring before spill, which is correct because the
// resume rule makes "ring values present are older than spill values
// present" an invariant.
//
// PushBlocking is the complementary producer call for contexts that are
// never part of a delegation cycle (the program context, which no delegate
// can block on): it parks on ring-full instead of spilling, giving the
// natural backpressure a bounded queue provides. A lane whose producer
// only calls PushBlocking never allocates after construction. The two push
// styles may not be interleaved while a spill is outstanding; the runtime
// uses exactly one style per lane (program lanes block, delegate lanes
// spill), so the case never arises.
//
// Unlike Queue, a Lane publishes no pushed/popped counters and performs no
// consumer-side wake signaling: readiness tracking and consumer parking
// belong to the recursive delegate's pending-lane bitmask (one word for
// all lanes, maintained by the runtime), which replaces per-lane O(lanes)
// polling with an O(1) check. The lane only keeps the producer-side park
// machinery that PushBlocking needs.
type Lane[T any] struct {
	slots []slot[T]
	mask  uint64
	shift uint // log2(capacity), for lap computation

	_    pad
	head uint64 // consumer cursor: next ring slot to read (consumer-private)
	// spillHead is the consumer's end of the spill list (stub-node form).
	spillHead *unode[T]

	_    pad
	tail uint64 // producer cursor: next ring slot to write (producer-private)
	// spillTail is the producer's end of the spill list.
	spillTail *unode[T]
	// spilling records sticky spill mode (producer-private): set when a
	// push overflows the ring, cleared when the producer observes the
	// consumer has drained the whole spill list.
	spilling bool

	_ pad
	// spillPushed counts values ever spilled (producer publishes; doubles
	// as the runtime's spill statistic).
	spillPushed atomic.Uint64
	// spillPopped counts spilled values consumed (consumer publishes); the
	// producer compares it against spillPushed to leave spill mode.
	spillPopped atomic.Uint64
	// producerSleep/wakeProducer park a PushBlocking caller on ring-full.
	producerSleep atomic.Int32
	wakeProducer  chan struct{}
}

// NewLane returns a lane with ring capacity rounded up to a power of two
// (DefaultCapacity when non-positive). Like NewQueue, construction is O(1)
// in touched memory: the zero-valued slots mean "free for lap 0".
func NewLane[T any](capacity int) *Lane[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := 1
	shift := uint(0)
	for c < capacity {
		c <<= 1
		shift++
	}
	stub := &unode[T]{}
	return &Lane[T]{
		slots:        make([]slot[T], c),
		mask:         uint64(c - 1),
		shift:        shift,
		spillHead:    stub,
		spillTail:    stub,
		wakeProducer: make(chan struct{}, 1),
	}
}

func (l *Lane[T]) freeStamp(p uint64) uint64 { return (p >> l.shift) << 1 }
func (l *Lane[T]) fullStamp(p uint64) uint64 { return (p>>l.shift)<<1 | 1 }

// Cap returns the ring capacity (the spill tier is unbounded).
func (l *Lane[T]) Cap() int { return len(l.slots) }

// Spills returns how many values have overflowed to the spill list since
// construction. Safe from any goroutine.
func (l *Lane[T]) Spills() uint64 { return l.spillPushed.Load() }

// pushSpill appends v to the spill list and publishes the spill count. The
// node is linked before the count is published, so a producer that later
// observes spillPopped == spillPushed knows the consumer has consumed
// every node it linked.
func (l *Lane[T]) pushSpill(v T) {
	n := &unode[T]{val: v}
	l.spillTail.next.Store(n)
	l.spillTail = n
	l.spillPushed.Store(l.spillPushed.Load() + 1) // single writer
}

// tryRing writes v into the ring if spill mode is off and a slot is free.
func (l *Lane[T]) tryRing(v T) bool {
	s := &l.slots[l.tail&l.mask]
	if s.seq.Load() != l.freeStamp(l.tail) {
		return false // ring full: consumer has not freed this slot yet
	}
	s.val = v
	s.seq.Store(l.fullStamp(l.tail))
	l.tail++
	return true
}

// Push inserts v without ever blocking, spilling to the unbounded list on
// ring overflow. It reports whether the value spilled. Producer method.
func (l *Lane[T]) Push(v T) (spilled bool) {
	if l.spilling {
		if l.spillPopped.Load() != l.spillPushed.Load() {
			l.pushSpill(v)
			return true
		}
		// The consumer has drained the whole spill list; anything it pops
		// from the ring from here on was pushed after every spilled value
		// was consumed, so ring-first drain order stays FIFO.
		l.spilling = false
	}
	if l.tryRing(v) {
		return false
	}
	l.spilling = true
	l.pushSpill(v)
	return true
}

// PushBlocking inserts v, parking while the ring is full, and never
// spills (unless a spill from a prior Push is still outstanding, in which
// case FIFO requires joining it). For producers that nothing in the
// consumer's progress can depend on — the runtime's program context.
// Producer method.
func (l *Lane[T]) PushBlocking(v T) {
	if l.spilling {
		if l.spillPopped.Load() != l.spillPushed.Load() {
			l.pushSpill(v)
			return
		}
		l.spilling = false
	}
	for spin := 0; ; {
		if l.tryRing(v) {
			return
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park until the consumer frees a slot. Re-check after arming the
		// sleep flag to avoid a lost wakeup.
		l.producerSleep.Store(sleeping)
		if l.slots[l.tail&l.mask].seq.Load() == l.freeStamp(l.tail) {
			l.producerSleep.Store(awake)
			continue
		}
		<-l.wakeProducer
		l.producerSleep.Store(awake)
		spin = 0
	}
}

// TryPop removes and returns the oldest value without blocking; ok is
// false when the lane is empty. Ring before spill — see the type comment
// for why that order is FIFO. Consumer method.
func (l *Lane[T]) TryPop() (T, bool) {
	var zero T
	s := &l.slots[l.head&l.mask]
	if s.seq.Load() == l.fullStamp(l.head) {
		v := s.val
		s.val = zero // drop references for GC
		s.seq.Store(l.freeStamp(l.head + uint64(len(l.slots))))
		l.head++
		l.signalProducer()
		return v, true
	}
	if next := l.spillHead.next.Load(); next != nil {
		v := next.val
		next.val = zero
		l.spillHead = next
		l.spillPopped.Store(l.spillPopped.Load() + 1) // single writer
		return v, true
	}
	return zero, false
}

// PopBatch removes up to len(dst) values into dst without blocking and
// returns how many were transferred. Ring slots are re-stamped free as
// they are read (there is no external Len reader to keep consistent, and a
// parked PushBlocking producer should resume as soon as possible); the
// spill-popped counter is published once per run. Consumer method.
func (l *Lane[T]) PopBatch(dst []T) int {
	var zero T
	n := 0
	for n < len(dst) {
		s := &l.slots[l.head&l.mask]
		if s.seq.Load() != l.fullStamp(l.head) {
			break
		}
		dst[n] = s.val
		s.val = zero // drop references for GC before the slot is freed
		s.seq.Store(l.freeStamp(l.head + uint64(len(l.slots))))
		l.head++
		n++
	}
	m := 0
	for n < len(dst) {
		next := l.spillHead.next.Load()
		if next == nil {
			break
		}
		dst[n] = next.val
		next.val = zero
		l.spillHead = next
		n++
		m++
	}
	if m > 0 {
		l.spillPopped.Store(l.spillPopped.Load() + uint64(m))
	}
	if n > 0 {
		l.signalProducer()
	}
	return n
}

// Empty reports whether the lane holds no values. Consumer method (it
// reads the consumer cursor) — a test/diagnostic helper: the runtime's
// delegate loop never polls lanes for emptiness, it tracks readiness
// through its pending-lane bitmask and re-checks that (not this) before
// parking.
func (l *Lane[T]) Empty() bool {
	return l.slots[l.head&l.mask].seq.Load() != l.fullStamp(l.head) &&
		l.spillHead.next.Load() == nil
}

func (l *Lane[T]) signalProducer() {
	if l.producerSleep.Load() == sleeping {
		select {
		case l.wakeProducer <- struct{}{}:
		default:
		}
	}
}
