package spsc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Lane is the SPSC queue variant behind recursive delegation: a bounded
// lap-stamped value ring (same slot machinery as Queue) backed by an
// unbounded linked-list spill that absorbs overflow, so the producer-side
// Push NEVER blocks. Recursive mode needs that property for deadlock
// freedom: a delegate may delegate to a set it itself owns — or to a peer
// that is simultaneously delegating back — and a bounded queue's blocking
// push could then wait on a lane only the blocked context (or a blocked
// cycle of contexts) could drain. In steady state the ring absorbs all
// traffic and a push writes the invocation record by value with zero heap
// allocations; overflow pays a node allocation only until the spill-node
// freelist warms up (see the recycling note below).
//
// FIFO across the two tiers is preserved by a sticky spill mode: once a
// value spills, every later push spills too, until the producer observes
// (via the published spillPopped counter) that the consumer has drained
// the entire spill list — only then may the ring be used again. The
// consumer always drains ring before spill, which is correct because the
// resume rule makes "ring values present are older than spill values
// present" an invariant.
//
// PushBlocking is the complementary producer call for contexts that are
// never part of a delegation cycle (the program context, which no delegate
// can block on): it parks on ring-full instead of spilling, giving the
// natural backpressure a bounded queue provides. A lane whose producer
// only calls PushBlocking never allocates after construction. The two push
// styles may not be interleaved while a spill is outstanding; the runtime
// uses exactly one style per lane (program lanes block, delegate lanes
// spill), so the case never arises.
//
// Unlike Queue, a Lane publishes no pushed/popped counters and performs no
// consumer-side wake signaling: readiness tracking and consumer parking
// belong to the recursive delegate's pending-lane bitmask (one word for
// all lanes, maintained by the runtime), which replaces per-lane O(lanes)
// polling with an O(1) check. The lane only keeps the producer-side park
// machinery that PushBlocking needs.
//
// Spill nodes are recycled: the consumer hands each consumed node back
// through a small per-lane SPSC freelist ring (nil/non-nil pointer slots
// are the stamps), overflowing into an optional NodePool shared across
// lanes, so a workload that spills in steady state — delegation cycles,
// sustained self-delegation — stops paying one heap allocation per spilled
// value once the first burst has primed the freelist.
type Lane[T any] struct {
	slots []slot[T]
	mask  uint64
	shift uint // log2(capacity), for lap computation

	// free is the spill-node freelist ring: consumed spill nodes travel
	// back to the producer through it (consumer stores, producer swaps out;
	// a nil slot is "empty", non-nil "full", so no separate stamps). Shared
	// by both sides but each side only touches its own cursor.
	free []atomic.Pointer[unode[T]]
	// pool, when non-nil, absorbs freelist overflow and feeds freelist
	// misses; shared across the lanes of one runtime.
	pool *NodePool[T]

	_    pad
	head uint64 // consumer cursor: next ring slot to read (consumer-private)
	// spillHead is the consumer's end of the spill list (stub-node form).
	spillHead *unode[T]
	// freePut is the consumer's cursor into free (next slot to recycle into).
	freePut uint64

	_    pad
	tail uint64 // producer cursor: next ring slot to write (producer-private)
	// spillTail is the producer's end of the spill list.
	spillTail *unode[T]
	// freeGet is the producer's cursor into free (next slot to reuse from).
	freeGet uint64
	// spilling records sticky spill mode (producer-private): set when a
	// push overflows the ring, cleared when the producer observes the
	// consumer has drained the whole spill list.
	spilling bool

	_ pad
	// spillPushed counts values ever spilled (producer publishes; doubles
	// as the runtime's spill statistic).
	spillPushed atomic.Uint64
	// spillPopped counts spilled values consumed (consumer publishes); the
	// producer compares it against spillPushed to leave spill mode.
	spillPopped atomic.Uint64
	// producerSleep/wakeProducer park a PushBlocking caller on ring-full.
	producerSleep atomic.Int32
	wakeProducer  chan struct{}
}

// freelistSize is the per-lane spill-node freelist capacity. 64 node
// pointers (512B) covers the spill bursts the recursive engine produces in
// practice — a burst deeper than the freelist falls back to the shared
// NodePool, and only with no pool attached does it reach the allocator.
const freelistSize = 64

// NodePool is a spill-node reservoir shared across lanes (a typed
// sync.Pool): when one lane's freelist overflows the nodes become available
// to every other lane of the same runtime, so a workload whose spill
// pressure moves between lanes still recycles instead of allocating.
type NodePool[T any] struct{ p sync.Pool }

// NewNodePool returns an empty shared spill-node pool.
func NewNodePool[T any]() *NodePool[T] { return &NodePool[T]{} }

func (np *NodePool[T]) get() *unode[T] {
	if np == nil {
		return &unode[T]{}
	}
	if n, _ := np.p.Get().(*unode[T]); n != nil {
		return n
	}
	return &unode[T]{}
}

func (np *NodePool[T]) put(n *unode[T]) {
	if np != nil {
		np.p.Put(n)
	}
}

// NewLane returns a lane with ring capacity rounded up to a power of two
// (DefaultCapacity when non-positive). Like NewQueue, construction is O(1)
// in touched memory: the zero-valued slots mean "free for lap 0".
func NewLane[T any](capacity int) *Lane[T] {
	return NewLanePooled[T](capacity, nil)
}

// NewLanePooled is NewLane with a shared spill-node pool attached: freelist
// overflow and misses go through pool instead of the allocator. A nil pool
// is allowed (per-lane freelist recycling only).
func NewLanePooled[T any](capacity int, pool *NodePool[T]) *Lane[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := 1
	shift := uint(0)
	for c < capacity {
		c <<= 1
		shift++
	}
	stub := &unode[T]{}
	return &Lane[T]{
		slots:        make([]slot[T], c),
		mask:         uint64(c - 1),
		shift:        shift,
		free:         make([]atomic.Pointer[unode[T]], freelistSize),
		pool:         pool,
		spillHead:    stub,
		spillTail:    stub,
		wakeProducer: make(chan struct{}, 1),
	}
}

func (l *Lane[T]) freeStamp(p uint64) uint64 { return (p >> l.shift) << 1 }
func (l *Lane[T]) fullStamp(p uint64) uint64 { return (p>>l.shift)<<1 | 1 }

// Cap returns the ring capacity (the spill tier is unbounded).
func (l *Lane[T]) Cap() int { return len(l.slots) }

// Spills returns how many values have overflowed to the spill list since
// construction. Safe from any goroutine.
func (l *Lane[T]) Spills() uint64 { return l.spillPushed.Load() }

// getNode produces a spill node: recycled from the freelist ring when one
// is waiting, else from the shared pool, else freshly allocated. Producer
// method. Recycled nodes arrive with val zeroed (cleared when popped) and
// next cleared (cleared when recycled).
func (l *Lane[T]) getNode() *unode[T] {
	s := &l.free[l.freeGet&uint64(freelistSize-1)]
	if n := s.Load(); n != nil {
		s.Store(nil)
		l.freeGet++
		return n
	}
	return l.pool.get()
}

// putNode recycles a consumed spill node into the freelist ring, spilling
// it to the shared pool when the ring is full. Consumer method. The node's
// next pointer is severed first — it still points into the live list — so
// a reused node can be linked directly.
func (l *Lane[T]) putNode(n *unode[T]) {
	n.next.Store(nil)
	s := &l.free[l.freePut&uint64(freelistSize-1)]
	if s.Load() == nil {
		s.Store(n)
		l.freePut++
		return
	}
	l.pool.put(n)
}

// pushSpill appends v to the spill list and publishes the spill count. The
// node is linked before the count is published, so a producer that later
// observes spillPopped == spillPushed knows the consumer has consumed
// every node it linked.
func (l *Lane[T]) pushSpill(v T) {
	n := l.getNode()
	n.val = v
	l.spillTail.next.Store(n)
	l.spillTail = n
	l.spillPushed.Store(l.spillPushed.Load() + 1) // single writer
}

// tryRing writes v into the ring if spill mode is off and a slot is free.
func (l *Lane[T]) tryRing(v T) bool {
	s := &l.slots[l.tail&l.mask]
	if s.seq.Load() != l.freeStamp(l.tail) {
		return false // ring full: consumer has not freed this slot yet
	}
	s.val = v
	s.seq.Store(l.fullStamp(l.tail))
	l.tail++
	return true
}

// Push inserts v without ever blocking, spilling to the unbounded list on
// ring overflow. It reports whether the value spilled. Producer method.
func (l *Lane[T]) Push(v T) (spilled bool) {
	if l.spilling {
		if l.spillPopped.Load() != l.spillPushed.Load() {
			l.pushSpill(v)
			return true
		}
		// The consumer has drained the whole spill list; anything it pops
		// from the ring from here on was pushed after every spilled value
		// was consumed, so ring-first drain order stays FIFO.
		l.spilling = false
	}
	if l.tryRing(v) {
		return false
	}
	l.spilling = true
	l.pushSpill(v)
	return true
}

// PushBlocking inserts v, parking while the ring is full, and never
// spills (unless a spill from a prior Push is still outstanding, in which
// case FIFO requires joining it). For producers that nothing in the
// consumer's progress can depend on — the runtime's program context.
// Producer method.
func (l *Lane[T]) PushBlocking(v T) {
	if l.spilling {
		if l.spillPopped.Load() != l.spillPushed.Load() {
			l.pushSpill(v)
			return
		}
		l.spilling = false
	}
	for spin := 0; ; {
		if l.tryRing(v) {
			return
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park until the consumer frees a slot. Re-check after arming the
		// sleep flag to avoid a lost wakeup.
		l.producerSleep.Store(sleeping)
		if l.slots[l.tail&l.mask].seq.Load() == l.freeStamp(l.tail) {
			l.producerSleep.Store(awake)
			continue
		}
		<-l.wakeProducer
		l.producerSleep.Store(awake)
		spin = 0
	}
}

// TryPop removes and returns the oldest value without blocking; ok is
// false when the lane is empty. Ring before spill — see the type comment
// for why that order is FIFO. Consumer method.
func (l *Lane[T]) TryPop() (T, bool) {
	var zero T
	s := &l.slots[l.head&l.mask]
	if s.seq.Load() == l.fullStamp(l.head) {
		v := s.val
		s.val = zero // drop references for GC
		s.seq.Store(l.freeStamp(l.head + uint64(len(l.slots))))
		l.head++
		l.signalProducer()
		return v, true
	}
	if next := l.spillHead.next.Load(); next != nil {
		v := next.val
		next.val = zero
		old := l.spillHead
		l.spillHead = next
		l.spillPopped.Store(l.spillPopped.Load() + 1) // single writer
		// The old stub is unreachable now (the producer's tail is at or
		// past next): recycle it for a future spill.
		l.putNode(old)
		return v, true
	}
	return zero, false
}

// PopBatch removes up to len(dst) values into dst without blocking and
// returns how many were transferred. Ring slots are re-stamped free as
// they are read (there is no external Len reader to keep consistent, and a
// parked PushBlocking producer should resume as soon as possible); the
// spill-popped counter is published once per run. Consumer method.
func (l *Lane[T]) PopBatch(dst []T) int {
	var zero T
	n := 0
	for n < len(dst) {
		s := &l.slots[l.head&l.mask]
		if s.seq.Load() != l.fullStamp(l.head) {
			break
		}
		dst[n] = s.val
		s.val = zero // drop references for GC before the slot is freed
		s.seq.Store(l.freeStamp(l.head + uint64(len(l.slots))))
		l.head++
		n++
	}
	m := 0
	for n < len(dst) {
		next := l.spillHead.next.Load()
		if next == nil {
			break
		}
		dst[n] = next.val
		next.val = zero
		old := l.spillHead
		l.spillHead = next
		l.putNode(old)
		n++
		m++
	}
	if m > 0 {
		l.spillPopped.Store(l.spillPopped.Load() + uint64(m))
	}
	if n > 0 {
		l.signalProducer()
	}
	return n
}

// Empty reports whether the lane holds no values. Consumer method (it
// reads the consumer cursor) — a test/diagnostic helper: the runtime's
// delegate loop never polls lanes for emptiness, it tracks readiness
// through its pending-lane bitmask and re-checks that (not this) before
// parking.
func (l *Lane[T]) Empty() bool {
	return l.slots[l.head&l.mask].seq.Load() != l.fullStamp(l.head) &&
		l.spillHead.next.Load() == nil
}

func (l *Lane[T]) signalProducer() {
	if l.producerSleep.Load() == sleeping {
		select {
		case l.wakeProducer <- struct{}{}:
		default:
		}
	}
}
