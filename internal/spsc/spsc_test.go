package spsc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopSingle(t *testing.T) {
	q := NewQueue[int](4)
	if !q.TryPush(42) {
		t.Fatal("TryPush failed on empty queue")
	}
	got, ok := q.TryPop()
	if !ok || got != 42 {
		t.Fatalf("TryPop = %v, %v, want 42", got, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue should report !ok")
	}
}

func TestCapacityRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-1, DefaultCapacity}, {1, 1}, {3, 4}, {4, 4}, {1000, 1024},
	} {
		if got := NewQueue[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewQueue(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFullQueueRejectsTryPush(t *testing.T) {
	q := NewQueue[int](2)
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("queue of capacity 2 should accept 2 items")
	}
	if q.TryPush(3) {
		t.Fatal("full queue should reject TryPush")
	}
	if got, ok := q.TryPop(); !ok || got != 1 {
		t.Fatalf("FIFO violated: got %v, %v, want 1", got, ok)
	}
	if !q.TryPush(3) {
		t.Fatal("queue should accept after a pop")
	}
}

func TestCapacityOne(t *testing.T) {
	// The odd/even lap-stamp encoding keeps capacity 1 unambiguous: a
	// written slot (odd stamp) can never look free (even stamp).
	q := NewQueue[int](1)
	for lap := 0; lap < 10; lap++ {
		if !q.TryPush(lap) {
			t.Fatalf("lap %d: push failed on empty cap-1 queue", lap)
		}
		if q.TryPush(99) {
			t.Fatalf("lap %d: full cap-1 queue accepted a push", lap)
		}
		got, ok := q.TryPop()
		if !ok || got != lap {
			t.Fatalf("lap %d: pop = %v, %v", lap, got, ok)
		}
	}
}

func TestZeroValuesAreLegal(t *testing.T) {
	// The value ring has no nil-as-empty restriction: zero values (and nil
	// pointers) are ordinary payloads.
	q := NewQueue[*int](2)
	if !q.TryPush(nil) {
		t.Fatal("TryPush(nil) should succeed on a value ring")
	}
	got, ok := q.TryPop()
	if !ok || got != nil {
		t.Fatalf("TryPop = %v, %v, want nil, true", got, ok)
	}
	qi := NewQueue[int](2)
	qi.Push(0)
	if v, ok := qi.TryPop(); !ok || v != 0 {
		t.Fatalf("zero int round-trip = %v, %v", v, ok)
	}
}

func TestWraparound(t *testing.T) {
	q := NewQueue[int](4)
	for round := 0; round < 100; round++ {
		vals := []int{round * 3, round*3 + 1, round*3 + 2}
		for i := range vals {
			if !q.TryPush(vals[i]) {
				t.Fatalf("round %d: push %d failed", round, i)
			}
		}
		for i := range vals {
			got, ok := q.TryPop()
			if !ok || got != vals[i] {
				t.Fatalf("round %d: pop %d = %v, want %d", round, i, got, vals[i])
			}
		}
	}
}

func TestCloseDrains(t *testing.T) {
	q := NewQueue[int](8)
	q.Push(1)
	q.Push(2)
	q.Close()
	if got, ok := q.Pop(); !ok || got != 1 {
		t.Fatalf("Pop after close = %v, %v, want 1", got, ok)
	}
	if got, ok := q.Pop(); !ok || got != 2 {
		t.Fatalf("Pop after close = %v, %v, want 2", got, ok)
	}
	if got, ok := q.Pop(); ok {
		t.Fatalf("Pop on drained closed queue = %v, want !ok", got)
	}
}

func TestLenAndEmpty(t *testing.T) {
	q := NewQueue[int](8)
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue should be empty")
	}
	for _, v := range []int{1, 2, 3} {
		q.Push(v)
	}
	if q.Empty() || q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	q.TryPop()
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

// TestLenExactFromEachSide verifies the O(1) counter-based Len is exact when
// observed from the quiescent side: after every producer push (consumer
// idle) and after every consumer pop (producer idle), across wraparound.
func TestLenExactFromEachSide(t *testing.T) {
	q := NewQueue[int](4)
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 4; i++ {
			q.Push(i)
			if got := q.Len(); got != i+1 {
				t.Fatalf("lap %d: Len after %d pushes = %d", lap, i+1, got)
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := q.TryPop(); !ok {
				t.Fatalf("lap %d: pop %d failed", lap, i)
			}
			if got := q.Len(); got != 3-i {
				t.Fatalf("lap %d: Len after %d pops = %d", lap, i+1, got)
			}
		}
	}
}

// TestPushBatch covers batch insertion: FIFO order across batch boundaries,
// wraparound, and Len published once per batch.
func TestPushBatch(t *testing.T) {
	q := NewQueue[int](8)
	q.PushBatch([]int{0, 1, 2})
	if got := q.Len(); got != 3 {
		t.Fatalf("Len after batch = %d, want 3", got)
	}
	q.PushBatch([]int{3, 4})
	for want := 0; want < 5; want++ {
		got, ok := q.TryPop()
		if !ok || got != want {
			t.Fatalf("pop = %v, %v, want %d", got, ok, want)
		}
	}
	// Wraparound: cycle batches through a small ring many times.
	next := 0
	for round := 0; round < 50; round++ {
		q.PushBatch([]int{next, next + 1, next + 2})
		for i := 0; i < 3; i++ {
			got, ok := q.TryPop()
			if !ok || got != next {
				t.Fatalf("round %d: pop = %v, %v, want %d", round, got, ok, next)
			}
			next++
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after balanced batches")
	}
}

// TestPushBatchLargerThanCapacity exercises the blocking fallback: a batch
// bigger than the ring must still deliver every value in order while a
// consumer drains concurrently, parking and waking both sides.
func TestPushBatchLargerThanCapacity(t *testing.T) {
	const batch = 64
	const n = batch * 800
	q := NewQueue[int](8) // far smaller than the batch: forces the full path
	done := make(chan error, 1)
	go func() {
		next := 0
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if v != next {
				done <- fmt.Errorf("out of order: got %d, want %d", v, next)
				return
			}
			next++
		}
		if next != n {
			done <- fmt.Errorf("received %d items, want %d", next, n)
			return
		}
		done <- nil
	}()
	buf := make([]int, batch)
	for i := 0; i < n; i += batch {
		for j := range buf {
			buf[j] = i + j
		}
		q.PushBatch(buf)
	}
	q.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBatchWakesParkedConsumer pins the park/wake protocol under batching: a
// consumer parked on an empty queue must be woken by the single end-of-batch
// signal.
func TestBatchWakesParkedConsumer(t *testing.T) {
	q := NewQueue[int](64)
	got := make(chan int)
	go func() {
		// Park: nothing is in the queue yet.
		v, _ := q.Pop()
		got <- v
	}()
	// Wait for the consumer to spin out and park, then batch.
	for q.consumerSleep.Load() != sleeping {
		runtime.Gosched()
	}
	q.PushBatch([]int{41, 42})
	if v := <-got; v != 41 {
		t.Fatalf("parked consumer woke with %d, want 41", v)
	}
	q.Close()
}

// TestFIFOOrderConcurrent is the core correctness property: with one
// producer and one consumer running concurrently, every item arrives exactly
// once and in order.
func TestFIFOOrderConcurrent(t *testing.T) {
	const n = 200000
	q := NewQueue[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
		q.Close()
	}()
	next := 0
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	if next != n {
		t.Fatalf("received %d items, want %d", next, n)
	}
	wg.Wait()
}

// TestBlockingPushWakesParkedConsumer exercises the park/wake protocol with a
// tiny queue so both sides park repeatedly.
func TestBlockingPushWakesParkedConsumer(t *testing.T) {
	const n = 50000
	q := NewQueue[int](1)
	done := make(chan int)
	go func() {
		sum := 0
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			sum += v
		}
		done <- sum
	}()
	want := 0
	for i := 0; i < n; i++ {
		want += i
		q.Push(i)
	}
	q.Close()
	if got := <-done; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestRaceStress drives a mixed Push/PushBatch producer against a Pop
// consumer while a third goroutine hammers Len/Empty, so the race detector
// can check every shared access pattern the runtime uses (`go test -race`).
func TestRaceStress(t *testing.T) {
	const n = 20000
	q := NewQueue[int](16)
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if l := q.Len(); l < 0 || l > q.Cap() {
				t.Errorf("Len out of range: %d", l)
				return
			}
			q.Empty()
			runtime.Gosched() // don't starve the transfer on GOMAXPROCS=1
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]int, 0, 8)
		i := 0
		for i < n {
			if i%3 == 0 {
				buf = buf[:0]
				for j := 0; j < 5 && i < n; j++ {
					buf = append(buf, i)
					i++
				}
				q.PushBatch(buf)
			} else {
				q.Push(i)
				i++
			}
		}
		q.Close()
	}()
	next := 0
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	if next != n {
		t.Fatalf("received %d items, want %d", next, n)
	}
}

// TestQuickSequences drives random push/pop interleavings (single-threaded)
// against a slice model.
func TestQuickSequences(t *testing.T) {
	f := func(ops []bool, vals []int16) bool {
		q := NewQueue[int16](8)
		var model []int16
		vi := 0
		for _, isPush := range ops {
			if isPush && vi < len(vals) {
				v := vals[vi]
				vi++
				if q.TryPush(v) {
					model = append(model, v)
				} else if len(model) != q.Cap() {
					return false // rejected while model says not full
				}
			} else {
				got, ok := q.TryPop()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	q := NewQueue[int](1024)
	done := make(chan struct{})
	go func() {
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
		close(done)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(7)
	}
	q.Close()
	<-done
}

// BenchmarkSPSC measures the raw substrate: single-value pushes vs batched
// pushes of invocation-sized records, the numbers behind the delegation
// hot-path design.
func BenchmarkSPSC(b *testing.B) {
	type invRecord struct {
		kind uint8
		set  uint64
		a, b uintptr
		fn   func(int)
		done chan struct{}
	}
	b.Run("push-pop-value", func(b *testing.B) {
		b.ReportAllocs()
		q := NewQueue[invRecord](1024)
		done := make(chan struct{})
		go func() {
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
			}
			close(done)
		}()
		rec := invRecord{set: 42}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Push(rec)
		}
		q.Close()
		<-done
	})
	for _, batch := range []int{8, 64} {
		b.Run(fmt.Sprintf("push-batch-%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			q := NewQueue[invRecord](1024)
			done := make(chan struct{})
			go func() {
				for {
					if _, ok := q.Pop(); !ok {
						break
					}
				}
				close(done)
			}()
			buf := make([]invRecord, batch)
			for i := range buf {
				buf[i] = invRecord{set: uint64(i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.PushBatch(buf)
			}
			q.Close()
			<-done
		})
	}
	b.Run("len", func(b *testing.B) {
		q := NewQueue[invRecord](1024)
		for i := 0; i < 100; i++ {
			q.Push(invRecord{})
		}
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			n += q.Len()
		}
		_ = n
	})
}
