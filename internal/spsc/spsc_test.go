package spsc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopSingle(t *testing.T) {
	q := NewQueue[int](4)
	v := 42
	if !q.TryPush(&v) {
		t.Fatal("TryPush failed on empty queue")
	}
	got := q.TryPop()
	if got == nil || *got != 42 {
		t.Fatalf("TryPop = %v, want 42", got)
	}
	if q.TryPop() != nil {
		t.Fatal("TryPop on empty queue should return nil")
	}
}

func TestCapacityRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-1, DefaultCapacity}, {1, 1}, {3, 4}, {4, 4}, {1000, 1024},
	} {
		if got := NewQueue[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewQueue(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFullQueueRejectsTryPush(t *testing.T) {
	q := NewQueue[int](2)
	a, b, c := 1, 2, 3
	if !q.TryPush(&a) || !q.TryPush(&b) {
		t.Fatal("queue of capacity 2 should accept 2 items")
	}
	if q.TryPush(&c) {
		t.Fatal("full queue should reject TryPush")
	}
	if got := q.TryPop(); got == nil || *got != 1 {
		t.Fatalf("FIFO violated: got %v, want 1", got)
	}
	if !q.TryPush(&c) {
		t.Fatal("queue should accept after a pop")
	}
}

func TestPushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TryPush(nil) should panic")
		}
	}()
	NewQueue[int](2).TryPush(nil)
}

func TestWraparound(t *testing.T) {
	q := NewQueue[int](4)
	for round := 0; round < 100; round++ {
		vals := []int{round * 3, round*3 + 1, round*3 + 2}
		for i := range vals {
			if !q.TryPush(&vals[i]) {
				t.Fatalf("round %d: push %d failed", round, i)
			}
		}
		for i := range vals {
			got := q.TryPop()
			if got == nil || *got != vals[i] {
				t.Fatalf("round %d: pop %d = %v, want %d", round, i, got, vals[i])
			}
		}
	}
}

func TestCloseDrains(t *testing.T) {
	q := NewQueue[int](8)
	a, b := 1, 2
	q.Push(&a)
	q.Push(&b)
	q.Close()
	if got := q.Pop(); got == nil || *got != 1 {
		t.Fatalf("Pop after close = %v, want 1", got)
	}
	if got := q.Pop(); got == nil || *got != 2 {
		t.Fatalf("Pop after close = %v, want 2", got)
	}
	if got := q.Pop(); got != nil {
		t.Fatalf("Pop on drained closed queue = %v, want nil", got)
	}
}

func TestLenAndEmpty(t *testing.T) {
	q := NewQueue[int](8)
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue should be empty")
	}
	vals := []int{1, 2, 3}
	for i := range vals {
		q.Push(&vals[i])
	}
	if q.Empty() || q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	q.TryPop()
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

// TestFIFOOrderConcurrent is the core correctness property: with one
// producer and one consumer running concurrently, every item arrives exactly
// once and in order.
func TestFIFOOrderConcurrent(t *testing.T) {
	const n = 200000
	q := NewQueue[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			v := i
			q.Push(&v)
		}
		q.Close()
	}()
	next := 0
	for {
		v := q.Pop()
		if v == nil {
			break
		}
		if *v != next {
			t.Fatalf("out of order: got %d, want %d", *v, next)
		}
		next++
	}
	if next != n {
		t.Fatalf("received %d items, want %d", next, n)
	}
	wg.Wait()
}

// TestBlockingPushWakesParkedConsumer exercises the park/wake protocol with a
// tiny queue so both sides park repeatedly.
func TestBlockingPushWakesParkedConsumer(t *testing.T) {
	const n = 50000
	q := NewQueue[int](1)
	done := make(chan int)
	go func() {
		sum := 0
		for {
			v := q.Pop()
			if v == nil {
				break
			}
			sum += *v
		}
		done <- sum
	}()
	want := 0
	for i := 0; i < n; i++ {
		v := i
		want += i
		q.Push(&v)
	}
	q.Close()
	if got := <-done; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestQuickSequences drives random push/pop interleavings (single-threaded)
// against a slice model.
func TestQuickSequences(t *testing.T) {
	f := func(ops []bool, vals []int16) bool {
		q := NewQueue[int16](8)
		var model []int16
		vi := 0
		for _, isPush := range ops {
			if isPush && vi < len(vals) {
				v := vals[vi]
				vi++
				if q.TryPush(&v) {
					model = append(model, v)
				} else if len(model) != q.Cap() {
					return false // rejected while model says not full
				}
			} else {
				got := q.TryPop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got == nil || *got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	q := NewQueue[int](1024)
	done := make(chan struct{})
	go func() {
		for q.Pop() != nil {
		}
		close(done)
	}()
	v := 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(&v)
	}
	q.Close()
	<-done
}
