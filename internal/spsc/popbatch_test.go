package spsc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestPopBatchBasic(t *testing.T) {
	q := NewQueue[int](8)
	buf := make([]int, 4)
	if n := q.PopBatch(buf); n != 0 {
		t.Fatalf("PopBatch on empty queue = %d, want 0", n)
	}
	q.PushBatch([]int{0, 1, 2, 3, 4, 5})
	if n := q.PopBatch(buf); n != 4 {
		t.Fatalf("PopBatch = %d, want 4 (dst-bounded)", n)
	}
	for i, v := range buf {
		if v != i {
			t.Fatalf("buf[%d] = %d, want %d", i, v, i)
		}
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len after batch pop = %d, want 2", got)
	}
	if n := q.PopBatch(buf); n != 2 || buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("PopBatch tail = %d (%v), want 2 (4 5 _)", n, buf)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after draining")
	}
	if n := q.PopBatch(nil); n != 0 {
		t.Fatalf("PopBatch(nil) = %d, want 0", n)
	}
}

func TestPopBatchInterleavedWithSinglePops(t *testing.T) {
	// Mixed single/batched pops must preserve FIFO across wraparound.
	q := NewQueue[int](8)
	buf := make([]int, 3)
	next, pushed := 0, 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 5; i++ {
			if q.TryPush(pushed) {
				pushed++
			}
		}
		if round%2 == 0 {
			n := q.PopBatch(buf)
			for i := 0; i < n; i++ {
				if buf[i] != next {
					t.Fatalf("round %d: batch pop = %d, want %d", round, buf[i], next)
				}
				next++
			}
		} else if v, ok := q.TryPop(); ok {
			if v != next {
				t.Fatalf("round %d: single pop = %d, want %d", round, v, next)
			}
			next++
		}
	}
	for {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("drain: pop = %d, want %d", v, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("popped %d items, pushed %d", next, pushed)
	}
}

func TestPopBatchFreesSlotsForProducer(t *testing.T) {
	// A full ring drained by PopBatch must become writable again — the batch
	// pop publishes its progress and re-stamps every slot free.
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	if q.TryPush(99) {
		t.Fatal("full queue accepted a push")
	}
	buf := make([]int, 4)
	if n := q.PopBatch(buf); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(10 + i) {
			t.Fatalf("push %d rejected after batch drain", i)
		}
	}
	if n := q.PopBatch(buf); n != 4 || buf[0] != 10 {
		t.Fatalf("second drain = %d (%v), want 4 starting at 10", n, buf)
	}
}

func TestPopBatchDropsReferences(t *testing.T) {
	// Popped slots must not pin payloads: the ring zeroes each slot before
	// freeing it (same contract as TryPop).
	q := NewQueue[*int](4)
	v := new(int)
	q.Push(v)
	buf := make([]*int, 4)
	if n := q.PopBatch(buf); n != 1 || buf[0] != v {
		t.Fatalf("PopBatch = %d, want the pushed pointer", n)
	}
	for i := range q.slots {
		if q.slots[i].val != nil {
			t.Fatalf("slot %d still holds a reference after PopBatch", i)
		}
	}
}

func TestPopBatchWakesParkedProducer(t *testing.T) {
	// A producer parked on a full ring must be woken by the single
	// end-of-batch producer signal.
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	pushed := make(chan struct{})
	go func() {
		q.Push(4) // full: spins out and parks
		close(pushed)
	}()
	for q.producerSleep.Load() != sleeping {
		runtime.Gosched()
	}
	buf := make([]int, 4)
	if n := q.PopBatch(buf); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	<-pushed
	if v, ok := q.TryPop(); !ok || v != 4 {
		t.Fatalf("pop after wake = %v, %v, want 4", v, ok)
	}
}

// TestBatchRaceStress interleaves a PushBatch producer with a PopBatch
// consumer while an observer hammers the O(1) Len — the access pattern of the
// runtime's batched delegation plus batched drain plus the occupancy-aware
// scheduler polling queue depths. Run under `go test -race`.
func TestBatchRaceStress(t *testing.T) {
	const n = 30000
	q := NewQueue[int](16)
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if l := q.Len(); l < 0 || l > q.Cap() {
				t.Errorf("Len out of range: %d", l)
				return
			}
			runtime.Gosched() // don't starve the transfer on GOMAXPROCS=1
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]int, 0, 7)
		i := 0
		for i < n {
			buf = buf[:0]
			for j := 0; j < 1+i%7 && i < n; j++ {
				buf = append(buf, i)
				i++
			}
			q.PushBatch(buf)
		}
		q.Close()
	}()
	buf := make([]int, 5)
	next := 0
	for {
		k := q.PopBatch(buf)
		for i := 0; i < k; i++ {
			if buf[i] != next {
				t.Fatalf("out of order: got %d, want %d", buf[i], next)
			}
			next++
		}
		if k == 0 {
			// Blocking fallback so the test terminates: one value per wake,
			// exactly how the runtime's drain loop alternates Pop/PopBatch.
			v, ok := q.Pop()
			if !ok {
				break
			}
			if v != next {
				t.Fatalf("out of order: got %d, want %d", v, next)
			}
			next++
		}
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	if next != n {
		t.Fatalf("received %d items, want %d", next, n)
	}
}

// FuzzBatchBoundaries fuzzes PushBatch/PopBatch around the ring's boundary
// sizes — empty, single, cap-1, cap, cap+1 — against a slice model. The seed
// corpus enumerates exactly those batch sizes for small capacities; the
// fuzzer then explores arbitrary (capacity, batch size, op count) mixes.
func FuzzBatchBoundaries(f *testing.F) {
	for _, cap := range []uint8{1, 2, 4, 8} {
		for _, batch := range []int{0, 1, int(cap) - 1, int(cap), int(cap) + 1} {
			if batch < 0 {
				continue
			}
			f.Add(cap, uint8(batch), uint8(batch), uint16(5))
		}
	}
	f.Fuzz(func(t *testing.T, capRaw, pushRaw, popRaw uint8, rounds uint16) {
		capacity := int(capRaw%16) + 1
		pushN := int(pushRaw % 33)
		popN := int(popRaw % 33)
		q := NewQueue[uint16](capacity)
		var model []uint16
		next := uint16(0)
		popBuf := make([]uint16, popN)
		pushBuf := make([]uint16, 0, pushN)
		for r := 0; r < int(rounds%64); r++ {
			// Push up to pushN values, but only as many as the ring can take:
			// PushBatch blocks on a full ring and there is no concurrent
			// consumer here.
			pushBuf = pushBuf[:0]
			room := q.Cap() - len(model)
			for j := 0; j < pushN && j < room; j++ {
				pushBuf = append(pushBuf, next)
				next++
			}
			if len(pushBuf) > 0 {
				q.PushBatch(pushBuf)
				model = append(model, pushBuf...)
			}
			if got := q.Len(); got != len(model) {
				t.Fatalf("round %d: Len = %d, model %d", r, got, len(model))
			}
			n := q.PopBatch(popBuf)
			want := popN
			if len(model) < want {
				want = len(model)
			}
			if n != want {
				t.Fatalf("round %d: PopBatch = %d, want %d", r, n, want)
			}
			for i := 0; i < n; i++ {
				if popBuf[i] != model[i] {
					t.Fatalf("round %d: popped %d, want %d", r, popBuf[i], model[i])
				}
			}
			model = model[n:]
		}
		// Drain and verify the tail.
		for len(model) > 0 {
			v, ok := q.TryPop()
			if !ok || v != model[0] {
				t.Fatalf("drain: pop = %v, %v, want %d", v, ok, model[0])
			}
			model = model[1:]
		}
		if !q.Empty() {
			t.Fatal("queue not empty after drain")
		}
	})
}

// BenchmarkSPSCPopBatch measures the consumer-side mirror of the push
// batching: draining invocation-sized records one at a time vs in runs.
func BenchmarkSPSCPopBatch(b *testing.B) {
	type invRecord struct {
		kind uint8
		set  uint64
		a, b uintptr
		fn   func(int)
		done chan struct{}
	}
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("pop-batch-%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			q := NewQueue[invRecord](1024)
			fill := make([]invRecord, 512)
			buf := make([]invRecord, batch)
			b.ResetTimer()
			popped := 0
			for popped < b.N {
				q.PushBatch(fill)
				for q.Len() > 0 {
					if batch == 1 {
						q.TryPop()
						popped++
					} else {
						popped += q.PopBatch(buf)
					}
				}
			}
		})
	}
}
