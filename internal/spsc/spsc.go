// Package spsc implements a FastForward-style lock-free single-producer
// single-consumer queue (Giacomoni et al., PPoPP 2008), the communication
// substrate the Prometheus runtime uses between the program context and each
// delegate context.
//
// The FastForward design avoids shared head/tail indices: the producer and
// consumer each keep a private cursor, and the full/empty conditions are
// detected from the slot contents themselves (a slot is empty iff it holds
// nil). This keeps the producer's and consumer's working sets on disjoint
// cache lines in steady state. The queue carries pointers of a single type T.
//
// Blocking behaviour is hybrid: callers spin for a bounded number of
// iterations (the analogue of the paper's PAUSE-instruction spin loop) and
// then park on a channel so an idle delegate does not burn a hardware
// context. Parking and waking are coordinated with a small state machine in
// sleepState.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// cacheLineSize is the assumed size of a CPU cache line, used to pad the
// producer- and consumer-owned fields apart so they never share a line.
const cacheLineSize = 64

// DefaultCapacity is the queue capacity used when NewQueue is given a
// non-positive capacity. FastForward queues want enough buffering to absorb
// bursts of operations mapped to the same serialization set (paper §4).
const DefaultCapacity = 1024

// spinBeforePark bounds the busy-wait loop before a blocked caller parks on
// a channel. The value trades latency (higher = faster handoff under load)
// against wasted CPU when the peer is slow.
const spinBeforePark = 256

type pad [cacheLineSize]byte

// sleepState values for the parking protocol.
const (
	awake    int32 = iota // peer is running (or about to re-check)
	sleeping              // peer is parked on its wake channel
)

// Queue is a bounded lock-free SPSC queue of *T. The zero value is not
// usable; construct with NewQueue. Exactly one goroutine may call the
// producer methods (Push, TryPush, Close) and exactly one may call the
// consumer methods (Pop, TryPop).
type Queue[T any] struct {
	slots []atomic.Pointer[T]
	mask  uint64

	_    pad
	head uint64 // consumer cursor: next slot to read (consumer-private)
	// consumerSleep is set by the consumer before parking on wakeConsumer.
	consumerSleep atomic.Int32
	wakeConsumer  chan struct{}

	_    pad
	tail uint64 // producer cursor: next slot to write (producer-private)
	// producerSleep is set by the producer before parking on wakeProducer.
	producerSleep atomic.Int32
	wakeProducer  chan struct{}

	_      pad
	closed atomic.Bool
}

// NewQueue returns a queue with capacity rounded up to a power of two.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Queue[T]{
		slots:        make([]atomic.Pointer[T], c),
		mask:         uint64(c - 1),
		wakeConsumer: make(chan struct{}, 1),
		wakeProducer: make(chan struct{}, 1),
	}
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.slots) }

// TryPush inserts v without blocking. It reports false if the queue is full.
// v must be non-nil: nil is the internal empty-slot marker.
func (q *Queue[T]) TryPush(v *T) bool {
	if v == nil {
		panic("spsc: TryPush(nil)")
	}
	slot := &q.slots[q.tail&q.mask]
	if slot.Load() != nil {
		return false // full: consumer has not drained this slot yet
	}
	slot.Store(v)
	q.tail++
	q.signalConsumer()
	return true
}

// Push inserts v, blocking while the queue is full. Push panics if the queue
// has been closed (the runtime never pushes after termination).
func (q *Queue[T]) Push(v *T) {
	for spin := 0; ; {
		if q.TryPush(v) {
			return
		}
		if q.closed.Load() {
			panic("spsc: Push on closed queue")
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park until the consumer frees a slot. Re-check after arming the
		// sleep flag to avoid a lost wakeup.
		q.producerSleep.Store(sleeping)
		if q.slots[q.tail&q.mask].Load() == nil || q.closed.Load() {
			q.producerSleep.Store(awake)
			continue
		}
		<-q.wakeProducer
		q.producerSleep.Store(awake)
		spin = 0
	}
}

// TryPop removes and returns the next value without blocking. It returns
// nil if the queue is empty.
func (q *Queue[T]) TryPop() *T {
	slot := &q.slots[q.head&q.mask]
	v := slot.Load()
	if v == nil {
		return nil
	}
	slot.Store(nil)
	q.head++
	q.signalProducer()
	return v
}

// Pop removes and returns the next value, blocking while the queue is empty.
// It returns nil only after Close has been called and the queue is drained.
func (q *Queue[T]) Pop() *T {
	for spin := 0; ; {
		if v := q.TryPop(); v != nil {
			return v
		}
		if q.closed.Load() {
			// Check once more: Close may have raced with a final Push.
			if v := q.TryPop(); v != nil {
				return v
			}
			return nil
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		q.consumerSleep.Store(sleeping)
		if q.slots[q.head&q.mask].Load() != nil || q.closed.Load() {
			q.consumerSleep.Store(awake)
			continue
		}
		<-q.wakeConsumer
		q.consumerSleep.Store(awake)
		spin = 0
	}
}

// Close marks the queue closed. The consumer drains remaining items and then
// receives nil from Pop. Only the producer may call Close.
func (q *Queue[T]) Close() {
	q.closed.Store(true)
	q.signalConsumer()
	q.signalProducer()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Empty reports whether the queue appears empty to the consumer.
func (q *Queue[T]) Empty() bool {
	return q.slots[q.head&q.mask].Load() == nil
}

// Len returns the approximate number of buffered items. Only exact when the
// caller is the sole active party; used for load metrics and tests.
func (q *Queue[T]) Len() int {
	n := 0
	for i := range q.slots {
		if q.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

func (q *Queue[T]) signalConsumer() {
	if q.consumerSleep.Load() == sleeping {
		select {
		case q.wakeConsumer <- struct{}{}:
		default:
		}
	}
}

func (q *Queue[T]) signalProducer() {
	if q.producerSleep.Load() == sleeping {
		select {
		case q.wakeProducer <- struct{}{}:
		default:
		}
	}
}
