// Package spsc implements the lock-free single-producer single-consumer
// queues the Prometheus runtime uses between the program context and each
// delegate context, in the spirit of FastForward (Giacomoni et al., PPoPP
// 2008): the program→delegate handoff should cost no more than the cache
// transfers of the data itself.
//
// Queue is a bounded ring of sequence-stamped value slots (a Vyukov-style
// ring specialized to one producer and one consumer). Each slot carries a
// lap stamp next to the value, where lap(p) = p/capacity:
//
//   - a slot is free for position p when seq == 2*lap(p) (even stamps mean
//     free — and the zero value is "free for lap 0", so a new ring needs no
//     initialization pass and its pages fault in on first use, keeping
//     runtime construction O(1) in touched memory);
//   - writing stamps it seq = 2*lap(p)+1 (odd: readable);
//   - popping re-stamps it seq = 2*(lap(p)+1), freeing it for the next lap.
//
// As in FastForward, the producer and consumer never read each other's
// cursor on the hot path — full/empty detection comes from the slot stamps,
// which travel on the same cache line as the value, so steady-state
// communication is one cache-line transfer per operation. Carrying values
// (rather than pointers) means the runtime's invocation records are written
// directly into the ring: no per-operation heap allocation, no GC pressure,
// and no nil-as-empty restriction.
//
// The queue additionally publishes cache-line-padded monotonic pushed/popped
// counters, giving O(1) Len and Empty that are safe to call from any
// goroutine — the load-balancing scheduler polls queue depths on set
// assignment, which must not cost O(capacity) per delegation.
//
// PushBatch writes a batch of values with a single wake signal at the end,
// amortizing the producer→consumer signaling across the batch; the runtime's
// program-context delegation buffer uses it to flush runs of operations
// bound for the same delegate. PopBatch is its consumer-side mirror: it
// removes a run of readable slots with a single popped-counter publish and a
// single producer wake at the end, so a delegate draining a backlog pays the
// shared-line stores once per run rather than once per operation. The
// runtime's delegate drain loop pops one value (blocking) per wake and then
// PopBatches the rest of the backlog.
//
// Blocking behaviour is hybrid: callers spin for a bounded number of
// iterations (the analogue of the paper's PAUSE-instruction spin loop) and
// then park on a channel so an idle delegate does not burn a hardware
// context. Parking and waking are coordinated with a small state machine in
// sleepState.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// cacheLineSize is the assumed size of a CPU cache line, used to pad the
// producer- and consumer-owned fields apart so they never share a line.
const cacheLineSize = 64

// DefaultCapacity is the queue capacity used when NewQueue is given a
// non-positive capacity. FastForward queues want enough buffering to absorb
// bursts of operations mapped to the same serialization set (paper §4);
// 256 invocation-sized slots (16KB per delegate) absorbs deep bursts while
// keeping runtime construction cheap — the slots are values now, so ring
// memory is capacity×64B rather than capacity×8B, and a saturated producer
// is throttled by the consumer's drain rate, not by extra ring depth.
const DefaultCapacity = 256

// spinBeforePark bounds the busy-wait loop before a blocked caller parks on
// a channel. The value trades latency (higher = faster handoff under load)
// against wasted CPU when the peer is slow.
const spinBeforePark = 256

type pad [cacheLineSize]byte

// sleepState values for the parking protocol.
const (
	awake    int32 = iota // peer is running (or about to re-check)
	sleeping              // peer is parked on its wake channel
)

// slot pairs a value with its sequence stamp. The stamp shares the value's
// cache line, so the consumer's readability check rides the same transfer
// that delivers the data.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Queue is a bounded lock-free SPSC queue of T values. The zero value is not
// usable; construct with NewQueue. Exactly one goroutine may call the
// producer methods (Push, TryPush, PushBatch, Close) and exactly one may
// call the consumer methods (Pop, TryPop, PopBatch). Len, Empty, Cap and
// Closed are safe from any goroutine.
type Queue[T any] struct {
	slots []slot[T]
	mask  uint64
	shift uint // log2(capacity), for lap computation

	_    pad
	head uint64 // consumer cursor: next slot to read (consumer-private)
	// popped publishes the consumer's progress for O(1) Len/Empty.
	popped atomic.Uint64
	// consumerSleep is set by the consumer before parking on wakeConsumer.
	consumerSleep atomic.Int32
	wakeConsumer  chan struct{}

	_    pad
	tail uint64 // producer cursor: next slot to write (producer-private)
	// pushed publishes the producer's progress for O(1) Len/Empty.
	pushed atomic.Uint64
	// producerSleep is set by the producer before parking on wakeProducer.
	producerSleep atomic.Int32
	wakeProducer  chan struct{}

	_      pad
	closed atomic.Bool
}

// NewQueue returns a queue with capacity rounded up to a power of two.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := 1
	shift := uint(0)
	for c < capacity {
		c <<= 1
		shift++
	}
	return &Queue[T]{
		slots:        make([]slot[T], c),
		mask:         uint64(c - 1),
		shift:        shift,
		wakeConsumer: make(chan struct{}, 1),
		wakeProducer: make(chan struct{}, 1),
	}
}

// freeStamp and fullStamp are the expected slot stamps for position p: a
// slot is writable when it carries freeStamp(p) and readable when it
// carries fullStamp(p). Odd stamps always mean "written", so the encodings
// never collide across laps (capacity 1 included).
func (q *Queue[T]) freeStamp(p uint64) uint64 { return (p >> q.shift) << 1 }
func (q *Queue[T]) fullStamp(p uint64) uint64 { return (p>>q.shift)<<1 | 1 }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.slots) }

// tryPushQuiet inserts v without signaling the consumer or publishing the
// pushed counter. Callers must follow up with publishPush (and a consumer
// signal) before returning control to the program.
func (q *Queue[T]) tryPushQuiet(v T) bool {
	s := &q.slots[q.tail&q.mask]
	if s.seq.Load() != q.freeStamp(q.tail) {
		return false // full: consumer has not freed this slot yet
	}
	s.val = v
	s.seq.Store(q.fullStamp(q.tail))
	q.tail++
	return true
}

// publishPush makes the producer's progress visible to Len/Empty readers.
func (q *Queue[T]) publishPush() { q.pushed.Store(q.tail) }

// TryPush inserts v without blocking. It reports false if the queue is full.
func (q *Queue[T]) TryPush(v T) bool {
	if !q.tryPushQuiet(v) {
		return false
	}
	q.publishPush()
	q.signalConsumer()
	return true
}

// Push inserts v, blocking while the queue is full. Push panics if the queue
// has been closed (the runtime never pushes after termination).
func (q *Queue[T]) Push(v T) {
	for spin := 0; ; {
		if q.TryPush(v) {
			return
		}
		if q.closed.Load() {
			panic("spsc: Push on closed queue")
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park until the consumer frees a slot. Re-check after arming the
		// sleep flag to avoid a lost wakeup.
		q.producerSleep.Store(sleeping)
		if q.slots[q.tail&q.mask].seq.Load() == q.freeStamp(q.tail) || q.closed.Load() {
			q.producerSleep.Store(awake)
			continue
		}
		<-q.wakeProducer
		q.producerSleep.Store(awake)
		spin = 0
	}
}

// PushBatch inserts every value of vs in order, blocking while the queue is
// full, and wakes the consumer once at the end instead of once per value.
// The pushed counter is published once per batch (or before any blocking
// fallback), so a large batch costs two shared-line stores total in the
// common case.
func (q *Queue[T]) PushBatch(vs []T) {
	for i := range vs {
		if !q.tryPushQuiet(vs[i]) {
			// Ring full mid-batch: publish what we have, wake the consumer,
			// and fall back to the blocking per-value path.
			q.publishPush()
			q.signalConsumer()
			q.Push(vs[i])
			continue
		}
	}
	q.publishPush()
	q.signalConsumer()
}

// PopBatch removes up to len(dst) values into dst without blocking and
// returns how many were transferred (0 when the queue is empty or dst is).
// It is the consumer-side mirror of PushBatch: values are copied out first,
// the popped counter is published once for the whole run, and only then are
// the slots re-stamped free and the producer woken once — so a run of n pops
// costs two shared-line stores instead of 2n, and an external Len reader can
// never observe pushed-popped exceeding the capacity (slots become writable
// only after the pop is published). Consumer method.
func (q *Queue[T]) PopBatch(dst []T) int {
	var zero T
	n := 0
	for n < len(dst) {
		p := q.head + uint64(n)
		s := &q.slots[p&q.mask]
		if s.seq.Load() != q.fullStamp(p) {
			break
		}
		dst[n] = s.val
		s.val = zero // drop references for GC before the slot is freed
		n++
	}
	if n == 0 {
		return 0
	}
	start := q.head
	q.head += uint64(n)
	q.popped.Store(q.head)
	for i := 0; i < n; i++ {
		p := start + uint64(i)
		// Same next-lap free stamp TryPop writes: lap(p)+1, encoded as the
		// free stamp of position p+capacity.
		q.slots[p&q.mask].seq.Store(q.freeStamp(p + uint64(len(q.slots))))
	}
	q.signalProducer()
	return n
}

// TryPop removes and returns the next value without blocking. The second
// result is false if the queue is empty.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	s := &q.slots[q.head&q.mask]
	if s.seq.Load() != q.fullStamp(q.head) {
		return zero, false
	}
	v := s.val
	s.val = zero // drop references for GC
	// Publish the pop before freeing the slot: once the slot is free the
	// producer may refill it and publish a new push, and an external Len
	// reader must never compute pushed-popped > Cap.
	q.head++
	q.popped.Store(q.head)
	s.seq.Store(q.freeStamp(q.head - 1 + uint64(len(q.slots))))
	q.signalProducer()
	return v, true
}

// Pop removes and returns the next value, blocking while the queue is empty.
// It returns ok=false only after Close has been called and the queue is
// drained.
func (q *Queue[T]) Pop() (T, bool) {
	for spin := 0; ; {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Check once more: Close may have raced with a final Push.
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		spin++
		if spin < spinBeforePark {
			if spin%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		q.consumerSleep.Store(sleeping)
		if q.slots[q.head&q.mask].seq.Load() == q.fullStamp(q.head) || q.closed.Load() {
			q.consumerSleep.Store(awake)
			continue
		}
		<-q.wakeConsumer
		q.consumerSleep.Store(awake)
		spin = 0
	}
}

// Close marks the queue closed. The consumer drains remaining items and then
// receives ok=false from Pop. Only the producer may call Close.
func (q *Queue[T]) Close() {
	q.closed.Store(true)
	q.signalConsumer()
	q.signalProducer()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Empty reports whether the queue is empty. O(1); safe from any goroutine.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Len returns the number of buffered items in O(1) from the published
// pushed/popped counters; safe from any goroutine. It is exact when called
// by the producer or the consumer while the other side is quiescent, and
// within one in-flight operation otherwise (the counters are published
// after the slot transfer they describe).
func (q *Queue[T]) Len() int {
	p, c := q.pushed.Load(), q.popped.Load()
	if p < c {
		// Transient skew: the consumer published a pop whose push the
		// producer has batched but not yet published.
		return 0
	}
	return int(p - c)
}

func (q *Queue[T]) signalConsumer() {
	if q.consumerSleep.Load() == sleeping {
		select {
		case q.wakeConsumer <- struct{}{}:
		default:
		}
	}
}

func (q *Queue[T]) signalProducer() {
	if q.producerSleep.Load() == sleeping {
		select {
		case q.wakeProducer <- struct{}{}:
		default:
		}
	}
}
