//go:build race

package spsc

// raceEnabled: see race_off_test.go.
const raceEnabled = true
