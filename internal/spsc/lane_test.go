package spsc

import (
	"testing"
	"time"
)

// TestLaneRingFIFO: in-ring traffic round-trips in order with no spills.
func TestLaneRingFIFO(t *testing.T) {
	l := NewLane[int](8)
	for round := 0; round < 10; round++ { // multiple laps over the ring
		for i := 0; i < 8; i++ {
			if spilled := l.Push(round*8 + i); spilled {
				t.Fatalf("push %d spilled with free ring slots", i)
			}
		}
		for i := 0; i < 8; i++ {
			v, ok := l.TryPop()
			if !ok || v != round*8+i {
				t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, v, ok, round*8+i)
			}
		}
	}
	if s := l.Spills(); s != 0 {
		t.Fatalf("Spills = %d, want 0", s)
	}
	if _, ok := l.TryPop(); ok {
		t.Fatal("pop on empty lane succeeded")
	}
}

// TestLaneSpillFIFO: overflow beyond the ring spills, and draining returns
// every value in push order across the ring/spill boundary. This is the
// self-delegation shape: producer and consumer are the same goroutine, so
// nothing drains between pushes and a bounded queue would deadlock.
func TestLaneSpillFIFO(t *testing.T) {
	l := NewLane[int](4)
	const n = 100
	for i := 0; i < n; i++ {
		l.Push(i)
	}
	if s := l.Spills(); s != n-4 {
		t.Fatalf("Spills = %d, want %d", s, n-4)
	}
	for i := 0; i < n; i++ {
		v, ok := l.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if !l.Empty() {
		t.Fatal("lane not empty after full drain")
	}
}

// TestLaneSpillResume: after the consumer drains a spill completely, the
// producer returns to the zero-allocation ring and order is still FIFO.
func TestLaneSpillResume(t *testing.T) {
	l := NewLane[int](4)
	next := 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			l.Push(next)
			next++
		}
	}
	want := 0
	pop := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			v, ok := l.TryPop()
			if !ok || v != want {
				t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, want)
			}
			want++
		}
	}
	push(10) // 4 ring + 6 spill
	pop(10)
	spills := l.Spills()
	push(3) // back in the ring
	if l.Spills() != spills {
		t.Fatalf("Spills grew to %d after spill drained (ring not resumed)", l.Spills())
	}
	pop(3)
	// Partial spill drain must keep the producer spilling.
	push(6) // 4 ring + 2 spill
	pop(5)  // ring fully drained, one spill value left
	push(1) // must spill: FIFO would break if this entered the ring
	if l.Spills() != spills+3 {
		t.Fatalf("Spills = %d, want %d (push with undrained spill must spill)", l.Spills(), spills+3)
	}
	pop(2)
}

// TestLanePopBatchBoundaries: batch pops spanning the ring/spill boundary
// transfer in order, for dst sizes around the ring capacity.
func TestLanePopBatchBoundaries(t *testing.T) {
	for _, dstLen := range []int{1, 3, 4, 5, 16, 64} {
		l := NewLane[int](4)
		const n = 40
		for i := 0; i < n; i++ {
			l.Push(i)
		}
		dst := make([]int, dstLen)
		got := 0
		for got < n {
			k := l.PopBatch(dst)
			if k == 0 {
				t.Fatalf("dst=%d: PopBatch returned 0 with %d values left", dstLen, n-got)
			}
			for i := 0; i < k; i++ {
				if dst[i] != got+i {
					t.Fatalf("dst=%d: batch value %d = %d, want %d", dstLen, i, dst[i], got+i)
				}
			}
			got += k
		}
		if k := l.PopBatch(dst); k != 0 {
			t.Fatalf("dst=%d: PopBatch on empty lane returned %d", dstLen, k)
		}
	}
}

// TestLaneConcurrentSpill: a fast nonblocking producer against a slow
// consumer, racing spill-mode entry and exit; everything arrives in order.
func TestLaneConcurrentSpill(t *testing.T) {
	l := NewLane[int](8)
	const n = 50000
	go func() {
		for i := 0; i < n; i++ {
			l.Push(i)
		}
	}()
	dst := make([]int, 16)
	got := 0
	for got < n {
		k := l.PopBatch(dst)
		if k == 0 {
			time.Sleep(time.Microsecond)
			continue
		}
		for i := 0; i < k; i++ {
			if dst[i] != got+i {
				t.Fatalf("value %d = %d, want %d", got+i, dst[i], got+i)
			}
		}
		got += k
	}
	if !l.Empty() {
		t.Fatal("lane not empty after consuming all values")
	}
}

// TestLanePushBlocking: the blocking producer variant never spills; the
// consumer's slot frees wake it through the park machinery.
func TestLanePushBlocking(t *testing.T) {
	l := NewLane[int](4)
	const n = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			l.PushBlocking(i)
		}
	}()
	for i := 0; i < n; i++ {
		for {
			v, ok := l.TryPop()
			if !ok {
				time.Sleep(time.Microsecond)
				continue
			}
			if v != i {
				t.Fatalf("pop = %d, want %d", v, i)
			}
			break
		}
	}
	<-done
	if s := l.Spills(); s != 0 {
		t.Fatalf("PushBlocking spilled %d values", s)
	}
}

// TestLaneZeroAllocRing: steady-state in-ring push/pop allocates nothing.
func TestLaneZeroAllocRing(t *testing.T) {
	l := NewLane[int](64)
	if n := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			l.Push(i)
		}
		dst := lanePopScratch[:]
		for drained := 0; drained < 32; {
			drained += l.PopBatch(dst)
		}
	}); n != 0 {
		t.Fatalf("ring push/pop: %v allocs/op, want 0", n)
	}
}

// lanePopScratch keeps the drain buffer out of the measured closure.
var lanePopScratch [32]int

func BenchmarkLane(b *testing.B) {
	b.Run("ring-push-pop", func(b *testing.B) {
		l := NewLane[int](256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Push(i)
			l.TryPop()
		}
	})
	b.Run("spill-push-pop", func(b *testing.B) {
		l := NewLane[int](1)
		l.Push(0) // fill the ring so everything below spills
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Push(i)
			l.TryPop()
		}
	})
}
