//go:build !race

package spsc

// raceEnabled reports whether the race detector is compiled in. The
// sync.Pool-backed alloc gates are skipped under -race: the race-mode pool
// deliberately drops a fraction of Puts to shake out lifecycle races, so
// zero-alloc steady state is unattainable by design there.
const raceEnabled = false
