package spsc

import "testing"

// Alloc-regression gate for the spill tier: once the per-lane freelist has
// been primed by the first burst, a forced-spill burst+drain cycle must run
// at zero steady-state allocations — every spill node is recycled through
// the freelist (or the shared NodePool) instead of reaching the allocator.
// If this starts failing, a node stopped being returned on the pop path or
// pushSpill stopped consulting the freelist.

// spillBurst drives one burst+drain cycle entirely through the spill tier:
// the ring is kept full by an initial fill, so every burst value spills,
// and the drain consumes exactly the burst back out of the spill list.
func spillBurst(l *Lane[uint64], burst int, buf []uint64) {
	for i := 0; i < burst; i++ {
		if !l.Push(uint64(i)) {
			panic("spillBurst: push did not spill (ring not full?)")
		}
	}
	drained := 0
	for drained < burst {
		n := l.PopBatch(buf)
		if n == 0 {
			panic("spillBurst: drain ran dry mid-burst")
		}
		drained += n
	}
}

func testSpillBurstZeroAlloc(t *testing.T, l *Lane[uint64], burst int) {
	t.Helper()
	// Fill the ring so every subsequent Push overflows to the spill list.
	for i := 0; i < l.Cap(); i++ {
		if l.Push(uint64(i)) {
			t.Fatal("ring fill spilled early")
		}
	}
	buf := make([]uint64, 32)
	// Warmup: the first bursts allocate their nodes; the drains hand every
	// one of them back through the freelist.
	for i := 0; i < 4; i++ {
		spillBurst(l, burst, buf)
	}
	if l.pool != nil && raceEnabled {
		// The race-mode sync.Pool drops a fraction of Puts by design; the
		// burst above still exercises the recycling paths under -race.
		t.Skip("pooled zero-alloc gate not meaningful under -race")
	}
	if n := testing.AllocsPerRun(200, func() { spillBurst(l, burst, buf) }); n != 0 {
		t.Errorf("forced-spill burst+drain: %v allocs/op, want 0 (burst %d)", n, burst)
	}
	if l.Spills() == 0 {
		t.Fatal("spill path never engaged")
	}
}

func TestLaneSpillBurstZeroAllocFreelist(t *testing.T) {
	// Burst within the per-lane freelist capacity: recycling never needs
	// the shared pool (none is attached).
	testSpillBurstZeroAlloc(t, NewLane[uint64](8), freelistSize/2)
}

func TestLaneSpillBurstZeroAllocPooled(t *testing.T) {
	// Burst beyond the freelist: overflow nodes round-trip through the
	// shared NodePool and the cycle still settles at zero allocations.
	pool := NewNodePool[uint64]()
	testSpillBurstZeroAlloc(t, NewLanePooled[uint64](8, pool), freelistSize*2)
}

func TestNodePoolSharedAcrossLanes(t *testing.T) {
	// Nodes freed by one lane become available to another lane on the same
	// pool: drain lane A's spill completely, then burst lane B and observe
	// the burst+drain cycle settle at zero allocations after warmup even
	// though B's burst exceeds its own freelist.
	pool := NewNodePool[uint64]()
	a := NewLanePooled[uint64](4, pool)
	b := NewLanePooled[uint64](4, pool)
	buf := make([]uint64, 32)
	for i := 0; i < a.Cap(); i++ {
		a.Push(uint64(i))
	}
	for i := 0; i < b.Cap(); i++ {
		b.Push(uint64(i))
	}
	const burst = freelistSize * 2
	for i := 0; i < 4; i++ {
		spillBurst(a, burst, buf)
		spillBurst(b, burst, buf)
	}
	if raceEnabled {
		t.Skip("pooled zero-alloc gate not meaningful under -race")
	}
	if n := testing.AllocsPerRun(100, func() {
		spillBurst(a, burst, buf)
		spillBurst(b, burst, buf)
	}); n != 0 {
		t.Errorf("pooled cross-lane burst+drain: %v allocs/op, want 0", n)
	}
}
