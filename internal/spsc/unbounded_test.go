package spsc

import (
	"sync"
	"testing"
)

func TestUnboundedFIFO(t *testing.T) {
	q := NewUnbounded[int]()
	if _, ok := q.TryPop(); !q.Empty() || ok {
		t.Fatal("new queue should be empty")
	}
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		q.Push(vals[i])
	}
	if q.Empty() {
		t.Fatal("queue with items reports empty")
	}
	for i := range vals {
		got, ok := q.TryPop()
		if !ok || got != vals[i] {
			t.Fatalf("pop %d = %v, %v, want %d", i, got, ok, vals[i])
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("drained queue should report !ok")
	}
}

func TestUnboundedNeverBlocks(t *testing.T) {
	// The deadlock-freedom property recursive delegation relies on: a
	// producer can push any number of items with no consumer at all.
	q := NewUnbounded[int]()
	for i := 0; i < 100000; i++ {
		q.Push(7)
	}
	n := 0
	for {
		if _, ok := q.TryPop(); !ok {
			break
		}
		n++
	}
	if n != 100000 {
		t.Fatalf("drained %d items, want 100000", n)
	}
}

func TestUnboundedConcurrent(t *testing.T) {
	const n = 100000
	q := NewUnbounded[int]()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	next := 0
	for next < n {
		v, ok := q.TryPop()
		if !ok {
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	wg.Wait()
}
