package spsc

import "sync/atomic"

// Unbounded is an unbounded lock-free SPSC queue (a Vyukov-style linked
// list). The recursive-delegation extension uses it for its per-producer
// lanes: a delegate may delegate to a set it itself owns, and with a
// bounded queue the push could block on a lane only the pushing context
// can drain — a self-deadlock. Unbounded lanes make recursive delegation
// deadlock-free by construction, trading the FastForward queue's cache
// behaviour for safety on a path where operations are coarse anyway.
type Unbounded[T any] struct {
	head *unode[T] // consumer-private
	tail *unode[T] // producer-private
}

type unode[T any] struct {
	next atomic.Pointer[unode[T]]
	val  *T
}

// NewUnbounded returns an empty queue.
func NewUnbounded[T any]() *Unbounded[T] {
	stub := &unode[T]{}
	return &Unbounded[T]{head: stub, tail: stub}
}

// Push appends v. Never blocks. Producer-only.
func (q *Unbounded[T]) Push(v *T) {
	n := &unode[T]{val: v}
	q.tail.next.Store(n)
	q.tail = n
}

// TryPop removes the next value, or returns nil if empty. Consumer-only.
func (q *Unbounded[T]) TryPop() *T {
	next := q.head.next.Load()
	if next == nil {
		return nil
	}
	v := next.val
	next.val = nil // release for GC
	q.head = next
	return v
}

// Empty reports whether the queue appears empty to the consumer.
func (q *Unbounded[T]) Empty() bool { return q.head.next.Load() == nil }
