package spsc

import "sync/atomic"

// unode is a node of the unbounded SPSC linked list (Vyukov-style,
// stub-node form) that backs Lane's spill tier: when a lane's bounded ring
// overflows, values are carried in these nodes — one allocation per
// spilled value, with the value stored inline — until the consumer drains
// the list and the producer returns to the ring.
type unode[T any] struct {
	next atomic.Pointer[unode[T]]
	val  T
}
