package spsc

import "sync/atomic"

// Unbounded is an unbounded lock-free SPSC queue (a Vyukov-style linked
// list) carrying T values in its nodes. The recursive-delegation extension
// uses it for its per-producer lanes: a delegate may delegate to a set it
// itself owns, and with a bounded queue the push could block on a lane only
// the pushing context can drain — a self-deadlock. Unbounded lanes make
// recursive delegation deadlock-free by construction, trading the bounded
// ring's zero-allocation behaviour for safety on a path where operations
// are coarse anyway (one node allocation per push, value stored inline).
type Unbounded[T any] struct {
	head *unode[T] // consumer-private
	tail *unode[T] // producer-private
}

type unode[T any] struct {
	next atomic.Pointer[unode[T]]
	val  T
}

// NewUnbounded returns an empty queue.
func NewUnbounded[T any]() *Unbounded[T] {
	stub := &unode[T]{}
	return &Unbounded[T]{head: stub, tail: stub}
}

// Push appends v. Never blocks. Producer-only.
func (q *Unbounded[T]) Push(v T) {
	n := &unode[T]{val: v}
	q.tail.next.Store(n)
	q.tail = n
}

// TryPop removes and returns the next value; ok is false if the queue is
// empty. Consumer-only.
func (q *Unbounded[T]) TryPop() (T, bool) {
	var zero T
	next := q.head.next.Load()
	if next == nil {
		return zero, false
	}
	v := next.val
	next.val = zero // release for GC
	q.head = next
	return v, true
}

// Empty reports whether the queue appears empty to the consumer.
func (q *Unbounded[T]) Empty() bool { return q.head.next.Load() == nil }
