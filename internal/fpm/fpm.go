// Package fpm implements frequent-itemset mining for the freqmine
// benchmark: an FP-growth miner (Han et al.) structured, like PARSEC's
// freqmine, so that the mining of each frequent item's conditional pattern
// base is an independent task — the unit the parallel drivers distribute.
//
// A brute-force Apriori-style counter is included for use as a test oracle
// on small inputs.
package fpm

import (
	"sort"

	"repro/internal/workload"
)

// ItemSet is a sorted list of item ids with its support count.
type ItemSet struct {
	Items   []int
	Support int
}

// Key renders the itemset as a comparable string (items are sorted).
func (s ItemSet) Key() string {
	b := make([]byte, 0, len(s.Items)*3)
	for _, it := range s.Items {
		b = append(b, byte(it>>16), byte(it>>8), byte(it))
	}
	return string(b)
}

// node is an FP-tree node. Children are kept in a slice sorted by item id:
// binary search is as fast as a map for the small fan-outs FP-trees have,
// and the slice allocates far less, which matters because conditional-tree
// construction during mining is allocation-bound.
type node struct {
	item     int
	count    int
	parent   *node
	children []*node // sorted by item
	next     *node   // header-table chain
}

// child finds the child with the given item id, or nil.
func (n *node) child(item int) *node {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].item < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].item == item {
		return n.children[lo]
	}
	return nil
}

// addChild inserts c preserving the sort order.
func (n *node) addChild(c *node) {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].item < c.item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n.children = append(n.children, nil)
	copy(n.children[lo+1:], n.children[lo:])
	n.children[lo] = c
}

// Tree is an FP-tree with its header table.
type Tree struct {
	root   *node
	heads  map[int]*node // item -> first node in chain
	counts map[int]int   // item -> total support in this tree
	minSup int
	// order ranks items by global frequency (descending); transactions are
	// inserted in this order so frequent items share prefixes.
	order map[int]int
}

// Build constructs the FP-tree over the database with the given absolute
// minimum support.
func Build(txns []workload.Transaction, minSup int) *Tree {
	counts := map[int]int{}
	for _, t := range txns {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := make([]int, 0, len(counts))
	for it, c := range counts {
		if c >= minSup {
			frequent = append(frequent, it)
		}
	}
	// Rank by descending frequency, ties by item id for determinism.
	sort.Slice(frequent, func(i, j int) bool {
		a, b := frequent[i], frequent[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	order := make(map[int]int, len(frequent))
	for rank, it := range frequent {
		order[it] = rank
	}
	t := &Tree{
		root:   &node{},
		heads:  map[int]*node{},
		counts: map[int]int{},
		minSup: minSup,
		order:  order,
	}
	// Insert rows as rank sequences: sorting small int ranks and mapping
	// back through the byRank table is markedly cheaper than a comparator
	// closure over the order map, and this loop is the sequential fraction
	// every parallel driver pays (Amdahl).
	byRank := frequent // frequent[rank] = item
	ranks := make([]int, 0, 32)
	row := make([]int, 0, 32)
	for _, txn := range txns {
		ranks = ranks[:0]
		for _, it := range txn {
			if r, ok := order[it]; ok {
				ranks = append(ranks, r)
			}
		}
		sort.Ints(ranks)
		row = row[:0]
		for _, r := range ranks {
			row = append(row, byRank[r])
		}
		t.insert(row, 1)
	}
	return t
}

func (t *Tree) insert(items []int, count int) {
	cur := t.root
	for _, it := range items {
		child := cur.child(it)
		if child == nil {
			child = &node{item: it, parent: cur, next: t.heads[it]}
			t.heads[it] = child
			cur.addChild(child)
		}
		child.count += count
		cur = child
	}
	for _, it := range items {
		t.counts[it] += count
	}
}

// FrequentItems returns the frequent items of this tree in mining order
// (least-frequent first, the order FP-growth peels items). This is the task
// list the parallel drivers distribute.
func (t *Tree) FrequentItems() []int {
	items := make([]int, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= t.minSup {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return t.order[items[i]] > t.order[items[j]] })
	return items
}

// MineItem mines every frequent itemset that ends (in frequency order) at
// the given item: the item's conditional pattern base is extracted and mined
// recursively. MineItem calls on distinct items touch disjoint conditional
// trees and may run concurrently as long as the base tree is read-only.
func (t *Tree) MineItem(item int) []ItemSet {
	var out []ItemSet
	t.mineItemInto(item, []int{}, &out)
	return out
}

func (t *Tree) mineItemInto(item int, suffix []int, out *[]ItemSet) {
	support := t.counts[item]
	if support < t.minSup {
		return
	}
	itemset := append(append([]int{}, suffix...), item)
	sort.Ints(itemset)
	*out = append(*out, ItemSet{Items: itemset, Support: support})

	// Conditional pattern base: prefix paths of every node of this item.
	var paths []condPath
	for n := t.heads[item]; n != nil; n = n.next {
		var items []int
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			items = append(items, p.item)
		}
		if len(items) > 0 {
			paths = append(paths, condPath{items: items, count: n.count})
		}
	}
	if len(paths) == 0 {
		return
	}
	cond := buildConditional(paths, t.minSup)
	for _, sub := range cond.FrequentItems() {
		cond.mineItemInto(sub, itemset, out)
	}
}

type condPath struct {
	items []int
	count int
}

// buildConditional constructs the conditional FP-tree of a pattern base.
func buildConditional(paths []condPath, minSup int) *Tree {
	counts := map[int]int{}
	for _, p := range paths {
		for _, it := range p.items {
			counts[it] += p.count
		}
	}
	frequent := make([]int, 0, len(counts))
	for it, c := range counts {
		if c >= minSup {
			frequent = append(frequent, it)
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		a, b := frequent[i], frequent[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	order := make(map[int]int, len(frequent))
	for rank, it := range frequent {
		order[it] = rank
	}
	t := &Tree{
		root:   &node{},
		heads:  map[int]*node{},
		counts: map[int]int{},
		minSup: minSup,
		order:  order,
	}
	row := make([]int, 0, 16)
	for _, p := range paths {
		row = row[:0]
		for _, it := range p.items {
			if _, ok := order[it]; ok {
				row = append(row, it)
			}
		}
		sort.Slice(row, func(i, j int) bool { return order[row[i]] < order[row[j]] })
		t.insert(row, p.count)
	}
	return t
}

// MineAll mines the complete set of frequent itemsets sequentially.
func (t *Tree) MineAll() []ItemSet {
	var out []ItemSet
	for _, it := range t.FrequentItems() {
		out = append(out, t.MineItem(it)...)
	}
	return out
}

// BruteForce enumerates frequent itemsets by counting all subsets up to
// maxLen over the database — exponential, for test oracles only.
func BruteForce(txns []workload.Transaction, minSup, maxLen int) []ItemSet {
	counts := map[string]int{}
	sets := map[string][]int{}
	var rec func(txn []int, start int, cur []int)
	rec = func(txn []int, start int, cur []int) {
		if len(cur) > 0 {
			is := ItemSet{Items: append([]int{}, cur...)}
			k := is.Key()
			counts[k]++
			sets[k] = is.Items
		}
		if len(cur) == maxLen {
			return
		}
		for i := start; i < len(txn); i++ {
			rec(txn, i+1, append(cur, txn[i]))
		}
	}
	for _, t := range txns {
		row := append([]int{}, t...)
		sort.Ints(row)
		rec(row, 0, nil)
	}
	var out []ItemSet
	for k, c := range counts {
		if c >= minSup {
			out = append(out, ItemSet{Items: sets[k], Support: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// LessItems compares two sorted item lists lexicographically without
// allocating (ItemSet.Key would build two strings per comparison).
func LessItems(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SortItemSets orders itemsets canonically for comparison.
func SortItemSets(s []ItemSet) {
	sort.Slice(s, func(i, j int) bool { return LessItems(s[i].Items, s[j].Items) })
}
