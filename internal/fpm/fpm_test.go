package fpm

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/workload"
)

func smallDB() []workload.Transaction {
	// Classic FP-growth textbook example.
	return []workload.Transaction{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	}
}

func TestMineAllMatchesBruteForceTextbook(t *testing.T) {
	txns := smallDB()
	got := Build(txns, 2).MineAll()
	want := BruteForce(txns, 2, 5)
	SortItemSets(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FP-growth = %v\nbrute     = %v", got, want)
	}
}

func TestMineAllMatchesBruteForceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		var txns []workload.Transaction
		n := 20 + r.Intn(60)
		for i := 0; i < n; i++ {
			var txn workload.Transaction
			seen := map[int]bool{}
			for k := 0; k < 1+r.Intn(6); k++ {
				it := r.Intn(12)
				if !seen[it] {
					seen[it] = true
					txn = append(txn, it)
				}
			}
			txns = append(txns, txn)
		}
		minSup := 2 + r.Intn(4)
		got := Build(txns, minSup).MineAll()
		want := BruteForce(txns, minSup, 12)
		SortItemSets(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (minSup %d):\nFP-growth = %v\nbrute     = %v", trial, minSup, got, want)
		}
	}
}

func TestPerItemMiningPartitionsResults(t *testing.T) {
	// MineAll == union of MineItem over FrequentItems, disjointly: this is
	// the independence property the parallel drivers rely on.
	txns := smallDB()
	tree := Build(txns, 2)
	all := tree.MineAll()
	seen := map[string]int{}
	for _, is := range all {
		seen[is.Key()]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("itemset %x produced by %d items", k, n)
		}
	}
	var union []ItemSet
	for _, it := range tree.FrequentItems() {
		union = append(union, tree.MineItem(it)...)
	}
	SortItemSets(union)
	SortItemSets(all)
	if !reflect.DeepEqual(union, all) {
		t.Fatal("per-item union differs from MineAll")
	}
}

func TestFrequentItemsOrderAndThreshold(t *testing.T) {
	tree := Build(smallDB(), 2)
	items := tree.FrequentItems()
	if len(items) == 0 {
		t.Fatal("no frequent items")
	}
	for _, it := range items {
		if tree.counts[it] < 2 {
			t.Fatalf("item %d below support", it)
		}
	}
	// Mining order: least frequent first.
	for i := 1; i < len(items); i++ {
		if tree.order[items[i-1]] < tree.order[items[i]] {
			t.Fatal("FrequentItems not in reverse frequency order")
		}
	}
	// Item 6 never appears; item 4 appears twice; item 5 twice.
	counts := map[int]int{}
	for _, txn := range smallDB() {
		for _, it := range txn {
			counts[it]++
		}
	}
	for _, it := range items {
		if counts[it] < 2 {
			t.Fatalf("infrequent item %d reported", it)
		}
	}
}

func TestHighSupportYieldsNothing(t *testing.T) {
	if got := Build(smallDB(), 100).MineAll(); len(got) != 0 {
		t.Fatalf("minSup 100 mined %v", got)
	}
}

func TestEmptyDatabase(t *testing.T) {
	if got := Build(nil, 1).MineAll(); len(got) != 0 {
		t.Fatalf("empty DB mined %v", got)
	}
}

func TestGeneratedWorkloadMines(t *testing.T) {
	cfg := workload.TxnSize(workload.Small)
	cfg.Count = 3000 // keep the test fast
	txns := workload.GenerateTransactions(cfg)
	minSup := int(cfg.MinSupport * float64(len(txns)))
	tree := Build(txns, minSup)
	sets := tree.MineAll()
	if len(sets) == 0 {
		t.Fatal("generator produced no frequent itemsets")
	}
	multi := 0
	for _, s := range sets {
		if s.Support < minSup {
			t.Fatalf("itemset %v below support", s)
		}
		if len(s.Items) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-item frequent itemsets; embedded patterns not mined")
	}
}

func TestItemSetKeyCanonical(t *testing.T) {
	a := ItemSet{Items: []int{1, 2, 3}}
	b := ItemSet{Items: []int{1, 2, 3}}
	c := ItemSet{Items: []int{1, 2, 4}}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Fatal("Key not canonical")
	}
}
