// Package durable is the serving tier's durability layer: epoch-consistent
// snapshots plus a checksummed intra-epoch journal over a pluggable
// storage seam, and the recovery procedure that turns whatever a crash
// left behind into a usable session table.
//
// # Data layout
//
// A Store owns a flat namespace of files inside one FS:
//
//	snap-<gen>.snap   committed snapshot, generation <gen>
//	snap-<gen>.tmp    in-flight snapshot write (garbage after a crash)
//	wal-<gen>.wal     journal of everything appended SINCE snapshot <gen>
//
// Generations strictly increase across commits and across process
// restarts. A snapshot is a framed header record, one framed payload
// record per entry, and a framed trailer whose count must match — so a
// snapshot is either provably complete or not a snapshot. Commit is
// write-temp, sync, rename: the rename is the atomic commit point, and a
// crash at any earlier moment leaves the previous generation untouched.
//
// # Recovery
//
// Recover loads the NEWEST snapshot that validates end to end, falling
// back generation by generation when the newest is corrupt (the previous
// generation is retained on disk for exactly this reason), then replays
// every journal from one generation before the chosen snapshot onward in
// ascending order (journal G stays open while snapshot G+1 commits, so
// wal-(G) can hold records newer than snapshot G+1's capture). Journal replay stops at the first torn or corrupt frame — the
// expected shape of a crash mid-append — and reports what it truncated
// instead of failing: a torn tail is bounded data loss, not an unbootable
// store. Because journal generations overlap snapshot captures (appends
// continue while a write-behind snapshot commits), replay may observe
// records already folded into the snapshot; callers make replay idempotent
// by applying records monotonically (the serving tier keys on the session
// sequence number).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// FsyncPolicy says when the journal is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncOff never syncs explicitly: appends reach the OS when the
	// user-space buffer fills. Loss after a crash is bounded only by the
	// buffer (kill -9) or the OS writeback window (power loss).
	FsyncOff FsyncPolicy = iota
	// FsyncRotation flushes and syncs at every epoch rotation: loss after
	// a crash is bounded by one epoch of acknowledged requests.
	FsyncRotation
	// FsyncAlways flushes and syncs every append before it returns: an
	// acknowledged request is durable — zero acked loss — at the cost of a
	// sync on every request.
	FsyncAlways
)

// ParseFsync maps the CLI spelling ("off", "rotation", "always") to a
// policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "off":
		return FsyncOff, nil
	case "rotation":
		return FsyncRotation, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want off, rotation, or always)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncRotation:
		return "rotation"
	case FsyncAlways:
		return "always"
	default:
		return "off"
	}
}

// Store is a snapshot+journal store over one FS. Methods are safe for the
// single-owner discipline the serving tier uses (one writer goroutine
// commits snapshots, one Journal handle takes appends); Recover is called
// before anything else.
type Store struct {
	fs FS
}

// NewStore wraps fs. The FS is the pluggable seam: NewDirFS for a real
// state directory, NewMemFS for tests, chaos.FaultyFS for fault drills.
func NewStore(fs FS) *Store { return &Store{fs: fs} }

// FS returns the underlying seam (tests reach through it).
func (s *Store) FS() FS { return s.fs }

const (
	snapMagic    = "SSSNAP"
	snapTrailer  = "SSEND"
	snapVersion  = 1
	snapPrefix   = "snap-"
	snapSuffix   = ".snap"
	snapTmp      = ".tmp"
	walPrefix    = "wal-"
	walSuffix    = ".wal"
	genNameWidth = 20
)

func snapName(gen uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, genNameWidth, gen, snapSuffix)
}

func walName(gen uint64) string {
	return fmt.Sprintf("%s%0*d%s", walPrefix, genNameWidth, gen, walSuffix)
}

// SnapshotName and JournalName expose the on-disk naming scheme for
// tests and tooling that reach into a state directory from outside the
// package (e.g. to corrupt a specific generation in a fault drill).
func SnapshotName(gen uint64) string { return snapName(gen) }
func JournalName(gen uint64) string  { return walName(gen) }

func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	gen, err := strconv.ParseUint(mid, 10, 64)
	return gen, err == nil
}

// SnapshotInfo reports what a commit wrote, for metrics.
type SnapshotInfo struct {
	Gen     uint64
	Bytes   int
	Records int
}

// CommitSnapshot atomically writes generation gen holding records: frame
// everything into a temp file, sync it, rename it over the committed name.
// On any error the temp file is removed (best effort) and every previously
// committed generation is untouched — a failed snapshot degrades
// durability, it never regresses it. A successful commit garbage-collects
// all but the two newest snapshot generations and every journal more than
// one generation older than the oldest kept snapshot (journals the replay
// rule could still name — wal-(G-1) for any recoverable snapshot G — are
// retained; anything older can never be replayed again).
func (s *Store) CommitSnapshot(gen uint64, records [][]byte) (SnapshotInfo, error) {
	hdr := make([]byte, 0, len(snapMagic)+1+16)
	hdr = append(hdr, snapMagic...)
	hdr = append(hdr, snapVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, gen)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(records)))

	size := frameOverhead + len(hdr)
	for _, r := range records {
		size += frameOverhead + len(r)
	}
	size += frameOverhead + len(snapTrailer) + 8

	buf := make([]byte, 0, size)
	buf = appendRecord(buf, hdr)
	for _, r := range records {
		buf = appendRecord(buf, r)
	}
	tr := make([]byte, 0, len(snapTrailer)+8)
	tr = append(tr, snapTrailer...)
	tr = binary.LittleEndian.AppendUint64(tr, uint64(len(records)))
	buf = appendRecord(buf, tr)

	tmp := snapName(gen) + snapTmp
	f, err := s.fs.Create(tmp)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %d: create: %w", gen, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %d: write: %w", gen, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %d: sync: %w", gen, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %d: close: %w", gen, err)
	}
	if err := s.fs.Rename(tmp, snapName(gen)); err != nil {
		s.fs.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %d: commit rename: %w", gen, err)
	}
	s.gc()
	return SnapshotInfo{Gen: gen, Bytes: len(buf), Records: len(records)}, nil
}

// gc removes all but the two newest committed snapshot generations, every
// journal more than one generation older than the oldest kept snapshot,
// and stray temp files from crashed commits. Best effort: a removal
// failure leaves extra files, not a broken store.
func (s *Store) gc() {
	names, err := s.fs.List()
	if err != nil {
		return
	}
	var snaps []uint64
	for _, n := range names {
		if gen, ok := parseGen(n, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	var floor uint64 // oldest kept snapshot generation
	if len(snaps) > 0 {
		floor = snaps[0]
		if len(snaps) > 1 {
			floor = snaps[1]
		}
	}
	for _, n := range names {
		if strings.HasSuffix(n, snapTmp) {
			s.fs.Remove(n)
			continue
		}
		if gen, ok := parseGen(n, snapPrefix, snapSuffix); ok && gen < floor {
			s.fs.Remove(n)
		}
		// Journals are kept back to floor-1, not floor: Recover replays
		// wal-(G-1) when it falls back to snapshot G, because that journal
		// may hold records no snapshot captured. Deleting wal-(floor-1)
		// would break recovery the first time the newest snapshot fails
		// validation and the kept older generation takes over.
		if gen, ok := parseGen(n, walPrefix, walSuffix); ok && gen+1 < floor {
			s.fs.Remove(n)
		}
	}
}

// readSnapshot loads and fully validates one committed generation:
// header magic/version/gen, every record's checksum, and the trailer
// count. Any deviation makes the whole snapshot invalid — recovery falls
// back to the previous generation rather than trusting a partial read.
func (s *Store) readSnapshot(gen uint64) ([][]byte, error) {
	rc, err := s.fs.Open(snapName(gen))
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	rr := newRecordReader(rc)
	hdr, err := rr.Next()
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %d: header: %w", gen, err)
	}
	if len(hdr) != len(snapMagic)+1+16 || string(hdr[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durable: snapshot %d: bad magic", gen)
	}
	if v := hdr[len(snapMagic)]; v != snapVersion {
		return nil, fmt.Errorf("durable: snapshot %d: unknown version %d", gen, v)
	}
	if g := binary.LittleEndian.Uint64(hdr[len(snapMagic)+1:]); g != gen {
		return nil, fmt.Errorf("durable: snapshot %d: header names generation %d", gen, g)
	}
	count := binary.LittleEndian.Uint64(hdr[len(snapMagic)+9:])
	records := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		rec, err := rr.Next()
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot %d: record %d: %w", gen, i, err)
		}
		records = append(records, rec)
	}
	tr, err := rr.Next()
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %d: trailer: %w", gen, err)
	}
	if len(tr) != len(snapTrailer)+8 || string(tr[:len(snapTrailer)]) != snapTrailer ||
		binary.LittleEndian.Uint64(tr[len(snapTrailer):]) != count {
		return nil, fmt.Errorf("durable: snapshot %d: trailer mismatch", gen)
	}
	if _, err := rr.Next(); err != io.EOF {
		return nil, fmt.Errorf("durable: snapshot %d: trailing garbage", gen)
	}
	return records, nil
}

// Recovery is what Recover reconstructed and how it got there.
type Recovery struct {
	// Fresh is true when no committed snapshot validated: the store starts
	// empty (journal records, if any, still replay).
	Fresh bool
	// SnapshotGen is the generation the recovered state is based on
	// (0 when Fresh).
	SnapshotGen uint64
	// MaxGen is the highest generation named by ANY file in the store —
	// committed snapshots (valid or not) and journals alike; 0 when the
	// store holds neither. A writer resuming after recovery must start at
	// MaxGen+1: SnapshotGen alone is not safe, because a crash between a
	// rotation's journal swap and its snapshot commit leaves a journal one
	// generation AHEAD of the newest snapshot, possibly with a torn tail.
	// Appending to that file would strand every new record behind the tear
	// (replay stops at the first bad frame).
	MaxGen uint64
	// SnapshotRecords are the chosen snapshot's payloads, in write order.
	SnapshotRecords [][]byte
	// JournalRecords are every replayable journal payload with generation
	// >= SnapshotGen-1, in append order across files. May overlap the
	// snapshot — apply monotonically.
	JournalRecords [][]byte
	// SnapshotsSkipped counts committed generations that failed
	// validation and were passed over.
	SnapshotsSkipped int
	// JournalsRead counts journal files replayed.
	JournalsRead int
	// TruncatedRecords counts torn or corrupt journal frames dropped at
	// file tails (recovery keeps the valid prefix and discards the rest of
	// that file — frame boundaries are unrecoverable past a bad frame).
	TruncatedRecords int
	// TruncatedBytes is how many journal bytes those truncations discarded.
	TruncatedBytes int64
}

// Recover loads the newest valid snapshot and the journals that extend
// it. It never fails on corrupt or torn CONTENT — that is degraded data,
// reported in the Recovery — only on an unreadable store (List errors).
func (s *Store) Recover() (*Recovery, error) {
	names, err := s.fs.List()
	if err != nil {
		return nil, fmt.Errorf("durable: recover: %w", err)
	}
	var snaps, wals []uint64
	rec := &Recovery{Fresh: true}
	for _, n := range names {
		if gen, ok := parseGen(n, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, gen)
			if gen > rec.MaxGen {
				rec.MaxGen = gen
			}
		}
		if gen, ok := parseGen(n, walPrefix, walSuffix); ok {
			wals = append(wals, gen)
			if gen > rec.MaxGen {
				rec.MaxGen = gen
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	for _, gen := range snaps {
		records, err := s.readSnapshot(gen)
		if err != nil {
			rec.SnapshotsSkipped++
			continue
		}
		rec.Fresh = false
		rec.SnapshotGen = gen
		rec.SnapshotRecords = records
		break
	}
	for _, gen := range wals {
		// Journal gen G stays open while snapshot G+1 commits (write-behind:
		// appends continue during the commit), so wal-(SnapshotGen-1) can
		// hold records captured by NO snapshot. Only journals at least two
		// generations behind are provably folded in.
		if !rec.Fresh && gen+1 < rec.SnapshotGen {
			continue
		}
		s.replayJournal(gen, rec)
	}
	return rec, nil
}

// replayJournal appends wal-<gen>'s valid record prefix to rec, accounting
// for whatever tail it had to abandon.
func (s *Store) replayJournal(gen uint64, rec *Recovery) {
	rc, err := s.fs.Open(walName(gen))
	if err != nil {
		return
	}
	defer rc.Close()
	rec.JournalsRead++
	cr := &countingReader{r: rc}
	rr := newRecordReader(cr)
	for {
		payload, err := rr.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			// Torn or corrupt frame: the valid prefix is already collected;
			// everything from this frame on is unreadable (boundaries lost).
			rec.TruncatedRecords++
			rec.TruncatedBytes += drainLen(cr)
			return
		}
		rec.JournalRecords = append(rec.JournalRecords, payload)
		cr.mark()
	}
}

// countingReader tracks how far past the last good frame a journal read
// got, so truncation can report discarded bytes.
type countingReader struct {
	r      io.Reader
	n      int64 // bytes read
	marked int64 // bytes read at the last completed record
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) mark() { c.marked = c.n }

// drainLen consumes the rest of the stream and returns how many bytes lie
// past the last completed record.
func drainLen(c *countingReader) int64 {
	io.Copy(io.Discard, c)
	return c.n - c.marked
}

// HasSnapshot reports whether any committed snapshot generation exists —
// tests use it to assert the previous generation survived a failed commit.
func (s *Store) HasSnapshot(gen uint64) bool {
	rc, err := s.fs.Open(snapName(gen))
	if err != nil {
		return false
	}
	rc.Close()
	return true
}

var (
	errClosed = errors.New("durable: journal closed")
	errTorn   = errors.New("durable: journal file torn by a partial write; appends refused until the next generation")
)
