package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// --- record framing ---

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		[]byte("x"),
		[]byte("hello, frames"),
		bytes.Repeat([]byte{0xab}, 100_000),
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf, p)
	}
	rr := newRecordReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: payload mismatch (%d bytes vs %d)", i, len(got), len(want))
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestRecordTornAndCorrupt(t *testing.T) {
	full := appendRecord(nil, []byte("first"))
	full = appendRecord(full, []byte("second record, somewhat longer"))

	// Torn mid-header of the second record.
	rr := newRecordReader(bytes.NewReader(full[:len(appendRecord(nil, []byte("first")))+3]))
	if _, err := rr.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := rr.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn header: want ErrTorn, got %v", err)
	}

	// Torn mid-payload.
	rr = newRecordReader(bytes.NewReader(full[:len(full)-5]))
	rr.Next()
	if _, err := rr.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn payload: want ErrTorn, got %v", err)
	}

	// Checksum corruption in the payload.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	rr = newRecordReader(bytes.NewReader(bad))
	rr.Next()
	if _, err := rr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit rot: want ErrCorrupt, got %v", err)
	}

	// Garbage length prefix.
	huge := make([]byte, 8)
	huge[3] = 0xff // length ~4e9 > maxRecordLen
	rr = newRecordReader(bytes.NewReader(huge))
	if _, err := rr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: want ErrCorrupt, got %v", err)
	}
}

// --- snapshots ---

func recs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestSnapshotCommitAndRecover(t *testing.T) {
	for _, newFS := range []struct {
		name string
		mk   func(t *testing.T) FS
	}{
		{"mem", func(t *testing.T) FS { return NewMemFS() }},
		{"dir", func(t *testing.T) FS {
			fs, err := NewDirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	} {
		t.Run(newFS.name, func(t *testing.T) {
			st := NewStore(newFS.mk(t))
			info, err := st.CommitSnapshot(3, recs("alpha", "beta"))
			if err != nil {
				t.Fatal(err)
			}
			if info.Gen != 3 || info.Records != 2 || info.Bytes == 0 {
				t.Fatalf("info = %+v", info)
			}
			rec, err := st.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rec.Fresh || rec.SnapshotGen != 3 || len(rec.SnapshotRecords) != 2 {
				t.Fatalf("recovery = %+v", rec)
			}
			if string(rec.SnapshotRecords[0]) != "alpha" || string(rec.SnapshotRecords[1]) != "beta" {
				t.Fatalf("payloads = %q", rec.SnapshotRecords)
			}
		})
	}
}

func TestRecoverFallsBackPastCorruptSnapshot(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	if _, err := st.CommitSnapshot(1, recs("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CommitSnapshot(2, recs("new")); err != nil {
		t.Fatal(err)
	}
	// Bit-rot the newest committed generation mid-file.
	fs.Corrupt(snapName(2), fs.Len(snapName(2))/2)

	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fresh || rec.SnapshotGen != 1 || rec.SnapshotsSkipped != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	if string(rec.SnapshotRecords[0]) != "old" {
		t.Fatalf("fell back to %q", rec.SnapshotRecords[0])
	}
}

func TestRecoverFreshStore(t *testing.T) {
	rec, err := NewStore(NewMemFS()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Fresh || rec.SnapshotGen != 0 || rec.MaxGen != 0 || len(rec.SnapshotRecords) != 0 || len(rec.JournalRecords) != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
}

func TestSnapshotGCKeepsTwoGenerations(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	for gen := uint64(1); gen <= 4; gen++ {
		j, err := st.OpenJournal(gen, FsyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		j.Append([]byte(fmt.Sprintf("wal-%d", gen)))
		j.Close()
		if _, err := st.CommitSnapshot(gen, recs(fmt.Sprintf("snap-%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.List()
	var snaps, wals int
	for _, n := range names {
		if _, ok := parseGen(n, snapPrefix, snapSuffix); ok {
			snaps++
		}
		if _, ok := parseGen(n, walPrefix, walSuffix); ok {
			wals++
		}
	}
	if snaps != 2 {
		t.Fatalf("want 2 kept snapshots, have %d (%v)", snaps, names)
	}
	if !st.HasSnapshot(3) || !st.HasSnapshot(4) || st.HasSnapshot(2) {
		t.Fatalf("kept the wrong generations: %v", names)
	}
	// Journals survive back to floor-1 (gens 2, 3, 4): if snapshot 4 ever
	// fails validation and recovery falls back to snapshot 3, the replay
	// contract needs wal-2.
	if wals != 3 {
		t.Fatalf("want 3 kept journals (floor-1 onward), have %d (%v)", wals, names)
	}
}

func TestRecoverMaxGenSeesJournalAheadOfSnapshot(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	if _, err := st.CommitSnapshot(1, recs("state")); err != nil {
		t.Fatal(err)
	}
	// The crash shape the boot generation must survive: a rotation swapped
	// the journal to gen 2, then the process died before snapshot 2
	// committed — wal-2 exists with no matching snapshot, torn mid-frame.
	j, err := st.OpenJournal(2, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("acked"))
	j.Close()
	f, err := fs.Append(walName(2))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad}) // torn frame header
	f.Close()

	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotGen != 1 {
		t.Fatalf("SnapshotGen = %d, want 1", rec.SnapshotGen)
	}
	// MaxGen must count the orphaned journal, so the next writer opens
	// wal-3 instead of appending behind wal-2's tear.
	if rec.MaxGen != 2 {
		t.Fatalf("MaxGen = %d, want 2 (journal ahead of snapshot)", rec.MaxGen)
	}
	if len(rec.JournalRecords) != 1 || string(rec.JournalRecords[0]) != "acked" {
		t.Fatalf("journal replay = %q", rec.JournalRecords)
	}
	if rec.TruncatedRecords != 1 {
		t.Fatalf("truncated %d, want 1", rec.TruncatedRecords)
	}
}

// --- journal ---

func TestJournalFsyncLossBounds(t *testing.T) {
	// The loss model under kill -9: what the journal flushed to the FS
	// survives; the user-space buffer dies. Each policy bounds the loss
	// differently, and "crashing" is simply abandoning the handle
	// without Close.
	t.Run("always", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs)
		j, _ := st.OpenJournal(1, FsyncAlways)
		for i := 0; i < 10; i++ {
			if err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// crash: no Close, no Sync
		rec, _ := st.Recover()
		if len(rec.JournalRecords) != 10 {
			t.Fatalf("always: want all 10 records durable, got %d", len(rec.JournalRecords))
		}
	})
	t.Run("rotation", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs)
		j, _ := st.OpenJournal(1, FsyncRotation)
		for i := 0; i < 6; i++ {
			j.Append([]byte(fmt.Sprintf("r%d", i)))
		}
		if err := j.Sync(); err != nil { // the rotation boundary
			t.Fatal(err)
		}
		for i := 6; i < 10; i++ {
			j.Append([]byte(fmt.Sprintf("r%d", i)))
		}
		// crash: the 4 post-rotation records were buffered, not flushed
		rec, _ := st.Recover()
		if len(rec.JournalRecords) != 6 {
			t.Fatalf("rotation: want exactly the 6 synced records, got %d", len(rec.JournalRecords))
		}
	})
	t.Run("off", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs)
		j, _ := st.OpenJournal(1, FsyncOff)
		for i := 0; i < 10; i++ {
			j.Append([]byte(fmt.Sprintf("r%d", i)))
		}
		// crash: everything fit the buffer; nothing reached the FS
		rec, _ := st.Recover()
		if len(rec.JournalRecords) != 0 {
			t.Fatalf("off: want 0 durable records, got %d", len(rec.JournalRecords))
		}
	})
}

func TestJournalTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	j, _ := st.OpenJournal(1, FsyncAlways)
	j.Append([]byte("good-1"))
	j.Append([]byte("good-2"))
	j.Close()
	// Simulate a crash mid-append: raw partial frame at the tail.
	f, _ := fs.Append(walName(1))
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}) // claims 64 bytes, delivers none
	f.Close()

	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.JournalRecords) != 2 {
		t.Fatalf("want the 2-record valid prefix, got %d", len(rec.JournalRecords))
	}
	if rec.TruncatedRecords != 1 || rec.TruncatedBytes != 6 {
		t.Fatalf("truncation accounting = %d records, %d bytes", rec.TruncatedRecords, rec.TruncatedBytes)
	}
}

func TestJournalCorruptMidFileKeepsPrefix(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	j, _ := st.OpenJournal(1, FsyncAlways)
	for i := 0; i < 5; i++ {
		j.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	j.Close()
	// Flip a byte inside record 3's payload: records 0..2 replay, the
	// rest of the file is unreadable past the bad frame.
	off := 3*(frameOverhead+len("rec-0")) + frameOverhead + 2
	fs.Corrupt(walName(1), off)

	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.JournalRecords) != 3 {
		t.Fatalf("want 3-record prefix, got %d", len(rec.JournalRecords))
	}
	if rec.TruncatedRecords != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("truncation accounting = %+v", rec)
	}
}

func TestJournalReplayAcrossGenerations(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	// Generation 1: snapshot + journal; generation 2 snapshot commits but
	// journal 1 still holds post-capture records (the write-behind overlap).
	if _, err := st.CommitSnapshot(1, recs("base")); err != nil {
		t.Fatal(err)
	}
	j1, _ := st.OpenJournal(1, FsyncAlways)
	j1.Append([]byte("pre-capture"))
	if _, err := st.CommitSnapshot(2, recs("base2")); err != nil {
		t.Fatal(err)
	}
	j1.Append([]byte("overlap")) // landed in wal-1 after snap-2's capture
	j1.Close()
	j2, _ := st.OpenJournal(2, FsyncAlways)
	j2.Append([]byte("post-swap"))
	j2.Close()

	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotGen != 2 {
		t.Fatalf("snapshot gen %d", rec.SnapshotGen)
	}
	// wal-1 (gen >= kept floor) and wal-2 both replay, in order.
	want := []string{"pre-capture", "overlap", "post-swap"}
	if len(rec.JournalRecords) != len(want) {
		t.Fatalf("journal records = %d, want %d", len(rec.JournalRecords), len(want))
	}
	for i, w := range want {
		if string(rec.JournalRecords[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, rec.JournalRecords[i], w)
		}
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	j, _ := st.OpenJournal(1, FsyncRotation)
	const (
		goroutines = 8
		each       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.JournalRecords) != goroutines*each {
		t.Fatalf("want %d records, got %d (no record torn or lost under concurrency)",
			goroutines*each, len(rec.JournalRecords))
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"off", FsyncOff, true},
		{"rotation", FsyncRotation, true},
		{"always", FsyncAlways, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := ParseFsync(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
	}
	for p, s := range map[FsyncPolicy]string{FsyncOff: "off", FsyncRotation: "rotation", FsyncAlways: "always"} {
		if p.String() != s {
			t.Errorf("String(%d) = %q", p, p.String())
		}
	}
}
