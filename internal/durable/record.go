package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing: every payload the durability layer persists — snapshot
// header, session records, journal entries — is wrapped in the same
// self-validating frame:
//
//	[ length uint32 | crc32(payload) uint32 | payload ]
//
// little-endian, crc32 IEEE over the payload bytes only. The frame is what
// turns "bytes on disk" into "records or a detected tear": a crash (or a
// chaos-injected short write) mid-frame leaves a tail whose length prefix
// runs past EOF or whose checksum disagrees, and the reader reports exactly
// which it found so recovery can truncate the tail and keep the valid
// prefix instead of crash-looping on garbage.

// frameOverhead is the per-record framing cost in bytes.
const frameOverhead = 8

// maxRecordLen bounds a single record. A length prefix above it means the
// frame header itself is garbage (torn write into the length field, bit
// rot), so the reader reports corruption rather than trying to allocate
// what the prefix claims.
const maxRecordLen = 16 << 20

// ErrTorn reports a frame cut short by EOF: the length prefix promises
// more bytes than the stream holds. This is the expected shape of a crash
// mid-append.
var ErrTorn = errors.New("durable: torn record: frame extends past end of stream")

// ErrCorrupt reports a frame whose bytes are present but wrong: checksum
// mismatch or an impossible length prefix.
var ErrCorrupt = errors.New("durable: corrupt record: checksum or length invalid")

// appendRecord frames payload onto buf and returns the extended slice.
func appendRecord(buf, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// recordReader decodes a stream of frames. Next returns io.EOF at a clean
// end-of-stream (the stream ends exactly on a frame boundary), ErrTorn or
// ErrCorrupt otherwise.
type recordReader struct {
	r io.Reader
}

func newRecordReader(r io.Reader) *recordReader { return &recordReader{r: r} }

// Next returns the next record's payload. The returned slice is owned by
// the caller.
func (rr *recordReader) Next() ([]byte, error) {
	var hdr [frameOverhead]byte
	n, err := io.ReadFull(rr.r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF // clean boundary
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %d header bytes of %d", ErrTorn, n, frameOverhead)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxRecordLen {
		return nil, fmt.Errorf("%w: length prefix %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if m, err := io.ReadFull(rr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: %d payload bytes of %d", ErrTorn, m, length)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch on %d-byte record", ErrCorrupt, length)
	}
	return payload, nil
}
