package durable

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the storage seam under the durability layer: a flat namespace of
// append-or-truncate files with rename and sync. It is deliberately narrow —
// exactly the operations the snapshot commit protocol (write temp, sync,
// rename) and the journal (append, sync) need — so the whole layer runs
// unchanged over a real directory (DirFS), an in-memory map (MemFS, for
// unit tests), or a chaos wrapper injecting write faults
// (internal/chaos.FaultyFS).
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if missing.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname's content. On a
	// POSIX directory this is the snapshot commit point: a crash before
	// the rename leaves only temp garbage, a crash after leaves the
	// complete new generation.
	Rename(oldname, newname string) error
	// Remove deletes name. Removing a missing file is not an error.
	Remove(name string) error
	// List returns every file name in the store, in any order.
	List() ([]string, error)
}

// File is a writable handle. Sync flushes the file's content to stable
// storage (fsync on a real file system).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// DirFS is the real, directory-backed FS. Besides syncing file CONTENT
// (File.Sync), DirFS syncs the DIRECTORY after every operation that
// changes its entries — Create, the first Append of a missing file, and
// Rename — because on POSIX a file's data being on stable storage says
// nothing about its directory entry. Without the directory fsync, a
// power cut after a "committed" snapshot rename or a fully synced journal
// could make the whole file vanish, silently voiding the fsync=always
// zero-acked-loss contract (a pure kill -9 never hits this — page cache
// survives process death — but the loss bounds are documented against
// power loss too).
type DirFS struct {
	dir string
}

// NewDirFS creates dir if needed and returns an FS rooted there.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.dir, filepath.Base(name)) }

// syncDir fsyncs the directory itself, making entry changes (new names,
// renames) durable.
func (d *DirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (d *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (d *DirFS) Append(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// The open may have created the file (one Append call per journal
	// generation — the directory fsync is off every hot path).
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (d *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(d.path(name))
}

func (d *DirFS) Rename(oldname, newname string) error {
	if err := os.Rename(d.path(oldname), d.path(newname)); err != nil {
		return err
	}
	// The rename is the snapshot commit point; it is not durable until the
	// directory is.
	return d.syncDir()
}

func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MemFS is the in-memory FS for tests: same semantics as DirFS (atomic
// rename, append, truncate-on-create) over a mutex-guarded map. A MemFS
// survives "process death" by construction — dropping every Store and
// Journal built on it and building new ones models a kill -9 that loses
// user-space buffers but keeps everything the journal flushed, which is
// exactly the loss model of a SIGKILL on a real file system (page-cache
// writes survive process death; only unflushed user-space buffers die).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*bytes.Buffer
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*bytes.Buffer)}
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("durable: write to closed file %q", f.name)
	}
	buf := f.fs.files[f.name]
	if buf == nil {
		buf = &bytes.Buffer{}
		f.fs.files[f.name] = buf
	}
	return buf.Write(p)
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	f.closed = true
	f.fs.mu.Unlock()
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	m.files[name] = &bytes.Buffer{}
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	if m.files[name] == nil {
		m.files[name] = &bytes.Buffer{}
	}
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("durable: %q: %w", name, os.ErrNotExist)
	}
	cp := make([]byte, buf.Len())
	copy(cp, buf.Bytes())
	return io.NopCloser(bytes.NewReader(cp)), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("durable: rename %q: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = buf
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	delete(m.files, name)
	m.mu.Unlock()
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Corrupt flips one byte at off in name — the unit tests' bit-rot
// injector. Panics if the file or offset does not exist (a test bug).
func (m *MemFS) Corrupt(name string, off int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok || off >= buf.Len() {
		panic(fmt.Sprintf("durable: MemFS.Corrupt(%q, %d): no such byte", name, off))
	}
	buf.Bytes()[off] ^= 0xff
}

// Len reports the current size of name, 0 if absent — for tests asserting
// what reached the store.
func (m *MemFS) Len(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if buf, ok := m.files[name]; ok {
		return buf.Len()
	}
	return 0
}
