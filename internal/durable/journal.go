package durable

import (
	"fmt"
	"sync"
)

// journalBufSize is the user-space buffer the journal accumulates frames
// in before writing through to the FS. Under FsyncOff this buffer is the
// loss bound for a kill -9 (writes that reached the FS survive process
// death; the buffer does not). FsyncRotation flushes and syncs it at every
// epoch rotation; FsyncAlways flushes and syncs every append.
const journalBufSize = 64 << 10

// Journal is the append-only intra-epoch log: everything that changed
// since the generation's snapshot, one checksummed frame per append.
// Append is safe for concurrent use — delegate contexts for different
// serialization sets journal concurrently — and the fsync policy decides
// what an append means for durability before it returns.
type Journal struct {
	mu       sync.Mutex
	f        File
	buf      []byte
	policy   FsyncPolicy
	closed   bool
	torn     bool   // a partial write left the file mid-frame; appends refused
	appended uint64 // records accepted (metrics)
	synced   uint64 // explicit sync operations performed (metrics)
}

// OpenJournal opens (creating or extending) generation gen's journal with
// the given fsync policy. The serving tier opens a FRESH generation at
// every boot and snapshot commit, so appends never land after a torn tail
// from an earlier crash — recovery reads torn files, the writer never
// extends them.
func (s *Store) OpenJournal(gen uint64, policy FsyncPolicy) (*Journal, error) {
	f, err := s.fs.Append(walName(gen))
	if err != nil {
		return nil, fmt.Errorf("durable: journal %d: %w", gen, err)
	}
	return &Journal{f: f, buf: make([]byte, 0, journalBufSize), policy: policy}, nil
}

// Append frames payload into the journal. Under FsyncAlways the record is
// flushed and synced before Append returns — the caller may acknowledge
// whatever the record describes. Under the other policies the record is
// buffered (flushed when the buffer fills) and the loss-bound contract is
// the policy's, not Append's.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	if j.torn {
		return errTorn
	}
	j.buf = appendRecord(j.buf, payload)
	j.appended++
	if j.policy == FsyncAlways {
		if err := j.flushLocked(); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return err
		}
		j.synced++
		return nil
	}
	if len(j.buf) >= journalBufSize {
		return j.flushLocked()
	}
	return nil
}

// Sync flushes the buffer and syncs the file — the rotation-policy hook,
// called at every epoch rotation by the snapshot writer.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	if err := j.flushLocked(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.synced++
	return nil
}

// Close flushes and closes, syncing first unless the policy is FsyncOff
// (off promises no fsyncs at all — the flush hands the buffer to the OS,
// which is enough to survive a kill -9 but not a power cut). Further
// Appends return errClosed — the swap-then-close dance at a snapshot
// commit may race a last append onto the closing journal, which is safe
// (the record lands before the close) or refused (after), never torn.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.flushLocked(); err != nil {
		j.f.Close()
		return err
	}
	if j.policy != FsyncOff {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return err
		}
		j.synced++
	}
	return j.f.Close()
}

// Appended reports how many records this journal accepted.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Synced reports how many explicit syncs this journal performed.
func (j *Journal) Synced() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.synced
}

func (j *Journal) flushLocked() error {
	if len(j.buf) == 0 {
		return nil
	}
	n, err := j.f.Write(j.buf)
	j.buf = j.buf[:0] // never retry into an unknown file position
	if err != nil {
		// The failed records are lost either way (the caller counts the
		// failure and serving continues on snapshot durability). What
		// matters is the FILE: if the FS accepted part of the buffer, the
		// file ends mid-frame, and any frame appended after it would be
		// unreadable — recovery stops at the first bad frame. Refuse
		// further appends on a torn file; the next snapshot commit opens a
		// fresh generation and journaling resumes there.
		if n > 0 {
			j.torn = true
		}
		return err
	}
	return nil
}
