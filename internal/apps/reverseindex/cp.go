package reverseindex

import "sync"

// RunCP is the conventional-parallel implementation in the style of the
// Phoenix pthreads baseline, which is two-phase by necessity (§3.2, §5.1):
// "a typical thread-based implementation would first have to locate all the
// files, then parcel them into equally-sized sets to evenly distribute work
// to the threads". Phase 1 performs the full directory recursion
// sequentially; phase 2 splits the file list across workers, each building
// a private index; the private indexes are merged under a final pass.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	// Phase 1: locate all files (sequential; nothing else may start).
	var files []*vfsFile
	in.FS.Walk(func(f *vfsFile) { files = append(files, f) })

	// Phase 2: parallel link extraction over static partitions.
	parts := make([]map[string]fileSet, workers)
	var wg sync.WaitGroup
	n := len(files)
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		parts[w] = map[string]fileSet{}
		wg.Add(1)
		go func(local map[string]fileSet) {
			defer wg.Done()
			for _, f := range files[lo:hi] {
				extractLinks(f.Content, func(url string) {
					set, ok := local[url]
					if !ok {
						set = fileSet{}
						local[url] = set
					}
					set[f.Path] = struct{}{}
				})
			}
		}(parts[w])
	}
	wg.Wait()

	// Merge private indexes.
	merged := map[string]fileSet{}
	for _, local := range parts {
		for url, set := range local {
			if dst, ok := merged[url]; ok {
				mergeFileSets(dst, set)
			} else {
				merged[url] = set
			}
		}
	}
	index := make(map[string][]string, len(merged))
	for url, set := range merged {
		index[url] = setToSorted(set)
	}
	return &Output{Index: index}
}
