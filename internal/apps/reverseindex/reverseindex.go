// Package reverseindex reproduces the Phoenix reverse_index benchmark
// (Table 2, and the paper's worked example in Figure 3): recursively read a
// directory tree of HTML files, extract the links, and build an index from
// each link to the files containing it.
//
// This is the benchmark where serialization sets beat the conventional
// parallel version in the paper (§5.1): the SS program overlaps the
// sequential directory recursion with the delegated link extraction, while
// the pthreads baseline must finish locating all files before it can parcel
// them out to threads.
package reverseindex

import (
	"sort"

	"repro/internal/vfs"
	"repro/internal/workload"
)

// Input is the in-memory directory tree.
type Input struct {
	FS *vfs.FS
}

// vfsFile shortens the substrate's file type in the drivers.
type vfsFile = vfs.File

// Output maps each link URL to the sorted list of file paths containing it.
type Output struct {
	Index map[string][]string
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	return &Input{FS: vfs.FromHTMLTree(workload.GenerateHTMLTree(workload.HTMLSize(size)))}
}

// extractLinks scans HTML content for anchor targets and calls emit for
// each (the paper's find_links). Like the Phoenix original it is a
// character-level parser: it recognizes <a> and <A> tags with any attribute
// order, optional whitespace around '=', and single-, double- or un-quoted
// href values — so the per-file work is a real parse, not a substring
// search.
func extractLinks(content []byte, emit func(url string)) {
	i := 0
	n := len(content)
	for i < n {
		if content[i] != '<' {
			i++
			continue
		}
		i++
		// Tag name must be "a" or "A" followed by a separator.
		if i >= n || (content[i] != 'a' && content[i] != 'A') {
			continue
		}
		i++
		if i >= n || !isSpace(content[i]) {
			continue
		}
		// Scan attributes until '>' looking for href.
		for i < n && content[i] != '>' {
			for i < n && isSpace(content[i]) {
				i++
			}
			attrStart := i
			for i < n && content[i] != '=' && content[i] != '>' && !isSpace(content[i]) {
				i++
			}
			attr := content[attrStart:i]
			for i < n && isSpace(content[i]) {
				i++
			}
			if i >= n || content[i] != '=' {
				continue
			}
			i++
			for i < n && isSpace(content[i]) {
				i++
			}
			var val []byte
			if i < n && (content[i] == '"' || content[i] == '\'') {
				q := content[i]
				i++
				valStart := i
				for i < n && content[i] != q {
					i++
				}
				if i >= n {
					return // unterminated quote: truncated document
				}
				val = content[valStart:i]
				i++
			} else {
				valStart := i
				for i < n && !isSpace(content[i]) && content[i] != '>' {
					i++
				}
				val = content[valStart:i]
			}
			if isHref(attr) && len(val) > 0 {
				emit(string(val))
			}
		}
	}
}

// ExtractLinks is the exported form of the link scanner, reused by the
// examples.
func ExtractLinks(content []byte, emit func(url string)) { extractLinks(content, emit) }

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// isHref matches "href" case-insensitively without allocating.
func isHref(attr []byte) bool {
	return len(attr) == 4 &&
		(attr[0]|0x20) == 'h' && (attr[1]|0x20) == 'r' &&
		(attr[2]|0x20) == 'e' && (attr[3]|0x20) == 'f'
}

// fileSet is the per-link set of files (the paper's link_t file_set,
// a reducible_set).
type fileSet map[string]struct{}

// mergeFileSets folds src into dst (the paper's link_t.reduce).
func mergeFileSets(dst, src fileSet) fileSet {
	for f := range src {
		dst[f] = struct{}{}
	}
	return dst
}

// setToSorted converts a file set to a sorted list.
func setToSorted(s fileSet) []string {
	files := make([]string, 0, len(s))
	for f := range s {
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}
