package reverseindex

// RunSeq is the sequential reference: walk the tree, extract links,
// accumulate the index.
func RunSeq(in *Input) *Output {
	index := map[string][]string{}
	seen := map[string]fileSet{}
	in.FS.Walk(func(f *vfsFile) {
		extractLinks(f.Content, func(url string) {
			set, ok := seen[url]
			if !ok {
				set = fileSet{}
				seen[url] = set
			}
			set[f.Path] = struct{}{}
		})
	})
	for url, set := range seen {
		index[url] = setToSorted(set)
	}
	return &Output{Index: index}
}
