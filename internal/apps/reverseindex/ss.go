package reverseindex

import (
	prometheus "repro"
	"repro/coll"
)

// RunSS is the serialization-sets implementation following the paper's
// Figure 3 program structure: the program context recursively walks the
// directory tree and, for each file found, immediately delegates the
// find_links operation on a Writable file object (sequence serializer).
// Link-to-file-set insertions go into a reducible map whose per-link file
// sets merge on reduction (the link_t reduce method). The directory
// recursion thus overlaps with the delegated link extraction — the source
// of the SS win in Figure 4.
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	linkMap := coll.NewMap[string, fileSet](rt, mergeFileSets)
	rt.BeginIsolation()
	// find_files: the recursion itself is program-context work.
	in.FS.Walk(func(f *vfsFile) {
		// Each file is a fresh writable object; delegating find_links on it
		// exposes per-file independence (Figure 3, point F).
		w := prometheus.NewWritable(rt, f)
		w.Delegate(func(c *prometheus.Ctx, file **vfsFile) {
			ff := *file
			extractLinks(ff.Content, func(url string) {
				linkMap.Update(c, url, func(s fileSet) fileSet {
					if s == nil {
						s = fileSet{} // first sighting of url in this view
					}
					s[ff.Path] = struct{}{}
					return s
				})
			})
		})
	})
	rt.EndIsolation()
	// First aggregation-epoch use reduces the link map (Figure 3, point L).
	merged := linkMap.Result()
	index := make(map[string][]string, len(merged))
	for url, set := range merged {
		index[url] = setToSorted(set)
	}
	return &Output{Index: index}, rt.Stats()
}
