package reverseindex

import (
	"reflect"
	"testing"

	"repro/internal/vfs"
	"repro/internal/workload"
)

func smallInput() *Input {
	cfg := workload.HTMLSize(workload.Small)
	cfg.Files = 120
	cfg.Dirs = 10
	return &Input{FS: vfs.FromHTMLTree(workload.GenerateHTMLTree(cfg))}
}

func TestExtractLinks(t *testing.T) {
	html := []byte(`<html><body>
		hello <a href="http://a.example/x">one</a> filler
		<a href="http://b.example/y">two</a>
		<a href="http://a.example/x">again</a>
		broken <a href="no-close </body></html>`)
	var got []string
	extractLinks(html, func(u string) { got = append(got, u) })
	want := []string{"http://a.example/x", "http://b.example/y", "http://a.example/x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("links = %v, want %v", got, want)
	}
}

func TestExtractLinksEmpty(t *testing.T) {
	extractLinks(nil, func(string) { t.Fatal("emit on empty content") })
	extractLinks([]byte("no anchors here"), func(string) { t.Fatal("emit without anchors") })
}

func TestSeqBuildsIndex(t *testing.T) {
	in := smallInput()
	out := RunSeq(in)
	if len(out.Index) == 0 {
		t.Fatal("empty index")
	}
	// Every listed file must actually contain the link.
	contents := map[string][]byte{}
	in.FS.Walk(func(f *vfsFile) { contents[f.Path] = f.Content })
	for url, files := range out.Index {
		if len(files) == 0 {
			t.Fatalf("link %s has no files", url)
		}
		for _, f := range files {
			found := false
			extractLinks(contents[f], func(u string) {
				if u == url {
					found = true
				}
			})
			if !found {
				t.Fatalf("index claims %s contains %s but it does not", f, url)
			}
		}
	}
}

func TestCPMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 2, 8} {
		got := RunCP(in, workers)
		if !reflect.DeepEqual(got.Index, want.Index) {
			t.Fatalf("workers=%d: indexes differ (%d vs %d links)", workers, len(got.Index), len(want.Index))
		}
	}
}

func TestSSMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4, 8} {
		got, st := RunSS(in, delegates)
		if !reflect.DeepEqual(got.Index, want.Index) {
			t.Fatalf("delegates=%d: indexes differ (%d vs %d links)", delegates, len(got.Index), len(want.Index))
		}
		if st.Delegations == 0 {
			t.Errorf("delegates=%d: walk did not delegate", delegates)
		}
	}
}

func TestMergeFileSets(t *testing.T) {
	a := fileSet{"x": {}, "y": {}}
	b := fileSet{"y": {}, "z": {}}
	got := mergeFileSets(a, b)
	if len(got) != 3 {
		t.Fatalf("merged = %v", got)
	}
	if !reflect.DeepEqual(setToSorted(got), []string{"x", "y", "z"}) {
		t.Fatalf("sorted = %v", setToSorted(got))
	}
}
