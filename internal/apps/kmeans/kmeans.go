// Package kmeans reproduces the NU-MineBench kmeans benchmark (Table 2):
// Lloyd's algorithm over an n-dimensional point cloud. The paper reports
// that its Prometheus port used "an inferior algorithm" — iterating over
// points and cluster updates separately — and proposes fixing it with
// partial sums and a reduction (§5.1). Both are implemented here: RunSS
// uses the proposed reduction formulation, RunSSNaive the two-pass version
// the paper measured, which is the basis of the kmeans ablation benchmark.
package kmeans

import (
	"math"

	"repro/internal/workload"
)

// Input is the point cloud plus clustering parameters.
type Input struct {
	Points   []workload.Point
	Clusters int
	Iters    int
	Dims     int
}

// Output is the final centroids and each point's cluster assignment.
type Output struct {
	Centroids []workload.Point
	Assign    []int
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	cfg := workload.KMeansSize(size)
	return &Input{
		Points:   workload.GeneratePoints(cfg),
		Clusters: cfg.Clusters,
		Iters:    cfg.Iters,
		Dims:     cfg.Dims,
	}
}

// initialCentroids picks the first k points, the deterministic seeding
// NU-MineBench uses.
func initialCentroids(in *Input) []workload.Point {
	cents := make([]workload.Point, in.Clusters)
	for i := range cents {
		cents[i] = append(workload.Point(nil), in.Points[i%len(in.Points)]...)
	}
	return cents
}

// dist2 is squared Euclidean distance.
func dist2(a, b workload.Point) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// nearest returns the index of the closest centroid, ties broken by lowest
// index so every implementation assigns identically.
func nearest(p workload.Point, cents []workload.Point) int {
	best, bestD := 0, math.MaxFloat64
	for c, cent := range cents {
		if d := dist2(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// partial accumulates per-cluster coordinate sums and member counts; the
// unit both the CP merge and the SS reduction combine.
type partial struct {
	sums   [][]float64 // [cluster][dim]
	counts []int64
}

func newPartial(clusters, dims int) partial {
	p := partial{sums: make([][]float64, clusters), counts: make([]int64, clusters)}
	for c := range p.sums {
		p.sums[c] = make([]float64, dims)
	}
	return p
}

func (p *partial) add(cluster int, pt workload.Point) {
	p.counts[cluster]++
	row := p.sums[cluster]
	for d := range pt {
		row[d] += pt[d]
	}
}

func (p *partial) merge(src *partial) {
	for c := range p.sums {
		p.counts[c] += src.counts[c]
		dst, s := p.sums[c], src.sums[c]
		for d := range dst {
			dst[d] += s[d]
		}
	}
}

// centroidsFrom turns accumulated sums into new centroids; empty clusters
// keep their previous centroid (NU-MineBench behaviour).
func centroidsFrom(p *partial, prev []workload.Point) []workload.Point {
	cents := make([]workload.Point, len(prev))
	for c := range cents {
		if p.counts[c] == 0 {
			cents[c] = append(workload.Point(nil), prev[c]...)
			continue
		}
		row := make(workload.Point, len(prev[c]))
		inv := 1 / float64(p.counts[c])
		for d := range row {
			row[d] = p.sums[c][d] * inv
		}
		cents[c] = row
	}
	return cents
}
