package kmeans

import "sync"

// RunCP is the conventional-parallel implementation in the OpenMP style of
// the NU-MineBench original: each iteration runs a parallel-for over static
// point ranges, with per-thread partial sums merged by the main thread, then
// a sequential centroid update.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	n := len(in.Points)
	cents := initialCentroids(in)
	assign := make([]int, n)
	parts := make([]partial, workers)
	for it := 0; it < in.Iters; it++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := n*w/workers, n*(w+1)/workers
			if lo == hi {
				continue
			}
			parts[w] = newPartial(in.Clusters, in.Dims)
			wg.Add(1)
			go func(p *partial) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					c := nearest(in.Points[i], cents)
					assign[i] = c
					p.add(c, in.Points[i])
				}
			}(&parts[w])
		}
		wg.Wait()
		acc := newPartial(in.Clusters, in.Dims)
		for w := range parts {
			if parts[w].counts != nil {
				acc.merge(&parts[w])
			}
		}
		cents = centroidsFrom(&acc, cents)
	}
	return &Output{Centroids: cents, Assign: assign}
}
