package kmeans

import (
	prometheus "repro"
)

// RunSS is the serialization-sets implementation using the reduction
// formulation the paper proposes as the fix (§5.1: "computing partial sums
// of the cluster means during clustering, and using a reduction to
// summarize the results"): each iteration is an isolation epoch in which
// point chunks are delegated and accumulate into a reducible partial, then
// the program context updates centroids from the reduced sums.
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs the reduction formulation with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	n := len(in.Points)
	cents := initialCentroids(in)
	assign := make([]int, n)
	type rng struct{ lo, hi int }
	nChunks := 8 * (rt.NumDelegates() + 1)
	if nChunks > n && n > 0 {
		nChunks = n
	}
	ws := make([]*prometheus.Writable[rng], 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := n*c/nChunks, n*(c+1)/nChunks
		if lo != hi {
			ws = append(ws, prometheus.NewWritable(rt, rng{lo, hi}))
		}
	}
	red := prometheus.NewReducible(rt,
		func() partial { return newPartial(in.Clusters, in.Dims) },
		func(dst, src *partial) { dst.merge(src) })
	for it := 0; it < in.Iters; it++ {
		if it > 0 {
			red.Clear()
		}
		snapshot := cents // read-only during the epoch
		rt.BeginIsolation()
		prometheus.DoAll(ws, func(c *prometheus.Ctx, r *rng) {
			view := red.View(c)
			for i := r.lo; i < r.hi; i++ {
				cl := nearest(in.Points[i], snapshot)
				assign[i] = cl
				view.add(cl, in.Points[i])
			}
		})
		rt.EndIsolation()
		cents = centroidsFrom(red.Result(), cents)
	}
	return &Output{Centroids: cents, Assign: assign}, rt.Stats()
}

// RunSSNaive is the formulation the paper actually measured and calls
// inferior: assignment runs as a delegated pass, but the accumulation of
// cluster sums happens in a second, sequential pass over all points in the
// program context ("iterates over the data points and cluster points
// separately"). The extra O(N·D) sequential pass per iteration is the
// ablation's measured cost.
func RunSSNaive(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	n := len(in.Points)
	cents := initialCentroids(in)
	assign := make([]int, n)
	type rng struct{ lo, hi int }
	nChunks := 8 * (rt.NumDelegates() + 1)
	if nChunks > n && n > 0 {
		nChunks = n
	}
	ws := make([]*prometheus.Writable[rng], 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := n*c/nChunks, n*(c+1)/nChunks
		if lo != hi {
			ws = append(ws, prometheus.NewWritable(rt, rng{lo, hi}))
		}
	}
	for it := 0; it < in.Iters; it++ {
		snapshot := cents
		// Pass 1 (parallel): assignment only.
		rt.BeginIsolation()
		prometheus.DoAll(ws, func(c *prometheus.Ctx, r *rng) {
			for i := r.lo; i < r.hi; i++ {
				assign[i] = nearest(in.Points[i], snapshot)
			}
		})
		rt.EndIsolation()
		// Pass 2 (sequential): accumulate cluster sums in program context.
		acc := newPartial(in.Clusters, in.Dims)
		for i, p := range in.Points {
			acc.add(assign[i], p)
		}
		cents = centroidsFrom(&acc, cents)
	}
	return &Output{Centroids: cents, Assign: assign}, rt.Stats()
}
