package kmeans

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func smallInput() *Input {
	cfg := workload.KMeansConfig{Seed: 4, Points: 3000, Clusters: 12, Dims: 6, Iters: 5}
	return &Input{Points: workload.GeneratePoints(cfg), Clusters: 12, Iters: 5, Dims: 6}
}

// centroidsClose compares centroid sets with a tolerance: parallel variants
// sum coordinates in different orders, so bit-equality is not required
// (floating-point addition is not associative), but the results must agree
// to high precision.
func centroidsClose(t *testing.T, got, want []workload.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centroids, want %d", label, len(got), len(want))
	}
	for c := range want {
		for d := range want[c] {
			if math.Abs(got[c][d]-want[c][d]) > 1e-6 {
				t.Fatalf("%s: centroid %d dim %d = %f, want %f", label, c, d, got[c][d], want[c][d])
			}
		}
	}
}

func assignEqual(t *testing.T, got, want []int, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d assigned to %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestNearestTieBreak(t *testing.T) {
	p := workload.Point{0, 0}
	cents := []workload.Point{{1, 0}, {-1, 0}, {0, 1}}
	if got := nearest(p, cents); got != 0 {
		t.Fatalf("tie should break to lowest index, got %d", got)
	}
}

func TestSeqConverges(t *testing.T) {
	// With enough iterations Lloyd's algorithm reaches a fixed point, where
	// every point is assigned to its nearest final centroid. (Mid-run,
	// assignments lag the final centroid update by one iteration.)
	in := smallInput()
	in.Iters = 100
	out := RunSeq(in)
	for i, p := range in.Points {
		if out.Assign[i] != nearest(p, out.Centroids) {
			t.Fatalf("point %d not assigned to nearest final centroid", i)
		}
	}
}

func TestCPMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 3, 8} {
		got := RunCP(in, workers)
		assignEqual(t, got.Assign, want.Assign, "cp")
		centroidsClose(t, got.Centroids, want.Centroids, "cp")
	}
}

func TestSSMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4} {
		got, _ := RunSS(in, delegates)
		assignEqual(t, got.Assign, want.Assign, "ss")
		centroidsClose(t, got.Centroids, want.Centroids, "ss")
	}
}

func TestSSNaiveMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	got, _ := RunSSNaive(in, 4)
	assignEqual(t, got.Assign, want.Assign, "ss-naive")
	centroidsClose(t, got.Centroids, want.Centroids, "ss-naive")
}

func TestEmptyClustersKeepCentroid(t *testing.T) {
	// Two far points, 3 clusters seeded from the first points: cluster 2
	// duplicates cluster 0's seed and ends up empty, keeping its centroid.
	in := &Input{
		Points:   []workload.Point{{0, 0}, {10, 10}},
		Clusters: 3,
		Iters:    3,
		Dims:     2,
	}
	out := RunSeq(in)
	if len(out.Centroids) != 3 {
		t.Fatal("centroid count changed")
	}
	for _, c := range out.Centroids {
		for _, v := range c {
			if math.IsNaN(v) {
				t.Fatal("NaN centroid from empty cluster")
			}
		}
	}
}

func TestZeroIters(t *testing.T) {
	in := smallInput()
	in.Iters = 0
	out := RunSeq(in)
	centroidsClose(t, out.Centroids, initialCentroids(in), "zero-iters")
}
