package kmeans

// RunSeq is the sequential reference: assignment and accumulation fused in
// one pass per iteration, like the original benchmark.
func RunSeq(in *Input) *Output {
	cents := initialCentroids(in)
	assign := make([]int, len(in.Points))
	for it := 0; it < in.Iters; it++ {
		acc := newPartial(in.Clusters, in.Dims)
		for i, p := range in.Points {
			c := nearest(p, cents)
			assign[i] = c
			acc.add(c, p)
		}
		cents = centroidsFrom(&acc, cents)
	}
	return &Output{Centroids: cents, Assign: assign}
}
