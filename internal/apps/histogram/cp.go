package histogram

import "sync"

// RunCP is the conventional-parallel implementation, mirroring the Phoenix
// pthreads version: static ranges per worker, per-worker private partial
// histograms, then a sequential merge by the main thread.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	n := len(in.Pixels) / 3
	type partial struct{ r, g, b Bins }
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(p *partial) {
			defer wg.Done()
			accumulate(in.Pixels, &p.r, &p.g, &p.b, lo, hi)
		}(&parts[w])
	}
	wg.Wait()
	out := &Output{}
	for i := range parts {
		addBins(&out.R, &parts[i].r)
		addBins(&out.G, &parts[i].g)
		addBins(&out.B, &parts[i].b)
	}
	return out
}
