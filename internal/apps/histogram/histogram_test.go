package histogram

import (
	"testing"

	"repro/internal/workload"
)

func smallInput() *Input {
	return &Input{Pixels: workload.GenerateBitmap(3, 50000)}
}

func totals(o *Output) (int64, int64, int64) {
	var r, g, b int64
	for i := 0; i < 256; i++ {
		r += o.R[i]
		g += o.G[i]
		b += o.B[i]
	}
	return r, g, b
}

func TestSeqCountsEveryPixel(t *testing.T) {
	in := smallInput()
	out := RunSeq(in)
	r, g, b := totals(out)
	want := int64(len(in.Pixels) / 3)
	if r != want || g != want || b != want {
		t.Fatalf("totals = %d/%d/%d, want %d", r, g, b, want)
	}
}

func TestKnownTinyImage(t *testing.T) {
	in := &Input{Pixels: []byte{10, 20, 30, 10, 20, 31, 255, 0, 0}}
	out := RunSeq(in)
	if out.R[10] != 2 || out.R[255] != 1 || out.G[20] != 2 || out.G[0] != 1 || out.B[30] != 1 || out.B[31] != 1 {
		t.Fatalf("histogram wrong: %+v", out.R[:16])
	}
}

func TestCPMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 2, 7, 16} {
		got := RunCP(in, workers)
		if *got != *want {
			t.Fatalf("workers=%d: histograms differ", workers)
		}
	}
}

func TestSSMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 3, 8} {
		got, _ := RunSS(in, delegates)
		if *got != *want {
			t.Fatalf("delegates=%d: histograms differ", delegates)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	in := &Input{}
	if got := RunSeq(in); got.R[0] != 0 {
		t.Fatal("empty input should produce zero histogram")
	}
	got, _ := RunSS(in, 2)
	if r, g, b := totals(got); r+g+b != 0 {
		t.Fatal("empty SS run should produce zero histogram")
	}
	if got := RunCP(in, 4); got.R[0] != 0 {
		t.Fatal("empty CP run should produce zero histogram")
	}
}

func TestLoadSizes(t *testing.T) {
	if n := len(Load(workload.Small).Pixels); n != 3*workload.BitmapSize(workload.Small) {
		t.Fatalf("Load(S) = %d bytes", n)
	}
}
