package histogram

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary pixel data, both parallel implementations equal
// the sequential histogram exactly (integer counting is order-free).
func TestQuickParallelEqualsSeq(t *testing.T) {
	f := func(pixels []byte) bool {
		in := &Input{Pixels: pixels[:len(pixels)/3*3]}
		want := RunSeq(in)
		if got := RunCP(in, 5); *got != *want {
			return false
		}
		got, _ := RunSS(in, 3)
		return *got == *want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
