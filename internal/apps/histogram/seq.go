package histogram

// RunSeq is the sequential reference implementation.
func RunSeq(in *Input) *Output {
	out := &Output{}
	accumulate(in.Pixels, &out.R, &out.G, &out.B, 0, len(in.Pixels)/3)
	return out
}
