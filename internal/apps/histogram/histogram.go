// Package histogram reproduces the Phoenix histogram benchmark (Table 2):
// computing per-channel 256-bin histograms of an RGB bitmap. The kernel is
// memory-bandwidth-bound, which is what makes its scaling curve in the
// paper's Figure 6 peak and then degrade as contexts saturate the memory
// system.
package histogram

import "repro/internal/workload"

// Bins is the per-channel histogram.
type Bins [256]int64

// Input is the raw RGB pixel data (3 bytes per pixel).
type Input struct {
	Pixels []byte
}

// Output holds the three channel histograms.
type Output struct {
	R, G, B Bins
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	return &Input{Pixels: workload.GenerateBitmap(202, workload.BitmapSize(size))}
}

// accumulate tallies pixels [lo, hi) (pixel indices, not byte offsets) into
// the three histograms.
func accumulate(pixels []byte, r, g, b *Bins, lo, hi int) {
	for i := lo; i < hi; i++ {
		off := 3 * i
		r[pixels[off]]++
		g[pixels[off+1]]++
		b[pixels[off+2]]++
	}
}

// addBins folds src into dst.
func addBins(dst, src *Bins) {
	for i := range dst {
		dst[i] += src[i]
	}
}
