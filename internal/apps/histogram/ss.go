package histogram

import (
	prometheus "repro"
)

// RunSS is the serialization-sets implementation: pixel chunks are wrapped
// in Writables and delegated with DoAll; the histograms are a reducible
// (paper §2.2 technique 2), so each context accumulates privately and the
// final bins appear on first use after EndIsolation. The reduction is tiny
// relative to the scan, matching the paper's Figure 5a (histogram's
// reduction time is negligible).
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	type hist struct{ r, g, b Bins }
	red := prometheus.NewReducible(rt,
		func() hist { return hist{} },
		func(dst, src *hist) {
			addBins(&dst.r, &src.r)
			addBins(&dst.g, &src.g)
			addBins(&dst.b, &src.b)
		})
	n := len(in.Pixels) / 3
	nChunks := 8 * (rt.NumDelegates() + 1)
	if nChunks > n && n > 0 {
		nChunks = n
	}
	type rng struct{ lo, hi int }
	ws := make([]*prometheus.Writable[rng], 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := n*c/nChunks, n*(c+1)/nChunks
		if lo != hi {
			ws = append(ws, prometheus.NewWritable(rt, rng{lo, hi}))
		}
	}
	pixels := in.Pixels
	rt.BeginIsolation()
	prometheus.DoAll(ws, func(c *prometheus.Ctx, r *rng) {
		view := red.View(c)
		accumulate(pixels, &view.r, &view.g, &view.b, r.lo, r.hi)
	})
	rt.EndIsolation()
	final := red.Result()
	return &Output{R: final.r, G: final.g, B: final.b}, rt.Stats()
}
