package wordcount

// RunSeq is the sequential reference implementation. Like the original
// Phoenix word_count (the paper normalizes speedups "to the execution time
// of the original sequential program"), it uses the sorted-list dictionary;
// the hash dictionary is the Prometheus-side structure (the paper's
// reducible map).
func RunSeq(in *Input) *Output {
	d := &listDict{}
	countIntoList(in.Text, d)
	counts := d.freeze()
	return &Output{Counts: counts, Top: top(counts, TopN)}
}
