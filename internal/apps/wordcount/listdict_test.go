package wordcount

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCmpWordBytes(t *testing.T) {
	for _, tc := range []struct {
		a    string
		b    string
		want int
	}{
		{"abc", "abc", 0}, {"abc", "abd", -1}, {"abd", "abc", 1},
		{"ab", "abc", -1}, {"abc", "ab", 1}, {"", "", 0}, {"", "x", -1},
	} {
		if got := cmpWordBytes(tc.a, []byte(tc.b)); got != tc.want {
			t.Errorf("cmp(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestListDictAddKeepsSorted(t *testing.T) {
	d := &listDict{}
	for _, w := range []string{"pear", "apple", "fig", "apple", "banana", "fig", "fig"} {
		d.add([]byte(w))
	}
	wantWords := []string{"apple", "banana", "fig", "pear"}
	wantCounts := []int64{2, 1, 3, 1}
	if !reflect.DeepEqual(d.words, wantWords) || !reflect.DeepEqual(d.counts, wantCounts) {
		t.Fatalf("dict = %v %v", d.words, d.counts)
	}
}

func TestMergeList(t *testing.T) {
	a, b := &listDict{}, &listDict{}
	for _, w := range []string{"a", "c", "e", "a"} {
		a.add([]byte(w))
	}
	for _, w := range []string{"b", "c", "f"} {
		b.add([]byte(w))
	}
	m := mergeList(a, b)
	want := map[string]int64{"a": 2, "b": 1, "c": 2, "e": 1, "f": 1}
	if got := m.freeze(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(m.words, []string{"a", "b", "c", "e", "f"}) {
		t.Fatalf("merge lost sort order: %v", m.words)
	}
}

func TestMergeListEmptySides(t *testing.T) {
	a := &listDict{}
	a.add([]byte("x"))
	if got := mergeList(a, &listDict{}).freeze(); got["x"] != 1 {
		t.Fatal("merge with empty right failed")
	}
	if got := mergeList(&listDict{}, a).freeze(); got["x"] != 1 {
		t.Fatal("merge with empty left failed")
	}
}

// TestQuickListDictEqualsHashDict: the baseline's sorted-list dictionary
// and the SS hash dictionary must agree on any input.
func TestQuickListDictEqualsHashDict(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var text []byte
		for i := 0; i < int(n); i++ {
			for j := 0; j < 1+r.Intn(5); j++ {
				text = append(text, byte('a'+r.Intn(4)))
			}
			text = append(text, ' ')
		}
		ld := &listDict{}
		countIntoList(text, ld)
		hd := newDict()
		countInto(text, hd)
		return reflect.DeepEqual(ld.freeze(), hd.freeze())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
