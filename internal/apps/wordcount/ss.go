package wordcount

import (
	prometheus "repro"
)

// RunSS is the serialization-sets implementation: word-aligned text chunks
// are wrapped in Writables (sequence serializer) and delegated; counts
// accumulate in a reducible dictionary (the paper's reducible map over the
// STL map). The final reduction is the ~30% reduction share the paper
// reports for word_count in Figure 5a.
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	red := prometheus.NewReducible(rt,
		func() dict { return newDict() },
		func(dst, src *dict) { dst.merge(*src) })
	// Chunk at the same granularity as CP workers to keep the comparison
	// honest; a few chunks per context smooths load imbalance.
	chunks := splitWords(in.Text, 4*(rt.NumDelegates()+1))
	ws := make([]*prometheus.Writable[[]byte], len(chunks))
	for i, c := range chunks {
		ws[i] = prometheus.NewWritable(rt, c)
	}
	rt.BeginIsolation()
	prometheus.DoAll(ws, func(c *prometheus.Ctx, data *[]byte) {
		countInto(*data, *red.View(c))
	})
	rt.EndIsolation()
	counts := red.Result().freeze()
	return &Output{Counts: counts, Top: top(counts, TopN)}, rt.Stats()
}
