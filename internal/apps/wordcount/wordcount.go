// Package wordcount reproduces the Phoenix word_count benchmark (Table 2):
// counting word frequencies in a text corpus and reporting the top words.
// In the paper, the Prometheus version beats the pthreads baseline at low
// context counts because its reducible map performs cheaper insertions than
// the baseline's sorted lists, while the baseline wins back ground at high
// counts by parallelizing its final merge (§5.1).
package wordcount

import (
	"sort"

	"repro/internal/workload"
)

// Input is the text corpus.
type Input struct {
	Text []byte
}

// WordCount is one dictionary entry.
type WordCount struct {
	Word  string
	Count int64
}

// TopN is how many top words the benchmark reports (Phoenix defaults to 10).
const TopN = 10

// Output is the full dictionary plus the top-N list.
type Output struct {
	Counts map[string]int64
	Top    []WordCount
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	return &Input{Text: workload.GenerateText(workload.TextSize(size))}
}

// dict is the counting dictionary. Counts are held behind pointers so that
// incrementing an existing word is a pure (allocation-free) map lookup —
// `m[string(b)]++` would convert the byte slice to a fresh string on every
// token, and the resulting allocation rate becomes the scaling limiter for
// every parallel variant.
type dict map[string]*int64

// newDict presizes the dictionary: every chunk of a Zipfian corpus sees
// most of the vocabulary, so rehash growth is a fixed per-worker cost worth
// avoiding.
func newDict() dict { return make(dict, 1<<13) }

func (d dict) add(word []byte) {
	if p, ok := d[string(word)]; ok { // alloc-free lookup
		*p++
		return
	}
	n := int64(1)
	d[string(word)] = &n // allocates once per distinct word
}

// merge folds src into d.
func (d dict) merge(src dict) {
	for w, p := range src {
		if q, ok := d[w]; ok {
			*q += *p
		} else {
			d[w] = p
		}
	}
}

// freeze converts the dictionary to the Output representation.
func (d dict) freeze() map[string]int64 {
	out := make(map[string]int64, len(d))
	for w, p := range d {
		out[w] = *p
	}
	return out
}

// countInto tokenizes data (splitting on spaces, tabs and newlines, the
// generator's separators) and tallies words into d.
func countInto(data []byte, d dict) {
	start := -1
	for i := 0; i <= len(data); i++ {
		sep := i == len(data) || data[i] == ' ' || data[i] == '\n' || data[i] == '\t'
		if sep {
			if start >= 0 {
				d.add(data[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
}

// splitWords cuts data into n nearly equal chunks without splitting words
// (boundaries land just past whitespace). CP workers and SS chunks use the
// same splitter so the comparison is granularity-fair.
func splitWords(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	var chunks [][]byte
	start := 0
	for i := 1; i <= n && start < len(data); i++ {
		end := len(data) * i / n
		if end < start {
			end = start
		}
		for end < len(data) && data[end] != ' ' && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++
		}
		if i == n {
			end = len(data)
		}
		if end > start {
			chunks = append(chunks, data[start:end])
		}
		start = end
	}
	return chunks
}

// top extracts the N most frequent words with deterministic tie-breaking
// (by word).
func top(counts map[string]int64, n int) []WordCount {
	all := make([]WordCount, 0, len(counts))
	for w, c := range counts {
		all = append(all, WordCount{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Word < all[j].Word
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
