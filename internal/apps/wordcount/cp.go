package wordcount

import (
	"sort"
	"sync"
)

// listDict is the Phoenix-baseline dictionary: a sorted array the original
// maintains "in a set of lists". Lookups are binary searches and new words
// cost an ordered insert — slower insertion than the reducible hash map
// the SS version uses (which is why the paper's word_count SS beats the
// baseline at low context counts) — but sorted dictionaries merge linearly
// and the merge tree parallelizes across all processors (which is how the
// baseline catches up at high context counts, §5.1).
type listDict struct {
	words  []string
	counts []int64
}

// cmpWordBytes compares a stored word with a token without allocating.
func cmpWordBytes(a string, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func (d *listDict) add(word []byte) {
	i := sort.Search(len(d.words), func(i int) bool { return cmpWordBytes(d.words[i], word) >= 0 })
	if i < len(d.words) && cmpWordBytes(d.words[i], word) == 0 {
		d.counts[i]++
		return
	}
	d.words = append(d.words, "")
	copy(d.words[i+1:], d.words[i:])
	d.words[i] = string(word)
	d.counts = append(d.counts, 0)
	copy(d.counts[i+1:], d.counts[i:])
	d.counts[i] = 1
}

// countIntoList tokenizes data into a listDict (same tokenizer as countInto).
func countIntoList(data []byte, d *listDict) {
	start := -1
	for i := 0; i <= len(data); i++ {
		sep := i == len(data) || data[i] == ' ' || data[i] == '\n' || data[i] == '\t'
		if sep {
			if start >= 0 {
				d.add(data[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
}

// mergeList merges two sorted dictionaries in linear time.
func mergeList(a, b *listDict) *listDict {
	out := &listDict{
		words:  make([]string, 0, len(a.words)+len(b.words)),
		counts: make([]int64, 0, len(a.counts)+len(b.counts)),
	}
	i, j := 0, 0
	for i < len(a.words) && j < len(b.words) {
		switch {
		case a.words[i] < b.words[j]:
			out.words = append(out.words, a.words[i])
			out.counts = append(out.counts, a.counts[i])
			i++
		case a.words[i] > b.words[j]:
			out.words = append(out.words, b.words[j])
			out.counts = append(out.counts, b.counts[j])
			j++
		default:
			out.words = append(out.words, a.words[i])
			out.counts = append(out.counts, a.counts[i]+b.counts[j])
			i++
			j++
		}
	}
	out.words = append(out.words, a.words[i:]...)
	out.counts = append(out.counts, a.counts[i:]...)
	out.words = append(out.words, b.words[j:]...)
	out.counts = append(out.counts, b.counts[j:]...)
	return out
}

func (d *listDict) freeze() map[string]int64 {
	out := make(map[string]int64, len(d.words))
	for i, w := range d.words {
		out[w] = d.counts[i]
	}
	return out
}

// RunCP is the conventional-parallel implementation in the style of the
// Phoenix pthreads baseline: static word-aligned chunks, one sorted-list
// dictionary per worker, then a parallel pairwise merge tree that "uses
// all processors in the system to merge different pieces of the lists at
// the end of the program".
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	chunks := splitWords(in.Text, workers)
	parts := make([]*listDict, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		i, c := i, c
		parts[i] = &listDict{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			countIntoList(c, parts[i])
		}()
	}
	wg.Wait()
	// Parallel pairwise merge tree.
	for stride := 1; stride < len(parts); stride *= 2 {
		var mg sync.WaitGroup
		for i := 0; i+stride < len(parts); i += 2 * stride {
			i := i
			mg.Add(1)
			go func() {
				defer mg.Done()
				parts[i] = mergeList(parts[i], parts[i+stride])
			}()
		}
		mg.Wait()
	}
	var counts map[string]int64
	if len(parts) > 0 {
		counts = parts[0].freeze()
	} else {
		counts = map[string]int64{}
	}
	return &Output{Counts: counts, Top: top(counts, TopN)}
}
