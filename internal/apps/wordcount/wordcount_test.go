package wordcount

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

func smallInput() *Input {
	return &Input{Text: workload.GenerateText(workload.TextConfig{Seed: 8, Bytes: 200000, VocabSize: 2000})}
}

func TestCountIntoTokenization(t *testing.T) {
	d := dict{}
	countInto([]byte("the cat and the dog\nand the bird  "), d)
	want := map[string]int64{"the": 3, "cat": 1, "and": 2, "dog": 1, "bird": 1}
	if got := d.freeze(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
}

func TestCountIntoEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0}, {"   ", 0}, {"x", 1}, {"x y", 2}, {"\n\n", 0},
	} {
		d := dict{}
		countInto([]byte(tc.in), d)
		total := 0
		for _, c := range d.freeze() {
			total += int(c)
		}
		if total != tc.want {
			t.Errorf("countInto(%q) total = %d, want %d", tc.in, total, tc.want)
		}
	}
}

func TestDictMerge(t *testing.T) {
	a, b := dict{}, dict{}
	countInto([]byte("x y x"), a)
	countInto([]byte("y z"), b)
	a.merge(b)
	want := map[string]int64{"x": 2, "y": 2, "z": 1}
	if got := a.freeze(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
}

func TestTopDeterministicTieBreak(t *testing.T) {
	counts := map[string]int64{"b": 5, "a": 5, "c": 9, "d": 1}
	got := top(counts, 3)
	want := []WordCount{{"c", 9}, {"a", 5}, {"b", 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("top = %v, want %v", got, want)
	}
}

func TestCPMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 2, 8, 16} {
		got := RunCP(in, workers)
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Fatalf("workers=%d: dictionaries differ (got %d words, want %d)",
				workers, len(got.Counts), len(want.Counts))
		}
		if !reflect.DeepEqual(got.Top, want.Top) {
			t.Fatalf("workers=%d: top lists differ", workers)
		}
	}
}

func TestSSMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4, 8} {
		got, st := RunSS(in, delegates)
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Fatalf("delegates=%d: dictionaries differ", delegates)
		}
		if !reflect.DeepEqual(got.Top, want.Top) {
			t.Fatalf("delegates=%d: top lists differ", delegates)
		}
		if st.Reduction <= 0 {
			t.Errorf("delegates=%d: no reduction time recorded", delegates)
		}
	}
}

func TestSplitWordsReassembles(t *testing.T) {
	data := []byte("alpha beta gamma delta epsilon")
	for n := 1; n < 6; n++ {
		var joined []byte
		for _, c := range splitWords(data, n) {
			joined = append(joined, c...)
		}
		if string(joined) != string(data) {
			t.Fatalf("n=%d: chunks do not reassemble", n)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	in := &Input{}
	if got := RunSeq(in); len(got.Counts) != 0 || len(got.Top) != 0 {
		t.Fatal("empty seq output not empty")
	}
	if got := RunCP(in, 4); len(got.Counts) != 0 {
		t.Fatal("empty CP output not empty")
	}
	if got, _ := RunSS(in, 2); len(got.Counts) != 0 {
		t.Fatal("empty SS output not empty")
	}
}
