package freqmine

import (
	"sync"
	"sync/atomic"

	"repro/internal/fpm"
)

// RunCP is the conventional-parallel implementation in the OpenMP style of
// the PARSEC original: after the sequential FP-tree build, worker threads
// pull frequent items from a shared dynamic queue (an atomic cursor, the
// equivalent of omp dynamic scheduling — task sizes are highly skewed) and
// mine their conditional trees; per-worker result lists are concatenated
// and sorted.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	tree := fpm.Build(in.Txns, in.MinSup)
	items := tree.FrequentItems()
	results := make([][]fpm.ItemSet, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[w] = append(results[w], tree.MineItem(items[i])...)
			}
		}()
	}
	wg.Wait()
	var sets []fpm.ItemSet
	for _, r := range results {
		sets = append(sets, r...)
	}
	return &Output{Sets: sets}
}
