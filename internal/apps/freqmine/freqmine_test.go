package freqmine

import (
	"reflect"
	"testing"

	"repro/internal/fpm"
	"repro/internal/workload"
)

func smallInput() *Input {
	cfg := workload.TxnSize(workload.Small)
	cfg.Count = 4000
	txns := workload.GenerateTransactions(cfg)
	// A higher support than the benchmark default keeps mining depth (and
	// test time) modest while still producing thousands of itemsets.
	return &Input{Txns: txns, MinSup: int(0.01 * float64(len(txns)))}
}

func TestSeqMatchesBruteForceOnTiny(t *testing.T) {
	txns := []workload.Transaction{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3}, {2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	}
	in := &Input{Txns: txns, MinSup: 2}
	got := RunSeq(in).Canonical()
	want := fpm.BruteForce(txns, 2, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seq = %v\nwant %v", got, want)
	}
}

func TestCPMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in).Canonical()
	for _, workers := range []int{1, 3, 8} {
		got := RunCP(in, workers).Canonical()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %d sets, want %d", workers, len(got), len(want))
		}
	}
}

func TestSSMatchesSeq(t *testing.T) {
	in := smallInput()
	want := RunSeq(in).Canonical()
	for _, delegates := range []int{1, 4, 8} {
		out, st := RunSS(in, delegates)
		got := out.Canonical()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("delegates=%d: %d sets, want %d", delegates, len(got), len(want))
		}
		if st.Delegations == 0 {
			t.Errorf("delegates=%d: nothing delegated", delegates)
		}
	}
}

func TestMiningFindsMultiItemSets(t *testing.T) {
	out := RunSeq(smallInput())
	multi := 0
	for _, s := range out.Sets {
		if len(s.Items) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-item frequent sets; workload or miner broken")
	}
}

func TestHighSupportEmptyOutput(t *testing.T) {
	in := smallInput()
	in.MinSup = len(in.Txns) + 1
	for _, out := range []*Output{RunSeq(in), RunCP(in, 4)} {
		if len(out.Sets) != 0 {
			t.Fatal("impossible support yielded itemsets")
		}
	}
	if out, _ := RunSS(in, 2); len(out.Sets) != 0 {
		t.Fatal("impossible support yielded itemsets (SS)")
	}
}
