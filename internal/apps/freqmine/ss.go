package freqmine

import (
	prometheus "repro"
	"repro/coll"
	"repro/internal/fpm"
)

// RunSS is the serialization-sets implementation: the FP-tree is built in
// the program context and treated as read-only during the isolation epoch;
// each frequent item's conditional mining is delegated with the item id as
// the external serialization set, so distinct items mine concurrently;
// mined itemsets accumulate in a reducible slice.
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	treeRO := prometheus.NewReadOnly(rt, fpm.Build(in.Txns, in.MinSup))
	tree := treeRO.Get()
	items := (*tree).FrequentItems()
	results := coll.NewSlice[fpm.ItemSet](rt)
	// One writable task object per frequent item; the item id is the
	// serialization set (external serializer), so each item's mining is
	// its own set and the runtime spreads sets across delegates.
	rt.BeginIsolation()
	for _, item := range items {
		w := prometheus.NewWritableSer(rt, item, prometheus.NullSerializer[int]())
		w.DelegateTo(uint64(item), func(c *prometheus.Ctx, it *int) {
			results.Append(c, (*tree).MineItem(*it)...)
		})
	}
	rt.EndIsolation()
	return &Output{Sets: results.Result()}, rt.Stats()
}
