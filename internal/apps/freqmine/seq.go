package freqmine

import "repro/internal/fpm"

// RunSeq is the sequential reference: build the FP-tree, mine every item.
// Like the PARSEC original, runners emit itemsets in discovery order; use
// Output.Canonical to sort for comparison.
func RunSeq(in *Input) *Output {
	return &Output{Sets: fpm.Build(in.Txns, in.MinSup).MineAll()}
}
