// Package freqmine reproduces the PARSEC freqmine benchmark (Table 2):
// FP-growth frequent-itemset mining over a transaction database. The
// parallel structure in all variants matches the original OpenMP program:
// the FP-tree build is sequential, and the mining of each frequent item's
// conditional pattern base is an independent task. The paper notes its
// object-oriented port could not match the hand-optimized original
// (freqmine is the benchmark where SS loses the most ground in Figure 4)
// and that neither version scales past ~8 contexts (Figure 6) — an
// algorithmic property, since task sizes are highly skewed.
package freqmine

import (
	"repro/internal/fpm"
	"repro/internal/workload"
)

// Input is the transaction database plus the mining threshold.
type Input struct {
	Txns   []workload.Transaction
	MinSup int
}

// Output is the canonical (sorted) list of frequent itemsets.
type Output struct {
	Sets []fpm.ItemSet
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	cfg := workload.TxnSize(size)
	txns := workload.GenerateTransactions(cfg)
	return &Input{Txns: txns, MinSup: int(cfg.MinSupport * float64(len(txns)))}
}

// Canonical returns the itemsets sorted canonically (runners emit them in
// discovery order, which differs between implementations).
func (o *Output) Canonical() []fpm.ItemSet {
	sets := append([]fpm.ItemSet(nil), o.Sets...)
	fpm.SortItemSets(sets)
	return sets
}
