package dedup

import "crypto/sha1"

// RunSeq is the sequential reference: chunk, fingerprint, deduplicate and
// compress in stream order.
func RunSeq(in *Input) *Output {
	chunks := split(in.Data)
	table := map[fingerprint]int{} // fingerprint -> unique index
	out := &Output{Chunks: len(chunks)}
	for _, c := range chunks {
		fp := fingerprint(sha1.Sum(c.Data))
		if idx, ok := table[fp]; ok {
			out.Archive = appendDup(out.Archive, idx)
			continue
		}
		table[fp] = out.Unique
		out.Unique++
		out.Archive = appendUnique(out.Archive, compress(c.Data))
	}
	return out
}
