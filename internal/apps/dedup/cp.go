package dedup

import (
	"crypto/sha1"
	"sync"
)

// RunCP is the conventional-parallel implementation mirroring the PARSEC
// pthreads pipeline: a chunking producer feeds fingerprint workers; a
// single dedup thread serializes fingerprint-table decisions; compression
// workers compress unique chunks; and a reorder-buffer writer reassembles
// the archive in stream order. Stage queues are channels; the dedup table
// is confined to one goroutine (in PARSEC it is a hash table with per-
// bucket locks).
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}

	type fpJob struct {
		seq  int
		data []byte
		fp   fingerprint
	}
	type compJob struct {
		seq       int
		uniqueIdx int // -1 for duplicates
		dupOf     int // valid when uniqueIdx == -1
		data      []byte
	}
	type writeJob struct {
		seq        int
		uniqueIdx  int
		dupOf      int
		compressed []byte
	}

	chunks := split(in.Data)
	out := &Output{Chunks: len(chunks)}

	// Stage 1 -> 2: fingerprint workers.
	fpIn := make(chan fpJob, 4*workers)
	fpOut := make(chan fpJob, 4*workers)
	var fpWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		fpWG.Add(1)
		go func() {
			defer fpWG.Done()
			for j := range fpIn {
				j.fp = fingerprint(sha1.Sum(j.data))
				fpOut <- j
			}
		}()
	}
	go func() {
		for _, c := range chunks {
			fpIn <- fpJob{seq: c.Seq, data: c.Data}
		}
		close(fpIn)
		fpWG.Wait()
		close(fpOut)
	}()

	// Stage 3: dedup decisions. Fingerprints arrive out of order; decisions
	// must be made in stream order for a canonical archive, so this stage
	// holds its own reorder buffer (PARSEC's anchor stage is likewise a
	// serial decision point).
	compIn := make(chan compJob, 4*workers)
	go func() {
		table := map[fingerprint]int{}
		pending := map[int]fpJob{}
		next, uniqueCount := 0, 0
		for j := range fpOut {
			pending[j.seq] = j
			for {
				p, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if idx, dup := table[p.fp]; dup {
					compIn <- compJob{seq: p.seq, uniqueIdx: -1, dupOf: idx}
				} else {
					table[p.fp] = uniqueCount
					compIn <- compJob{seq: p.seq, uniqueIdx: uniqueCount, data: p.data}
					uniqueCount++
				}
				next++
			}
		}
		out.Unique = uniqueCount
		close(compIn)
	}()

	// Stage 4: compression workers.
	writeIn := make(chan writeJob, 4*workers)
	var compWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		compWG.Add(1)
		go func() {
			defer compWG.Done()
			for j := range compIn {
				wj := writeJob{seq: j.seq, uniqueIdx: j.uniqueIdx, dupOf: j.dupOf}
				if j.uniqueIdx >= 0 {
					wj.compressed = compress(j.data)
				}
				writeIn <- wj
			}
		}()
	}
	go func() {
		compWG.Wait()
		close(writeIn)
	}()

	// Stage 5: ordered archive writer (reorder buffer keyed by seq).
	pending := map[int]writeJob{}
	next := 0
	for j := range writeIn {
		pending[j.seq] = j
		for {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if p.uniqueIdx >= 0 {
				out.Archive = appendUnique(out.Archive, p.compressed)
			} else {
				out.Archive = appendDup(out.Archive, p.dupOf)
			}
			next++
		}
	}
	return out
}
