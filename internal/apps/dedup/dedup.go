// Package dedup reproduces the PARSEC dedup benchmark (Table 2):
// fingerprint-based compression of a data stream. The kernel pipeline is
// the PARSEC one: content-defined chunking, SHA-1 fingerprinting, duplicate
// elimination against a global fingerprint table, DEFLATE compression of
// unique chunks, and an ordered archive writer.
//
// Output equality across implementations is exact: the archive format is
// canonical (unique chunks appear compressed at first occurrence in stream
// order; duplicates are back-references by unique-chunk index).
package dedup

import (
	"bytes"
	"compress/flate"
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"repro/internal/chunker"
	"repro/internal/workload"
)

// Input is the raw stream.
type Input struct {
	Data []byte
}

// Output is the archive plus bookkeeping counters used by tests and the
// harness report.
type Output struct {
	Archive []byte
	Chunks  int
	Unique  int
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	return &Input{Data: workload.GenerateDedupStream(workload.DedupSize(size))}
}

// fingerprint is a SHA-1 digest.
type fingerprint [sha1.Size]byte

// compress DEFLATEs a chunk at the default level; the result is
// deterministic for a given input.
func compress(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err) // impossible: level is valid
	}
	if _, err := w.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// decompress inflates one compressed record (tests and Decode).
func decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Archive record tags.
const (
	tagUnique = byte('U') // followed by uint32 length + compressed bytes
	tagDup    = byte('D') // followed by uint32 index of referenced unique chunk
)

// appendUnique encodes a unique-chunk record.
func appendUnique(archive []byte, compressed []byte) []byte {
	archive = append(archive, tagUnique)
	archive = binary.BigEndian.AppendUint32(archive, uint32(len(compressed)))
	return append(archive, compressed...)
}

// appendDup encodes a duplicate reference record.
func appendDup(archive []byte, uniqueIndex int) []byte {
	archive = append(archive, tagDup)
	return binary.BigEndian.AppendUint32(archive, uint32(uniqueIndex))
}

// Decode reconstructs the original stream from an archive — the round-trip
// validator used in tests.
func Decode(archive []byte) ([]byte, error) {
	var out []byte
	var uniques [][]byte
	for len(archive) > 0 {
		tag := archive[0]
		archive = archive[1:]
		if len(archive) < 4 {
			return nil, fmt.Errorf("dedup: truncated record header")
		}
		v := binary.BigEndian.Uint32(archive)
		archive = archive[4:]
		switch tag {
		case tagUnique:
			if int(v) > len(archive) {
				return nil, fmt.Errorf("dedup: truncated unique record")
			}
			raw, err := decompress(archive[:v])
			if err != nil {
				return nil, fmt.Errorf("dedup: corrupt chunk: %w", err)
			}
			uniques = append(uniques, raw)
			out = append(out, raw...)
			archive = archive[v:]
		case tagDup:
			if int(v) >= len(uniques) {
				return nil, fmt.Errorf("dedup: dangling duplicate reference %d", v)
			}
			out = append(out, uniques[v]...)
		default:
			return nil, fmt.Errorf("dedup: unknown record tag %q", tag)
		}
	}
	return out, nil
}

// split performs the content-defined chunking stage.
func split(data []byte) []chunker.Chunk { return chunker.Split(data) }
