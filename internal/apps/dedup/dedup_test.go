package dedup

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

func smallInput() *Input {
	return &Input{Data: workload.GenerateDedupStream(workload.DedupConfig{
		Seed: 6, Bytes: 1 << 20, SegmentLen: 4096, Redundancy: 0.6,
	})}
}

func TestSeqRoundTrip(t *testing.T) {
	in := smallInput()
	out := RunSeq(in)
	decoded, err := Decode(out.Archive)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(decoded, in.Data) {
		t.Fatal("round trip lost data")
	}
	if out.Unique >= out.Chunks {
		t.Fatalf("no deduplication: %d unique of %d chunks", out.Unique, out.Chunks)
	}
	if len(out.Archive) >= len(in.Data) {
		t.Fatalf("no compression: archive %d >= input %d", len(out.Archive), len(in.Data))
	}
}

func TestCPMatchesSeqExactly(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 2, 8} {
		got := RunCP(in, workers)
		if got.Chunks != want.Chunks || got.Unique != want.Unique {
			t.Fatalf("workers=%d: counters %d/%d, want %d/%d",
				workers, got.Chunks, got.Unique, want.Chunks, want.Unique)
		}
		if !bytes.Equal(got.Archive, want.Archive) {
			t.Fatalf("workers=%d: archives differ", workers)
		}
	}
}

func TestSSMatchesSeqExactly(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4, 8} {
		got, st := RunSS(in, delegates)
		if got.Chunks != want.Chunks || got.Unique != want.Unique {
			t.Fatalf("delegates=%d: counters %d/%d, want %d/%d",
				delegates, got.Chunks, got.Unique, want.Chunks, want.Unique)
		}
		if !bytes.Equal(got.Archive, want.Archive) {
			t.Fatalf("delegates=%d: archives differ", delegates)
		}
		if st.Epochs != 2 {
			t.Errorf("delegates=%d: %d epochs, want 2", delegates, st.Epochs)
		}
	}
}

func TestHighRedundancyDedups(t *testing.T) {
	hi := &Input{Data: workload.GenerateDedupStream(workload.DedupConfig{
		Seed: 7, Bytes: 1 << 20, SegmentLen: 4096, Redundancy: 0.9,
	})}
	lo := &Input{Data: workload.GenerateDedupStream(workload.DedupConfig{
		Seed: 7, Bytes: 1 << 20, SegmentLen: 4096, Redundancy: 0.1,
	})}
	hiOut, loOut := RunSeq(hi), RunSeq(lo)
	hiRatio := float64(hiOut.Unique) / float64(hiOut.Chunks)
	loRatio := float64(loOut.Unique) / float64(loOut.Chunks)
	if hiRatio >= loRatio {
		t.Fatalf("high redundancy unique ratio %.2f >= low %.2f", hiRatio, loRatio)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	out := RunSeq(&Input{Data: []byte("hello world hello world")})
	if _, err := Decode(out.Archive[:1]); err == nil {
		t.Fatal("truncated archive should fail")
	}
	bad := append([]byte{'X', 0, 0, 0, 0}, out.Archive...)
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown tag should fail")
	}
	if _, err := Decode([]byte{'D', 0, 0, 0, 9}); err == nil {
		t.Fatal("dangling dup reference should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	in := &Input{}
	for _, out := range []*Output{RunSeq(in), RunCP(in, 4)} {
		if out.Chunks != 0 || len(out.Archive) != 0 {
			t.Fatal("empty input should produce empty archive")
		}
	}
	out, _ := RunSS(in, 2)
	if out.Chunks != 0 || len(out.Archive) != 0 {
		t.Fatal("empty input should produce empty archive (SS)")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	data := []byte("aaaaaaaaaabbbbbbbbbbccccc compressible data data data")
	got, err := decompress(compress(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("compress round trip failed: %v", err)
	}
}
