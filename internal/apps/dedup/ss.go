package dedup

import (
	"crypto/sha1"

	prometheus "repro"
)

// chunkObj is the per-chunk writable object. Delegated stages store their
// results in the object (the paper's void-return restructuring); the
// program context reads them back after synchronization.
type chunkObj struct {
	data       []byte
	fp         fingerprint
	uniqueIdx  int // -1 for duplicates
	dupOf      int
	compressed []byte
}

// RunSS is the serialization-sets implementation. It uses the epoch
// technique of §2.2 (different data partitions in different isolation
// epochs) rather than a free-running pipeline:
//
//	epoch 1: fingerprinting of every chunk is delegated (data parallel);
//	epoch 2: the program context makes dedup decisions in stream order —
//	         brief fingerprint-table accesses that stay in the program
//	         context per §2.2 technique 3 — and immediately delegates
//	         compression of each unique chunk, overlapping the decision
//	         scan with compression;
//	aggregation: the archive is assembled in order.
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	chunks := split(in.Data)
	objs := make([]*prometheus.Writable[chunkObj], len(chunks))
	for i, c := range chunks {
		objs[i] = prometheus.NewWritable(rt, chunkObj{data: c.Data, uniqueIdx: -1})
	}

	// Epoch 1: fingerprint all chunks in parallel.
	rt.BeginIsolation()
	prometheus.DoAll(objs, func(c *prometheus.Ctx, o *chunkObj) {
		o.fp = fingerprint(sha1.Sum(o.data))
	})
	rt.EndIsolation()

	// Epoch 2: dedup decisions in stream order + delegated compression.
	table := map[fingerprint]int{}
	unique := 0
	rt.BeginIsolation()
	for _, w := range objs {
		// Reading the fingerprint is a dependent operation: Call reclaims
		// ownership (a no-op here since epoch 1 already synchronized).
		fp := prometheus.Call(w, func(o *chunkObj) fingerprint { return o.fp })
		if idx, ok := table[fp]; ok {
			w.Call(func(o *chunkObj) { o.dupOf = idx })
			continue
		}
		idx := unique
		table[fp] = idx
		unique++
		w.Delegate(func(c *prometheus.Ctx, o *chunkObj) {
			o.uniqueIdx = idx
			o.compressed = compress(o.data)
		})
	}
	rt.EndIsolation()

	// Aggregation: assemble the archive in stream order.
	out := &Output{Chunks: len(chunks), Unique: unique}
	for _, w := range objs {
		w.Call(func(o *chunkObj) {
			if o.uniqueIdx >= 0 {
				out.Archive = appendUnique(out.Archive, o.compressed)
			} else {
				out.Archive = appendDup(out.Archive, o.dupOf)
			}
		})
	}
	return out, rt.Stats()
}
