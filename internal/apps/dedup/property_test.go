package dedup

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: the archive round-trips for arbitrary inputs, and both parallel
// implementations produce the byte-identical canonical archive.
func TestQuickRoundTripAndEquivalence(t *testing.T) {
	f := func(data []byte) bool {
		in := &Input{Data: data}
		seq := RunSeq(in)
		decoded, err := Decode(seq.Archive)
		if err != nil || !bytes.Equal(decoded, data) {
			return false
		}
		if cp := RunCP(in, 3); !bytes.Equal(cp.Archive, seq.Archive) {
			return false
		}
		ss, _ := RunSS(in, 2)
		return bytes.Equal(ss.Archive, seq.Archive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicate counting is consistent — unique + references == chunks.
func TestQuickArchiveStructure(t *testing.T) {
	f := func(seed int64) bool {
		data := bytes.Repeat([]byte("abcdefgh"), 1<<12) // highly redundant
		data = append(data, byte(seed))
		out := RunSeq(&Input{Data: data})
		unique, dups := 0, 0
		archive := out.Archive
		for len(archive) > 0 {
			switch archive[0] {
			case 'U':
				unique++
				n := int(uint32(archive[1])<<24 | uint32(archive[2])<<16 | uint32(archive[3])<<8 | uint32(archive[4]))
				archive = archive[5+n:]
			case 'D':
				dups++
				archive = archive[5:]
			default:
				return false
			}
		}
		return unique == out.Unique && unique+dups == out.Chunks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
