package blackscholes

import "sync"

// RunCP is the conventional-parallel implementation, mirroring the PARSEC
// pthreads version: the option array is statically partitioned into one
// contiguous range per worker thread; a barrier (WaitGroup) joins them.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	n := len(in.Options)
	out := &Output{Prices: make([]float64, n)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			priceRange(in.Options, out.Prices, lo, hi)
		}()
	}
	wg.Wait()
	return out
}
