package blackscholes

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Property: prices are economically sane for arbitrary valid parameters —
// non-negative, call below spot, put below discounted strike.
func TestQuickPriceBounds(t *testing.T) {
	f := func(spotRaw, strikeRaw, volRaw, timeRaw uint16) bool {
		o := workload.Option{
			Spot:   50 + float64(spotRaw%1000)/10,
			Strike: 50 + float64(strikeRaw%1000)/10,
			Rate:   0.03,
			Vol:    0.05 + float64(volRaw%60)/100,
			Time:   0.1 + float64(timeRaw%20)/10,
		}
		o.Call = true
		call := Price(o)
		o.Call = false
		put := Price(o)
		if call < -1e-9 || put < -1e-9 {
			return false
		}
		// A European call is never worth more than the underlying.
		return call <= o.Spot+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CP and SS are bit-identical to sequential on arbitrary batches.
func TestQuickParallelEqualsSeq(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		in := &Input{Options: workload.GenerateOptions(seed, n)}
		want := RunSeq(in)
		cp := RunCP(in, 4)
		ss, _ := RunSS(in, 3)
		for i := range want.Prices {
			if cp.Prices[i] != want.Prices[i] || ss.Prices[i] != want.Prices[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
