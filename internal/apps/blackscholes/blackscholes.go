// Package blackscholes reproduces the PARSEC blackscholes benchmark
// (Table 2): pricing a batch of European options with the Black-Scholes
// closed-form solution. It is the embarrassingly-parallel end of the suite
// — Figure 2's doall idiom — and scales nearly linearly (Figure 6).
package blackscholes

import (
	"math"

	"repro/internal/workload"
)

// Input is the option batch.
type Input struct {
	Options []workload.Option
}

// Output holds one price per option, in input order.
type Output struct {
	Prices []float64
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	return &Input{Options: workload.GenerateOptions(101, workload.OptionsSize(size))}
}

// Rounds is how many times the PARSEC kernel reprices the batch; the
// original uses 100 passes to give the benchmark measurable runtime.
const Rounds = 25

// cnd is the cumulative normal distribution (Abramowitz & Stegun 26.2.17
// polynomial, the same approximation PARSEC uses).
func cnd(x float64) float64 {
	sign := false
	if x < 0 {
		sign = true
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	n := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if sign {
		return 1 - n
	}
	return n
}

// Price computes the Black-Scholes value of one option.
func Price(o workload.Option) float64 {
	sqrtT := math.Sqrt(o.Time)
	d1 := (math.Log(o.Spot/o.Strike) + (o.Rate+o.Vol*o.Vol/2)*o.Time) / (o.Vol * sqrtT)
	d2 := d1 - o.Vol*sqrtT
	discount := o.Strike * math.Exp(-o.Rate*o.Time)
	if o.Call {
		return o.Spot*cnd(d1) - discount*cnd(d2)
	}
	return discount*cnd(-d2) - o.Spot*cnd(-d1)
}

// priceRange prices options [lo, hi) into out, Rounds times.
func priceRange(opts []workload.Option, out []float64, lo, hi int) {
	for round := 0; round < Rounds; round++ {
		for i := lo; i < hi; i++ {
			out[i] = Price(opts[i])
		}
	}
}
