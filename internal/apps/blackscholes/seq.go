package blackscholes

// RunSeq is the sequential reference implementation: the speedup baseline
// of Figure 4.
func RunSeq(in *Input) *Output {
	out := &Output{Prices: make([]float64, len(in.Options))}
	priceRange(in.Options, out.Prices, 0, len(in.Options))
	return out
}
