package blackscholes

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func smallInput() *Input {
	return &Input{Options: workload.GenerateOptions(5, 3000)}
}

func TestPriceKnownValues(t *testing.T) {
	// Textbook check: S=100, K=100, r=5%, sigma=20%, T=1 -> call ~10.45,
	// put ~5.57 (Hull). The A&S polynomial is good to ~1e-7.
	call := Price(workload.Option{Spot: 100, Strike: 100, Rate: 0.05, Vol: 0.2, Time: 1, Call: true})
	put := Price(workload.Option{Spot: 100, Strike: 100, Rate: 0.05, Vol: 0.2, Time: 1, Call: false})
	if math.Abs(call-10.4506) > 0.001 {
		t.Errorf("call = %f, want ~10.4506", call)
	}
	if math.Abs(put-5.5735) > 0.001 {
		t.Errorf("put = %f, want ~5.5735", put)
	}
	// Put-call parity: C - P = S - K e^{-rT}.
	parity := call - put - (100 - 100*math.Exp(-0.05))
	if math.Abs(parity) > 1e-6 {
		t.Errorf("put-call parity violated by %e", parity)
	}
}

func TestCNDProperties(t *testing.T) {
	if math.Abs(cnd(0)-0.5) > 1e-7 {
		t.Errorf("cnd(0) = %f", cnd(0))
	}
	for _, x := range []float64{0.5, 1, 2, 3} {
		if s := cnd(x) + cnd(-x); math.Abs(s-1) > 1e-7 {
			t.Errorf("cnd(%f)+cnd(-%f) = %f, want 1", x, x, s)
		}
		if cnd(x) <= cnd(x-0.1) {
			t.Errorf("cnd not increasing at %f", x)
		}
	}
}

func TestCPMatchesSeqExactly(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 3, 8} {
		got := RunCP(in, workers)
		for i := range want.Prices {
			if got.Prices[i] != want.Prices[i] {
				t.Fatalf("workers=%d: price %d = %v, want %v", workers, i, got.Prices[i], want.Prices[i])
			}
		}
	}
}

func TestSSMatchesSeqExactly(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4, 8} {
		got, st := RunSS(in, delegates)
		for i := range want.Prices {
			if got.Prices[i] != want.Prices[i] {
				t.Fatalf("delegates=%d: price %d = %v, want %v", delegates, i, got.Prices[i], want.Prices[i])
			}
		}
		if st.Delegations == 0 {
			t.Errorf("delegates=%d: no delegations recorded", delegates)
		}
	}
}

func TestLoadSizes(t *testing.T) {
	if n := len(Load(workload.Small).Options); n != workload.OptionsSize(workload.Small) {
		t.Fatalf("Load(S) = %d options", n)
	}
}
