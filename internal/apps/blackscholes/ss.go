package blackscholes

import (
	prometheus "repro"
)

// RunSS is the serialization-sets implementation: the batch is split into
// several chunks per delegate, each wrapped in a Writable with the sequence
// serializer, and priced with DoAll (Figure 2, embarrassing parallelism).
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return runSS(rt, in)
}

// RunSSOn prices with a caller-supplied runtime (used by the harness for
// policy/queue ablations).
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	return runSS(rt, in)
}

func runSS(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	n := len(in.Options)
	out := &Output{Prices: make([]float64, n)}
	// Several chunks per delegate amortize delegation overhead while
	// leaving slack for load balancing across virtual delegates.
	nChunks := 8 * (rt.NumDelegates() + 1)
	if nChunks > n {
		nChunks = n
	}
	type rng struct{ lo, hi int }
	ws := make([]*prometheus.Writable[rng], 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := n*c/nChunks, n*(c+1)/nChunks
		if lo == hi {
			continue
		}
		ws = append(ws, prometheus.NewWritable(rt, rng{lo, hi}))
	}
	opts := in.Options
	rt.BeginIsolation()
	prometheus.DoAll(ws, func(c *prometheus.Ctx, r *rng) {
		priceRange(opts, out.Prices, r.lo, r.hi)
	})
	rt.EndIsolation()
	return out, rt.Stats()
}
