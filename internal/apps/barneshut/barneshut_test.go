package barneshut

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/workload"
)

func smallInput() *Input {
	cfg := workload.NBodyConfig{Seed: 13, Bodies: 800, Steps: 3}
	gen := workload.GenerateBodies(cfg)
	in := &Input{Steps: cfg.Steps, Bodies: make([]nbody.Body, len(gen))}
	for i, g := range gen {
		in.Bodies[i] = nbody.Body{
			Pos:  nbody.Vec3{X: g.PX, Y: g.PY, Z: g.PZ},
			Vel:  nbody.Vec3{X: g.VX, Y: g.VY, Z: g.VZ},
			Mass: g.Mass,
		}
	}
	return in
}

func bodiesIdentical(t *testing.T, got, want []nbody.Body, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d bodies, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Pos != want[i].Pos || got[i].Vel != want[i].Vel {
			t.Fatalf("%s: body %d diverged:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

func TestSeqMovesBodies(t *testing.T) {
	in := smallInput()
	out := RunSeq(in)
	moved := 0
	for i := range out.Bodies {
		if out.Bodies[i].Pos != in.Bodies[i].Pos {
			moved++
		}
		if math.IsNaN(out.Bodies[i].Pos.X) {
			t.Fatalf("body %d NaN", i)
		}
	}
	if moved < len(in.Bodies)/2 {
		t.Fatalf("only %d bodies moved", moved)
	}
}

func TestSeqDoesNotMutateInput(t *testing.T) {
	in := smallInput()
	before := append([]nbody.Body(nil), in.Bodies...)
	RunSeq(in)
	bodiesIdentical(t, in.Bodies, before, "input")
}

// Per-body force accumulation order is the deterministic tree traversal
// order, identical in all three implementations, so outputs must be
// bit-identical — a stronger determinism result than tolerance comparison.
func TestCPMatchesSeqBitExact(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, workers := range []int{1, 3, 8} {
		got := RunCP(in, workers)
		bodiesIdentical(t, got.Bodies, want.Bodies, "cp")
	}
}

func TestSSMatchesSeqBitExact(t *testing.T) {
	in := smallInput()
	want := RunSeq(in)
	for _, delegates := range []int{1, 4, 8} {
		got, st := RunSS(in, delegates)
		bodiesIdentical(t, got.Bodies, want.Bodies, "ss")
		if st.Epochs != uint64(in.Steps) {
			t.Errorf("delegates=%d: %d epochs, want %d", delegates, st.Epochs, in.Steps)
		}
	}
}

func TestMomentumApproximatelyConserved(t *testing.T) {
	in := smallInput()
	momentum := func(bodies []nbody.Body) nbody.Vec3 {
		var p nbody.Vec3
		for i := range bodies {
			p = p.Add(bodies[i].Vel.Scale(bodies[i].Mass))
		}
		return p
	}
	before := momentum(in.Bodies)
	after := momentum(RunSeq(in).Bodies)
	// Barnes-Hut forces are not exactly pairwise-symmetric, so momentum
	// drifts slightly; it must stay small relative to the system scale.
	drift := after.Sub(before)
	scale := math.Sqrt(before.Norm2()) + 1
	if math.Sqrt(drift.Norm2()) > 0.05*scale {
		t.Fatalf("momentum drift %v too large (scale %f)", drift, scale)
	}
}

func TestLoadSizes(t *testing.T) {
	in := Load(workload.Small)
	cfg := workload.NBodySize(workload.Small)
	if len(in.Bodies) != cfg.Bodies || in.Steps != cfg.Steps {
		t.Fatalf("Load(S) = %d bodies / %d steps", len(in.Bodies), in.Steps)
	}
}
