package barneshut

import "repro/internal/nbody"

// RunSeq is the sequential reference implementation.
func RunSeq(in *Input) *Output {
	bodies, ptrs := clone(in)
	accs := make([]nbody.Vec3, len(ptrs))
	for step := 0; step < in.Steps; step++ {
		root := nbody.BuildTree(ptrs)
		forceRange(root, ptrs, accs, 0, len(ptrs))
		integrateRange(ptrs, accs, 0, len(ptrs))
	}
	return &Output{Bodies: bodies}
}
