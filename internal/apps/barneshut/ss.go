package barneshut

import (
	prometheus "repro"
	"repro/internal/nbody"
)

// RunSS is the serialization-sets implementation: body chunks are writable
// domains delegated each step while the freshly built octree is a read-only
// domain — the alternating-partition idiom of §2.2 (the tree is written in
// the aggregation gap between isolation epochs, read-only inside them).
func RunSS(in *Input, delegates int) (*Output, prometheus.Stats) {
	rt := prometheus.Init(prometheus.WithDelegates(delegates))
	defer rt.Terminate()
	return RunSSOn(rt, in)
}

// RunSSOn runs with a caller-supplied runtime.
func RunSSOn(rt *prometheus.Runtime, in *Input) (*Output, prometheus.Stats) {
	bodies, ptrs := clone(in)
	accs := make([]nbody.Vec3, len(ptrs))
	n := len(ptrs)
	type rng struct{ lo, hi int }
	nChunks := 8 * (rt.NumDelegates() + 1)
	if nChunks > n && n > 0 {
		nChunks = n
	}
	ws := make([]*prometheus.Writable[rng], 0, nChunks)
	for c := 0; c < nChunks; c++ {
		lo, hi := n*c/nChunks, n*(c+1)/nChunks
		if lo != hi {
			ws = append(ws, prometheus.NewWritable(rt, rng{lo, hi}))
		}
	}
	treeRO := prometheus.NewReadOnly[*nbody.Node](rt, nil)
	for step := 0; step < in.Steps; step++ {
		// Aggregation: rebuild the tree (the read-only domain mutates only
		// between isolation epochs).
		*treeRO.Mut() = nbody.BuildTree(ptrs)
		rt.BeginIsolation()
		root := *treeRO.Get()
		prometheus.DoAll(ws, func(c *prometheus.Ctx, r *rng) {
			forceRange(root, ptrs, accs, r.lo, r.hi)
			integrateRange(ptrs, accs, r.lo, r.hi)
		})
		rt.EndIsolation()
	}
	return &Output{Bodies: bodies}, rt.Stats()
}
