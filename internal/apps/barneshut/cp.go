package barneshut

import (
	"sync"

	"repro/internal/nbody"
)

// RunCP is the conventional-parallel implementation in the style of the
// Lonestar pthreads version: per step, a sequential tree build followed by
// a fork-join parallel force-and-integrate phase over static body ranges.
func RunCP(in *Input, workers int) *Output {
	if workers < 1 {
		workers = 1
	}
	bodies, ptrs := clone(in)
	accs := make([]nbody.Vec3, len(ptrs))
	n := len(ptrs)
	for step := 0; step < in.Steps; step++ {
		root := nbody.BuildTree(ptrs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := n*w/workers, n*(w+1)/workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				forceRange(root, ptrs, accs, lo, hi)
				integrateRange(ptrs, accs, lo, hi)
			}()
		}
		wg.Wait()
	}
	return &Output{Bodies: bodies}
}
