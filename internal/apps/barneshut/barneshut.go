// Package barneshut reproduces the Lonestar barnes-hut benchmark
// (Table 2): an N-body simulation where each time step builds an octree
// and computes approximate forces against it. Per step, the tree build is
// sequential and the force/integrate phase is data parallel over the
// bodies with the tree read-only — the structure all three implementations
// share, so their outputs are bit-identical (per-body force accumulation
// order is the deterministic tree traversal order).
package barneshut

import (
	"repro/internal/nbody"
	"repro/internal/workload"
)

// Input is the initial body set plus the step count.
type Input struct {
	Bodies []nbody.Body
	Steps  int
}

// Output is the final body states.
type Output struct {
	Bodies []nbody.Body
}

// Load generates the input for a size class.
func Load(size workload.SizeClass) *Input {
	cfg := workload.NBodySize(size)
	gen := workload.GenerateBodies(cfg)
	bodies := make([]nbody.Body, len(gen))
	for i, g := range gen {
		bodies[i] = nbody.Body{
			Pos:  nbody.Vec3{X: g.PX, Y: g.PY, Z: g.PZ},
			Vel:  nbody.Vec3{X: g.VX, Y: g.VY, Z: g.VZ},
			Mass: g.Mass,
		}
	}
	return &Input{Bodies: bodies, Steps: cfg.Steps}
}

// clone copies the input bodies so repeated runs are independent, and
// returns pointers for tree construction.
func clone(in *Input) ([]nbody.Body, []*nbody.Body) {
	bodies := append([]nbody.Body(nil), in.Bodies...)
	ptrs := make([]*nbody.Body, len(bodies))
	for i := range bodies {
		ptrs[i] = &bodies[i]
	}
	return bodies, ptrs
}

// forceRange computes accelerations for bodies [lo, hi) against the tree,
// storing into accs.
func forceRange(root *nbody.Node, ptrs []*nbody.Body, accs []nbody.Vec3, lo, hi int) {
	for i := lo; i < hi; i++ {
		accs[i] = root.Force(ptrs[i])
	}
}

// integrateRange advances bodies [lo, hi).
func integrateRange(ptrs []*nbody.Body, accs []nbody.Vec3, lo, hi int) {
	for i := lo; i < hi; i++ {
		nbody.Integrate(ptrs[i], accs[i])
	}
}
