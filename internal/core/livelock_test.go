package core

import (
	"testing"
	"time"
)

// Livelock regression stress for the per-set outbound ledger (PR 5's
// tentpole). The shape is the ROADMAP's documented residual liveness
// window, built deterministically:
//
//   - set 0 (static home delegate 1) gets one executed operation from the
//     program context, so it has history and a recorded producer;
//   - delegate 3 is pinned by a gated operation (set 2), and the parent
//     operation (set 3, running ON delegate 1) first delegates to set 5
//     (static home delegate 3), planting outbound traffic in delegate 3's
//     lane 1 that stays un-executed while the gate holds;
//   - the parent then delegates to set 0 from context 1 — a producer
//     handover that lands the set on its own producer's delegate. The
//     engine must evacuate it (self-delegations the producer blocks on are
//     placements the program didn't write);
//   - the parent blocks mid-operation until the set-0 operation runs.
//
// Under the legacy all-lanes outbound veto (PR 4 semantics,
// Config.LegacyOutboundVeto) the evacuation is vetoed by the UNRELATED
// set-5 traffic still parked behind the gate, the set-0 operation
// self-enqueues into delegate 1's own lane, and the parent blocks forever
// on work only delegate 1 could drain: a permanent livelock, with no
// further delegation ever arriving to retry the evacuation. The precise
// per-set ledger checks only set 0's OWN outbound traffic (none), so the
// evacuation fires before the push, the operation lands on idle delegate
// 2, and the program completes.
//
// The negative control intentionally leaks its deadlocked runtime (the
// blocked goroutines all wait on channels, so the leak is cheap); it is
// the proof that the regression test would catch a reintroduced veto.

// livelockShape runs the scenario and reports whether it completed within
// timeout. On completion the runtime is verified and torn down; on timeout
// everything is leaked deliberately (it is deadlocked by construction).
func livelockShape(t *testing.T, cfg Config, timeout time.Duration) (finished bool, rt *Runtime) {
	t.Helper()
	rt = New(cfg)
	gateRelease := make(chan struct{})
	parentDone := make(chan struct{})
	done := make(chan struct{})
	go func() {
		rt.BeginIsolation()

		// History for set 0 on its static home (delegate 1), produced by
		// the program context.
		rt.Delegate(0, func(int) {})
		d1 := rt.rec.delegates[0]
		for d1.laneExec[ProgramContext].Load() < 1 {
			time.Sleep(50 * time.Microsecond)
		}

		// Pin delegate 3 behind a gate (set 2 -> delegate 3).
		gateStarted := make(chan struct{})
		rt.Delegate(2, func(int) { close(gateStarted); <-gateRelease })
		<-gateStarted

		// Parent operation on delegate 1 (set 3 -> delegate 1).
		rt.Delegate(3, func(ctx int) {
			// Unrelated outbound traffic: set 5 -> delegate 3, parked
			// behind the gate. This is what the legacy veto trips on.
			rt.DelegateFrom(ctx, 5, func(int) {})
			// Producer handover of set 0 onto its own producer's delegate;
			// then block mid-operation on the nested delegation.
			nestedRan := make(chan struct{})
			rt.DelegateFrom(ctx, 0, func(int) { close(nestedRan) })
			<-nestedRan
			close(parentDone)
		})

		<-parentDone
		close(gateRelease) // unpin delegate 3 so the barrier can pass
		rt.EndIsolation()
		rt.Terminate()
		close(done)
	}()
	select {
	case <-done:
		return true, rt
	case <-time.After(timeout):
		return false, rt
	}
}

// TestRecursiveSelfDelegationLivelockClosed: with the precise per-set
// outbound ledger the scenario completes — the forced evacuation fires at
// the delegation despite unrelated in-flight outbound lanes.
func TestRecursiveSelfDelegationLivelockClosed(t *testing.T) {
	cfg := recStealCfg(3, MaxStealThreshold) // no occupancy steals: isolate the forced path
	finished, rt := livelockShape(t, cfg, 60*time.Second)
	if !finished {
		t.Fatal("self-delegation scenario livelocked under the precise per-set outbound ledger")
	}
	if got := recOwner(rt, 0); got == 1 {
		t.Fatalf("set 0 still owned by its producer's delegate 1 after the forced evacuation")
	}
	var evacs uint64
	for i := range rt.rec.steal.forcedEvacs {
		evacs += rt.rec.steal.forcedEvacs[i].n.Load()
	}
	if evacs == 0 {
		t.Fatal("scenario completed without a forced evacuation (shape no longer exercises the window)")
	}
}

// TestRecursiveSelfDelegationLivelockLegacyVetoHangs is the negative
// control: under PR 4's conservative all-lanes veto the same shape must
// deadlock — proving the regression test actually pins the bug the
// precise ledger fixes. The watchdog is short because the hang is
// structural, not a race: the one evacuation attempt is vetoed while the
// gate is provably held, and no later delegation ever retries it.
func TestRecursiveSelfDelegationLivelockLegacyVetoHangs(t *testing.T) {
	cfg := recStealCfg(3, MaxStealThreshold)
	cfg.LegacyOutboundVeto = true
	finished, rt := livelockShape(t, cfg, 2*time.Second)
	if finished {
		t.Fatal("legacy all-lanes veto no longer livelocks the self-delegation shape; the negative control is dead — rewrite it")
	}
	// The vetoed evacuation must be visible in the outbound-veto ledger
	// counters (atomics, safe to read while the runtime is wedged).
	var vetoes uint64
	for i := range rt.rec.steal.outVetoes {
		vetoes += rt.rec.steal.outVetoes[i].n.Load()
	}
	if vetoes == 0 {
		t.Fatal("legacy run hung without recording an outbound veto")
	}
	// rt and its goroutines are deliberately leaked: every one of them is
	// parked on a channel inside the deadlock under test.
}
