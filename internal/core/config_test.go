package core

import "testing"

// TestConfigValidationMatrix covers every policy/mode combination against
// the validation rules: Stealing needs the LeastLoaded policy (in
// recursive mode too — the whole-set handoff protocol is what makes the
// pairing legal now); recursive mode without stealing keeps the paper's
// static assignment; Sequential debug mode accepts everything and runs
// inline.
func TestConfigValidationMatrix(t *testing.T) {
	cases := []struct {
		name      string
		policy    SchedPolicy
		recursive bool
		stealing  bool
		wantPanic bool
	}{
		{"static", StaticMod, false, false, false},
		{"least-loaded", LeastLoaded, false, false, false},
		{"static+steal", StaticMod, false, true, true},
		{"least-loaded+steal", LeastLoaded, false, true, false},
		{"recursive+static", StaticMod, true, false, false},
		{"recursive+least-loaded", LeastLoaded, true, false, true},
		{"recursive+static+steal", StaticMod, true, true, true},
		{"recursive+least-loaded+steal", LeastLoaded, true, true, false},
	}
	for _, tc := range cases {
		for _, sequential := range []bool{false, true} {
			name := tc.name
			if sequential {
				name += "+sequential"
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{
					Delegates:  2,
					Policy:     tc.policy,
					Recursive:  tc.recursive,
					Stealing:   tc.stealing,
					Sequential: sequential,
				}
				wantPanic := tc.wantPanic && !sequential // debug mode rejects nothing
				defer func() {
					r := recover()
					if wantPanic && r == nil {
						t.Errorf("New(%+v) did not panic", cfg)
					}
					if !wantPanic && r != nil {
						t.Errorf("New(%+v) panicked: %v", cfg, r)
					}
				}()
				rt := New(cfg)
				// Valid configurations must actually execute work.
				rt.BeginIsolation()
				ran := make(chan struct{})
				rt.Delegate(1, func(int) { close(ran) })
				rt.EndIsolation()
				<-ran
				rt.Terminate()
			})
		}
	}
}

// TestRecursiveProgramShareStillRejected: the ProgramShare restriction is
// orthogonal to the stealing relaxation.
func TestRecursiveProgramShareStillRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Recursive+ProgramShare did not panic")
		}
	}()
	New(Config{Delegates: 2, Recursive: true, ProgramShare: 1, VirtualDelegates: 4}).Terminate()
}
