package core

import "time"

// Execution tracing. With Config.Trace enabled, the runtime records one
// event per delegated-operation execution, per synchronization, and per
// epoch transition into per-context buffers (single writer each, so the
// hot path takes no locks). The trace package turns the merged event list
// into utilization reports and timelines; it is the profiling story behind
// the paper's §5 overhead discussion.

// TraceKind classifies trace events.
type TraceKind uint8

const (
	TraceExec  TraceKind = iota // a delegated operation ran on Ctx
	TraceSync                   // a synchronization object was served
	TraceEpoch                  // isolation epoch [Start, End) on the program context
	TraceSteal                  // Set was handed off by the rebalancer; Ctx is the producer that migrated it
	TracePanic                  // a delegated operation of Set panicked on Ctx and was contained (Epoch carries the isolation epoch)
	TraceResize                 // the delegate pool was resized at an epoch boundary; Set carries the new active size, Epoch the epoch it opens
)

func (k TraceKind) String() string {
	switch k {
	case TraceExec:
		return "exec"
	case TraceSync:
		return "sync"
	case TraceEpoch:
		return "epoch"
	case TraceSteal:
		return "steal"
	case TracePanic:
		return "panic"
	case TraceResize:
		return "resize"
	default:
		return "?"
	}
}

// TraceEvent is one recorded event. Times are offsets from the runtime's
// start, so events from different contexts share a clock. Epoch is set only
// on TracePanic events (the isolation epoch the faulting operation ran in).
type TraceEvent struct {
	Ctx        int
	Kind       TraceKind
	Set        uint64
	Epoch      uint64
	Start, End time.Duration
}

// traceState holds the per-context buffers.
type traceState struct {
	origin time.Time
	bufs   [][]TraceEvent // indexed by context id; single writer each
}

func newTraceState(contexts int) *traceState {
	return &traceState{origin: time.Now(), bufs: make([][]TraceEvent, contexts)}
}

// record appends an event to ctx's buffer. Only the goroutine running ctx
// may call it.
func (ts *traceState) record(ctx int, kind TraceKind, set uint64, start, end time.Time) {
	ts.bufs[ctx] = append(ts.bufs[ctx], TraceEvent{
		Ctx:   ctx,
		Kind:  kind,
		Set:   set,
		Start: start.Sub(ts.origin),
		End:   end.Sub(ts.origin),
	})
}

// recordPanicEvent appends a TracePanic instant to ctx's buffer. Called by
// the faulting delegate's own goroutine (recordPanic), honoring the
// single-writer-per-buffer discipline.
func (ts *traceState) recordPanicEvent(ctx int, set, epoch uint64, at time.Time) {
	off := at.Sub(ts.origin)
	ts.bufs[ctx] = append(ts.bufs[ctx], TraceEvent{
		Ctx: ctx, Kind: TracePanic, Set: set, Epoch: epoch, Start: off, End: off,
	})
}

// recordResizeEvent appends a TraceResize instant to the program context's
// buffer. Called by the program context inside applyReconfig, so the
// single-writer discipline holds; Set carries the new active pool size.
func (ts *traceState) recordResizeEvent(newSize, epoch uint64, at time.Time) {
	off := at.Sub(ts.origin)
	ts.bufs[ProgramContext] = append(ts.bufs[ProgramContext], TraceEvent{
		Ctx: ProgramContext, Kind: TraceResize, Set: newSize, Epoch: epoch, Start: off, End: off,
	})
}

// traceExec wraps fn with exec-event recording when tracing is on.
func (rt *Runtime) traceExec(set uint64, fn func(ctx int)) func(ctx int) {
	ts := rt.traceSt
	if ts == nil {
		return fn
	}
	return func(ctx int) {
		start := time.Now()
		fn(ctx)
		ts.record(ctx, TraceExec, set, start, time.Now())
	}
}

// TraceEvents returns the merged event list. Must be called from the
// program context with no isolation epoch open (the EndIsolation barrier
// orders delegate buffer writes before this read). Returns nil when
// tracing is disabled.
func (rt *Runtime) TraceEvents() []TraceEvent {
	if rt.traceSt == nil {
		return nil
	}
	if rt.inIsolation {
		panic("prometheus: TraceEvents during an isolation epoch")
	}
	rt.barrier()
	var all []TraceEvent
	for _, buf := range rt.traceSt.bufs {
		all = append(all, buf...)
	}
	return all
}

// TraceOrigin returns the trace clock's zero point.
func (rt *Runtime) TraceOrigin() time.Time {
	if rt.traceSt == nil {
		return time.Time{}
	}
	return rt.traceSt.origin
}
