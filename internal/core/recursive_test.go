package core

import (
	"sync/atomic"
	"testing"
)

func newRecRuntime(t *testing.T, delegates int) *Runtime {
	t.Helper()
	rt := New(Config{Delegates: delegates, Recursive: true})
	t.Cleanup(rt.Terminate)
	return rt
}

func TestRecursiveFanOut(t *testing.T) {
	// A root operation spawns children, each spawning grandchildren; the
	// barrier at EndIsolation must wait for the whole tree.
	rt := newRecRuntime(t, 4)
	var count atomic.Int64
	rt.BeginIsolation()
	rt.Delegate(1, func(ctx int) {
		for i := 0; i < 10; i++ {
			set := uint64(100 + i)
			rt.DelegateFrom(ctx, set, func(ctx2 int) {
				for j := 0; j < 10; j++ {
					rt.DelegateFrom(ctx2, set*1000+uint64(j), func(int) {
						count.Add(1)
					})
				}
			})
		}
	})
	rt.EndIsolation()
	if got := count.Load(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
}

func TestRecursivePerSetOrderPerProducer(t *testing.T) {
	// Operations one producer sends to one set must stay in order.
	rt := newRecRuntime(t, 4)
	const ops = 2000
	var result []int
	rt.BeginIsolation()
	rt.Delegate(5, func(ctx int) {
		for i := 0; i < ops; i++ {
			i := i
			rt.DelegateFrom(ctx, 77, func(int) { result = append(result, i) })
		}
	})
	rt.EndIsolation()
	if len(result) != ops {
		t.Fatalf("got %d ops, want %d", len(result), ops)
	}
	for i, v := range result {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestRecursiveDeepChain(t *testing.T) {
	// Each operation delegates the next; depth exceeds any queue capacity.
	rt := New(Config{Delegates: 3, Recursive: true, QueueCapacity: 16})
	defer rt.Terminate()
	const depth = 5000
	var hops atomic.Int64
	var step func(ctx int, remaining int)
	step = func(ctx int, remaining int) {
		hops.Add(1)
		if remaining == 0 {
			return
		}
		rt.DelegateFrom(ctx, uint64(remaining), func(next int) { step(next, remaining-1) })
	}
	rt.BeginIsolation()
	rt.Delegate(uint64(depth), func(ctx int) { step(ctx, depth-1) })
	rt.EndIsolation()
	if got := hops.Load(); got != depth {
		t.Fatalf("hops = %d, want %d", got, depth)
	}
}

func TestRecursiveTreeSum(t *testing.T) {
	// Divide-and-conquer sum over a slice: the paper's motivating use case
	// for recursive delegation. Each node delegates halves to child sets
	// and a combining op to its own set.
	rt := newRecRuntime(t, 6)
	n := 1 << 12
	data := make([]int64, n)
	var want int64
	for i := range data {
		data[i] = int64(i * 3)
		want += data[i]
	}
	var nextSet atomic.Uint64
	var total int64

	// Leaf sums are delegated recursively; each leaf then delegates its
	// accumulation into set 9999. All ops in one set execute on a single
	// owner context, so the accumulation is race-free; its order across
	// producers is nondeterministic, which is fine for a commutative sum
	// (the determinism discipline applies to order-sensitive state).
	const leafSize = 256
	rt.BeginIsolation()
	rt.Delegate(0, func(ctx int) {
		for lo := 0; lo < n; lo += leafSize {
			lo := lo
			set := nextSet.Add(1)
			rt.DelegateFrom(ctx, set, func(leafCtx int) {
				var sum int64
				for _, v := range data[lo : lo+leafSize] {
					sum += v
				}
				rt.DelegateFrom(leafCtx, 9999, func(int) { total += sum })
			})
		}
	})
	rt.EndIsolation()
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestRecursiveConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Delegates: 2, Recursive: true, ProgramShare: 1},
		{Delegates: 2, Recursive: true, Policy: LeastLoaded},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg).Terminate()
		}()
	}
}

func TestRecursiveSequentialMode(t *testing.T) {
	rt := New(Config{Sequential: true, Recursive: true})
	defer rt.Terminate()
	ran := false
	rt.BeginIsolation()
	rt.Delegate(1, func(ctx int) {
		rt.DelegateFrom(ctx, 2, func(int) { ran = true })
	})
	rt.EndIsolation()
	if !ran {
		t.Fatal("sequential recursive delegation did not run")
	}
}

func TestNonRecursiveDelegateFromPanics(t *testing.T) {
	rt := New(Config{Delegates: 2})
	defer rt.Terminate()
	defer func() {
		if recover() == nil {
			t.Fatal("DelegateFrom without Recursive should panic")
		}
	}()
	rt.DelegateFrom(1, 1, func(int) {})
}

func TestRecursiveRunParallel(t *testing.T) {
	rt := newRecRuntime(t, 4)
	var sum atomic.Int64
	tasks := make([]func(int), 12)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx int) { sum.Add(int64(i)) }
	}
	rt.RunParallel(tasks)
	if got := sum.Load(); got != 66 {
		t.Fatalf("sum = %d, want 66", got)
	}
}

func TestRecursiveSyncContext(t *testing.T) {
	rt := newRecRuntime(t, 3)
	var done atomic.Bool
	rt.BeginIsolation()
	ctx := rt.Delegate(4, func(ctx int) {
		rt.DelegateFrom(ctx, 8, func(int) { done.Store(true) })
	})
	rt.SyncContext(ctx) // quiescence barrier: must cover the nested op too
	if !done.Load() {
		t.Fatal("SyncContext returned before recursive work completed")
	}
	rt.EndIsolation()
}

func TestRecursiveCheckedOneProducerPerSet(t *testing.T) {
	// Checked mode enforces the determinism discipline: a set delegated to
	// from two different contexts in one epoch is a serializer violation.
	rt := New(Config{Delegates: 2, Recursive: true, Checked: true})
	defer rt.Terminate()
	caught := make(chan any, 1)
	rt.BeginIsolation()
	rt.Delegate(1, func(ctx int) {}) // program context claims set 1
	rt.Delegate(2, func(ctx int) {   // runs on some delegate
		defer func() { caught <- recover() }()
		rt.DelegateFrom(ctx, 1, func(int) {}) // different producer, same set
	})
	rt.EndIsolation()
	if r := <-caught; r == nil {
		t.Fatal("cross-producer delegation to one set should panic in checked mode")
	}
}

func TestRecursiveCheckedResetsAcrossEpochs(t *testing.T) {
	rt := New(Config{Delegates: 2, Recursive: true, Checked: true})
	defer rt.Terminate()
	rt.BeginIsolation()
	rt.Delegate(1, func(ctx int) {})
	rt.EndIsolation()
	rt.BeginIsolation()
	var fromDelegate atomic.Bool
	rt.Delegate(7, func(ctx int) {
		// New epoch: set 1 may be claimed by a different producer.
		rt.DelegateFrom(ctx, 1, func(int) { fromDelegate.Store(true) })
	})
	rt.EndIsolation()
	if !fromDelegate.Load() {
		t.Fatal("fresh-epoch delegation did not run")
	}
}
