package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func newTestRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt := New(cfg)
	t.Cleanup(rt.Terminate)
	return rt
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Delegates < 1 {
		t.Errorf("Delegates = %d, want >= 1", c.Delegates)
	}
	if c.VirtualDelegates < c.Delegates {
		t.Errorf("VirtualDelegates = %d < Delegates = %d", c.VirtualDelegates, c.Delegates)
	}
	if c.QueueCapacity <= 0 {
		t.Errorf("QueueCapacity = %d, want > 0", c.QueueCapacity)
	}
}

func TestAssignmentTable(t *testing.T) {
	cfg := Config{Delegates: 3, ProgramShare: 2, VirtualDelegates: 8}.withDefaults()
	vmap := buildAssignment(cfg)
	want := []int{0, 0, 1, 2, 3, 1, 2, 3}
	if len(vmap) != len(want) {
		t.Fatalf("len(vmap) = %d, want %d", len(vmap), len(want))
	}
	for i := range want {
		if vmap[i] != want[i] {
			t.Errorf("vmap[%d] = %d, want %d", i, vmap[i], want[i])
		}
	}
}

func TestSameSetSameContext(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4})
	for set := uint64(0); set < 100; set++ {
		first := rt.ContextFor(set)
		for i := 0; i < 5; i++ {
			if got := rt.ContextFor(set); got != first {
				t.Fatalf("set %d: context changed %d -> %d", set, first, got)
			}
		}
	}
}

// TestPerSetOrdering is the central model property: operations in the same
// serialization set execute in program (delegation) order.
func TestPerSetOrdering(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4})
	const sets = 16
	const opsPerSet = 2000
	results := make([][]int, sets)

	rt.BeginIsolation()
	for i := 0; i < opsPerSet; i++ {
		for s := 0; s < sets; s++ {
			s, i := s, i
			rt.Delegate(uint64(s), func(ctx int) {
				results[s] = append(results[s], i) // safe: one set = one context, serial
			})
		}
	}
	rt.EndIsolation()

	for s := 0; s < sets; s++ {
		if len(results[s]) != opsPerSet {
			t.Fatalf("set %d: %d ops, want %d", s, len(results[s]), opsPerSet)
		}
		for i, v := range results[s] {
			if v != i {
				t.Fatalf("set %d: op %d out of order (got %d)", s, i, v)
			}
		}
	}
}

func TestDifferentSetsRunConcurrently(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, VirtualDelegates: 2})
	rt.BeginIsolation()
	// Set 0 blocks until set 1 has run: only possible if they execute on
	// different contexts concurrently.
	release := make(chan struct{})
	done := make(chan struct{})
	rt.Delegate(0, func(ctx int) {
		<-release
		close(done)
	})
	rt.Delegate(1, func(ctx int) {
		close(release)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sets 0 and 1 did not run concurrently")
	}
	rt.EndIsolation()
}

func TestSyncContextWaitsForOutstandingWork(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2})
	var flag atomic.Bool
	rt.BeginIsolation()
	ctx := rt.Delegate(7, func(int) {
		time.Sleep(20 * time.Millisecond)
		flag.Store(true)
	})
	rt.SyncContext(ctx)
	if !flag.Load() {
		t.Fatal("SyncContext returned before delegated op completed")
	}
	rt.EndIsolation()
}

func TestSyncSetLeastLoadedUnknownSetNoop(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded})
	rt.BeginIsolation()
	rt.SyncSet(999) // never delegated: must not deadlock or assign
	if _, ok := rt.setOwner[999]; ok {
		t.Fatal("SyncSet should not assign an owner")
	}
	rt.EndIsolation()
}

func TestLeastLoadedSticky(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4, Policy: LeastLoaded})
	rt.BeginIsolation()
	first := rt.ContextFor(5)
	for i := 0; i < 10; i++ {
		rt.Delegate(5, func(int) { time.Sleep(time.Millisecond) })
		if got := rt.ContextFor(5); got != first {
			t.Fatalf("LeastLoaded moved set mid-epoch: %d -> %d", first, got)
		}
	}
	rt.EndIsolation()
	// New epoch may choose a different owner; the map must reset.
	rt.BeginIsolation()
	if len(rt.setOwner) != 0 {
		t.Fatal("setOwner not cleared at epoch start")
	}
	rt.EndIsolation()
}

func TestEndIsolationIsBarrier(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4})
	var count atomic.Int64
	rt.BeginIsolation()
	for i := 0; i < 500; i++ {
		rt.Delegate(uint64(i), func(int) {
			time.Sleep(10 * time.Microsecond)
			count.Add(1)
		})
	}
	rt.EndIsolation()
	if got := count.Load(); got != 500 {
		t.Fatalf("after EndIsolation count = %d, want 500", got)
	}
}

func TestSequentialModeInline(t *testing.T) {
	rt := newTestRuntime(t, Config{Sequential: true})
	order := []int{}
	rt.BeginIsolation()
	for i := 0; i < 10; i++ {
		i := i
		rt.Delegate(uint64(i%3), func(ctx int) {
			if ctx != ProgramContext {
				t.Errorf("sequential mode ran on ctx %d", ctx)
			}
			order = append(order, i)
		})
	}
	rt.EndIsolation()
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential mode out of program order at %d: %d", i, v)
		}
	}
	st := rt.Stats()
	if st.InlineExecs != 10 || st.Delegations != 0 {
		t.Fatalf("stats = %+v, want 10 inline / 0 delegated", st)
	}
}

func TestProgramShareRunsInline(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, ProgramShare: 1, VirtualDelegates: 3})
	rt.BeginIsolation()
	ran := false
	// Virtual delegate 0 is the program context; set 0 maps there.
	if ctx := rt.Delegate(0, func(ctx int) { ran = ctx == ProgramContext }); ctx != ProgramContext {
		t.Fatalf("set 0 assigned to ctx %d, want program context", ctx)
	}
	if !ran {
		t.Fatal("program-share delegation did not run inline")
	}
	rt.EndIsolation()
}

func TestEpochCounting(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1})
	if rt.Epoch() != 0 || rt.InIsolation() {
		t.Fatal("fresh runtime should be in aggregation epoch 0")
	}
	for i := 1; i <= 3; i++ {
		rt.BeginIsolation()
		if rt.Epoch() != uint64(i) || !rt.InIsolation() {
			t.Fatalf("epoch %d state wrong", i)
		}
		rt.EndIsolation()
	}
	if rt.Stats().Epochs != 3 {
		t.Fatalf("Epochs = %d, want 3", rt.Stats().Epochs)
	}
}

func TestNestedIsolationPanics(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1})
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginIsolation should panic")
		}
	}()
	rt.BeginIsolation()
}

func TestEndWithoutBeginPanics(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("EndIsolation without BeginIsolation should panic")
		}
	}()
	rt.EndIsolation()
}

func TestDelegateAfterTerminatePanics(t *testing.T) {
	rt := New(Config{Delegates: 1})
	rt.Terminate()
	defer func() {
		if recover() == nil {
			t.Fatal("Delegate after Terminate should panic")
		}
	}()
	rt.Delegate(0, func(int) {})
}

func TestTerminateIdempotent(t *testing.T) {
	rt := New(Config{Delegates: 2})
	rt.Terminate()
	rt.Terminate() // must not hang or panic
}

func TestTerminateDuringIsolationDrains(t *testing.T) {
	rt := New(Config{Delegates: 2})
	var count atomic.Int64
	rt.BeginIsolation()
	for i := 0; i < 100; i++ {
		rt.Delegate(uint64(i), func(int) { count.Add(1) })
	}
	rt.Terminate()
	if got := count.Load(); got != 100 {
		t.Fatalf("Terminate lost work: %d/100 ran", got)
	}
}

func TestRunParallel(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4})
	var sum atomic.Int64
	tasks := make([]func(int), 20)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx int) {
			if ctx < 1 || ctx > 4 {
				t.Errorf("RunParallel task on ctx %d", ctx)
			}
			sum.Add(int64(i))
		}
	}
	rt.RunParallel(tasks)
	if got := sum.Load(); got != 190 {
		t.Fatalf("sum = %d, want 190", got)
	}
}

func TestRunParallelDuringIsolationPanics(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1})
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer func() {
		if recover() == nil {
			t.Fatal("RunParallel during isolation should panic")
		}
	}()
	rt.RunParallel([]func(int){func(int) {}})
}

func TestPhaseAccounting(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1})
	time.Sleep(5 * time.Millisecond) // aggregation
	rt.BeginIsolation()
	time.Sleep(5 * time.Millisecond) // isolation
	rt.EndIsolation()
	rt.EnterReduction()
	time.Sleep(5 * time.Millisecond) // reduction
	rt.ExitReduction()
	st := rt.Stats()
	for name, d := range map[string]time.Duration{
		"aggregation": st.Aggregation, "isolation": st.Isolation, "reduction": st.Reduction,
	} {
		if d < 4*time.Millisecond {
			t.Errorf("%s time = %v, want >= ~5ms", name, d)
		}
	}
	if st.Total() < 14*time.Millisecond {
		t.Errorf("total = %v, want >= ~15ms", st.Total())
	}
}

func TestSleepBarriers(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2})
	var done atomic.Bool
	rt.BeginIsolation()
	rt.Delegate(1, func(int) {
		time.Sleep(10 * time.Millisecond)
		done.Store(true)
	})
	rt.EndIsolation()
	rt.Sleep()
	if !done.Load() {
		t.Fatal("Sleep returned with outstanding work")
	}
}

func TestStatsCounters(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, ProgramShare: 1, VirtualDelegates: 4})
	rt.BeginIsolation()
	rt.Delegate(0, func(int) {}) // program share -> inline
	ctx := rt.Delegate(1, func(int) {})
	rt.SyncContext(ctx)
	rt.EndIsolation()
	st := rt.Stats()
	if st.InlineExecs != 1 {
		t.Errorf("InlineExecs = %d, want 1", st.InlineExecs)
	}
	if st.Delegations != 1 {
		t.Errorf("Delegations = %d, want 1", st.Delegations)
	}
	if st.Syncs != 1 {
		t.Errorf("Syncs = %d, want 1", st.Syncs)
	}
	if st.Barriers < 1 {
		t.Errorf("Barriers = %d, want >= 1", st.Barriers)
	}
}

func TestSyncSkipsCleanDelegates(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 4})
	rt.BeginIsolation()
	rt.Delegate(1, func(int) {})
	rt.EndIsolation()
	before := rt.Stats().Syncs
	rt.BeginIsolation()
	rt.SyncSet(1) // nothing delegated this epoch; dirty bit cleared by barrier
	rt.EndIsolation()
	if got := rt.Stats().Syncs; got != before {
		t.Errorf("Syncs = %d, want %d (clean delegate should be skipped)", got, before)
	}
}
