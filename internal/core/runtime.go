// Package core implements the Prometheus runtime for the serialization-sets
// execution model (Allen, Sridharan & Sohi, PPoPP 2009): a program context
// that delegates operations, a pool of delegate contexts each fed by a
// private FastForward-style SPSC queue, virtual-delegate assignment, epoch
// management, ownership synchronization, and per-phase instrumentation.
//
// The delegation hot path is built to cost zero heap allocations and O(1)
// work in steady state: invocation records travel by value through
// sequence-stamped rings (no per-operation allocation), wrapper layers
// delegate through static trampolines (no per-call closure), scheduling
// queries read O(1) queue-depth counters, and a small program-context
// buffer batches runs of operations bound for the same delegate so the
// wake-signal cost is amortized across the run.
//
// This package is the engine; the exported user-facing API (wrappers,
// serializers, reducibles) lives in the repository root package prometheus.
package core

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"repro/internal/spsc"
)

// timeNow is a seam kept trivial; trace timestamps flow through it.
func timeNow() time.Time { return time.Now() }

// ProgramContext is the context id of the program thread. Delegate contexts
// are numbered 1..Delegates.
const ProgramContext = 0

type delegate struct {
	id    int // context id (1-based)
	queue *spsc.Queue[Invocation]
}

// Runtime orchestrates parallel execution of delegated operations. All
// methods must be called from the program context (the goroutine that called
// New), except none: delegated closures interact with the runtime only
// through the context id they are handed.
type Runtime struct {
	cfg Config

	delegates []*delegate
	wg        sync.WaitGroup

	// vmap maps virtual delegate -> context id (ProgramContext or 1..D).
	vmap []int

	epoch       uint64 // isolation epochs begun; wrappers version state on it
	inIsolation bool
	terminated  bool

	// dirty[d] is true when delegate d (1-based index d-1) has been sent or
	// buffered work since the last barrier; lets barriers and syncs skip
	// idle queues.
	dirty []bool

	// batch is the program context's delegation buffer (nil when batching
	// is disabled): up to len(batch) consecutive invocations bound for
	// delegate batchCtx, delivered with a single PushBatch. Flushed on
	// target switch, buffer full, synchronization, barrier, epoch
	// transition, and termination — so no operation outlives the program
	// context's next blocking interaction with the runtime.
	batch    []Invocation
	batchLen int
	batchCtx int
	// lastCtx is the destination of the most recent delegation; buffering
	// only engages on the second consecutive delegation to the same busy
	// delegate, so alternating-target streams stay on the direct push path
	// instead of paying a buffer write plus a one-element flush per op.
	lastCtx int

	// setOwner gives the sticky set->context assignment for the
	// LeastLoaded policy within the current epoch.
	setOwner map[uint64]int

	// rec holds the recursive-delegation state (nil unless Config.Recursive).
	rec *recState

	// traceSt holds trace buffers (nil unless Config.Trace).
	traceSt    *traceState
	epochStart time.Time

	stats Stats
	clock phaseClock
}

// New creates and starts a runtime (paper: initialize()). The calling
// goroutine becomes the program context.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:   cfg,
		vmap:  buildAssignment(cfg),
		dirty: make([]bool, cfg.Delegates),
		clock: newPhaseClock(),
	}
	if cfg.Policy == LeastLoaded {
		rt.setOwner = make(map[uint64]int)
	}
	if cfg.Trace {
		rt.traceSt = newTraceState(cfg.Delegates + 1)
	}
	if cfg.Sequential {
		return rt // no delegate goroutines at all in debug mode
	}
	if cfg.Recursive {
		if cfg.ProgramShare != 0 {
			panic("prometheus: ProgramShare is incompatible with Recursive (sets must be delegate-owned)")
		}
		if cfg.Policy != StaticMod {
			panic("prometheus: Recursive requires the StaticMod policy")
		}
		rt.initRecursive()
		return rt
	}
	if cfg.DelegateBatch > 1 {
		rt.batch = make([]Invocation, cfg.DelegateBatch)
	}
	for i := 0; i < cfg.Delegates; i++ {
		d := &delegate{id: i + 1, queue: spsc.NewQueue[Invocation](cfg.QueueCapacity)}
		rt.delegates = append(rt.delegates, d)
		rt.wg.Add(1)
		go rt.delegateLoop(d)
	}
	return rt
}

// buildAssignment constructs the virtual-delegate table (paper §4): the
// first ProgramShare virtual delegates map to the program context, the rest
// round-robin across delegate contexts.
func buildAssignment(cfg Config) []int {
	vmap := make([]int, cfg.VirtualDelegates)
	for v := range vmap {
		if v < cfg.ProgramShare {
			vmap[v] = ProgramContext
		} else {
			vmap[v] = (v-cfg.ProgramShare)%cfg.Delegates + 1
		}
	}
	return vmap
}

// delegateLoop is the body of a delegate context: repeatedly read invocation
// objects from the communication queue and execute them (paper §4).
func (rt *Runtime) delegateLoop(d *delegate) {
	defer rt.wg.Done()
	for {
		inv, ok := d.queue.Pop()
		if !ok { // queue closed and drained
			return
		}
		switch inv.kind {
		case kindMethod:
			inv.invoke(d.id)
		case kindSync:
			close(inv.done)
		case kindTerminate:
			close(inv.done)
			return
		}
	}
}

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// NumContexts returns the number of execution contexts (program + delegates);
// context ids are in [0, NumContexts).
func (rt *Runtime) NumContexts() int { return rt.cfg.Delegates + 1 }

// Epoch returns the current isolation-epoch number. It is 0 before the first
// BeginIsolation; wrappers use it to lazily version their state machines.
func (rt *Runtime) Epoch() uint64 { return rt.epoch }

// InIsolation reports whether an isolation epoch is open.
func (rt *Runtime) InIsolation() bool { return rt.inIsolation }

// BeginIsolation opens an isolation epoch (paper: begin_isolation()).
func (rt *Runtime) BeginIsolation() {
	if rt.terminated {
		panic("prometheus: BeginIsolation after Terminate")
	}
	if rt.inIsolation {
		panic("prometheus: nested BeginIsolation")
	}
	rt.flushBatch()
	rt.epoch++
	rt.inIsolation = true
	rt.stats.Epochs++
	if rt.traceSt != nil {
		rt.epochStart = timeNow()
	}
	if rt.setOwner != nil && len(rt.setOwner) > 0 {
		rt.setOwner = make(map[uint64]int) // new epoch, new partition
	}
	if rt.rec != nil && rt.rec.setProducer != nil && len(rt.rec.setProducer) > 0 {
		rt.rec.setProducer = make(map[uint64]int)
	}
	rt.clock.switchTo(PhaseIsolation, &rt.stats)
}

// EndIsolation synchronizes the program context with all delegate contexts
// and reverts to an aggregation epoch (paper: end_isolation()).
func (rt *Runtime) EndIsolation() {
	if !rt.inIsolation {
		panic("prometheus: EndIsolation without BeginIsolation")
	}
	rt.barrier()
	rt.inIsolation = false
	if rt.traceSt != nil {
		rt.traceSt.record(ProgramContext, TraceEpoch, uint64(rt.epoch), rt.epochStart, timeNow())
	}
	rt.clock.switchTo(PhaseAggregation, &rt.stats)
}

// leastLoaded returns the delegate with the fewest pending operations,
// counting both its queue depth (O(1) from the published counters) and any
// operations still sitting in the delegation buffer for it.
func (rt *Runtime) leastLoaded() int {
	best, bestLen := 1, int(^uint(0)>>1)
	for _, d := range rt.delegates {
		n := d.queue.Len()
		if d.id == rt.batchCtx {
			n += rt.batchLen
		}
		if n < bestLen {
			best, bestLen = d.id, n
		}
	}
	return best
}

// ContextFor returns the context id that operations in the given
// serialization set execute on (or would execute on), under the configured
// policy. It is a pure query: under LeastLoaded an unowned set is not
// assigned an owner — only a delegation does that (see assign).
func (rt *Runtime) ContextFor(set uint64) int {
	if rt.cfg.Sequential {
		return ProgramContext
	}
	if rt.cfg.Policy == LeastLoaded {
		if ctx, ok := rt.setOwner[set]; ok {
			return ctx
		}
		return rt.leastLoaded()
	}
	return rt.vmap[set%uint64(len(rt.vmap))]
}

// assign maps a set to its execution context on the delegation path,
// recording the sticky owner on first use under LeastLoaded so the set
// stays on one delegate for the rest of the epoch. Every other policy
// defers to the pure ContextFor dispatch.
func (rt *Runtime) assign(set uint64) int {
	if rt.setOwner != nil && !rt.cfg.Sequential {
		if ctx, ok := rt.setOwner[set]; ok {
			return ctx
		}
		best := rt.leastLoaded()
		rt.setOwner[set] = best
		return best
	}
	return rt.ContextFor(set)
}

// enqueue delivers a method invocation to delegate ctx, routing it through
// the delegation buffer when batching is enabled.
func (rt *Runtime) enqueue(ctx int, inv Invocation) {
	rt.dirty[ctx-1] = true
	d := rt.delegates[ctx-1]
	if rt.batch == nil {
		d.queue.Push(inv)
		return
	}
	if rt.batchLen > 0 && rt.batchCtx != ctx {
		rt.flushBatch()
	}
	if ctx != rt.lastCtx || (rt.batchLen == 0 && d.queue.Len() == 0) {
		// No same-target run is forming, or the delegate is hungry: hand
		// the operation over immediately rather than trading latency for
		// signal amortization — batching only pays while a run of
		// operations streams to a consumer with a backlog.
		rt.lastCtx = ctx
		d.queue.Push(inv)
		return
	}
	rt.batchCtx = ctx
	rt.batch[rt.batchLen] = inv
	rt.batchLen++
	// Flush on a full buffer, and whenever the delegate is observed to
	// have drained its backlog — a hungry consumer needs the buffered run
	// now, not amortization. A delegate that drains after the last
	// delegation can still leave the tail buffered until the program's
	// next runtime call; every blocking runtime operation flushes first,
	// so the model's synchronization semantics never see the buffer.
	if rt.batchLen == len(rt.batch) || d.queue.Len() == 0 {
		rt.flushBatch()
	}
}

// flushBatch delivers the buffered invocations with a single consumer
// wake-up. Cheap no-op when the buffer is empty.
func (rt *Runtime) flushBatch() {
	if rt.batchLen == 0 {
		return
	}
	d := rt.delegates[rt.batchCtx-1]
	d.queue.PushBatch(rt.batch[:rt.batchLen])
	rt.stats.BatchFlushes++
	rt.stats.BatchedOps += uint64(rt.batchLen)
	// Drop payload references so delivered invocations don't pin their
	// closures and payloads past the flush.
	clear(rt.batch[:rt.batchLen])
	rt.batchLen = 0
}

// Delegate assigns fn to the serialization set's context and returns that
// context id. Operations mapped to the program context (or every operation
// in Sequential mode) run inline, preserving per-set program order.
func (rt *Runtime) Delegate(set uint64, fn func(ctx int)) int {
	if rt.terminated {
		panic("prometheus: Delegate after Terminate")
	}
	fn = rt.traceExec(set, fn)
	if rt.rec != nil {
		rt.stats.Delegations++
		return rt.delegateFrom(ProgramContext, set, fn)
	}
	ctx := rt.assign(set)
	if ctx == ProgramContext {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ctx
	}
	rt.stats.Delegations++
	rt.enqueue(ctx, Invocation{kind: kindMethod, set: set, fn: fn})
	return ctx
}

// DelegateCall is the zero-allocation delegation fast path: instead of a
// closure it takes a static trampoline plus two payload words, written by
// value into the communication ring. Wrapper layers bind one trampoline per
// wrapper type, so a steady-state DelegateCall performs no heap allocation
// and O(1) work. Tracing and recursive mode fall back to the closure path
// (both are off the measured configuration, as in the paper's evaluation).
func (rt *Runtime) DelegateCall(set uint64, tr Trampoline, p1, p2 unsafe.Pointer) int {
	if rt.terminated {
		panic("prometheus: Delegate after Terminate")
	}
	if rt.traceSt != nil || rt.rec != nil {
		return rt.Delegate(set, func(ctx int) { tr(ctx, p1, p2) })
	}
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		tr(ProgramContext, p1, p2)
		return ProgramContext
	}
	ctx := rt.assign(set)
	if ctx == ProgramContext {
		rt.stats.InlineExecs++
		tr(ProgramContext, p1, p2)
		return ctx
	}
	rt.stats.Delegations++
	rt.enqueue(ctx, Invocation{kind: kindMethod, set: set, tramp: tr, p1: p1, p2: p2})
	return ctx
}

// DelegateFrom routes a delegation issued by an arbitrary execution context
// (recursive delegation). producer must be the context id actually running
// the call. Requires Config.Recursive (or Sequential debug mode).
func (rt *Runtime) DelegateFrom(producer int, set uint64, fn func(ctx int)) int {
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ProgramContext
	}
	if rt.rec == nil {
		panic("prometheus: recursive delegation requires the Recursive option")
	}
	return rt.delegateFrom(producer, set, rt.traceExec(set, fn))
}

// Recursive reports whether recursive delegation is enabled.
func (rt *Runtime) Recursive() bool { return rt.rec != nil }

// SyncContext blocks until the given delegate context has executed every
// invocation enqueued before this call (paper: synchronization objects). It
// is how the program context reclaims ownership of a data domain. Syncing
// the program context is a no-op.
func (rt *Runtime) SyncContext(ctx int) {
	if ctx == ProgramContext || rt.cfg.Sequential {
		return
	}
	if rt.rec != nil {
		// Under recursion a single-lane sync cannot witness work produced
		// by other contexts; fall back to the quiescence barrier.
		rt.stats.Syncs++
		rt.recBarrier()
		return
	}
	if ctx < 1 || ctx > len(rt.delegates) {
		panic(fmt.Sprintf("prometheus: SyncContext(%d) out of range", ctx))
	}
	rt.flushBatch()
	if !rt.dirty[ctx-1] {
		return
	}
	rt.stats.Syncs++
	done := make(chan struct{})
	rt.delegates[ctx-1].queue.Push(Invocation{kind: kindSync, done: done})
	<-done
	rt.dirty[ctx-1] = false
}

// SyncSet blocks until all outstanding operations in the given serialization
// set have completed. Under the LeastLoaded policy, a set that was never
// delegated this epoch has no owner and nothing to wait for.
func (rt *Runtime) SyncSet(set uint64) {
	if rt.setOwner != nil {
		if ctx, ok := rt.setOwner[set]; ok {
			rt.SyncContext(ctx)
		}
		return
	}
	rt.SyncContext(rt.ContextFor(set))
}

// barrier waits for every delegate to drain its queue.
func (rt *Runtime) barrier() {
	if rt.cfg.Sequential {
		return
	}
	rt.stats.Barriers++
	if rt.rec != nil {
		rt.recBarrier()
		return
	}
	rt.flushBatch()
	dones := make([]chan struct{}, 0, len(rt.delegates))
	for i, d := range rt.delegates {
		if !rt.dirty[i] {
			continue
		}
		done := make(chan struct{})
		d.queue.Push(Invocation{kind: kindSync, done: done})
		dones = append(dones, done)
	}
	for _, done := range dones {
		<-done
	}
	for i := range rt.dirty {
		rt.dirty[i] = false
	}
}

// Sleep quiesces the delegate contexts during a long aggregation epoch
// (paper: sleep()). Delegates with empty queues park automatically in this
// implementation, so Sleep reduces to a barrier that guarantees they have
// all drained and parked.
func (rt *Runtime) Sleep() {
	if rt.inIsolation {
		panic("prometheus: Sleep during isolation epoch")
	}
	rt.barrier()
}

// RunParallel executes the given tasks on the delegate pool, round-robin,
// and waits for completion. The runtime uses it for parallel reductions
// (paper §2.2: N/2 combine operations per step run concurrently). ctx ids
// are passed through so tasks can address per-context state. Must be called
// during an aggregation epoch. In Sequential mode tasks run inline, in
// order.
func (rt *Runtime) RunParallel(tasks []func(ctx int)) {
	if rt.inIsolation {
		panic("prometheus: RunParallel during isolation epoch")
	}
	if rt.cfg.Sequential || (len(rt.delegates) == 0 && rt.rec == nil) {
		for _, t := range tasks {
			t(ProgramContext)
		}
		return
	}
	if rt.rec != nil {
		for i, t := range tasks {
			d := rt.rec.delegates[i%len(rt.rec.delegates)]
			rt.rec.enqueued.Add(1)
			d.lanes[ProgramContext].Push(Invocation{kind: kindMethod, fn: t})
			d.signal()
		}
		rt.recBarrier()
		return
	}
	rt.flushBatch()
	for i, t := range tasks {
		d := rt.delegates[i%len(rt.delegates)]
		rt.dirty[d.id-1] = true
		d.queue.Push(Invocation{kind: kindMethod, fn: t})
	}
	rt.barrier()
}

// EnterReduction switches phase accounting to reduction time; the matching
// ExitReduction returns to aggregation. Used by the reducible framework so
// Figure 5a can separate reduction cost.
func (rt *Runtime) EnterReduction() { rt.clock.switchTo(PhaseReduction, &rt.stats) }

// ExitReduction ends a reduction accounting span.
func (rt *Runtime) ExitReduction() { rt.clock.switchTo(PhaseAggregation, &rt.stats) }

// Stats returns a snapshot of the runtime counters with the current phase's
// elapsed time folded in.
func (rt *Runtime) Stats() Stats {
	st := rt.stats
	clk := rt.clock
	clk.switchTo(clk.phase, &st) // charge the open span without mutating rt
	return st
}

// Terminate shuts the runtime down (paper: terminate()). It sends
// termination objects to all delegates, waits for them to finish outstanding
// work, and reclaims the goroutines. The runtime is unusable afterwards.
func (rt *Runtime) Terminate() {
	if rt.terminated {
		return
	}
	if rt.inIsolation {
		rt.EndIsolation()
	}
	rt.terminated = true
	if rt.rec != nil {
		rt.recTerminate()
		rt.wg.Wait()
		rt.clock.switchTo(PhaseAggregation, &rt.stats)
		return
	}
	rt.flushBatch()
	for _, d := range rt.delegates {
		done := make(chan struct{})
		d.queue.Push(Invocation{kind: kindTerminate, done: done})
		<-done
		d.queue.Close()
	}
	rt.wg.Wait()
	rt.clock.switchTo(PhaseAggregation, &rt.stats)
}
