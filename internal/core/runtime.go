// Package core implements the Prometheus runtime for the serialization-sets
// execution model (Allen, Sridharan & Sohi, PPoPP 2009): a program context
// that delegates operations, a pool of delegate contexts each fed by a
// private FastForward-style SPSC queue, virtual-delegate assignment, epoch
// management, ownership synchronization, and per-phase instrumentation.
//
// The delegation hot path is built to cost zero heap allocations and O(1)
// work in steady state: invocation records travel by value through
// sequence-stamped rings (no per-operation allocation), wrapper layers
// delegate through static trampolines (no per-call closure), scheduling
// queries read O(1) queue-depth counters, and a small program-context
// buffer batches runs of operations bound for the same delegate so the
// wake-signal cost is amortized across the run.
//
// This package is the engine; the exported user-facing API (wrappers,
// serializers, reducibles) lives in the repository root package prometheus.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/spsc"
)

// timeNow is a seam kept trivial; trace timestamps flow through it.
func timeNow() time.Time { return time.Now() }

// ProgramContext is the context id of the program thread. Delegate contexts
// are numbered 1..Delegates.
const ProgramContext = 0

type delegate struct {
	id    int // context id (1-based)
	queue *spsc.Queue[Invocation]

	// executed publishes how many method invocations this delegate has
	// finished running (the counter is stored after each invoke returns).
	// Together with the program context's sent counter it gives the
	// delegate's true occupancy — queued plus in-flight work — and is the
	// safety condition for set handoff: a set whose last delegated operation
	// has position <= executed has nothing pending or running here, so
	// re-owning it cannot reorder the set.
	executed atomic.Uint64

	// drainBatches/drainedOps count the batched drains (PopBatch runs) this
	// delegate performed; aggregated into Stats by the program context.
	drainBatches atomic.Uint64
	drainedOps   atomic.Uint64
}

// Runtime orchestrates parallel execution of delegated operations. All
// methods must be called from the program context (the goroutine that called
// New), except none: delegated closures interact with the runtime only
// through the context id they are handed.
type Runtime struct {
	// cfg is the effective configuration. All fields are immutable after
	// New EXCEPT Delegates, which the program context rewrites at the
	// epoch boundary that applies a Reconfigure (applyReconfig). Plain
	// reads of cfg.Delegates are sound only on the program context or
	// inside delegated operations (the lane/queue push-pop atomics carry
	// the happens-before edge from the post-barrier write to any op
	// delegated after it); any other reader — idle drain-loop samplers,
	// metrics scrapes — must use the atomic active counter instead.
	cfg Config

	// delegates holds the FULL pre-allocated pool: MaxDelegates structs
	// and queues built at New, goroutines spawned only for the active
	// prefix [0, cfg.Delegates). The slice itself is never reallocated or
	// resliced, which is what lets any goroutine range a prefix of it.
	delegates []*delegate
	wg        sync.WaitGroup

	// active mirrors cfg.Delegates behind an atomic, for readers with no
	// happens-before edge to the program context's epoch-boundary write
	// (imbalance samplers in idle spin loops, QueueDepths on metrics
	// scrapes, recursive re-home decisions on delegate producers). 0 in
	// Sequential mode.
	active atomic.Int32

	// Runtime-mutable configuration, cc-relay style: Reconfigure
	// validates and Stores the desired state into pendingCfg from any
	// goroutine; the program context Swaps it out and applies it at the
	// next BeginIsolation, then publishes the effective state through
	// runtimeCfg (the Get side).
	pendingCfg atomic.Pointer[RuntimeConfig]
	runtimeCfg atomic.Pointer[RuntimeConfig]

	// baseThr is the current StealThreshold base — cfg.StealThreshold
	// until a Reconfigure rebases it. Atomic because the drain-loop
	// samplers (noteImbalance) read it concurrently with the program
	// context's epoch-boundary rebase.
	baseThr atomic.Int64

	// vmap maps virtual delegate -> context id (ProgramContext or 1..D).
	vmap []int

	epoch       uint64 // isolation epochs begun; wrappers version state on it
	inIsolation bool
	terminated  bool

	// dirty[d] is true when delegate d (1-based index d-1) has been sent or
	// buffered work since the last barrier; lets barriers and syncs skip
	// idle queues.
	dirty []bool

	// batch is the program context's delegation buffer (nil when batching
	// is disabled): up to len(batch) consecutive invocations bound for
	// delegate batchCtx, delivered with a single PushBatch. Flushed on
	// target switch, buffer full, synchronization, barrier, epoch
	// transition, and termination — so no operation outlives the program
	// context's next blocking interaction with the runtime.
	batch    []Invocation
	batchLen int
	batchCtx int
	// lastCtx is the destination of the most recent delegation; buffering
	// only engages on the second consecutive delegation to the same busy
	// delegate, so alternating-target streams stay on the direct push path
	// instead of paying a buffer write plus a one-element flush per op.
	lastCtx int

	// setOwner gives the sticky set->context assignment for the LeastLoaded
	// policy within the current epoch. Entries are pointers so the steady
	// state — re-reading an owned set's entry and bumping its lastPos —
	// performs one map read and no map write per delegation.
	setOwner map[uint64]*setEntry

	// sent[d] counts the method invocations the program context has routed
	// to delegate d+1 (buffered delegations count at buffer time: they are
	// committed to that queue). sent minus the delegate's executed counter
	// is its occupancy; per-set positions recorded against sent implement
	// the safe-handoff check. Program-context private.
	sent []uint64

	// rec holds the recursive-delegation state (nil unless Config.Recursive).
	rec *recState

	// adaptiveThr is the effective StealThreshold under AdaptiveSteal,
	// re-derived by drain-loop samplers from imbalanceEWMA (recsteal.go);
	// it starts at the configured base. imbalanceEWMA tracks the max/min
	// delegate-occupancy ratio in ewmaFP fixed point; thresholdAdjusts
	// counts effective-threshold changes (Stats.ThresholdAdjusts).
	adaptiveThr      atomic.Int64
	imbalanceEWMA    atomic.Int64
	thresholdAdjusts atomic.Uint64

	// faults is the fault-containment record (fault.go): nil until the
	// first contained panic, so the fault-free hot path pays one atomic
	// load and no allocation.
	faults atomic.Pointer[faultState]

	// traceSt holds trace buffers (nil unless Config.Trace).
	traceSt    *traceState
	epochStart time.Time

	stats Stats
	clock phaseClock
}

// setEntry is the owner-table record of one serialization set under the
// LeastLoaded policy: the sticky owning context and the per-owner position
// (that context's sent count) of the set's newest delegated operation. A set
// is quiescent on its owner — and therefore safe to hand off — once the
// owner's executed counter has reached lastPos. ops counts the set's
// delegations this epoch; BeginIsolation ranks the closing epoch's sets by
// it to pre-place the hottest ones (hot-set seeding, stealing only).
type setEntry struct {
	ctx     int
	lastPos uint64
	ops     uint64
	// poison caches the fault that poisoned this set (fault.go) — nil
	// unless one occurred, so the fault-free entry stays three words and
	// the rebalancer's and hot-seeder's exclusion checks are a nil compare.
	// Program-context-private like the rest of the entry; the global
	// copy-on-write poison table is the source of truth.
	poison *PanicFault
}

// New creates and starts a runtime (paper: initialize()). The calling
// goroutine becomes the program context.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	cfg.validate()
	rt := &Runtime{
		cfg:   cfg,
		vmap:  buildAssignment(cfg),
		dirty: make([]bool, cfg.MaxDelegates),
		clock: newPhaseClock(),
	}
	rt.baseThr.Store(int64(cfg.StealThreshold))
	rt.adaptiveThr.Store(int64(cfg.StealThreshold))
	rt.imbalanceEWMA.Store(ewmaFP) // ratio 1.0: assume balance until sampled
	rt.runtimeCfg.Store(&RuntimeConfig{Delegates: cfg.Delegates, StealThreshold: cfg.StealThreshold})
	if cfg.Policy == LeastLoaded && !cfg.Recursive {
		rt.setOwner = make(map[uint64]*setEntry)
		rt.sent = make([]uint64, cfg.MaxDelegates)
	}
	if cfg.Trace {
		rt.traceSt = newTraceState(cfg.MaxDelegates + 1)
	}
	if cfg.Sequential {
		return rt // no delegate goroutines at all in debug mode
	}
	rt.active.Store(int32(cfg.Delegates))
	if cfg.Recursive {
		rt.initRecursive()
		return rt
	}
	if cfg.DelegateBatch > 1 {
		rt.batch = make([]Invocation, cfg.DelegateBatch)
	}
	// Build the FULL pool up front — structs and queues for MaxDelegates —
	// but spawn drain goroutines only for the initial active prefix. A
	// later Resize activates pre-built delegates (or parks active ones)
	// without allocating, so NumContexts and every per-context array sized
	// from it stay valid for the runtime's whole life.
	for i := 0; i < cfg.MaxDelegates; i++ {
		d := &delegate{id: i + 1, queue: spsc.NewQueue[Invocation](cfg.QueueCapacity)}
		rt.delegates = append(rt.delegates, d)
	}
	for i := 0; i < cfg.Delegates; i++ {
		rt.wg.Add(1)
		go rt.delegateLoop(rt.delegates[i])
	}
	return rt
}

// buildAssignment constructs the virtual-delegate table (paper §4): the
// first ProgramShare virtual delegates map to the program context, the rest
// round-robin across delegate contexts.
func buildAssignment(cfg Config) []int {
	vmap := make([]int, cfg.VirtualDelegates)
	for v := range vmap {
		if v < cfg.ProgramShare {
			vmap[v] = ProgramContext
		} else {
			vmap[v] = (v-cfg.ProgramShare)%cfg.Delegates + 1
		}
	}
	return vmap
}

// delegateLoop is the body of a delegate context: repeatedly read invocation
// objects from the communication queue and execute them (paper §4).
//
// The loop is the consumer half of the batching story: one blocking Pop per
// wake, then runs of up to drainBatchSize invocations popped with PopBatch
// and executed back to back — without re-arming the park/wake machinery or
// paying the per-operation popped-counter publish — until the backlog is
// drained. A saturated delegate therefore touches the shared counters twice
// per run instead of twice per operation, mirroring PushBatch on the
// producer side.
func (rt *Runtime) delegateLoop(d *delegate) {
	defer rt.wg.Done()
	buf := make([]Invocation, drainBatchSize)
	// Seed the local executed count from the published counter: a delegate
	// respawned by a scale-up resumes the monotone sequence its previous
	// incarnation parked at, so every occupancy and quiescence proof built
	// on sent-vs-executed stays exact across park/respawn cycles.
	executed := d.executed.Load()
	adaptive := rt.cfg.Stealing && rt.cfg.AdaptiveSteal
	inject := rt.cfg.FaultInjector
	sampleTick := 0
	for {
		inv, ok := d.queue.Pop()
		if !ok { // queue closed and drained
			return
		}
		buf[0] = inv
		if !rt.executeAll(d, buf, 1, &executed, inject) {
			return
		}
		clear(buf[:1])
		for {
			n := d.queue.PopBatch(buf)
			if n == 0 {
				break
			}
			d.drainBatches.Add(1)
			d.drainedOps.Add(uint64(n))
			if !rt.executeAll(d, buf, n, &executed, inject) {
				clear(buf[:n])
				return
			}
			// Drop payload references so executed invocations don't pin
			// their closures and payloads until the buffer is refilled.
			clear(buf[:n])
			if adaptive {
				// Every imbalanceSampleStride-th drain-run boundary: feed the
				// queue-depth spread across the pool into the in-epoch
				// steal-threshold EWMA.
				if sampleTick++; sampleTick >= imbalanceSampleStride {
					sampleTick = 0
					rt.sampleImbalanceFlat()
				}
			}
		}
	}
}

// executeAll runs buf[:n] on d in recover()-protected spans, re-entering
// after each contained panic so the delegate survives the fault and the
// rest of the batch still runs. The fault state is reloaded at each span
// entry — once on the fault-free path — so a fault anywhere in the batch
// poisons the remainder of its set's operations in the SAME batch, keeping
// the deterministic-skip point exact. Returns false when a termination
// object was served.
func (rt *Runtime) executeAll(d *delegate, buf []Invocation, n int, executed *uint64, inject func(int, uint64)) bool {
	i := 0
	for i < n {
		fs := rt.faults.Load()
		next, term := rt.execSpan(d, buf, i, n, executed, fs, inject)
		if term {
			return false
		}
		i = next
	}
	return true
}

// execSpan runs buf[start:n] under one deferred recover — the whole batch
// in the fault-free case, so panic isolation costs one defer per drain run,
// not per operation. The executed counter is stored — not added — because
// the delegate is its only writer; the store after invoke returns is what
// makes the occupancy and safe-handoff reads on the program context sound:
// observing executed >= p proves every method invocation up to position p
// has completed, and the acquire load orders its effects before anything
// the observer publishes afterwards (in particular a handed-off set's next
// operation).
//
// A recovered panic records the fault (poisoning the set) and then counts
// the faulted operation as executed, so quiescence proofs and barriers
// never wedge on it; the counter publish after recordPanic is the
// happens-before edge that makes the poison visible to any context that
// later proves the operation executed. Operations of a poisoned set are
// skipped-but-counted here too — the owner wrote the poison itself (a
// poisoned set is never stolen), so the drain-side check deterministically
// catches everything a racing producer already had in flight.
func (rt *Runtime) execSpan(d *delegate, buf []Invocation, start, n int, executed *uint64, fs *faultState, inject func(int, uint64)) (next int, terminated bool) {
	i := start
	defer func() {
		if v := recover(); v != nil {
			rt.recordPanic(d.id, buf[i].set, v)
			*executed++
			d.executed.Store(*executed)
			next, terminated = i+1, false
		}
	}()
	for ; i < n; i++ {
		inv := &buf[i]
		switch inv.kind {
		case kindMethod:
			if fs != nil && inv.set != noSetID && fs.lookup(inv.set) != nil {
				fs.dropped.Add(1)
				*executed++
				d.executed.Store(*executed)
				continue
			}
			if inject != nil {
				inject(d.id, inv.set)
			}
			inv.invoke(d.id)
			*executed++
			d.executed.Store(*executed)
		case kindSync:
			close(inv.done)
		case kindTerminate:
			close(inv.done)
			return i, true
		}
	}
	return n, false
}

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// NumContexts returns the number of execution contexts (program + delegate
// CAPACITY); context ids are in [0, NumContexts). It reports MaxDelegates+1
// — the pre-allocated pool ceiling, not the live size — and is immutable
// for the runtime's whole life, so per-context arrays sized from it at
// construction (reducible views, Ctx tables) stay valid across every
// Resize. Use ActiveDelegates for the live pool size.
func (rt *Runtime) NumContexts() int { return rt.cfg.MaxDelegates + 1 }

// ActiveDelegates returns the number of currently-active delegate contexts
// (0 in Sequential mode). Safe from any goroutine.
func (rt *Runtime) ActiveDelegates() int { return int(rt.active.Load()) }

// Epoch returns the current isolation-epoch number. It is 0 before the first
// BeginIsolation; wrappers use it to lazily version their state machines.
func (rt *Runtime) Epoch() uint64 { return rt.epoch }

// InIsolation reports whether an isolation epoch is open.
func (rt *Runtime) InIsolation() bool { return rt.inIsolation }

// BeginIsolation opens an isolation epoch (paper: begin_isolation()).
func (rt *Runtime) BeginIsolation() {
	if rt.terminated {
		panic("prometheus: BeginIsolation after Terminate")
	}
	if rt.inIsolation {
		panic("prometheus: nested BeginIsolation")
	}
	rt.flushBatch()
	rt.epoch++
	rt.inIsolation = true
	rt.stats.Epochs++
	if rt.traceSt != nil {
		rt.epochStart = timeNow()
	}
	rt.applyReconfig()
	if rt.cfg.AdaptiveSteal {
		// The imbalance EWMA and the threshold/ratio it derives are
		// documented as IN-epoch adaptation, and the samples they were
		// built from describe the closing epoch's placement — including
		// delegates that have since drained and parked, whose stale
		// minima would otherwise keep a spun-down pool's skew (or
		// balance) alive into a workload that no longer has it. A new
		// epoch starts from the configured base and re-learns its own
		// spread within a few drain runs. The base is read through baseThr
		// (not cfg) so a Reconfigure'd threshold — applied just above —
		// takes effect this epoch.
		rt.imbalanceEWMA.Store(ewmaFP)
		rt.adaptiveThr.Store(rt.baseThr.Load())
	}
	if rt.setOwner != nil && len(rt.setOwner) > 0 {
		rt.seedHotSets() // new epoch, new partition (pre-placed hot sets)
	}
	if rt.rec != nil {
		if rt.rec.producers != nil {
			rt.rec.producers.reset()
		}
		if rt.rec.steal != nil {
			// Producers are sized to the pool CAPACITY (every context that
			// could ever produce), independent of the active count.
			rt.stats.HotSetsPlaced += uint64(rt.rec.steal.reseed(rt.cfg.Delegates, len(rt.rec.enq)))
		}
	}
	if fs := rt.faults.Load(); fs != nil {
		// Poisoning is epoch-scoped: the new epoch starts with a clean
		// slate (fault records persist). Cleared AFTER the owner tables were
		// rebuilt above, so the hot-set seeders could still exclude the
		// closing epoch's poisoned sets.
		fs.resetPoison()
	}
	rt.clock.switchTo(PhaseIsolation, &rt.stats)
}

// EndIsolation synchronizes the program context with all delegate contexts
// and reverts to an aggregation epoch (paper: end_isolation()).
func (rt *Runtime) EndIsolation() {
	if !rt.inIsolation {
		panic("prometheus: EndIsolation without BeginIsolation")
	}
	rt.barrier()
	rt.inIsolation = false
	if rt.traceSt != nil {
		rt.traceSt.record(ProgramContext, TraceEpoch, uint64(rt.epoch), rt.epochStart, timeNow())
	}
	rt.clock.switchTo(PhaseAggregation, &rt.stats)
}

// Resize requests the delegate pool be resized to n active delegates. The
// request is validated immediately and recorded; the PROGRAM CONTEXT
// applies it at the next BeginIsolation — the engine's quiescent point,
// where the epoch barrier has proven no operation in flight, every owner
// table is about to rebuild, and hot sets re-place across whatever pool
// opens the epoch. Safe from any goroutine; concurrent requests follow
// last-store-wins (Get/Store semantics on the runtime config pointer).
func (rt *Runtime) Resize(n int) error {
	return rt.Reconfigure(RuntimeConfig{Delegates: n})
}

// Reconfigure records a runtime-mutable configuration change (pool size,
// steal-threshold base) to be applied at the next epoch boundary. Zero
// fields keep their current setting. Safe from any goroutine. Returns a
// descriptive error — never a deferred panic — when the target is outside
// what the pre-allocated pool can honor.
func (rt *Runtime) Reconfigure(rc RuntimeConfig) error {
	if err := rt.cfg.validateReconfig(rc); err != nil {
		return err
	}
	c := rc
	rt.pendingCfg.Store(&c)
	return nil
}

// RuntimeConfig returns the current effective runtime-mutable
// configuration (the Get side of the atomic config pointer). Safe from any
// goroutine; a pending Reconfigure is reflected only after the epoch
// boundary that applies it.
func (rt *Runtime) RuntimeConfig() RuntimeConfig { return *rt.runtimeCfg.Load() }

// applyReconfig applies a pending Reconfigure at the epoch boundary.
// Called by BeginIsolation on the program context, BEFORE the adaptive
// threshold reset (so a rebased threshold seeds this epoch's EWMA) and
// before the owner tables rebuild and hot sets re-place (so placement
// state is constructed for the NEW pool, never patched afterwards).
//
// Scale-up activates pre-built delegates: spawn their drain goroutines,
// widen the assignment table, and let this epoch's seeding spread hot sets
// across the larger pool. Scale-down is the forced-evacuation argument in
// pool form: the barrier below proves every set quiescent on every
// delegate — the same whole-set handoff boundary the stealer uses, applied
// to all sets at once — so the retiring delegates' sets are re-placed by
// the very table rebuild this epoch performs anyway, and the retirees park
// permanently with provably empty queues and balanced lane ledgers.
func (rt *Runtime) applyReconfig() {
	rc := rt.pendingCfg.Swap(nil)
	if rc == nil {
		return
	}
	if rc.StealThreshold > 0 {
		rt.baseThr.Store(int64(rc.StealThreshold))
	}
	n := rc.Delegates
	if n == 0 {
		n = rt.cfg.Delegates
	}
	old := rt.cfg.Delegates
	if n != old {
		rt.resizePool(n, old)
	}
	eff := RuntimeConfig{Delegates: n, StealThreshold: int(rt.baseThr.Load())}
	rt.runtimeCfg.Store(&eff)
}

// resizePool performs the pool-size half of applyReconfig: barrier, count
// evacuees, park or spawn, republish. Program context only, at the top of
// an isolation epoch.
func (rt *Runtime) resizePool(n, old int) {
	// Prove the OLD pool quiescent first. BeginIsolation does not imply a
	// barrier on its own (aggregation-epoch delegations may still be in
	// flight); the resize point must be one.
	if rt.rec != nil {
		rt.recBarrier()
	} else {
		rt.barrier()
	}
	// Count the sets a scale-down evacuates off retiring delegates. The
	// barrier proved them quiescent everywhere, so "evacuation" is exact
	// re-placement by the epoch's table rebuild — nothing is copied or
	// drained here; the count is the observability record of how much
	// placement state the shrink displaced.
	evacuated := 0
	if n < old {
		if rt.setOwner != nil {
			for _, e := range rt.setOwner {
				if e.ctx > n {
					evacuated++
				}
			}
		} else if rt.rec != nil && rt.rec.steal != nil {
			rt.rec.steal.owners.Load().forEach(func(_ uint64, e *recSetEntry) {
				if int(e.owner.Load()) > n {
					evacuated++
				}
			})
		} else {
			// Static placement: count assignment-table slots that pointed
			// at retiring delegates (the sets behind them are unbounded;
			// the slots are the placement state being displaced).
			for _, ctx := range rt.vmap {
				if ctx > n {
					evacuated++
				}
			}
		}
		rt.parkDelegates(n, old)
	}
	// The assignment table, owner tables, and hot-set seeding all derive
	// from cfg.Delegates: rewrite it, publish the atomic mirror, and
	// rebuild the static table before any of them run for this epoch.
	rt.cfg.Delegates = n
	rt.active.Store(int32(n))
	rt.vmap = buildAssignment(rt.cfg)
	if n > old {
		for i := old; i < n; i++ {
			rt.wg.Add(1)
			if rt.rec != nil {
				go rt.recLoop(rt.rec.delegates[i])
			} else {
				go rt.delegateLoop(rt.delegates[i])
			}
		}
	}
	rt.stats.Resizes++
	rt.stats.ResizeEvacuatedSets += uint64(evacuated)
	if ts := rt.traceSt; ts != nil {
		ts.recordResizeEvent(uint64(n), rt.epoch, timeNow())
	}
}

// parkDelegates retires delegates n..old-1: each is sent a termination
// object and its goroutine exits once served. Queues and lane state are
// NOT torn down — a later scale-up respawns the loop over the same
// structures, resuming the published counters where they stopped. In
// Checked mode the quiescence the caller's barrier proved is re-asserted
// per retiree: an empty queue in flat mode, balanced per-lane sent/exec
// ledgers in recursive mode — no lane traffic survives a retired delegate.
func (rt *Runtime) parkDelegates(n, old int) {
	if rt.rec != nil {
		rec := rt.rec
		for i := n; i < old; i++ {
			d := rec.delegates[i]
			done := make(chan struct{})
			rt.recSend(d, Invocation{kind: kindTerminate, done: done})
			rt.waitDone(done)
			if rt.cfg.Checked && rec.steal != nil {
				for p := range d.laneExec {
					sent := rec.steal.laneSent[i][p].n.Load()
					exec := d.laneExec[p].Load()
					if sent != exec {
						panic(fmt.Sprintf(
							"prometheus: resize: retiring delegate %d parked with lane %d unbalanced (sent=%d exec=%d) — traffic survived a retired delegate",
							d.id, p, sent, exec))
					}
				}
			}
		}
		return
	}
	for i := n; i < old; i++ {
		d := rt.delegates[i]
		if rt.cfg.Checked && d.queue.Len() != 0 {
			panic(fmt.Sprintf(
				"prometheus: resize: retiring delegate %d has %d queued operations after the resize barrier",
				d.id, d.queue.Len()))
		}
		done := make(chan struct{})
		d.queue.Push(Invocation{kind: kindTerminate, done: done})
		rt.waitDone(done)
		rt.dirty[i] = false
	}
}

// seedHotSets replaces the flat owner table for a new epoch. Under
// stealing, the closing epoch's hottest sets (by delegated-op count) are
// pre-placed round-robin across delegates instead of letting first-touch
// assignment pile them onto whichever delegate looked emptiest at epoch
// start — at that instant every queue reads zero and ties all resolve to
// the same context. Seeded entries carry lastPos 0, so they are quiescent
// and free to migrate immediately if the prediction was wrong.
func (rt *Runtime) seedHotSets() {
	var hot []hotSeed
	if rt.cfg.Stealing {
		fs := rt.faults.Load()
		for set, e := range rt.setOwner {
			if e.poison != nil || (fs != nil && fs.lookup(set) != nil) {
				continue // poisoned sets are never hot-seeded
			}
			if e.ops > 0 {
				hot = append(hot, hotSeed{set: set, ops: e.ops})
			}
		}
		hot = topHotSeeds(hot, hotSeedCount(rt.cfg.Delegates))
	}
	rt.setOwner = make(map[uint64]*setEntry)
	for i, h := range hot {
		rt.setOwner[h.set] = &setEntry{ctx: i%rt.cfg.Delegates + 1}
	}
	rt.stats.HotSetsPlaced += uint64(len(hot))
}

// leastLoaded returns the delegate with the fewest pending operations,
// counting both its queue depth (O(1) from the published counters) and any
// operations still sitting in the delegation buffer for it.
func (rt *Runtime) leastLoaded() int {
	best, bestLen := 1, int(^uint(0)>>1)
	for _, d := range rt.delegates[:rt.cfg.Delegates] {
		n := d.queue.Len()
		if d.id == rt.batchCtx {
			n += rt.batchLen
		}
		if n < bestLen {
			best, bestLen = d.id, n
		}
	}
	return best
}

// ContextFor returns the context id that operations in the given
// serialization set execute on (or would execute on), under the configured
// policy. It is a pure query: under LeastLoaded an unowned set is not
// assigned an owner — only a delegation does that (see assign).
func (rt *Runtime) ContextFor(set uint64) int {
	if rt.cfg.Sequential {
		return ProgramContext
	}
	if rt.rec != nil {
		if st := rt.rec.steal; st != nil {
			if e := st.owners.Load().lookup(set); e != nil {
				return int(e.owner.Load())
			}
		}
		return rt.vmap[set%uint64(len(rt.vmap))]
	}
	if rt.cfg.Policy == LeastLoaded {
		if e, ok := rt.setOwner[set]; ok {
			return e.ctx
		}
		return rt.leastLoaded()
	}
	return rt.vmap[set%uint64(len(rt.vmap))]
}

// assign maps a set to its execution context on the delegation path,
// recording the sticky owner on first use under LeastLoaded so the set
// stays on one delegate for the rest of the epoch. The returned entry is
// non-nil exactly when the set is owner-tracked; callers that enqueue must
// then record the operation's position with notePosition. Every other
// policy defers to the pure ContextFor dispatch.
func (rt *Runtime) assign(set uint64) (int, *setEntry) {
	if rt.setOwner != nil && !rt.cfg.Sequential {
		if e, ok := rt.setOwner[set]; ok {
			if rt.cfg.Stealing {
				rt.maybeSteal(set, e)
			}
			return e.ctx, e
		}
		best := rt.leastLoaded()
		e := &setEntry{ctx: best}
		rt.setOwner[set] = e
		return best, e
	}
	return rt.ContextFor(set), nil
}

// outstanding returns delegate ctx's occupancy: method invocations routed to
// it (including any still in the delegation buffer) that have not finished
// executing. O(1) — one program-private counter minus one atomic load.
func (rt *Runtime) outstanding(ctx int) uint64 {
	return rt.sent[ctx-1] - rt.delegates[ctx-1].executed.Load()
}

// maybeSteal is the occupancy-aware rebalancer, run on every delegation to
// an owned set when Stealing is on. If the set's owner has a backlog of at
// least StealThreshold and the set itself is quiescent there (its newest
// operation has executed, so nothing of it is queued or running), the set —
// the whole set, never an individual invocation — is handed off to the
// delegate with the smallest occupancy, provided that thief is idle or at
// most a quarter as loaded as the victim. The handoff point is a quiescent
// boundary by construction, so per-set program order is preserved: every
// operation delegated before the steal has completed on the victim before
// the first operation after it is enqueued on the thief.
//
// The common case — owner below threshold — costs one atomic load and a
// compare; the O(Delegates) occupancy scan runs only on a loaded owner.
func (rt *Runtime) maybeSteal(set uint64, e *setEntry) {
	v := e.ctx
	vOut := rt.outstanding(v)
	if vOut < uint64(rt.stealThreshold()) {
		return
	}
	if e.lastPos > rt.delegates[v-1].executed.Load() {
		return // the set has work queued or in flight on its owner
	}
	if e.poison != nil {
		return // poisoned sets are never stolen
	}
	if fs := rt.faults.Load(); fs != nil {
		// Re-check the global table AFTER the quiescence read: the producer's
		// delegation-time drop check may have raced the fault, but observing
		// the faulted operation executed (the line above) happens-after the
		// poison store (execSpan publishes the counter after recordPanic), so
		// this lookup deterministically sees it — a poisoned set can never be
		// stolen, and its backlog always drains on the owner that wrote the
		// poison.
		if f := fs.lookup(set); f != nil {
			e.poison = f
			return
		}
	}
	thief, tOut := 0, ^uint64(0)
	for _, d := range rt.delegates[:rt.cfg.Delegates] {
		if d.id == v {
			continue
		}
		if o := rt.outstanding(d.id); o < tOut {
			thief, tOut = d.id, o
		}
	}
	if thief == 0 || tOut*rt.stealRatio() > vOut {
		return // no peer meaningfully less occupied than the victim
	}
	e.ctx = thief
	rt.stats.Steals++
	if ts := rt.traceSt; ts != nil {
		now := timeNow()
		ts.record(ProgramContext, TraceSteal, set, now, now)
	}
}

// evacWaitBudget bounds the parked forced-evacuation wait: the total time a
// producer stays subscribed to target delegates' coverage broadcasts before
// falling back to retry-per-delegation. The bound exists because the wait
// parks this delegate's drain loop: two delegates each waiting on coverage
// only the other can publish would otherwise block forever — a hazard only a
// program already blocking mid-operation in two places can construct, but
// one the engine must not convert from unlikely to permanent. Generous
// relative to a drain-run's latency (microseconds), tiny relative to the
// serving tier's drain deadline.
const evacWaitBudget = 50 * time.Millisecond

// waitRecOutboundCoverage is the liveness half of the forced evacuation: a
// set owned by its own producer's delegate must leave NOW — the delegation
// being routed may be the one the producing operation blocks on, so there
// may never be another retry. With the precise ledger the missing coverage
// is a concrete, observable event: the target delegates executing the
// set's recorded outbound positions, which they do independently of this
// (stuck) context. Wait for it, event-driven off the ledger, instead of
// returning and hoping for another delegation.
//
// Two cases cannot be waited out and return false immediately: traffic the
// set recorded into the victim's OWN lane (only v drains it, and v is the
// context running this wait), and legacy-veto mode (the global condition
// carries no per-set signal — any stream through the victim keeps it
// false, which is exactly the livelock the ledger exists to close).
func (rt *Runtime) waitRecOutboundCoverage(e *recSetEntry, v int) bool {
	if rt.cfg.LegacyOutboundVeto {
		return false
	}
	rec := rt.rec
	if e.outPos[v-1].Load() > rec.delegates[v-1].laneExec[v].Load() {
		return false // self-lane traffic: waiting would deadlock v on itself
	}
	// Park on the target delegates' coverage broadcasts instead of
	// Gosched-spinning: a draining server's forced evacuation must not burn
	// a core while an overloaded peer works through the backlog. One
	// subscription per uncovered target, re-checked between subscribe and
	// park so a publish racing the subscription cannot be lost (the drain
	// loop re-reads covWaiters AFTER its laneExec store; seq-cst atomics
	// order waiter-Add < recheck-load on this side against exec-store <
	// waiter-load on that side, so one of the two always observes the other).
	var deadline *time.Timer
	for {
		target := -1
		for dx := range e.outPos {
			if e.outPos[dx].Load() > rec.delegates[dx].laneExec[v].Load() {
				target = dx
				break
			}
		}
		if target < 0 {
			if deadline != nil {
				deadline.Stop()
			}
			return true
		}
		d := rec.delegates[target]
		ch := d.covSubscribe()
		if e.outPos[target].Load() <= d.laneExec[v].Load() {
			d.covUnsubscribe() // covered while subscribing; move on
			continue
		}
		if deadline == nil {
			deadline = time.NewTimer(evacWaitBudget)
		}
		select {
		case <-ch:
			d.covUnsubscribe()
		case <-deadline.C:
			d.covUnsubscribe()
			return false
		}
	}
}

// notePosition records the just-enqueued operation's position against its
// set's owner entry (no-op for untracked sets). Buffered operations count at
// buffer time — they are committed to that delegate's queue — so a set with
// operations still in the delegation buffer can never look quiescent.
func (rt *Runtime) notePosition(e *setEntry, ctx int) {
	if e != nil {
		e.lastPos = rt.sent[ctx-1]
		e.ops++
	}
}

// enqueue delivers a method invocation to delegate ctx, routing it through
// the delegation buffer when batching is enabled.
func (rt *Runtime) enqueue(ctx int, inv Invocation) {
	rt.dirty[ctx-1] = true
	if rt.sent != nil {
		rt.sent[ctx-1]++
	}
	d := rt.delegates[ctx-1]
	if rt.batch == nil {
		d.queue.Push(inv)
		return
	}
	if rt.batchLen > 0 && rt.batchCtx != ctx {
		rt.flushBatch()
	}
	if ctx != rt.lastCtx || (rt.batchLen == 0 && d.queue.Len() == 0) {
		// No same-target run is forming, or the delegate is hungry: hand
		// the operation over immediately rather than trading latency for
		// signal amortization — batching only pays while a run of
		// operations streams to a consumer with a backlog.
		rt.lastCtx = ctx
		d.queue.Push(inv)
		return
	}
	rt.batchCtx = ctx
	rt.batch[rt.batchLen] = inv
	rt.batchLen++
	// Flush on a full buffer, and whenever the delegate is observed to
	// have drained its backlog — a hungry consumer needs the buffered run
	// now, not amortization. A delegate that drains after the last
	// delegation can still leave the tail buffered until the program's
	// next runtime call; every blocking runtime operation flushes first,
	// so the model's synchronization semantics never see the buffer.
	if rt.batchLen == len(rt.batch) || d.queue.Len() == 0 {
		rt.flushBatch()
	}
}

// flushBatch delivers the buffered invocations with a single consumer
// wake-up. Cheap no-op when the buffer is empty.
func (rt *Runtime) flushBatch() {
	if rt.batchLen == 0 {
		return
	}
	d := rt.delegates[rt.batchCtx-1]
	d.queue.PushBatch(rt.batch[:rt.batchLen])
	rt.stats.BatchFlushes++
	rt.stats.BatchedOps += uint64(rt.batchLen)
	// Drop payload references so delivered invocations don't pin their
	// closures and payloads past the flush.
	clear(rt.batch[:rt.batchLen])
	rt.batchLen = 0
}

// Delegate assigns fn to the serialization set's context and returns that
// context id. Operations mapped to the program context (or every operation
// in Sequential mode) run inline, preserving per-set program order.
func (rt *Runtime) Delegate(set uint64, fn func(ctx int)) int {
	if rt.terminated {
		panic("prometheus: Delegate after Terminate")
	}
	fn = rt.traceExec(set, fn)
	if rt.rec != nil {
		rt.stats.Delegations++
		return rt.delegateFrom(ProgramContext, set, fn)
	}
	if fs := rt.faults.Load(); fs != nil && rt.maybeDrop(fs, set) {
		return rt.ContextFor(set) // dropped: the set is poisoned this epoch
	}
	ctx, e := rt.assign(set)
	if ctx == ProgramContext {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ctx
	}
	rt.stats.Delegations++
	rt.enqueue(ctx, Invocation{kind: kindMethod, set: set, fn: fn})
	rt.notePosition(e, ctx)
	return ctx
}

// DelegateCall is the zero-allocation delegation fast path: instead of a
// closure it takes a static trampoline plus two payload words, written by
// value into the communication ring. Wrapper layers bind one trampoline per
// wrapper type, so a steady-state DelegateCall performs no heap allocation
// and O(1) work — in recursive mode too, where the record is written into
// the program context's ring lane on the set's owner. Only tracing falls
// back to the closure path (off the measured configuration, as in the
// paper's evaluation).
func (rt *Runtime) DelegateCall(set uint64, tr Trampoline, p1, p2 unsafe.Pointer) int {
	if rt.terminated {
		panic("prometheus: Delegate after Terminate")
	}
	if rt.traceSt != nil {
		return rt.Delegate(set, func(ctx int) { tr(ctx, p1, p2) })
	}
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		tr(ProgramContext, p1, p2)
		return ProgramContext
	}
	if rt.rec != nil {
		rt.stats.Delegations++
		return rt.recEnqueue(ProgramContext, set,
			Invocation{kind: kindMethod, set: set, tramp: tr, p1: p1, p2: p2})
	}
	if fs := rt.faults.Load(); fs != nil && rt.maybeDrop(fs, set) {
		return rt.ContextFor(set) // dropped: the set is poisoned this epoch
	}
	ctx, e := rt.assign(set)
	if ctx == ProgramContext {
		rt.stats.InlineExecs++
		tr(ProgramContext, p1, p2)
		return ctx
	}
	rt.stats.Delegations++
	rt.enqueue(ctx, Invocation{kind: kindMethod, set: set, tramp: tr, p1: p1, p2: p2})
	rt.notePosition(e, ctx)
	return ctx
}

// DelegateFrom routes a delegation issued by an arbitrary execution context
// (recursive delegation). producer must be the context id actually running
// the call. Requires Config.Recursive (or Sequential debug mode).
func (rt *Runtime) DelegateFrom(producer int, set uint64, fn func(ctx int)) int {
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ProgramContext
	}
	if rt.rec == nil {
		panic("prometheus: recursive delegation requires the Recursive option")
	}
	return rt.delegateFrom(producer, set, rt.traceExec(set, fn))
}

// DelegateFromCall is the zero-allocation counterpart of DelegateFrom: the
// recursive-mode trampoline fast path for delegations issued from inside
// delegated operations. Like DelegateCall it takes a static trampoline
// plus two payload words and writes the invocation record by value into
// the producer's ring lane on the set's owner — no closure, no heap
// allocation, no contended counter. producer must be the context id
// actually running the call. Tracing falls back to the closure path.
func (rt *Runtime) DelegateFromCall(producer int, set uint64, tr Trampoline, p1, p2 unsafe.Pointer) int {
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		tr(ProgramContext, p1, p2)
		return ProgramContext
	}
	if rt.rec == nil {
		panic("prometheus: recursive delegation requires the Recursive option")
	}
	if rt.traceSt != nil {
		return rt.delegateFrom(producer, set, rt.traceExec(set, func(ctx int) { tr(ctx, p1, p2) }))
	}
	return rt.recEnqueue(producer, set,
		Invocation{kind: kindMethod, set: set, tramp: tr, p1: p1, p2: p2})
}

// Recursive reports whether recursive delegation is enabled.
func (rt *Runtime) Recursive() bool { return rt.rec != nil }

// SyncContext blocks until the given delegate context has executed every
// invocation enqueued before this call (paper: synchronization objects). It
// is how the program context reclaims ownership of a data domain. Syncing
// the program context is a no-op.
func (rt *Runtime) SyncContext(ctx int) {
	if ctx == ProgramContext || rt.cfg.Sequential {
		return
	}
	if rt.rec != nil {
		// Under recursion a single-lane sync cannot witness work produced
		// by other contexts; fall back to the quiescence barrier.
		rt.stats.Syncs++
		rt.recBarrier()
		return
	}
	if ctx < 1 || ctx > rt.cfg.Delegates {
		panic(fmt.Sprintf("prometheus: SyncContext(%d) out of range", ctx))
	}
	rt.flushBatch()
	if !rt.dirty[ctx-1] {
		return
	}
	rt.stats.Syncs++
	done := make(chan struct{})
	rt.delegates[ctx-1].queue.Push(Invocation{kind: kindSync, done: done})
	rt.waitDone(done)
	rt.dirty[ctx-1] = false
}

// SyncSet blocks until all outstanding operations in the given serialization
// set have completed. Under the LeastLoaded policy, a set that was never
// delegated this epoch has no owner and nothing to wait for.
func (rt *Runtime) SyncSet(set uint64) {
	if rt.setOwner != nil {
		// Under stealing, syncing the current owner suffices: a handoff only
		// happens at a quiescent boundary, so any operation that ran on a
		// previous owner had already completed before the current owner
		// received its first one.
		if e, ok := rt.setOwner[set]; ok {
			rt.SyncContext(e.ctx)
		}
		return
	}
	rt.SyncContext(rt.ContextFor(set))
}

// barrier waits for every delegate to drain its queue.
func (rt *Runtime) barrier() {
	if rt.cfg.Sequential {
		return
	}
	rt.stats.Barriers++
	if rt.rec != nil {
		rt.recBarrier()
		return
	}
	rt.flushBatch()
	dones := make([]chan struct{}, 0, rt.cfg.Delegates)
	for i, d := range rt.delegates[:rt.cfg.Delegates] {
		if !rt.dirty[i] {
			continue
		}
		done := make(chan struct{})
		d.queue.Push(Invocation{kind: kindSync, done: done})
		dones = append(dones, done)
	}
	for _, done := range dones {
		rt.waitDone(done)
	}
	for i := range rt.dirty {
		rt.dirty[i] = false
	}
}

// Sleep quiesces the delegate contexts during a long aggregation epoch
// (paper: sleep()). Delegates with empty queues park automatically in this
// implementation, so Sleep reduces to a barrier that guarantees they have
// all drained and parked.
func (rt *Runtime) Sleep() {
	if rt.inIsolation {
		panic("prometheus: Sleep during isolation epoch")
	}
	rt.barrier()
}

// RunParallel executes the given tasks on the delegate pool, round-robin,
// and waits for completion. The runtime uses it for parallel reductions
// (paper §2.2: N/2 combine operations per step run concurrently). ctx ids
// are passed through so tasks can address per-context state. Must be called
// during an aggregation epoch. In Sequential mode tasks run inline, in
// order.
func (rt *Runtime) RunParallel(tasks []func(ctx int)) {
	if rt.inIsolation {
		panic("prometheus: RunParallel during isolation epoch")
	}
	if rt.cfg.Sequential || (len(rt.delegates) == 0 && rt.rec == nil) {
		for _, t := range tasks {
			t(ProgramContext)
		}
		return
	}
	if rt.rec != nil {
		for i, t := range tasks {
			d := rt.rec.delegates[i%rt.cfg.Delegates]
			rt.rec.enq[ProgramContext].add(1)
			// noSetID: a pool task belongs to no serialization set, so
			// nested delegations it issues must not be charged to whatever
			// set the delegate executed last (outbound attribution,
			// recsteal.go).
			rt.recSend(d, Invocation{kind: kindMethod, set: noSetID, fn: t})
		}
		rt.recBarrier()
		return
	}
	rt.flushBatch()
	for i, t := range tasks {
		d := rt.delegates[i%rt.cfg.Delegates]
		rt.dirty[d.id-1] = true
		if rt.sent != nil {
			rt.sent[d.id-1]++ // method invocations count toward occupancy
		}
		// noSetID: a pool task belongs to no serialization set — it must
		// not collide with user set 0 in the poison table when it faults.
		d.queue.Push(Invocation{kind: kindMethod, set: noSetID, fn: t})
	}
	rt.barrier()
}

// EnterReduction switches phase accounting to reduction time; the matching
// ExitReduction returns to aggregation. Used by the reducible framework so
// Figure 5a can separate reduction cost.
func (rt *Runtime) EnterReduction() { rt.clock.switchTo(PhaseReduction, &rt.stats) }

// ExitReduction ends a reduction accounting span.
func (rt *Runtime) ExitReduction() { rt.clock.switchTo(PhaseAggregation, &rt.stats) }

// Stats returns a snapshot of the runtime counters with the current phase's
// elapsed time folded in and the delegate-side drain counters aggregated.
func (rt *Runtime) Stats() Stats {
	st := rt.stats
	for _, d := range rt.delegates {
		st.DrainBatches += d.drainBatches.Load()
		st.DrainedOps += d.drainedOps.Load()
	}
	if rt.rec != nil {
		st.RecursiveOps = rt.rec.enqSum()
		for _, d := range rt.rec.delegates {
			st.DrainBatches += d.drainBatches.Load()
			st.DrainedOps += d.drainedOps.Load()
			for _, lane := range d.lanes {
				st.Spills += lane.Spills()
			}
		}
		if steal := rt.rec.steal; steal != nil {
			for i := range steal.migrations {
				n := steal.migrations[i].n.Load()
				st.Steals += n
				st.Handoffs += n
				st.ForcedEvacs += steal.forcedEvacs[i].n.Load()
				st.OutboundVetoes += steal.outVetoes[i].n.Load()
				st.OutboundTracked += steal.outStamps[i].n.Load()
			}
		}
	}
	st.ThresholdAdjusts = rt.thresholdAdjusts.Load()
	if fs := rt.faults.Load(); fs != nil {
		st.Panics = fs.panics.Load()
		st.PoisonedSets = fs.poisonedSets.Load()
		st.DroppedOps = fs.dropped.Load()
		st.DroppedFaults = fs.droppedRec.Load()
	}
	clk := rt.clock
	clk.switchTo(clk.phase, &st) // charge the open span without mutating rt
	return st
}

// Terminate shuts the runtime down (paper: terminate()). It sends
// termination objects to all delegates, waits for them to finish outstanding
// work, and reclaims the goroutines. The runtime is unusable afterwards.
func (rt *Runtime) Terminate() {
	if rt.terminated {
		return
	}
	if rt.inIsolation {
		rt.EndIsolation()
	}
	rt.terminated = true
	if rt.rec != nil {
		rt.recTerminate()
		rt.wg.Wait()
		rt.clock.switchTo(PhaseAggregation, &rt.stats)
		return
	}
	rt.flushBatch()
	active := rt.cfg.Delegates
	if active > len(rt.delegates) {
		active = len(rt.delegates) // Sequential: no pool was built
	}
	for _, d := range rt.delegates[:active] {
		done := make(chan struct{})
		d.queue.Push(Invocation{kind: kindTerminate, done: done})
		rt.waitDone(done)
		d.queue.Close()
	}
	// Delegates parked by a scale-down have no goroutine to serve a
	// termination object; their queues are provably empty (resize barrier +
	// Checked assertion), so they only need closing.
	for _, d := range rt.delegates[active:] {
		d.queue.Close()
	}
	rt.wg.Wait()
	rt.clock.switchTo(PhaseAggregation, &rt.stats)
}
