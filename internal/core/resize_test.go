package core

import (
	"strings"
	"sync/atomic"
	"testing"
)

// Elastic-runtime unit tests: epoch-boundary resize semantics, scale-down
// evacuation accounting, validation of Reconfigure targets, and the
// runtime-config Get/Store surface — in both engines, Checked mode on, so
// the "no lane traffic survives a retired delegate" assertions are armed.

func TestReconfigureValidation(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:        2,
		MaxDelegates:     4,
		VirtualDelegates: 5,
		Policy:           LeastLoaded,
		Stealing:         true,
	})
	cases := []struct {
		name string
		rc   RuntimeConfig
		want string // substring of the error; empty = accepted
	}{
		{"keep-current", RuntimeConfig{}, ""},
		{"grow-within-capacity", RuntimeConfig{Delegates: 4}, ""},
		{"negative", RuntimeConfig{Delegates: -1}, "not a valid pool size"},
		{"beyond-capacity", RuntimeConfig{Delegates: 5}, "MaxDelegates"},
		{"negative-threshold", RuntimeConfig{StealThreshold: -3}, "StealThreshold"},
	}
	for _, tc := range cases {
		err := rt.Reconfigure(tc.rc)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestReconfigureRejectsVirtualDelegateOverflow pins the satellite fix: a
// target the static assignment table cannot spread must be rejected with a
// descriptive error at Reconfigure time, not by a panic deep in placement.
func TestReconfigureRejectsVirtualDelegateOverflow(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:        2,
		MaxDelegates:     8,
		VirtualDelegates: 4, // explicit, below what 8 delegates would need
	})
	err := rt.Resize(6) // 6 delegates + 0 program share > 4 virtual
	if err == nil {
		t.Fatal("Resize(6) with VirtualDelegates=4 accepted, want error")
	}
	if !strings.Contains(err.Error(), "VirtualDelegates") {
		t.Fatalf("error %v does not name VirtualDelegates", err)
	}
	// The runtime must still be fully usable after the rejection.
	rt.BeginIsolation()
	var ran atomic.Bool
	rt.Delegate(1, func(int) { ran.Store(true) })
	rt.EndIsolation()
	if !ran.Load() {
		t.Fatal("delegation did not run after rejected Reconfigure")
	}
}

func TestResizeSequentialRejected(t *testing.T) {
	rt := newTestRuntime(t, Config{Sequential: true})
	if err := rt.Resize(2); err == nil || !strings.Contains(err.Error(), "Sequential") {
		t.Fatalf("Sequential Resize error = %v, want Sequential-mode rejection", err)
	}
}

// countingWorkload delegates ops across many sets and returns per-set
// execution orders, so resize runs can be compared against fixed runs.
func countingWorkload(rt *Runtime, sets, opsPerSet int, logs [][]int) {
	for op := 0; op < opsPerSet; op++ {
		for s := 0; s < sets; s++ {
			s, op := s, op
			rt.Delegate(uint64(s+1), func(int) {
				logs[s] = append(logs[s], op)
			})
		}
	}
}

func TestResizeFlatUpDown(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:    2,
		MaxDelegates: 6,
		Policy:       LeastLoaded,
		Stealing:     true,
		Checked:      true,
	})
	if got := rt.ActiveDelegates(); got != 2 {
		t.Fatalf("initial ActiveDelegates = %d, want 2", got)
	}
	if got := rt.NumContexts(); got != 7 {
		t.Fatalf("NumContexts = %d, want capacity 7", got)
	}

	const sets, opsPerSet = 12, 40
	logs := make([][]int, sets)

	// Epoch 1 at the initial size.
	rt.BeginIsolation()
	countingWorkload(rt, sets, opsPerSet, logs)
	rt.EndIsolation()

	// Scale up: applied by the next BeginIsolation.
	if err := rt.Resize(6); err != nil {
		t.Fatal(err)
	}
	if got := rt.ActiveDelegates(); got != 2 {
		t.Fatalf("resize applied before epoch boundary: ActiveDelegates = %d", got)
	}
	rt.BeginIsolation()
	if got := rt.ActiveDelegates(); got != 6 {
		t.Fatalf("after scale-up ActiveDelegates = %d, want 6", got)
	}
	countingWorkload(rt, sets, opsPerSet, logs)
	rt.EndIsolation()

	// Scale down past the starting size: sets owned by delegates 3..6 must
	// be evacuated (counted) and the retirees parked with empty queues.
	if err := rt.Resize(2); err != nil {
		t.Fatal(err)
	}
	rt.BeginIsolation()
	if got := rt.ActiveDelegates(); got != 2 {
		t.Fatalf("after scale-down ActiveDelegates = %d, want 2", got)
	}
	countingWorkload(rt, sets, opsPerSet, logs)
	rt.EndIsolation()

	st := rt.Stats()
	if st.Resizes != 2 {
		t.Fatalf("Stats.Resizes = %d, want 2", st.Resizes)
	}
	if st.ResizeEvacuatedSets == 0 {
		t.Fatal("scale-down from 6 to 2 evacuated no sets; owner table should have spread across the large pool")
	}
	for s := range logs {
		if len(logs[s]) != 3*opsPerSet {
			t.Fatalf("set %d executed %d ops, want %d", s, len(logs[s]), 3*opsPerSet)
		}
		for i, v := range logs[s] {
			if v != i%opsPerSet {
				t.Fatalf("set %d position %d = op %d: per-set program order broken across resizes", s, i, v)
			}
		}
	}
}

func TestResizeRecursiveUpDown(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:    2,
		MaxDelegates: 5,
		Recursive:    true,
		Policy:       LeastLoaded,
		Stealing:     true,
		Checked:      true,
	})

	const sets, opsPerSet = 10, 30
	logs := make([][]int, sets)
	run := func() {
		rt.BeginIsolation()
		countingWorkload(rt, sets, opsPerSet, logs)
		rt.EndIsolation()
	}

	run()
	if err := rt.Resize(5); err != nil {
		t.Fatal(err)
	}
	run()
	if got := rt.ActiveDelegates(); got != 5 {
		t.Fatalf("after scale-up ActiveDelegates = %d, want 5", got)
	}
	if err := rt.Resize(1); err != nil {
		t.Fatal(err)
	}
	run()
	if got := rt.ActiveDelegates(); got != 1 {
		t.Fatalf("after scale-down ActiveDelegates = %d, want 1", got)
	}
	// Scale back up: respawned delegates must resume their frozen counters
	// (the exec-seed path) or the lane ledgers would go negative.
	if err := rt.Resize(4); err != nil {
		t.Fatal(err)
	}
	run()

	st := rt.Stats()
	if st.Resizes != 3 {
		t.Fatalf("Stats.Resizes = %d, want 3", st.Resizes)
	}
	if st.ResizeEvacuatedSets == 0 {
		t.Fatal("recursive scale-down evacuated no sets")
	}
	for s := range logs {
		if len(logs[s]) != 4*opsPerSet {
			t.Fatalf("set %d executed %d ops, want %d", s, len(logs[s]), 4*opsPerSet)
		}
		for i, v := range logs[s] {
			if v != i%opsPerSet {
				t.Fatalf("set %d position %d = op %d: per-set program order broken across resizes", s, i, v)
			}
		}
	}
}

func TestReconfigureStealThresholdRebase(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:      2,
		Policy:         LeastLoaded,
		Stealing:       true,
		StealThreshold: 8,
	})
	if got := rt.RuntimeConfig(); got.StealThreshold != 8 || got.Delegates != 2 {
		t.Fatalf("initial RuntimeConfig = %+v", got)
	}
	if err := rt.Reconfigure(RuntimeConfig{StealThreshold: 3}); err != nil {
		t.Fatal(err)
	}
	// Not yet applied.
	if got := rt.RuntimeConfig().StealThreshold; got != 8 {
		t.Fatalf("threshold rebased before epoch boundary: %d", got)
	}
	rt.BeginIsolation()
	rt.EndIsolation()
	got := rt.RuntimeConfig()
	if got.StealThreshold != 3 {
		t.Fatalf("after boundary StealThreshold = %d, want 3", got.StealThreshold)
	}
	if got.Delegates != 2 {
		t.Fatalf("threshold-only Reconfigure changed pool size to %d", got.Delegates)
	}
	if st := rt.Stats(); st.Resizes != 0 {
		t.Fatalf("threshold-only Reconfigure counted as a resize (%d)", st.Resizes)
	}
	if thr := rt.stealThreshold(); thr != 3 {
		t.Fatalf("effective stealThreshold = %d, want 3", thr)
	}
}

func TestResizeTraceEvent(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates:    2,
		MaxDelegates: 3,
		Trace:        true,
	})
	rt.BeginIsolation()
	rt.Delegate(7, func(int) {})
	rt.EndIsolation()
	if err := rt.Resize(3); err != nil {
		t.Fatal(err)
	}
	rt.BeginIsolation()
	rt.EndIsolation()
	var found bool
	for _, ev := range rt.TraceEvents() {
		if ev.Kind == TraceResize {
			if ev.Set != 3 {
				t.Fatalf("TraceResize carries size %d, want 3", ev.Set)
			}
			if ev.Ctx != ProgramContext {
				t.Fatalf("TraceResize on ctx %d, want program context", ev.Ctx)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no TraceResize event recorded for an applied resize")
	}
}

// TestResizeDefaultCapacityIsFixedPool pins the compatibility contract: a
// config without MaxDelegates pre-allocates exactly the initial pool and
// rejects growth (capacity floor = Delegates).
func TestResizeDefaultCapacityIsFixedPool(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 3})
	if err := rt.Resize(4); err == nil || !strings.Contains(err.Error(), "MaxDelegates") {
		t.Fatalf("growth beyond default capacity: err = %v, want MaxDelegates rejection", err)
	}
	if err := rt.Resize(1); err != nil {
		t.Fatalf("shrink within default capacity rejected: %v", err)
	}
	rt.BeginIsolation()
	rt.EndIsolation()
	if got := rt.ActiveDelegates(); got != 1 {
		t.Fatalf("ActiveDelegates = %d, want 1", got)
	}
}
