package core

import (
	"fmt"
	"strings"
	"time"
)

// Barrier watchdog. Every blocking synchronization the program context
// performs — SyncContext, barrier (EndIsolation, Sleep, RunParallel),
// Terminate — waits on a done channel only a delegate can close. Before
// fault containment a dead or wedged delegate turned that wait into a
// silent hang; with containment a wedge should be impossible, and the
// watchdog is the enforcement of that claim in debug/Checked builds: if no
// delegate publishes any progress for a full Config.Watchdog bound while a
// synchronization is outstanding, panic with a dump of per-delegate queue
// depths and ledger positions so the liveness bug arrives as an actionable
// report instead of a CI timeout.

// waitDone blocks until done closes. With the watchdog enabled it
// periodically snapshots the pool-wide progress sum; two consecutive
// identical snapshots a full bound apart with the wait still pending mean
// the runtime is wedged.
func (rt *Runtime) waitDone(done <-chan struct{}) {
	wd := rt.cfg.Watchdog
	if wd <= 0 {
		<-done
		return
	}
	timer := time.NewTimer(wd)
	defer timer.Stop()
	last := rt.progressSum()
	for {
		select {
		case <-done:
			return
		case <-timer.C:
			cur := rt.progressSum()
			if cur == last {
				panic(fmt.Sprintf(
					"prometheus: watchdog: no delegate progress for %v while a synchronization is outstanding\n%s",
					wd, rt.dumpSchedState()))
			}
			last = cur
			timer.Reset(wd)
		}
	}
}

// progressSum folds every published delegate counter into one number that
// advances whenever any delegate does anything observable: method
// executions (faulted operations included — containment counts them) plus
// batched-drain deliveries, which also move when a backlog of control
// messages is served.
func (rt *Runtime) progressSum() uint64 {
	var sum uint64
	for _, d := range rt.delegates {
		sum += d.executed.Load() + d.drainedOps.Load()
	}
	if rt.rec != nil {
		for _, d := range rt.rec.delegates {
			sum += d.exec.Load() + d.drainedOps.Load()
		}
	}
	return sum
}

// QueueDepths appends each delegate context's current backlog — method
// invocations routed to it that have not finished executing — to dst and
// returns the extended slice, one entry per delegate in context order.
// Reads only published atomic counters, so it is safe from any goroutine
// and allocation-free when dst has capacity: the serving tier samples it
// on every metrics scrape. In recursive mode the per-delegate ledger only
// exists under Stealing; without it the depths are reported as zero (the
// engine tracks enqueue/execute sums globally, not per delegate).
func (rt *Runtime) QueueDepths(dst []uint64) []uint64 {
	// Bound by the atomic active count, not capacity: reporting retired
	// delegates would skew the serving tier's occupancy averages, and the
	// atomic is the only pool-size read with a happens-before story for
	// arbitrary goroutines.
	n := int(rt.active.Load())
	if rec := rt.rec; rec != nil {
		for _, d := range rec.delegates[:n] {
			if d.laneExec == nil {
				dst = append(dst, 0)
				continue
			}
			dst = append(dst, rt.recOccupancy(d.id))
		}
		return dst
	}
	for _, d := range rt.delegates[:n] {
		dst = append(dst, uint64(d.queue.Len()))
	}
	return dst
}

// DumpSchedState renders the scheduler ledgers — the watchdog's wedge
// report, exported so a draining server can attach the same dump to its
// straggler log when a drain deadline expires. Program context only: the
// flat-mode report reads the program-private sent counters.
func (rt *Runtime) DumpSchedState() string { return rt.dumpSchedState() }

// dumpSchedState renders the scheduler ledgers for the watchdog report:
// per-delegate queue depths and executed counters in flat mode; the
// enqueued/executed quiescence ledger, per-lane sent/exec positions, and
// pending-lane bitmasks in recursive mode. Program context only (it reads
// the program-private sent counters).
func (rt *Runtime) dumpSchedState() string {
	var b strings.Builder
	if rec := rt.rec; rec != nil {
		fmt.Fprintf(&b, "recursive engine: enqueued=%d executed=%d\n", rec.enqSum(), rec.execSum())
		for _, d := range rec.delegates {
			fmt.Fprintf(&b, "  delegate %d: exec=%d pending=", d.id, d.exec.Load())
			for w := len(d.pending) - 1; w >= 0; w-- {
				fmt.Fprintf(&b, "%016x", d.pending[w].Load())
			}
			if st := rec.steal; st != nil {
				b.WriteString(" lanes[p:sent/exec]:")
				for p := range d.laneExec {
					sent := st.laneSent[d.id-1][p].n.Load()
					exec := d.laneExec[p].Load()
					if sent != 0 || exec != 0 {
						fmt.Fprintf(&b, " %d:%d/%d", p, sent, exec)
					}
				}
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	fmt.Fprintf(&b, "flat engine: %d/%d delegates active\n", rt.cfg.Delegates, len(rt.delegates))
	for i, d := range rt.delegates {
		var sent uint64
		if rt.sent != nil {
			sent = rt.sent[i]
		}
		fmt.Fprintf(&b, "  delegate %d: queue=%d sent=%d executed=%d dirty=%v\n",
			d.id, d.queue.Len(), sent, d.executed.Load(), rt.dirty[i])
	}
	return b.String()
}
