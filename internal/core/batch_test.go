package core

import (
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// countTramp is a static trampoline for DelegateCall tests: p1 points to an
// atomic counter, p2 to an int64 increment.
func countTramp(_ int, p1, p2 unsafe.Pointer) {
	(*atomic.Int64)(p1).Add(*(*int64)(p2))
}

func TestDelegateCallExecutes(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2})
	var sum atomic.Int64
	inc := int64(3)
	rt.BeginIsolation()
	for i := 0; i < 100; i++ {
		rt.DelegateCall(uint64(i%4), countTramp, unsafe.Pointer(&sum), unsafe.Pointer(&inc))
	}
	rt.EndIsolation()
	if got := sum.Load(); got != 300 {
		t.Fatalf("sum = %d, want 300", got)
	}
	if st := rt.Stats(); st.Delegations != 100 {
		t.Fatalf("Delegations = %d, want 100", st.Delegations)
	}
}

func TestDelegateCallSequentialInline(t *testing.T) {
	rt := newTestRuntime(t, Config{Sequential: true})
	var sum atomic.Int64
	inc := int64(1)
	rt.BeginIsolation()
	if ctx := rt.DelegateCall(7, countTramp, unsafe.Pointer(&sum), unsafe.Pointer(&inc)); ctx != ProgramContext {
		t.Fatalf("sequential DelegateCall ran on ctx %d", ctx)
	}
	rt.EndIsolation()
	if sum.Load() != 1 {
		t.Fatal("sequential DelegateCall did not execute inline")
	}
	if st := rt.Stats(); st.InlineExecs != 1 {
		t.Fatalf("InlineExecs = %d, want 1", st.InlineExecs)
	}
}

func TestDelegateCallTraceFallback(t *testing.T) {
	// With tracing on, DelegateCall routes through the closure path so the
	// execution is recorded like any other delegated operation.
	rt := newTestRuntime(t, Config{Delegates: 1, Trace: true})
	var sum atomic.Int64
	inc := int64(1)
	rt.BeginIsolation()
	rt.DelegateCall(0, countTramp, unsafe.Pointer(&sum), unsafe.Pointer(&inc))
	rt.EndIsolation()
	if sum.Load() != 1 {
		t.Fatal("traced DelegateCall did not execute")
	}
	execs := 0
	for _, ev := range rt.TraceEvents() {
		if ev.Kind == TraceExec {
			execs++
		}
	}
	if execs != 1 {
		t.Fatalf("trace recorded %d execs, want 1", execs)
	}
}

func TestContextForDoesNotAssign(t *testing.T) {
	// ContextFor is a pure query: probing a set's placement (e.g. from a
	// stats path) must not burn the LeastLoaded assignment for the epoch.
	rt := newTestRuntime(t, Config{Delegates: 4, Policy: LeastLoaded})
	rt.BeginIsolation()
	predicted := rt.ContextFor(11)
	if len(rt.setOwner) != 0 {
		t.Fatal("ContextFor assigned an owner")
	}
	// The first delegation with unchanged queue state lands on the
	// predicted context and records the sticky owner.
	if got := rt.Delegate(11, func(int) {}); got != predicted {
		t.Fatalf("Delegate placed set on %d, ContextFor predicted %d", got, predicted)
	}
	if e, ok := rt.setOwner[11]; !ok || e.ctx != predicted {
		t.Fatalf("owner = %v, %v, want %d", e, ok, predicted)
	}
	rt.EndIsolation()
}

// startGated delegates a first operation that parks its delegate until the
// returned release function is called, and does not return before the
// operation is running (so the delegate's queue is observably empty and its
// context busy).
func startGated(rt *Runtime, set uint64) (release func()) {
	started := make(chan struct{})
	gate := make(chan struct{})
	rt.Delegate(set, func(int) {
		close(started)
		<-gate
	})
	<-started
	return func() { close(gate) }
}

func TestBatchingEngagesOnBusyDelegate(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 4})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	// The delegate is blocked with an empty queue. The next operation is
	// delivered eagerly (idle queue); the ones after that buffer and flush
	// in batches of 4.
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		rt.Delegate(0, func(int) { order = append(order, i) })
	}
	release()
	rt.EndIsolation()
	if len(order) != 10 {
		t.Fatalf("executed %d ops, want 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("batching broke per-set order at %d: got %d", i, v)
		}
	}
	st := rt.Stats()
	// 1 eager direct push + 9 buffered: two full batches of 4 at the cap
	// plus 1 flushed by the EndIsolation barrier.
	if st.BatchedOps != 9 || st.BatchFlushes != 3 {
		t.Fatalf("BatchedOps = %d, BatchFlushes = %d, want 9 and 3", st.BatchedOps, st.BatchFlushes)
	}
}

func TestBatchFlushOnTargetSwitch(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, VirtualDelegates: 2, DelegateBatch: 64})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	var ran atomic.Int64
	rt.Delegate(0, func(int) { ran.Add(1) }) // eager: queue empty
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered behind the eager op
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered
	before := rt.Stats().BatchFlushes
	// Switching to the other delegate must flush the buffered run first.
	rt.Delegate(1, func(int) { ran.Add(1) })
	if got := rt.Stats().BatchFlushes; got != before+1 {
		t.Fatalf("BatchFlushes = %d, want %d (target switch must flush)", got, before+1)
	}
	release()
	rt.EndIsolation()
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran = %d, want 4", got)
	}
}

func TestBatchFlushOnSync(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 64})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	var ran atomic.Int64
	ctx := rt.Delegate(0, func(int) { ran.Add(1) })
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered
	release()
	rt.SyncContext(ctx) // must flush before syncing or it would hang
	if got := ran.Load(); got != 3 {
		t.Fatalf("after SyncContext ran = %d, want 3 (buffered ops lost)", got)
	}
	rt.EndIsolation()
}

func TestBatchFlushWhenDelegateDrains(t *testing.T) {
	// Once the delegate catches up, the next delegation must hand over the
	// buffered tail instead of letting it ride until a sync point.
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 64})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	var ran atomic.Int64
	rt.Delegate(0, func(int) { ran.Add(1) }) // eager: queue empty
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered
	rt.Delegate(0, func(int) { ran.Add(1) }) // buffered
	release()
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() < 1 { // delegate drains the gated + eager ops, then parks
		if time.Now().After(deadline) {
			t.Fatal("eager op never ran")
		}
		time.Sleep(time.Millisecond)
	}
	rt.Delegate(0, func(int) { ran.Add(1) }) // drained target: flushes all four
	for ran.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("buffered ops stalled after delegate drained: ran = %d", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
	rt.EndIsolation()
}

func TestIdleDelegateGetsOpWithoutFlush(t *testing.T) {
	// Liveness: an operation delegated to an idle delegate must execute
	// without any subsequent runtime call (no sync, no epoch end) — the
	// delegation buffer is bypassed when the target queue is empty.
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 64})
	rt.BeginIsolation()
	var ran atomic.Bool
	rt.Delegate(0, func(int) { ran.Store(true) })
	deadline := time.Now().Add(5 * time.Second)
	for !ran.Load() {
		if time.Now().After(deadline) {
			t.Fatal("op delegated to an idle delegate never ran")
		}
		time.Sleep(time.Millisecond)
	}
	rt.EndIsolation()
}

func TestBatchingDisabled(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 1})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	for i := 0; i < 50; i++ {
		rt.Delegate(0, func(int) {})
	}
	release()
	rt.EndIsolation()
	if st := rt.Stats(); st.BatchFlushes != 0 || st.BatchedOps != 0 {
		t.Fatalf("batching stats nonzero with DelegateBatch=1: %+v", st)
	}
}

// BenchmarkCoreDelegate compares the closure path against the trampoline
// path at the engine level, and batching against no batching, all on one
// pinned set so the delegation stream stresses a single queue.
func BenchmarkCoreDelegate(b *testing.B) {
	var sink atomic.Int64
	inc := int64(1)
	run := func(b *testing.B, cfg Config, call func(rt *Runtime)) {
		rt := New(cfg)
		defer rt.Terminate()
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			call(rt)
		}
		b.StopTimer()
		rt.EndIsolation()
	}
	b.Run("closure", func(b *testing.B) {
		b.ReportAllocs()
		run(b, Config{Delegates: 4}, func(rt *Runtime) {
			rt.Delegate(1, func(int) { sink.Add(1) })
		})
	})
	b.Run("trampoline", func(b *testing.B) {
		b.ReportAllocs()
		run(b, Config{Delegates: 4}, func(rt *Runtime) {
			rt.DelegateCall(1, countTramp, unsafe.Pointer(&sink), unsafe.Pointer(&inc))
		})
	})
	b.Run("trampoline-nobatch", func(b *testing.B) {
		b.ReportAllocs()
		run(b, Config{Delegates: 4, DelegateBatch: 1}, func(rt *Runtime) {
			rt.DelegateCall(1, countTramp, unsafe.Pointer(&sink), unsafe.Pointer(&inc))
		})
	})
}
