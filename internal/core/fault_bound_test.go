package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFaultRecordBoundRing drives 10k contained panics through a runtime
// with a small retention bound and checks the long-runtime contract: fault
// MEMORY stays bounded (only the most recent records survive), the Panics
// counter still counts everything, evictions surface in DroppedFaults, and
// the per-set index agrees exactly with the retained ring.
func TestFaultRecordBoundRing(t *testing.T) {
	const (
		bound       = 8
		epochs      = 100
		setsPerWave = 100 // one fault per set per epoch (poison drops repeats)
	)
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, FaultRecordBound: bound})
	for ep := 0; ep < epochs; ep++ {
		rt.BeginIsolation()
		for s := 0; s < setsPerWave; s++ {
			rt.Delegate(uint64(100+s), func(int) { panic("boom") })
		}
		rt.EndIsolation()
	}
	const total = epochs * setsPerWave

	if st := rt.Stats(); st.Panics != total {
		t.Errorf("Panics = %d, want %d", st.Panics, total)
	}
	if d := rt.DroppedFaults(); d != total-bound {
		t.Errorf("DroppedFaults = %d, want %d", d, total-bound)
	}
	if st := rt.Stats(); st.DroppedFaults != total-bound {
		t.Errorf("Stats.DroppedFaults = %d, want %d", st.DroppedFaults, total-bound)
	}
	faults := rt.Faults()
	if len(faults) != bound {
		t.Fatalf("Faults() retained %d records, want %d", len(faults), bound)
	}
	// Epoch barriers order containment across epochs, so every survivor
	// must come from the final epoch even though arrival order within an
	// epoch is racy.
	perSet := map[uint64]int{}
	for _, f := range faults {
		if f.Epoch != epochs {
			t.Errorf("retained fault from epoch %d, want only epoch %d", f.Epoch, epochs)
		}
		perSet[f.Set]++
	}
	// The per-set index must describe exactly the retained ring: same
	// multiset of records, and nothing for evicted sets.
	var indexed int
	for set, n := range perSet {
		got := rt.SetFaults(set)
		if len(got) != n {
			t.Errorf("SetFaults(%d) = %d records, ring holds %d", set, len(got), n)
		}
		indexed += len(got)
	}
	if indexed != bound {
		t.Errorf("index holds %d records, want %d", indexed, bound)
	}
}

// TestSetFaultsIndexEviction checks the ring/index agreement precisely on
// one set: faults accumulate across epochs, eviction pops the oldest, and
// a fully-evicted set drops out of the index entirely.
func TestSetFaultsIndexEviction(t *testing.T) {
	const bound = 4
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, FaultRecordBound: bound})

	// Epoch 1: one fault on the sibling set (will be evicted), then six
	// epochs of one fault each on set 7.
	rt.BeginIsolation()
	rt.Delegate(3, func(int) { panic("sibling") })
	rt.EndIsolation()
	for ep := 0; ep < 6; ep++ {
		rt.BeginIsolation()
		rt.Delegate(7, func(int) { panic("boom") })
		rt.EndIsolation()
	}

	if sf := rt.SetFaults(3); sf != nil {
		t.Errorf("SetFaults(3) = %v after eviction, want nil", sf)
	}
	sf := rt.SetFaults(7)
	if len(sf) != bound {
		t.Fatalf("SetFaults(7) = %d records, want %d", len(sf), bound)
	}
	for i, f := range sf {
		// Sibling fault in epoch 1, set-7 faults in epochs 2..7; the
		// retained four are epochs 4..7 in containment order.
		if want := uint64(4 + i); f.Epoch != want {
			t.Errorf("SetFaults(7)[%d].Epoch = %d, want %d", i, f.Epoch, want)
		}
	}
	if rt.DroppedFaults() != 3 {
		t.Errorf("DroppedFaults = %d, want 3", rt.DroppedFaults())
	}
}

// TestCovSignalWakesWaiter is the coverage-wait parking unit test: a
// subscribed waiter parks on the broadcast channel and a publisher's
// covSignal wakes it (close-and-replace, so late subscribers get a fresh
// channel).
func TestCovSignalWakesWaiter(t *testing.T) {
	d := &recDelegate{covCh: make(chan struct{})}
	ch := d.covSubscribe()
	if got := d.covWaiters.Load(); got != 1 {
		t.Fatalf("covWaiters = %d after subscribe, want 1", got)
	}
	var woke sync.WaitGroup
	woke.Add(1)
	go func() {
		defer woke.Done()
		<-ch
		d.covUnsubscribe()
	}()
	if d.covWaiters.Load() != 0 {
		d.covSignal()
	}
	done := make(chan struct{})
	go func() { woke.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after covSignal")
	}
	if got := d.covWaiters.Load(); got != 0 {
		t.Errorf("covWaiters = %d after unsubscribe, want 0", got)
	}
	// The replaced channel must be open for the next round of waiters.
	select {
	case <-d.covSubscribe():
		t.Error("fresh broadcast channel is already closed")
	default:
		d.covUnsubscribe()
	}
}

// TestEvacWaitDeadline pins the mutual-wait escape hatch: a forced
// evacuation waiting on outbound coverage that never arrives must give up
// within the evacWaitBudget deadline (parked, not spinning) rather than
// block its delegate forever.
func TestEvacWaitDeadline(t *testing.T) {
	rt := newTestRuntime(t, Config{
		Delegates: 2, Recursive: true, Policy: LeastLoaded, Stealing: true,
	})
	rt.BeginIsolation()
	// A hand-built entry claiming uncovered outbound traffic into delegate
	// 2's lane for victim 1; nothing will ever drain it.
	e := &recSetEntry{outPos: make([]atomic.Uint64, 2)}
	e.outPos[1].Store(5)
	start := time.Now()
	if rt.waitRecOutboundCoverage(e, 1) {
		t.Error("coverage reported for traffic nothing executed")
	}
	if elapsed := time.Since(start); elapsed < evacWaitBudget/2 || elapsed > 10*evacWaitBudget {
		t.Errorf("wait returned after %v, want roughly the %v budget", elapsed, evacWaitBudget)
	}
	rt.EndIsolation()
}
