package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spsc"
)

// waitExecuted polls delegate ctx's published progress until it reaches n
// method invocations (the condition the rebalancer's safe-handoff check
// reads).
func waitExecuted(t *testing.T, rt *Runtime, ctx int, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.delegates[ctx-1].executed.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("delegate %d never reached executed=%d (at %d)",
				ctx, n, rt.delegates[ctx-1].executed.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func stealCfg(delegates, threshold int) Config {
	return Config{
		Delegates:      delegates,
		Policy:         LeastLoaded,
		Stealing:       true,
		StealThreshold: threshold,
		DelegateBatch:  1, // direct pushes so queue/occupancy states are exact
	}
}

// TestStealHandsOffQuiescentSet builds the canonical imbalance by hand:
// delegate 1 is pinned by a long-running operation while a second set —
// whose own operations have all completed — gets its next delegation. The
// rebalancer must hand that set, whole, to the idle delegate 2.
func TestStealHandsOffQuiescentSet(t *testing.T) {
	rt := newTestRuntime(t, stealCfg(2, 1))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	// Set 100's first op gates delegate 1 (ties in leastLoaded resolve to
	// the lowest id, and startGated returns only once the op is running).
	release1 := startGated(rt, 100)
	// Set 200's first op also lands on delegate 1: the gated op has been
	// popped, so both queues look empty and the tie resolves to 1 again.
	var b1 atomic.Bool
	if ctx := rt.Delegate(200, func(int) { b1.Store(true) }); ctx != 1 {
		t.Fatalf("set 200 seeded on delegate %d, want 1", ctx)
	}
	release1()
	waitExecuted(t, rt, 1, 2) // both set-100 and set-200 ops done

	// Re-load delegate 1 with set 100 work so it is a steal victim
	// (occupancy 1 >= threshold 1) while set 200 is quiescent.
	release2 := startGated(rt, 100)
	ctx := rt.Delegate(200, func(int) {})
	release2()
	if ctx != 2 {
		t.Fatalf("quiescent set 200 delegated to %d, want stolen to idle delegate 2", ctx)
	}
	if e := rt.setOwner[200]; e.ctx != 2 {
		t.Fatalf("owner table has set 200 on %d, want 2", e.ctx)
	}
	if st := rt.Stats(); st.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", st.Steals)
	}
	// Sticky after the handoff: once the thief is below threshold again, the
	// next delegation stays with it.
	waitExecuted(t, rt, 2, 1)
	if ctx := rt.Delegate(200, func(int) {}); ctx != 2 {
		t.Fatalf("post-steal delegation went to %d, want sticky thief 2", ctx)
	}
}

// TestNoStealWhileSetInFlight pins the safety half: a set with an operation
// still queued or running on its owner must never be handed off, no matter
// how loaded the owner is — moving it would let the set's operations run out
// of program order.
func TestNoStealWhileSetInFlight(t *testing.T) {
	rt := newTestRuntime(t, stealCfg(2, 1))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	release := startGated(rt, 100)
	var order []int
	rt.Delegate(200, func(int) { order = append(order, 1) }) // queued behind the gate
	// Owner occupancy is 2 (>= threshold), delegate 2 is idle, but set 200's
	// op is still queued on delegate 1: the delegation must follow it there.
	if ctx := rt.Delegate(200, func(int) { order = append(order, 2) }); ctx != 1 {
		t.Fatalf("in-flight set delegated to %d, want owner 1", ctx)
	}
	if st := rt.Stats(); st.Steals != 0 {
		t.Fatalf("Steals = %d, want 0 (set was in flight)", st.Steals)
	}
	release()
	rt.barrier()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("per-set order = %v, want [1 2]", order)
	}
}

// TestNoStealBelowThreshold: a lightly loaded owner keeps its sets even with
// idle peers — transient pipelining must not shuffle ownership around.
func TestNoStealBelowThreshold(t *testing.T) {
	rt := newTestRuntime(t, stealCfg(2, 100))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	release1 := startGated(rt, 100)
	rt.Delegate(200, func(int) {})
	release1()
	waitExecuted(t, rt, 1, 2)
	release2 := startGated(rt, 100)
	if ctx := rt.Delegate(200, func(int) {}); ctx != 1 {
		t.Fatalf("set 200 moved to %d below threshold, want 1", ctx)
	}
	release2()
	if st := rt.Stats(); st.Steals != 0 {
		t.Fatalf("Steals = %d, want 0", st.Steals)
	}
}

// TestNoStealWithoutUnderloadedThief: when every peer is about as loaded as
// the victim, handing a set around buys nothing — the occupancy gap (thief
// at most a quarter of the victim) must hold.
func TestNoStealWithoutUnderloadedThief(t *testing.T) {
	rt := newTestRuntime(t, stealCfg(2, 1))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	// Gate delegate 1, seed set 200 behind its gate (tie resolves to 1),
	// then gate delegate 2 — with one op queued on 1, the tie breaks to 2 —
	// and pile a backlog of set-300 work behind that second gate.
	release1 := startGated(rt, 100)
	rt.Delegate(200, func(int) {}) // queue(1) = 1
	release2 := startGated(rt, 300)
	if got := rt.setOwner[300].ctx; got != 2 {
		t.Fatalf("set 300 seeded on %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		rt.Delegate(300, func(int) {})
	}
	release1()
	waitExecuted(t, rt, 1, 2) // gate + set-200 op done: set 200 quiescent
	// Reload delegate 1 so it is a victim with occupancy 1.
	release3 := startGated(rt, 100)
	// The only candidate thief holds ~5 outstanding ops behind its gate:
	// 5*4 > 1, so no steal even though set 200 is quiescent and its owner
	// is at threshold.
	if ctx := rt.Delegate(200, func(int) {}); ctx != 1 {
		t.Fatalf("set 200 stolen to %d despite loaded thief, want 1", ctx)
	}
	if st := rt.Stats(); st.Steals != 0 {
		t.Fatalf("Steals = %d, want 0", st.Steals)
	}
	release3()
	release2()
}

// TestStealingConfigValidation: the rebalancer needs the LeastLoaded owner
// table and a single delegation producer.
func TestStealingConfigValidation(t *testing.T) {
	expectPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(cfg).Terminate()
	}
	expectPanic("static-mod", Config{Delegates: 2, Stealing: true})
	expectPanic("recursive", Config{Delegates: 2, Stealing: true, Recursive: true, Policy: StaticMod})
	// Sequential debug mode ignores stealing rather than rejecting it.
	rt := New(Config{Sequential: true, Stealing: true})
	rt.BeginIsolation()
	ran := false
	rt.Delegate(1, func(int) { ran = true })
	rt.EndIsolation()
	rt.Terminate()
	if !ran {
		t.Fatal("sequential runtime with Stealing did not execute inline")
	}
}

// TestStealThresholdDefault: the zero value derives the threshold from the
// queue capacity (cap/4, clamped to [MinStealThreshold, MaxStealThreshold])
// and an explicit setting always wins.
func TestStealThresholdDefault(t *testing.T) {
	for _, tc := range []struct {
		queueCap, explicit, want int
	}{
		{0, 0, spsc.DefaultCapacity / 4}, // default 256-slot ring -> 64
		{128, 0, 32},                     // in-range: cap/4
		{8, 0, MinStealThreshold},        // tiny ring clamps up
		{4096, 0, MaxStealThreshold},     // deep ring clamps down
		{0, 3, 3},                        // explicit override wins
		{8, 100, 100},                    // explicit override wins over clamp
	} {
		c := Config{Delegates: 2, Policy: LeastLoaded, Stealing: true,
			QueueCapacity: tc.queueCap, StealThreshold: tc.explicit}.withDefaults()
		if c.StealThreshold != tc.want {
			t.Errorf("QueueCapacity=%d StealThreshold=%d: derived %d, want %d",
				tc.queueCap, tc.explicit, c.StealThreshold, tc.want)
		}
	}
}

// TestStealStress repeats the gated handoff dance many times with work on
// both sets, checking per-set program order end to end. Run under -race this
// exercises the executed-counter synchronization between victim, program
// context, and thief on every iteration (the CI stealing-stress job).
func TestStealStress(t *testing.T) {
	rt := newTestRuntime(t, stealCfg(2, 1))
	var log100, log200 []int
	n100, n200 := 0, 0
	rt.BeginIsolation()
	for iter := 0; iter < 50; iter++ {
		release := startGated(rt, 100)
		for j := 0; j < 4; j++ {
			v := n200
			n200++
			rt.Delegate(200, func(int) { log200 = append(log200, v) })
		}
		v := n100
		n100++
		rt.Delegate(100, func(int) { log100 = append(log100, v) })
		release()
		// Quiesce both delegates so every iteration starts from a clean
		// occupancy state and the next gated op re-creates the imbalance.
		rt.barrier()
	}
	rt.EndIsolation()
	if len(log100) != n100 || len(log200) != n200 {
		t.Fatalf("lost operations: |log100|=%d want %d, |log200|=%d want %d",
			len(log100), n100, len(log200), n200)
	}
	for i, v := range log200 {
		if v != i {
			t.Fatalf("set 200 order broken at %d: got %d", i, v)
		}
	}
	for i, v := range log100 {
		if v != i {
			t.Fatalf("set 100 order broken at %d: got %d", i, v)
		}
	}
	if st := rt.Stats(); st.Steals == 0 {
		t.Fatal("stress run never performed a steal")
	}
}

// BenchmarkCoreDelegateSkewed is the paper's core imbalance scenario:
// dependence chains of very uneven length. 64 serialization sets enter the
// epoch with sticky owners from their (cheap) earlier chains — 16 "hot" sets
// all owned by delegate 1, 48 cold sets spread over the rest — and then 90%
// of the epoch's operations land on the hot sets. Without stealing, delegate
// 1 serializes ~90% of the work while its peers idle; with stealing, hot
// sets are handed to underloaded delegates at their first quiescent moment.
//
// The "blocking" variants give each operation a short sleep (a stand-in for
// I/O-bound delegate work), so rebalancing shows up in wall clock even on a
// single-CPU host — delegates overlap their blocked time. The "cpu" variants
// are pure compute: on a multi-core host they show the same shape; on one
// CPU total work is serialized regardless of placement, so expect them flat
// there (see BENCH_PR2.json).
func BenchmarkCoreDelegateSkewed(b *testing.B) {
	const (
		delegates = 4
		hotSets   = 16
		coldSets  = 48
		nOps      = 2000
	)
	var sink atomic.Uint64
	blockingOp := func(int) { time.Sleep(20 * time.Microsecond) }
	cpuOp := func(int) {
		x := uint64(1)
		for j := 0; j < 300; j++ {
			x = x*1664525 + 1013904223
		}
		sink.Add(x)
	}
	run := func(b *testing.B, stealing bool, op func(int)) {
		steals := uint64(0)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rt := New(Config{Delegates: delegates, Policy: LeastLoaded, Stealing: stealing})
			rt.BeginIsolation()
			// Install the skewed sticky ownership the uneven earlier chains
			// would have left behind (lastPos 0: those chains completed).
			for s := 0; s < hotSets; s++ {
				rt.setOwner[uint64(s)] = &setEntry{ctx: 1}
			}
			for s := 0; s < coldSets; s++ {
				rt.setOwner[uint64(hotSets+s)] = &setEntry{ctx: 2 + s%(delegates-1)}
			}
			b.StartTimer()
			hot, cold := 0, 0
			for k := 0; k < nOps; k++ {
				if k%10 != 9 {
					rt.Delegate(uint64(hot%hotSets), op)
					hot++
				} else {
					rt.Delegate(uint64(hotSets+cold%coldSets), op)
					cold++
				}
			}
			rt.EndIsolation() // barrier: include completing the backlog
			b.StopTimer()
			steals += rt.Stats().Steals
			rt.Terminate()
		}
		b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
	}
	b.Run("blocking-nosteal", func(b *testing.B) { run(b, false, blockingOp) })
	b.Run("blocking-steal", func(b *testing.B) { run(b, true, blockingOp) })
	b.Run("cpu-nosteal", func(b *testing.B) { run(b, false, cpuOp) })
	b.Run("cpu-steal", func(b *testing.B) { run(b, true, cpuOp) })
}

// TestDrainBatchesCount: a backlog released at once must be consumed through
// the batched drain path, visible in the DrainedOps counter.
func TestDrainBatchesCount(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1, DelegateBatch: 1})
	rt.BeginIsolation()
	release := startGated(rt, 0)
	var ran atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		rt.Delegate(0, func(int) { ran.Add(1) })
	}
	release()
	rt.EndIsolation()
	if got := ran.Load(); got != n {
		t.Fatalf("ran = %d, want %d", got, n)
	}
	st := rt.Stats()
	if st.DrainBatches == 0 || st.DrainedOps == 0 {
		t.Fatalf("drain counters zero after a %d-op backlog: %+v", n, st)
	}
	if st.DrainedOps < n/2 {
		t.Fatalf("DrainedOps = %d, want most of the %d-op backlog drained in runs", st.DrainedOps, n)
	}
}
