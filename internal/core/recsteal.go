package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Recursive-mode whole-set work stealing — the occupancy-aware scheduling
// subsystem that lets the fastest execution mode rebalance. The paper's
// scalability argument rests on sets being free to move between delegates
// (per-set program order is the only invariant), but recursive mode has a
// property the flat rebalancer cannot handle: delegations arrive from MANY
// producer contexts, each through its own SPSC lane, so "the set is
// quiescent on its owner" is no longer one position against one executed
// counter.
//
// The multi-producer quiescent handoff generalizes the flat protocol:
//
//   - Each producer context p keeps a padded single-writer counter of the
//     messages it has pushed into each delegate's lane p (laneSent[d][p]),
//     and each delegate publishes, per lane, how many of that lane's
//     messages it has finished executing (recDelegate.laneExec[p], stored
//     at drain-run boundaries). Lanes are FIFO, so "executed count >=
//     position" proves everything at or before that position ran.
//
//   - The owner table's entry for a set records, per producer, the lane
//     position of the set's newest operation on the current owner
//     (recSetEntry.lastPos). A set is quiescent on its owner exactly when
//     EVERY producer's recorded position is covered by the owner's
//     executed counter for that producer's lane — the safe multi-producer
//     handoff boundary. In-flight work needs no lock and no explicit ack
//     from the victim: the victim's per-lane executed publishes at
//     drain-run boundaries ARE the ack; the per-set stamp below counts the
//     handoffs for tests and debugging.
//
//   - Only the set's producer (one context per set per isolation epoch —
//     the discipline Checked mode enforces) routes operations to it, so
//     the migration itself is a single-writer update: zero every former
//     producer's lastPos (positions are relative to the OLD owner's
//     counters, and the migration-time quiescence proof makes them moot),
//     conservatively fence the producer's own lastPos at the thief's
//     current lane position so the set cannot immediately migrate again
//     ahead of work already queued in the thief's lane, then store the
//     thief as owner and bump the per-set handoff stamp. Everything
//     delegated to the set before the handoff
//     has executed on the victim before the first operation after it is
//     enqueued on the thief, so per-set program order — and with it the
//     model's determinism — is preserved by construction; only placement
//     responds to load.
//
//   - Migrating a set also moves the PRODUCER ROLE its operations play:
//     operations of the migrated set that delegate further (nested sets)
//     start arriving through the thief's lanes instead of the victim's.
//     That handover is only safe if nothing THE MIGRATING SET'S OWN
//     operations pushed through the victim's lanes is still in flight —
//     the outbound-coverage condition, checked against a precise per-set
//     outbound ledger. While an operation of set S executes on S's owner
//     v, the drain loop stamps S as v's producing set
//     (recDelegate.prodSet); every nested delegation that operation
//     issues records its lane position into S's entry
//     (recSetEntry.outPos[d] = the laneSent[d][v] count of the newest
//     S-issued message in delegate d+1's lane v). S may migrate away from
//     v exactly when, for every target d, outPos[d] is covered by d's
//     laneExec[v]: lanes are FIFO, so coverage proves every nested
//     delegation S's operations ever issued from v has executed — the
//     nested sets have nothing of S's in flight, and delegations arriving
//     through the thief's lanes afterwards are fully ordered behind them.
//
//     Why per-set suffices where PR 4 demanded ALL of v's outbound lanes
//     drained: a nested set receives its delegations from the operations
//     of ONE producing set (or from the program context) — the sharpened
//     producer discipline below — so traffic that OTHER sets' operations
//     pushed through v's lanes targets nested sets S never feeds. Its
//     coverage is irrelevant to S's handover, and waiting on it is what
//     opened the self-delegation livelock the ledger closes: a set
//     force-evacuated off its own producer's delegate could be vetoed
//     forever by unrelated streams (Config.LegacyOutboundVeto restores
//     that veto as a negative control; the livelock regression stress
//     proves the hang under it).
//
//     The ledger write is attribution by execution context: only v runs
//     S's operations, only while one is executing, so outPos has a single
//     writer at any time, and it is frozen whenever S is quiescent on v —
//     every S operation has finished, and only S's producer (the context
//     performing the migration check) can start another. The migration
//     check therefore reads stable values: quiescence is checked first,
//     and the laneExec publishes that proved it are the release/acquire
//     edge that makes all prior outPos stores visible.
//
//     recRoute still double-checks the property per nested set: a
//     delegation that changes a set's recorded producer must find the set
//     quiescent, which Checked mode enforces with a panic. The ledger is
//     a snapshot, so it sharpens the program-side discipline rather than
//     replacing it: under stealing, a nested set must receive its
//     delegations from the operations of ONE producing set (or from the
//     program context) — not merely one context. Two parent sets on one
//     delegate feeding the same nested set satisfies the static
//     one-context rule, but migrating either parent would split the
//     nested set's delegations across two contexts with no mutual order,
//     which no ledger can prevent at migration time. recRoute's
//     quiescence check is exactly the runtime test of this rule, and its
//     panic names it.
//
//   - One placement is migrated regardless of load: a set owned by its own
//     producer's delegate (a producer handover can create this) is
//     force-evacuated, because every operation routed there would be a
//     self-delegation the producer may block on. The evacuation needs the
//     same quiescence + outbound-coverage conditions as an ordinary
//     steal; when only coverage is missing — and the uncovered lanes
//     target OTHER delegates, which drain independently — the producer
//     waits for coverage on the spot (bounded, event-driven off the
//     ledger: waitRecOutboundCoverage) instead of retrying on a future
//     delegation that a blocking program may never issue.
//
// Placement seeds come from the static assignment table (the same route
// non-stealing recursive mode uses), optionally overridden for the
// previous epoch's hottest sets by BeginIsolation's round-robin pre-
// placement (reseed), and migrate from there.

// recSetEntry is the recursive owner table's record of one serialization
// set. All fields are atomics: the set's single producer writes them, but
// the program context (stats, reseeding) and — under a violated producer
// discipline, which Checked mode turns into a panic — other contexts may
// observe them.
type recSetEntry struct {
	// owner is the context id of the delegate currently executing the set.
	owner atomic.Int32
	// producer is the context that most recently delegated to the set (-1
	// until the first delegation). A producer change is a handover: legal
	// only at a quiescent point of the set, because the new producer's lane
	// has no order against in-flight operations in the old producer's lane.
	// Handovers happen legitimately when the set that ISSUES these
	// delegations migrates — the outbound-drain condition in maybeStealRec
	// guarantees the quiescence this check then observes.
	producer atomic.Int32
	// stamp counts whole-set handoffs this epoch (the per-set epoch
	// stamp): bumped once per migration, after the new owner is published.
	// Nothing on the drain or delegation path depends on it today — the
	// protocol's ordering rests entirely on the laneSent/laneExec ledgers —
	// it is observability state: tests and debugging read it to tell that
	// (and how often) a set moved between two of their own reads.
	stamp atomic.Uint64
	// ops counts operations delegated to the set this epoch; BeginIsolation
	// ranks the previous epoch's sets by it to pre-place the hottest ones.
	ops atomic.Uint64
	// lastPos[p] is the lane position (producer p's laneSent count for the
	// owner's lane p) of the set's newest operation — the value the owner's
	// laneExec[p] must reach before the set may move.
	lastPos []atomic.Uint64
	// outPos[d] is the per-set outbound ledger: the lane position
	// (laneSent[d][owner] count) of the newest nested delegation THIS
	// SET'S operations pushed into delegate d+1's lane `owner`. Written by
	// the owner's drain goroutine while one of the set's operations
	// executes (noteOutbound), read by the set's producer at migration
	// checks, zeroed at migration (positions are relative to the old
	// owner's lanes, and the coverage proof at the handoff boundary makes
	// them moot — exactly the lastPos rebase argument). The set may leave
	// its owner v only when every outPos[d] is covered by delegate d+1's
	// laneExec[v].
	outPos []atomic.Uint64
	// poison mirrors the global poison table's entry for this set
	// (fault.go) — nil unless one of the set's operations panicked this
	// epoch, so the fault-free rebalancer pays one pointer load past the
	// streaming fast path and the hot-set ranking a nil compare. Written by
	// the faulting delegate (recordPanic) before it publishes the faulted
	// operation's counters, which is what makes the no-steal check
	// deterministic: any producer that proves the set quiescent has
	// observed those counters, and therefore this pointer.
	poison atomic.Pointer[PanicFault]
}

// recOwnerTable is the concurrent set->entry map behind the recursive
// owner table, specialized to uint64 keys so the lookup every stealing
// delegation performs allocates nothing (a sync.Map would box every set id
// into an interface). Reads are lock-free: bucket heads are atomic
// pointers to immutable chain nodes, so a lookup is one scrambled-hash
// index plus a chain walk. Inserts — once per set per epoch — serialize on
// one mutex, re-check under it, and grow the bucket array by rehashing
// into fresh nodes (readers keep walking the old array; anything they miss
// sends them to the insert path, which re-checks).
type recOwnerTable struct {
	buckets atomic.Pointer[[]atomic.Pointer[recSetNode]]
	mu      sync.Mutex
	count   int
}

type recSetNode struct {
	set   uint64
	entry *recSetEntry
	next  *recSetNode // immutable after the node is published
}

// recOwnerBuckets is the initial bucket count (doubles when load factor
// passes 2 chained entries per bucket).
const recOwnerBuckets = 256

func newRecOwnerTable() *recOwnerTable {
	t := &recOwnerTable{}
	b := make([]atomic.Pointer[recSetNode], recOwnerBuckets)
	t.buckets.Store(&b)
	return t
}

// mixSet scrambles a set id into a bucket hash (SplitMix64 finalizer).
func mixSet(set uint64) uint64 {
	set += 0x9e3779b97f4a7c15
	set = (set ^ (set >> 30)) * 0xbf58476d1ce4e5b9
	set = (set ^ (set >> 27)) * 0x94d049bb133111eb
	return set ^ (set >> 31)
}

// lookup returns the set's entry, or nil. Lock- and allocation-free.
func (t *recOwnerTable) lookup(set uint64) *recSetEntry {
	b := *t.buckets.Load()
	for n := b[mixSet(set)&uint64(len(b)-1)].Load(); n != nil; n = n.next {
		if n.set == set {
			return n.entry
		}
	}
	return nil
}

// insert publishes entry for set unless another producer got there first,
// returning the entry that won.
func (t *recOwnerTable) insert(set uint64, entry *recSetEntry) *recSetEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.lookup(set); e != nil {
		return e // lost the publish race; adopt the winner
	}
	b := *t.buckets.Load()
	if t.count >= 2*len(b) {
		b = t.grow(b)
	}
	slot := &b[mixSet(set)&uint64(len(b)-1)]
	slot.Store(&recSetNode{set: set, entry: entry, next: slot.Load()})
	t.count++
	return entry
}

// grow doubles the bucket array, rehashing every chain into fresh nodes
// (old nodes stay intact for concurrent readers), and publishes it.
// Caller holds mu.
func (t *recOwnerTable) grow(old []atomic.Pointer[recSetNode]) []atomic.Pointer[recSetNode] {
	nb := make([]atomic.Pointer[recSetNode], 2*len(old))
	for i := range old {
		for n := old[i].Load(); n != nil; n = n.next {
			slot := &nb[mixSet(n.set)&uint64(len(nb)-1)]
			slot.Store(&recSetNode{set: n.set, entry: n.entry, next: slot.Load()})
		}
	}
	t.buckets.Store(&nb)
	return nb
}

// forEach visits every (set, entry) pair. Program context, between epochs.
func (t *recOwnerTable) forEach(fn func(set uint64, e *recSetEntry)) {
	b := *t.buckets.Load()
	for i := range b {
		for n := b[i].Load(); n != nil; n = n.next {
			fn(n.set, n.entry)
		}
	}
}

// recStealState carries the stealing-only scheduling state of recursive
// mode; nil unless Config.Stealing.
type recStealState struct {
	// owners is the dynamic set->*recSetEntry table for the current epoch.
	// An atomic pointer so BeginIsolation can swap in a freshly seeded
	// table without racing late snapshot readers.
	owners atomic.Pointer[recOwnerTable]
	// laneSent[d][p] counts every message (method, sync, terminate)
	// producer p has pushed into delegate d+1's lane p. Single writer
	// (producer p), padded so concurrent producers never share a line.
	laneSent [][]recCounter
	// migrations[p] counts whole-set handoffs producer p performed;
	// aggregated into Stats.Steals and Stats.Handoffs. forcedEvacs,
	// outVetoes and outStamps are its siblings for the per-set outbound
	// ledger: forced evacuations off a set's own producer's delegate,
	// migration attempts vetoed by missing outbound coverage, and ledger
	// writes (outPos stores) — the last indexed by the RECORDING context,
	// i.e. the delegate executing the producing set's operation.
	migrations  []recCounter
	forcedEvacs []recCounter
	outVetoes   []recCounter
	outStamps   []recCounter
}

func newRecStealState(delegates, producers int) *recStealState {
	st := &recStealState{
		laneSent:    make([][]recCounter, delegates),
		migrations:  make([]recCounter, producers),
		forcedEvacs: make([]recCounter, producers),
		outVetoes:   make([]recCounter, producers),
		outStamps:   make([]recCounter, producers),
	}
	for d := range st.laneSent {
		st.laneSent[d] = make([]recCounter, producers)
	}
	st.owners.Store(newRecOwnerTable())
	return st
}

func newRecSetEntry(owner int, producers int) *recSetEntry {
	e := &recSetEntry{
		lastPos: make([]atomic.Uint64, producers),
		outPos:  make([]atomic.Uint64, producers-1), // one slot per delegate
	}
	e.owner.Store(int32(owner))
	e.producer.Store(-1)
	return e
}

// quiescentOn reports whether every producer's recorded position for the
// set is covered by delegate owner's per-lane executed counters — the safe
// handoff (and producer-handover) boundary.
func (e *recSetEntry) quiescentOn(owner *recDelegate) bool {
	for q := range e.lastPos {
		if e.lastPos[q].Load() > owner.laneExec[q].Load() {
			return false
		}
	}
	return true
}

// recOccupancy returns delegate ctx's occupancy under recursive stealing:
// messages routed to any of its lanes that it has not finished executing.
// O(producers) single-writer counter loads. Readers are arbitrary contexts
// racing both counters, so per lane the executed side is loaded FIRST:
// executed(t1) <= pushes(t1) <= sent(t1) <= sent(t2) (both counters are
// monotone and sent is bumped before the push), so the difference cannot
// underflow no matter how much the lane moves between the two loads —
// loading sent first would let a concurrent push+drain wrap it to ~2^64
// and corrupt every consumer of the number (threshold gate, thief scan,
// imbalance EWMA).
func (rt *Runtime) recOccupancy(ctx int) uint64 {
	st := rt.rec.steal
	d := rt.rec.delegates[ctx-1]
	var occ uint64
	for p := range st.laneSent[ctx-1] {
		exec := d.laneExec[p].Load()
		occ += st.laneSent[ctx-1][p].n.Load() - exec
	}
	return occ
}

// recRoute resolves the owner of a set on the delegation path under
// recursive stealing, running the rebalancer for already-owned sets and
// recording the new operation's lane position against the entry. It
// returns the owning delegate context. Called only by the set's producer.
func (rt *Runtime) recRoute(producer int, set uint64) int {
	st := rt.rec.steal
	owners := st.owners.Load()
	e := owners.lookup(set)
	if e != nil {
		if prev := e.producer.Load(); prev != int32(producer) {
			// Producer handover: the set's delegations now arrive through a
			// different lane, so the set must be quiescent — otherwise the
			// old lane's in-flight operations have no order against the new
			// lane's. The engine only causes handovers at points where this
			// holds (maybeStealRec's outbound-drain condition); reaching a
			// non-quiescent one means the program itself delegated the set
			// from two contexts, the discipline Checked mode rejects.
			if rt.cfg.Checked && prev >= 0 &&
				!e.quiescentOn(rt.rec.delegates[e.owner.Load()-1]) {
				panic(fmt.Sprintf(
					"prometheus: serializer violation: set %d delegated from context %d while operations from context %d are in flight (under recursive stealing a set must receive delegations from one producing set — or the program context — per epoch; producer handover is legal only at a quiescent point)",
					set, producer, prev))
			}
			if !e.producer.CompareAndSwap(prev, int32(producer)) {
				// The CAS can only lose to another context claiming the
				// producer role at the same moment: two concurrent producers
				// on one set, the very violation the quiescence check above
				// can miss when both load a quiescent snapshot. Detect it
				// deterministically in Checked mode; unchecked runs keep the
				// old last-writer-wins behavior (the program is already
				// outside the model, so any placement is as good as another).
				if rt.cfg.Checked {
					panic(fmt.Sprintf(
						"prometheus: serializer violation: set %d delegated from contexts %d and %d concurrently (under recursive stealing a set must receive delegations from one producing set — or the program context — per epoch)",
						set, producer, e.producer.Load()))
				}
				e.producer.Store(int32(producer))
			}
			if int(e.owner.Load()) == producer && e.ops.Load() == 0 {
				// A hot-seeded placement guessed from the previous epoch's
				// producer, and the producer moved onto exactly that
				// delegate: honoring it would make every operation of the
				// set a self-delegation the producer may block waiting on —
				// a placement the engine must never introduce (same rule as
				// the thief scan). Nothing has been delegated yet, so the
				// empty entry can simply be re-homed next door. A set WITH
				// history whose handover lands it on its own producer (e.g.
				// the producing set migrated onto this set's owner) is
				// evacuated by maybeStealRec below, which retries on every
				// delegation under the full safety conditions — including the
				// outbound-drain check a bare re-home here could not honor.
				// The active load sits behind the owner/ops short-circuits
				// so the delegation fast path never pays for it.
				if nAct := int(rt.active.Load()); nAct > 1 {
					e.owner.Store(int32(producer%nAct + 1))
				}
			}
		}
		rt.maybeStealRec(producer, set, e)
	} else {
		// First touch this epoch: seed from the static assignment table
		// (hot sets were pre-placed by reseed before the epoch opened) and
		// let the rebalancer move it from there. Claim the producer role by
		// CAS from the unclaimed -1: the lookup above missing means no
		// delegation to this set has been ORDERED before ours, so a lost CAS
		// can only be another context touching the set concurrently — the
		// same two-producer violation the handover path detects.
		e = owners.insert(set, newRecSetEntry(rt.vmap[set%uint64(len(rt.vmap))], len(rt.rec.enq)))
		if !e.producer.CompareAndSwap(-1, int32(producer)) {
			if rt.cfg.Checked {
				panic(fmt.Sprintf(
					"prometheus: serializer violation: set %d delegated from contexts %d and %d concurrently (under recursive stealing a set must receive delegations from one producing set — or the program context — per epoch)",
					set, producer, e.producer.Load()))
			}
			e.producer.Store(int32(producer))
		}
		if int(e.owner.Load()) == producer && e.ops.Load() == 0 {
			// The static table seeded the first touch onto the producer's
			// own delegate (possible whenever the producing set was itself
			// migrated there by an earlier steal): honoring it would make
			// every operation of the set a self-delegation the producer may
			// block waiting on — and since this is the set's FIRST
			// delegation, maybeStealRec never ran and no later delegation
			// is guaranteed to arrive and evacuate it. Nothing has been
			// delegated yet, so re-home the empty entry next door (the same
			// rule the hot-seed handover branch and the thief scan apply).
			if nAct := int(rt.active.Load()); nAct > 1 {
				e.owner.Store(int32(producer%nAct + 1))
			}
		}
	}
	owner := int(e.owner.Load())
	pos := &st.laneSent[owner-1][producer]
	pos.add(1)
	n := pos.n.Load()
	e.lastPos[producer].Store(n)
	e.ops.Add(1)
	if producer != ProgramContext {
		// A delegate-context delegation is issued by the operation that
		// delegate is currently executing: charge the new lane position to
		// that operation's set — the producing set — so the set carries a
		// precise record of its own outbound traffic.
		rt.noteOutbound(owners, producer, owner, n)
	}
	return owner
}

// noteOutbound records one nested delegation in the producing set's
// outbound ledger: the operation currently executing on delegate context
// `producer` (its set was stamped into prodSet by the drain loop) pushed a
// message at lane position pos into delegate `target`'s lane `producer`.
// The producing set's entry is resolved through a one-slot cache keyed on
// (owner table, set): successive delegations from one operation — and from
// runs of one set's operations — pay a three-field compare instead of a
// table walk; the cache can never go stale across epochs because reseed
// installs a fresh table and the pointer comparison misses. Program-like
// producers (RunParallel pool tasks, stamped noSetID) and sets absent from
// the table record nothing: their traffic belongs to no migratable set, so
// no migration's safety depends on it. Steady-state cost: one plain-field
// compare, two atomic stores, zero allocations.
func (rt *Runtime) noteOutbound(owners *recOwnerTable, producer, target int, pos uint64) {
	d := rt.rec.delegates[producer-1]
	if d.prodSet == noSetID {
		return
	}
	if d.prodEntry == nil || d.prodCachedSet != d.prodSet || d.prodTable != owners {
		d.prodEntry = owners.lookup(d.prodSet)
		d.prodCachedSet = d.prodSet
		d.prodTable = owners
	}
	pe := d.prodEntry
	if pe == nil {
		return
	}
	pe.outPos[target-1].Store(pos)
	rt.rec.steal.outStamps[producer].add(1)
}

// recOutboundCovered reports whether set e may hand its producer role away
// from owner v: every lane position the set's own operations recorded in
// the outbound ledger must be covered by the target delegate's executed
// counter for v's lane. Callers check quiescence first — with the set
// quiescent on v and its producer (the caller) not delegating, outPos is
// frozen, so the read races nothing. Under Config.LegacyOutboundVeto the
// check falls back to PR 4's strictly-stronger global condition (every
// lane v feeds fully drained, any set's traffic), kept for debugging and
// as the livelock stress's negative control.
func (rt *Runtime) recOutboundCovered(e *recSetEntry, v int) bool {
	rec := rt.rec
	if rt.cfg.LegacyOutboundVeto {
		st := rec.steal
		for dx, d := range rec.delegates {
			if st.laneSent[dx][v].n.Load() > d.laneExec[v].Load() {
				return false
			}
		}
		return true
	}
	for dx := range e.outPos {
		if e.outPos[dx].Load() > rec.delegates[dx].laneExec[v].Load() {
			return false
		}
	}
	return true
}

// maybeStealRec is the recursive rebalancer, run by a set's producer on
// every delegation to an already-owned set. The shape mirrors the flat
// maybeSteal — loaded victim, quiescent set, idle-or-far-underloaded thief
// — with the quiescence check widened to every producer lane and the
// producer-handover safety checked against the set's own outbound ledger.
// The common case (owner below threshold) costs O(producers) counter loads
// and no atomics beyond them; nothing on this path takes a lock.
//
// One placement forces a migration regardless of load: the producer's own
// delegate owning the set (a producer handover can create this — e.g. the
// producing set migrated onto the delegate where this nested set lives).
// Every operation routed there would be a self-delegation the producer may
// block waiting on, so the set is evacuated to the least-occupied peer
// under the SAME safety conditions an ordinary steal needs — quiescence
// and the set's own outbound traffic covered. When only coverage is
// missing, the producer waits for it on the spot (event-driven off the
// ledger, bounded — see waitRecOutboundCoverage) rather than retrying on a
// later delegation: for a program about to block mid-operation on this
// very set, this delegation is the last scheduling decision the engine
// ever gets to make.
func (rt *Runtime) maybeStealRec(producer int, set uint64, e *recSetEntry) {
	rec := rt.rec
	st := rec.steal
	v := int(e.owner.Load())
	vd := rec.delegates[v-1]
	// O(1) fast path first: a streaming set's newest operation from this
	// producer is almost always still queued or running, and that alone
	// rules the handoff out — two loads, before any O(producers) scan.
	if e.lastPos[producer].Load() > vd.laneExec[producer].Load() {
		return
	}
	if e.poison.Load() != nil {
		// Poisoned sets are never stolen — and never force-evacuated: every
		// further delegation to the set is dropped at the producer, so the
		// self-delegation hazard the evacuation exists for cannot arise. The
		// fast path above proved this producer's newest operation covered,
		// which happens-after the faulting operation's counter publish and
		// therefore after the poison store: the check cannot race the fault.
		return
	}
	forced := v == producer // self-owned: evacuate, don't wait for load
	var vOut uint64
	if !forced {
		vOut = rt.recOccupancy(v)
		if vOut < uint64(rt.stealThreshold()) {
			return
		}
	}
	if !e.quiescentOn(vd) {
		return // another producer's newest op on this set is queued or running
	}
	// Outbound-coverage condition: every nested delegation THIS SET'S
	// operations pushed through the victim's lanes must have executed.
	// Migrating the set moves the producer role of its operations, and the
	// only way its nested sets' per-lane order survives the handover is if
	// everything the set already fed them has run first. Other sets'
	// in-flight lanes are irrelevant (they feed other nested sets, by the
	// one-producing-set discipline) and no longer block the migration —
	// that over-wide veto was PR 4's livelock.
	if !rt.recOutboundCovered(e, v) {
		if !forced || !rt.waitRecOutboundCoverage(e, v) {
			st.outVetoes[producer].add(1)
			return
		}
	}
	thief, tOut := 0, ^uint64(0)
	for _, d := range rec.delegates[:int(rt.active.Load())] {
		if d.id == v || d.id == producer {
			// Never hand a set to its own producer's context: that would
			// silently turn its operations into self-delegations, and a
			// producer that waits on them mid-operation (markers, wave
			// throttling) could then never see them run — the engine must
			// not introduce a placement the program didn't choose that only
			// the spill tier keeps from deadlocking outright.
			continue
		}
		if o := rt.recOccupancy(d.id); o < tOut {
			thief, tOut = d.id, o
		}
	}
	if thief == 0 || (!forced && tOut*rt.stealRatio() > vOut) {
		return // no peer meaningfully less occupied than the victim
	}
	if rt.cfg.Checked && (!e.quiescentOn(vd) || !rt.recOutboundCovered(e, v)) {
		// Debug cross-check of the third-generation protocol: the checks
		// above just passed, the set's producer is us, and both conditions
		// read monotone counters — re-reading them false here means the
		// ledger itself was corrupted (a stamp from an operation that
		// should not have been running, i.e. a producer-discipline
		// violation the earlier snapshots missed).
		panic(fmt.Sprintf(
			"prometheus: serializer violation: set %d migrating off delegate %d while the per-set ledger shows uncovered traffic (an operation of the set, or a nested delegation it issued, is still in flight — under recursive stealing a set must receive delegations from one producing set per epoch)",
			set, v))
	}
	// Quiescent multi-producer boundary reached: hand the whole set over.
	// lastPos values are lane positions relative to ONE owner's counters,
	// and the owner is about to change, so every recorded position is now
	// meaningless: former producers' entries would be compared against the
	// thief's unrelated laneExec and could keep the set looking
	// non-quiescent forever (blocking every future handoff, and spuriously
	// tripping the Checked-mode handover panic on a legal program). The
	// quiescence + outbound-drain checks above proved the set fully drained
	// on the victim, and we are its sole producer, so zero the stale
	// entries, fence our own lastPos at the thief's current lane depth (the
	// set must not look quiescent on the thief ahead of messages already
	// queued there), then publish the new owner and stamp the handoff.
	for q := range e.lastPos {
		if q != producer {
			e.lastPos[q].Store(0)
		}
	}
	// The outbound ledger rebases the same way: its positions are counts in
	// lanes the OLD owner feeds, which the coverage check just proved
	// drained; the set's future operations run on the thief and re-record
	// against the thief's lanes, ordered behind this zeroing by the lane
	// FIFO that carries them there.
	for dx := range e.outPos {
		e.outPos[dx].Store(0)
	}
	e.lastPos[producer].Store(st.laneSent[thief-1][producer].n.Load())
	e.owner.Store(int32(thief))
	e.stamp.Add(1)
	st.migrations[producer].add(1)
	if forced {
		st.forcedEvacs[producer].add(1)
	}
	if ts := rt.traceSt; ts != nil {
		// A steal is a scheduling decision, not a span: record it as an
		// instant on the producer's (this goroutine's) buffer.
		now := timeNow()
		ts.record(producer, TraceSteal, set, now, now)
	}
}

// reseed installs a fresh owner table for a new isolation epoch,
// pre-placing the previous epoch's top hot sets round-robin across
// delegates (ranked by per-set op counts, ties broken by set id so the
// seeding itself is deterministic). First-touch placement piles the static
// table's hottest sets onto one delegate and waits for the rebalancer to
// fix it; seeding starts the epoch already spread. A set is never seeded
// onto its previous epoch's producer: producers are stable across epochs
// in practice, and placing a set on its own producer would turn its
// operations into self-delegations the producer may be waiting on (the
// same rule the thief scan applies). Returns how many sets were
// pre-placed. Program context only, between epochs (all contexts
// quiescent).
// producers is the capacity-sized producer count (len(rec.enq)), NOT
// delegates+1: entry arrays must index every context that could ever
// produce, while placement spreads over only the currently active pool.
func (st *recStealState) reseed(delegates, producers int) int {
	prev := st.owners.Load()
	hot := rankHotSets(prev, hotSeedCount(delegates))
	next := newRecOwnerTable()
	slot := 0
	for _, h := range hot {
		d := slot%delegates + 1
		if delegates > 1 && d == int(h.producer) {
			slot++
			d = slot%delegates + 1
		}
		next.insert(h.set, newRecSetEntry(d, producers))
		slot++
	}
	st.owners.Store(next)
	return len(hot)
}

// hotSeedCount bounds how many hot sets BeginIsolation pre-places: two per
// delegate spreads the head of the distribution without pinning the long
// tail to stale placements.
func hotSeedCount(delegates int) int { return 2 * delegates }

// hotSeed is one ranked entry of the closing epoch: the set, how many
// operations it received, and which context produced it.
type hotSeed struct {
	set      uint64
	ops      uint64
	producer int32
}

// topHotSeeds sorts seeds by (ops desc, set asc) — the deterministic
// hotness ranking both owner tables share — and truncates to the top k.
// The input is every set the closing epoch touched (possibly very many;
// only the output is small), so this must stay O(N log N) on the program
// context's epoch-transition path.
func topHotSeeds(all []hotSeed, k int) []hotSeed {
	sort.Slice(all, func(i, j int) bool {
		if all[i].ops != all[j].ops {
			return all[i].ops > all[j].ops
		}
		return all[i].set < all[j].set
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// rankHotSets returns the top-k sets of the previous epoch by
// delegated-op count, hottest first, ties by ascending set id.
func rankHotSets(owners *recOwnerTable, k int) []hotSeed {
	var all []hotSeed
	owners.forEach(func(set uint64, e *recSetEntry) {
		if e.poison.Load() != nil {
			return // poisoned sets are never hot-seeded into the next epoch
		}
		if n := e.ops.Load(); n > 0 {
			all = append(all, hotSeed{set, n, e.producer.Load()})
		}
	})
	return topHotSeeds(all, k)
}

// In-epoch adaptive steal threshold. The capacity-derived default only
// adapts across configurations; within an epoch the right threshold
// depends on how skewed the epoch actually is. Delegates sample the
// max/min delegate-occupancy ratio at drain-run boundaries into an EWMA
// (fixed-point, alpha 1/8), and the effective threshold is the base scaled
// down by that ratio, clamped to the [MinStealThreshold, MaxStealThreshold]
// band: a balanced epoch (ratio ~1) keeps ownership sticky, a skewed one
// (loaded max, idle min) pulls the threshold toward MinStealThreshold so
// help arrives early. Multiple delegates race the read-modify-write;
// losing an update only delays convergence, so no CAS loop is needed.

// ewmaFP is the fixed-point scale of the imbalance EWMA (ratio 1.0 == 16).
const ewmaFP = 16

// imbalanceSampleStride is how many drain runs a delegate completes between
// imbalance samples. Sampling is O(delegates·producers) loads plus RMWs on
// shared EWMA words, so doing it at EVERY drain-run boundary would put
// cross-core cache-line ping-pong inside the hottest consumer loops; one
// sample every stride runs feeds the EWMA the same signal (occupancy spread
// changes over many runs, not one) at a fraction of the cost. Idle
// recursive delegates sample eagerly while spinning down instead — they
// ARE the min-occupancy extreme the EWMA exists to detect, and they have
// nothing better to do — which keeps skew detection fast.
const imbalanceSampleStride = 8

// stealThreshold returns the effective threshold for this delegation:
// the adaptive value when the threshold was derived, the configured one
// when it was explicit.
func (rt *Runtime) stealThreshold() int {
	if rt.cfg.AdaptiveSteal {
		return int(rt.adaptiveThr.Load())
	}
	return int(rt.baseThr.Load())
}

// stealRatio returns the thief-eligibility ratio R for this delegation: a
// steal fires only when the thief's occupancy times R is at most the
// victim's. The imbalance EWMA drives it the same way it drives the
// threshold — at balance (ratio ~1) it is exactly defaultStealRatio, the
// fixed value PR 2–4 hard-coded, and observed skew relaxes it toward
// minStealRatio so a moderately-loaded peer can still help a drowning
// victim; the clamp ceiling bounds how sticky a transiently-low EWMA can
// make ownership. An explicit WithStealThreshold pins both the threshold
// and the ratio (AdaptiveSteal off).
func (rt *Runtime) stealRatio() uint64 {
	if !rt.cfg.AdaptiveSteal {
		return defaultStealRatio
	}
	r := int64(defaultStealRatio*ewmaFP) / rt.imbalanceEWMA.Load()
	if r < minStealRatio {
		r = minStealRatio
	}
	if r > maxStealRatio {
		r = maxStealRatio
	}
	return uint64(r)
}

// noteImbalance folds one max/min occupancy observation into the EWMA and
// re-derives the effective threshold. Called from delegate drain loops
// (flat and recursive) at drain-run boundaries, only when AdaptiveSteal.
func (rt *Runtime) noteImbalance(maxOcc, minOcc uint64) {
	ratio := int64(((maxOcc + 1) * ewmaFP) / (minOcc + 1))
	old := rt.imbalanceEWMA.Load()
	ewma := old + (ratio-old)/8
	if ewma == old && ratio != old {
		// Fixed-point floor stalled the EWMA short of the target; step by
		// one so persistent small imbalances still converge.
		if ratio > old {
			ewma++
		} else {
			ewma--
		}
	}
	if ewma < 1 {
		ewma = 1 // divide guard: racy lost updates must never zero the EWMA
	}
	if ewma != old {
		// Guarded like adaptiveThr below: in a balanced steady state every
		// sampler would otherwise re-store the same value, dirtying the
		// shared line the idle-delegate samplers all read.
		rt.imbalanceEWMA.Store(ewma)
	}
	// At balance (ewma == ewmaFP) this is exactly the configured base —
	// the capacity-derived default the config docs promise — and skew only
	// ever scales it DOWN from there toward the clamp floor.
	thr := rt.baseThr.Load() * ewmaFP / ewma
	if thr < MinStealThreshold {
		thr = MinStealThreshold
	}
	if thr > MaxStealThreshold {
		thr = MaxStealThreshold
	}
	if rt.adaptiveThr.Load() != thr {
		rt.adaptiveThr.Store(thr)
		rt.thresholdAdjusts.Add(1)
	}
}

// sampleImbalanceFlat reads every delegate's O(1) queue depth and feeds the
// spread into the EWMA (flat mode's drain-run boundary sampler).
func (rt *Runtime) sampleImbalanceFlat() {
	maxOcc, minOcc := uint64(0), ^uint64(0)
	for _, d := range rt.delegates[:int(rt.active.Load())] {
		n := uint64(d.queue.Len())
		if n > maxOcc {
			maxOcc = n
		}
		if n < minOcc {
			minOcc = n
		}
	}
	rt.noteImbalance(maxOcc, minOcc)
}

// sampleImbalanceRec is the recursive-mode sampler: occupancy from the
// laneSent/laneExec ledgers (O(delegates*producers) single-writer loads).
func (rt *Runtime) sampleImbalanceRec() {
	maxOcc, minOcc := uint64(0), ^uint64(0)
	for _, d := range rt.rec.delegates[:int(rt.active.Load())] {
		n := rt.recOccupancy(d.id)
		if n > maxOcc {
			maxOcc = n
		}
		if n < minOcc {
			minOcc = n
		}
	}
	rt.noteImbalance(maxOcc, minOcc)
}
