package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// faultCfg is the flat-engine containment fixture: LeastLoaded so the
// owner-table poison cache is exercised alongside the global table.
func faultCfg() Config {
	return Config{Delegates: 2, Policy: LeastLoaded}
}

// TestFlatPanicContainment drives the whole flat containment story: a
// panicking operation does not kill the delegate, poisons its set, later
// delegations to the set are dropped-but-counted, sibling sets are
// untouched, and the fault surfaces through Faults/SetFaults/Poisoned and
// the Stats counters.
func TestFlatPanicContainment(t *testing.T) {
	rt := newTestRuntime(t, faultCfg())
	rt.BeginIsolation()

	var pre, post, sibling atomic.Uint64
	rt.Delegate(10, func(int) { pre.Add(1) })
	rt.Delegate(10, func(int) { pre.Add(1) })
	rt.Delegate(10, func(int) { panic("boom") })
	const dropped = 5
	for i := 0; i < dropped; i++ {
		rt.Delegate(10, func(int) { post.Add(1) })
	}
	for i := 0; i < 4; i++ {
		rt.Delegate(20, func(int) { sibling.Add(1) })
	}
	rt.EndIsolation()

	if pre.Load() != 2 {
		t.Errorf("prefix ops ran %d times, want 2", pre.Load())
	}
	if post.Load() != 0 {
		t.Errorf("ops after the fault ran %d times, want 0", post.Load())
	}
	if sibling.Load() != 4 {
		t.Errorf("sibling set ran %d ops, want 4", sibling.Load())
	}
	if !rt.Poisoned(10) {
		t.Error("faulted set not reported poisoned")
	}
	if rt.Poisoned(20) {
		t.Error("sibling set reported poisoned")
	}
	faults := rt.Faults()
	if len(faults) != 1 {
		t.Fatalf("Faults() returned %d records, want 1", len(faults))
	}
	f := faults[0]
	if f.Set != 10 || f.Value != "boom" || f.Epoch != 1 {
		t.Errorf("fault = {Set:%d Value:%v Epoch:%d}, want {10 boom 1}", f.Set, f.Value, f.Epoch)
	}
	if f.Ctx < 1 || f.Ctx > 2 {
		t.Errorf("fault Ctx = %d, want a delegate context", f.Ctx)
	}
	if !strings.Contains(string(f.Stack), "panic") {
		t.Error("fault stack does not include the panicking frames")
	}
	if sf := rt.SetFaults(10); len(sf) != 1 || sf[0].Value != "boom" {
		t.Errorf("SetFaults(10) = %v, want the one boom record", sf)
	}
	if sf := rt.SetFaults(20); sf != nil {
		t.Errorf("SetFaults(20) = %v, want nil", sf)
	}
	st := rt.Stats()
	if st.Panics != 1 || st.PoisonedSets != 1 || st.DroppedOps != dropped {
		t.Errorf("stats = {Panics:%d PoisonedSets:%d DroppedOps:%d}, want {1 1 %d}",
			st.Panics, st.PoisonedSets, st.DroppedOps, dropped)
	}
}

// TestRecursivePanicContainment is the recursive-engine mirror: the fault
// is contained on a lane drain, the producer-side recEnqueue drop keeps
// the quiescence ledgers consistent, and the barrier still closes.
func TestRecursivePanicContainment(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Recursive: true})
	rt.BeginIsolation()

	var pre, post, sibling atomic.Uint64
	rt.Delegate(10, func(int) { pre.Add(1) })
	rt.Delegate(10, func(int) { panic("rboom") })
	for i := 0; i < 3; i++ {
		rt.Delegate(10, func(int) { post.Add(1) })
	}
	for i := 0; i < 4; i++ {
		rt.Delegate(11, func(int) { sibling.Add(1) })
	}
	rt.EndIsolation()

	if pre.Load() != 1 || post.Load() != 0 || sibling.Load() != 4 {
		t.Errorf("pre/post/sibling = %d/%d/%d, want 1/0/4", pre.Load(), post.Load(), sibling.Load())
	}
	if !rt.Poisoned(10) || rt.Poisoned(11) {
		t.Errorf("Poisoned(10)=%v Poisoned(11)=%v, want true/false", rt.Poisoned(10), rt.Poisoned(11))
	}
	st := rt.Stats()
	if st.Panics != 1 || st.PoisonedSets != 1 || st.DroppedOps != 3 {
		t.Errorf("stats = {Panics:%d PoisonedSets:%d DroppedOps:%d}, want {1 1 3}",
			st.Panics, st.PoisonedSets, st.DroppedOps)
	}
	// Nested delegation from a delegate to a poisoned set is dropped too.
	rt.BeginIsolation()
	rt.Delegate(10, func(int) { pre.Add(1) }) // new epoch: poison cleared
	rt.EndIsolation()
	if pre.Load() != 2 {
		t.Errorf("post-epoch op on previously poisoned set ran %d times, want 2 total", pre.Load())
	}
}

// TestPoisonClearsAtEpochBoundary: poisoning is epoch-scoped, fault
// records are not.
func TestPoisonClearsAtEpochBoundary(t *testing.T) {
	rt := newTestRuntime(t, faultCfg())
	rt.BeginIsolation()
	rt.Delegate(7, func(int) { panic("epoch1") })
	rt.EndIsolation()
	if !rt.Poisoned(7) {
		t.Fatal("set not poisoned after fault")
	}

	rt.BeginIsolation()
	if rt.Poisoned(7) {
		t.Error("poison survived the epoch boundary")
	}
	var ran atomic.Bool
	rt.Delegate(7, func(int) { ran.Store(true) })
	rt.EndIsolation()
	if !ran.Load() {
		t.Error("op on previously poisoned set did not run in the new epoch")
	}
	if len(rt.SetFaults(7)) != 1 {
		t.Error("fault record did not persist across the epoch boundary")
	}
}

// TestCheckedFailFast: in Checked mode a delegation to a poisoned set
// panics at the delegation site with the original fault's stack.
func TestCheckedFailFast(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 1, Checked: true})
	rt.BeginIsolation()
	defer rt.EndIsolation()
	rt.Delegate(3, func(int) { panic("checked-boom") })
	rt.SyncSet(3) // make the poison visible to the program context

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Checked delegation to a poisoned set did not panic")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("recovered %T, want string", v)
		}
		for _, want := range []string{"poisoned set 3", "checked-boom", "original panic stack"} {
			if !strings.Contains(msg, want) {
				t.Errorf("fail-fast message missing %q:\n%s", want, msg)
			}
		}
	}()
	rt.Delegate(3, func(int) {})
}

// TestRunParallelPoolTaskFault: a panicking pool task is contained, the
// barrier closes, the fault is recorded against NoSet, and nothing is
// poisoned.
func TestRunParallelPoolTaskFault(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{Delegates: 2}},
		{"recursive", Config{Delegates: 2, Recursive: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := newTestRuntime(t, tc.cfg)
			var ran atomic.Uint64
			tasks := make([]func(int), 4)
			for i := range tasks {
				i := i
				tasks[i] = func(int) {
					if i == 2 {
						panic("pool-boom")
					}
					ran.Add(1)
				}
			}
			rt.RunParallel(tasks)
			if ran.Load() != 3 {
				t.Errorf("%d healthy tasks ran, want 3", ran.Load())
			}
			faults := rt.Faults()
			if len(faults) != 1 || faults[0].Set != NoSet {
				t.Fatalf("faults = %+v, want one record with Set == NoSet", faults)
			}
			st := rt.Stats()
			if st.Panics != 1 || st.PoisonedSets != 0 || st.DroppedOps != 0 {
				t.Errorf("stats = {Panics:%d PoisonedSets:%d DroppedOps:%d}, want {1 0 0}",
					st.Panics, st.PoisonedSets, st.DroppedOps)
			}
		})
	}
}

// TestFaultInjectorSeam: Config.FaultInjector fires on the executing
// delegate before the method body, and its panic is contained exactly like
// a user-code panic.
func TestFaultInjectorSeam(t *testing.T) {
	var calls atomic.Uint64
	cfg := faultCfg()
	cfg.FaultInjector = func(ctx int, set uint64) {
		calls.Add(1)
		if set == 5 && ctx >= 1 {
			panic("injected")
		}
	}
	rt := newTestRuntime(t, cfg)
	rt.BeginIsolation()
	var ran atomic.Bool
	rt.Delegate(5, func(int) { ran.Store(true) })
	rt.Delegate(6, func(int) {})
	rt.EndIsolation()

	if ran.Load() {
		t.Error("method body ran despite the injector firing before it")
	}
	if calls.Load() != 2 {
		t.Errorf("injector called %d times, want 2", calls.Load())
	}
	faults := rt.SetFaults(5)
	if len(faults) != 1 || faults[0].Value != "injected" {
		t.Fatalf("SetFaults(5) = %+v, want one injected record", faults)
	}
}

// TestTracePanicEvent: containment emits a TracePanic instant carrying the
// set, faulting context, and isolation epoch.
func TestTracePanicEvent(t *testing.T) {
	cfg := faultCfg()
	cfg.Trace = true
	rt := newTestRuntime(t, cfg)
	rt.BeginIsolation()
	rt.Delegate(9, func(int) { panic("traced") })
	rt.EndIsolation()

	var got []TraceEvent
	for _, ev := range rt.TraceEvents() {
		if ev.Kind == TracePanic {
			got = append(got, ev)
		}
	}
	if len(got) != 1 {
		t.Fatalf("trace has %d TracePanic events, want 1", len(got))
	}
	ev := got[0]
	if ev.Set != 9 || ev.Epoch != 1 || ev.Ctx < 1 {
		t.Errorf("TracePanic = {Ctx:%d Set:%d Epoch:%d}, want delegate ctx, set 9, epoch 1", ev.Ctx, ev.Set, ev.Epoch)
	}
	if ev.Kind.String() != "panic" {
		t.Errorf("TracePanic.String() = %q, want %q", ev.Kind.String(), "panic")
	}
}

// TestWatchdogFires wedges a delegate on purpose (an operation that blocks
// on a channel longer than the bound) and asserts the watchdog turns the
// hung SyncContext into a panic carrying the scheduler-state dump.
func TestWatchdogFires(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		dump string // engine-specific marker expected in the state dump
	}{
		{"flat", Config{Delegates: 2, Watchdog: 50 * time.Millisecond}, "flat engine"},
		{"recursive", Config{Delegates: 2, Recursive: true, Watchdog: 50 * time.Millisecond}, "recursive engine"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(tc.cfg)
			gate := make(chan struct{})
			release := func() {
				close(gate)
				rt.Terminate()
			}
			defer release()

			rt.BeginIsolation()
			ctx := rt.Delegate(1, func(int) { <-gate })

			defer func() {
				v := recover()
				if v == nil {
					t.Fatal("watchdog did not fire on a wedged synchronization")
				}
				msg, ok := v.(string)
				if !ok {
					t.Fatalf("recovered %T, want string", v)
				}
				for _, want := range []string{"watchdog", "no delegate progress", tc.dump} {
					if !strings.Contains(msg, want) {
						t.Errorf("watchdog message missing %q:\n%s", want, msg)
					}
				}
				rt.inIsolation = false // unwind the epoch the panic aborted
			}()
			rt.SyncContext(ctx)
			t.Fatal("SyncContext returned while the delegate was wedged")
		})
	}
}

// TestWatchdogQuietWhenProgressing: a workload that keeps publishing
// progress never trips the watchdog, even when the bound is far shorter
// than the total run.
func TestWatchdogQuietWhenProgressing(t *testing.T) {
	cfg := faultCfg()
	cfg.Watchdog = 20 * time.Millisecond
	rt := newTestRuntime(t, cfg)
	rt.BeginIsolation()
	for i := 0; i < 50; i++ {
		rt.Delegate(uint64(i%4), func(int) { time.Sleep(time.Millisecond) })
	}
	rt.EndIsolation() // the barrier outlives the bound; progress keeps it quiet
}

// TestWatchdogDefaults: Checked turns the watchdog on at DefaultWatchdog,
// a negative setting turns it off, and plain builds leave it off.
func TestWatchdogDefaults(t *testing.T) {
	if got := (Config{Checked: true}).withDefaults().Watchdog; got != DefaultWatchdog {
		t.Errorf("Checked default watchdog = %v, want %v", got, DefaultWatchdog)
	}
	if got := (Config{Checked: true, Watchdog: -1}).withDefaults().Watchdog; got != 0 {
		t.Errorf("negative watchdog = %v, want disabled (0)", got)
	}
	if got := (Config{}).withDefaults().Watchdog; got != 0 {
		t.Errorf("plain-build watchdog = %v, want disabled (0)", got)
	}
}
