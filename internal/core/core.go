package core
