package core

import "time"

// Phase identifies which epoch type the program context is currently in.
// Reduction is accounted as its own phase even though it occurs inside an
// aggregation epoch, matching the breakdown of the paper's Figure 5a.
type Phase int

const (
	PhaseAggregation Phase = iota
	PhaseIsolation
	PhaseReduction
)

func (p Phase) String() string {
	switch p {
	case PhaseAggregation:
		return "aggregation"
	case PhaseIsolation:
		return "isolation"
	case PhaseReduction:
		return "reduction"
	default:
		return "unknown"
	}
}

// Stats accumulates runtime counters and the per-phase wall-clock breakdown
// used to regenerate Figure 5a. Most fields are maintained by the program
// context; the drain, recursive, spill, handoff, and threshold counters are
// aggregated from per-delegate (and per-producer, and per-lane) atomics
// when a snapshot is taken, so a Stats() call may observe work mid-flight.
type Stats struct {
	Delegations  uint64 // operations sent to delegate contexts
	InlineExecs  uint64 // operations executed inline in the program context
	Syncs        uint64 // ownership reclaims (synchronization objects)
	Barriers     uint64 // full-runtime barriers (EndIsolation, Sleep)
	Epochs       uint64 // isolation epochs begun
	BatchFlushes uint64 // delegation-buffer flushes (batches delivered)
	BatchedOps   uint64 // delegations delivered through the batch buffer
	Steals       uint64 // serialization sets handed off by the occupancy-aware rebalancer (flat and recursive)
	Handoffs     uint64 // recursive-mode whole-set handoffs (the multi-producer quiescent protocol; a subset of Steals)
	ForcedEvacs  uint64 // recursive handoffs forced off a set's own producer's delegate (self-delegation hazard; a subset of Handoffs)
	DrainBatches uint64 // delegate-side batched drains (PopBatch runs executed)
	DrainedOps   uint64 // invocations delivered through batched drains
	RecursiveOps uint64 // invocations enqueued through recursive lanes (all producers)
	Spills       uint64 // recursive-lane ring overflows absorbed by spill lists

	ThresholdAdjusts uint64 // in-epoch adaptive StealThreshold changes (imbalance-EWMA driven)
	HotSetsPlaced    uint64 // hot sets pre-placed round-robin at BeginIsolation from prior-epoch op counts

	// Elastic-runtime counters (program context, written at the epoch
	// boundary that applies a reconfiguration). Resizes counts applied
	// pool-size changes; ResizeEvacuatedSets counts owner-table entries
	// that were living on a retiring delegate when a scale-down evacuated
	// them back to the surviving pool.
	Resizes             uint64
	ResizeEvacuatedSets uint64

	// Per-set outbound-ledger counters (recursive stealing). OutboundVetoes
	// counts migration attempts blocked because the candidate set's own
	// recorded outbound traffic was not yet covered by the target lanes'
	// executed counters; OutboundTracked counts ledger writes (one per
	// nested delegation issued by a set's operation under stealing) — the
	// ledger's write volume, for sizing its hot-path cost.
	OutboundVetoes  uint64
	OutboundTracked uint64

	// Fault-containment counters (internal/core/fault.go). Panics counts
	// contained delegated-operation panics; PoisonedSets counts sets ever
	// poisoned by one (poisoning is epoch-scoped, the counter cumulative);
	// DroppedOps counts delegations dropped because their set was poisoned
	// — the deterministic skip of everything after a faulting position.
	// DroppedFaults counts fault RECORDS evicted by the bounded retention
	// ring (Config.FaultRecordBound) — nonzero means Err/SetErr describe
	// only the most recent faults, while Panics still counts them all.
	Panics        uint64
	PoisonedSets  uint64
	DroppedOps    uint64
	DroppedFaults uint64

	Aggregation time.Duration
	Isolation   time.Duration
	Reduction   time.Duration
}

// Total returns the wall-clock total across the three phases.
func (s Stats) Total() time.Duration {
	return s.Aggregation + s.Isolation + s.Reduction
}

// phaseClock tracks the current phase and charges elapsed time to it on each
// transition.
type phaseClock struct {
	phase Phase
	start time.Time
}

func newPhaseClock() phaseClock {
	return phaseClock{phase: PhaseAggregation, start: time.Now()}
}

// switchTo charges time elapsed in the current phase to st and enters p.
func (c *phaseClock) switchTo(p Phase, st *Stats) {
	now := time.Now()
	d := now.Sub(c.start)
	switch c.phase {
	case PhaseAggregation:
		st.Aggregation += d
	case PhaseIsolation:
		st.Isolation += d
	case PhaseReduction:
		st.Reduction += d
	}
	c.phase = p
	c.start = now
}
