package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Fault containment. A panicking delegated operation must not kill the
// process (the serving-tier north star: one bad request cannot take the
// runtime down) and must not wedge a barrier (quiescence is proved by
// executed counters only the faulting delegate publishes). Both engines
// therefore run invocations inside recover()-protected execution spans
// (execSpan / recExecSpan): a recovered panic is recorded here, the faulted
// operation is COUNTED AS EXECUTED so every ledger the scheduling protocols
// rest on — flat occupancy, recursive laneExec coverage, barrier sums —
// keeps advancing, and the delegate goroutine stays alive.
//
// Determinism is preserved by set poisoning: the faulting operation's
// serialization set is poisoned for the remainder of the isolation epoch,
// and every subsequent delegation to it is dropped-but-counted. Per-set
// program order makes the outcome deterministic — the set executes exactly
// its prefix up to the faulting position, and everything after is skipped.
// The skip is enforced twice: at delegation time by the producer (the
// cheap, common case) and at drain time by the owner (which closes the
// producer-visibility race: the owner wrote the poison itself, and a
// poisoned set is never stolen — see maybeSteal / maybeStealRec — so its
// backlog always drains on the context that can see the poison).
//
// All fault state is lazily allocated: a fault-free runtime carries one nil
// atomic pointer, the delegation hot path pays one atomic load, and the
// drain loops pay one load per drain run — nothing else, which is what
// keeps the 0 allocs/op gates and the PR1/PR3/PR4 benchmark baselines
// intact with containment compiled in unconditionally.

// NoSet is the serialization-set id reported for faults in operations that
// belong to no set — RunParallel pool tasks. It aliases the engine's
// reserved pool-task sentinel; user delegations may not use it (Checked
// mode rejects it), so a PanicFault carrying it is unambiguous.
const NoSet = noSetID

// PanicFault describes one contained panic: which set's operation faulted
// (NoSet for pool tasks), on which delegate context, in which isolation
// epoch, with the recovered value and the stack captured during unwinding
// (it includes the panicking frames — the original failure site).
type PanicFault struct {
	Set   uint64
	Ctx   int
	Epoch uint64
	Value any
	Stack []byte
}

// faultState is the runtime's containment record, allocated on the first
// contained panic (Runtime.faults stays nil on the fault-free path).
type faultState struct {
	// mu serializes writers (faulting delegates append records and replace
	// the poison map) and record readers; readers never take it on the
	// delegation path.
	mu sync.Mutex
	// poisoned is the current epoch's poisoned-set table, copy-on-write
	// behind an atomic pointer so producers and drain loops read it with one
	// load and no lock. Values point at the fault that poisoned the set.
	// BeginIsolation clears it — poisoning is epoch-scoped; records are not.
	poisoned atomic.Pointer[map[uint64]*PanicFault]
	// records is a bounded ring of the most recent contained panics, in
	// containment order (concurrent faults on different delegates append in
	// arrival order). A long-lived runtime — the serving tier runs for
	// weeks — must not let every contained panic pin a stack forever, so
	// once len(records) reaches bound the oldest record is evicted and
	// droppedRec counts it. head indexes the oldest live record.
	records []*PanicFault
	head    int
	bound   int
	// bySet indexes the live records by serialization set, so the serving
	// tier's per-failed-request SetFaults/SetErr lookups walk only that
	// set's faults instead of every fault the runtime ever contained.
	// Slices hold records in containment order; ring eviction pops the
	// global oldest record, which is by construction the head of its set's
	// slice.
	bySet map[uint64][]*PanicFault

	panics       atomic.Uint64 // contained panics (Stats.Panics)
	poisonedSets atomic.Uint64 // sets ever poisoned (Stats.PoisonedSets)
	dropped      atomic.Uint64 // delegations dropped on poisoned sets (Stats.DroppedOps)
	droppedRec   atomic.Uint64 // fault records evicted by the ring bound (Stats.DroppedFaults)
}

// addRecord appends f to the bounded record ring and the per-set index.
// Caller holds fs.mu.
func (fs *faultState) addRecord(f *PanicFault) {
	if len(fs.records) >= fs.bound {
		old := fs.records[fs.head]
		fs.records[fs.head] = f
		fs.head = (fs.head + 1) % fs.bound
		fs.evictFromIndex(old)
		fs.droppedRec.Add(1)
	} else {
		fs.records = append(fs.records, f)
	}
	fs.bySet[f.Set] = append(fs.bySet[f.Set], f)
}

// evictFromIndex removes the globally-oldest record — the head of its set's
// slice — from the per-set index. Caller holds fs.mu.
func (fs *faultState) evictFromIndex(old *PanicFault) {
	s := fs.bySet[old.Set]
	if len(s) <= 1 {
		delete(fs.bySet, old.Set)
		return
	}
	fs.bySet[old.Set] = s[1:]
}

// snapshotRecords returns the live records oldest-first. Caller holds fs.mu.
func (fs *faultState) snapshotRecords() []PanicFault {
	out := make([]PanicFault, len(fs.records))
	for i := range fs.records {
		out[i] = *fs.records[(fs.head+i)%len(fs.records)]
	}
	return out
}

// lookup returns the fault that poisoned set this epoch, or nil. Lock-free;
// the delegation and drain hot paths call it only after observing a non-nil
// faultState.
func (fs *faultState) lookup(set uint64) *PanicFault {
	m := fs.poisoned.Load()
	if m == nil {
		return nil
	}
	return (*m)[set]
}

// resetPoison clears the poisoned-set table at an epoch boundary (program
// context, all delegates quiescent behind the EndIsolation barrier).
func (fs *faultState) resetPoison() {
	fs.mu.Lock()
	fs.poisoned.Store(nil)
	fs.mu.Unlock()
}

// ensureFaults returns the containment record, allocating it on first use.
func (rt *Runtime) ensureFaults() *faultState {
	if fs := rt.faults.Load(); fs != nil {
		return fs
	}
	fs := &faultState{bound: rt.cfg.FaultRecordBound, bySet: make(map[uint64][]*PanicFault)}
	if rt.faults.CompareAndSwap(nil, fs) {
		return fs
	}
	return rt.faults.Load()
}

// recordPanic is the containment point both engines' recover handlers call:
// capture the stack (still inside the unwinding deferred call, so the
// panicking frames are on it), append the fault record, poison the set, and
// emit the trace event. The caller publishes its executed counters AFTER
// this returns — that ordering is what makes poisoning deterministic for
// everyone else: any context that later proves the faulted operation
// executed (quiescence checks, steal coverage proofs) has a happens-before
// edge to the poison store and must observe it.
//
// Reading rt.epoch from a delegate goroutine is race-free by the epoch
// protocol: the counter only changes in BeginIsolation, which the program
// context reaches only behind a barrier that proved every delegate
// quiescent, and the increment happens-before any operation delegated in
// the new epoch via the queue that delivered it.
func (rt *Runtime) recordPanic(ctx int, set uint64, v any) {
	stack := debug.Stack()
	fs := rt.ensureFaults()
	f := &PanicFault{Set: set, Ctx: ctx, Epoch: rt.epoch, Value: v, Stack: stack}
	fs.mu.Lock()
	fs.addRecord(f)
	if set != noSetID {
		old := fs.poisoned.Load()
		if old == nil || (*old)[set] == nil {
			m := make(map[uint64]*PanicFault, 1)
			if old != nil {
				for s, pf := range *old {
					m[s] = pf
				}
			}
			m[set] = f
			fs.poisoned.Store(&m)
			fs.poisonedSets.Add(1)
			if rec := rt.rec; rec != nil && rec.steal != nil {
				// Mirror the poison into the owner-table entry so the
				// recursive rebalancer's no-steal check is one atomic load.
				if e := rec.steal.owners.Load().lookup(set); e != nil {
					e.poison.Store(f)
				}
			}
		}
	}
	fs.mu.Unlock()
	fs.panics.Add(1)
	if ts := rt.traceSt; ts != nil {
		ts.recordPanicEvent(ctx, set, rt.epoch, timeNow())
	}
}

// maybeDrop implements the producer-side half of set poisoning on the
// delegation path: a delegation to a poisoned set is dropped-but-counted
// (Checked mode fails fast instead, re-raising with the original stack).
// Callers gate on a non-nil faultState, so the fault-free path never
// reaches the map lookup. Returns whether the delegation was dropped.
func (rt *Runtime) maybeDrop(fs *faultState, set uint64) bool {
	f := fs.lookup(set)
	if f == nil {
		return false
	}
	if rt.setOwner != nil {
		// Cache the poison on the flat owner entry: the rebalancer's and the
		// hot-set seeder's exclusion checks become one nil compare.
		if e, ok := rt.setOwner[set]; ok && e.poison == nil {
			e.poison = f
		}
	}
	if rt.cfg.Checked {
		panic(fmt.Sprintf(
			"prometheus: delegation to poisoned set %d: an operation of the set panicked on context %d in epoch %d: %v\n--- original panic stack ---\n%s",
			f.Set, f.Ctx, f.Epoch, f.Value, f.Stack))
	}
	fs.dropped.Add(1)
	return true
}

// Faults returns a snapshot of the retained contained panics (the most
// recent Config.FaultRecordBound of them), in containment order; nil when
// no delegated operation has faulted. Safe from any goroutine: the record
// ring is mutex-protected, so the serving tier's handler goroutines may
// query faults concurrently with the program context and with faulting
// delegates.
func (rt *Runtime) Faults() []PanicFault {
	fs := rt.faults.Load()
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	out := fs.snapshotRecords()
	fs.mu.Unlock()
	return out
}

// SetFaults returns the retained contained panics recorded against one
// serialization set (across all epochs); nil when the set never faulted —
// O(faults on that set) via the per-set index, not O(all faults), because
// the serving tier calls this on every failed request. Safe from any
// goroutine, like Faults.
func (rt *Runtime) SetFaults(set uint64) []PanicFault {
	fs := rt.faults.Load()
	if fs == nil {
		return nil
	}
	var out []PanicFault
	fs.mu.Lock()
	if recs := fs.bySet[set]; len(recs) > 0 {
		out = make([]PanicFault, len(recs))
		for i, f := range recs {
			out[i] = *f
		}
	}
	fs.mu.Unlock()
	return out
}

// DroppedFaults reports how many fault records the bounded ring has
// evicted (Stats.DroppedFaults). Safe from any goroutine.
func (rt *Runtime) DroppedFaults() uint64 {
	fs := rt.faults.Load()
	if fs == nil {
		return 0
	}
	return fs.droppedRec.Load()
}

// Poisoned reports whether the set is poisoned in the current epoch
// (poisoning clears at BeginIsolation; fault records do not). Lock-free —
// one atomic load plus a read-only map lookup — and safe from any
// goroutine: the poison table is copy-on-write.
func (rt *Runtime) Poisoned(set uint64) bool {
	fs := rt.faults.Load()
	return fs != nil && fs.lookup(set) != nil
}

// PoisonedCount reports how many sets are poisoned in the current epoch —
// the live "how degraded is this runtime right now" gauge the serving
// tier's health endpoint exposes (Stats.PoisonedSets is the cumulative
// ever-poisoned counter). Lock-free and safe from any goroutine: the
// poison table is copy-on-write.
func (rt *Runtime) PoisonedCount() int {
	fs := rt.faults.Load()
	if fs == nil {
		return 0
	}
	m := fs.poisoned.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}
