package core

import (
	"runtime"

	"repro/internal/spsc"
)

// DefaultDelegateBatch is the default size of the program context's
// delegation buffer. Small on purpose: the buffer amortizes the wake-signal
// atomic across a burst, and a handful of operations already captures most
// of that win while bounding how long a buffered operation can wait.
const DefaultDelegateBatch = 8

// DefaultStealThreshold is the default victim backlog (outstanding
// operations: sent minus executed) at which the occupancy-aware rebalancer
// considers handing one of the victim's serialization sets to a less-loaded
// delegate. Low enough that a skewed epoch rebalances within its first few
// operations per set, high enough that transient two-or-three-deep queues —
// normal pipelining — never trigger a handoff.
const DefaultStealThreshold = 8

// drainBatchSize bounds the delegate-side drain buffer: after each blocking
// pop, the delegate PopBatches up to this many further invocations and
// executes them without re-arming the wake machinery. 64 invocation-sized
// records is 4KB per delegate — enough to amortize the popped-counter and
// producer-signal stores across deep backlogs without hoarding a large
// resident buffer.
const drainBatchSize = 64

// SchedPolicy selects how serialization sets are assigned to delegate
// contexts.
type SchedPolicy int

const (
	// StaticMod is the paper's policy (§4): the serialization-set id modulo
	// the number of virtual delegates picks a virtual delegate, and a fixed
	// table maps virtual delegates to physical contexts.
	StaticMod SchedPolicy = iota
	// LeastLoaded is the dynamic-scheduling extension the paper names as
	// future work: the first operation of a set in an epoch is assigned to
	// the delegate with the shortest queue, and the set stays sticky to that
	// delegate for the rest of the epoch (preserving per-set ordering).
	LeastLoaded
)

func (p SchedPolicy) String() string {
	switch p {
	case StaticMod:
		return "static-mod"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "unknown"
	}
}

// Config parameterizes a Runtime. The zero value is usable: it selects
// GOMAXPROCS-1 delegates, the paper's static modulus policy, and no program-
// context share.
type Config struct {
	// Delegates is the number of delegate contexts (paper: delegate
	// threads). Default: GOMAXPROCS-1, minimum 1.
	Delegates int

	// VirtualDelegates is the number of virtual delegates used by the
	// static assignment table (paper §4). It must be >= Delegates. Default:
	// 4 * (Delegates + program share), giving the modulus some slack to
	// spread sets.
	VirtualDelegates int

	// ProgramShare is the number of virtual delegates assigned to the
	// program context itself (the paper's assignment ratio): operations in
	// those sets execute inline in the program thread. Default 0.
	ProgramShare int

	// QueueCapacity is the per-delegate communication-queue capacity.
	// Default spsc.DefaultCapacity.
	QueueCapacity int

	// DelegateBatch bounds the program context's delegation buffer: runs of
	// up to DelegateBatch consecutive operations bound for the same delegate
	// are written to its ring as one batch with a single wake-up signal.
	// The buffer is bypassed while the target delegate is idle (an idle
	// delegate needs the operation now, not amortization) and flushed on
	// every target switch, synchronization, barrier, and epoch transition.
	// Default DefaultDelegateBatch; 1 disables batching. Ignored in
	// Sequential and Recursive modes.
	DelegateBatch int

	// Sequential enables the paper's debug mode (§3.3): every delegation
	// executes inline in the program context, in program order, while all
	// serializers and dynamic checks still run. The program computes the
	// same answers with a single goroutine.
	Sequential bool

	// Checked enables the dynamic error detection of §3.3 (serializer
	// consistency tagging, partition state machines). Benchmarks disable it,
	// as the paper does for its performance measurements.
	Checked bool

	// Policy selects the delegate-assignment policy.
	Policy SchedPolicy

	// Stealing enables the occupancy-aware work-stealing extension to the
	// LeastLoaded policy: when a set's sticky owner has at least
	// StealThreshold outstanding operations and the set itself is quiescent
	// (every operation previously delegated to it has executed), the next
	// delegation hands the whole set off to the delegate with the smallest
	// occupancy, provided that delegate is idle or at most a quarter as
	// loaded as the victim. Whole sets — never individual invocations — are
	// the steal unit, so per-set program order is preserved by construction.
	// Requires Policy == LeastLoaded; incompatible with Recursive.
	Stealing bool

	// StealThreshold is the victim backlog (outstanding operations) at which
	// stealing engages. Default DefaultStealThreshold. Ignored unless
	// Stealing is set.
	StealThreshold int

	// Trace enables execution tracing: every delegated-operation execution,
	// synchronization, and epoch transition is recorded with timestamps
	// into per-context buffers, retrievable via Runtime.TraceEvents.
	Trace bool

	// Recursive enables recursive delegation (the paper's named future-work
	// extension): delegated operations may delegate further operations
	// through their execution context. Requires StaticMod and a zero
	// ProgramShare; see internal/core/recursive.go for the semantics.
	Recursive bool
}

// withDefaults returns a copy of c with unset fields filled in.
func (c Config) withDefaults() Config {
	if c.Delegates <= 0 {
		c.Delegates = runtime.GOMAXPROCS(0) - 1
		if c.Delegates < 1 {
			c.Delegates = 1
		}
	}
	if c.ProgramShare < 0 {
		c.ProgramShare = 0
	}
	if c.VirtualDelegates <= 0 {
		c.VirtualDelegates = 4 * (c.Delegates + c.ProgramShare)
	}
	if c.VirtualDelegates < c.Delegates+c.ProgramShare {
		c.VirtualDelegates = c.Delegates + c.ProgramShare
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = spsc.DefaultCapacity
	}
	if c.DelegateBatch <= 0 {
		c.DelegateBatch = DefaultDelegateBatch
	}
	if c.StealThreshold <= 0 {
		c.StealThreshold = DefaultStealThreshold
	}
	return c
}
