package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/spsc"
)

// DefaultWatchdog is the no-progress bound the barrier watchdog uses when
// Checked mode is on and Config.Watchdog was left zero. Generous on
// purpose: the watchdog exists to turn a wedged barrier from a silent hang
// (or a CI timeout) into a state dump, not to police slow operations.
const DefaultWatchdog = 30 * time.Second

// DefaultFaultRecordBound is the default cap on retained contained-panic
// records (Config.FaultRecordBound). 1024 full stack captures is roughly a
// few tens of megabytes worst case — enough history to diagnose a fault
// storm, small enough that a server containing panics for weeks holds
// steady-state memory.
const DefaultFaultRecordBound = 1024

// DefaultDelegateBatch is the default size of the program context's
// delegation buffer. Small on purpose: the buffer amortizes the wake-signal
// atomic across a burst, and a handful of operations already captures most
// of that win while bounding how long a buffered operation can wait.
const DefaultDelegateBatch = 8

// MinStealThreshold/MaxStealThreshold clamp the adaptive StealThreshold
// default. When the option is unset, the victim backlog at which the
// occupancy-aware rebalancer engages is derived from the queue capacity
// (QueueCapacity/4): a deep ring tolerates a deeper backlog before a
// handoff pays, a shallow ring saturates — and starts blocking the
// producer — after only a few operations. The clamp keeps the derived
// value above transient two-or-three-deep pipelining (never below 4) and
// below the point where a victim must be hundreds of operations behind
// before anyone helps (never above 64).
const (
	MinStealThreshold = 4
	MaxStealThreshold = 64
)

// Thief-eligibility ratio clamps. A steal requires the thief to be idle or
// at most 1/R as loaded as the victim; R defaults to defaultStealRatio and,
// under AdaptiveSteal, tracks the same imbalance EWMA as the threshold —
// skewed epochs relax it toward minStealRatio so help arrives even when no
// peer is dramatically idler, balanced epochs tighten it toward
// maxStealRatio-bounded stickiness. An explicit WithStealThreshold pins
// both the threshold and the ratio (AdaptiveSteal off).
const (
	defaultStealRatio = 4
	minStealRatio     = 2
	maxStealRatio     = 8
)

// drainBatchSize bounds the delegate-side drain buffer: after each blocking
// pop, the delegate PopBatches up to this many further invocations and
// executes them without re-arming the wake machinery. 64 invocation-sized
// records is 4KB per delegate — enough to amortize the popped-counter and
// producer-signal stores across deep backlogs without hoarding a large
// resident buffer.
const drainBatchSize = 64

// spinBeforeParkRec bounds a recursive delegate's busy-wait over its
// pending-lane bitmask before it parks on its wake channel. The re-check
// is O(words), far cheaper than the old all-lanes poll, so the loop can
// afford the same order of spin as the SPSC queues.
const spinBeforeParkRec = 128

// SchedPolicy selects how serialization sets are assigned to delegate
// contexts.
type SchedPolicy int

const (
	// StaticMod is the paper's policy (§4): the serialization-set id modulo
	// the number of virtual delegates picks a virtual delegate, and a fixed
	// table maps virtual delegates to physical contexts.
	StaticMod SchedPolicy = iota
	// LeastLoaded is the dynamic-scheduling extension the paper names as
	// future work: the first operation of a set in an epoch is assigned to
	// the delegate with the shortest queue, and the set stays sticky to that
	// delegate for the rest of the epoch (preserving per-set ordering).
	LeastLoaded
)

func (p SchedPolicy) String() string {
	switch p {
	case StaticMod:
		return "static-mod"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "unknown"
	}
}

// Config parameterizes a Runtime. The zero value is usable: it selects
// GOMAXPROCS-1 delegates, the paper's static modulus policy, and no program-
// context share.
type Config struct {
	// Delegates is the number of delegate contexts (paper: delegate
	// threads). Default: GOMAXPROCS-1, minimum 1. Under live
	// reconfiguration this is only the INITIAL pool size: Resize /
	// Reconfigure may move the active count anywhere in [1, MaxDelegates]
	// at epoch boundaries.
	Delegates int

	// MaxDelegates is the pool capacity ceiling for live reconfiguration:
	// every per-delegate structure (queues, lanes, ledgers, trace buffers,
	// per-context views) is pre-allocated for MaxDelegates at New, and
	// Resize/Reconfigure may activate any pool size up to it without
	// reallocating — which is what keeps NumContexts immutable and the
	// per-context arrays the wrappers sized at construction valid for the
	// runtime's whole life. Defaults to Delegates (a fixed pool, no
	// reconfiguration headroom). In recursive mode the lane matrix costs
	// O(MaxDelegates^2) rings, so size the ceiling to the largest pool the
	// process will actually use.
	MaxDelegates int

	// VirtualDelegates is the number of virtual delegates used by the
	// static assignment table (paper §4). It must be >= Delegates. Default:
	// 4 * (Delegates + program share), giving the modulus some slack to
	// spread sets.
	VirtualDelegates int

	// ProgramShare is the number of virtual delegates assigned to the
	// program context itself (the paper's assignment ratio): operations in
	// those sets execute inline in the program thread. Default 0.
	ProgramShare int

	// QueueCapacity is the per-delegate communication-queue capacity. In
	// recursive mode it sizes each producer lane's bounded ring (overflow
	// beyond it goes to the lane's unbounded spill list). Default
	// spsc.DefaultCapacity.
	QueueCapacity int

	// DelegateBatch bounds the program context's delegation buffer: runs of
	// up to DelegateBatch consecutive operations bound for the same delegate
	// are written to its ring as one batch with a single wake-up signal.
	// The buffer is bypassed while the target delegate is idle (an idle
	// delegate needs the operation now, not amortization) and flushed on
	// every target switch, synchronization, barrier, and epoch transition.
	// Default DefaultDelegateBatch; 1 disables batching. Ignored in
	// Sequential and Recursive modes.
	DelegateBatch int

	// Sequential enables the paper's debug mode (§3.3): every delegation
	// executes inline in the program context, in program order, while all
	// serializers and dynamic checks still run. The program computes the
	// same answers with a single goroutine.
	Sequential bool

	// Checked enables the dynamic error detection of §3.3 (serializer
	// consistency tagging, partition state machines). Benchmarks disable it,
	// as the paper does for its performance measurements.
	Checked bool

	// Policy selects the delegate-assignment policy.
	Policy SchedPolicy

	// Stealing enables the occupancy-aware work-stealing extension to the
	// LeastLoaded policy: when a set's sticky owner has at least
	// StealThreshold outstanding operations and the set itself is quiescent
	// (every operation previously delegated to it has executed), the next
	// delegation hands the whole set off to the delegate with the smallest
	// occupancy, provided that delegate is idle or at most a quarter as
	// loaded as the victim. Whole sets — never individual invocations — are
	// the steal unit, so per-set program order is preserved by construction.
	// Requires Policy == LeastLoaded — in recursive mode too, where the
	// handoff additionally waits for every producer's lane position on the
	// set to be covered by the owner's per-lane executed counters (see
	// internal/core/recsteal.go).
	Stealing bool

	// StealThreshold is the victim backlog (outstanding operations) at which
	// stealing engages. When unset it is derived from the queue capacity
	// (QueueCapacity/4, clamped to [MinStealThreshold, MaxStealThreshold])
	// and then adapts *within* each epoch to the observed max/min
	// delegate-occupancy ratio (AdaptiveSteal). An explicit setting is
	// fixed for the run. Ignored unless Stealing is set.
	StealThreshold int

	// AdaptiveSteal marks the StealThreshold as runtime-adaptive: the
	// effective threshold tracks an EWMA of the max/min delegate-occupancy
	// ratio sampled at drain-run boundaries, clamped to [MinStealThreshold,
	// MaxStealThreshold] — skewed epochs rebalance eagerly, balanced epochs
	// keep ownership sticky. Set by withDefaults when StealThreshold was
	// left unset; an explicit threshold disables adaptation.
	AdaptiveSteal bool

	// Trace enables execution tracing: every delegated-operation execution,
	// synchronization, epoch transition, and whole-set steal is recorded
	// with timestamps into per-context buffers, retrievable via
	// Runtime.TraceEvents.
	Trace bool

	// LegacyOutboundVeto restores PR 4's conservative outbound-drain
	// condition for recursive whole-set migration: a set may leave its
	// owner only when EVERY lane the owner feeds as a producer is fully
	// drained, regardless of which set's operations pushed into it. The
	// default (false) uses the precise per-set outbound ledger instead —
	// only the migrating set's own recorded outbound traffic must be
	// covered. The legacy veto is strictly stronger, so it is safe but has
	// a documented liveness hole: a set force-evacuated off its own
	// producer's delegate can be vetoed forever by unrelated in-flight
	// lanes, and a program that blocks mid-operation on its own nested
	// delegations then livelocks. Kept as a debugging/negative-control
	// knob (the livelock regression stress runs under it to prove the
	// hang); not exposed as a public Option.
	LegacyOutboundVeto bool

	// Recursive enables recursive delegation (the paper's named future-work
	// extension): delegated operations may delegate further operations
	// through their execution context. Requires StaticMod and a zero
	// ProgramShare; see internal/core/recursive.go for the semantics.
	Recursive bool

	// FaultInjector, when non-nil, is invoked on the executing delegate
	// immediately before each delegated method invocation runs, with the
	// executing context id and the operation's serialization set (NoSet for
	// pool tasks). A panic thrown by the hook is contained exactly like a
	// panic in the operation itself — the seam the chaos-injection harness
	// (internal/chaos) drives. Internal testing knob, deliberately not
	// exposed as a public Option; a nil hook costs the drain loops one
	// hoisted nil check.
	FaultInjector func(ctx int, set uint64)

	// FaultRecordBound caps how many contained-panic records the runtime
	// retains (internal/core/fault.go): the record store is a ring that
	// evicts the oldest fault once the bound is reached, counting evictions
	// in Stats.DroppedFaults. Unbounded retention is fatal for a
	// long-running server — every contained panic pins its captured stack —
	// while the error surface (Err/SetErr) only ever needs the recent
	// window. Poison state and the fault counters are unaffected by
	// eviction. Default DefaultFaultRecordBound.
	FaultRecordBound int

	// Watchdog bounds how long a blocking synchronization (SyncContext,
	// barrier/EndIsolation, Terminate) will wait while no delegate
	// publishes any progress before panicking with a dump of per-delegate
	// queue depths and ledger positions — turning a wedged barrier into an
	// actionable report instead of a silent hang. Progress is measured by
	// the published executed/drain counters, so a single legitimate
	// operation that runs longer than the bound is indistinguishable from a
	// wedge: size it above the longest operation the program runs. Zero
	// selects the default (DefaultWatchdog when Checked is on, disabled
	// otherwise); negative disables it explicitly.
	Watchdog time.Duration
}

// withDefaults returns a copy of c with unset fields filled in.
func (c Config) withDefaults() Config {
	if c.Delegates <= 0 {
		c.Delegates = runtime.GOMAXPROCS(0) - 1
		if c.Delegates < 1 {
			c.Delegates = 1
		}
	}
	if c.ProgramShare < 0 {
		c.ProgramShare = 0
	}
	if c.MaxDelegates < c.Delegates {
		c.MaxDelegates = c.Delegates
	}
	if c.VirtualDelegates <= 0 {
		// Size the default table for the capacity ceiling, not the initial
		// pool: a Reconfigure up to MaxDelegates must not find fewer virtual
		// delegates than contexts. An EXPLICIT VirtualDelegates below the
		// ceiling stays as given (clamped only to the initial pool) — it is
		// a deliberate bound, and Reconfigure targets above it are rejected
		// with a descriptive error instead of being silently clamped.
		c.VirtualDelegates = 4 * (c.MaxDelegates + c.ProgramShare)
	}
	if c.VirtualDelegates < c.Delegates+c.ProgramShare {
		c.VirtualDelegates = c.Delegates + c.ProgramShare
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = spsc.DefaultCapacity
	}
	if c.DelegateBatch <= 0 {
		c.DelegateBatch = DefaultDelegateBatch
	}
	if c.StealThreshold <= 0 {
		// Adaptive default: scale with the queue depth the backlog is
		// measured against (QueueCapacity was defaulted above), then let
		// the in-epoch imbalance EWMA move it inside the clamp band.
		c.StealThreshold = c.QueueCapacity / 4
		if c.StealThreshold < MinStealThreshold {
			c.StealThreshold = MinStealThreshold
		}
		if c.StealThreshold > MaxStealThreshold {
			c.StealThreshold = MaxStealThreshold
		}
		c.AdaptiveSteal = true
	}
	if c.FaultRecordBound <= 0 {
		c.FaultRecordBound = DefaultFaultRecordBound
	}
	if c.Watchdog == 0 && c.Checked {
		c.Watchdog = DefaultWatchdog
	}
	if c.Watchdog < 0 {
		c.Watchdog = 0 // explicit off
	}
	return c
}

// validate rejects configuration combinations the engine cannot honor.
// Sequential debug mode ignores scheduling options instead of rejecting
// them, so a program can flip one switch to debug any configuration.
func (c Config) validate() {
	if c.Sequential {
		return
	}
	if c.Stealing && c.Policy != LeastLoaded {
		panic("prometheus: Stealing requires the LeastLoaded policy")
	}
	if c.Recursive {
		if c.ProgramShare != 0 {
			panic("prometheus: ProgramShare is incompatible with Recursive (sets must be delegate-owned)")
		}
		// Without stealing, recursive placement is the paper's static
		// assignment; with stealing, placement is dynamic (static seed +
		// occupancy-aware whole-set handoff), which is what LeastLoaded
		// names. Any other pairing would misdescribe what runs.
		if !c.Stealing && c.Policy != StaticMod {
			panic("prometheus: Recursive requires the StaticMod policy (or LeastLoaded with Stealing)")
		}
	}
}

// RuntimeConfig is the runtime-mutable slice of the configuration — the
// knobs Reconfigure may change at an epoch boundary, as opposed to the
// immutable-per-run Config the pool structures were built from. It is held
// behind an atomic pointer with Get/Store semantics: Reconfigure validates
// and stores the desired state from any goroutine, and the program context
// applies it at the next BeginIsolation (the engine's only quiescent
// point). The zero value of each field means "keep the current setting".
type RuntimeConfig struct {
	// Delegates is the desired active pool size, in [1, MaxDelegates].
	// 0 keeps the current size.
	Delegates int

	// StealThreshold rebases the victim-backlog threshold at which the
	// occupancy-aware rebalancer engages. Under AdaptiveSteal this moves
	// the base the in-epoch EWMA scales from; with an explicit threshold
	// it replaces it outright. 0 keeps the current base.
	StealThreshold int
}

// validateReconfig rejects a RuntimeConfig the pool cannot honor,
// descriptively: the reconfiguration surface is driven by operators (admin
// endpoints, autoscalers), so a bad target must come back as an error at
// the call site, not a panic deep in placement at the next epoch.
func (c Config) validateReconfig(rc RuntimeConfig) error {
	if c.Sequential {
		return fmt.Errorf("prometheus: Reconfigure: Sequential mode has no delegate pool to resize")
	}
	if rc.Delegates < 0 {
		return fmt.Errorf("prometheus: Reconfigure: %d delegates is not a valid pool size", rc.Delegates)
	}
	if rc.Delegates > c.MaxDelegates {
		return fmt.Errorf(
			"prometheus: Reconfigure: %d delegates exceeds the pool capacity MaxDelegates=%d (pool structures are pre-allocated at New; raise WithMaxDelegates)",
			rc.Delegates, c.MaxDelegates)
	}
	if rc.Delegates > 0 && rc.Delegates+c.ProgramShare > c.VirtualDelegates {
		return fmt.Errorf(
			"prometheus: Reconfigure: %d delegates (+%d program share) exceeds VirtualDelegates=%d — the static assignment table cannot spread fewer virtual delegates than contexts; raise WithVirtualDelegates",
			rc.Delegates, c.ProgramShare, c.VirtualDelegates)
	}
	if rc.StealThreshold < 0 {
		return fmt.Errorf("prometheus: Reconfigure: negative StealThreshold %d", rc.StealThreshold)
	}
	return nil
}
