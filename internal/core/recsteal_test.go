package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// Unit tests for the recursive whole-set handoff protocol (recsteal.go):
// the owner table, the multi-producer quiescence check against the
// laneSent/laneExec ledgers, the in-epoch adaptive threshold, and hot-set
// seeded placement. The shapes are built by hand (gated operations pin a
// delegate with an observably empty backlog) so every assertion is
// structural, not timing-dependent.

func recStealCfg(delegates, threshold int) Config {
	return Config{
		Delegates:      delegates,
		Recursive:      true,
		Policy:         LeastLoaded,
		Stealing:       true,
		StealThreshold: threshold,
	}
}

// waitLaneExec polls delegate ctx's published per-lane executed counter
// until it covers lane position pos for the given producer.
func waitLaneExec(t *testing.T, rt *Runtime, ctx, producer int, pos uint64) {
	t.Helper()
	d := rt.rec.delegates[ctx-1]
	deadline := time.Now().Add(5 * time.Second)
	for d.laneExec[producer].Load() < pos {
		if time.Now().After(deadline) {
			t.Fatalf("delegate %d lane %d never reached executed=%d (at %d)",
				ctx, producer, pos, d.laneExec[producer].Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// recOwner reads the dynamic owner of a set (0 when untracked).
func recOwner(rt *Runtime, set uint64) int {
	if e := rt.rec.steal.owners.Load().lookup(set); e != nil {
		return int(e.owner.Load())
	}
	return 0
}

// TestRecursiveStealHandsOffQuiescentSet is the recursive analogue of the
// flat handoff test: delegate 1 is pinned by a gated operation while a
// second set — every operation of which has executed — gets its next
// delegation. The rebalancer must hand the whole set to the idle peer.
// Delegates=2, VirtualDelegates=8: vmap[v] = v%2+1, so even sets seed on
// delegate 1 and odd sets on delegate 2.
func TestRecursiveStealHandsOffQuiescentSet(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(2, 1))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	// Set 200 (-> delegate 1) runs one op to completion: entry exists,
	// lane position recorded, covered by laneExec after the drain.
	rt.Delegate(200, func(int) {})
	waitLaneExec(t, rt, 1, ProgramContext, 1)
	if got := recOwner(rt, 200); got != 1 {
		t.Fatalf("set 200 seeded on delegate %d, want 1 (static map)", got)
	}

	// Pin delegate 1 (set 100 -> delegate 1) so it is a loaded victim,
	// then delegate to the quiescent set 200 again.
	release := startGated(rt, 100)
	if ctx := rt.Delegate(200, func(int) {}); ctx != 2 {
		t.Fatalf("quiescent set 200 delegated to %d, want stolen to idle delegate 2", ctx)
	}
	release()
	if got := recOwner(rt, 200); got != 2 {
		t.Fatalf("owner table has set 200 on %d, want 2", got)
	}
	st := rt.Stats()
	if st.Steals != 1 || st.Handoffs != 1 {
		t.Fatalf("Steals/Handoffs = %d/%d, want 1/1", st.Steals, st.Handoffs)
	}
	// Sticky after the handoff: with the thief idle again the set stays.
	waitLaneExec(t, rt, 2, ProgramContext, 1)
	if ctx := rt.Delegate(200, func(int) {}); ctx != 2 {
		t.Fatalf("post-steal delegation went to %d, want sticky thief 2", ctx)
	}
}

// TestRecursiveNoStealWhileInFlight pins the safety half of the
// multi-producer protocol: a set whose newest operation — issued by a
// DELEGATE producer, through its own lane — is still queued on the pinned
// owner must not move, no matter how loaded that owner is, because the
// producer's recorded lane position is not covered by the owner's laneExec.
func TestRecursiveNoStealWhileInFlight(t *testing.T) {
	// Delegates=3, VirtualDelegates=12: set s seeds on delegate s%3+1 for
	// s<12. Set 1 -> delegate 2 (the producer op), set 0 and 3 -> delegate 1.
	rt := newTestRuntime(t, recStealCfg(3, 1))
	rt.BeginIsolation()

	release := startGated(rt, 3) // pin delegate 1
	var order []int
	var owners [2]int
	done := make(chan struct{})
	rt.Delegate(1, func(ctx int) { // runs on delegate 2: the producer
		owners[0] = rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 1) })
		// Owner occupancy >= threshold and a thief (delegate 3) is idle,
		// but op 1 above is still queued behind the gate: no handoff.
		owners[1] = rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 2) })
		close(done)
	})
	<-done
	if owners[0] != 1 || owners[1] != 1 {
		t.Fatalf("in-flight set routed to %v, want [1 1]", owners)
	}
	release()
	rt.EndIsolation()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("per-set order = %v, want [1 2]", order)
	}
	if st := rt.Stats(); st.Handoffs != 0 {
		t.Fatalf("Handoffs = %d, want 0 (set was in flight)", st.Handoffs)
	}
}

// TestRecursiveStealMultiProducerHandoff is the positive multi-producer
// case: a set produced by a delegate context migrates at its quiescent
// boundary — the producer's recorded lane position is covered by the
// victim's per-lane executed counter — and lands on the idle third
// delegate, preserving per-set order across the handoff.
func TestRecursiveStealMultiProducerHandoff(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(3, 1))
	rt.BeginIsolation()

	var order []int
	step1 := make(chan struct{})
	rt.Delegate(1, func(ctx int) { // producer runs on delegate 2
		rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 1) })
		close(step1)
	})
	<-step1
	waitLaneExec(t, rt, 1, 2, 1) // set 0's op (lane: delegate 2 -> 1) executed

	release := startGated(rt, 3) // pin delegate 1: loaded victim
	var stolenTo atomic.Int64
	step2 := make(chan struct{})
	rt.Delegate(1, func(ctx int) {
		stolenTo.Store(int64(rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 2) })))
		close(step2)
	})
	<-step2
	release()
	rt.EndIsolation()

	if got := stolenTo.Load(); got != 3 {
		t.Fatalf("quiescent delegate-produced set routed to %d, want stolen to idle delegate 3", got)
	}
	if got := recOwner(rt, 0); got != 3 {
		t.Fatalf("owner table has set 0 on %d, want 3", got)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("per-set order across handoff = %v, want [1 2]", order)
	}
	st := rt.Stats()
	if st.Handoffs != 1 || st.Steals != 1 {
		t.Fatalf("Handoffs/Steals = %d/%d, want 1/1", st.Handoffs, st.Steals)
	}
}

// TestRecursiveStealStampCountsHandoffs: the per-set epoch stamp advances
// once per migration, so drain-path observers can order handoffs without
// a lock.
func TestRecursiveStealStampCountsHandoffs(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(2, 1))
	rt.BeginIsolation()
	defer rt.EndIsolation()

	rt.Delegate(200, func(int) {})
	waitLaneExec(t, rt, 1, ProgramContext, 1)
	release := startGated(rt, 100)
	rt.Delegate(200, func(int) {}) // steal 1 -> 2
	release()
	e := rt.rec.steal.owners.Load().lookup(200)
	if stamp := e.stamp.Load(); stamp != 1 {
		t.Fatalf("handoff stamp = %d, want 1", stamp)
	}
}

// TestAdaptiveThresholdTracksImbalance drives the EWMA directly: sustained
// skew must pull the effective threshold down to the clamp floor, renewed
// balance must push it back up, and every change must be counted.
func TestAdaptiveThresholdTracksImbalance(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true})
	if !rt.cfg.AdaptiveSteal {
		t.Fatal("derived StealThreshold did not mark AdaptiveSteal")
	}
	base := rt.cfg.StealThreshold
	if got := rt.stealThreshold(); got != base {
		t.Fatalf("initial effective threshold = %d, want base %d", got, base)
	}
	for i := 0; i < 200; i++ {
		rt.noteImbalance(256, 0) // heavy skew
	}
	if got := rt.stealThreshold(); got != MinStealThreshold {
		t.Fatalf("threshold under sustained skew = %d, want clamp floor %d", got, MinStealThreshold)
	}
	for i := 0; i < 400; i++ {
		rt.noteImbalance(3, 3) // balanced pool
	}
	if got := rt.stealThreshold(); got <= MinStealThreshold {
		t.Fatalf("threshold after re-balancing = %d, want > %d", got, MinStealThreshold)
	}
	if got := rt.stealThreshold(); got > MaxStealThreshold {
		t.Fatalf("threshold = %d escaped the [%d,%d] band", got, MinStealThreshold, MaxStealThreshold)
	}
	if st := rt.Stats(); st.ThresholdAdjusts == 0 {
		t.Fatal("ThresholdAdjusts = 0 after threshold movement")
	}
}

// TestExplicitThresholdNotAdaptive: an explicit WithStealThreshold stays
// fixed no matter what the samplers observe.
func TestExplicitThresholdNotAdaptive(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true, StealThreshold: 7})
	if rt.cfg.AdaptiveSteal {
		t.Fatal("explicit StealThreshold marked AdaptiveSteal")
	}
	rt.noteImbalance(1000, 0)
	if got := rt.stealThreshold(); got != 7 {
		t.Fatalf("explicit threshold moved to %d, want 7", got)
	}
}

// TestHotSetSeedingFlat: the closing epoch's hottest sets are pre-placed
// round-robin (hottest first, ties by id) when the next epoch opens, and
// the count is reported.
func TestHotSetSeedingFlat(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true})
	rt.BeginIsolation()
	for i, n := range map[uint64]int{5: 10, 6: 4, 7: 1} {
		for j := 0; j < n; j++ {
			rt.Delegate(i, func(int) {})
		}
	}
	rt.EndIsolation()
	rt.BeginIsolation()
	defer rt.EndIsolation()
	if got := len(rt.setOwner); got != 3 {
		t.Fatalf("seeded owner table has %d entries, want 3", got)
	}
	for set, want := range map[uint64]int{5: 1, 6: 2, 7: 1} {
		e, ok := rt.setOwner[set]
		if !ok || e.ctx != want {
			t.Fatalf("hot set %d seeded on %v (present %v), want delegate %d", set, e, ok, want)
		}
		if e.lastPos != 0 {
			t.Fatalf("seeded set %d carries lastPos %d, want 0 (quiescent)", set, e.lastPos)
		}
	}
	if st := rt.Stats(); st.HotSetsPlaced != 3 {
		t.Fatalf("HotSetsPlaced = %d, want 3", st.HotSetsPlaced)
	}
}

// TestHotSetSeedingFlatTopK: only the top 2*Delegates sets are pre-placed.
func TestHotSetSeedingFlatTopK(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true})
	rt.BeginIsolation()
	for s := uint64(0); s < 10; s++ {
		for j := 0; j <= int(s); j++ {
			rt.Delegate(s, func(int) {})
		}
	}
	rt.EndIsolation()
	rt.BeginIsolation()
	defer rt.EndIsolation()
	if got, want := len(rt.setOwner), hotSeedCount(2); got != want {
		t.Fatalf("seeded %d sets, want top-%d", got, want)
	}
	// Hottest-first round-robin: 9 -> d1, 8 -> d2, 7 -> d1, 6 -> d2.
	for set, want := range map[uint64]int{9: 1, 8: 2, 7: 1, 6: 2} {
		if e := rt.setOwner[set]; e == nil || e.ctx != want {
			t.Fatalf("set %d seeded on %v, want delegate %d", set, e, want)
		}
	}
}

// TestHotSetSeedingRecursive: same contract for the recursive owner table —
// the top sets of the closing epoch enter the new epoch pre-placed
// round-robin instead of on their static homes.
func TestHotSetSeedingRecursive(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(2, MaxStealThreshold)) // high threshold: no migrations
	rt.BeginIsolation()
	for s := uint64(200); s < 210; s += 2 { // all even: static home delegate 1
		for j := uint64(0); j < (s-198)/2; j++ {
			rt.Delegate(s, func(int) {})
		}
	}
	rt.EndIsolation()
	rt.BeginIsolation()
	defer rt.EndIsolation()
	// Hottest first: 208(5 ops)->d1, 206(4)->d2, 204(3)->d1, 202(2)->d2.
	for set, want := range map[uint64]int{208: 1, 206: 2, 204: 1, 202: 2} {
		if got := recOwner(rt, set); got != want {
			t.Fatalf("hot set %d seeded on %d, want delegate %d", set, got, want)
		}
	}
	if got := recOwner(rt, 200); got != 0 {
		t.Fatalf("cold set 200 pre-placed on %d, want untracked (static first touch)", got)
	}
	if st := rt.Stats(); st.HotSetsPlaced != 4 {
		t.Fatalf("HotSetsPlaced = %d, want 4", st.HotSetsPlaced)
	}
}

// TestRecOwnerTableGrowth: the uint64-specialized owner table keeps every
// entry findable across bucket-array growth and publish races.
func TestRecOwnerTableGrowth(t *testing.T) {
	tbl := newRecOwnerTable()
	const n = recOwnerBuckets * 4 // forces two grows
	for i := uint64(0); i < n; i++ {
		e := newRecSetEntry(int(i%4)+1, 5)
		if got := tbl.insert(i*0x10001, e); got != e {
			t.Fatalf("insert %d adopted a foreign entry", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		e := tbl.lookup(i * 0x10001)
		if e == nil || e.owner.Load() != int32(i%4)+1 {
			t.Fatalf("lookup %d after growth = %v", i, e)
		}
	}
	if tbl.lookup(0xdeadbeef) != nil {
		t.Fatal("lookup of absent set returned an entry")
	}
	// Racing insert of an existing set adopts the published entry.
	if got := tbl.insert(0x10001, newRecSetEntry(9, 5)); got.owner.Load() == 9 {
		t.Fatal("duplicate insert replaced the published entry")
	}
	seen := 0
	tbl.forEach(func(uint64, *recSetEntry) { seen++ })
	if seen != n {
		t.Fatalf("forEach visited %d entries, want %d", seen, n)
	}
}

// TestRecursiveStealingOrderStress hammers the gated handoff dance with a
// delegate producer, checking per-set program order end to end across
// repeated migrations (the CI recursive-stress job runs this under -race).
func TestRecursiveStealingOrderStress(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(3, 1))
	var log0, log1 []int
	n0, n1 := 0, 0
	rt.BeginIsolation()
	for iter := 0; iter < 50; iter++ {
		release := startGated(rt, 3) // pin delegate 1 (set 0's static home)
		done := make(chan struct{})
		rt.Delegate(1, func(ctx int) { // producer on delegate 2
			for j := 0; j < 4; j++ {
				v := n0
				n0++
				rt.DelegateFrom(ctx, 0, func(int) { log0 = append(log0, v) })
			}
			close(done)
		})
		<-done
		v := n1
		n1++
		rt.Delegate(3, func(int) { log1 = append(log1, v) })
		release()
		rt.barrier()
	}
	rt.EndIsolation()
	if len(log0) != n0 || len(log1) != n1 {
		t.Fatalf("lost operations: |log0|=%d want %d, |log1|=%d want %d", len(log0), n0, len(log1), n1)
	}
	for i, v := range log0 {
		if v != i {
			t.Fatalf("set 0 order broken at %d: got %d", i, v)
		}
	}
	for i, v := range log1 {
		if v != i {
			t.Fatalf("set 3 order broken at %d: got %d", i, v)
		}
	}
	if st := rt.Stats(); st.Handoffs == 0 {
		t.Fatal("stress run never performed a recursive handoff")
	}
}

// TestRecursivePreciseOutboundVeto pins the safety half of the per-set
// outbound ledger: a set whose OWN operations delegated onward must not
// migrate while that outbound traffic is uncovered — and must migrate as
// soon as it is covered, regardless of the rest of the victim's lanes.
// Delegates=3: set 1 -> delegate 2 (the producer op), sets 0/3 -> delegate
// 1, sets 2/5 -> delegate 3.
func TestRecursivePreciseOutboundVeto(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(3, 1))
	rt.BeginIsolation()

	// Pin delegate 3 so set 0's nested delegation to set 5 stays queued.
	release3 := startGated(rt, 2)

	// Set 0's first op (produced from delegate 2) delegates to set 5 on
	// the gated delegate 3 — set 0's own outbound traffic.
	step1 := make(chan struct{})
	rt.Delegate(1, func(ctx int) {
		rt.DelegateFrom(ctx, 0, func(inner int) {
			rt.DelegateFrom(inner, 5, func(int) {})
		})
		close(step1)
	})
	<-step1
	waitLaneExec(t, rt, 1, 2, 1) // set 0's op itself has executed

	e := rt.rec.steal.owners.Load().lookup(0)
	if got := e.outPos[2].Load(); got != 1 {
		t.Fatalf("set 0 outbound ledger position for delegate 3 = %d, want 1", got)
	}

	// Loaded victim, quiescent set — but set 0's outbound is uncovered:
	// the migration must be vetoed.
	release1 := startGated(rt, 3)
	step2 := make(chan struct{})
	var routed atomic.Int64
	rt.Delegate(1, func(ctx int) {
		routed.Store(int64(rt.DelegateFrom(ctx, 0, func(int) {})))
		close(step2)
	})
	<-step2
	if got := routed.Load(); got != 1 {
		t.Fatalf("set 0 with uncovered outbound routed to %d, want vetoed on owner 1", got)
	}
	release1()
	st := rt.Stats()
	if st.Handoffs != 0 {
		t.Fatalf("Handoffs = %d, want 0 (outbound uncovered)", st.Handoffs)
	}
	if st.OutboundVetoes == 0 {
		t.Fatal("OutboundVetoes = 0 after a vetoed migration")
	}
	if st.OutboundTracked == 0 {
		t.Fatal("OutboundTracked = 0 after ledger stamps")
	}

	// Cover the outbound traffic (unpin delegate 3, let set 5's op run),
	// re-load the victim, and the same delegation must now migrate.
	release3()
	waitLaneExec(t, rt, 3, 1, 1) // set 5's op (lane: delegate 1 -> 3) executed
	waitLaneExec(t, rt, 1, 2, 2) // set 0's second op executed
	release1 = startGated(rt, 3)
	step3 := make(chan struct{})
	rt.Delegate(1, func(ctx int) {
		routed.Store(int64(rt.DelegateFrom(ctx, 0, func(int) {})))
		close(step3)
	})
	<-step3
	release1()
	rt.EndIsolation()
	if got := routed.Load(); got == 1 {
		t.Fatal("set 0 still vetoed after its outbound traffic was covered")
	}
	if got := e.outPos[2].Load(); got != 0 {
		t.Fatalf("outbound ledger not rebased at migration: outPos[2] = %d, want 0", got)
	}
	if st := rt.Stats(); st.Handoffs != 1 {
		t.Fatalf("Handoffs = %d, want 1", st.Handoffs)
	}
}

// TestAdaptiveStealRatio: the thief-eligibility ratio tracks the imbalance
// EWMA — defaultStealRatio at balance, relaxed to the floor under
// sustained skew, clamped at the ceiling for transient sub-balance EWMA
// values — and an explicit WithStealThreshold pins it.
func TestAdaptiveStealRatio(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true})
	if got := rt.stealRatio(); got != defaultStealRatio {
		t.Fatalf("ratio at balance = %d, want %d", got, defaultStealRatio)
	}
	for i := 0; i < 200; i++ {
		rt.noteImbalance(256, 0)
	}
	if got := rt.stealRatio(); got != minStealRatio {
		t.Fatalf("ratio under sustained skew = %d, want floor %d", got, minStealRatio)
	}
	rt.imbalanceEWMA.Store(1) // racy-lost-update floor: must clamp, not explode
	if got := rt.stealRatio(); got != maxStealRatio {
		t.Fatalf("ratio at EWMA floor = %d, want ceiling %d", got, maxStealRatio)
	}
	pinned := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true, StealThreshold: 7})
	pinned.noteImbalance(1000, 0)
	if got := pinned.stealRatio(); got != defaultStealRatio {
		t.Fatalf("explicit threshold did not pin the ratio: got %d, want %d", got, defaultStealRatio)
	}
}

// TestAdaptiveThresholdResetsAtEpoch regresses the stale-sample bug: a
// spun-down epoch's skew (sampled into the EWMA by delegates that have
// since parked) must not leak into the next epoch's effective threshold or
// ratio. BeginIsolation resets both to the configured base.
func TestAdaptiveThresholdResetsAtEpoch(t *testing.T) {
	rt := newTestRuntime(t, Config{Delegates: 2, Policy: LeastLoaded, Stealing: true})
	base := rt.cfg.StealThreshold
	for i := 0; i < 200; i++ {
		rt.noteImbalance(256, 0)
	}
	if got := rt.stealThreshold(); got != MinStealThreshold {
		t.Fatalf("threshold under sustained skew = %d, want clamp floor %d", got, MinStealThreshold)
	}
	rt.BeginIsolation()
	defer rt.EndIsolation()
	if got := rt.stealThreshold(); got != base {
		t.Fatalf("threshold after epoch reset = %d, want base %d", got, base)
	}
	if got := rt.imbalanceEWMA.Load(); got != ewmaFP {
		t.Fatalf("imbalance EWMA after epoch reset = %d, want %d (balance)", got, ewmaFP)
	}
	if got := rt.stealRatio(); got != defaultStealRatio {
		t.Fatalf("ratio after epoch reset = %d, want %d", got, defaultStealRatio)
	}
}

// TestRecursiveFirstTouchOffOwnProducer: a set whose FIRST delegation
// comes from a delegate context and whose static home is that same
// delegate must be re-homed before the push — maybeStealRec never runs on
// the first-touch path, so without the re-home the operation self-enqueues
// and a producer blocking on it (as here) deadlocks with no later
// delegation ever arriving to evacuate the set. Delegates=2: sets 100 and
// 200 both have static home delegate 1.
func TestRecursiveFirstTouchOffOwnProducer(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(2, MaxStealThreshold))
	rt.BeginIsolation()

	var routed atomic.Int64
	done := make(chan struct{})
	go func() {
		rt.Delegate(100, func(ctx int) { // runs on delegate 1
			nestedRan := make(chan struct{})
			routed.Store(int64(rt.DelegateFrom(ctx, 200, func(int) { close(nestedRan) })))
			<-nestedRan // block mid-operation on the first-touch delegation
		})
		rt.EndIsolation()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("first-touch delegation onto its producer's own delegate deadlocked")
	}
	if got := routed.Load(); got != 2 {
		t.Fatalf("first-touch set routed to %d, want re-homed to delegate 2", got)
	}
	if got := recOwner(rt, 200); got != 2 {
		t.Fatalf("owner table has set 200 on %d, want 2", got)
	}
}

// TestRecursiveReservedSetIDChecked: Checked mode rejects the engine's
// reserved pool-task sentinel id — a user set named ^uint64(0) would have
// its nested delegations silently dropped from the outbound ledger.
func TestRecursiveReservedSetIDChecked(t *testing.T) {
	cfg := recStealCfg(2, MaxStealThreshold)
	cfg.Checked = true
	rt := newTestRuntime(t, cfg)
	rt.BeginIsolation()
	defer rt.EndIsolation()
	defer func() {
		if recover() == nil {
			t.Fatal("Checked mode accepted the reserved set id ^uint64(0)")
		}
	}()
	rt.Delegate(^uint64(0), func(int) {})
}

// TestRecursiveHandoverOffOwnProducer: a producer handover that lands on
// the set's own delegate (e.g. the producing set migrated onto the delegate
// where this nested set lives) must evacuate the set — even with history —
// as soon as the safety conditions (quiescence + victim outbound lanes
// drained) hold, here on the very first delegation. A self-delegation
// placement the program didn't choose is hazardous: the producer's
// operations may block waiting on the set's, and the owner would then
// never drain its own lane.
func TestRecursiveHandoverOffOwnProducer(t *testing.T) {
	rt := newTestRuntime(t, recStealCfg(2, MaxStealThreshold)) // no occupancy steals
	rt.BeginIsolation()

	var order []int
	// Set 200 (static home delegate 1) gets history from the program.
	rt.Delegate(200, func(int) { order = append(order, 1) })
	waitLaneExec(t, rt, 1, ProgramContext, 1)

	// Handover to delegate 1's own context: the producing op (set 100,
	// static home delegate 1) delegates to set 200 from context 1.
	var routed atomic.Int64
	done := make(chan struct{})
	rt.Delegate(100, func(ctx int) {
		routed.Store(int64(rt.DelegateFrom(ctx, 200, func(int) { order = append(order, 2) })))
		close(done)
	})
	<-done
	rt.EndIsolation()

	if got := routed.Load(); got != 2 {
		t.Fatalf("handover onto own producer routed to %d, want re-homed to delegate 2", got)
	}
	if got := recOwner(rt, 200); got != 2 {
		t.Fatalf("owner table has set 200 on %d, want 2", got)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("per-set order across forced re-home = %v, want [1 2]", order)
	}
	if st := rt.Stats(); st.Handoffs != 1 {
		t.Fatalf("Handoffs = %d, want 1 (forced re-home is a migration)", st.Handoffs)
	}
}

// TestRecursiveStealResetsStaleProducerPositions regresses the
// handover -> steal -> handover shape: lastPos values recorded by FORMER
// producers are lane positions relative to the OLD owner's counters, so a
// migration must zero them. Left stale, quiescentOn compares them against
// the new owner's unrelated laneExec, the set looks non-quiescent forever
// (no further handoff can ever fire), and the next legal producer handover
// trips the Checked-mode serializer-violation panic on a correct program.
func TestRecursiveStealResetsStaleProducerPositions(t *testing.T) {
	cfg := recStealCfg(3, 1)
	cfg.Checked = true
	rt := newTestRuntime(t, cfg)
	rt.BeginIsolation()

	var order []int
	// The program produces set 0's first op (recording a position in
	// delegate 1's program lane), then hands the producer role to delegate
	// 2's context at the quiescent boundary.
	rt.Delegate(0, func(int) { order = append(order, 1) })
	waitLaneExec(t, rt, 1, ProgramContext, 1)
	step1 := make(chan struct{})
	rt.Delegate(1, func(ctx int) { // producer op runs on delegate 2
		rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 2) })
		close(step1)
	})
	<-step1
	waitLaneExec(t, rt, 1, 2, 1)

	// Steal: pin delegate 1 (set 3's static home) so it is a loaded victim,
	// then delegate to the quiescent set 0 from its current producer.
	release := startGated(rt, 3)
	var stolenTo atomic.Int64
	step2 := make(chan struct{})
	rt.Delegate(1, func(ctx int) {
		stolenTo.Store(int64(rt.DelegateFrom(ctx, 0, func(int) { order = append(order, 3) })))
		close(step2)
	})
	<-step2
	release()
	if got := stolenTo.Load(); got != 3 {
		t.Fatalf("set 0 routed to %d, want stolen to idle delegate 3", got)
	}

	// The migration must have zeroed the former producer's position — it
	// described delegate 1's lanes, which the new owner knows nothing about.
	e := rt.rec.steal.owners.Load().lookup(0)
	if pos := e.lastPos[ProgramContext].Load(); pos != 0 {
		t.Fatalf("former producer's lastPos = %d after migration, want 0", pos)
	}

	// Hand the producer role back to the program context at the new owner's
	// quiescent boundary: a legal handover Checked mode must accept (stale
	// positions would read as in-flight work here and panic).
	waitLaneExec(t, rt, 3, 2, 1)
	rt.Delegate(0, func(int) { order = append(order, 4) })
	rt.EndIsolation()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("per-set order = %v, want [1 2 3 4]", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("per-set order = %v, want [1 2 3 4]", order)
	}
}
