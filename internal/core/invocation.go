package core

import "unsafe"

// invocationKind discriminates the message types carried on the
// communication queues (paper §4: invocation objects, synchronization
// objects, termination objects).
type invocationKind uint8

const (
	kindMethod    invocationKind = iota // delegated method call
	kindSync                            // ownership-reclaim / barrier marker
	kindTerminate                       // shut down the delegate
)

// noSetID marks a method invocation that belongs to no serialization set —
// pool tasks handed out by RunParallel, which execute on delegate contexts
// but were never routed through a set. Under recursive stealing the drain
// loop stamps the executing invocation's set as the producing set of any
// nested delegations it issues (the outbound-attribution half of the
// per-set handoff ledger, recsteal.go); noSetID is what keeps a task's
// delegations from being charged to whatever set the delegate ran last.
// The engine reserves this one id — a user delegation to set ^uint64(0)
// would have its outbound traffic dropped from the ledger — and Checked
// mode rejects it with a panic (recEnqueue).
const noSetID = ^uint64(0)

// Trampoline is the statically-dispatched form of a delegated operation:
// a plain function pointer plus two payload words. Wrapper layers bind one
// trampoline per wrapper type (not per call), so a steady-state delegation
// constructs no closure — the payload words typically carry the wrapper
// pointer and the user callback's funcval pointer, reinterpreted by the
// trampoline on the executing context. Both words are scanned by the GC as
// pointers, so referenced objects stay alive while the invocation is in
// flight.
type Trampoline func(ctx int, p1, p2 unsafe.Pointer)

// Invocation is the unit of communication between the program context and a
// delegate context. It is carried by value in the communication rings, so
// enqueueing one allocates nothing. For kindMethod it carries either a
// static trampoline with two payload words (the zero-allocation fast path)
// or a delegated closure (the flexible fallback used by RunParallel,
// tracing, and recursive lanes), plus the serialization-set id it was
// mapped to; for kindSync and kindTerminate the delegate signals done and
// (for terminate) exits.
type Invocation struct {
	kind  invocationKind
	set   uint64
	fn    func(ctx int)
	tramp Trampoline
	p1    unsafe.Pointer
	p2    unsafe.Pointer
	done  chan struct{}
}

// invoke runs a kindMethod invocation on the given context, dispatching
// through the trampoline when one is present.
func (inv *Invocation) invoke(ctx int) {
	if inv.tramp != nil {
		inv.tramp(ctx, inv.p1, inv.p2)
	} else {
		inv.fn(ctx)
	}
}
