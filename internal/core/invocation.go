package core

// invocationKind discriminates the message types carried on the
// communication queues (paper §4: invocation objects, synchronization
// objects, termination objects).
type invocationKind uint8

const (
	kindMethod    invocationKind = iota // delegated method call
	kindSync                            // ownership-reclaim / barrier marker
	kindTerminate                       // shut down the delegate
)

// Invocation is the unit of communication between the program context and a
// delegate context. For kindMethod it carries the delegated closure and the
// serialization-set id it was mapped to; for kindSync and kindTerminate the
// delegate signals done and (for terminate) exits.
type Invocation struct {
	kind invocationKind
	set  uint64
	fn   func(ctx int)
	done chan struct{}
}
