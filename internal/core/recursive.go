package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/spsc"
)

// Recursive delegation — the extension the paper names as future work
// ("we plan to extend the runtime to support recursive delegation to
// improve programmability", §4) — built to the same performance standard
// as the flat path: zero heap allocations and O(1) work per steady-state
// delegation. With Config.Recursive enabled, delegated operations may
// themselves delegate further operations through their execution context.
//
// Plumbing. SPSC queues admit a single producer, so each delegate owns one
// inbound lane per producer context (the program context and every
// delegate). Lanes are bounded lap-stamped value rings (spsc.Lane, sharing
// the flat path's slot machinery) backed by an unbounded spill list that
// engages only on overflow: a purely bounded lane would self-deadlock when
// a delegate delegates to a set it itself owns (or around a delegation
// cycle), because only blocked contexts could drain it. Delegate producers
// therefore never block — they spill — while the program context, which no
// delegate's progress can depend on, uses the blocking push and gets
// bounded-queue backpressure. In steady state every delegation writes its
// invocation record by value into ring memory: no allocation, no node
// chasing.
//
// Consumption. Each delegate keeps a pending-lane bitmask (bit p set =
// lane p may hold work). A producer publishes work with one conditional
// atomic OR plus a wake check; the delegate claims pending lanes with a
// single Swap and drains each claimed lane in batched runs (the consumer
// mirror of the flat path's PopBatch drain), publishing its executed
// counter once per run instead of once per operation. An idle delegate
// checks O(1) words instead of polling all Delegates+1 lanes round-robin.
//
// Ordering. Per-set program order is preserved per producer: operations a
// producer sends to one set stay in order (one lane, FIFO across ring and
// spill). For the execution to stay deterministic, a serialization set
// must receive delegations from only one producer context per isolation
// epoch — the natural structure of divide-and-conquer programs, enforced
// in checked mode by a sharded producer table.
//
// Quiescence. Barriers change meaning under recursion: draining every lane
// once is not enough, because executing an operation may enqueue more
// work. Each producer context counts what it enqueued (single-writer
// padded counters — no shared hot-path atomics) and each delegate counts
// what it executed; recBarrier aggregates both sides and repeats sync
// rounds until the sums agree across a full quiet round.

// Wake-state values for the delegate parking protocol (the recursive
// analogue of spsc's sleepState).
const (
	recAwake    int32 = iota // delegate is running (or about to re-check)
	recSleeping              // delegate is parked on its wake channel
)

// recDelegate is a delegate context in recursive mode.
type recDelegate struct {
	id    int
	lanes []*spsc.Lane[Invocation] // indexed by producer context id

	// pending is the lane-readiness bitmask, one bit per producer lane
	// (64 lanes per word). Bit p is set by producer p after a push and
	// cleared wholesale by the delegate when it claims a word's lanes for
	// draining; because the delegate drains a claimed lane until empty and
	// every push is followed by the OR, no work is ever stranded behind a
	// cleared bit.
	pending []atomic.Uint64
	// sleep/wake park the delegate when every pending word is zero.
	sleep atomic.Int32
	wake  chan struct{}

	// exec publishes how many method invocations this delegate has
	// finished running — stored, not added, once per drained run (the
	// delegate is its only writer). recBarrier sums it across delegates.
	exec atomic.Uint64

	// laneExec[p] publishes how many of lane p's messages (methods, syncs,
	// terminates alike — everything producers count in laneSent) this
	// delegate has finished executing, stored at the same drain-run
	// boundaries as exec. Lanes are FIFO, so laneExec[p] >= position
	// proves every message at or before that lane position has run — the
	// coverage half of the whole-set handoff protocol (recsteal.go). Nil
	// unless Config.Stealing: the ledger publishes cost two atomics per
	// drain run, which single-op runs would pay per operation.
	laneExec []atomic.Uint64

	// drainBatches/drainedOps count the batched lane drains; aggregated
	// into Stats by the program context.
	drainBatches atomic.Uint64
	drainedOps   atomic.Uint64

	// Coverage-waiter list (stealing only): producers parked in
	// waitRecOutboundCoverage until THIS delegate's laneExec counters
	// advance. covWaiters counts parked producers — the drain loop checks
	// it with one atomic load per drain run and broadcasts only when it is
	// nonzero, so the waiter-free hot path pays nothing else. covCh is the
	// broadcast: closed-and-replaced under covMu at each signalled publish,
	// the classic close-to-wake-all channel rotation (a waiter that
	// subscribed to an already-rotated channel finds it closed and simply
	// re-checks).
	covWaiters atomic.Int32
	covMu      sync.Mutex
	covCh      chan struct{}

	// Outbound-attribution state for the per-set handoff ledger
	// (recsteal.go), maintained only under stealing and touched only by
	// this delegate's goroutine — plain fields, no atomics. prodSet is the
	// serialization set of the method invocation currently executing
	// (noSetID for pool tasks): any nested delegation the invocation
	// issues is that set's own outbound traffic, recorded against its
	// entry by noteOutbound. prodCachedSet/prodEntry/prodTable are the
	// one-slot entry cache keyed on (owner table, set) so runs of one
	// set's operations resolve the entry once, and an epoch's table swap
	// invalidates it by pointer.
	prodSet       uint64
	prodCachedSet uint64
	prodEntry     *recSetEntry
	prodTable     *recOwnerTable
}

// recCounter is a cache-line-padded single-writer counter: one per
// producer context for the enqueued side of the quiescence ledger, so
// concurrent delegations from different contexts never contend on a
// shared counter line (the previous engine's two global atomics were the
// hottest shared state in recursive mode).
type recCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// add bumps the counter without an RMW: the owner is the only writer.
func (c *recCounter) add(delta uint64) { c.n.Store(c.n.Load() + delta) }

// recState is the recursive-mode extension of Runtime.
type recState struct {
	delegates []*recDelegate
	// enq[p] counts the method invocations producer context p has
	// enqueued; single writer each (the goroutine running context p).
	enq []recCounter
	// producers enforces the one-producer-per-set discipline (checked
	// mode only; nil otherwise).
	producers *producerTable
	// steal holds the whole-set work-stealing state (owner table, lane
	// ledgers, migration counters); nil unless Config.Stealing.
	steal *recStealState
}

// enqSum aggregates the enqueued side of the quiescence ledger.
func (rec *recState) enqSum() uint64 {
	var sum uint64
	for i := range rec.enq {
		sum += rec.enq[i].n.Load()
	}
	return sum
}

// execSum aggregates the executed side.
func (rec *recState) execSum() uint64 {
	var sum uint64
	for _, d := range rec.delegates {
		sum += d.exec.Load()
	}
	return sum
}

// producerShards is the stripe count of the checked-mode producer table;
// a power of two so shard selection is a mask.
const producerShards = 64

// producerTable is the sharded set→producer registry behind checked
// recursive mode. Delegations race in from every context, so the check
// must not funnel them through one mutex: the set id is scrambled and
// striped over producerShards independently-locked maps, keeping
// checked-mode overhead O(1) and all-but-uncontended.
type producerTable struct {
	shards [producerShards]producerShard
}

type producerShard struct {
	mu sync.Mutex
	m  map[uint64]int
	// Pad to a full cache line (8B mutex + 8B map header + 48B) so
	// adjacent shards' locks never share one.
	_ [48]byte
}

func newProducerTable() *producerTable {
	t := &producerTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]int)
	}
	return t
}

// check enforces the recursive-mode determinism discipline: one producer
// context per serialization set per isolation epoch.
func (t *producerTable) check(set uint64, producer int) {
	// Fibonacci-style scramble spreads consecutive set ids over shards.
	sh := &t.shards[(set*0x9e3779b97f4a7c15)>>(64-6)&(producerShards-1)]
	sh.mu.Lock()
	prev, ok := sh.m[set]
	if !ok {
		sh.m[set] = producer
	}
	sh.mu.Unlock()
	if ok && prev != producer {
		panic(fmt.Sprintf(
			"prometheus: serializer violation: set %d delegated from context %d after context %d in one epoch (recursive mode requires one producer per set)",
			set, producer, prev))
	}
}

// reset clears the registry at an epoch boundary.
func (t *producerTable) reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if len(sh.m) > 0 {
			sh.m = make(map[uint64]int)
		}
		sh.mu.Unlock()
	}
}

// initRecursive builds the lane matrix and starts the drain loops.
func (rt *Runtime) initRecursive() {
	cfg := rt.cfg
	// The lane matrix, ledgers, and producer-indexed arrays are all sized
	// to POOL CAPACITY, not the initial active count: a later Resize must
	// not reallocate any structure a running drain loop or producer indexes
	// into. Only the drain goroutines themselves scale (costing
	// O(MaxDelegates^2) pre-allocated rings — documented on MaxDelegates).
	nProducers := cfg.MaxDelegates + 1
	rec := &recState{enq: make([]recCounter, nProducers)}
	if cfg.Checked && !cfg.Stealing {
		// The static-placement discipline: one producer context per set per
		// epoch, enforced by the sharded registry. Under stealing the
		// owner-table entries enforce the generalized rule instead (producer
		// handover allowed at quiescent points — recRoute), because
		// engine-driven migrations legitimately move the producer role.
		rec.producers = newProducerTable()
	}
	if cfg.Stealing {
		rec.steal = newRecStealState(cfg.MaxDelegates, nProducers)
	}
	// One spill-node pool shared by every lane of this runtime, so spill
	// pressure that moves between lanes keeps recycling nodes.
	pool := spsc.NewNodePool[Invocation]()
	words := (nProducers + 63) / 64
	for i := 0; i < cfg.MaxDelegates; i++ {
		d := &recDelegate{
			id:      i + 1,
			pending: make([]atomic.Uint64, words),
			wake:    make(chan struct{}, 1),
			prodSet: noSetID, // nothing executing yet: attribute to no set
		}
		if cfg.Stealing {
			d.laneExec = make([]atomic.Uint64, nProducers)
			d.covCh = make(chan struct{})
		}
		for p := 0; p < nProducers; p++ {
			d.lanes = append(d.lanes, spsc.NewLanePooled[Invocation](cfg.QueueCapacity, pool))
		}
		rec.delegates = append(rec.delegates, d)
	}
	// Publish the engine state BEFORE spawning any drain loop: an idle
	// delegate reaches its first imbalance-sample tick without ever
	// synchronizing with this goroutine, so everything it may read —
	// rt.rec, the full delegates slice, the steal ledgers — must be
	// complete when the goroutine starts (the go statement is the
	// happens-before edge).
	rt.rec = rec
	for _, d := range rec.delegates[:cfg.Delegates] {
		rt.wg.Add(1)
		go rt.recLoop(d)
	}
}

// notify publishes lane `producer` as pending and wakes the delegate if it
// is parked. The OR is skipped when the bit is already set (the common
// case on a busy lane — one shared load instead of an RMW): bit p has a
// single setter, so observing it set means the delegate has not claimed
// the word since, and its claim-then-drain-to-empty discipline will find
// the value just pushed. The wake check must still run — a parked
// delegate and a set bit can coexist only in the instant between a push
// and this call, and the sleep-flag handshake (seq-cst store/load on both
// sides, as in spsc) closes it.
func (d *recDelegate) notify(producer int) {
	w := &d.pending[producer>>6]
	bit := uint64(1) << (producer & 63)
	if w.Load()&bit == 0 {
		w.Or(bit)
	}
	if d.sleep.Load() == recSleeping {
		select {
		case d.wake <- struct{}{}:
		default:
		}
	}
}

// covSubscribe registers the calling producer as a coverage waiter and
// returns the broadcast channel to park on. The order is load-bearing for
// the lost-wakeup proof: the waiter count is raised BEFORE the caller
// re-checks coverage, so a drain loop whose laneExec publish the re-check
// missed is guaranteed to observe the waiter and rotate the channel
// (sequentially-consistent atomics on both sides).
func (d *recDelegate) covSubscribe() chan struct{} {
	d.covWaiters.Add(1)
	d.covMu.Lock()
	ch := d.covCh
	d.covMu.Unlock()
	return ch
}

// covUnsubscribe deregisters a coverage waiter.
func (d *recDelegate) covUnsubscribe() { d.covWaiters.Add(-1) }

// covSignal wakes every parked coverage waiter by rotating the broadcast
// channel. Called from this delegate's drain loop after a laneExec
// publish, only when covWaiters is nonzero.
func (d *recDelegate) covSignal() {
	d.covMu.Lock()
	close(d.covCh)
	d.covCh = make(chan struct{})
	d.covMu.Unlock()
}

// anyPending reports whether any lane bit is raised (the delegate's
// pre-park re-check).
func (d *recDelegate) anyPending() bool {
	for i := range d.pending {
		if d.pending[i].Load() != 0 {
			return true
		}
	}
	return false
}

// recEnqueue routes one invocation from any producer context to the owner
// of its set. The steady-state cost is one padded-counter bump, one ring
// write, one pending-bit load (or OR), and one sleep-flag load — no
// allocation, no contended atomics. With stealing enabled the owner comes
// from the dynamic table (recRoute), which also runs the rebalancer and
// records the operation's lane position; without it the static assignment
// path is untouched. Callers have already dispatched on Sequential mode.
func (rt *Runtime) recEnqueue(producer int, set uint64, inv Invocation) int {
	rec := rt.rec
	if rt.cfg.Checked && set == noSetID {
		// The engine reserves this one id as the pool-task sentinel: a
		// user set named by it would have its nested delegations dropped
		// from the outbound ledger, silently voiding the migration safety
		// check. Turn that into the diagnostic every other discipline
		// violation gets.
		panic("prometheus: serialization set id ^uint64(0) is reserved by the engine (recursive pool-task sentinel); use any other id")
	}
	if fs := rt.faults.Load(); fs != nil && rt.maybeDrop(fs, set) {
		// The set is poisoned this epoch: drop-but-count, touching none of
		// the enqueue/laneSent ledgers (the operation never enters them).
		return rt.ContextFor(set)
	}
	if rec.producers != nil {
		rec.producers.check(set, producer)
	}
	var owner int
	if rec.steal != nil {
		owner = rt.recRoute(producer, set)
	} else {
		owner = rt.vmap[set%uint64(len(rt.vmap))]
	}
	d := rec.delegates[owner-1]
	rec.enq[producer].add(1)
	lane := d.lanes[producer]
	if producer == ProgramContext {
		// The program context is never inside a delegation cycle, so it
		// can block on a full ring: bounded-queue backpressure instead of
		// unbounded spill growth when the program outruns the delegates.
		lane.PushBlocking(inv)
	} else {
		// Delegate producers must never block (self-delegation, cycles);
		// ring overflow goes to the lane's spill list.
		lane.Push(inv)
	}
	d.notify(producer)
	return owner
}

// recSend delivers a control or task message from the program context
// straight to a delegate's program lane, keeping the stealing lane ledger
// consistent: every message a lane carries must be counted in laneSent,
// or the delegate's laneExec could overtake a producer's recorded
// positions and make an in-flight set look quiescent.
func (rt *Runtime) recSend(d *recDelegate, inv Invocation) {
	if st := rt.rec.steal; st != nil {
		st.laneSent[d.id-1][ProgramContext].add(1)
	}
	d.lanes[ProgramContext].PushBlocking(inv)
	d.notify(ProgramContext)
}

// delegateFrom routes a closure delegation from any producer context in
// recursive mode (the flexible path: tracing, RunParallel, and
// closure-based API calls). Inline execution is not used: every set is
// owned by a delegate (ProgramShare is rejected under Recursive), so
// ordering never depends on which context produced the operation.
func (rt *Runtime) delegateFrom(producer int, set uint64, fn func(ctx int)) int {
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ProgramContext
	}
	return rt.recEnqueue(producer, set, Invocation{kind: kindMethod, set: set, fn: fn})
}

// recLoop is the body of a recursive delegate: claim pending lanes with
// one Swap per word, drain each claimed lane in batched runs, publish
// executed progress once per run, park when every word stays zero.
func (rt *Runtime) recLoop(d *recDelegate) {
	defer rt.wg.Done()
	buf := make([]Invocation, drainBatchSize)
	// Seed from the published counter, not zero: a delegate respawned by a
	// scale-up resumes the count where its parked predecessor stopped, so
	// occupancy (laneSent - exec) stays exact across resizes.
	executed := d.exec.Load() // method invocations completed; published via d.exec
	adaptive := rt.cfg.Stealing && rt.cfg.AdaptiveSteal
	spin, sampleTick := 0, 0
	for {
		progress := false
		for w := range d.pending {
			claimed := d.pending[w].Swap(0)
			for claimed != 0 {
				p := w<<6 | bits.TrailingZeros64(claimed)
				claimed &= claimed - 1
				drained, terminate := rt.drainLane(d, p, d.lanes[p], buf, &executed)
				if terminate {
					return
				}
				progress = progress || drained
			}
		}
		if progress {
			if adaptive {
				// Every imbalanceSampleStride-th drain-run boundary: feed the
				// pool-wide occupancy spread into the in-epoch threshold EWMA.
				if sampleTick++; sampleTick >= imbalanceSampleStride {
					sampleTick = 0
					rt.sampleImbalanceRec()
				}
			}
			spin = 0
			continue
		}
		spin++
		if spin < spinBeforeParkRec {
			if spin%4 == 0 {
				if adaptive {
					// An idle delegate is the min-occupancy extreme the
					// imbalance EWMA exists to detect, and it has nothing
					// better to do: sample eagerly here so skew is noticed
					// while the busy path samples only every stride-th run.
					rt.sampleImbalanceRec()
				}
				if spin%16 == 0 {
					runtime.Gosched()
				}
			}
			continue
		}
		// Park until a producer raises a bit. Re-check after arming the
		// sleep flag to avoid a lost wakeup (producers load the flag after
		// their OR).
		d.sleep.Store(recSleeping)
		if d.anyPending() {
			d.sleep.Store(recAwake)
			spin = 0
			continue
		}
		if adaptive {
			// Final sample at the park boundary: a parked delegate
			// contributes nothing to the EWMA while it sleeps, so without
			// this the pool-wide ratio freezes on whatever the spin-down
			// loop last observed — a stale minimum that can hold the
			// threshold away from where the remaining active delegates'
			// real spread would put it. One fresh read of every occupancy
			// with this delegate now at zero resets that sample before the
			// EWMA goes quiet.
			rt.sampleImbalanceRec()
		}
		<-d.wake
		d.sleep.Store(recAwake)
		spin, sampleTick = 0, 0
	}
}

// drainLane empties one claimed lane in batched runs: values are popped
// drainBatchSize at a time and executed back to back, with the executed
// counters published once per run rather than once per operation — the
// consumer-side mirror of the flat path's PopBatch drain. Two counters are
// published at each run boundary: exec (methods only, the quiescence
// ledger) and laneExec[p] (every message, the handoff-coverage ledger; a
// producer that observes laneExec[p] >= its recorded position knows that
// message, and the FIFO lane prefix before it, has finished). It returns
// whether anything was drained, and whether a termination object was
// served (the loop must exit). Draining to empty is what makes the
// claimed-then-cleared pending bit safe: any value pushed after the final
// empty observation re-raises the bit.
//
// Execution runs in recover()-protected spans (recExecSpan) — one deferred
// recover per batch when fault-free, re-entered after each contained panic
// so the delegate survives and the batch tail still runs against the fresh
// fault state.
func (rt *Runtime) drainLane(d *recDelegate, p int, lane *spsc.Lane[Invocation], buf []Invocation, executed *uint64) (drained, terminate bool) {
	var le *atomic.Uint64 // lane ledger: maintained only under stealing
	var base uint64
	if d.laneExec != nil {
		le = &d.laneExec[p]
		base = le.Load() // single writer: this delegate
	}
	inject := rt.cfg.FaultInjector
	for {
		n := lane.PopBatch(buf)
		if n == 0 {
			return drained, false
		}
		drained = true
		d.drainBatches.Add(1)
		d.drainedOps.Add(uint64(n))
		i := 0
		for i < n {
			fs := rt.faults.Load()
			next, term := rt.recExecSpan(d, buf, i, n, executed, le, base, fs, inject)
			if term {
				clear(buf[:n])
				return true, true
			}
			i = next
		}
		d.exec.Store(*executed)
		if le != nil {
			base += uint64(n)
			le.Store(base)
			if d.covWaiters.Load() != 0 {
				// A producer is parked in waitRecOutboundCoverage on this
				// delegate's laneExec advancing; the store above may be the
				// coverage it needs. One atomic load on the waiter-free path.
				d.covSignal()
			}
		}
		// Drop payload references so executed invocations don't pin their
		// closures and payloads until the buffer is refilled.
		clear(buf[:n])
	}
}

// recExecSpan executes buf[start:n] of one lane under a single deferred
// recover. A recovered panic records the fault (poisoning the set), counts
// the faulted operation as executed, and publishes BOTH ledgers — exec and
// laneExec — before returning, so the recursive quiescence and
// handoff-coverage proofs advance past the faulted operation and the
// counter publishes carry the happens-before edge that makes the poison
// deterministic for every observer of those proofs. Operations of a
// poisoned set are skipped-but-counted; a poisoned set is never stolen
// (maybeStealRec), so its backlog always drains on the owner that wrote
// the poison and the skip point stays exact.
func (rt *Runtime) recExecSpan(d *recDelegate, buf []Invocation, start, n int, executed *uint64, le *atomic.Uint64, base uint64, fs *faultState, inject func(int, uint64)) (next int, terminated bool) {
	i := start
	defer func() {
		if v := recover(); v != nil {
			rt.recordPanic(d.id, buf[i].set, v)
			*executed++
			d.exec.Store(*executed)
			if le != nil {
				le.Store(base + uint64(i) + 1)
			}
			next, terminated = i+1, false
		}
	}()
	for ; i < n; i++ {
		inv := &buf[i]
		switch inv.kind {
		case kindMethod:
			if fs != nil && inv.set != noSetID && fs.lookup(inv.set) != nil {
				fs.dropped.Add(1)
				*executed++
				continue
			}
			if le != nil {
				// Stamp the producing set before running the operation:
				// nested delegations it issues charge their lane
				// positions to this set's outbound ledger
				// (noteOutbound). One plain store; only this goroutine
				// reads it back.
				d.prodSet = inv.set
			}
			if inject != nil {
				inject(d.id, inv.set)
			}
			inv.invoke(d.id)
			*executed++
		case kindSync:
			// Publish progress before signaling: an observer of done
			// must see every earlier invocation counted.
			d.exec.Store(*executed)
			if le != nil {
				le.Store(base + uint64(i) + 1)
			}
			close(inv.done)
		case kindTerminate:
			d.exec.Store(*executed)
			if le != nil {
				le.Store(base + uint64(i) + 1)
			}
			close(inv.done)
			return i, true
		}
	}
	return n, false
}

// recBarrier waits until every delegate has drained every lane and no
// operation remains in flight: sync rounds repeat until the
// enqueued/executed ledgers agree across a full quiet round. The sums
// aggregate single-writer per-producer and per-delegate counters — the
// barrier is the only place the two sides of the ledger meet, so the
// delegation hot path never touches shared quiescence state.
func (rt *Runtime) recBarrier() {
	rec := rt.rec
	for {
		before := rec.enqSum()
		// Sync only the ACTIVE prefix: a delegate parked by a scale-down has
		// no drain loop to serve the sync (the send would hang forever). Its
		// frozen exec/laneExec counters still participate in the ledger sums
		// below — they balanced at park time and stay balanced.
		dones := make([]chan struct{}, 0, rt.cfg.Delegates)
		for _, d := range rec.delegates[:rt.cfg.Delegates] {
			done := make(chan struct{})
			rt.recSend(d, Invocation{kind: kindSync, done: done})
			dones = append(dones, done)
		}
		for _, done := range dones {
			rt.waitDone(done)
		}
		if rec.execSum() == before && rec.enqSum() == before {
			return
		}
	}
}

// recTerminate shuts down the recursive delegate pool.
func (rt *Runtime) recTerminate() {
	rt.recBarrier()
	for _, d := range rt.rec.delegates[:rt.cfg.Delegates] {
		done := make(chan struct{})
		rt.recSend(d, Invocation{kind: kindTerminate, done: done})
		rt.waitDone(done)
	}
}
