package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/spsc"
)

// Recursive delegation — the extension the paper names as future work
// ("we plan to extend the runtime to support recursive delegation to
// improve programmability", §4). With Config.Recursive enabled, delegated
// operations may themselves delegate further operations through their
// execution context.
//
// Plumbing: SPSC queues admit a single producer, so in recursive mode each
// delegate owns one inbound queue per producer context (program context and
// every delegate), and its loop polls those lanes round-robin, parking on a
// wake channel when all are empty. Per-set program order is preserved per
// producer: operations a producer sends to one set stay in order (one lane,
// FIFO). For the execution to stay deterministic, a serialization set must
// receive delegations from only one producer context per isolation epoch —
// the natural structure of divide-and-conquer programs, and checked mode
// enforces it.
//
// Barriers change meaning under recursion: draining every queue once is not
// enough, because executing an operation may enqueue more work. The runtime
// counts enqueued and executed operations and repeats drain rounds until
// the counts agree (quiescence).

// recDelegate is a delegate context in recursive mode. Lanes are
// unbounded queues: a delegate may delegate to a set it itself owns, and a
// bounded lane would self-deadlock when full (only the pushing context
// could drain it).
type recDelegate struct {
	id    int
	lanes []*spsc.Unbounded[Invocation] // indexed by producer context id
	wake  chan struct{}
}

// recState is the recursive-mode extension of Runtime.
type recState struct {
	delegates []*recDelegate
	enqueued  atomic.Int64
	executed  atomic.Int64
	// setProducer tags each set's producer this epoch (checked mode only);
	// guarded by mu because delegations race in from every context.
	mu          sync.Mutex
	setProducer map[uint64]int
}

// checkProducer enforces the recursive-mode determinism discipline: one
// producer context per serialization set per isolation epoch.
func (rec *recState) checkProducer(set uint64, producer int) {
	rec.mu.Lock()
	prev, ok := rec.setProducer[set]
	if !ok {
		rec.setProducer[set] = producer
	}
	rec.mu.Unlock()
	if ok && prev != producer {
		panic(fmt.Sprintf(
			"prometheus: serializer violation: set %d delegated from context %d after context %d in one epoch (recursive mode requires one producer per set)",
			set, producer, prev))
	}
}

// initRecursive builds the lane matrix and starts the polling loops.
func (rt *Runtime) initRecursive() {
	cfg := rt.cfg
	rec := &recState{}
	if cfg.Checked {
		rec.setProducer = make(map[uint64]int)
	}
	nProducers := cfg.Delegates + 1
	for i := 0; i < cfg.Delegates; i++ {
		d := &recDelegate{
			id:   i + 1,
			wake: make(chan struct{}, 1),
		}
		for p := 0; p < nProducers; p++ {
			d.lanes = append(d.lanes, spsc.NewUnbounded[Invocation]())
		}
		rec.delegates = append(rec.delegates, d)
		rt.wg.Add(1)
		go rt.recLoop(d)
	}
	rt.rec = rec
}

// recLoop polls the delegate's lanes round-robin. The spin/park balance
// mirrors the SPSC queue's own blocking behaviour.
func (rt *Runtime) recLoop(d *recDelegate) {
	defer rt.wg.Done()
	const spinBeforePark = 128
	spin := 0
	for {
		progress := false
		for _, lane := range d.lanes {
			inv, ok := lane.TryPop()
			if !ok {
				continue
			}
			progress = true
			switch inv.kind {
			case kindMethod:
				inv.invoke(d.id)
				rt.rec.executed.Add(1)
			case kindSync:
				close(inv.done)
			case kindTerminate:
				close(inv.done)
				return
			}
		}
		if progress {
			spin = 0
			continue
		}
		spin++
		if spin < spinBeforePark {
			continue
		}
		// Park until a producer signals. Producers signal after every
		// push, so a lost race just costs one extra poll round.
		select {
		case <-d.wake:
		default:
			if d.anyReady() {
				continue
			}
			<-d.wake
		}
		spin = 0
	}
}

func (d *recDelegate) anyReady() bool {
	for _, lane := range d.lanes {
		if !lane.Empty() {
			return true
		}
	}
	return false
}

func (d *recDelegate) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// delegateFrom routes a delegation from any producer context in recursive
// mode. Inline execution is not used: every set is owned by a delegate
// (ProgramShare is rejected under Recursive), so ordering never depends on
// which context produced the operation.
func (rt *Runtime) delegateFrom(producer int, set uint64, fn func(ctx int)) int {
	if rt.cfg.Sequential {
		rt.stats.InlineExecs++
		fn(ProgramContext)
		return ProgramContext
	}
	if rt.rec.setProducer != nil {
		rt.rec.checkProducer(set, producer)
	}
	owner := rt.vmap[set%uint64(len(rt.vmap))]
	d := rt.rec.delegates[owner-1]
	rt.rec.enqueued.Add(1)
	d.lanes[producer].Push(Invocation{kind: kindMethod, set: set, fn: fn})
	d.signal()
	return owner
}

// recBarrier waits until every delegate has drained every lane and no
// operation remains in flight: drain rounds repeat until the
// enqueued/executed counters agree across a full quiet round.
func (rt *Runtime) recBarrier() {
	for {
		before := rt.rec.enqueued.Load()
		// Round: flush lane 0 (program) of every delegate with a sync
		// object, which also forces each loop to pass over all lanes.
		dones := make([]chan struct{}, 0, len(rt.rec.delegates))
		for _, d := range rt.rec.delegates {
			done := make(chan struct{})
			d.lanes[ProgramContext].Push(Invocation{kind: kindSync, done: done})
			d.signal()
			dones = append(dones, done)
		}
		for _, done := range dones {
			<-done
		}
		if rt.rec.executed.Load() == before && rt.rec.enqueued.Load() == before {
			return
		}
	}
}

// recTerminate shuts down the recursive delegate pool.
func (rt *Runtime) recTerminate() {
	rt.recBarrier()
	for _, d := range rt.rec.delegates {
		done := make(chan struct{})
		d.lanes[ProgramContext].Push(Invocation{kind: kindTerminate, done: done})
		d.signal()
		<-done
	}
}
