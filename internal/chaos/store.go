package chaos

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

// FaultyFS wraps a durable.FS with deterministic write faults — the
// storage-side counterpart of the backend injectors above. Every Write on
// a file opened through the wrapper counts one operation (on set 0 of the
// Errors injector's coordinate space, in open-call order), so a seeded
// profile injects the same faults at the same byte positions run over
// run, and an ErrorsAfter profile models a disk that goes bad at a chosen
// moment and stays bad.
//
// Faults come in two shapes. The default is a clean refusal: Write
// returns (0, Injected) and the file is unchanged — the shape of a full
// disk or a revoked handle. With Short set, the wrapper delivers HALF the
// buffer to the inner FS before failing — the torn-write shape, leaving
// the file mid-frame exactly the way a crash during a write would, which
// is what the durability layer's tear detection exists to catch.
//
// Reads, renames, removes, and listings pass through untouched: the
// drills exercise how the WRITER degrades (snapshot failures must not
// regress the committed generation), not whether recovery can read.
type FaultyFS struct {
	// Inner is the wrapped FS.
	Inner durable.FS
	// Errors triggers write faults; each Write counts one operation of
	// set 0. Nil injects nothing.
	Errors *Errors
	// Short makes injected faults deliver half the buffer before failing
	// (a torn write) instead of refusing cleanly.
	Short bool
	// Latency delays writes when its trigger fires (set 0). Nil adds none.
	Latency *Latency

	faults atomic.Uint64
}

// WrapFS returns a FaultyFS injecting errs into writes on inner.
func WrapFS(inner durable.FS, errs *Errors) *FaultyFS {
	return &FaultyFS{Inner: inner, Errors: errs}
}

// Faults reports how many write faults the wrapper has injected.
func (f *FaultyFS) Faults() uint64 { return f.faults.Load() }

func (f *FaultyFS) Create(name string) (durable.File, error) {
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *FaultyFS) Append(name string) (durable.File, error) {
	inner, err := f.Inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *FaultyFS) Open(name string) (io.ReadCloser, error) { return f.Inner.Open(name) }
func (f *FaultyFS) Rename(oldname, newname string) error    { return f.Inner.Rename(oldname, newname) }
func (f *FaultyFS) Remove(name string) error                { return f.Inner.Remove(name) }
func (f *FaultyFS) List() ([]string, error)                 { return f.Inner.List() }

type faultyFile struct {
	fs    *FaultyFS
	inner durable.File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if ff.fs.Latency != nil {
		if d := ff.fs.Latency.Delay(0); d > 0 {
			time.Sleep(d)
		}
	}
	if ff.fs.Errors != nil {
		if err := ff.fs.Errors.Err(0); err != nil {
			ff.fs.faults.Add(1)
			if ff.fs.Short && len(p) > 1 {
				n, werr := ff.inner.Write(p[:len(p)/2])
				if werr != nil {
					return n, werr
				}
				return n, err
			}
			return 0, err
		}
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error  { return ff.inner.Sync() }
func (ff *faultyFile) Close() error { return ff.inner.Close() }

// ErrorsAfter returns an error injector whose operations 1..n succeed and
// everything after fails, permanently — the "storage goes bad and stays
// bad" profile for snapshot-failure drills, where the interesting
// property is that serving continues on the last good generation.
func ErrorsAfter(n uint64) *Errors {
	return &Errors{
		counts:  make(map[uint64]uint64),
		trigger: func(_, k uint64) bool { return k > n },
	}
}
